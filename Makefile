# Tier-1 verification and benchmarks for the repro module.

GO ?= go
# Spout parallelism for bench-dataplane (the scaling-curve knob).
FEEDERS ?= 1
# Zipf skews for the hot-key splitting sweep (split on vs off each).
THETAS ?= 0.99,1.2,1.5

.PHONY: verify build test vet bench bench-dataplane bench-multistage bench-cluster bench-control bench-harvest bench-hotkey exhibits smoke-examples smoke-cluster

## verify: the tier-1 gate — vet, build, test everything.
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

## bench: data-plane and planner micro-benchmarks.
bench:
	$(GO) test -bench . -benchmem -run XXX ./internal/...

## bench-dataplane: write BENCH_dataplane.json (tuples/sec trajectory),
## printing old-vs-new when the file already exists. FEEDERS=N fans the
## engine measurements out to N spout goroutines; THETAS drives the
## hot-key splitting sweep (each skew measured split-off and split-on).
bench-dataplane:
	$(GO) run ./cmd/benchrunner -dataplane BENCH_dataplane.json -feeders $(FEEDERS) -theta $(THETAS)

## bench-multistage: the dataplane report plus the 2-stage end-to-end
## benchmark (store-and-forward vs streaming pipeline transfer).
bench-multistage:
	$(GO) run ./cmd/benchrunner -dataplane BENCH_dataplane.json -feeders $(FEEDERS) -multistage

## bench-cluster: the dataplane report plus the distributed-runtime
## sweep — the multistage 2-stage shape hosted on two cluster workers,
## every hop over a real socket. Per transport (tcp, unix) the sweep
## measures the gob oracle and the binary wire at each coalescing
## budget (off / 4KB / 32KB), recording tuples/sec, bytes/tuple and
## allocs/msg per point (cluster_sweep in the report; the binary/32KB
## default also lands under cluster_interval_{tcp,unix}). Read against
## multistage_interval: the remaining delta is serialization plus the
## kernel's socket path.
bench-cluster:
	$(GO) run ./cmd/benchrunner -dataplane BENCH_dataplane.json -feeders $(FEEDERS) -multistage -cluster

## bench-control: per-interval control-loop overhead micro-bench
## (loopback vs Codec-over-pipe wire transport, several snapshot
## sizes, plus whole-interval direct-vs-loop-vs-wire). One hold round
## is the steady cost a controller-managed stage adds per interval.
## RebalanceLatency is the migration-mode comparison: p50/p99 feed
## latency with and without a concurrent plan, pausing vs pause-free —
## the pause-free protocol's p99 must stay flat across a rebalance.
## WireCodec isolates the gob codec's per-message cost (the retained
## staging buffer keeps allocs/msg flat as report populations grow).
bench-control:
	$(GO) test -run '^$$' -bench 'ControlRound|EngineInterval|RebalanceLatency|WireCodec' -benchmem -benchtime 1s ./internal/control/

## bench-harvest: the tracked-key population sweep — each -keys value
## measured through interval close + one wire control round with a 1k
## working set, full harvest vs incremental, written into
## BENCH_dataplane.json's harvest_sweep section. The delta column's
## "vs full" ratios are the O(keys) → O(Δkeys) control-cost claim.
bench-harvest:
	$(GO) run ./cmd/benchrunner -dataplane BENCH_dataplane.json -feeders $(FEEDERS) -theta $(THETAS) -keys 4096,16384,65536

## bench-hotkey: just the hot-key splitting θ-sweep (split on vs off at
## each skew, tuples/sec + worst-interval feed p50/p99 + max split
## keys), written into BENCH_dataplane.json's hotkey_sweep section.
bench-hotkey:
	$(GO) run ./cmd/benchrunner -dataplane BENCH_dataplane.json -feeders $(FEEDERS) -theta $(THETAS)

## exhibits: regenerate every paper exhibit. PIPELINE=1 runs them with
## streaming inter-stage transfer (key-partitioned exhibit outputs do
## not change; fig01's shuffle stages may interleave on multicore).
exhibits:
	$(GO) run ./cmd/benchrunner $(if $(PIPELINE),-pipeline)

## smoke-examples: run every example topology end to end with a
## 2-interval budget (compiling ./examples/... is not enough — the
## builder wiring must actually execute).
smoke-examples:
	@for d in examples/*/; do \
		echo "== $$d =="; \
		REPRO_INTERVALS=2 $(GO) run ./$$d || exit 1; \
	done

## smoke-cluster: the distributed runtime as real OS processes — build
## cmd/worker and cmd/coordinator, then run a 2-worker socialpipe
## cluster over a unix socket for two intervals (the coordinator execs
## the workers and prints the per-connection byte table at shutdown).
smoke-cluster:
	$(GO) build -o bin/worker ./cmd/worker
	$(GO) build -o bin/coordinator ./cmd/coordinator
	REPRO_INTERVALS=2 bin/coordinator -workers 2 -network unix -topology socialpipe -worker-bin bin/worker
