package repro

import (
	"bytes"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/longterm"
	"repro/internal/topology"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// Full-stack integration tests: every subsystem composed the way a
// downstream user would, asserting end-to-end behaviour rather than
// unit contracts.

// TestTraceRoundTripThroughSystem records a bursty stock tape, replays
// it through the Mixed system, and verifies both correctness (all
// tuples processed and counted) and effectiveness (rebalances happen,
// steady-state skew is tamed).
func TestTraceRoundTripThroughSystem(t *testing.T) {
	gen := workload.NewStock(0, 0.85, 3)
	recorded := make([]tuple.Tuple, 40000)
	for i := range recorded {
		recorded[i] = gen.Next()
		if i%10000 == 9999 {
			gen.Advance()
		}
	}
	var buf bytes.Buffer
	if err := workload.WriteTrace(&buf, recorded); err != nil {
		t.Fatal(err)
	}
	tr, err := workload.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tr.Loop = true

	sys := core.NewSystem(core.Config{
		Instances: 8, Budget: 10000, ThetaMax: 0.08, MinKeys: 16,
	}, tr.Spout(), func(int) engine.Operator { return engine.StatefulCount })
	defer sys.Stop()
	sys.Run(8)

	var emitted int64
	for _, m := range sys.Recorder().Series {
		emitted += m.Emitted
	}
	// Correctness check derives from windowed state volumes (tasks own
	// their stores; the barrier inside Run synchronizes reads).
	var stateTotal int64
	for d := 0; d < 8; d++ {
		stateTotal += sys.Stage.StoreOf(d).TotalSize()
	}
	if stateTotal == 0 {
		t.Fatal("no state accumulated from trace replay")
	}
	if sys.Controller.Rebalances() == 0 {
		t.Fatal("bursty trace never triggered a rebalance")
	}
	if emitted == 0 {
		t.Fatal("nothing emitted")
	}
}

// TestAllPlannersEndToEndKeepCorrectCounts runs every migrating
// algorithm over the same fluctuating stream with a counting operator
// and checks no tuple is lost or double-counted across migrations.
func TestAllPlannersEndToEndKeepCorrectCounts(t *testing.T) {
	algs := []core.Algorithm{
		core.AlgMixed, core.AlgMinTable, core.AlgMinMig,
		core.AlgCompact, core.AlgReadj, core.AlgSimple, core.AlgLLFD,
	}
	for _, alg := range algs {
		gen := workload.NewZipfStream(1000, 1.0, 0.8, 5000, 11)
		var counts atomic.Int64
		sys := core.NewSystem(core.Config{
			Instances: 5, Budget: 5000, ThetaMax: 0.05, TableMax: -1, MinKeys: 16,
			Algorithm: alg,
		}, gen.Next, func(int) engine.Operator {
			return engine.OperatorFunc(func(ctx *engine.TaskCtx, tp tuple.Tuple) {
				counts.Add(1) // shared across instances, hence atomic
				engine.StatefulCount.Process(ctx, tp)
			})
		})
		ar := sys.Stage.AssignmentRouter()
		sys.Engine.AdvanceWorkload = func(int64) { gen.Advance(ar.Assignment()) }
		sys.Run(6)
		var emitted int64
		for _, m := range sys.Recorder().Series {
			emitted += m.Emitted
		}
		sys.Stage.Barrier()
		if got := counts.Load(); got != emitted {
			t.Fatalf("%s: processed %d of %d emitted tuples", alg, got, emitted)
		}
		if sys.Controller.Rebalances() == 0 {
			t.Fatalf("%s: no rebalances on a z=1 stream at θ=0.05", alg)
		}
		sys.Stop()
	}
}

// TestShortAndLongTermComposed drives the full §VII composition: Mixed
// for fluctuations, the detector for genuine shifts, through the
// public API only — the topology builder wiring the controller, the
// autoscaler joining the same control loop via WithPolicy. The load
// doubles (scale-out), then collapses (live scale-in back down).
func TestShortAndLongTermComposed(t *testing.T) {
	gen := workload.NewZipfStream(2000, 0.85, 1.0, 6000, 19)
	scaler := &longterm.AutoScaler{Detector: longterm.NewDetector()}
	sys := topology.New(
		topology.Spout(gen.Next),
		topology.Budget(6000),
	).Stage("op", func(int) engine.Operator { return engine.StatefulCount },
		topology.Instances(6),
		topology.Capacity(1200),
		topology.WithAlgorithm(topology.AlgMixed),
		topology.Theta(0.08), topology.MinKeys(16),
		topology.WithPolicy(scaler),
	).Build()
	defer sys.Stop()

	st := sys.Stage(0)
	ar := st.AssignmentRouter()
	sys.Engine.AdvanceWorkload = func(int64) { gen.Advance(ar.Assignment()) }

	sys.Run(10)
	preScale := st.Instances()
	// Permanent 2× load shift.
	sys.Engine.Cfg.Budget = 12000
	gen.PerInterval = 12000
	sys.Run(25)

	grown := st.Instances()
	if grown <= preScale {
		t.Fatalf("no scale-out under a 2x sustained shift (still %d instances)", grown)
	}
	if sys.Controller(0).Rebalances() == 0 {
		t.Fatal("short-term controller idle the whole run")
	}

	// The shift reverses: sustained idleness must retire instances
	// live, with every key's state landing on a survivor.
	sys.Engine.Cfg.Budget = 1500
	gen.PerInterval = 1500
	sys.Run(30)
	shrunk := st.Instances()
	if shrunk >= grown {
		t.Fatalf("no scale-in under a sustained lull (still %d instances)", shrunk)
	}
	if scaler.ScaleIns == 0 {
		t.Fatal("autoscaler history records no applied scale-in")
	}
	for _, k := range st.LiveKeys() {
		d, ok := sys.Dest(0, k)
		if !ok || d >= shrunk {
			t.Fatalf("key %d routed to retired instance %d of %d", k, d, shrunk)
		}
	}
}
