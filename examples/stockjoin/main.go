// Stock self-join: the paper's second real-world application — a
// windowed self-join over a bursty trade tape (detecting dense
// buy/sell behaviour per stock). Join state is the expensive kind of
// operator state: when a bursting symbol migrates, its whole window
// moves with it, so the γ-aware Mixed planner matters here.
//
//	go run ./examples/stockjoin
package main

import (
	"fmt"

	"repro/internal/ops"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	gen := workload.NewStock(0, 0.85, 11) // 1,036 symbols, bursts
	fleet := ops.NewSelfJoinFleet(false)

	sys := topology.New(
		topology.Spout(gen.Next),
		topology.Budget(10000),
		topology.AdvanceEach(func(int64) { gen.Advance() }),
	).Stage("selfjoin", fleet.Factory,
		topology.Instances(10),
		topology.Window(5), // sliding window of 5 intervals
		topology.WithAlgorithm(topology.AlgMixed),
		topology.Theta(0.08), topology.MinKeys(32),
	).Build()
	defer sys.Stop()

	fmt.Println("interval  throughput  bursts  rebalanced  migration%  matches_total")
	for i := 0; i < topology.Intervals(20); i++ {
		sys.Run(1)
		m := sys.Recorder().Series[i]
		fmt.Printf("%8d  %10.0f  %6d  %10v  %10.2f  %13d\n",
			m.Index, m.Throughput, gen.ActiveBursts(), m.Rebalanced,
			m.MigrationPct, fleet.TotalMatches())
	}
	fmt.Printf("\nrebalances: %d; join pairs found: %d\n",
		sys.Controller(0).Rebalances(), fleet.TotalMatches())
	fmt.Println("bursting symbols trigger rebalances; the join keeps producing")
	fmt.Println("matches across migrations because windows move with their keys.")
}
