// Stock self-join: the paper's second real-world application — a
// windowed self-join over a bursty trade tape (detecting dense
// buy/sell behaviour per stock). Join state is the expensive kind of
// operator state: when a bursting symbol migrates, its whole window
// moves with it, so the γ-aware Mixed planner matters here.
//
//	go run ./examples/stockjoin
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ops"
	"repro/internal/workload"
)

func main() {
	gen := workload.NewStock(0, 0.85, 11) // 1,036 symbols, bursts
	fleet := ops.NewSelfJoinFleet(false)

	sys := core.NewSystem(core.Config{
		Instances: 10,
		Window:    5, // sliding window of 5 intervals
		ThetaMax:  0.08,
		Algorithm: core.AlgMixed,
		Budget:    10000,
		MinKeys:   32,
	}, gen.Next, fleet.Factory)
	defer sys.Stop()
	sys.Engine.AdvanceWorkload = func(int64) { gen.Advance() }

	fmt.Println("interval  throughput  bursts  rebalanced  migration%  matches_total")
	for i := 0; i < 20; i++ {
		sys.Run(1)
		m := sys.Recorder().Series[i]
		fmt.Printf("%8d  %10.0f  %6d  %10v  %10.2f  %13d\n",
			m.Index, m.Throughput, gen.ActiveBursts(), m.Rebalanced,
			m.MigrationPct, fleet.TotalMatches())
	}
	fmt.Printf("\nrebalances: %d; join pairs found: %d\n",
		sys.Controller.Rebalances(), fleet.TotalMatches())
	fmt.Println("bursting symbols trigger rebalances; the join keeps producing")
	fmt.Println("matches across migrations because windows move with their keys.")
}
