// Viralkey: contention-aware hot-key splitting under a flash crowd.
// A uniform-ish stream suddenly concentrates on one key — the kind of
// single-key contention no assignment function can balance away,
// because a key is the atomic unit of routing. The detector splits the
// viral key across a replica set (tuples fan out round-robin, replicas
// hold commutative deltas), the rebalancer keeps working around it
// (split keys are pinned to their home), and when the crowd moves on
// the key folds back — counts exactly as if it had never been split.
//
//	go run ./examples/viralkey
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/ops"
	"repro/internal/topology"
	"repro/internal/tuple"
)

func main() {
	const (
		nd     = 6
		budget = 6000
		keys   = 3000
		viral  = tuple.Key(0)
	)
	rng := rand.New(rand.NewSource(7))
	viralShare := 0.0 // fraction of traffic hitting the viral key
	var viralFed int64
	spout := func() tuple.Tuple {
		if rng.Float64() < viralShare {
			viralFed++
			return tuple.New(viral, nil)
		}
		return tuple.New(tuple.Key(1+rng.Intn(keys)), nil)
	}

	// Per-task capacity defaults to Budget/Instances = 1000 cost units
	// per interval; HotKeySplit(3, 0.5) splits any key whose interval
	// cost reaches half that capacity, at most 3 keys at once. The low
	// threshold keeps the key split while backpressure from the pre-split
	// interval is still draining (measured cost dips with emission).
	fleet := ops.NewWordCountFleet()
	sys := topology.New(
		topology.Spout(spout),
		topology.Budget(budget),
	).Stage("count", fleet.Factory,
		topology.Instances(nd),
		topology.WithAlgorithm(topology.AlgMixed),
		topology.Theta(0.08), topology.MinKeys(64),
		topology.HotKeySplit(3, 0.5),
	).Build()
	defer sys.Stop()

	st := sys.Stage(0)
	total := topology.Intervals(18)
	fmt.Println("interval  emitted  throughput   skew  split set")
	for i := 0; i < total; i++ {
		switch i {
		case total / 3:
			viralShare = 0.45 // flash crowd: one key takes ~45% of traffic
			fmt.Println("--- key 0 goes viral: 45% of all traffic ---")
		case 2 * total / 3:
			viralShare = 0
			fmt.Println("--- crowd moves on ---")
		}
		sys.Run(1)
		m := sys.Recorder().Series[i]
		split := st.SplitKeys()
		tag := "-"
		if len(split) > 0 {
			tag = fmt.Sprint(split)
		}
		fmt.Printf("%8d  %7d  %10.0f  %5.2f  %s\n",
			i, m.Emitted, m.Throughput, m.Skewness, tag)
	}

	sp := sys.Splitter(0)
	ctl := sys.Controller(0)
	fmt.Println()
	fmt.Printf("split announcements: %d  max concurrently split: %d\n",
		sp.Announced, sp.MaxActive)
	fmt.Printf("rebalances: %d  plan moves pinned by the split guard: %d\n",
		ctl.Rebalances(), ctl.SplitPinned)

	// Exactness: after the final fold the fleet's aggregate for the viral
	// key equals what the spout fed — splitting is invisible to the
	// operator's counts.
	if got := fleet.TotalCount(viral); got == viralFed {
		fmt.Printf("viral key folded back exactly: %d tuples counted, %d fed\n", got, viralFed)
	} else {
		fmt.Printf("MISMATCH: counted %d, spout fed %d\n", got, viralFed)
	}
}
