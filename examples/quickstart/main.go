// Quickstart: run a skewed synthetic stream through a stateful
// operator under the paper's Mixed rebalancer and watch the routing
// table absorb the imbalance.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	// A Zipf(0.85) stream over 10,000 keys, fluctuating at the paper's
	// default rate f = 1.0, 10,000 tuples per 1-second interval.
	gen := workload.NewZipfStream(10000, 0.85, 1.0, 10000, 42)

	// The topology builder declares the whole system: a batch-capable
	// spout (the generator's NextBatch draws straight into the engine's
	// reusable emission buffer) feeding one Mixed-rebalanced stage.
	sys := topology.New(
		topology.SpoutBatch(gen.NextBatch),
		topology.Budget(10000),
	).Stage("counter", func(int) engine.Operator { return engine.StatefulCount },
		topology.Instances(10),                    // N_D
		topology.WithAlgorithm(topology.AlgMixed), // router + planner + controller
		topology.Theta(0.08),                      // imbalance tolerance
		topology.TableMax(3000),                   // A_max
		topology.MinKeys(64),
	).Build()
	defer sys.Stop()

	// Fluctuations swap key frequencies between instances of the live
	// assignment, as the paper's generator does.
	ar := sys.Stage(0).AssignmentRouter()
	sys.Engine.AdvanceWorkload = func(int64) { gen.Advance(ar.Assignment()) }

	fmt.Println("interval  throughput  latency_ms  skewness  rebalanced  table  migration%")
	for i := 0; i < topology.Intervals(15); i++ {
		sys.Run(1)
		m := sys.Recorder().Series[i]
		fmt.Printf("%8d  %10.0f  %10.1f  %8.3f  %10v  %5d  %9.2f\n",
			m.Index, m.Throughput, m.LatencyMs, m.Skewness, m.Rebalanced, m.TableSize, m.MigrationPct)
	}

	fmt.Printf("\nrebalances applied: %d\n", sys.Controller(0).Rebalances())
	fmt.Printf("mean throughput:    %.0f tuples/s\n", sys.Recorder().MeanThroughput())
	fmt.Printf("routing table size: %d entries (bound 3000)\n",
		ar.Assignment().Table().Len())
}
