// Scale-out: the Fig. 15 scenario as a live demo. A word-count
// operator runs at 9 instances until interval 8, then a 10th instance
// joins; consistent hashing limits the immediate reshuffle and the
// Mixed controller rebalances onto the fresh capacity within an
// interval or two.
//
//	go run ./examples/scaleout
package main

import (
	"fmt"
	"os"

	"repro/internal/ops"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	gen := workload.NewSocial(30000, 0.85, 0.002, 3)
	fleet := ops.NewWordCountFleet()
	sys := topology.New(
		topology.Spout(gen.Next),
		topology.Budget(10000),
		topology.AdvanceEach(func(int64) { gen.Advance() }),
	).Stage("wordcount", fleet.Factory,
		topology.Instances(9),
		topology.WithAlgorithm(topology.AlgMixed),
		topology.Theta(0.1), topology.MinKeys(64),
	).Build()
	defer sys.Stop()

	fmt.Println("interval  instances  throughput  rebalanced  migration%")
	report := func(from, to int) {
		for _, m := range sys.Recorder().Series[from:to] {
			fmt.Printf("%8d  %9d  %10.0f  %10v  %10.2f\n",
				m.Index, sys.Stage(0).Instances(), m.Throughput, m.Rebalanced, m.MigrationPct)
		}
	}

	total := topology.Intervals(18)
	pre := 8
	if pre > total {
		pre = total
	}
	sys.Run(pre)
	report(0, pre)

	moved, err := sys.Engine.ResizeStage(0, +1)
	if err != nil {
		fmt.Printf("scale-out failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("--- scale-out: instance 9 added; consistent hashing moved %d state units ---\n", moved)

	sys.Run(total - pre)
	report(pre, total)

	fmt.Printf("\nthe ring reshuffles only ~1/10 of the keys on growth; the Mixed\n")
	fmt.Printf("controller then rebalances the remainder (total rebalances: %d).\n",
		sys.Controller(0).Rebalances())
}
