// Scale-out: the Fig. 15 scenario as a live demo. A word-count
// operator runs at 9 instances until interval 8, then a 10th instance
// joins; consistent hashing limits the immediate reshuffle and the
// Mixed controller rebalances onto the fresh capacity within an
// interval or two.
//
//	go run ./examples/scaleout
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ops"
	"repro/internal/workload"
)

func main() {
	gen := workload.NewSocial(30000, 0.85, 0.002, 3)
	fleet := ops.NewWordCountFleet()
	sys := core.NewSystem(core.Config{
		Instances: 9,
		ThetaMax:  0.1,
		Algorithm: core.AlgMixed,
		Budget:    10000,
		MinKeys:   64,
	}, gen.Next, fleet.Factory)
	defer sys.Stop()
	sys.Engine.AdvanceWorkload = func(int64) { gen.Advance() }

	fmt.Println("interval  instances  throughput  rebalanced  migration%")
	report := func(from, to int) {
		for _, m := range sys.Recorder().Series[from:to] {
			fmt.Printf("%8d  %9d  %10.0f  %10v  %10.2f\n",
				m.Index, sys.Stage.Instances(), m.Throughput, m.Rebalanced, m.MigrationPct)
		}
	}

	sys.Run(8)
	report(0, 8)

	moved := sys.Engine.ScaleOutTarget()
	fmt.Printf("--- scale-out: instance 9 added; consistent hashing moved %d state units ---\n", moved)

	sys.Run(10)
	report(8, 18)

	fmt.Printf("\nthe ring reshuffles only ~1/10 of the keys on growth; the Mixed\n")
	fmt.Printf("controller then rebalances the remainder (total rebalances: %d).\n",
		sys.Controller.Rebalances())
}
