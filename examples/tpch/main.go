// TPC-H Q5 as a continuous query: orders and lineitems stream through
// a windowed equi-join on the Zipf-skewed orderkey, then dimension
// lookups, the region filter and a per-nation revenue aggregation —
// the paper's §V pipeline built on dbgen-lite.
//
//	go run ./examples/tpch
package main

import (
	"fmt"

	"repro/internal/balance"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ops"
	"repro/internal/workload"
)

func main() {
	cfg := workload.DefaultTPCHConfig()
	gen := workload.NewTPCH(cfg)
	const region = 2 // ASIA, per the Q5 template

	joins := ops.NewQ5JoinFleet(gen, region)
	aggs := ops.NewNationRevenueFleet()

	// Two-stage topology: skewed stateful join, then a 25-key nation
	// aggregation. The controller manages the join stage.
	s0 := engine.NewStage("q5-join", 10, joins.Factory, 5,
		engine.NewAssignmentRouter(core.NewAssignment(10)))
	s1 := engine.NewStage("q5-agg", 4, aggs.Factory, 5,
		engine.NewAssignmentRouter(core.NewAssignment(4)))

	ecfg := engine.DefaultConfig()
	ecfg.Window = 5
	ecfg.Budget = 20000
	// Stream join output into the aggregation mid-interval: the agg
	// stage consumes while the join is still working, instead of
	// waiting for the driver's store-and-forward barrier.
	ecfg.Pipeline = true
	e := engine.New(gen.Next, ecfg, s0, s1)
	defer e.Stop()

	ctl := controller.New(balance.Mixed{}, balance.Config{ThetaMax: 0.1, TableMax: 3000, Beta: 1.5})
	ctl.MinKeys = 64
	e.OnSnapshot = ctl.Hook()
	// FK popularity shifts every 5 intervals (the Fig. 16 trigger).
	e.AdvanceWorkload = func(i int64) {
		if i%5 == 0 {
			gen.Advance()
		}
	}

	for i := 0; i < 25; i++ {
		e.RunInterval()
	}

	fmt.Println("continuous TPC-H Q5 over a 25-interval run:")
	fmt.Printf("  mean throughput: %.0f tuples/s\n", e.Recorder.MeanThroughput())
	fmt.Printf("  join results:    %d rows\n", joins.TotalJoined())
	fmt.Printf("  rebalances:      %d\n", ctl.Rebalances())
	fmt.Println("\n  revenue by nation (region ASIA):")
	for n := 0; n < len(workload.Regions)*workload.NationsPerRegion; n++ {
		if workload.RegionOfNation(n) != region {
			continue
		}
		fmt.Printf("    nation %2d: %14.2f\n", n, aggs.TotalRevenue(n))
	}
}
