// TPC-H Q5 as a continuous query: orders and lineitems stream through
// a windowed equi-join on the Zipf-skewed orderkey, then dimension
// lookups, the region filter and a per-nation revenue aggregation —
// the paper's §V pipeline built on dbgen-lite, declared through the
// topology builder with an independent controller on each stage.
//
//	go run ./examples/tpch
package main

import (
	"fmt"

	"repro/internal/ops"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	cfg := workload.DefaultTPCHConfig()
	gen := workload.NewTPCH(cfg)
	const region = 2 // ASIA, per the Q5 template

	joins := ops.NewQ5JoinFleet(gen, region)
	aggs := ops.NewNationRevenueFleet()

	// Two-stage topology: skewed stateful join, then a 25-key nation
	// aggregation. Each stage carries its own Mixed controller — the
	// join absorbs the FK skew, the aggregation its (mild) nation
	// imbalance. With two stages the builder defaults to the streaming
	// inter-stage pipeline: the aggregation consumes mid-interval while
	// the join is still working (topology.StoreAndForward would select
	// the legacy barrier transfer).
	sys := topology.New(
		topology.Spout(gen.Next),
		topology.Budget(20000),
		// FK popularity shifts every 5 intervals (the Fig. 16 trigger).
		topology.AdvanceEach(func(i int64) {
			if i%5 == 0 {
				gen.Advance()
			}
		}),
	).Stage("q5-join", joins.Factory,
		topology.Instances(10), topology.Window(5),
		topology.WithAlgorithm(topology.AlgMixed),
		topology.Theta(0.1), topology.MinKeys(64),
	).Stage("q5-agg", aggs.Factory,
		topology.Instances(4), topology.Window(5),
		topology.WithAlgorithm(topology.AlgMixed),
		topology.Theta(0.1), topology.MinKeys(8),
	).Build()
	defer sys.Stop()

	intervals := topology.Intervals(25)
	sys.Run(intervals)

	fmt.Printf("continuous TPC-H Q5 over a %d-interval run:\n", intervals)
	fmt.Printf("  mean throughput: %.0f tuples/s\n", sys.Recorder().MeanThroughput())
	fmt.Printf("  join results:    %d rows\n", joins.TotalJoined())
	fmt.Printf("  rebalances:      %d on the join, %d on the aggregation\n",
		sys.ControllerNamed("q5-join").Rebalances(), sys.ControllerNamed("q5-agg").Rebalances())
	fmt.Println("\n  revenue by nation (region ASIA):")
	for n := 0; n < len(workload.Regions)*workload.NationsPerRegion; n++ {
		if workload.RegionOfNation(n) != region {
			continue
		}
		fmt.Printf("    nation %2d: %14.2f\n", n, aggs.TotalRevenue(n))
	}
}
