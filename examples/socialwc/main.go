// Social word count: the paper's first real-world application — a
// microblog feed with ~slowly drifting topic popularity, counted per
// topic word over a sliding window, compared across partitioning
// schemes (hash-only Storm, PKG split-keys, Mixed).
//
//	go run ./examples/socialwc
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ops"
	"repro/internal/workload"
)

const intervals = 20

func run(alg core.Algorithm) (thr, lat float64, rebalances int) {
	gen := workload.NewSocial(30000, 0.85, 0.002, 7)
	fleet := ops.NewWordCountFleet()
	sys := core.NewSystem(core.Config{
		Instances: 10,
		ThetaMax:  0.02, // strict balancing — the paper's best setting
		Algorithm: alg,
		Budget:    10000,
		MinKeys:   64,
	}, gen.Next, fleet.Factory)
	defer sys.Stop()
	sys.Engine.AdvanceWorkload = func(int64) { gen.Advance() }

	sys.Run(intervals)
	for _, m := range sys.Recorder().Series[4:] {
		thr += m.Throughput
		lat += m.LatencyMs
	}
	n := float64(intervals - 4)
	if sys.Controller != nil {
		rebalances = sys.Controller.Rebalances()
	}
	return thr / n, lat / n, rebalances
}

func main() {
	fmt.Println("word count on a 30k-topic social feed, theta_max = 0.02")
	fmt.Println()
	fmt.Println("scheme  throughput  latency_ms  rebalances")
	for _, alg := range []core.Algorithm{core.AlgStorm, core.AlgPKG, core.AlgMixed} {
		thr, lat, reb := run(alg)
		fmt.Printf("%-6s  %10.0f  %10.1f  %10d\n", alg, thr, lat, reb)
	}
	fmt.Println("\nexpected shape (Fig. 14a): Mixed > PKG > Storm on throughput;")
	fmt.Println("PKG pays the partial-result merge in latency.")
}
