// Social word count: the paper's first real-world application — a
// microblog feed with ~slowly drifting topic popularity, counted per
// topic word over a sliding window, compared across partitioning
// schemes (hash-only Storm, PKG split-keys, Mixed).
//
//	go run ./examples/socialwc
package main

import (
	"fmt"

	"repro/internal/ops"
	"repro/internal/topology"
	"repro/internal/workload"
)

func run(alg topology.Algorithm, intervals int) (thr, lat float64, rebalances int) {
	gen := workload.NewSocial(30000, 0.85, 0.002, 7)
	fleet := ops.NewWordCountFleet()
	sys := topology.New(
		topology.Spout(gen.Next),
		topology.Budget(10000),
		topology.AdvanceEach(func(int64) { gen.Advance() }),
	).Stage("wordcount", fleet.Factory,
		topology.Instances(10),
		topology.WithAlgorithm(alg),
		topology.Theta(0.02), // strict balancing — the paper's best setting
		topology.MinKeys(64),
	).Build()
	defer sys.Stop()

	sys.Run(intervals)
	warmup := 4
	if warmup >= intervals {
		warmup = 0
	}
	for _, m := range sys.Recorder().Series[warmup:] {
		thr += m.Throughput
		lat += m.LatencyMs
	}
	n := float64(intervals - warmup)
	return thr / n, lat / n, sys.Rebalances()
}

func main() {
	intervals := topology.Intervals(20)
	fmt.Println("word count on a 30k-topic social feed, theta_max = 0.02")
	fmt.Println()
	fmt.Println("scheme  throughput  latency_ms  rebalances")
	for _, alg := range []topology.Algorithm{topology.AlgStorm, topology.AlgPKG, topology.AlgMixed} {
		thr, lat, reb := run(alg, intervals)
		fmt.Printf("%-6s  %10.0f  %10.1f  %10d\n", alg, thr, lat, reb)
	}
	fmt.Println("\nexpected shape (Fig. 14a): Mixed > PKG > Storm on throughput;")
	fmt.Println("PKG pays the partial-result merge in latency.")
}
