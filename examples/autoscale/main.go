// Autoscale: the paper's §VII future work in action — short-term
// fluctuations handled by the Mixed rebalancer while a long-term load
// shift (input rate +60% at interval 12) is detected and answered with
// a scale-out, without confusing one for the other.
//
//	go run ./examples/autoscale
package main

import (
	"fmt"

	"repro/internal/balance"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/longterm"
	"repro/internal/workload"
)

func main() {
	gen := workload.NewZipfStream(5000, 0.85, 1.0, 7000, 21)
	st := engine.NewStage("op", 8,
		func(int) engine.Operator { return engine.StatefulCount }, 1,
		engine.NewAssignmentRouter(core.NewAssignment(8)))
	cfg := engine.DefaultConfig()
	cfg.Budget = 7000
	cfg.Capacity = 1000
	e := engine.New(gen.Next, cfg, st)
	defer e.Stop()

	ctl := controller.New(balance.Mixed{}, balance.Config{ThetaMax: 0.08, TableMax: 3000, Beta: 1.5})
	ctl.MinKeys = 32
	scaler := &longterm.AutoScaler{Detector: longterm.NewDetector(), Inner: ctl.Hook()}
	e.OnSnapshot = scaler.Hook()
	ar := st.AssignmentRouter()
	e.AdvanceWorkload = func(int64) { gen.Advance(ar.Assignment()) }

	fmt.Println("interval  instances  emitted  throughput  util(EWMA)")
	for i := 0; i < 30; i++ {
		if i == 12 {
			e.Cfg.Budget = 11200 // the long-term shift: +60% input rate
			gen.PerInterval = 11200
			fmt.Println("--- long-term shift: input rate +60% ---")
		}
		e.RunInterval()
		m := e.Recorder.Series[i]
		fmt.Printf("%8d  %9d  %7d  %10.0f  %10.2f\n",
			i, st.Instances(), m.Emitted, m.Throughput, scaler.Detector.Utilization())
	}
	fmt.Println()
	fmt.Print(scaler.Summary())
	fmt.Printf("short-term rebalances: %d\n", ctl.Rebalances())
}
