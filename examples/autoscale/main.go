// Autoscale: the paper's §VII future work in action — short-term
// fluctuations handled by the Mixed rebalancer while a long-term load
// shift (input rate +60% at interval 12) is detected and answered with
// a scale-out, without confusing one for the other.
//
//	go run ./examples/autoscale
package main

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/longterm"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	gen := workload.NewZipfStream(5000, 0.85, 1.0, 7000, 21)

	// The builder wires the short-term path (Mixed controller on the
	// stage); the long-term detector layers on top as a raw per-stage
	// snapshot hook, running after the rebalancer each interval.
	scaler := &longterm.AutoScaler{Detector: longterm.NewDetector()}
	sys := topology.New(
		topology.Spout(gen.Next),
		topology.Budget(7000),
	).Stage("op", func(int) engine.Operator { return engine.StatefulCount },
		topology.Instances(8),
		topology.Capacity(1000),
		topology.WithAlgorithm(topology.AlgMixed),
		topology.Theta(0.08), topology.MinKeys(32),
		topology.WithStageHook(scaler),
	).Build()
	defer sys.Stop()

	st := sys.Stage(0)
	ar := st.AssignmentRouter()
	sys.Engine.AdvanceWorkload = func(int64) { gen.Advance(ar.Assignment()) }

	fmt.Println("interval  instances  emitted  throughput  util(EWMA)")
	for i := 0; i < topology.Intervals(30); i++ {
		if i == 12 {
			sys.Engine.Cfg.Budget = 11200 // the long-term shift: +60% input rate
			gen.PerInterval = 11200
			fmt.Println("--- long-term shift: input rate +60% ---")
		}
		sys.Run(1)
		m := sys.Recorder().Series[i]
		fmt.Printf("%8d  %9d  %7d  %10.0f  %10.2f\n",
			i, st.Instances(), m.Emitted, m.Throughput, scaler.Detector.Utilization())
	}
	fmt.Println()
	fmt.Print(scaler.Summary())
	fmt.Printf("short-term rebalances: %d\n", sys.Controller(0).Rebalances())
}
