// Autoscale: the paper's §VII future work in action — short-term
// fluctuations handled by the Mixed rebalancer while long-term load
// shifts are answered elastically, without confusing one for the
// other: the input rate rises 60% at interval 12 (the detector answers
// with a scale-out) and collapses to 40% at interval 30 (a live
// scale-in drains the retiring instance and migrates its keys back to
// the survivors). Both policies run on the stage's unified control
// loop, speaking rebalance and resize commands over protocol messages.
//
//	go run ./examples/autoscale
package main

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/longterm"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	gen := workload.NewZipfStream(5000, 0.85, 1.0, 7000, 21)

	// The builder wires the short-term path (Mixed controller on the
	// stage); the long-term autoscaler joins the same control loop as a
	// second policy, deciding after the rebalancer each interval.
	scaler := &longterm.AutoScaler{Detector: longterm.NewDetector()}
	sys := topology.New(
		topology.Spout(gen.Next),
		topology.Budget(7000),
	).Stage("op", func(int) engine.Operator { return engine.StatefulCount },
		topology.Instances(8),
		topology.Capacity(1000),
		topology.WithAlgorithm(topology.AlgMixed),
		topology.Theta(0.08), topology.MinKeys(32),
		topology.WithPolicy(scaler),
	).Build()
	defer sys.Stop()

	st := sys.Stage(0)
	ar := st.AssignmentRouter()
	sys.Engine.AdvanceWorkload = func(int64) { gen.Advance(ar.Assignment()) }

	setRate := func(r int64) {
		sys.Engine.Cfg.Budget = r
		gen.PerInterval = r
	}

	fmt.Println("interval  instances  emitted  throughput  util(EWMA)")
	for i := 0; i < topology.Intervals(48); i++ {
		switch i {
		case 12:
			setRate(11200) // long-term shift: input rate +60%
			fmt.Println("--- long-term shift: input rate +60% ---")
		case 30:
			setRate(2800) // sustained lull: input rate −75%
			fmt.Println("--- long-term lull: input rate -75% ---")
		}
		sys.Run(1)
		m := sys.Recorder().Series[i]
		fmt.Printf("%8d  %9d  %7d  %10.0f  %10.2f\n",
			i, st.Instances(), m.Emitted, m.Throughput, scaler.Detector.Utilization())
	}
	fmt.Println()
	fmt.Print(scaler.Summary())
	fmt.Printf("short-term rebalances: %d\n", sys.Controller(0).Rebalances())
}
