// Social pipeline: the ROADMAP's 3-stage topology — parse → count →
// top-k — on the declarative builder. Posts fan out through a
// key-oblivious shuffle parse stage into per-word tuples; the count
// stage maintains windowed word frequencies under its own Mixed
// rebalance controller (the skewed, stateful operator the paper's
// scheme exists for); each interval it publishes the touched words'
// count deltas downstream, where a small top-k stage accumulates them
// into the leaderboard. All three stages stream pipelined: top-k sees
// counts from interval i during interval i's cascading close.
//
//	go run ./examples/socialpipe
package main

import (
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/state"
	"repro/internal/topology"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// wordsPerPost is the parse fan-out: each post carries this many topic
// words drawn from the social feed.
const wordsPerPost = 4

// parseOp splits one post into its words — the key-oblivious stage
// (any instance can parse any post, hence shuffle routing).
type parseOp struct{}

func (parseOp) Process(ctx *engine.TaskCtx, t tuple.Tuple) {
	words := t.Value.([]tuple.Key)
	for _, w := range words {
		out := tuple.New(w, nil)
		ctx.Emit(out)
	}
}

// countOp counts words with windowed state (so migration has real
// volume) and publishes each interval's counts downstream as
// (word, delta) tuples. Publishing deltas — not instance-local running
// totals — keeps the downstream accumulation exact across rebalance
// migrations: a key lives on exactly one instance per interval, so the
// per-interval deltas sum to the true total no matter how often the
// key moves between instances.
type countOp struct {
	interval map[tuple.Key]int64
}

func newCountOp() *countOp {
	return &countOp{interval: make(map[tuple.Key]int64)}
}

func (c *countOp) Process(ctx *engine.TaskCtx, t tuple.Tuple) {
	c.interval[t.Key]++
	ctx.Store.Add(t.Key, state.Entry{Value: int64(1), Size: t.StateSize})
}

func (c *countOp) FlushInterval(ctx *engine.TaskCtx) {
	for k, n := range c.interval {
		out := tuple.New(k, n)
		out.Stream = "counts"
		ctx.Emit(out)
		delete(c.interval, k)
	}
}

// topkOp accumulates the published deltas into authoritative running
// totals; the leaderboard is read at a barrier.
type topkOp struct {
	totals map[tuple.Key]int64
}

func (o *topkOp) Process(ctx *engine.TaskCtx, t tuple.Tuple) {
	n, _ := t.Value.(int64)
	o.totals[t.Key] += n
}

type ranked struct {
	word  tuple.Key
	total int64
}

func main() {
	intervals := topology.Intervals(24)
	gen := workload.NewSocial(30000, 0.85, 0.002, 97)

	// The spout emits posts: Value carries the words, Cost the parse
	// work (one unit per word).
	var postSeq uint64
	spout := func() tuple.Tuple {
		words := make([]tuple.Key, wordsPerPost)
		for i := range words {
			words[i] = gen.Next().Key
		}
		postSeq++
		post := tuple.New(tuple.Key(postSeq), words)
		post.Cost = wordsPerPost
		return post
	}

	topks := make(map[int]*topkOp)
	sys := topology.New(
		topology.Spout(spout),
		topology.Budget(2500), // 2500 posts → 10000 words per interval
		topology.AdvanceEach(func(int64) { gen.Advance() }),
	).Stage("parse", func(int) engine.Operator { return parseOp{} },
		topology.Instances(4),
		topology.WithAlgorithm(topology.AlgIdeal), // posts are key-oblivious: shuffle
		topology.Capacity(4000),
	).Stage("count", func(int) engine.Operator { return newCountOp() },
		topology.Instances(10),
		topology.WithAlgorithm(topology.AlgMixed), // the stage's own controller
		topology.Theta(0.02), topology.MinKeys(64),
		topology.Capacity(1200),
		topology.Target(),
	).Stage("topk", func(id int) engine.Operator {
		op := &topkOp{totals: make(map[tuple.Key]int64)}
		topks[id] = op
		return op
	},
		topology.Instances(2),
		topology.Capacity(20000),
	).Build()
	defer sys.Stop()

	fmt.Printf("social pipeline: parse(4, shuffle) -> count(10, mixed th=0.02) -> topk(2), %d intervals\n\n", intervals)
	sys.Run(intervals)

	count := sys.StageNamed("count")
	fmt.Printf("count-stage rebalances: %d, final routing-table size: %d\n",
		sys.ControllerNamed("count").Rebalances(),
		count.AssignmentRouter().Assignment().Table().Len())
	mean := 0.0
	for _, m := range sys.Recorder().Series {
		mean += m.Throughput
	}
	fmt.Printf("mean count-stage throughput: %.0f words/s\n\n", mean/float64(intervals))

	// Merge the per-instance leaderboards (words are key-partitioned
	// across the two top-k instances, so the union is the global view).
	sys.StageNamed("topk").Barrier()
	var all []ranked
	for _, op := range topks {
		for w, n := range op.totals {
			all = append(all, ranked{w, n})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].total != all[j].total {
			return all[i].total > all[j].total
		}
		return all[i].word < all[j].word
	})
	fmt.Println("top 10 topics (word key, running total):")
	for i := 0; i < 10 && i < len(all); i++ {
		fmt.Printf("%8d  %8d\n", all[i].word, all[i].total)
	}
}
