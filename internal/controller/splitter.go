package controller

import (
	"repro/internal/control"
	"repro/internal/stats"
)

// Splitter is the contention-detection policy of the hot-key splitting
// protocol: each interval it feeds the merged snapshot through a
// stats.HotKeyDetector and, whenever the split set changes, emits one
// SetSplit command carrying the complete new set. The stage's executor
// applies it through the pause-free arm/swap/fold machinery; an
// unchanged set emits nothing, so steady state costs one detector scan
// per interval and zero commands.
//
// Run it alongside (typically after) the rebalance Controller on the
// same control loop: the Controller's guardSplit pass and the stage's
// own plan guard keep the two policies composable — a split key is
// pinned to its home, everything else rebalances normally.
type Splitter struct {
	// Det decides which keys are split and at what fan. Required.
	Det *stats.HotKeyDetector

	// Announced counts SetSplit commands emitted (split-set changes).
	Announced int
	// MaxActive tracks the high-water mark of concurrently split keys.
	MaxActive int
}

// NewSplitter builds the policy around a fresh detector: at most
// maxSplit keys split at once, a key entering the set when its interval
// cost reaches enterRatio × the per-task capacity.
func NewSplitter(maxSplit int, enterRatio float64) *Splitter {
	return &Splitter{Det: stats.NewHotKeyDetector(maxSplit, enterRatio)}
}

// Decide implements control.Policy.
func (s *Splitter) Decide(env control.Env, snap *stats.Snapshot) []control.Command {
	if !env.Routable {
		return nil
	}
	hot, changed := s.Det.Update(snap.Keys, env.Capacity, env.Tasks)
	if n := s.Det.Active(); n > s.MaxActive {
		s.MaxActive = n
	}
	if !changed {
		return nil
	}
	set := make([]control.SplitSpec, 0, len(hot))
	for _, h := range hot {
		set = append(set, control.SplitSpec{Key: h.Key, Fan: h.Fan})
	}
	s.Announced++
	return []control.Command{control.SetSplit{Set: set}}
}
