// Package controller implements the rebalance policy of Fig. 5: at
// every interval boundary it receives the operator's merged statistics
// (step 1), judges whether the imbalance warrants a new assignment
// function (step 2), and runs the configured planner. As a
// control.Policy it emits the resulting plan as a Rebalance command,
// which the stage's control.Executor drives through the pause →
// migrate → ack → resume sequence (steps 3–7) over protocol messages;
// the legacy Maybe entry point applies the same decision directly
// against the stage for tests and hand-wired engines.
package controller

import (
	"time"

	"repro/internal/balance"
	"repro/internal/control"
	"repro/internal/engine"
	"repro/internal/stats"
	"repro/internal/tuple"
)

// Controller owns the rebalance policy for one operator.
type Controller struct {
	// Planner constructs F′ (Mixed, MinTable, Readj, …).
	Planner balance.Planner
	// Cfg carries θmax, Amax, β.
	Cfg balance.Config
	// Trigger is the imbalance level that provokes planning; 0 uses
	// Cfg.ThetaMax (plan whenever the constraint is violated).
	Trigger float64
	// MinKeys suppresses planning until the snapshot has at least this
	// many keys (warm-up guard); 0 means no guard.
	MinKeys int
	// IntervalDuration, when positive, models plan-generation latency:
	// a plan whose GenTime exceeds it is applied ⌈GenTime/Interval⌉
	// intervals late, against live state that has meanwhile drifted —
	// the mechanism behind the paper's Fig. 15 observation that Readj's
	// multi-minute planning delays recovery. Zero applies plans
	// immediately (generation is instantaneous relative to the paper's
	// 10 s intervals for the fast planners).
	IntervalDuration time.Duration

	// History of applied plans, for tests and reporting.
	Applied []*balance.Plan
	// SkippedBalanced counts intervals where no plan was needed.
	SkippedBalanced int
	// DeferredApplies counts plans that arrived late.
	DeferredApplies int
	// DroppedStale counts late plans discarded because the instance
	// set shrank while they were in generation (their destinations no
	// longer all exist).
	DroppedStale int
	// SplitPinned counts plan moves stripped because their key was
	// split at decision time: a split key's state is spread across its
	// replica set mid-interval, so the plan must leave it pinned to its
	// home until the detector folds it back.
	SplitPinned int

	pending      *balance.Plan
	pendingDelay int
}

// New builds a controller with the given planner and config.
func New(p balance.Planner, cfg balance.Config) *Controller {
	return &Controller{Planner: p, Cfg: cfg}
}

// trigger returns the effective imbalance trigger.
func (c *Controller) trigger() float64 {
	if c.Trigger > 0 {
		return c.Trigger
	}
	return c.Cfg.ThetaMax
}

// decide is the policy core shared by Decide and Maybe: judge the
// snapshot (step 2) and return the plan to apply this interval, or nil
// to hold. It advances the pending-plan staleness state, so it must be
// called exactly once per interval.
func (c *Controller) decide(routable bool, snap *stats.Snapshot) *balance.Plan {
	if !routable || len(snap.Keys) == 0 {
		return nil
	}
	// A plan still "in generation" from a previous interval lands now
	// (possibly stale); no new planning happens while one is pending.
	if c.pending != nil {
		if c.pendingDelay > 0 {
			c.pendingDelay--
			return nil
		}
		plan := c.pending
		c.pending = nil
		// A plan generated before a scale-in may target instances that
		// no longer exist; applying it would route keys (and migrate
		// state) to retired tasks. Drop it — the next interval's
		// snapshot replans against the current instance set. (Scale-out
		// is harmless here: destinations only ever grow valid.)
		if maxPlanDest(plan) >= snap.ND {
			c.DroppedStale++
			return nil
		}
		c.DeferredApplies++
		return plan
	}
	if c.MinKeys > 0 && len(snap.Keys) < c.MinKeys {
		return nil
	}
	if stats.MaxTheta(snap.Loads()) <= c.trigger() {
		c.SkippedBalanced++
		return nil
	}
	plan := c.Planner.Plan(snap, c.Cfg)
	if c.IntervalDuration > 0 && plan.GenTime > c.IntervalDuration {
		delay := int(plan.GenTime / c.IntervalDuration)
		c.pending = plan
		c.pendingDelay = delay - 1
		if c.pendingDelay < 0 {
			c.pendingDelay = 0
		}
		return nil
	}
	return plan
}

// maxPlanDest returns the largest destination index a plan references
// (routing-table entries and migration targets), or -1 for an empty
// plan.
func maxPlanDest(plan *balance.Plan) int {
	max := -1
	if plan.Table != nil {
		plan.Table.Each(func(_ tuple.Key, d int) {
			if d > max {
				max = d
			}
		})
	}
	for _, d := range plan.MoveDest {
		if d > max {
			max = d
		}
	}
	return max
}

// Decide implements control.Policy: judge one snapshot and emit the
// rebalance command the stage's executor should apply. The plan is
// recorded in Applied at decision time — the executor's application is
// unconditional, so decision and application histories coincide.
func (c *Controller) Decide(env control.Env, snap *stats.Snapshot) []control.Command {
	plan := c.decide(env.Routable, snap)
	if plan == nil {
		return nil
	}
	c.guardSplit(plan, env.SplitKeys, snap)
	c.Applied = append(c.Applied, plan)
	return []control.Command{control.Rebalance{Plan: plan}}
}

// guardSplit pins every currently split key to its home destination:
// its migration entry is stripped (counted in SplitPinned) and its
// routing-table entry rewritten so F(k) still lands on the home — as a
// hash fallback where possible, as an explicit entry otherwise. The
// stage applies the same guard at plan time (Stage.SplitPinned); this
// controller-side pass keeps the announced plan honest, so wire
// observers never see a migration that will be refused.
func (c *Controller) guardSplit(plan *balance.Plan, split []tuple.Key, snap *stats.Snapshot) {
	if len(split) == 0 {
		return
	}
	splitSet := make(map[tuple.Key]bool, len(split))
	for _, k := range split {
		splitSet[k] = true
	}
	if len(plan.Moved) > 0 {
		kept := plan.Moved[:0]
		for _, k := range plan.Moved {
			if splitSet[k] {
				delete(plan.MoveDest, k)
				c.SplitPinned++
				continue
			}
			kept = append(kept, k)
		}
		plan.Moved = kept
	}
	if plan.Table == nil {
		return
	}
	// The snapshot carries each split key's current destination (its
	// home — the plan guard keeps that invariant) and hash h(k).
	for i := range snap.Keys {
		ks := &snap.Keys[i]
		if !splitSet[ks.Key] {
			continue
		}
		if ks.Hash == ks.Dest {
			plan.Table.Delete(ks.Key)
		} else {
			plan.Table.Put(ks.Key, ks.Dest)
		}
	}
}

// Maybe evaluates one snapshot and rebalances the stage directly if
// needed, returning what it did (nil when balanced or not applicable).
// It is the in-process shortcut around the protocol path — same
// decision core, same application primitive — used by unit tests and
// hand-wired engines.
func (c *Controller) Maybe(stage *engine.Stage, snap *stats.Snapshot) *engine.Rebalance {
	plan := c.decide(stage.AssignmentRouter() != nil, snap)
	if plan == nil {
		return nil
	}
	return c.apply(stage, plan)
}

// apply installs a plan against the live stage. Keys that disappeared
// since planning simply migrate zero state; the routing table installs
// as computed. A stage that cannot apply plans (no assignment router)
// yields a hold — c.decide already gates on routability, so the error
// leg is unreachable in practice.
func (c *Controller) apply(stage *engine.Stage, plan *balance.Plan) *engine.Rebalance {
	moved, err := stage.ApplyPlan(plan)
	if err != nil {
		return nil
	}
	c.Applied = append(c.Applied, plan)
	return &engine.Rebalance{Plan: plan, Moved: moved}
}

// Hook adapts the controller to the engine-wide OnSnapshot callback,
// managing only the engine's target stage, via the direct Maybe path.
// Topologies built through the topology builder run the controller as
// a control.Policy on the unified loop instead.
func (c *Controller) Hook() engine.SnapshotHook {
	return func(e *engine.Engine, si int, snap *stats.Snapshot) *engine.Rebalance {
		if si != e.Target {
			return nil
		}
		return c.Maybe(e.Stages[si], snap)
	}
}

// StageHook adapts the controller to the engine's per-stage snapshot
// fan-out: the returned hook manages exactly stage si, regardless of
// which stage the engine records metrics for. Register it with
// engine.AddSnapshotHook(si, ...); one controller must manage one
// stage only (its pending-plan state is per-operator).
func (c *Controller) StageHook(si int) engine.SnapshotHook {
	return func(e *engine.Engine, idx int, snap *stats.Snapshot) *engine.Rebalance {
		if idx != si {
			return nil
		}
		return c.Maybe(e.Stages[idx], snap)
	}
}

// Rebalances returns how many plans were applied.
func (c *Controller) Rebalances() int { return len(c.Applied) }
