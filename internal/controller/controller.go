// Package controller implements the rebalance control component of
// Fig. 5: at every interval boundary it receives the operator's merged
// statistics (step 1), judges whether the imbalance warrants a new
// assignment function (step 2), runs the configured planner, and drives
// the pause → migrate → ack → resume sequence against the stage
// (steps 3–7, realized by engine.Stage.ApplyPlan).
package controller

import (
	"time"

	"repro/internal/balance"
	"repro/internal/engine"
	"repro/internal/stats"
)

// Controller owns the rebalance policy for one operator.
type Controller struct {
	// Planner constructs F′ (Mixed, MinTable, Readj, …).
	Planner balance.Planner
	// Cfg carries θmax, Amax, β.
	Cfg balance.Config
	// Trigger is the imbalance level that provokes planning; 0 uses
	// Cfg.ThetaMax (plan whenever the constraint is violated).
	Trigger float64
	// MinKeys suppresses planning until the snapshot has at least this
	// many keys (warm-up guard); 0 means no guard.
	MinKeys int
	// IntervalDuration, when positive, models plan-generation latency:
	// a plan whose GenTime exceeds it is applied ⌈GenTime/Interval⌉
	// intervals late, against live state that has meanwhile drifted —
	// the mechanism behind the paper's Fig. 15 observation that Readj's
	// multi-minute planning delays recovery. Zero applies plans
	// immediately (generation is instantaneous relative to the paper's
	// 10 s intervals for the fast planners).
	IntervalDuration time.Duration

	// History of applied plans, for tests and reporting.
	Applied []*balance.Plan
	// SkippedBalanced counts intervals where no plan was needed.
	SkippedBalanced int
	// DeferredApplies counts plans that arrived late.
	DeferredApplies int

	pending      *balance.Plan
	pendingDelay int
}

// New builds a controller with the given planner and config.
func New(p balance.Planner, cfg balance.Config) *Controller {
	return &Controller{Planner: p, Cfg: cfg}
}

// trigger returns the effective imbalance trigger.
func (c *Controller) trigger() float64 {
	if c.Trigger > 0 {
		return c.Trigger
	}
	return c.Cfg.ThetaMax
}

// Maybe evaluates one snapshot and rebalances the stage if needed,
// returning what it did (nil when balanced or not applicable).
func (c *Controller) Maybe(stage *engine.Stage, snap *stats.Snapshot) *engine.Rebalance {
	if stage.AssignmentRouter() == nil || len(snap.Keys) == 0 {
		return nil
	}
	// A plan still "in generation" from a previous interval lands now
	// (possibly stale); no new planning happens while one is pending.
	if c.pending != nil {
		if c.pendingDelay > 0 {
			c.pendingDelay--
			return nil
		}
		plan := c.pending
		c.pending = nil
		c.DeferredApplies++
		return c.apply(stage, plan)
	}
	if c.MinKeys > 0 && len(snap.Keys) < c.MinKeys {
		return nil
	}
	if stats.MaxTheta(snap.Loads()) <= c.trigger() {
		c.SkippedBalanced++
		return nil
	}
	plan := c.Planner.Plan(snap, c.Cfg)
	if c.IntervalDuration > 0 && plan.GenTime > c.IntervalDuration {
		delay := int(plan.GenTime / c.IntervalDuration)
		c.pending = plan
		c.pendingDelay = delay - 1
		if c.pendingDelay < 0 {
			c.pendingDelay = 0
		}
		return nil
	}
	return c.apply(stage, plan)
}

// apply installs a plan against the live stage. Keys that disappeared
// since planning simply migrate zero state; the routing table installs
// as computed.
func (c *Controller) apply(stage *engine.Stage, plan *balance.Plan) *engine.Rebalance {
	moved := stage.ApplyPlan(plan)
	c.Applied = append(c.Applied, plan)
	return &engine.Rebalance{Plan: plan, Moved: moved}
}

// Hook adapts the controller to the engine-wide OnSnapshot callback,
// managing only the engine's target stage. Topologies where more than
// one stage is controller-managed register one controller per stage
// through StageHook and engine.AddSnapshotHook instead.
func (c *Controller) Hook() engine.SnapshotHook {
	return func(e *engine.Engine, si int, snap *stats.Snapshot) *engine.Rebalance {
		if si != e.Target {
			return nil
		}
		return c.Maybe(e.Stages[si], snap)
	}
}

// StageHook adapts the controller to the engine's per-stage snapshot
// fan-out: the returned hook manages exactly stage si, regardless of
// which stage the engine records metrics for. Register it with
// engine.AddSnapshotHook(si, ...); one controller must manage one
// stage only (its pending-plan state is per-operator).
func (c *Controller) StageHook(si int) engine.SnapshotHook {
	return func(e *engine.Engine, idx int, snap *stats.Snapshot) *engine.Rebalance {
		if idx != si {
			return nil
		}
		return c.Maybe(e.Stages[idx], snap)
	}
}

// Rebalances returns how many plans were applied.
func (c *Controller) Rebalances() int { return len(c.Applied) }
