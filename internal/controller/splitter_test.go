package controller

import (
	"testing"

	"repro/internal/balance"
	"repro/internal/control"
	"repro/internal/route"
	"repro/internal/stats"
	"repro/internal/tuple"
)

// stubPlanner returns a canned plan, so guard tests control exactly
// what the controller would announce.
type stubPlanner struct{ plan *balance.Plan }

func (p stubPlanner) Name() string                                       { return "stub" }
func (p stubPlanner) Plan(*stats.Snapshot, balance.Config) *balance.Plan { return p.plan }

// TestControllerGuardPinsSplitKeys pins the controller-side split
// guard: a plan that migrates a split key has that move stripped
// (SplitPinned), and the announced routing table rewritten so F(k)
// still lands on the key's home — as an explicit entry when home
// differs from h(k), as a hash fallback (entry deleted) otherwise.
func TestControllerGuardPinsSplitKeys(t *testing.T) {
	// Key 5: split, home 2 ≠ hash 0 → table entry must pin 5 → 2.
	// Key 9: split, home = hash = 1 → table entry must be deleted.
	// Key 7: cold → its move survives untouched.
	tab := route.NewTable()
	tab.Put(5, 3)
	tab.Put(9, 3)
	tab.Put(7, 3)
	plan := &balance.Plan{
		Table:    tab,
		Moved:    []tuple.Key{5, 9, 7},
		MoveDest: map[tuple.Key]int{5: 3, 9: 3, 7: 3},
	}
	c := New(stubPlanner{plan}, balance.Config{ThetaMax: 0.01})
	snap := &stats.Snapshot{ND: 4, Keys: []stats.KeyStat{
		{Key: 5, Cost: 5000, Dest: 2, Hash: 0},
		{Key: 9, Cost: 4000, Dest: 1, Hash: 1},
		{Key: 7, Cost: 10, Dest: 0, Hash: 0},
	}}
	env := control.Env{Routable: true, SplitKeys: []tuple.Key{5, 9}}
	cmds := c.Decide(env, snap)
	if len(cmds) != 1 {
		t.Fatalf("got %d commands, want 1 rebalance", len(cmds))
	}
	got := cmds[0].(control.Rebalance).Plan
	if c.SplitPinned != 2 {
		t.Fatalf("SplitPinned = %d, want 2", c.SplitPinned)
	}
	if len(got.Moved) != 1 || got.Moved[0] != 7 {
		t.Fatalf("Moved = %v, want [7]", got.Moved)
	}
	if _, ok := got.MoveDest[5]; ok {
		t.Fatal("split key 5 kept its MoveDest entry")
	}
	if d, ok := got.Table.Lookup(5); !ok || d != 2 {
		t.Fatalf("table routes split key 5 to (%d,%v), want its home 2", d, ok)
	}
	if _, ok := got.Table.Lookup(9); ok {
		t.Fatal("split key 9 kept a table entry although home = hash")
	}
	if d, ok := got.Table.Lookup(7); !ok || d != 3 {
		t.Fatalf("cold key 7 routed to (%d,%v), plan wanted 3", d, ok)
	}
}

// TestSplitterEmitsOnChangeOnly pins the policy's announce discipline:
// one SetSplit when the set changes, silence while it holds, and a
// final empty SetSplit when the key cools past the hysteresis exit.
func TestSplitterEmitsOnChangeOnly(t *testing.T) {
	s := NewSplitter(4, 1.0)
	env := control.Env{Routable: true, Tasks: 8, Capacity: 1000}
	snap := func(cost int64) *stats.Snapshot {
		return &stats.Snapshot{ND: 8, Keys: []stats.KeyStat{{Key: 3, Cost: cost, Freq: cost}}}
	}
	if cmds := s.Decide(env, snap(500)); cmds != nil {
		t.Fatalf("cold snapshot emitted %v", cmds)
	}
	cmds := s.Decide(env, snap(2200))
	if len(cmds) != 1 {
		t.Fatalf("hot snapshot emitted %d commands, want 1", len(cmds))
	}
	set := cmds[0].(control.SetSplit).Set
	if len(set) != 1 || set[0].Key != 3 || set[0].Fan != 3 {
		t.Fatalf("SetSplit = %v, want key 3 fan 3", set)
	}
	if cmds := s.Decide(env, snap(2200)); cmds != nil {
		t.Fatalf("unchanged set re-announced: %v", cmds)
	}
	cmds = s.Decide(env, snap(100))
	if len(cmds) != 1 || len(cmds[0].(control.SetSplit).Set) != 0 {
		t.Fatalf("cooled key should announce an empty set, got %v", cmds)
	}
	if s.Announced != 2 || s.MaxActive != 1 {
		t.Fatalf("Announced=%d MaxActive=%d, want 2 and 1", s.Announced, s.MaxActive)
	}
	// Not routable: the policy must hold entirely.
	if cmds := s.Decide(control.Env{Tasks: 8, Capacity: 1000}, snap(9000)); cmds != nil {
		t.Fatalf("non-routable stage got %v", cmds)
	}
}
