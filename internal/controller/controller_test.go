package controller

import (
	"time"

	"testing"

	"repro/internal/balance"
	"repro/internal/engine"
	"repro/internal/hashring"
	"repro/internal/route"
	"repro/internal/stats"
	"repro/internal/tuple"
)

func newStage(nd int) *engine.Stage {
	r := engine.NewAssignmentRouter(route.NewAssignment(route.NewTable(), hashring.New(nd, 0)))
	return engine.NewStage("op", nd, func(int) engine.Operator { return engine.StatefulCount }, 1, r)
}

// feedSkewed pushes a hot key plus background keys, then closes the
// interval and returns the snapshot.
func feedSkewed(st *engine.Stage, hot tuple.Key, hotN, bgKeys int) *stats.Snapshot {
	for i := 0; i < hotN; i++ {
		st.Feed(tuple.New(hot, nil))
	}
	for i := 0; i < bgKeys; i++ {
		st.Feed(tuple.New(tuple.Key(1000+i), nil))
	}
	st.Barrier()
	return st.EndInterval(0)
}

func TestControllerSkipsBalancedLoad(t *testing.T) {
	st := newStage(2)
	defer st.Stop()
	c := New(balance.Mixed{}, balance.Config{ThetaMax: 0.5, Beta: 1.5})
	// Uniform load across many keys: no plan expected at θmax = 0.5.
	for i := 0; i < 1000; i++ {
		st.Feed(tuple.New(tuple.Key(i), nil))
	}
	st.Barrier()
	snap := st.EndInterval(0)
	if r := c.Maybe(st, snap); r != nil {
		t.Fatalf("controller rebalanced a balanced operator (θ=%v)", snap.Loads())
	}
	if c.SkippedBalanced != 1 {
		t.Fatalf("SkippedBalanced = %d, want 1", c.SkippedBalanced)
	}
}

func TestControllerRebalancesSkew(t *testing.T) {
	st := newStage(2)
	defer st.Stop()
	c := New(balance.Mixed{}, balance.Config{ThetaMax: 0.08, Beta: 1.5})
	snap := feedSkewed(st, 7, 500, 100)
	r := c.Maybe(st, snap)
	if r == nil {
		t.Fatal("controller ignored heavy skew")
	}
	if r.Plan == nil || len(r.Plan.Moved) == 0 {
		t.Fatal("plan moved nothing despite skew")
	}
	if c.Rebalances() != 1 {
		t.Fatalf("Rebalances = %d, want 1", c.Rebalances())
	}
	// The hot key's state must now live at its planned destination.
	if d, ok := r.Plan.MoveDest[7]; ok {
		if st.StoreOf(d).Size(7) == 0 {
			t.Fatal("hot key state not at planned destination")
		}
	}
}

func TestControllerMinKeysGuard(t *testing.T) {
	st := newStage(2)
	defer st.Stop()
	c := New(balance.Mixed{}, balance.Config{ThetaMax: 0.01, Beta: 1.5})
	c.MinKeys = 1000
	snap := feedSkewed(st, 3, 200, 10)
	if r := c.Maybe(st, snap); r != nil {
		t.Fatal("MinKeys guard did not suppress rebalance")
	}
}

func TestControllerCustomTrigger(t *testing.T) {
	st := newStage(2)
	defer st.Stop()
	c := New(balance.Mixed{}, balance.Config{ThetaMax: 0.01, Beta: 1.5})
	c.Trigger = 10 // effectively never
	snap := feedSkewed(st, 3, 500, 10)
	if r := c.Maybe(st, snap); r != nil {
		t.Fatal("custom trigger ignored")
	}
}

func TestControllerHookTargetsOnlyTargetStage(t *testing.T) {
	st := newStage(2)
	c := New(balance.Mixed{}, balance.Config{ThetaMax: 0.08, Beta: 1.5})
	e := engine.New(func() tuple.Tuple { return tuple.New(1, nil) },
		engine.Config{Window: 1, Budget: 100, MaxPendingFactor: 2, MigrationFactor: 1}, st)
	defer e.Stop()
	e.OnSnapshot = c.Hook()
	hook := c.Hook()
	if r := hook(e, 1, &stats.Snapshot{}); r != nil {
		t.Fatal("hook acted on non-target stage")
	}
}

// End-to-end: a hash-skewed stream under the Mixed controller must end
// up with materially lower steady-state skew than without it.
func TestControllerEndToEndReducesSkew(t *testing.T) {
	run := func(withController bool) float64 {
		st := newStage(4)
		cfg := engine.Config{Window: 1, Budget: 2000, MaxPendingFactor: 2, MigrationFactor: 1}
		var n uint64
		// 10 hot keys cover most of the load.
		e := engine.New(func() tuple.Tuple {
			n++
			if n%10 < 7 {
				return tuple.New(tuple.Key(n%10), nil)
			}
			return tuple.New(tuple.Key(100+n%500), nil)
		}, cfg, st)
		defer e.Stop()
		if withController {
			c := New(balance.Mixed{}, balance.Config{ThetaMax: 0.08, Beta: 1.5})
			e.OnSnapshot = c.Hook()
		}
		e.Run(10)
		// Average skew over the last 5 intervals.
		var s float64
		for _, m := range e.Recorder.Series[5:] {
			s += m.Skewness
		}
		return s / 5
	}
	plain := run(false)
	managed := run(true)
	if managed >= plain {
		t.Fatalf("controller did not reduce skew: managed %.3f vs plain %.3f", managed, plain)
	}
	if managed > 1.3 {
		t.Fatalf("managed steady-state skew %.3f too high", managed)
	}
}

// slowPlanner wraps a planner and inflates its reported generation
// time, exercising the deferred-application path.
type slowPlanner struct {
	inner   balance.Planner
	genTime time.Duration
}

func (s slowPlanner) Name() string { return "slow" }
func (s slowPlanner) Plan(snap *stats.Snapshot, cfg balance.Config) *balance.Plan {
	p := s.inner.Plan(snap, cfg)
	p.GenTime = s.genTime
	return p
}

func TestSlowPlannerAppliesLate(t *testing.T) {
	st := newStage(2)
	defer st.Stop()
	c := New(slowPlanner{balance.Mixed{}, 25 * time.Millisecond}, balance.Config{ThetaMax: 0.08, Beta: 1.5})
	c.IntervalDuration = 10 * time.Millisecond // plan takes 2.5 intervals

	// Interval 0: imbalance detected, plan generated but deferred.
	snap := feedSkewed(st, 7, 500, 100)
	if r := c.Maybe(st, snap); r != nil {
		t.Fatal("slow plan applied immediately")
	}
	// Interval 1: still generating.
	snap1 := feedSkewed(st, 7, 500, 100)
	if r := c.Maybe(st, snap1); r != nil {
		t.Fatal("slow plan applied one interval early")
	}
	// Interval 2: plan lands.
	snap2 := feedSkewed(st, 7, 500, 100)
	r := c.Maybe(st, snap2)
	if r == nil {
		t.Fatal("deferred plan never applied")
	}
	if c.DeferredApplies != 1 {
		t.Fatalf("DeferredApplies = %d, want 1", c.DeferredApplies)
	}
}

// fixedPlanner always returns the same pre-built plan.
type fixedPlanner struct{ p *balance.Plan }

func (f fixedPlanner) Name() string { return f.p.Algorithm }
func (f fixedPlanner) Plan(*stats.Snapshot, balance.Config) *balance.Plan {
	return f.p
}

// TestStalePlanDroppedAfterScaleIn pins the elastic hazard: a plan
// parked in generation before a scale-in may target instances that no
// longer exist; releasing it unchecked would panic the driver (index
// out of range in migrateKey) or install routes to a retired task. The
// controller must drop it and replan from the next snapshot instead.
func TestStalePlanDroppedAfterScaleIn(t *testing.T) {
	st := newStage(3)
	defer st.Stop()
	// A fixed plan that routes the hot key to instance 2 — exactly the
	// instance the scale-in below retires.
	stale := &balance.Plan{
		Algorithm: "fixed",
		Table:     route.NewTable(),
		Moved:     []tuple.Key{7},
		MoveDest:  map[tuple.Key]int{7: 2},
		GenTime:   15 * time.Millisecond,
	}
	stale.Table.Put(7, 2)
	c := New(fixedPlanner{stale}, balance.Config{ThetaMax: 0.08, Beta: 1.5})
	c.IntervalDuration = 10 * time.Millisecond // plans land one interval late

	// Interval 0: imbalance detected at 3 instances; plan deferred.
	snap := feedSkewed(st, 7, 500, 100)
	if r := c.Maybe(st, snap); r != nil {
		t.Fatal("slow plan applied immediately")
	}
	// The instance set shrinks while the plan is in generation.
	st.ScaleIn()

	// Interval 1: the pending plan lands — computed for 3 instances,
	// released against 2. It must be dropped, not applied.
	for i := 0; i < 300; i++ {
		st.Feed(tuple.New(tuple.Key(1000+i), nil))
	}
	st.Barrier()
	snap1 := st.EndInterval(1)
	if r := c.Maybe(st, snap1); r != nil {
		t.Fatalf("stale plan applied against the shrunk stage: %+v", r.Plan)
	}
	if c.DroppedStale != 1 {
		t.Fatalf("DroppedStale = %d, want 1", c.DroppedStale)
	}
	if c.DeferredApplies != 0 {
		t.Fatalf("DeferredApplies = %d for a dropped plan", c.DeferredApplies)
	}
	// No live key may route beyond the surviving instances.
	ar := st.AssignmentRouter()
	for _, k := range st.LiveKeys() {
		if d := ar.Assignment().Dest(k); d >= 2 {
			t.Fatalf("key %d routed to retired instance %d", k, d)
		}
	}
}

func TestFastPlannerAppliesImmediately(t *testing.T) {
	st := newStage(2)
	defer st.Stop()
	c := New(balance.Mixed{}, balance.Config{ThetaMax: 0.08, Beta: 1.5})
	c.IntervalDuration = time.Hour // everything is "fast" at this scale
	snap := feedSkewed(st, 7, 500, 100)
	if r := c.Maybe(st, snap); r == nil {
		t.Fatal("fast plan deferred")
	}
	if c.DeferredApplies != 0 {
		t.Fatal("fast path counted as deferred")
	}
}
