// Package longterm implements the paper's stated future work (§VII):
// "a new mechanism, to support smooth workload redistribution suitable
// to both long-term workload shifts and short-term workload
// fluctuations."
//
// The paper's taxonomy (§I): short-term fluctuations are random and
// transient — the intra-operator rebalancer's job; long-term shifts
// are sustained distribution changes that need heavyweight resource
// scheduling (adding or returning instances, cf. DRS [10]). The two
// must not be confused: reacting to a transient with a scale-out
// wastes resources, and trying to rebalance away a genuine capacity
// shortfall thrashes the routing table.
//
// Detector separates them by watching the *total* offered load against
// total capacity: skew moves load between instances but conserves the
// total, so a sustained total-utilization trend is exactly the
// long-term component. An EWMA smooths the fluctuations out; patience
// and cooldown windows stop transients and fresh scale-outs from
// triggering again.
package longterm

import (
	"fmt"

	"repro/internal/control"
	"repro/internal/stats"
)

// Action is a resource recommendation.
type Action int

// Detector outcomes.
const (
	// Hold means the current instance set suffices.
	Hold Action = iota
	// ScaleOut recommends adding an instance (sustained overload).
	ScaleOut
	// ScaleIn recommends removing an instance (sustained idleness).
	ScaleIn
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case ScaleOut:
		return "scale-out"
	case ScaleIn:
		return "scale-in"
	default:
		return "hold"
	}
}

// Detector watches utilization over intervals and recommends resource
// actions once a trend is sustained. The zero value is not usable; use
// NewDetector.
type Detector struct {
	// Alpha is the EWMA smoothing factor in (0, 1]; higher reacts
	// faster. Default 0.3.
	Alpha float64
	// HighUtil is the sustained-utilization threshold above which the
	// operator needs more instances. Default 0.95.
	HighUtil float64
	// LowUtil is the threshold below which an instance could be
	// returned. Default 0.5.
	LowUtil float64
	// Patience is how many consecutive intervals the EWMA must sit
	// beyond a threshold before acting — the short-vs-long-term
	// discriminator. Default 5.
	Patience int
	// Cooldown is how many intervals to hold after any action while
	// the system re-converges. Default 5.
	Cooldown int

	ewma     float64
	seeded   bool
	hot      int
	cold     int
	cooldown int
}

// NewDetector returns a detector with the documented defaults.
func NewDetector() *Detector {
	return &Detector{Alpha: 0.3, HighUtil: 0.95, LowUtil: 0.5, Patience: 5, Cooldown: 5}
}

// Utilization returns the current smoothed utilization estimate.
func (d *Detector) Utilization() float64 { return d.ewma }

// Observe feeds one interval's total offered load and total service
// capacity and returns the recommendation.
func (d *Detector) Observe(totalLoad, totalCapacity int64) Action {
	if totalCapacity <= 0 {
		return Hold
	}
	u := float64(totalLoad) / float64(totalCapacity)
	if !d.seeded {
		d.ewma = u
		d.seeded = true
	} else {
		d.ewma = d.Alpha*u + (1-d.Alpha)*d.ewma
	}
	if d.cooldown > 0 {
		d.cooldown--
		return Hold
	}
	switch {
	case d.ewma > d.HighUtil:
		d.hot++
		d.cold = 0
	case d.ewma < d.LowUtil:
		d.cold++
		d.hot = 0
	default:
		d.hot, d.cold = 0, 0
	}
	if d.hot >= d.Patience {
		d.hot, d.cold = 0, 0
		d.cooldown = d.Cooldown
		return ScaleOut
	}
	if d.cold >= d.Patience {
		d.hot, d.cold = 0, 0
		d.cooldown = d.Cooldown
		return ScaleIn
	}
	return Hold
}

// AutoScaler is the long-term half of the unified control plane: a
// control.Policy that feeds the detector with each interval's total
// offered load and answers sustained trends with elastic commands —
// ScaleOut under sustained overload, ScaleIn under sustained idleness,
// both applied live by the stage's control.Executor (scale-in drains
// the retiring instance and migrates its keys' windowed state back to
// the survivors). Run it on the same per-stage loop as the short-term
// rebalance controller (topology.WithPolicy after WithAlgorithm): the
// loop runs policies in order, so the rebalancer handles fluctuations
// each interval before the detector judges the long-term trend.
type AutoScaler struct {
	// Detector decides; Capacity overrides the per-task service
	// capacity reported by the stage (0 uses the reported value).
	Detector *Detector
	Capacity int64
	// MinInstances floors scale-in: the stage never shrinks below this
	// many instances. 0 means the floor is 1 (a stage cannot retire its
	// only instance).
	MinInstances int

	// History records every applied resize with its interval; a
	// recommendation suppressed by resizability or the floor leaves no
	// event.
	History []Event
	// ScaleOuts and ScaleIns count applied resizes.
	ScaleOuts int
	ScaleIns  int
}

// Event is one recommendation.
type Event struct {
	Interval int64
	Action   Action
	Util     float64
}

// Decide implements control.Policy: one interval's long-term judgment.
// The detector always observes (its EWMA must track utilization even
// on stages that cannot resize); commands are only emitted for
// resizable stages (assignment routing over a consistent-hash ring —
// exactly what the executor can apply), and scale-in additionally
// respects the instance floor.
func (a *AutoScaler) Decide(env control.Env, snap *stats.Snapshot) []control.Command {
	cap64 := a.Capacity
	if cap64 == 0 {
		cap64 = env.Capacity
	}
	// The snapshot records *admitted* load; when backpressure
	// throttled the spout, true demand is higher by the throttle
	// ratio. Without the correction a saturated system reports
	// comfortable utilization forever (demand hidden by its own
	// symptom).
	demand := snap.TotalCost()
	if env.Emitted > 0 && env.Budget > env.Emitted {
		demand = demand * env.Budget / env.Emitted
	}
	act := a.Detector.Observe(demand, cap64*int64(env.Tasks))
	if act == Hold {
		return nil
	}
	// History and counters record *applied* actions only (the summary
	// says "applied"): a recommendation suppressed by resizability or
	// the instance floor leaves no event behind.
	record := func() {
		a.History = append(a.History, Event{Interval: env.Interval, Action: act, Util: a.Detector.Utilization()})
	}
	switch act {
	case ScaleOut:
		if env.Resizable {
			record()
			a.ScaleOuts++
			return []control.Command{control.ScaleOut{}}
		}
	case ScaleIn:
		floor := a.MinInstances
		if floor < 1 {
			floor = 1
		}
		if env.Resizable && env.Tasks > floor {
			record()
			a.ScaleIns++
			return []control.Command{control.ScaleIn{}}
		}
	}
	return nil
}

// Summary renders the action history.
func (a *AutoScaler) Summary() string {
	s := fmt.Sprintf("scale-outs applied: %d, scale-ins applied: %d\n", a.ScaleOuts, a.ScaleIns)
	for _, ev := range a.History {
		s += fmt.Sprintf("  interval %d: %s (util %.2f)\n", ev.Interval, ev.Action, ev.Util)
	}
	return s
}
