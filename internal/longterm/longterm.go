// Package longterm implements the paper's stated future work (§VII):
// "a new mechanism, to support smooth workload redistribution suitable
// to both long-term workload shifts and short-term workload
// fluctuations."
//
// The paper's taxonomy (§I): short-term fluctuations are random and
// transient — the intra-operator rebalancer's job; long-term shifts
// are sustained distribution changes that need heavyweight resource
// scheduling (adding or returning instances, cf. DRS [10]). The two
// must not be confused: reacting to a transient with a scale-out
// wastes resources, and trying to rebalance away a genuine capacity
// shortfall thrashes the routing table.
//
// Detector separates them by watching the *total* offered load against
// total capacity: skew moves load between instances but conserves the
// total, so a sustained total-utilization trend is exactly the
// long-term component. An EWMA smooths the fluctuations out; patience
// and cooldown windows stop transients and fresh scale-outs from
// triggering again.
package longterm

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/stats"
)

// Action is a resource recommendation.
type Action int

// Detector outcomes.
const (
	// Hold means the current instance set suffices.
	Hold Action = iota
	// ScaleOut recommends adding an instance (sustained overload).
	ScaleOut
	// ScaleIn recommends removing an instance (sustained idleness).
	ScaleIn
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case ScaleOut:
		return "scale-out"
	case ScaleIn:
		return "scale-in"
	default:
		return "hold"
	}
}

// Detector watches utilization over intervals and recommends resource
// actions once a trend is sustained. The zero value is not usable; use
// NewDetector.
type Detector struct {
	// Alpha is the EWMA smoothing factor in (0, 1]; higher reacts
	// faster. Default 0.3.
	Alpha float64
	// HighUtil is the sustained-utilization threshold above which the
	// operator needs more instances. Default 0.95.
	HighUtil float64
	// LowUtil is the threshold below which an instance could be
	// returned. Default 0.5.
	LowUtil float64
	// Patience is how many consecutive intervals the EWMA must sit
	// beyond a threshold before acting — the short-vs-long-term
	// discriminator. Default 5.
	Patience int
	// Cooldown is how many intervals to hold after any action while
	// the system re-converges. Default 5.
	Cooldown int

	ewma     float64
	seeded   bool
	hot      int
	cold     int
	cooldown int
}

// NewDetector returns a detector with the documented defaults.
func NewDetector() *Detector {
	return &Detector{Alpha: 0.3, HighUtil: 0.95, LowUtil: 0.5, Patience: 5, Cooldown: 5}
}

// Utilization returns the current smoothed utilization estimate.
func (d *Detector) Utilization() float64 { return d.ewma }

// Observe feeds one interval's total offered load and total service
// capacity and returns the recommendation.
func (d *Detector) Observe(totalLoad, totalCapacity int64) Action {
	if totalCapacity <= 0 {
		return Hold
	}
	u := float64(totalLoad) / float64(totalCapacity)
	if !d.seeded {
		d.ewma = u
		d.seeded = true
	} else {
		d.ewma = d.Alpha*u + (1-d.Alpha)*d.ewma
	}
	if d.cooldown > 0 {
		d.cooldown--
		return Hold
	}
	switch {
	case d.ewma > d.HighUtil:
		d.hot++
		d.cold = 0
	case d.ewma < d.LowUtil:
		d.cold++
		d.hot = 0
	default:
		d.hot, d.cold = 0, 0
	}
	if d.hot >= d.Patience {
		d.hot, d.cold = 0, 0
		d.cooldown = d.Cooldown
		return ScaleOut
	}
	if d.cold >= d.Patience {
		d.hot, d.cold = 0, 0
		d.cooldown = d.Cooldown
		return ScaleIn
	}
	return Hold
}

// AutoScaler layers long-term resource scheduling on top of the
// short-term rebalance hook: each interval it forwards the snapshot to
// the inner controller (short-term path), feeds the detector with the
// total load (long-term path), and applies ScaleOut recommendations by
// growing the target stage. ScaleIn is recorded but not applied — the
// engine's task instances cannot retire mid-run; a real deployment
// would drain and decommission.
type AutoScaler struct {
	// Detector decides; Inner is the short-term rebalance hook (may be
	// nil); Capacity is the per-task service capacity the engine uses.
	Detector *Detector
	Inner    func(e *engine.Engine, si int, snap *stats.Snapshot) *engine.Rebalance
	Capacity int64

	// History records every non-Hold recommendation with its interval.
	History []Event
	// ScaleOuts counts applied growths.
	ScaleOuts int
	// ScaleIns counts recommendations that could not be applied.
	ScaleIns int
}

// Event is one recommendation.
type Event struct {
	Interval int64
	Action   Action
	Util     float64
}

// Hook adapts the autoscaler to the engine-wide OnSnapshot callback,
// managing the engine's target stage. (ScaleOut applies through
// engine.ScaleOutTarget, which grows the target stage; to watch a
// different stage of a multi-stage topology, register StageHook on the
// stage marked as target.)
func (a *AutoScaler) Hook() engine.SnapshotHook {
	return func(e *engine.Engine, si int, snap *stats.Snapshot) *engine.Rebalance {
		if si != e.Target {
			return nil
		}
		return a.observe(e, si, snap)
	}
}

// StageHook adapts the autoscaler to the engine's per-stage snapshot
// fan-out (engine.AddSnapshotHook, topology.WithHook): the returned
// hook acts on exactly stage si's snapshots. The stage must be the
// engine's target (scale-out grows the target stage); the hook panics
// otherwise rather than silently holding forever.
func (a *AutoScaler) StageHook(si int) engine.SnapshotHook {
	return func(e *engine.Engine, idx int, snap *stats.Snapshot) *engine.Rebalance {
		if idx != si {
			return nil
		}
		if si != e.Target {
			panic(fmt.Sprintf("longterm: AutoScaler.StageHook(%d) on a non-target stage (target %d): ScaleOutTarget would grow the wrong stage", si, e.Target))
		}
		return a.observe(e, si, snap)
	}
}

// observe runs one interval's composition: short-term hook first, then
// the long-term detector over the stage's total offered load.
func (a *AutoScaler) observe(e *engine.Engine, si int, snap *stats.Snapshot) *engine.Rebalance {
	var reb *engine.Rebalance
	if a.Inner != nil {
		reb = a.Inner(e, si, snap)
	}
	nd := e.Stages[si].Instances()
	cap64 := a.Capacity
	if cap64 == 0 {
		cap64 = e.CapacityOf(si)
	}
	// The snapshot records *admitted* load; when backpressure
	// throttled the spout, true demand is higher by the throttle
	// ratio. Without the correction a saturated system reports
	// comfortable utilization forever (demand hidden by its own
	// symptom).
	demand := snap.TotalCost()
	if emitted := e.LastEmitted(); emitted > 0 && e.Cfg.Budget > emitted {
		demand = demand * e.Cfg.Budget / emitted
	}
	act := a.Detector.Observe(demand, cap64*int64(nd))
	if act == Hold {
		return reb
	}
	a.History = append(a.History, Event{Interval: snap.Interval, Action: act, Util: a.Detector.Utilization()})
	switch act {
	case ScaleOut:
		if e.Stages[si].AssignmentRouter() != nil {
			e.ScaleOutTarget()
			a.ScaleOuts++
		}
	case ScaleIn:
		a.ScaleIns++
	}
	return reb
}

// Summary renders the action history.
func (a *AutoScaler) Summary() string {
	s := fmt.Sprintf("scale-outs applied: %d, scale-ins recommended: %d\n", a.ScaleOuts, a.ScaleIns)
	for _, ev := range a.History {
		s += fmt.Sprintf("  interval %d: %s (util %.2f)\n", ev.Interval, ev.Action, ev.Util)
	}
	return s
}
