package longterm

import (
	"strings"
	"testing"

	"repro/internal/balance"
	"repro/internal/control"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/stats"
	"repro/internal/tuple"
)

func TestDetectorHoldsOnSteadyLoad(t *testing.T) {
	d := NewDetector()
	for i := 0; i < 50; i++ {
		if act := d.Observe(800, 1000); act != Hold {
			t.Fatalf("interval %d: action %v on 80%% utilization", i, act)
		}
	}
}

func TestDetectorScaleOutNeedsPatience(t *testing.T) {
	d := NewDetector()
	fired := -1
	for i := 0; i < 30; i++ {
		if d.Observe(1200, 1000) == ScaleOut {
			fired = i
			break
		}
	}
	if fired < 0 {
		t.Fatal("sustained 120% utilization never triggered scale-out")
	}
	if fired < d.Patience-1 {
		t.Fatalf("scale-out fired at interval %d, before patience %d", fired, d.Patience)
	}
}

func TestDetectorIgnoresTransientSpike(t *testing.T) {
	d := NewDetector()
	// Two hot intervals inside a calm stream: a short-term fluctuation.
	loads := []int64{800, 800, 1500, 1500, 800, 800, 800, 800, 800, 800}
	for i, l := range loads {
		if act := d.Observe(l, 1000); act != Hold {
			t.Fatalf("interval %d: transient spike triggered %v", i, act)
		}
	}
}

func TestDetectorScaleInOnSustainedIdleness(t *testing.T) {
	d := NewDetector()
	var got Action
	for i := 0; i < 30; i++ {
		if act := d.Observe(200, 1000); act != Hold {
			got = act
			break
		}
	}
	if got != ScaleIn {
		t.Fatalf("sustained 20%% utilization gave %v, want scale-in", got)
	}
}

func TestDetectorCooldown(t *testing.T) {
	d := NewDetector()
	for i := 0; i < 30 && d.Observe(1500, 1000) != ScaleOut; i++ {
	}
	// Immediately after firing, the cooldown must suppress actions for
	// Cooldown intervals even under continued overload.
	for i := 0; i < d.Cooldown; i++ {
		if act := d.Observe(1500, 1000); act != Hold {
			t.Fatalf("cooldown interval %d produced %v", i, act)
		}
	}
}

func TestDetectorZeroCapacity(t *testing.T) {
	d := NewDetector()
	if d.Observe(100, 0) != Hold {
		t.Fatal("zero capacity must hold")
	}
}

func TestActionString(t *testing.T) {
	if Hold.String() != "hold" || ScaleOut.String() != "scale-out" || ScaleIn.String() != "scale-in" {
		t.Fatal("Action strings wrong")
	}
}

// End to end: a workload that doubles permanently must grow the
// operator; the autoscaler keeps the short-term controller running.
// Both policies ride one control loop over the loopback transport.
func TestAutoScalerGrowsUnderSustainedShift(t *testing.T) {
	var n uint64
	rate := int64(7000) // 87.5% of the 8×1000 capacity: comfortably steady
	spout := func() tuple.Tuple {
		n++
		return tuple.New(tuple.Key(n%5000), nil)
	}
	st := engine.NewStage("op", 8, func(int) engine.Operator { return engine.StatefulCount }, 1,
		engine.NewAssignmentRouter(core.NewAssignment(8)))
	cfg := engine.DefaultConfig()
	cfg.Budget = rate
	cfg.Capacity = 1000
	e := engine.New(spout, cfg, st)
	defer e.Stop()

	ctl := controller.New(balance.Mixed{}, balance.Config{ThetaMax: 0.08, TableMax: 3000, Beta: 1.5})
	ctl.MinKeys = 16
	as := &AutoScaler{Detector: NewDetector()}
	loop := control.NewLoop(e, 0, []control.Policy{ctl, as})
	defer loop.Close()
	e.AddSnapshotHook(0, loop.Hook())

	e.Run(8) // steady: no action expected
	if as.ScaleOuts != 0 {
		t.Fatalf("scaled out %d times under steady load", as.ScaleOuts)
	}

	// Long-term shift: offered load rises 50% and stays there.
	e.Cfg.Budget = 12000
	e.Run(20)
	if as.ScaleOuts == 0 {
		t.Fatal("sustained 150% load never grew the operator")
	}
	if st.Instances() <= 8 {
		t.Fatalf("instances = %d after scale-out", st.Instances())
	}
	// Short-term controller kept running alongside.
	if ctl.Rebalances() == 0 {
		t.Fatal("inner controller starved by autoscaler")
	}
}

// Sustained idleness must now retire instances live — the executor
// applies ScaleIn instead of merely recording it — and every key's
// state must land on a surviving instance.
func TestAutoScalerAppliesScaleIn(t *testing.T) {
	var n uint64
	spout := func() tuple.Tuple {
		n++
		return tuple.New(tuple.Key(n%100), nil)
	}
	st := engine.NewStage("op", 4, func(int) engine.Operator { return engine.StatefulCount }, 1,
		engine.NewAssignmentRouter(core.NewAssignment(4)))
	cfg := engine.DefaultConfig()
	cfg.Budget = 400 // 10% utilization at capacity 1000
	cfg.Capacity = 1000
	e := engine.New(spout, cfg, st)
	defer e.Stop()

	as := &AutoScaler{Detector: NewDetector(), MinInstances: 2}
	loop := control.NewLoop(e, 0, []control.Policy{as})
	defer loop.Close()
	e.AddSnapshotHook(0, loop.Hook())
	e.Run(30)
	if as.ScaleIns == 0 {
		t.Fatal("sustained idleness never applied a scale-in")
	}
	if got := st.Instances(); got >= 4 || got < 2 {
		t.Fatalf("instances = %d after scale-in (want within [2, 4))", got)
	}
	ar := st.AssignmentRouter()
	for _, k := range st.LiveKeys() {
		if d := ar.Assignment().Dest(k); d >= st.Instances() {
			t.Fatalf("key %d routed to retired instance %d", k, d)
		}
	}
	if !strings.Contains(as.Summary(), "scale-in") {
		t.Fatal("summary missing scale-in events")
	}
	if strings.Contains(as.Summary(), "recommended") {
		t.Fatal("summary still claims scale-ins are only recommended")
	}
}

// The MinInstances floor must hold even under permanent idleness.
func TestAutoScalerRespectsInstanceFloor(t *testing.T) {
	as := &AutoScaler{Detector: NewDetector(), MinInstances: 3}
	env := control.Env{Interval: 0, Tasks: 3, Capacity: 1000, Routable: true, Resizable: true}
	snap := &stats.Snapshot{ND: 3}
	for i := 0; i < 40; i++ {
		env.Interval = int64(i)
		snap.Keys = []stats.KeyStat{{Key: 1, Cost: 100, Dest: 0}}
		if cmds := as.Decide(env, snap); len(cmds) != 0 {
			t.Fatalf("interval %d: floor ignored, got %v", i, cmds)
		}
	}
	if as.ScaleIns != 0 {
		t.Fatalf("ScaleIns = %d at the floor", as.ScaleIns)
	}
	if len(as.History) != 0 {
		t.Fatalf("history records %d unapplied actions", len(as.History))
	}
}
