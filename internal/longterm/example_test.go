package longterm_test

import (
	"fmt"

	"repro/internal/longterm"
)

// ExampleDetector shows the short-vs-long-term discrimination: a brief
// spike is ignored, a sustained shift triggers a scale-out.
func ExampleDetector() {
	d := longterm.NewDetector()
	// A two-interval spike inside steady traffic: no action.
	for _, load := range []int64{800, 800, 1500, 1500, 800, 800} {
		if act := d.Observe(load, 1000); act != longterm.Hold {
			fmt.Println("spike triggered", act)
		}
	}
	// A sustained shift eventually fires.
	for i := 0; i < 30; i++ {
		if act := d.Observe(1400, 1000); act == longterm.ScaleOut {
			fmt.Println("sustained shift:", act)
			break
		}
	}
	// Output: sustained shift: scale-out
}
