// Package topology is the declarative construction API for multi-stage
// systems: a builder that assembles spout → stage → … → stage pipelines
// with per-stage routing, per-stage rebalance controllers and
// per-stage capacity, wiring the engine, controller and planner layers
// in one place.
//
//	sys := topology.New(topology.Spout(gen.Next), topology.Budget(20000)).
//		Stage("join", joins.Factory,
//			topology.Instances(10), topology.Window(5),
//			topology.WithAlgorithm(topology.AlgMixed), topology.MinKeys(64)).
//		Stage("agg", aggs.Factory,
//			topology.Instances(4), topology.Window(5)).
//		Build()
//	defer sys.Stop()
//	sys.Run(25)
//
// Topologies with two or more stages run the streaming inter-stage
// pipeline by default (stage s+1 consumes while stage s is still
// processing); StoreAndForward selects the legacy barrier transfer,
// which the equivalence tests pin against. Assignment-routed stages
// likewise migrate pause-free by default (generation-stamped routing,
// no feed pause; see engine.Config.PauseFree), with PausingMigration
// selecting the pausing oracle. Every stage may carry its
// own control loop — the builder assembles the stage's policies (the
// algorithm-derived rebalance controller plus any WithPolicy
// additions, e.g. longterm.AutoScaler) into one control.Loop per
// managed stage, applying rebalance, scale-out and live scale-in
// commands over protocol messages (WireControl selects the serialized
// wire transport, pinned equivalent to the loopback default).
//
// core.NewSystem and core.NewSystemBatch are thin wrappers over this
// builder for the single-stage case.
package topology

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/balance"
	"repro/internal/compact"
	"repro/internal/control"
	"repro/internal/controller"
	"repro/internal/engine"
	"repro/internal/hashring"
	"repro/internal/metrics"
	"repro/internal/pkgpart"
	"repro/internal/readj"
	"repro/internal/route"
	"repro/internal/tuple"
)

// Algorithm names a rebalance strategy (or split-key baseline) for one
// stage: it selects both the input router and, where one exists, the
// planner the stage's controller runs. core.Algorithm aliases this
// type, so the two are interchangeable.
type Algorithm string

// The supported strategies. AlgStorm is hash-only with no rebalancing
// (the Storm key-grouping baseline); AlgIdeal is key-oblivious shuffle.
const (
	AlgMixed    Algorithm = "mixed"
	AlgMixedBF  Algorithm = "mixedbf"
	AlgMinTable Algorithm = "mintable"
	AlgMinMig   Algorithm = "minmig"
	AlgLLFD     Algorithm = "llfd"
	AlgSimple   Algorithm = "simple"
	AlgCompact  Algorithm = "compact"
	AlgReadj    Algorithm = "readj"
	AlgStorm    Algorithm = "storm"
	AlgPKG      Algorithm = "pkg"
	AlgIdeal    Algorithm = "ideal"
)

// PKGOverhead is the fraction of service capacity PKG's partial-result
// merging and acking consume (~12%), calibrated so Mixed's throughput
// advantage over PKG matches the ~10% the paper reports in Fig. 14(a).
const PKGOverhead = 1.125

// The paper's Tab. II defaults, applied to zero-valued parameters.
// Exported so core.Config.withDefaults documents and applies the same
// values without a second copy of the literals.
const (
	DefInstances  = 10
	DefWindow     = 1
	DefTheta      = 0.08
	DefTableMax   = 3000
	DefBeta       = 1.5
	DefCompactR   = 8
	DefReadjSigma = 0.1
	DefBudget     = 10000
)

// NewAssignment returns the paper's default partition function: an
// empty routing table over a consistent-hash ring of nd instances.
func NewAssignment(nd int) *route.Assignment {
	return route.NewAssignment(route.NewTable(), hashring.New(nd, 0))
}

// PlannerFor instantiates the planner for an algorithm name. AlgStorm,
// AlgPKG and AlgIdeal have no planner (they never migrate) and return
// nil. compactR and readjSigma parameterize AlgCompact and AlgReadj;
// zero values take the Tab. II defaults.
func PlannerFor(alg Algorithm, compactR int64, readjSigma float64) balance.Planner {
	if compactR == 0 {
		compactR = DefCompactR
	}
	if readjSigma == 0 {
		readjSigma = DefReadjSigma
	}
	switch alg {
	case AlgMixed:
		return balance.Mixed{}
	case AlgMixedBF:
		return balance.MixedBF{}
	case AlgMinTable:
		return balance.MinTable{}
	case AlgMinMig:
		return balance.MinMig{}
	case AlgLLFD:
		return balance.LLFD{}
	case AlgSimple:
		return balance.Simple{}
	case AlgCompact:
		return compact.Planner{R: compactR}
	case AlgReadj:
		return readj.Planner{Sigma: readjSigma}
	case AlgStorm, AlgPKG, AlgIdeal:
		return nil
	default:
		panic(fmt.Sprintf("topology: unknown algorithm %q", alg))
	}
}

// RouterFor builds the stage input router matching an algorithm:
// load-aware two-choice for AlgPKG, round-robin shuffle for AlgIdeal,
// and the mixed hash/routing-table assignment for everything else.
func RouterFor(alg Algorithm, nd int) engine.Router {
	switch alg {
	case AlgPKG:
		return engine.PKGRouter{R: pkgpart.NewRouter(nd)}
	case AlgIdeal:
		return engine.NewShuffleRouter(nd)
	default:
		return engine.NewAssignmentRouter(NewAssignment(nd))
	}
}

// Builder accumulates a topology declaration: topology-level options
// from New, then one Stage call per operator in pipeline order, then
// Build. The zero value is not usable; start with New.
type Builder struct {
	spout   engine.Spout
	spoutB  engine.SpoutBatch
	ecfg    engine.Config
	pipe    *bool // explicit transfer-mode choice; nil = default
	wire    bool  // control loops speak the gob wire transport
	advance func(interval int64)
	stages  []*stageSpec
}

// Option is a topology-level construction option for New.
type Option func(*Builder)

// New starts a topology declaration. Engine-model parameters default to
// engine.DefaultConfig (budget 10000, max-pending factor 0.5,
// migration factor 0.5).
func New(opts ...Option) *Builder {
	b := &Builder{ecfg: engine.DefaultConfig()}
	for _, o := range opts {
		o(b)
	}
	return b
}

// Spout sets the per-tuple input source.
func Spout(s engine.Spout) Option { return func(b *Builder) { b.spout = s } }

// SpoutBatch sets a batch-capable input source, preferred over Spout on
// the emission hot path (the engine draws straight into its reusable
// scratch buffer).
func SpoutBatch(s engine.SpoutBatch) Option { return func(b *Builder) { b.spoutB = s } }

// Budget sets the spout's per-interval tuple budget.
func Budget(n int64) Option { return func(b *Builder) { b.ecfg.Budget = n } }

// Feeders sets the spout parallelism: how many goroutines emit each
// interval's tuples concurrently (engine.Config.Feeders).
func Feeders(n int) Option { return func(b *Builder) { b.ecfg.Feeders = n } }

// MaxPending sets the backpressure threshold factor
// (engine.Config.MaxPendingFactor); 0 disables throttling.
func MaxPending(f float64) Option { return func(b *Builder) { b.ecfg.MaxPendingFactor = f } }

// MigrationFactor sets how much service capacity one unit of migrated
// state consumes in the following interval.
func MigrationFactor(f float64) Option { return func(b *Builder) { b.ecfg.MigrationFactor = f } }

// LatencyFloorMs sets an additive latency term for schemes with extra
// coordination. (Stages built with WithAlgorithm(AlgPKG) as the target
// get the paper's 10 ms merge-period floor automatically.)
func LatencyFloorMs(ms float64) Option { return func(b *Builder) { b.ecfg.LatencyFloorMs = ms } }

// Pipelined forces streaming inter-stage transfer on. It is already
// the default for topologies with two or more stages; the option
// exists to make the choice explicit at call sites that depend on it.
func Pipelined() Option {
	on := true
	return func(b *Builder) { b.pipe = &on }
}

// StoreAndForward selects the legacy barrier transfer: each stage runs
// to completion and the driver forwards its emissions to the next
// stage afterwards. It is the equivalence-test oracle the streaming
// pipeline is pinned against, and the mode to pick when a downstream
// order-dependent consumer has not been audited for mid-interval
// interleaving.
func StoreAndForward() Option {
	off := false
	return func(b *Builder) { b.pipe = &off }
}

// WireControl runs every stage's control loop over the gob
// Codec-over-pipe transport instead of the in-process loopback: each
// control message (load reports, plan announcements, resizes, state
// transfers, acks, resume) is fully serialized and parsed per round.
// Behavior is pinned identical to the loopback default; the option
// exists to prove multi-process readiness end to end and to measure
// true wire cost.
func WireControl() Option {
	return func(b *Builder) { b.wire = true }
}

// PausingMigration opts the whole topology out of pause-free live
// migration: assignment-routed stages fall back to the legacy
// pause → drain → migrate → resume sequence for every applied plan.
// The pausing path is the pinned equivalence oracle the pause-free
// default is tested against (engine.Config.PauseFree), the same role
// StoreAndForward plays for the streaming pipeline.
func PausingMigration() Option {
	return func(b *Builder) { b.ecfg.PauseFree = false }
}

// IncrementalHarvest switches every stage's interval close to the
// incremental path: trackers harvest only keys touched since the last
// close, merge them into a persistent sorted aggregate, and controller
// loops ride O(Δkeys) delta load reports instead of re-sending the
// full key population each interval. Snapshots, plans and series are
// pinned bit-identical to the default full harvest.
func IncrementalHarvest() Option {
	return func(b *Builder) { b.ecfg.Harvest = engine.HarvestIncremental }
}

// FullHarvest keeps the retained aggregate but rebuilds and re-sorts
// it from a full tracker scan every close — the O(keys) equivalence
// oracle the incremental merge is pinned against.
func FullHarvest() Option {
	return func(b *Builder) { b.ecfg.Harvest = engine.HarvestFull }
}

// AdvanceEach installs a per-interval workload callback
// (engine.AdvanceWorkload): fn runs after every interval so generators
// can fluctuate or shift their distributions.
func AdvanceEach(fn func(interval int64)) Option {
	return func(b *Builder) { b.advance = fn }
}

// stageSpec is one declared stage, defaults unresolved until Build.
type stageSpec struct {
	name       string
	op         func(id int) engine.Operator
	instances  int
	window     int
	alg        Algorithm
	router     engine.Router
	routerFn   func(nd int) engine.Router
	planner    balance.Planner
	plannerOn  bool // WithPlanner given (overrides the alg-derived one)
	theta      float64
	tableMax   int
	beta       float64
	compactR   int64
	sigma      float64
	minKeys    int
	planEvery  time.Duration
	capacity   int64
	target     bool
	splitOn    bool
	splitMax   int
	splitRatio float64
	policies   []control.Policy
	hooks      []engine.SnapshotHook
	hookers    []StageHooker
}

// StageOption is a per-stage construction option for Builder.Stage.
type StageOption func(*stageSpec)

// Stage appends one operator stage to the topology, in pipeline order:
// the first Stage call consumes the spout, each later one consumes the
// previous stage's emissions. op is the per-instance operator factory.
func (b *Builder) Stage(name string, op func(id int) engine.Operator, opts ...StageOption) *Builder {
	s := &stageSpec{name: name, op: op}
	for _, o := range opts {
		o(s)
	}
	b.stages = append(b.stages, s)
	return b
}

// Instances sets the stage's parallelism ND. Default 10.
func Instances(n int) StageOption { return func(s *stageSpec) { s.instances = n } }

// Window sets the stage's state window w in intervals. Default 1.
func Window(w int) StageOption { return func(s *stageSpec) { s.window = w } }

// WithAlgorithm selects the stage's partitioning scheme and — for the
// rebalancing strategies — its planner: the stage gets the matching
// router (assignment, PKG or shuffle) and, when the algorithm
// rebalances, its own controller. An AlgPKG target stage additionally
// pays the paper's coordination costs (merge-period latency floor,
// PKGOverhead capacity shave). Without this option the stage routes by
// plain assignment (hash + table) and no controller is created.
func WithAlgorithm(a Algorithm) StageOption { return func(s *stageSpec) { s.alg = a } }

// WithRouter installs an explicit input router, overriding the
// algorithm-derived one. Unlike WithAlgorithm(AlgPKG), a raw PKG
// router carries no capacity or latency model adjustments.
func WithRouter(r engine.Router) StageOption { return func(s *stageSpec) { s.router = r } }

// WithRouterFactory installs a router constructor resolved at Build
// time with the stage's resolved instance count — unlike WithRouter,
// the caller does not repeat the Instances value (or the DefInstances
// default) when constructing the router by hand. An explicit
// WithRouter wins if both are given.
func WithRouterFactory(f func(nd int) engine.Router) StageOption {
	return func(s *stageSpec) { s.routerFn = f }
}

// PKGRouting selects split-key partial routing (load-aware
// two-choice, pkgpart) for this stage, sized to the stage's resolved
// instance count. It is the builder-native form of hand-wiring
// engine.PKGRouter via WithRouter, and — like WithRouter — carries no
// capacity or latency model adjustments; use WithAlgorithm(AlgPKG)
// on the target stage for the paper-calibrated PKG cost model.
func PKGRouting() StageOption {
	return WithRouterFactory(func(nd int) engine.Router {
		return engine.PKGRouter{R: pkgpart.NewRouter(nd)}
	})
}

// WithPlanner installs an explicit rebalance planner for the stage's
// controller, overriding the algorithm-derived one. Pass nil to
// suppress the controller entirely (e.g. an assignment-routed stage
// that must never migrate).
func WithPlanner(p balance.Planner) StageOption {
	return func(s *stageSpec) { s.planner, s.plannerOn = p, true }
}

// Theta sets the stage controller's imbalance tolerance θmax.
// Default 0.08.
func Theta(x float64) StageOption { return func(s *stageSpec) { s.theta = x } }

// TableMax sets the stage's routing-table bound Amax. Default 3000;
// negative means unbounded.
func TableMax(n int) StageOption { return func(s *stageSpec) { s.tableMax = n } }

// Beta sets the γ exponent of the migration-priority index.
// Default 1.5.
func Beta(x float64) StageOption { return func(s *stageSpec) { s.beta = x } }

// CompactR sets the discretization degree for AlgCompact. Default 8.
func CompactR(r int64) StageOption { return func(s *stageSpec) { s.compactR = r } }

// ReadjSigma sets Readj's hot-key threshold. Default 0.1.
func ReadjSigma(x float64) StageOption { return func(s *stageSpec) { s.sigma = x } }

// MinKeys delays the stage's rebalancing until its snapshot has seen
// this many keys (warm-up guard).
func MinKeys(n int) StageOption { return func(s *stageSpec) { s.minKeys = n } }

// PlanInterval models plan-generation latency for the stage's
// controller: plans slower than this wall-clock duration per logical
// interval apply late (controller deferral). Zero disables the
// staleness model.
func PlanInterval(d time.Duration) StageOption { return func(s *stageSpec) { s.planEvery = d } }

// Capacity overrides the stage's per-task service capacity in cost
// units per interval (0 = saturation, Budget/Instances).
func Capacity(c int64) StageOption { return func(s *stageSpec) { s.capacity = c } }

// Target marks this stage as the one whose metrics the engine records
// (the operator under study). Default: the first stage.
func Target() StageOption { return func(s *stageSpec) { s.target = true } }

// HotKeySplit arms contention-aware hot-key splitting on this stage: a
// detector policy (controller.Splitter) watches the interval snapshots
// and splits at most maxKeys keys across replica sets whenever a
// single key's interval cost reaches threshold × the per-task service
// capacity, folding each key back once it cools. Split-key tuples fan
// out round-robin on the wait-free feed path; replicas hold commutative
// deltas that fold into the key's home before every harvest, so all
// observables stay bit-identical to an unsplit run. threshold ≤ 0
// defaults to 1 (split when one key alone saturates a task). Requires
// pause-free migration — Build panics if the topology selected
// PausingMigration — and composes with a rebalance algorithm: split
// keys are pinned to their home while split, everything else
// rebalances normally.
func HotKeySplit(maxKeys int, threshold float64) StageOption {
	return func(s *stageSpec) {
		s.splitOn = true
		s.splitMax = maxKeys
		s.splitRatio = threshold
	}
}

// WithPolicy attaches an additional control.Policy to this stage's
// control loop, after the builder-created rebalance controller (if
// any): each interval the loop hands the stage's snapshot to every
// policy in order and applies the emitted commands — rebalance plans,
// scale-out, live scale-in — through the stage's single executor over
// protocol messages. This is how long-term policies
// (longterm.AutoScaler) layer on top of the short-term rebalancer.
func WithPolicy(p control.Policy) StageOption {
	return func(s *stageSpec) { s.policies = append(s.policies, p) }
}

// WithHook registers a raw per-stage snapshot hook, for callers that
// need direct engine access the command vocabulary does not model.
// Hooks bypass the control plane: they run after the stage's control
// loop, in registration order, on the driver goroutine. The hook is
// invoked with this stage's snapshots only; beware adapters that
// filter on the engine's recording target internally
// (controller.Controller.Hook) — on a non-target stage they no-op
// silently. Policies should prefer WithPolicy, which routes through
// the unified command path.
func WithHook(h engine.SnapshotHook) StageOption {
	return func(s *stageSpec) { s.hooks = append(s.hooks, h) }
}

// StageHooker is any adapter that can bind a snapshot hook to a stage
// index — controller.Controller can, for hand-wired setups.
type StageHooker interface {
	StageHook(si int) engine.SnapshotHook
}

// WithStageHook registers h.StageHook(si) with this stage's own index,
// resolved at Build time — unlike WithHook, the caller cannot bind the
// wrong position when stages are later inserted or reordered. Like
// WithHook it bypasses the control plane; prefer WithPolicy.
func WithStageHook(h StageHooker) StageOption {
	return func(s *stageSpec) { s.hookers = append(s.hookers, h) }
}

// System is a built topology: the engine plus the per-stage
// controllers and control loops the builder created.
type System struct {
	Engine    *engine.Engine
	ctls      []*controller.Controller
	splitters []*controller.Splitter // per stage; nil unless HotKeySplit
	loops     []*control.Loop        // per stage; nil for stages without policies
	byName    map[string]int
}

// Build resolves defaults and assembles the engine, stages and
// controllers. Topologies with two or more stages run the streaming
// inter-stage pipeline unless StoreAndForward (or Pipelined) made the
// choice explicit. Build panics on an empty or inconsistent
// declaration — topology shape is a programming error, not an input
// error.
func (b *Builder) Build() *System {
	if len(b.stages) == 0 {
		panic("topology: Build with no stages")
	}
	if b.ecfg.Budget == 0 {
		b.ecfg.Budget = DefBudget
	}
	// Validate the declaration and resolve every panicking lookup
	// before constructing anything: engine.NewStage spawns task
	// goroutines, and a panic after that (duplicate name, unknown
	// algorithm) would leak them past a recovering caller.
	names := make(map[string]int, len(b.stages))
	target := -1
	for si, s := range b.stages {
		if _, dup := names[s.name]; dup {
			panic(fmt.Sprintf("topology: duplicate stage name %q", s.name))
		}
		names[s.name] = si
		if s.target {
			if target >= 0 {
				panic(fmt.Sprintf("topology: stages %q and %q both marked Target", b.stages[target].name, s.name))
			}
			target = si
		}
		if s.instances == 0 {
			s.instances = DefInstances
		}
		if s.window == 0 {
			s.window = DefWindow
		}
		if s.theta == 0 {
			s.theta = DefTheta
		}
		if s.tableMax == 0 {
			s.tableMax = DefTableMax
		}
		if s.beta == 0 {
			s.beta = DefBeta
		}
		if !s.plannerOn && s.alg != "" {
			// PlannerFor panics on an unknown algorithm — here, while
			// nothing has been built yet.
			s.planner, s.plannerOn = PlannerFor(s.alg, s.compactR, s.sigma), true
		}
		if s.splitOn && !b.ecfg.PauseFree {
			panic(fmt.Sprintf("topology: stage %q: HotKeySplit requires pause-free migration (incompatible with PausingMigration)", s.name))
		}
	}
	if target < 0 {
		target = 0
	}

	ecfg := b.ecfg
	// Pipeline by default for multi-stage topologies: the audited
	// consumers (float aggregations, exhibit metrics) are
	// arrival-order-insensitive; StoreAndForward stays selectable as
	// the equivalence oracle.
	if b.pipe != nil {
		ecfg.Pipeline = *b.pipe
	} else {
		ecfg.Pipeline = len(b.stages) >= 2
	}
	if b.stages[target].alg == AlgPKG {
		// PKG's split keys require a downstream merge of partial results
		// every period p (the paper settled on p = 10 ms); the latency
		// floor models p/2 + ack waiting.
		ecfg.LatencyFloorMs = 10
	}

	stages := make([]*engine.Stage, len(b.stages))
	for si, s := range b.stages {
		r := s.router
		if r == nil && s.routerFn != nil {
			r = s.routerFn(s.instances)
		}
		if r == nil {
			r = RouterFor(s.alg, s.instances)
		}
		stages[si] = engine.NewStage(s.name, s.instances, s.op, s.window, r)
	}

	e := engine.New(b.spout, ecfg, stages...)
	if b.spoutB != nil {
		e.SpoutB = b.spoutB
	}
	e.Target = target
	e.AdvanceWorkload = b.advance

	sys := &System{
		Engine:    e,
		ctls:      make([]*controller.Controller, len(b.stages)),
		splitters: make([]*controller.Splitter, len(b.stages)),
		loops:     make([]*control.Loop, len(b.stages)),
		byName:    names,
	}
	for si, s := range b.stages {
		if c := s.capacity; c != 0 {
			e.SetStageCapacity(si, c)
		}
		if s.alg == AlgPKG {
			// PKGOverhead shaves the equivalent service capacity (§V:
			// merging "leads to additional response time increase and
			// overall processing throughput reduction").
			c := s.capacity
			if c == 0 {
				c = ecfg.Budget / int64(s.instances)
			}
			e.SetStageCapacity(si, int64(float64(c)/PKGOverhead))
		}

		// The stage's control loop: the builder-created rebalance
		// controller (when the algorithm has a planner) followed by any
		// WithPolicy additions, all speaking commands through one
		// per-stage executor over protocol messages.
		var policies []control.Policy
		if p := s.planner; p != nil {
			tm := s.tableMax
			if tm < 0 {
				tm = 0 // balance.Config treats ≤0 as unbounded
			}
			ctl := controller.New(p, balance.Config{ThetaMax: s.theta, TableMax: tm, Beta: s.beta})
			ctl.MinKeys = s.minKeys
			ctl.IntervalDuration = s.planEvery
			policies = append(policies, ctl)
			sys.ctls[si] = ctl
		}
		if s.splitOn {
			sp := controller.NewSplitter(s.splitMax, s.splitRatio)
			policies = append(policies, sp)
			sys.splitters[si] = sp
		}
		policies = append(policies, s.policies...)
		if len(policies) > 0 {
			var lopts []control.LoopOption
			if b.wire {
				lopts = append(lopts, control.Wire())
			}
			loop := control.NewLoop(e, si, policies, lopts...)
			sys.loops[si] = loop
			e.AddSnapshotHook(si, loop.Hook())
		}
		for _, h := range s.hooks {
			e.AddSnapshotHook(si, h)
		}
		for _, h := range s.hookers {
			e.AddSnapshotHook(si, h.StageHook(si))
		}
	}
	return sys
}

// Run executes n intervals.
func (s *System) Run(n int) { s.Engine.Run(n) }

// Stop tears down the engine goroutines and the per-stage control
// loops (policy state is safe to read after Stop returns).
func (s *System) Stop() {
	s.Engine.Stop()
	for _, l := range s.loops {
		if l != nil {
			l.Close()
		}
	}
}

// Loop returns stage si's control loop, or nil for stages without
// policies.
func (s *System) Loop(si int) *control.Loop { return s.loops[si] }

// Recorder exposes the target stage's per-interval metric series.
func (s *System) Recorder() *metrics.Recorder { return s.Engine.Recorder }

// Stages returns how many stages the topology has.
func (s *System) Stages() int { return len(s.Engine.Stages) }

// Stage returns stage si in pipeline order.
func (s *System) Stage(si int) *engine.Stage { return s.Engine.Stages[si] }

// StageNamed returns the stage declared under name, or nil.
func (s *System) StageNamed(name string) *engine.Stage {
	si, ok := s.byName[name]
	if !ok {
		return nil
	}
	return s.Engine.Stages[si]
}

// Controller returns stage si's builder-created controller, or nil for
// stages without one (no algorithm/planner, or a non-rebalancing
// baseline).
func (s *System) Controller(si int) *controller.Controller { return s.ctls[si] }

// ControllerNamed returns the controller of the stage declared under
// name, or nil.
func (s *System) ControllerNamed(name string) *controller.Controller {
	si, ok := s.byName[name]
	if !ok {
		return nil
	}
	return s.ctls[si]
}

// Splitter returns stage si's hot-key split policy, or nil for stages
// built without HotKeySplit.
func (s *System) Splitter(si int) *controller.Splitter { return s.splitters[si] }

// Rebalances sums applied plans across every controller-managed stage.
func (s *System) Rebalances() int {
	n := 0
	for _, c := range s.ctls {
		if c != nil {
			n += c.Rebalances()
		}
	}
	return n
}

// Dest evaluates stage si's live partition function for a key
// (assignment-routed stages only).
func (s *System) Dest(si int, k tuple.Key) (int, bool) {
	ar := s.Engine.Stages[si].AssignmentRouter()
	if ar == nil {
		return 0, false
	}
	return ar.Assignment().Dest(k), true
}

// Intervals returns def unless the REPRO_INTERVALS environment
// variable holds a smaller positive interval budget. The examples size
// their runs through it so CI can smoke every topology end to end with
// a 2-interval budget instead of a full demonstration run.
func Intervals(def int) int {
	v := os.Getenv("REPRO_INTERVALS")
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 || n >= def {
		return def
	}
	return n
}
