package topology_test

import (
	"sync/atomic"
	"testing"

	"repro/internal/balance"
	"repro/internal/controller"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/ops"
	"repro/internal/pkgpart"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// Pinned equivalence: a topology the builder declares must behave
// bit-identically to the same topology hand-wired from engine.NewStage,
// engine.New and controller.New — interval metric series, final harvest
// snapshots and the controllers' routing tables all equal. The
// hand-wired forms below replicate what the examples and core.NewSystem
// did before the builder existed.

// assertSeriesEqual compares two interval series field by field,
// zeroing PlanMs (measured wall-clock plan-generation time, real
// nondeterminism rather than a data-plane quantity).
func assertSeriesEqual(t *testing.T, want, got []metrics.Interval) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("series lengths differ: %d ≠ %d", len(want), len(got))
	}
	for i := range want {
		a, b := want[i], got[i]
		a.PlanMs, b.PlanMs = 0, 0
		if a != b {
			t.Fatalf("interval %d diverges:\nhand-wired %+v\nbuilder    %+v", i, a, b)
		}
	}
}

// assertSnapshotsEqual compares the final per-stage harvest snapshots.
func assertSnapshotsEqual(t *testing.T, want, got []*stats.Snapshot) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("snapshot counts differ: %d ≠ %d", len(want), len(got))
	}
	for si := range want {
		a, b := want[si], got[si]
		if len(a.Keys) != len(b.Keys) {
			t.Fatalf("stage %d snapshot sizes %d ≠ %d", si, len(b.Keys), len(a.Keys))
		}
		for i := range a.Keys {
			if a.Keys[i] != b.Keys[i] {
				t.Fatalf("stage %d snapshot entry %d: %+v ≠ %+v", si, i, b.Keys[i], a.Keys[i])
			}
		}
	}
}

// assertTablesEqual compares the routing tables two runs' controllers
// built: same rebalance decisions interval by interval.
func assertTablesEqual(t *testing.T, want, got *engine.Stage) {
	t.Helper()
	ta := want.AssignmentRouter().Assignment().Table()
	tb := got.AssignmentRouter().Assignment().Table()
	if ta.Len() != tb.Len() {
		t.Fatalf("routing tables differ in size: %d ≠ %d", ta.Len(), tb.Len())
	}
	for _, k := range ta.Keys() {
		da, _ := ta.Lookup(k)
		db, ok := tb.Lookup(k)
		if !ok || da != db {
			t.Fatalf("routing entry for key %d: hand-wired → %d, builder → %d (present=%v)", k, da, db, ok)
		}
	}
}

// TestBuilderSingleStageMatchesHandWired pins the single-stage Mixed
// system: builder output vs the engine.NewStage + engine.New +
// controller.New wiring core.NewSystem used to spell out.
func TestBuilderSingleStageMatchesHandWired(t *testing.T) {
	const intervals = 10
	mkGen := func() *workload.ZipfStream { return workload.NewZipfStream(5000, 1.0, 0.8, 8000, 23) }

	// Hand-wired.
	hwGen := mkGen()
	hwStage := engine.NewStage("operator", 6,
		func(int) engine.Operator { return engine.StatefulCount }, 1,
		engine.NewAssignmentRouter(topology.NewAssignment(6)))
	hwCfg := engine.DefaultConfig()
	hwCfg.Budget = 8000
	hw := engine.New(hwGen.Next, hwCfg, hwStage)
	hwCtl := controller.New(balance.Mixed{}, balance.Config{ThetaMax: 0.08, TableMax: 3000, Beta: 1.5})
	hwCtl.MinKeys = 32
	hw.OnSnapshot = hwCtl.Hook()
	hwAr := hwStage.AssignmentRouter()
	hw.AdvanceWorkload = func(int64) { hwGen.Advance(hwAr.Assignment()) }
	hw.Run(intervals)
	hw.Stop()

	// Builder.
	bGen := mkGen()
	sys := topology.New(topology.Spout(bGen.Next), topology.Budget(8000)).
		Stage("operator", func(int) engine.Operator { return engine.StatefulCount },
			topology.Instances(6),
			topology.WithAlgorithm(topology.AlgMixed),
			topology.Theta(0.08), topology.MinKeys(32)).
		Build()
	bAr := sys.Stage(0).AssignmentRouter()
	sys.Engine.AdvanceWorkload = func(int64) { bGen.Advance(bAr.Assignment()) }
	sys.Run(intervals)
	sys.Stop()

	assertSeriesEqual(t, hw.Recorder.Series, sys.Recorder().Series)
	assertSnapshotsEqual(t, hw.LastSnapshots(), sys.Engine.LastSnapshots())
	assertTablesEqual(t, hwStage, sys.Stage(0))
	if hwCtl.Rebalances() == 0 || hwCtl.Rebalances() != sys.Controller(0).Rebalances() {
		t.Fatalf("rebalances diverge (or none): hand-wired %d, builder %d",
			hwCtl.Rebalances(), sys.Controller(0).Rebalances())
	}
}

// TestBuilderQ5MatchesHandWired pins the 2-stage TPC-H Q5 topology
// under streaming transfer: the builder's pipelined-by-default wiring
// must reproduce the hand-wired engine.New(…, s0, s1) run exactly,
// rebalancing and FK drift included.
func TestBuilderQ5MatchesHandWired(t *testing.T) {
	const intervals = 8
	mkGen := func() *workload.TPCH {
		cfg := workload.DefaultTPCHConfig()
		cfg.Customers, cfg.Suppliers, cfg.OrderPool = 2000, 200, 800
		return workload.NewTPCH(cfg)
	}

	// Hand-wired, Pipeline set explicitly (the builder defaults to it
	// for ≥2 stages — that default is pinned separately below).
	hwGen := mkGen()
	hwJoins := ops.NewQ5JoinFleet(hwGen, 2)
	hwAggs := ops.NewNationRevenueFleet()
	s0 := engine.NewStage("q5join", 4, hwJoins.Factory, 2,
		engine.NewAssignmentRouter(topology.NewAssignment(4)))
	s1 := engine.NewStage("q5agg", 2, hwAggs.Factory, 2,
		engine.NewAssignmentRouter(topology.NewAssignment(2)))
	ecfg := engine.DefaultConfig()
	ecfg.Budget = 12000
	ecfg.Pipeline = true
	hw := engine.New(hwGen.Next, ecfg, s0, s1)
	hwCtl := controller.New(balance.Mixed{}, balance.Config{ThetaMax: 0.08, TableMax: 3000, Beta: 1.5})
	hwCtl.MinKeys = 32
	hw.OnSnapshot = hwCtl.Hook()
	hw.AdvanceWorkload = func(i int64) {
		if i%3 == 0 {
			hwGen.Advance()
		}
	}
	hw.Run(intervals)
	hw.Stop()

	// Builder.
	bGen := mkGen()
	bJoins := ops.NewQ5JoinFleet(bGen, 2)
	bAggs := ops.NewNationRevenueFleet()
	sys := topology.New(
		topology.Spout(bGen.Next),
		topology.Budget(12000),
		topology.AdvanceEach(func(i int64) {
			if i%3 == 0 {
				bGen.Advance()
			}
		}),
	).Stage("q5join", bJoins.Factory,
		topology.Instances(4), topology.Window(2),
		topology.WithAlgorithm(topology.AlgMixed),
		topology.Theta(0.08), topology.MinKeys(32),
	).Stage("q5agg", bAggs.Factory,
		topology.Instances(2), topology.Window(2),
	).Build()
	if !sys.Engine.Cfg.Pipeline {
		t.Fatal("2-stage topology did not default to pipelined transfer")
	}
	sys.Run(intervals)
	sys.Stop()

	assertSeriesEqual(t, hw.Recorder.Series, sys.Recorder().Series)
	assertSnapshotsEqual(t, hw.LastSnapshots(), sys.Engine.LastSnapshots())
	assertTablesEqual(t, s0, sys.StageNamed("q5join"))
	if a, b := hwJoins.TotalJoined(), bJoins.TotalJoined(); a != b || a == 0 {
		t.Fatalf("join results diverge (or zero): hand-wired %d, builder %d", a, b)
	}
	for n := 0; n < len(workload.Regions)*workload.NationsPerRegion; n++ {
		if a, b := hwAggs.TotalRevenue(n), bAggs.TotalRevenue(n); a != b {
			t.Fatalf("nation %d revenue diverges: hand-wired %v, builder %v", n, a, b)
		}
	}
}

// TestBuilderPKGMatchesHandWired pins the PKG partial→merge topology:
// builder-native split-key routing (PKGRouting, resolved to the
// stage's instance count at Build time), the IntervalFlusher emission
// path, and a keyed merge stage — bit-identical to hand-wiring
// engine.PKGRouter over pkgpart directly.
func TestBuilderPKGMatchesHandWired(t *testing.T) {
	const intervals = 5
	mkSpout := func() engine.Spout {
		var seq uint64
		return func() tuple.Tuple {
			seq++
			return tuple.New(tuple.Key(seq%11), nil)
		}
	}

	hwParts := ops.NewPartialCountFleet()
	hwMerges := ops.NewMergeCountFleet()
	h0 := engine.NewStage("partial", 3, hwParts.Factory, 1,
		engine.PKGRouter{R: pkgpart.NewRouter(3)})
	h1 := engine.NewStage("merge", 2, hwMerges.Factory, 1,
		engine.NewAssignmentRouter(topology.NewAssignment(2)))
	hw := engine.New(mkSpout(), engine.Config{
		Window: 1, Budget: 1100, MaxPendingFactor: 2, MigrationFactor: 1, Pipeline: true}, h0, h1)
	hw.Run(intervals)
	hw.Stop()

	bParts := ops.NewPartialCountFleet()
	bMerges := ops.NewMergeCountFleet()
	sys := topology.New(
		topology.Spout(mkSpout()),
		topology.Budget(1100),
		topology.MaxPending(2),
		topology.MigrationFactor(1),
	).Stage("partial", bParts.Factory,
		topology.Instances(3),
		topology.PKGRouting(),
	).Stage("merge", bMerges.Factory,
		topology.Instances(2),
	).Build()
	sys.Run(intervals)
	sys.Stop()

	assertSeriesEqual(t, hw.Recorder.Series, sys.Recorder().Series)
	assertSnapshotsEqual(t, hw.LastSnapshots(), sys.Engine.LastSnapshots())
	for k := tuple.Key(0); k < 11; k++ {
		a, b := hwMerges.TotalCount(k), bMerges.TotalCount(k)
		if a != b {
			t.Fatalf("merged count(%d) diverges: hand-wired %d, builder %d", k, a, b)
		}
		if a != int64(intervals)*100 {
			t.Fatalf("merged count(%d) = %d, want %d", k, a, int64(intervals)*100)
		}
	}
}

// TestPipelineDefaults pins the transfer-mode defaulting: single-stage
// topologies stay store-and-forward, multi-stage default to streaming,
// and both explicit options win over the default.
func TestPipelineDefaults(t *testing.T) {
	op := func(int) engine.Operator { return engine.Discard }
	one := topology.New().Stage("a", op, topology.Instances(2)).Build()
	defer one.Stop()
	if one.Engine.Cfg.Pipeline {
		t.Fatal("single-stage topology defaulted to pipelined transfer")
	}
	two := topology.New().
		Stage("a", op, topology.Instances(2)).
		Stage("b", op, topology.Instances(2)).Build()
	defer two.Stop()
	if !two.Engine.Cfg.Pipeline {
		t.Fatal("2-stage topology did not default to pipelined transfer")
	}
	sf := topology.New(topology.StoreAndForward()).
		Stage("a", op, topology.Instances(2)).
		Stage("b", op, topology.Instances(2)).Build()
	defer sf.Stop()
	if sf.Engine.Cfg.Pipeline {
		t.Fatal("StoreAndForward did not override the multi-stage default")
	}
	pl := topology.New(topology.Pipelined()).Stage("a", op, topology.Instances(2)).Build()
	defer pl.Stop()
	if !pl.Engine.Cfg.Pipeline {
		t.Fatal("Pipelined did not override the single-stage default")
	}
}

// TestPerStageCapacityAndPKGShave pins the per-stage capacity plumbing:
// explicit Capacity reaches the stage's slot of the performance model,
// other stages keep the Budget-derived default, and an AlgPKG stage
// pays the PKGOverhead shave exactly as core.NewSystem charged it.
func TestPerStageCapacityAndPKGShave(t *testing.T) {
	op := func(int) engine.Operator { return engine.Discard }
	sys := topology.New(topology.Budget(1000)).
		Stage("a", op, topology.Instances(2), topology.Capacity(77)).
		Stage("b", op, topology.Instances(2)).
		Build()
	defer sys.Stop()
	if got := sys.Engine.CapacityOf(0); got != 77 {
		t.Fatalf("stage a capacity = %d, want 77", got)
	}
	if got := sys.Engine.CapacityOf(1); got != 500 {
		t.Fatalf("stage b capacity = %d, want Budget/ND = 500", got)
	}

	pkg := topology.New(topology.Budget(1000)).
		Stage("p", op, topology.Instances(2), topology.WithAlgorithm(topology.AlgPKG)).
		Build()
	defer pkg.Stop()
	base := int64(1000) / 2
	want := int64(float64(base) / topology.PKGOverhead)
	if got := pkg.Engine.CapacityOf(0); got != want {
		t.Fatalf("PKG capacity = %d, want %d (shaved below 500)", got, want)
	}
	if pkg.Engine.Cfg.LatencyFloorMs != 10 {
		t.Fatalf("PKG latency floor = %v, want 10", pkg.Engine.Cfg.LatencyFloorMs)
	}
}

// TestTwoControllersRebalanceBothStages is the tentpole lift: one
// engine, two stages, each with its own independent Mixed controller,
// both rebalancing over a skewed fluctuating stream while the pipelined
// transfer and a 2-way spout fan-out keep every concurrency path hot.
// Run under -race (CI does) to stress pipelined flushes × two-stage
// plan application.
func TestTwoControllersRebalanceBothStages(t *testing.T) {
	gen := workload.NewZipfStream(2000, 1.0, 0.8, 8000, 31)
	var forwarded atomic.Int64
	fwd := func(int) engine.Operator {
		return engine.OperatorFunc(func(ctx *engine.TaskCtx, tp tuple.Tuple) {
			engine.StatefulCount.Process(ctx, tp)
			forwarded.Add(1)
			ctx.Emit(tuple.New(tp.Key, nil))
		})
	}
	sys := topology.New(
		topology.Spout(gen.Next),
		topology.Budget(8000),
		topology.Feeders(2),
	).Stage("upstream", fwd,
		topology.Instances(5),
		topology.WithAlgorithm(topology.AlgMixed),
		topology.Theta(0.05), topology.MinKeys(16),
	).Stage("downstream", func(int) engine.Operator { return engine.StatefulCount },
		topology.Instances(4),
		topology.WithAlgorithm(topology.AlgMixed),
		topology.Theta(0.05), topology.MinKeys(16),
	).Build()
	defer sys.Stop()
	ar := sys.Stage(0).AssignmentRouter()
	sys.Engine.AdvanceWorkload = func(int64) { gen.Advance(ar.Assignment()) }

	sys.Run(12)
	if n := sys.Controller(0).Rebalances(); n == 0 {
		t.Fatal("upstream controller never rebalanced a z=1 stream at θ=0.05")
	}
	if n := sys.Controller(1).Rebalances(); n == 0 {
		t.Fatal("downstream controller never rebalanced: the per-stage fan-out is not reaching stage 1")
	}
	if forwarded.Load() == 0 {
		t.Fatal("nothing flowed")
	}
	// The downstream stage's routing table reflects its own controller's
	// plans (non-empty), independent of upstream's.
	if sys.Stage(1).AssignmentRouter().Assignment().Table().Len() == 0 {
		t.Fatal("downstream routing table empty despite rebalances")
	}
}

// TestStageNamedAndControllerNamed covers the by-name accessors.
func TestStageNamedAndControllerNamed(t *testing.T) {
	op := func(int) engine.Operator { return engine.Discard }
	sys := topology.New().
		Stage("a", op, topology.Instances(2), topology.WithAlgorithm(topology.AlgMixed)).
		Stage("b", op, topology.Instances(3)).
		Build()
	defer sys.Stop()
	if st := sys.StageNamed("b"); st == nil || st.Instances() != 3 {
		t.Fatalf("StageNamed(b) = %v", sys.StageNamed("b"))
	}
	if sys.StageNamed("nope") != nil {
		t.Fatal("StageNamed on unknown name should be nil")
	}
	if sys.ControllerNamed("a") == nil {
		t.Fatal("stage a should carry a Mixed controller")
	}
	if sys.ControllerNamed("b") != nil {
		t.Fatal("stage b has no algorithm and should carry no controller")
	}
}

// TestPauseFreeDefaults pins the migration-mode defaulting:
// assignment-routed stages come up pause-free, router families without
// an assignment (shuffle) stay on the legacy path, and
// PausingMigration opts the whole topology back onto the pausing
// oracle.
func TestPauseFreeDefaults(t *testing.T) {
	op := func(int) engine.Operator { return engine.Discard }
	def := topology.New().
		Stage("a", op, topology.Instances(2)).
		Stage("sh", op, topology.Instances(2), topology.WithRouter(engine.NewShuffleRouter(2))).
		Build()
	defer def.Stop()
	if !def.Stage(0).PauseFree() {
		t.Fatal("assignment-routed stage did not default to pause-free migration")
	}
	if def.Stage(1).PauseFree() {
		t.Fatal("shuffle stage claims pause-free migration")
	}

	pausing := topology.New(topology.PausingMigration()).
		Stage("a", op, topology.Instances(2)).
		Build()
	defer pausing.Stop()
	if pausing.Stage(0).PauseFree() {
		t.Fatal("PausingMigration did not disable pause-free migration")
	}
}
