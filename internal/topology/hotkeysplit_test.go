package topology

import (
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/ops"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// The tentpole equivalence pin of hot-key splitting: with the detector
// armed, a run under extreme skew must reproduce the unsplit run's
// observables bit for bit — interval series, final harvest snapshots,
// routing tables, per-instance state volumes and final operator
// aggregates. Swept across Zipf skews from cold (θ=0.8, the detector
// never fires) to viral (θ=1.5, multiple keys split), on both the
// word-count topology and the PartialCount→MergeCount pipeline.

func sameRuns(t *testing.T, label string, off, on *System, nd int) {
	t.Helper()
	so, sn := off.Recorder().Series, on.Recorder().Series
	if len(so) != len(sn) {
		t.Fatalf("%s: series lengths %d ≠ %d", label, len(sn), len(so))
	}
	for i := range so {
		a, b := so[i], sn[i]
		a.PlanMs, b.PlanMs = 0, 0
		if a != b {
			t.Fatalf("%s: interval %d diverges:\nsplit-off %+v\nsplit-on  %+v", label, i, a, b)
		}
	}
	os, ls := off.Engine.LastSnapshots()[0], on.Engine.LastSnapshots()[0]
	if len(os.Keys) != len(ls.Keys) {
		t.Fatalf("%s: snapshot sizes %d ≠ %d", label, len(ls.Keys), len(os.Keys))
	}
	for i := range os.Keys {
		if os.Keys[i] != ls.Keys[i] {
			t.Fatalf("%s: snapshot entry %d: split-off %+v, split-on %+v", label, i, os.Keys[i], ls.Keys[i])
		}
	}
	otab := map[tuple.Key]int{}
	off.Stage(0).AssignmentRouter().Assignment().Table().Each(func(k tuple.Key, d int) { otab[k] = d })
	ltab := map[tuple.Key]int{}
	on.Stage(0).AssignmentRouter().Assignment().Table().Each(func(k tuple.Key, d int) { ltab[k] = d })
	if len(otab) != len(ltab) {
		t.Fatalf("%s: table sizes %d ≠ %d", label, len(ltab), len(otab))
	}
	for k, d := range otab {
		if ltab[k] != d {
			t.Fatalf("%s: table entry %d: split-off %d, split-on %d", label, k, d, ltab[k])
		}
	}
	for d := 0; d < nd; d++ {
		if a, b := off.Stage(0).StoreOf(d).TotalSize(), on.Stage(0).StoreOf(d).TotalSize(); a != b {
			t.Fatalf("%s: instance %d state: split-off %d, split-on %d", label, d, a, b)
		}
	}
}

func TestHotKeySplitEquivalenceWordCount(t *testing.T) {
	const (
		nd        = 6
		keyDomain = 2000
		budget    = 8000
		intervals = 6
	)
	for _, theta := range []float64{0.8, 1.2, 1.5} {
		t.Run(fmt.Sprintf("theta=%.1f", theta), func(t *testing.T) {
			run := func(split bool) (*System, *ops.WordCountFleet) {
				gen := workload.NewZipfStream(keyDomain, theta, 0, budget, 23)
				fleet := ops.NewWordCountFleet()
				sOpts := []StageOption{Instances(nd), Window(2)}
				if split {
					sOpts = append(sOpts, HotKeySplit(4, 1.0))
				}
				sys := New(SpoutBatch(gen.NextBatch), Budget(budget)).
					Stage("wc", fleet.Factory, sOpts...).Build()
				sys.Run(intervals)
				sys.Stop()
				return sys, fleet
			}
			off, offFleet := run(false)
			on, onFleet := run(true)
			if theta >= 1.2 {
				sp := on.Splitter(0)
				if sp == nil || sp.Announced == 0 || sp.MaxActive == 0 {
					t.Fatalf("θ=%.1f: detector never split (announced=%v) — equivalence vacuous", theta, sp)
				}
			}
			sameRuns(t, "wordcount", off, on, nd)
			for k := tuple.Key(0); k < keyDomain; k++ {
				if a, b := offFleet.TotalCount(k), onFleet.TotalCount(k); a != b {
					t.Fatalf("key %d: split-off count %d, split-on %d", k, a, b)
				}
			}
		})
	}
}

func TestHotKeySplitEquivalencePKGPair(t *testing.T) {
	const (
		nd        = 6
		keyDomain = 1500
		budget    = 8000
		intervals = 6
	)
	for _, theta := range []float64{0.8, 1.2, 1.5} {
		t.Run(fmt.Sprintf("theta=%.1f", theta), func(t *testing.T) {
			run := func(split bool) (*System, *ops.PartialCountFleet, *ops.MergeCountFleet) {
				gen := workload.NewZipfStream(keyDomain, theta, 0, budget, 31)
				pf := ops.NewPartialCountFleet()
				mf := ops.NewMergeCountFleet()
				sOpts := []StageOption{Instances(nd)}
				if split {
					sOpts = append(sOpts, HotKeySplit(3, 1.0))
				}
				sys := New(SpoutBatch(gen.NextBatch), Budget(budget), StoreAndForward()).
					Stage("partial", pf.Factory, sOpts...).
					Stage("merge", mf.Factory, Instances(3)).
					Build()
				sys.Run(intervals)
				sys.Stop()
				return sys, pf, mf
			}
			off, offP, offM := run(false)
			on, onP, onM := run(true)
			if theta >= 1.2 {
				sp := on.Splitter(0)
				if sp == nil || sp.Announced == 0 {
					t.Fatalf("θ=%.1f: detector never split — equivalence vacuous", theta)
				}
			}
			sameRuns(t, "pkgpair", off, on, nd)
			var offPub, onPub int64
			for _, op := range offP.Instances {
				offPub += op.Published
			}
			for _, op := range onP.Instances {
				onPub += op.Published
			}
			if offPub != onPub {
				t.Fatalf("partials published: split-off %d, split-on %d", offPub, onPub)
			}
			for k := tuple.Key(0); k < keyDomain; k++ {
				if a, b := offM.TotalCount(k), onM.TotalCount(k); a != b {
					t.Fatalf("key %d: merged total split-off %d, split-on %d", k, a, b)
				}
			}
		})
	}
}

// TestHotKeySplitComposesWithRebalance runs the detector alongside a
// rebalancing controller under viral skew: plans and split churn share
// the control loop, split keys are pinned (the guard counters must
// agree between controller and stage), and the run must neither lose
// nor double-count a single tuple.
func TestHotKeySplitComposesWithRebalance(t *testing.T) {
	const (
		nd        = 6
		keyDomain = 1200
		budget    = 8000
		intervals = 8
	)
	gen := workload.NewZipfStream(keyDomain, 1.4, 0.3, budget, 47)
	fleet := ops.NewWordCountFleet()
	sys := New(SpoutBatch(gen.NextBatch), Budget(budget)).
		Stage("wc", fleet.Factory,
			Instances(nd), Window(2),
			WithAlgorithm(AlgMixed), MinKeys(64), Theta(0.05),
			HotKeySplit(4, 0.8)).
		Build()
	sys.Run(intervals)
	sys.Stop()

	sp := sys.Splitter(0)
	if sp.Announced == 0 {
		t.Fatal("detector never engaged under θ=1.4")
	}
	var emitted int64
	for _, m := range sys.Recorder().Series {
		emitted += m.Emitted
	}
	var counted int64
	for _, op := range fleet.Instances {
		for k := tuple.Key(0); k < keyDomain; k++ {
			counted += op.Count(k)
		}
	}
	if counted != emitted {
		t.Fatalf("counted %d tuples, emitted %d (loss or double-count across split×rebalance)", counted, emitted)
	}
	// Guard bookkeeping: if the stage ever pinned a move, the
	// controller's pass should have stripped it first — stage-level
	// pins only fire for plans the controller did not guard (not built
	// here), so the stage counter must stay zero while the controller's
	// may be positive.
	if got := sys.Stage(0).SplitPinned(); got != 0 {
		t.Fatalf("stage pinned %d moves the controller's guard should have stripped", got)
	}
}

// TestHotKeySplitPanicsUnderPausingMigration pins the Build-time
// validation: the split protocol rides the pause-free machinery, so
// combining HotKeySplit with PausingMigration is a declaration error.
func TestHotKeySplitPanicsUnderPausingMigration(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Build accepted HotKeySplit + PausingMigration")
		}
	}()
	New(PausingMigration()).
		Stage("wc", func(int) engine.Operator { return engine.StatefulCount },
			HotKeySplit(2, 1.0)).
		Build()
}
