package topology_test

import (
	"fmt"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/topology"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// Example_topology declares a two-stage system through the builder: a
// keyed map under the Mixed rebalancer feeding a counting sink. With
// two stages the builder defaults to the streaming inter-stage
// pipeline — the sink consumes mid-interval while the map is still
// processing (topology.StoreAndForward would select the legacy barrier
// transfer).
func Example_topology() {
	gen := workload.NewZipfStream(500, 0.9, 0, 1000, 7)
	var sunk atomic.Int64
	fwd := func(int) engine.Operator {
		return engine.OperatorFunc(func(ctx *engine.TaskCtx, t tuple.Tuple) {
			ctx.Emit(tuple.New(t.Key, nil))
		})
	}
	sink := func(int) engine.Operator {
		return engine.OperatorFunc(func(ctx *engine.TaskCtx, t tuple.Tuple) {
			sunk.Add(1)
		})
	}

	sys := topology.New(
		topology.Spout(gen.Next),
		topology.Budget(1000),
		topology.MaxPending(0), // no backpressure in this tiny demo
	).Stage("map", fwd,
		topology.Instances(4),
		topology.WithAlgorithm(topology.AlgMixed), // router + planner + controller
		topology.MinKeys(16),
	).Stage("count", sink,
		topology.Instances(2),
	).Build()
	defer sys.Stop()

	sys.Run(3)
	fmt.Println("stages:", sys.Stages())
	fmt.Println("pipelined:", sys.Engine.Cfg.Pipeline)
	fmt.Println("tuples through both stages:", sunk.Load())
	// Output:
	// stages: 2
	// pipelined: true
	// tuples through both stages: 3000
}
