package cluster

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/protocol"
	"repro/internal/tuple"
)

// Proto is the cluster session protocol version, validated on both
// sides of every Hello/Welcome handshake.
const Proto = 1

// handshakeTimeout bounds the Hello/Welcome exchange (and nothing
// else: established connections block indefinitely — the interval
// clock, not a timer, paces the session).
const handshakeTimeout = 10 * time.Second

func init() {
	// Tuple values cross the wire as gob interface values; register the
	// concrete types the in-tree workloads and operators put there.
	// Applications with custom value types add theirs via
	// state.RegisterValue (the same registry).
	gob.Register(int(0))
	gob.Register(int64(0))
	gob.Register(uint64(0))
	gob.Register(float64(0))
	gob.Register("")
	gob.Register([]byte(nil))
	gob.Register(tuple.Key(0))
	gob.Register([]tuple.Key(nil))
}

// Conn is one established cluster connection: the framed gob codec
// over a TCP or unix socket, with per-direction byte counters and a
// clean-shutdown close. It satisfies control.Conn, so a coordinator's
// control.Server and a worker's control.Executor speak over it
// unchanged.
type Conn struct {
	*protocol.Codec
	c    net.Conn
	name string
	once sync.Once
}

// Name returns the label the connection reports byte counters under.
func (c *Conn) Name() string { return c.name }

// SetName relabels the connection (e.g. once the peer identified
// itself in its Hello).
func (c *Conn) SetName(n string) { c.name = n }

// Stat returns the connection's byte counters for the shutdown table.
// Counters count gob payload only — frame headers are excluded — so
// they are directly comparable with the in-process wire transport's.
func (c *Conn) Stat() protocol.ConnStat {
	return protocol.ConnStat{Name: c.name, Sent: c.SentBytes(), Rcvd: c.RecvBytes()}
}

// Close shuts the connection down cleanly: a best-effort zero-length
// shutdown frame tells the peer's codec to report io.EOF (clean close,
// not truncation), then the socket closes. Safe to call more than
// once, from any goroutine.
func (c *Conn) Close() error {
	var err error
	c.once.Do(func() {
		_ = protocol.WriteShutdownFrame(c.c)
		err = c.c.Close()
	})
	return err
}

// Dial connects to a cluster listener, performs the handshake (sends
// hello, waits for the Welcome, validates the protocol version) and
// returns the established connection. network is "tcp" or "unix".
func Dial(network, addr string, hello *protocol.Hello) (*Conn, *protocol.Welcome, error) {
	h := *hello
	h.Proto = Proto
	nc, err := net.DialTimeout(network, addr, handshakeTimeout)
	if err != nil {
		return nil, nil, err
	}
	c := &Conn{Codec: protocol.NewFramedCodec(nc), c: nc, name: h.Role}
	_ = nc.SetDeadline(time.Now().Add(handshakeTimeout))
	if err := c.Send(&protocol.Message{Hello: &h}); err != nil {
		nc.Close()
		return nil, nil, fmt.Errorf("cluster: handshake send: %w", err)
	}
	m, err := c.Recv()
	if err != nil {
		nc.Close()
		return nil, nil, fmt.Errorf("cluster: handshake recv: %w", err)
	}
	if m.Welcome == nil {
		nc.Close()
		return nil, nil, fmt.Errorf("cluster: handshake: expected welcome, got %s", m.Kind())
	}
	if m.Welcome.Proto != Proto {
		nc.Close()
		return nil, nil, fmt.Errorf("cluster: protocol version mismatch: ours %d, peer %d", Proto, m.Welcome.Proto)
	}
	_ = nc.SetDeadline(time.Time{})
	return c, m.Welcome, nil
}

// Listener accepts cluster connections on a TCP or unix socket.
type Listener struct {
	ln      net.Listener
	network string
}

// Listen opens a cluster listener. For "tcp", addr like
// "127.0.0.1:0" picks an ephemeral port; for "unix", addr is the
// socket path (unlinked again when the listener closes).
func Listen(network, addr string) (*Listener, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	return &Listener{ln: ln, network: network}, nil
}

// Addr returns the bound address in dialable form.
func (l *Listener) Addr() string { return l.ln.Addr().String() }

// Network returns the listener's network ("tcp" or "unix").
func (l *Listener) Network() string { return l.network }

// Close stops accepting. Established connections are unaffected.
func (l *Listener) Close() error { return l.ln.Close() }

// Accept waits for one connection and its opening Hello, validating
// the protocol version. The caller decides how to answer: send a
// Welcome (the handshake's second half — use Welcome) to accept, or
// Close to reject. The Hello must arrive within the handshake timeout.
func (l *Listener) Accept() (*Conn, *protocol.Hello, error) {
	nc, err := l.ln.Accept()
	if err != nil {
		return nil, nil, err
	}
	c := &Conn{Codec: protocol.NewFramedCodec(nc), c: nc, name: "conn"}
	_ = nc.SetDeadline(time.Now().Add(handshakeTimeout))
	m, err := c.Recv()
	if err != nil {
		nc.Close()
		return nil, nil, fmt.Errorf("cluster: accept handshake: %w", err)
	}
	if m.Hello == nil {
		nc.Close()
		return nil, nil, fmt.Errorf("cluster: accept handshake: expected hello, got %s", m.Kind())
	}
	if m.Hello.Proto != Proto {
		nc.Close()
		return nil, nil, fmt.Errorf("cluster: protocol version mismatch: ours %d, peer %d", Proto, m.Hello.Proto)
	}
	_ = nc.SetDeadline(time.Time{})
	c.name = m.Hello.Role
	return c, m.Hello, nil
}

// Welcome completes an accepted handshake, assigning the connection an
// id (workers get their registration index; control and data
// connections echo their stage).
func (c *Conn) Welcome(id int) error {
	return c.Send(&protocol.Message{Welcome: &protocol.Welcome{Proto: Proto, ID: id}})
}
