package cluster

import (
	"encoding/gob"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/protocol"
	"repro/internal/tuple"
)

// Proto is the cluster session protocol version, validated on both
// sides of every Hello/Welcome handshake.
const Proto = 1

// Feature bits, advertised in Hello.Features and granted (as a subset)
// in Welcome.Features. The handshake itself always speaks gob, so a
// peer that predates a feature simply never offers or grants its bit
// and the connection falls back cleanly.
const (
	// FeatureBinary switches the connection to the hand-rolled binary
	// wire (internal/protocol's kind-dispatched frames) immediately
	// after the Welcome. Both sides must hold the bit: the dialer
	// offers it, the accepter grants it back.
	FeatureBinary uint32 = 1 << 0
)

// knownFeatures is every bit this build understands. A Hello carrying
// bits outside this set is from a newer or corrupt peer; the accepter
// rejects it with a clean error rather than guessing.
const knownFeatures = FeatureBinary

// wireGob, when set, stops this process from offering or granting
// FeatureBinary: every connection speaks the framed gob wire end to
// end. It is the equivalence oracle knob — the same role the pausing
// migration path and store-and-forward play — selectable per process
// via SetWireGob, the REPRO_WIRE=gob environment variable, or the
// -wire flag on cmd/worker and cmd/coordinator.
var wireGob atomic.Bool

func init() {
	if os.Getenv("REPRO_WIRE") == "gob" {
		wireGob.Store(true)
	}
}

// SetWireGob selects the wire codec for connections this process opens
// or accepts from now on: true pins the framed gob oracle, false
// (default) negotiates the binary wire.
func SetWireGob(v bool) { wireGob.Store(v) }

// WireGob reports whether the gob oracle is pinned.
func WireGob() bool { return wireGob.Load() }

// offeredFeatures returns the feature bits this process advertises and
// is willing to grant.
func offeredFeatures() uint32 {
	if wireGob.Load() {
		return 0
	}
	return FeatureBinary
}

// handshakeTimeout bounds the Hello/Welcome exchange (and nothing
// else: established connections block indefinitely — the interval
// clock, not a timer, paces the session).
const handshakeTimeout = 10 * time.Second

func init() {
	// Tuple values cross the wire as gob interface values; register the
	// concrete types the in-tree workloads and operators put there.
	// Applications with custom value types add theirs via
	// state.RegisterValue (the same registry).
	gob.Register(int(0))
	gob.Register(int64(0))
	gob.Register(uint64(0))
	gob.Register(float64(0))
	gob.Register("")
	gob.Register([]byte(nil))
	gob.Register(tuple.Key(0))
	gob.Register([]tuple.Key(nil))
}

// Conn is one established cluster connection: the framed gob codec
// over a TCP or unix socket, with per-direction byte counters and a
// clean-shutdown close. It satisfies control.Conn, so a coordinator's
// control.Server and a worker's control.Executor speak over it
// unchanged.
type Conn struct {
	*protocol.Codec
	c    net.Conn
	name string
	once sync.Once
	// offered holds the peer's Hello feature bits on an accepted
	// connection, pending the Welcome; features holds the negotiated
	// set once the handshake completes.
	offered  uint32
	features uint32
}

// Features returns the feature bits both sides agreed to.
func (c *Conn) Features() uint32 { return c.features }

// Name returns the label the connection reports byte counters under.
func (c *Conn) Name() string { return c.name }

// SetName relabels the connection (e.g. once the peer identified
// itself in its Hello).
func (c *Conn) SetName(n string) { c.name = n }

// Stat returns the connection's byte and message counters for the
// shutdown table. Byte counters count codec payload only — frame
// headers are excluded — so they are directly comparable with the
// in-process wire transport's; message counters count wire units
// (coalesced frames count once).
func (c *Conn) Stat() protocol.ConnStat {
	return protocol.ConnStat{
		Name: c.name,
		Sent: c.SentBytes(), Rcvd: c.RecvBytes(),
		SentMsgs: c.SentMsgs(), RcvdMsgs: c.RecvMsgs(),
	}
}

// Close shuts the connection down cleanly: a best-effort zero-length
// shutdown frame tells the peer's codec to report io.EOF (clean close,
// not truncation), then the socket closes. Safe to call more than
// once, from any goroutine.
func (c *Conn) Close() error {
	var err error
	c.once.Do(func() {
		_ = protocol.WriteShutdownFrame(c.c)
		err = c.c.Close()
	})
	return err
}

// Dial connects to a cluster listener, performs the handshake (sends
// hello, waits for the Welcome, validates the protocol version) and
// returns the established connection. network is "tcp" or "unix".
func Dial(network, addr string, hello *protocol.Hello) (*Conn, *protocol.Welcome, error) {
	h := *hello
	h.Proto = Proto
	h.Features = offeredFeatures()
	nc, err := net.DialTimeout(network, addr, handshakeTimeout)
	if err != nil {
		return nil, nil, err
	}
	c := &Conn{Codec: protocol.NewFramedCodec(nc), c: nc, name: h.Role}
	_ = nc.SetDeadline(time.Now().Add(handshakeTimeout))
	if err := c.Send(&protocol.Message{Hello: &h}); err != nil {
		nc.Close()
		return nil, nil, fmt.Errorf("cluster: handshake send: %w", err)
	}
	m, err := c.Recv()
	if err != nil {
		nc.Close()
		return nil, nil, fmt.Errorf("cluster: handshake recv: %w", err)
	}
	if m.Welcome == nil {
		nc.Close()
		return nil, nil, fmt.Errorf("cluster: handshake: expected welcome, got %s", m.Kind())
	}
	if m.Welcome.Proto != Proto {
		nc.Close()
		return nil, nil, fmt.Errorf("cluster: protocol version mismatch: ours %d, peer %d", Proto, m.Welcome.Proto)
	}
	if granted := m.Welcome.Features; granted&^h.Features != 0 {
		nc.Close()
		return nil, nil, fmt.Errorf("cluster: handshake: peer granted feature bits %#x we never offered (%#x)", granted, h.Features)
	}
	c.features = m.Welcome.Features
	if c.features&FeatureBinary != 0 {
		c.EnableBinary()
	}
	_ = nc.SetDeadline(time.Time{})
	return c, m.Welcome, nil
}

// Listener accepts cluster connections on a TCP or unix socket.
type Listener struct {
	ln      net.Listener
	network string
}

// Listen opens a cluster listener. For "tcp", addr like
// "127.0.0.1:0" picks an ephemeral port; for "unix", addr is the
// socket path (unlinked again when the listener closes).
func Listen(network, addr string) (*Listener, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	return &Listener{ln: ln, network: network}, nil
}

// Addr returns the bound address in dialable form.
func (l *Listener) Addr() string { return l.ln.Addr().String() }

// Network returns the listener's network ("tcp" or "unix").
func (l *Listener) Network() string { return l.network }

// Close stops accepting. Established connections are unaffected.
func (l *Listener) Close() error { return l.ln.Close() }

// Accept waits for one connection and its opening Hello, validating
// the protocol version. The caller decides how to answer: send a
// Welcome (the handshake's second half — use Welcome) to accept, or
// Close to reject. The Hello must arrive within the handshake timeout.
func (l *Listener) Accept() (*Conn, *protocol.Hello, error) {
	nc, err := l.ln.Accept()
	if err != nil {
		return nil, nil, err
	}
	c := &Conn{Codec: protocol.NewFramedCodec(nc), c: nc, name: "conn"}
	_ = nc.SetDeadline(time.Now().Add(handshakeTimeout))
	m, err := c.Recv()
	if err != nil {
		nc.Close()
		return nil, nil, fmt.Errorf("cluster: accept handshake: %w", err)
	}
	if m.Hello == nil {
		nc.Close()
		return nil, nil, fmt.Errorf("cluster: accept handshake: expected hello, got %s", m.Kind())
	}
	if m.Hello.Proto != Proto {
		nc.Close()
		return nil, nil, fmt.Errorf("cluster: protocol version mismatch: ours %d, peer %d", Proto, m.Hello.Proto)
	}
	if unknown := m.Hello.Features &^ knownFeatures; unknown != 0 {
		nc.Close()
		return nil, nil, fmt.Errorf("cluster: handshake: unknown feature bits %#x in hello (known %#x)", unknown, knownFeatures)
	}
	c.offered = m.Hello.Features
	_ = nc.SetDeadline(time.Time{})
	c.name = m.Hello.Role
	return c, m.Hello, nil
}

// Welcome completes an accepted handshake, assigning the connection an
// id (workers get their registration index; control and data
// connections echo their stage) and granting the intersection of the
// peer's offered features with this process's own. The Welcome itself
// still travels as gob; any granted codec switches on immediately
// after, so both sides change modes at the same stream position.
func (c *Conn) Welcome(id int) error {
	granted := c.offered & offeredFeatures()
	if err := c.Send(&protocol.Message{Welcome: &protocol.Welcome{Proto: Proto, ID: id, Features: granted}}); err != nil {
		return err
	}
	c.features = granted
	if granted&FeatureBinary != 0 {
		c.EnableBinary()
	}
	return nil
}
