package cluster

import (
	"errors"
	"fmt"
	"io"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/protocol"
	"repro/internal/tuple"
)

// listenAddr returns a fresh listener address for the network: an
// ephemeral loopback port for tcp, a socket path in the test's temp
// dir for unix.
func listenAddr(t *testing.T, network string) string {
	t.Helper()
	if network == "unix" {
		return filepath.Join(t.TempDir(), "s.sock")
	}
	return "127.0.0.1:0"
}

func TestHandshake(t *testing.T) {
	for _, network := range []string{"tcp", "unix"} {
		t.Run(network, func(t *testing.T) {
			ln, err := Listen(network, listenAddr(t, network))
			if err != nil {
				t.Fatalf("listen: %v", err)
			}
			defer ln.Close()

			type result struct {
				c *Conn
				w *protocol.Welcome
			}
			done := make(chan result, 1)
			go func() {
				c, w, err := Dial(network, ln.Addr(), &protocol.Hello{Role: "worker", Worker: "w0", DataAddr: "addr0"})
				if err != nil {
					t.Errorf("dial: %v", err)
					close(done)
					return
				}
				done <- result{c, w}
			}()

			sc, hello, err := ln.Accept()
			if err != nil {
				t.Fatalf("accept: %v", err)
			}
			defer sc.Close()
			if hello.Role != "worker" || hello.Worker != "w0" || hello.DataAddr != "addr0" {
				t.Fatalf("hello = %+v", hello)
			}
			if hello.Proto != Proto {
				t.Fatalf("hello proto = %d, want %d", hello.Proto, Proto)
			}
			if err := sc.Welcome(7); err != nil {
				t.Fatalf("welcome: %v", err)
			}
			r, ok := <-done
			if !ok {
				t.Fatal("dial failed")
			}
			defer r.c.Close()
			if r.w.ID != 7 || r.w.Proto != Proto {
				t.Fatalf("welcome = %+v", r.w)
			}

			// Established connections speak the framed codec both ways.
			if err := r.c.Send(&protocol.Message{Start: &protocol.StartInterval{Interval: 3, Emit: 99}}); err != nil {
				t.Fatalf("send: %v", err)
			}
			m, err := sc.Recv()
			if err != nil || m.Start == nil || m.Start.Emit != 99 {
				t.Fatalf("recv = %v, %v", m, err)
			}
		})
	}
}

// TestHandshakeNegotiation is the codec negotiation matrix: two
// current peers land on the binary wire; a peer with the gob knob set
// (or an old peer that never offers the bit) falls back to gob on both
// sides; corrupt feature bits are rejected with a clean error in
// either direction.
func TestHandshakeNegotiation(t *testing.T) {
	pair := func(t *testing.T) (*Conn, *Conn) {
		t.Helper()
		ln, err := Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		defer ln.Close()
		var dialed *Conn
		var dialErr error
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			dialed, _, dialErr = Dial("tcp", ln.Addr(), &protocol.Hello{Role: "data"})
		}()
		sc, _, err := ln.Accept()
		if err != nil {
			t.Fatalf("accept: %v", err)
		}
		if err := sc.Welcome(0); err != nil {
			t.Fatalf("welcome: %v", err)
		}
		wg.Wait()
		if dialErr != nil {
			t.Fatalf("dial: %v", dialErr)
		}
		return dialed, sc
	}

	exchange := func(t *testing.T, a, b *Conn) {
		t.Helper()
		batch := &protocol.Message{Batch: &protocol.TupleBatch{Tuples: []tuple.Tuple{tuple.New(9, int64(1))}}}
		if err := a.Send(batch); err != nil {
			t.Fatalf("send: %v", err)
		}
		m, err := b.Recv()
		if err != nil || m.Batch == nil || m.Batch.Tuples[0].Key != 9 {
			t.Fatalf("recv = %v, %v", m, err)
		}
	}

	t.Run("binary-binary", func(t *testing.T) {
		a, b := pair(t)
		defer a.Close()
		defer b.Close()
		if !a.Binary() || !b.Binary() {
			t.Fatalf("binary not negotiated: dial=%v accept=%v", a.Binary(), b.Binary())
		}
		if a.Features() != FeatureBinary || b.Features() != FeatureBinary {
			t.Fatalf("features: dial=%#x accept=%#x", a.Features(), b.Features())
		}
		exchange(t, a, b)
		exchange(t, b, a)
	})

	t.Run("gob-knob", func(t *testing.T) {
		SetWireGob(true)
		t.Cleanup(func() { SetWireGob(false) })
		a, b := pair(t)
		defer a.Close()
		defer b.Close()
		if a.Binary() || b.Binary() || a.Features() != 0 || b.Features() != 0 {
			t.Fatalf("gob knob ignored: dial=(%v,%#x) accept=(%v,%#x)",
				a.Binary(), a.Features(), b.Binary(), b.Features())
		}
		exchange(t, a, b)
		exchange(t, b, a)
	})

	t.Run("old-peer-gob-only", func(t *testing.T) {
		// An old peer never sets feature bits in its Hello; the accepter
		// must grant nothing and keep speaking framed gob both ways.
		ln, err := Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		defer ln.Close()
		done := make(chan error, 1)
		go func() {
			nc, err := net.Dial("tcp", ln.Addr())
			if err != nil {
				done <- err
				return
			}
			defer nc.Close()
			codec := protocol.NewFramedCodec(nc)
			if err := codec.Send(&protocol.Message{Hello: &protocol.Hello{Proto: Proto, Role: "data"}}); err != nil {
				done <- err
				return
			}
			m, err := codec.Recv()
			if err != nil {
				done <- err
				return
			}
			if m.Welcome == nil || m.Welcome.Features != 0 {
				done <- fmt.Errorf("welcome = %+v, want zero features", m.Welcome)
				return
			}
			// Speak gob after the handshake, both directions.
			if err := codec.Send(&protocol.Message{FlushReq: &protocol.Flush{Seq: 5}}); err != nil {
				done <- err
				return
			}
			m, err = codec.Recv()
			if err != nil || m.FlushReq == nil || m.FlushReq.Seq != 5 {
				done <- fmt.Errorf("echo = %v, %v", m, err)
				return
			}
			done <- nil
		}()
		sc, hello, err := ln.Accept()
		if err != nil {
			t.Fatalf("accept: %v", err)
		}
		defer sc.Close()
		if hello.Features != 0 {
			t.Fatalf("old peer hello features = %#x", hello.Features)
		}
		if err := sc.Welcome(0); err != nil {
			t.Fatalf("welcome: %v", err)
		}
		if sc.Binary() {
			t.Fatal("accepter switched to binary against a gob-only peer")
		}
		m, err := sc.Recv()
		if err != nil || m.FlushReq == nil {
			t.Fatalf("recv = %v, %v", m, err)
		}
		if err := sc.Send(&protocol.Message{FlushReq: m.FlushReq}); err != nil {
			t.Fatalf("echo: %v", err)
		}
		if err := <-done; err != nil {
			t.Fatalf("old peer: %v", err)
		}
	})

	t.Run("corrupt-hello-bits", func(t *testing.T) {
		ln, err := Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		defer ln.Close()
		go func() {
			nc, err := net.Dial("tcp", ln.Addr())
			if err != nil {
				return
			}
			defer nc.Close()
			codec := protocol.NewFramedCodec(nc)
			_ = codec.Send(&protocol.Message{Hello: &protocol.Hello{Proto: Proto, Role: "data", Features: 0xff00}})
			_, _ = codec.Recv()
		}()
		if _, _, err := ln.Accept(); err == nil {
			t.Fatal("accept with unknown feature bits succeeded")
		} else if !strings.Contains(err.Error(), "feature bits") {
			t.Fatalf("error does not name the feature bits: %v", err)
		}
	})

	t.Run("corrupt-welcome-bits", func(t *testing.T) {
		// A broken accepter granting bits that were never offered must
		// fail the dial cleanly.
		nl, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		defer nl.Close()
		go func() {
			nc, err := nl.Accept()
			if err != nil {
				return
			}
			defer nc.Close()
			codec := protocol.NewFramedCodec(nc)
			if _, err := codec.Recv(); err != nil {
				return
			}
			_ = codec.Send(&protocol.Message{Welcome: &protocol.Welcome{Proto: Proto, ID: 0, Features: 1 << 9}})
		}()
		if _, _, err := Dial("tcp", nl.Addr().String(), &protocol.Hello{Role: "data"}); err == nil {
			t.Fatal("dial accepting unoffered feature bits succeeded")
		} else if !strings.Contains(err.Error(), "feature bits") {
			t.Fatalf("error does not name the feature bits: %v", err)
		}
	})
}

// TestBatchConnConcurrentFeed stresses the encode-outside-mutex path:
// many goroutines feed one coalescing BatchConn while the receiver
// replays chunks. Every chunk must arrive intact and in per-sender
// order — chunks interleave across senders but never tear.
func TestBatchConnConcurrentFeed(t *testing.T) {
	const senders, chunksPer, perChunk = 8, 200, 17
	ln, err := Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()

	var got [][]tuple.Tuple
	done := make(chan struct{})
	go func() {
		sc, _, err := ln.Accept()
		if err != nil {
			return
		}
		_ = sc.Welcome(0)
		flushEcho(t, sc, &got, done)
	}()

	dc, _, err := Dial("tcp", ln.Addr(), &protocol.Hello{Role: "data"})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if !dc.Binary() {
		t.Fatal("binary wire not negotiated")
	}
	bc := NewBatchConn(dc, 4<<10) // small budget: force mid-stream frame flushes

	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ts := make([]tuple.Tuple, perChunk)
			for seq := 0; seq < chunksPer; seq++ {
				base := uint64(g)<<32 | uint64(seq)<<8
				for i := range ts {
					ts[i] = tuple.New(tuple.Key(base+uint64(i)), int64(i))
				}
				bc.FeedBatch(ts)
			}
		}(g)
	}
	wg.Wait()
	if err := bc.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	bc.Close()
	<-done

	if len(got) != senders*chunksPer {
		t.Fatalf("received %d chunks, want %d", len(got), senders*chunksPer)
	}
	nextSeq := make([]int, senders)
	for ci, chunk := range got {
		if len(chunk) != perChunk {
			t.Fatalf("chunk %d has %d tuples, want %d", ci, len(chunk), perChunk)
		}
		g := int(chunk[0].Key >> 32)
		seq := int(chunk[0].Key>>8) & 0xffffff
		if g < 0 || g >= senders || seq != nextSeq[g] {
			t.Fatalf("chunk %d: sender %d seq %d, want seq %d", ci, g, seq, nextSeq[g])
		}
		nextSeq[g]++
		base := uint64(g)<<32 | uint64(seq)<<8
		for i, tt := range chunk {
			if tt.Key != tuple.Key(base+uint64(i)) || tt.Value != any(int64(i)) {
				t.Fatalf("chunk %d tuple %d torn: %+v", ci, i, tt)
			}
		}
	}
}

func TestHandshakeProtoMismatch(t *testing.T) {
	ln, err := Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() {
		// A raw framed client announcing the wrong protocol version.
		nc, err := net.Dial("tcp", ln.Addr())
		if err != nil {
			return
		}
		defer nc.Close()
		codec := protocol.NewFramedCodec(nc)
		_ = codec.Send(&protocol.Message{Hello: &protocol.Hello{Proto: Proto + 1, Role: "worker"}})
		_, _ = codec.Recv()
	}()
	if _, _, err := ln.Accept(); err == nil {
		t.Fatal("accept with mismatched proto succeeded")
	}
}

func TestCleanShutdownVsTruncation(t *testing.T) {
	pair := func(t *testing.T) (*Conn, *Conn) {
		ln, err := Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		defer ln.Close()
		var dialed *Conn
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			dialed, _, _ = Dial("tcp", ln.Addr(), &protocol.Hello{Role: "x"})
		}()
		sc, _, err := ln.Accept()
		if err != nil {
			t.Fatalf("accept: %v", err)
		}
		if err := sc.Welcome(0); err != nil {
			t.Fatalf("welcome: %v", err)
		}
		wg.Wait()
		if dialed == nil {
			t.Fatal("dial failed")
		}
		return dialed, sc
	}

	t.Run("clean", func(t *testing.T) {
		a, b := pair(t)
		defer b.Close()
		a.Close() // sends the zero-length shutdown frame first
		if _, err := b.Recv(); !errors.Is(err, io.EOF) {
			t.Fatalf("recv after clean close = %v, want io.EOF", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		a, b := pair(t)
		defer b.Close()
		// Tear the socket down with no shutdown frame: a mid-stream cut.
		// TCP RST/FIN without the frame must not read as a clean EOF...
		a.c.Close()
		_, err := b.Recv()
		if err == nil {
			t.Fatal("recv after raw close succeeded")
		}
		// ...unless it lands exactly between frames, which a raw close
		// does here (no partial frame was in flight). The guarantee under
		// test: an in-frame cut is distinguishable. Write half a header,
		// then cut.
		c, d := pair(t)
		defer d.Close()
		if _, err := c.c.Write([]byte{0, 0}); err != nil {
			t.Fatalf("write partial header: %v", err)
		}
		c.c.Close()
		_, err = d.Recv()
		if err == nil || errors.Is(err, io.EOF) {
			t.Fatalf("recv after in-frame cut = %v, want unexpected-EOF error", err)
		}
	})
}

// flushEcho is the receiver half of the data-plane protocol, as the
// worker runs it: batches accumulate, flushes echo.
func flushEcho(t *testing.T, c *Conn, got *[][]tuple.Tuple, done chan<- struct{}) {
	defer close(done)
	for {
		m, err := c.Recv()
		if err != nil {
			return
		}
		switch {
		case m.Batch != nil:
			m.Batch.Chunks(func(ts []tuple.Tuple) {
				*got = append(*got, append([]tuple.Tuple(nil), ts...))
			})
		case m.FlushReq != nil:
			if c.Send(&protocol.Message{FlushReq: m.FlushReq}) != nil {
				return
			}
		}
	}
}

func TestBatchConnFlushBarrier(t *testing.T) {
	for _, network := range []string{"tcp", "unix"} {
		t.Run(network, func(t *testing.T) {
			ln, err := Listen(network, listenAddr(t, network))
			if err != nil {
				t.Fatalf("listen: %v", err)
			}
			defer ln.Close()

			var got [][]tuple.Tuple
			done := make(chan struct{})
			go func() {
				sc, _, err := ln.Accept()
				if err != nil {
					return
				}
				_ = sc.Welcome(0)
				flushEcho(t, sc, &got, done)
			}()

			dc, _, err := Dial(network, ln.Addr(), &protocol.Hello{Role: "data", Stage: 0})
			if err != nil {
				t.Fatalf("dial: %v", err)
			}
			bc := NewBatchConn(dc, 0)

			// Chunk boundaries must be preserved: one FeedBatch = one
			// received batch, in order.
			want := [][]tuple.Tuple{
				{tuple.New(1, int64(10)), tuple.New(2, int64(20))},
				{tuple.New(3, nil)},
				{tuple.New(4, "s"), tuple.New(5, []tuple.Key{6, 7})},
			}
			for _, batch := range want {
				bc.FeedBatch(batch)
			}
			bc.FeedBatch(nil) // empty batches never hit the wire
			if err := bc.Flush(); err != nil {
				t.Fatalf("flush: %v", err)
			}
			// The barrier holds: everything sent before Flush returned is
			// already in got, no synchronization needed beyond the echo.
			if len(got) != len(want) {
				t.Fatalf("received %d batches, want %d", len(got), len(want))
			}
			for i := range want {
				if len(got[i]) != len(want[i]) {
					t.Fatalf("batch %d: %d tuples, want %d", i, len(got[i]), len(want[i]))
				}
				for j := range want[i] {
					g, w := got[i][j], want[i][j]
					if g.Key != w.Key {
						t.Fatalf("batch %d tuple %d: key %v, want %v", i, j, g.Key, w.Key)
					}
				}
			}
			if err := bc.Flush(); err != nil {
				t.Fatalf("second flush: %v", err)
			}
			st := bc.Stat()
			if st.Sent == 0 || st.Rcvd == 0 {
				t.Fatalf("byte counters not advancing: %+v", st)
			}
			bc.Close()
			<-done
		})
	}
}
