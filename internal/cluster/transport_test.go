package cluster

import (
	"errors"
	"io"
	"net"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/protocol"
	"repro/internal/tuple"
)

// listenAddr returns a fresh listener address for the network: an
// ephemeral loopback port for tcp, a socket path in the test's temp
// dir for unix.
func listenAddr(t *testing.T, network string) string {
	t.Helper()
	if network == "unix" {
		return filepath.Join(t.TempDir(), "s.sock")
	}
	return "127.0.0.1:0"
}

func TestHandshake(t *testing.T) {
	for _, network := range []string{"tcp", "unix"} {
		t.Run(network, func(t *testing.T) {
			ln, err := Listen(network, listenAddr(t, network))
			if err != nil {
				t.Fatalf("listen: %v", err)
			}
			defer ln.Close()

			type result struct {
				c *Conn
				w *protocol.Welcome
			}
			done := make(chan result, 1)
			go func() {
				c, w, err := Dial(network, ln.Addr(), &protocol.Hello{Role: "worker", Worker: "w0", DataAddr: "addr0"})
				if err != nil {
					t.Errorf("dial: %v", err)
					close(done)
					return
				}
				done <- result{c, w}
			}()

			sc, hello, err := ln.Accept()
			if err != nil {
				t.Fatalf("accept: %v", err)
			}
			defer sc.Close()
			if hello.Role != "worker" || hello.Worker != "w0" || hello.DataAddr != "addr0" {
				t.Fatalf("hello = %+v", hello)
			}
			if hello.Proto != Proto {
				t.Fatalf("hello proto = %d, want %d", hello.Proto, Proto)
			}
			if err := sc.Welcome(7); err != nil {
				t.Fatalf("welcome: %v", err)
			}
			r, ok := <-done
			if !ok {
				t.Fatal("dial failed")
			}
			defer r.c.Close()
			if r.w.ID != 7 || r.w.Proto != Proto {
				t.Fatalf("welcome = %+v", r.w)
			}

			// Established connections speak the framed codec both ways.
			if err := r.c.Send(&protocol.Message{Start: &protocol.StartInterval{Interval: 3, Emit: 99}}); err != nil {
				t.Fatalf("send: %v", err)
			}
			m, err := sc.Recv()
			if err != nil || m.Start == nil || m.Start.Emit != 99 {
				t.Fatalf("recv = %v, %v", m, err)
			}
		})
	}
}

func TestHandshakeProtoMismatch(t *testing.T) {
	ln, err := Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() {
		// A raw framed client announcing the wrong protocol version.
		nc, err := net.Dial("tcp", ln.Addr())
		if err != nil {
			return
		}
		defer nc.Close()
		codec := protocol.NewFramedCodec(nc)
		_ = codec.Send(&protocol.Message{Hello: &protocol.Hello{Proto: Proto + 1, Role: "worker"}})
		_, _ = codec.Recv()
	}()
	if _, _, err := ln.Accept(); err == nil {
		t.Fatal("accept with mismatched proto succeeded")
	}
}

func TestCleanShutdownVsTruncation(t *testing.T) {
	pair := func(t *testing.T) (*Conn, *Conn) {
		ln, err := Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		defer ln.Close()
		var dialed *Conn
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			dialed, _, _ = Dial("tcp", ln.Addr(), &protocol.Hello{Role: "x"})
		}()
		sc, _, err := ln.Accept()
		if err != nil {
			t.Fatalf("accept: %v", err)
		}
		if err := sc.Welcome(0); err != nil {
			t.Fatalf("welcome: %v", err)
		}
		wg.Wait()
		if dialed == nil {
			t.Fatal("dial failed")
		}
		return dialed, sc
	}

	t.Run("clean", func(t *testing.T) {
		a, b := pair(t)
		defer b.Close()
		a.Close() // sends the zero-length shutdown frame first
		if _, err := b.Recv(); !errors.Is(err, io.EOF) {
			t.Fatalf("recv after clean close = %v, want io.EOF", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		a, b := pair(t)
		defer b.Close()
		// Tear the socket down with no shutdown frame: a mid-stream cut.
		// TCP RST/FIN without the frame must not read as a clean EOF...
		a.c.Close()
		_, err := b.Recv()
		if err == nil {
			t.Fatal("recv after raw close succeeded")
		}
		// ...unless it lands exactly between frames, which a raw close
		// does here (no partial frame was in flight). The guarantee under
		// test: an in-frame cut is distinguishable. Write half a header,
		// then cut.
		c, d := pair(t)
		defer d.Close()
		if _, err := c.c.Write([]byte{0, 0}); err != nil {
			t.Fatalf("write partial header: %v", err)
		}
		c.c.Close()
		_, err = d.Recv()
		if err == nil || errors.Is(err, io.EOF) {
			t.Fatalf("recv after in-frame cut = %v, want unexpected-EOF error", err)
		}
	})
}

// flushEcho is the receiver half of the data-plane protocol, as the
// worker runs it: batches accumulate, flushes echo.
func flushEcho(t *testing.T, c *Conn, got *[][]tuple.Tuple, done chan<- struct{}) {
	defer close(done)
	for {
		m, err := c.Recv()
		if err != nil {
			return
		}
		switch {
		case m.Batch != nil:
			*got = append(*got, append([]tuple.Tuple(nil), m.Batch.Tuples...))
		case m.FlushReq != nil:
			if c.Send(&protocol.Message{FlushReq: m.FlushReq}) != nil {
				return
			}
		}
	}
}

func TestBatchConnFlushBarrier(t *testing.T) {
	for _, network := range []string{"tcp", "unix"} {
		t.Run(network, func(t *testing.T) {
			ln, err := Listen(network, listenAddr(t, network))
			if err != nil {
				t.Fatalf("listen: %v", err)
			}
			defer ln.Close()

			var got [][]tuple.Tuple
			done := make(chan struct{})
			go func() {
				sc, _, err := ln.Accept()
				if err != nil {
					return
				}
				_ = sc.Welcome(0)
				flushEcho(t, sc, &got, done)
			}()

			dc, _, err := Dial(network, ln.Addr(), &protocol.Hello{Role: "data", Stage: 0})
			if err != nil {
				t.Fatalf("dial: %v", err)
			}
			bc := NewBatchConn(dc)

			// Chunk boundaries must be preserved: one FeedBatch = one
			// received batch, in order.
			want := [][]tuple.Tuple{
				{tuple.New(1, int64(10)), tuple.New(2, int64(20))},
				{tuple.New(3, nil)},
				{tuple.New(4, "s"), tuple.New(5, []tuple.Key{6, 7})},
			}
			for _, batch := range want {
				bc.FeedBatch(batch)
			}
			bc.FeedBatch(nil) // empty batches never hit the wire
			if err := bc.Flush(); err != nil {
				t.Fatalf("flush: %v", err)
			}
			// The barrier holds: everything sent before Flush returned is
			// already in got, no synchronization needed beyond the echo.
			if len(got) != len(want) {
				t.Fatalf("received %d batches, want %d", len(got), len(want))
			}
			for i := range want {
				if len(got[i]) != len(want[i]) {
					t.Fatalf("batch %d: %d tuples, want %d", i, len(got[i]), len(want[i]))
				}
				for j := range want[i] {
					g, w := got[i][j], want[i][j]
					if g.Key != w.Key {
						t.Fatalf("batch %d tuple %d: key %v, want %v", i, j, g.Key, w.Key)
					}
				}
			}
			if err := bc.Flush(); err != nil {
				t.Fatalf("second flush: %v", err)
			}
			st := bc.Stat()
			if st.Sent == 0 || st.Rcvd == 0 {
				t.Fatalf("byte counters not advancing: %+v", st)
			}
			bc.Close()
			<-done
		})
	}
}
