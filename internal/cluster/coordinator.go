package cluster

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/control"
	"repro/internal/controller"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/stats"
)

// registerTimeout bounds how long Deploy waits for the worker fleet to
// register (and for each deployment step to ack).
const registerTimeout = 30 * time.Second

// workerSess is one registered worker: its session connection and the
// data-plane address its stages accept tuple batches on.
type workerSess struct {
	id       int
	name     string
	conn     *Conn
	dataAddr string
}

// Coordinator drives a distributed topology: it owns the Spec, the
// spout, the per-stage control policies and the interval clock, and
// replays the engine's throttle and queueing model over arrival
// accounting shipped back by the workers — bit-identical to a
// single-process run of the same Spec.
type Coordinator struct {
	spec   *Spec
	target int
	ln     *Listener

	mu       sync.Mutex
	cond     *sync.Cond
	workers  []*workerSess
	servers  []*control.Server // per stage; nil without policies
	ctlConns []*Conn           // per stage; control sockets, for the byte table
	accErr   error
	acceptWG sync.WaitGroup

	policies [][]control.Policy
	ctls     []*controller.Controller
	onRound  []func(control.Env, *stats.Snapshot)

	placement []int
	capacity  []int64
	backlog   [][]int64
	backlogT  [][]int64
	processed []int64

	spout    *BatchConn
	em       *engine.Emitter
	interval int64
	rec      *metrics.Recorder
}

// NewCoordinator opens the coordinator's listener (network "tcp" or
// "unix") and starts accepting worker registrations and control
// connections in the background. The spec is resolved (defaults
// normalized) and its per-stage policies instantiated here, so the
// caller can read controllers after the run.
func NewCoordinator(spec *Spec, network, addr string) (*Coordinator, error) {
	ln, err := Listen(network, addr)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{spec: spec, ln: ln, rec: &metrics.Recorder{}}
	c.cond = sync.NewCond(&c.mu)
	c.target = spec.resolve()
	n := len(spec.Stages)
	c.policies = make([][]control.Policy, n)
	c.ctls = make([]*controller.Controller, n)
	c.onRound = make([]func(control.Env, *stats.Snapshot), n)
	c.servers = make([]*control.Server, n)
	c.ctlConns = make([]*Conn, n)
	for si := range spec.Stages {
		c.policies[si], c.ctls[si] = spec.Policies(si)
	}
	c.acceptWG.Add(1)
	go c.accept()
	return c, nil
}

// Addr returns the listener's dialable address — what workers pass as
// their coordinator endpoint.
func (c *Coordinator) Addr() string { return c.ln.Addr() }

// OnRound registers an observer for stage si's completed control
// rounds (reassembled snapshot plus stage context), called on the
// stage's server goroutine. Must be set before Deploy — the server is
// created when the stage's worker dials in.
func (c *Coordinator) OnRound(si int, fn func(control.Env, *stats.Snapshot)) {
	c.mu.Lock()
	c.onRound[si] = fn
	c.mu.Unlock()
}

// accept classifies inbound connections by their Hello role: workers
// register (welcomed with their fleet index), control connections are
// matched to their stage's policy server and started. Exits when the
// listener closes.
func (c *Coordinator) accept() {
	defer c.acceptWG.Done()
	for {
		conn, hello, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		switch hello.Role {
		case "worker":
			c.mu.Lock()
			id := len(c.workers)
			w := &workerSess{id: id, name: hello.Worker, conn: conn, dataAddr: hello.DataAddr}
			conn.SetName(fmt.Sprintf("session %s", hello.Worker))
			if err := conn.Welcome(id); err != nil {
				conn.Close()
				c.mu.Unlock()
				continue
			}
			c.workers = append(c.workers, w)
			c.cond.Broadcast()
			c.mu.Unlock()
		case "control":
			si := hello.Stage
			c.mu.Lock()
			if si < 0 || si >= len(c.policies) || len(c.policies[si]) == 0 || c.servers[si] != nil {
				c.mu.Unlock()
				conn.Close()
				continue
			}
			conn.SetName(fmt.Sprintf("control s%d", si))
			if err := conn.Welcome(si); err != nil {
				conn.Close()
				c.mu.Unlock()
				continue
			}
			srv := control.NewServer(conn, c.policies[si])
			srv.OnRound = c.onRound[si]
			c.servers[si] = srv
			c.ctlConns[si] = conn
			srv.Start()
			c.mu.Unlock()
		default:
			conn.Close()
		}
	}
}

// Deploy waits for nWorkers registrations, places the stages (stage si
// on worker si mod N, pipeline order), ships the assignments — last
// stage first, so every downstream data listener has its stage before
// an upstream host dials it — and opens the spout's data connection to
// stage 0's host. After Deploy the cluster is ready for Run.
func (c *Coordinator) Deploy(nWorkers int) error {
	if nWorkers < 1 {
		return fmt.Errorf("cluster: Deploy needs at least one worker")
	}
	workers, err := c.waitWorkers(nWorkers)
	if err != nil {
		return err
	}
	stages := c.spec.Stages
	c.placement = make([]int, len(stages))
	for si := range stages {
		c.placement[si] = si % nWorkers
	}
	for si := len(stages) - 1; si >= 0; si-- {
		st := &stages[si]
		a := &protocol.StageAssign{
			Stage:     si,
			Name:      st.Name,
			Op:        st.Op,
			Instances: st.Instances,
			Window:    st.Window,
			Algorithm: string(st.Algorithm),
			Capacity:  st.Capacity,
			Budget:    c.spec.Budget,
			PauseFree: true,
			StateWire: true,
			Control:   len(c.policies[si]) > 0,
			Coalesce:  c.spec.Coalesce,
		}
		if si+1 < len(stages) {
			a.Downstream = workers[c.placement[si+1]].dataAddr
			a.DownStage = si + 1
		}
		w := workers[c.placement[si]]
		if err := w.conn.Send(&protocol.Message{Assign: a}); err != nil {
			return fmt.Errorf("cluster: assign stage %d to %s: %w", si, w.name, err)
		}
		if err := c.recvAck(w); err != nil {
			return fmt.Errorf("cluster: assign stage %d to %s: %w", si, w.name, err)
		}
	}
	sc, _, err := Dial(c.ln.Network(), workers[c.placement[0]].dataAddr,
		&protocol.Hello{Role: "data", Worker: "coordinator", Stage: 0})
	if err != nil {
		return fmt.Errorf("cluster: dial spout data plane: %w", err)
	}
	sc.SetName("data spout→s0")
	c.spout = NewBatchConn(sc, c.spec.Coalesce)
	c.em = engine.NewEmitter(c.spout, c.spec.SpoutB, nil, 1, false)

	// The coordinator-side model state: per-stage capacity and backlog
	// arrays, exactly what engine.init derives.
	c.capacity = make([]int64, len(stages))
	c.backlog = make([][]int64, len(stages))
	c.backlogT = make([][]int64, len(stages))
	c.processed = make([]int64, len(stages))
	for si, st := range stages {
		c.capacity[si] = st.Capacity
		c.backlog[si] = make([]int64, st.Instances)
		c.backlogT[si] = make([]int64, st.Instances)
	}
	return nil
}

func (c *Coordinator) waitWorkers(n int) ([]*workerSess, error) {
	deadline := time.Now().Add(registerTimeout)
	timer := time.AfterFunc(registerTimeout, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer timer.Stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.workers) < n {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("cluster: %d of %d workers registered before timeout", len(c.workers), n)
		}
		c.cond.Wait()
	}
	return append([]*workerSess(nil), c.workers[:n]...), nil
}

func (c *Coordinator) recvAck(w *workerSess) error {
	m, err := w.conn.Recv()
	if err != nil {
		return err
	}
	if m.Ack == nil {
		return fmt.Errorf("expected ack from %s, got %s", w.name, m.Kind())
	}
	return nil
}

// Run drives n intervals.
func (c *Coordinator) Run(n int) error {
	for i := 0; i < n; i++ {
		if err := c.RunInterval(); err != nil {
			return err
		}
	}
	return nil
}

// RunInterval drives one full logical interval over the cluster — the
// engine's RunInterval spelled as a message sequence:
//
//  1. throttle the budget against the coordinator's backlog model;
//  2. StartInterval on every worker (acked: all stages are open before
//     the first tuple flows);
//  3. emit through the engine's own Emitter into the spout data
//     connection, then flush it (delivery barrier into stage 0);
//  4. CloseStage per stage in pipeline order — each worker closes the
//     stage and flushes its downstream connection before acking, which
//     is the cascading close over sockets;
//  5. HarvestReq per stage in order: the worker ends the interval,
//     runs its control round against this coordinator's policy server,
//     and ships back arrival accounting; the coordinator replays
//     resizes on its backlog arrays and steps the identical queueing
//     model, recording the target stage's metrics row.
func (c *Coordinator) RunInterval() error {
	workers := c.workers
	emitN := engine.ThrottleBudget(c.spec.Budget, c.spec.MaxPendingFactor, c.capacity, c.backlog)
	for _, w := range workers {
		if err := w.conn.Send(&protocol.Message{Start: &protocol.StartInterval{Interval: c.interval, Emit: emitN}}); err != nil {
			return fmt.Errorf("cluster: start interval %d on %s: %w", c.interval, w.name, err)
		}
	}
	for _, w := range workers {
		if err := c.recvAck(w); err != nil {
			return fmt.Errorf("cluster: start interval %d on %s: %w", c.interval, w.name, err)
		}
	}

	if got := c.em.Emit(c.interval, emitN); got < emitN {
		emitN = got // finite source ended early; charge the true emission
	}
	if err := c.spout.Flush(); err != nil {
		return fmt.Errorf("cluster: spout flush: %w", err)
	}

	for si := range c.spec.Stages {
		w := workers[c.placement[si]]
		if err := w.conn.Send(&protocol.Message{Close: &protocol.CloseStage{Stage: si}}); err != nil {
			return fmt.Errorf("cluster: close stage %d: %w", si, err)
		}
		if err := c.recvAck(w); err != nil {
			return fmt.Errorf("cluster: close stage %d: %w", si, err)
		}
	}

	var row metrics.Interval
	var rowSet bool
	for si := range c.spec.Stages {
		w := workers[c.placement[si]]
		if err := w.conn.Send(&protocol.Message{Harvest: &protocol.HarvestReq{Stage: si, Interval: c.interval, Emit: emitN}}); err != nil {
			return fmt.Errorf("cluster: harvest stage %d: %w", si, err)
		}
		m, err := w.conn.Recv()
		if err != nil {
			return fmt.Errorf("cluster: harvest stage %d: %w", si, err)
		}
		hd := m.Harvested
		if hd == nil || hd.Stage != si {
			return fmt.Errorf("cluster: harvest stage %d: unexpected reply %s", si, m.Kind())
		}
		// Replay the round's resizes on the model arrays — the same
		// surgery Stage.ScaleOut/ScaleIn and ResizeStageObserved perform.
		for _, d := range hd.Resizes {
			if d > 0 {
				c.backlog[si] = append(c.backlog[si], 0)
				c.backlogT[si] = append(c.backlogT[si], 0)
			} else if n := len(c.backlog[si]); n > 1 {
				c.backlog[si][n-2] += c.backlog[si][n-1]
				c.backlog[si] = c.backlog[si][:n-1]
				c.backlogT[si][n-2] += c.backlogT[si][n-1]
				c.backlogT[si] = c.backlogT[si][:n-1]
			}
		}
		if len(c.backlog[si]) != hd.Instances {
			return fmt.Errorf("cluster: stage %d: model has %d instances, worker reports %d", si, len(c.backlog[si]), hd.Instances)
		}
		p := engine.ModelParams{Capacity: c.capacity[si], MigrationFactor: c.spec.MigrationFactor}
		m2 := engine.StepModel(p, c.backlog[si], c.backlogT[si], hd.MigPenalty, hd.ArrivedCost, hd.ArrivedTuples)
		c.processed[si] = hd.Processed
		if si == c.target {
			m2.Index = c.interval
			m2.Emitted = emitN
			m2.ScaleOuts = hd.ScaledOut
			m2.ScaleIns = hd.ScaledIn
			if hd.Rebalanced {
				m2.Rebalanced = true
				m2.PlanMs = hd.PlanMs
				m2.TableSize = hd.TableSize
				if hd.LiveState > 0 {
					m2.MigrationPct = 100 * float64(hd.Moved) / float64(hd.LiveState)
				}
			}
			row, rowSet = m2, true
		}
	}
	if rowSet {
		c.rec.Add(row)
	}
	c.interval++
	if c.spec.Advance != nil {
		c.spec.Advance(c.interval)
	}
	return nil
}

// Recorder exposes the target stage's per-interval metric series —
// the same rows a single-process run's engine.Recorder accumulates.
func (c *Coordinator) Recorder() *metrics.Recorder { return c.rec }

// Controller returns stage si's coordinator-side rebalance controller,
// or nil for planner-less stages.
func (c *Coordinator) Controller(si int) *controller.Controller { return c.ctls[si] }

// Rebalances sums applied plans across every controller-managed stage.
func (c *Coordinator) Rebalances() int {
	n := 0
	for _, ctl := range c.ctls {
		if ctl != nil {
			n += ctl.Rebalances()
		}
	}
	return n
}

// Placement returns the stage → worker index mapping Deploy chose.
func (c *Coordinator) Placement() []int { return append([]int(nil), c.placement...) }

// Processed returns stage si's cumulative arrived-tuple count as of
// the last harvest — the zero-loss account.
func (c *Coordinator) Processed(si int) int64 { return c.processed[si] }

// Shutdown ends the session: Bye to every worker (collecting their
// per-connection byte counters), then closes the control servers, the
// spout and the listener. The returned Stats — one per worker, plus
// one synthesized for the coordinator's own dialed connections — feed
// the shutdown byte table.
func (c *Coordinator) Shutdown() ([]*protocol.Stats, error) {
	var all []*protocol.Stats
	var firstErr error
	// Own connections first: the spout data plane and the per-stage
	// control sockets (counted from the coordinator's side).
	if c.spout != nil {
		own := &protocol.Stats{Worker: "coordinator"}
		own.Conns = append(own.Conns, c.spout.Stat())
		for si, cc := range c.ctlConns {
			if cc != nil {
				s := cc.Stat()
				s.Name = fmt.Sprintf("control s%d (%s)", si, c.spec.Stages[si].Name)
				own.Conns = append(own.Conns, s)
			}
		}
		all = append(all, own)
		c.spout.Close()
	}
	for _, w := range c.workers {
		if err := w.conn.Send(&protocol.Message{Bye: &protocol.Shutdown{Reason: "run complete"}}); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			w.conn.Close()
			continue
		}
		m, err := w.conn.Recv()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if err == nil && m.ConnStats != nil {
			all = append(all, m.ConnStats)
		}
		w.conn.Close()
	}
	for _, srv := range c.servers {
		if srv != nil {
			srv.Close()
		}
	}
	c.ln.Close()
	c.acceptWG.Wait()
	return all, firstErr
}

// FormatStats renders the shutdown byte table: one line per
// connection, grouped by owner, codec payload bytes and wire messages
// in each direction (a coalesced frame counts as one message).
func FormatStats(all []*protocol.Stats) string {
	var b []byte
	appendf := func(format string, args ...any) { b = fmt.Appendf(b, format, args...) }
	appendf("connection bytes (codec payload, framing excluded):\n")
	for _, s := range all {
		appendf("  %s:\n", s.Worker)
		for _, cs := range s.Conns {
			appendf("    %-26s sent %10d (%7d msgs)  rcvd %10d (%7d msgs)\n",
				cs.Name, cs.Sent, cs.SentMsgs, cs.Rcvd, cs.RcvdMsgs)
		}
	}
	return string(b)
}
