// Package cluster is the distributed runtime: it hosts the engine's
// pipeline stages in separate OS processes connected by real sockets,
// speaking the same protocol messages the in-process control loops are
// pinned on — the final link of the loopback ≡ pipe ≡ socket chain.
//
// A deployment is one coordinator process and N worker processes
// (cmd/coordinator, cmd/worker). The coordinator owns the topology
// declaration (a Spec), the spout, the per-stage rebalance policies and
// the interval clock; workers own the stages — task goroutines, state
// stores, routers — and the elastic actuators. Stage placement is
// deliberately simple and deterministic: stage si lives on worker
// si mod N, in pipeline order, so any worker count between 1 and the
// stage count yields a valid cluster and the placement needs no
// negotiation protocol.
//
// Three connection kinds tie the processes together, all built on the
// length-framed protocol.NewFramedCodec over TCP or unix sockets and
// opening with a Hello/Welcome handshake. The handshake itself always
// speaks gob; feature bits in it negotiate the wire for everything
// after — by default both sides hold FeatureBinary and switch to the
// hand-rolled binary codec (zero-reflection encoding for batches,
// flushes, the interval drive and the control round, plus FeedBatch
// frame coalescing up to Spec.Coalesce bytes on data edges), while old
// peers, or processes pinned with SetWireGob / REPRO_WIRE=gob /
// -wire gob, fall back to the framed gob oracle:
//
//   - the worker session (one per worker, dialed at startup): stage
//     assignments, interval StartInterval/CloseStage/HarvestReq drive,
//     shutdown and the final byte-count Stats;
//   - control connections (one per stage, dialed by the hosting
//     worker): the stage's control.Executor answers a coordinator-side
//     control.Server — exactly the Fig. 5 rounds the single-process
//     loops run, serialized over the socket, with migrated state
//     crossing as state.Codec payloads in StateTransfer messages;
//   - data connections (spout → stage 0, stage si → stage si+1 across
//     process boundaries): TupleBatch streams into the remote stage's
//     FeedBatch, with Flush echoes as delivery barriers.
//
// The distributed run is pinned bit-identical to the single-process
// engine (Spec.BuildLocal): same interval series, same harvest
// snapshots, same routing tables — with live rebalances, scale-out,
// scale-in and hot-key splits applied mid-run over the sockets, and
// zero tuple loss. The equivalence holds because every decision point
// reuses the exact single-process code over wire inputs: the
// coordinator runs engine.ThrottleBudget and engine.StepModel over
// shipped arrival accounting, the emission plane is the same
// engine.Emitter (so chunk boundaries, and hence shuffle routing, are
// preserved), and every FeedBatch call's chunk boundary survives the
// wire — as its own TupleBatch message on the gob oracle, as a
// length-prefixed sub-batch inside a coalesced binary frame otherwise
// — so the receiver replays the exact same FeedBatch sequence either
// way.
package cluster
