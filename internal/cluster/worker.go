package cluster

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/control"
	"repro/internal/engine"
	"repro/internal/protocol"
	"repro/internal/topology"
)

// hostedStage is one pipeline stage living on this worker: the stage
// itself wrapped in a single-stage engine (the executor's actuation
// surface), plus the stage's wiring — the downstream data connection
// (nil for the last stage) and the control connection with its
// executor (nil for stages without coordinator-side policies).
type hostedStage struct {
	si   int
	st   *engine.Stage
	eng  *engine.Engine
	x    *control.Executor
	ctrl *Conn
	down *BatchConn
	// resizes records the current round's applied instance-count deltas
	// in actuation order (via Executor.OnResize), shipped in HarvestDone
	// so the coordinator replays the same backlog array surgery.
	resizes []int
	// processed accumulates the stage's arrived-tuple total across
	// intervals — the zero-loss account HarvestDone reports.
	processed int64
}

// Worker hosts stages for one coordinator session. Run (or RunWorker)
// drives it to completion: register, build assigned stages, answer the
// interval drive, tear down on Shutdown.
type Worker struct {
	name    string
	network string
	coord   string

	session *Conn
	dataLn  *Listener

	mu        sync.Mutex
	cond      *sync.Cond
	stages    map[int]*hostedStage
	dataConns []*Conn
	closed    bool

	wg sync.WaitGroup // data-plane goroutines
}

// NewWorker dials the coordinator at coord (network "tcp" or "unix"),
// opens this worker's data-plane listener on dataAddr (e.g.
// "127.0.0.1:0" for tcp, a socket path for unix) and registers. The
// returned worker is idle until Run.
func NewWorker(network, coord, dataAddr, name string) (*Worker, error) {
	w := &Worker{name: name, network: network, coord: coord, stages: map[int]*hostedStage{}}
	w.cond = sync.NewCond(&w.mu)
	ln, err := Listen(network, dataAddr)
	if err != nil {
		return nil, fmt.Errorf("cluster: worker %s: data listener: %w", name, err)
	}
	w.dataLn = ln
	sess, _, err := Dial(network, coord, &protocol.Hello{Role: "worker", Worker: name, DataAddr: ln.Addr()})
	if err != nil {
		ln.Close()
		return nil, fmt.Errorf("cluster: worker %s: register: %w", name, err)
	}
	sess.SetName("session")
	w.session = sess
	go w.acceptData()
	return w, nil
}

// RunWorker is the whole worker lifecycle in one call — what
// cmd/worker's main comes down to. It returns nil on a clean
// coordinator-driven shutdown.
func RunWorker(network, coord, dataAddr, name string) error {
	w, err := NewWorker(network, coord, dataAddr, name)
	if err != nil {
		return err
	}
	return w.Run()
}

// Run serves the coordinator session until Shutdown (nil) or a
// transport/protocol error. Teardown runs in every case.
func (w *Worker) Run() error {
	defer w.teardown()
	for {
		m, err := w.session.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) {
				// Coordinator closed the session without Shutdown — an
				// abort, but a clean frame-level one.
				return nil
			}
			return fmt.Errorf("cluster: worker %s: session: %w", w.name, err)
		}
		switch {
		case m.Assign != nil:
			if err := w.assign(m.Assign); err != nil {
				return err
			}
			if err := w.ack(m.Assign.Stage, 0); err != nil {
				return err
			}
		case m.Start != nil:
			w.mu.Lock()
			for _, h := range w.stages {
				h.st.StartInterval(m.Start.Interval)
				h.eng.SetLastEmitted(m.Start.Emit)
			}
			w.mu.Unlock()
			if err := w.ack(-1, m.Start.Interval); err != nil {
				return err
			}
		case m.Close != nil:
			h := w.stage(m.Close.Stage)
			if h == nil {
				return fmt.Errorf("cluster: worker %s: close for unassigned stage %d", w.name, m.Close.Stage)
			}
			h.st.CloseInterval()
			if h.down != nil {
				if err := h.down.Flush(); err != nil {
					return fmt.Errorf("cluster: worker %s: stage %d downstream flush: %w", w.name, h.si, err)
				}
			}
			if err := w.ack(h.si, 0); err != nil {
				return err
			}
		case m.Harvest != nil:
			done, err := w.harvest(m.Harvest)
			if err != nil {
				return err
			}
			if err := w.session.Send(&protocol.Message{Harvested: done}); err != nil {
				return err
			}
		case m.Bye != nil:
			stats := w.stats()
			if err := w.session.Send(&protocol.Message{ConnStats: stats}); err != nil {
				return err
			}
			return nil
		default:
			return fmt.Errorf("cluster: worker %s: unexpected session message %s", w.name, m.Kind())
		}
	}
}

func (w *Worker) ack(task int, interval int64) error {
	return w.session.Send(&protocol.Message{Ack: &protocol.Ack{TaskID: task, Interval: interval}})
}

func (w *Worker) stage(si int) *hostedStage {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stages[si]
}

// assign builds one stage exactly as the topology builder would — same
// router resolution, same engine config — then wires its data and
// control planes. The stage lives inside its own single-stage engine:
// that is the executor's actuation surface (capacity, resize,
// last-emitted) detached from any driver loop, which the coordinator
// replaces.
func (w *Worker) assign(a *protocol.StageAssign) error {
	r := topology.RouterFor(topology.Algorithm(a.Algorithm), a.Instances)
	st := engine.NewStage(a.Name, a.Instances, MustOp(a.Op), a.Window, r)
	cfg := engine.DefaultConfig()
	cfg.Budget = a.Budget
	cfg.Capacity = a.Capacity
	cfg.PauseFree = a.PauseFree
	cfg.Harvest = engine.HarvestMode(a.Harvest)
	eng := engine.NewBatch(nil, cfg, st)
	if a.StateWire {
		st.SetStateWire(true)
	}
	h := &hostedStage{si: a.Stage, st: st, eng: eng}
	if a.Downstream != "" {
		dc, _, err := Dial(w.network, a.Downstream, &protocol.Hello{
			Role: "data", Worker: w.name, Stage: a.DownStage,
		})
		if err != nil {
			st.Stop()
			return fmt.Errorf("cluster: worker %s: stage %d: dial downstream s%d: %w", w.name, a.Stage, a.DownStage, err)
		}
		dc.SetName(fmt.Sprintf("data s%d→s%d", a.Stage, a.DownStage))
		h.down = NewBatchConn(dc, a.Coalesce)
		st.SetSink(h.down)
	}
	if a.Control {
		cc, _, err := Dial(w.network, w.coord, &protocol.Hello{
			Role: "control", Worker: w.name, Stage: a.Stage,
		})
		if err != nil {
			st.Stop()
			return fmt.Errorf("cluster: worker %s: stage %d: dial control: %w", w.name, a.Stage, err)
		}
		cc.SetName(fmt.Sprintf("control s%d", a.Stage))
		h.ctrl = cc
		h.x = control.NewExecutor(eng, 0, cc)
		h.x.OnResize = func(delta int) { h.resizes = append(h.resizes, delta) }
	}
	w.mu.Lock()
	w.stages[a.Stage] = h
	w.cond.Broadcast()
	w.mu.Unlock()
	return nil
}

// harvest ends one stage's interval in exactly the single-process
// order: record the true emission, capture arrival accounting, harvest
// statistics (EndInterval), measure pre-rebalance live state, run the
// control round, then copy-and-zero the migration penalties StepModel
// would have consumed. The coordinator feeds the shipped arrays to the
// identical model code.
func (w *Worker) harvest(req *protocol.HarvestReq) (*protocol.HarvestDone, error) {
	h := w.stage(req.Stage)
	if h == nil {
		return nil, fmt.Errorf("cluster: worker %s: harvest for unassigned stage %d", w.name, req.Stage)
	}
	h.eng.SetLastEmitted(req.Emit)
	cost := append([]int64(nil), h.st.ArrivedCost()...)
	tuples := append([]int64(nil), h.st.ArrivedTuples()...)
	snap := h.st.EndInterval(req.Interval)
	var liveState int64
	for d := 0; d < h.st.Instances(); d++ {
		liveState += h.st.StoreOf(d).TotalSize()
	}
	h.resizes = h.resizes[:0]
	var reb *engine.Rebalance
	if h.x != nil {
		reb = h.x.RunRound(snap)
	}
	mig := append([]int64(nil), h.st.MigPenalty...)
	for i := range h.st.MigPenalty {
		h.st.MigPenalty[i] = 0
	}
	for _, t := range tuples {
		h.processed += t
	}
	done := &protocol.HarvestDone{
		Stage:         h.si,
		Interval:      req.Interval,
		ArrivedCost:   cost,
		ArrivedTuples: tuples,
		MigPenalty:    mig,
		Resizes:       append([]int(nil), h.resizes...),
		Instances:     h.st.Instances(),
		LiveState:     liveState,
		Processed:     h.processed,
	}
	if reb != nil {
		done.ScaledOut, done.ScaledIn = reb.ScaledOut, reb.ScaledIn
		if reb.Plan != nil {
			done.Rebalanced = true
			done.PlanMs = float64(reb.Plan.GenTime.Microseconds()) / 1000
			done.TableSize = reb.Plan.TableSize()
			done.Moved = reb.Moved
		}
	}
	return done, nil
}

// Stage returns the hosted stage's engine.Stage, or nil — test access
// to routing tables and state stores after a run.
func (w *Worker) Stage(si int) *engine.Stage {
	if h := w.stage(si); h != nil {
		return h.st
	}
	return nil
}

// stats assembles the worker's per-connection byte counters: the
// session itself, each stage's control and downstream data
// connections, and every accepted inbound data connection.
func (w *Worker) stats() *protocol.Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	s := &protocol.Stats{Worker: w.name}
	s.Conns = append(s.Conns, w.session.Stat())
	sis := make([]int, 0, len(w.stages))
	for si := range w.stages {
		sis = append(sis, si)
	}
	sort.Ints(sis)
	for _, si := range sis {
		h := w.stages[si]
		if h.ctrl != nil {
			s.Conns = append(s.Conns, h.ctrl.Stat())
		}
		if h.down != nil {
			s.Conns = append(s.Conns, h.down.Stat())
		}
	}
	for _, c := range w.dataConns {
		s.Conns = append(s.Conns, c.Stat())
	}
	return s
}

// acceptData serves the worker's data listener: each inbound
// connection names its destination stage in its Hello, waits (inside
// the handshake) until that stage is assigned, then streams batches.
func (w *Worker) acceptData() {
	for {
		c, h, err := w.dataLn.Accept()
		if err != nil {
			return // listener closed: teardown
		}
		w.mu.Lock()
		w.dataConns = append(w.dataConns, c)
		w.mu.Unlock()
		w.wg.Add(1)
		go w.serveData(c, h)
	}
}

// serveData is one inbound data connection: TupleBatch feeds the
// stage, Flush echoes back (the sender's delivery barrier — by the
// time the echo is sent, every prior batch has been fed). Exits on
// EOF (clean shutdown frame) or any error.
func (w *Worker) serveData(c *Conn, hello *protocol.Hello) {
	defer w.wg.Done()
	defer c.Close()
	st := w.waitStage(hello.Stage)
	if st == nil {
		return // tearing down before the stage was assigned
	}
	c.SetName(fmt.Sprintf("data %s→s%d", hello.Worker, hello.Stage))
	if c.Welcome(hello.Stage) != nil {
		return
	}
	for {
		m, err := c.Recv()
		if err != nil {
			return
		}
		switch {
		case m.Batch != nil:
			// Replay the sender's FeedBatch call sequence: a coalesced
			// frame carries its chunk boundaries in Bounds, and feeding
			// chunk by chunk keeps shuffle routing and arrival accounting
			// bit-identical to the uncoalesced wire. The decoded tuples
			// live in the codec's pooled buffer (valid until the next
			// Recv); FeedBatch copies them out before returning.
			m.Batch.Chunks(st.FeedBatch)
		case m.FlushReq != nil:
			if c.Send(&protocol.Message{FlushReq: m.FlushReq}) != nil {
				return
			}
		default:
			return
		}
	}
}

// waitStage blocks until stage si is assigned (returning its stage) or
// the worker starts tearing down (returning nil).
func (w *Worker) waitStage(si int) *engine.Stage {
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if h, ok := w.stages[si]; ok {
			return h.st
		}
		if w.closed {
			return nil
		}
		w.cond.Wait()
	}
}

// teardown closes the worker's own dialed connections first (releasing
// downstream hosts' inbound loops), then the data plane, then stops
// the stages — strictly after every feeder goroutine has exited, so no
// FeedBatch races a stopping stage.
func (w *Worker) teardown() {
	w.mu.Lock()
	w.closed = true
	stages := make([]*hostedStage, 0, len(w.stages))
	for _, h := range w.stages {
		stages = append(stages, h)
	}
	w.cond.Broadcast()
	w.mu.Unlock()
	for _, h := range stages {
		if h.down != nil {
			h.down.Close()
		}
		if h.ctrl != nil {
			h.ctrl.Close()
		}
	}
	w.dataLn.Close()
	w.wg.Wait()
	for _, h := range stages {
		h.st.Stop()
	}
	w.session.Close()
}
