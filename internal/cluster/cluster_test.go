package cluster

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"repro/internal/control"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/tuple"
)

// scriptedResize is a coordinator-side policy driving live elasticity
// mid-run: scale-out at one interval, scale-in at a later one. The
// same value runs in the single-process reference (via
// StageSpec.Policies → topology.WithPolicy), so both runs issue the
// identical command sequence.
type scriptedResize struct {
	outAt, inAt int64
}

func (p scriptedResize) Decide(env control.Env, snap *stats.Snapshot) []control.Command {
	if !env.Resizable {
		return nil
	}
	switch env.Interval {
	case p.outAt:
		return []control.Command{control.ScaleOut{}}
	case p.inAt:
		return []control.Command{control.ScaleIn{}}
	}
	return nil
}

// testSpec returns a fresh socialpipe spec with the scripted
// elasticity attached to the count stage. Fresh per call: the
// generator state lives in the Spec's closures.
func testSpec(t *testing.T) *Spec {
	spec, err := LookupTopology("socialpipe")
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	spec.Stages[1].Policies = []control.Policy{scriptedResize{outAt: 5, inAt: 11}}
	return spec
}

const testIntervals = 16

// distributedRun is everything a distributed socialpipe run leaves
// behind, captured before shutdown.
type distributedRun struct {
	series     []metrics.Interval
	snaps      []*stats.Snapshot // count-stage wire snapshots, one per round
	rebalances int
	table      map[tuple.Key]int
	stores     []storeSnap
	processed  []int64
	stats      []string // byte-table connection names
	binaryWire bool     // what the spout edge actually negotiated
}

type storeSnap struct {
	total int64
	keys  int
}

// runDistributed stands up nWorkers in-process workers over real
// sockets, deploys the socialpipe spec, drives testIntervals
// intervals and captures every observable the equivalence is pinned
// on.
func runDistributed(t *testing.T, network string, nWorkers int, mutate ...func(*Spec)) *distributedRun {
	t.Helper()
	spec := testSpec(t)
	for _, m := range mutate {
		m(spec)
	}
	addr := "127.0.0.1:0"
	if network == "unix" {
		addr = filepath.Join(t.TempDir(), "coord.sock")
	}
	c, err := NewCoordinator(spec, network, addr)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}

	var mu sync.Mutex
	var snaps []*stats.Snapshot
	c.OnRound(1, func(env control.Env, snap *stats.Snapshot) {
		mu.Lock()
		snaps = append(snaps, snap)
		mu.Unlock()
	})

	workers := make([]*Worker, nWorkers)
	errs := make(chan error, nWorkers)
	for i := range workers {
		dataAddr := "127.0.0.1:0"
		if network == "unix" {
			dataAddr = filepath.Join(t.TempDir(), fmt.Sprintf("w%d.sock", i))
		}
		w, err := NewWorker(network, c.Addr(), dataAddr, fmt.Sprintf("w%d", i))
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		workers[i] = w
		go func() { errs <- w.Run() }()
	}

	if err := c.Deploy(nWorkers); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	if err := c.Run(testIntervals); err != nil {
		t.Fatalf("run: %v", err)
	}

	// Capture worker-side state while the stages are still alive.
	r := &distributedRun{rebalances: c.Rebalances(), binaryWire: c.spout.c.Binary()}
	r.series = append(r.series, c.Recorder().Series...)
	countStage := workers[c.Placement()[1]].Stage(1)
	if countStage == nil {
		t.Fatal("count stage not hosted where placement says")
	}
	r.table = map[tuple.Key]int{}
	countStage.AssignmentRouter().Assignment().Table().Each(func(k tuple.Key, d int) { r.table[k] = d })
	for d := 0; d < countStage.Instances(); d++ {
		st := countStage.StoreOf(d)
		r.stores = append(r.stores, storeSnap{total: st.TotalSize(), keys: st.KeyCount()})
	}
	if errs := countStage.StateWireErrs(); errs != 0 {
		t.Fatalf("state codec errors on count stage: %d", errs)
	}
	for si := range spec.Stages {
		r.processed = append(r.processed, c.Processed(si))
	}

	all, err := c.Shutdown()
	if err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for _, s := range all {
		for _, cs := range s.Conns {
			r.stats = append(r.stats, fmt.Sprintf("%s/%s", s.Worker, cs.Name))
			if cs.Sent == 0 && cs.Rcvd == 0 {
				t.Errorf("connection %s %s moved no bytes", s.Worker, cs.Name)
			}
		}
	}
	for i := range workers {
		if err := <-errs; err != nil {
			t.Fatalf("worker %d exited: %v", i, err)
		}
	}

	mu.Lock()
	r.snaps = snaps
	mu.Unlock()
	return r
}

// runLocal is the pinned single-process reference: the same Spec
// through topology.Build, with count-stage snapshots captured at the
// same post-round point.
func runLocal(t *testing.T) *distributedRun {
	t.Helper()
	spec := testSpec(t)
	sys := spec.BuildLocal()
	defer sys.Stop()

	var snaps []*stats.Snapshot
	sys.Engine.AddSnapshotHook(1, func(e *engine.Engine, si int, snap *stats.Snapshot) *engine.Rebalance {
		cp := &stats.Snapshot{Interval: snap.Interval, ND: snap.ND, Keys: append([]stats.KeyStat(nil), snap.Keys...)}
		snaps = append(snaps, cp)
		return nil
	})

	sys.Run(testIntervals)

	r := &distributedRun{rebalances: sys.Rebalances(), snaps: snaps}
	r.series = append(r.series, sys.Recorder().Series...)
	count := sys.StageNamed("count")
	r.table = map[tuple.Key]int{}
	count.AssignmentRouter().Assignment().Table().Each(func(k tuple.Key, d int) { r.table[k] = d })
	for d := 0; d < count.Instances(); d++ {
		st := count.StoreOf(d)
		r.stores = append(r.stores, storeSnap{total: st.TotalSize(), keys: st.KeyCount()})
	}
	return r
}

// sortedKeys returns the snapshot's key stats sorted by key —
// the wire reassembly and the engine harvest may order entries
// differently; the multiset is what both runs must agree on.
func sortedKeys(s *stats.Snapshot) []stats.KeyStat {
	ks := append([]stats.KeyStat(nil), s.Keys...)
	sort.Slice(ks, func(i, j int) bool { return ks[i].Key < ks[j].Key })
	return ks
}

func compareRuns(t *testing.T, name string, got, want *distributedRun) {
	t.Helper()

	// Interval series, PlanMs stripped (wall-clock plan generation).
	if len(got.series) != len(want.series) {
		t.Fatalf("%s: %d series rows, want %d", name, len(got.series), len(want.series))
	}
	for i := range want.series {
		g, w := got.series[i], want.series[i]
		g.PlanMs, w.PlanMs = 0, 0
		if g != w {
			t.Errorf("%s: series[%d]:\n got %+v\nwant %+v", name, i, g, w)
		}
	}

	// Control-round snapshots for the count stage, entry-wise.
	if len(got.snaps) != len(want.snaps) {
		t.Fatalf("%s: %d count-stage rounds, want %d", name, len(got.snaps), len(want.snaps))
	}
	for i := range want.snaps {
		g, w := got.snaps[i], want.snaps[i]
		if g.Interval != w.Interval || g.ND != w.ND {
			t.Fatalf("%s: round %d header: got (%d,%d), want (%d,%d)", name, i, g.Interval, g.ND, w.Interval, w.ND)
		}
		gk, wk := sortedKeys(g), sortedKeys(w)
		if len(gk) != len(wk) {
			t.Fatalf("%s: round %d: %d keys, want %d", name, i, len(gk), len(wk))
		}
		for j := range wk {
			if gk[j] != wk[j] {
				t.Fatalf("%s: round %d key %d: got %+v, want %+v", name, i, j, gk[j], wk[j])
			}
		}
	}

	if got.rebalances != want.rebalances {
		t.Errorf("%s: %d rebalances, want %d", name, got.rebalances, want.rebalances)
	}

	// Final routing table and per-instance stores.
	if len(got.table) != len(want.table) {
		t.Errorf("%s: routing table has %d entries, want %d", name, len(got.table), len(want.table))
	}
	for k, d := range want.table {
		if gd, ok := got.table[k]; !ok || gd != d {
			t.Errorf("%s: table[%v] = %v (present %v), want %v", name, k, gd, ok, d)
			break
		}
	}
	if len(got.stores) != len(want.stores) {
		t.Fatalf("%s: %d store instances, want %d", name, len(got.stores), len(want.stores))
	}
	for d := range want.stores {
		if got.stores[d] != want.stores[d] {
			t.Errorf("%s: store[%d] = %+v, want %+v", name, d, got.stores[d], want.stores[d])
		}
	}
}

// assertNonVacuous proves the run exercised what the PR claims: live
// rebalances and live resizes actually happened over the sockets.
func assertNonVacuous(t *testing.T, r *distributedRun) {
	t.Helper()
	if r.rebalances == 0 {
		t.Error("no rebalances applied: equivalence is vacuous")
	}
	var outs, ins int
	for _, m := range r.series {
		outs += m.ScaleOuts
		ins += m.ScaleIns
	}
	if outs != 1 || ins != 1 {
		t.Errorf("scripted elasticity: %d scale-outs, %d scale-ins, want 1 and 1", outs, ins)
	}
	var emitted int64
	for _, m := range r.series {
		emitted += m.Emitted
	}
	if len(r.processed) > 0 {
		// Zero loss: stage 0 saw every emitted post, stage 1 every word.
		if r.processed[0] != emitted {
			t.Errorf("parse stage processed %d tuples, emitted %d", r.processed[0], emitted)
		}
		if r.processed[1] != emitted*wordsPerPost {
			t.Errorf("count stage processed %d tuples, want %d", r.processed[1], emitted*wordsPerPost)
		}
		if r.processed[2] == 0 {
			t.Error("topk stage processed no tuples")
		}
	}
}

// TestDistributedMatchesLocal is the tentpole pin: the socialpipe
// topology across 3 worker processes (real sockets, serialized state,
// live rebalance + scale-out + scale-in mid-run) is bit-identical to
// the single-process engine — series, control-round snapshots, routing
// tables, per-instance stores — with zero tuple loss.
func TestDistributedMatchesLocal(t *testing.T) {
	local := runLocal(t)
	assertNonVacuous(t, local)
	for _, network := range []string{"unix", "tcp"} {
		t.Run(network, func(t *testing.T) {
			dist := runDistributed(t, network, 3)
			assertNonVacuous(t, dist)
			compareRuns(t, network, dist, local)
		})
	}
}

// TestCrossCodecEquivalence is the cross-codec pin: the same run over
// the binary wire (coalescing off, 4 KB, and the default budget) and
// over the framed gob oracle produces bit-identical series, snapshots,
// routing tables and stores — all equal to the in-process reference.
// Each run asserts which codec the connections actually negotiated, so
// the matrix cannot silently collapse onto one wire.
func TestCrossCodecEquivalence(t *testing.T) {
	local := runLocal(t)
	assertNonVacuous(t, local)

	t.Run("gob-oracle", func(t *testing.T) {
		SetWireGob(true)
		t.Cleanup(func() { SetWireGob(false) })
		dist := runDistributed(t, "unix", 2)
		if dist.binaryWire {
			t.Fatal("gob oracle run negotiated the binary wire")
		}
		assertNonVacuous(t, dist)
		compareRuns(t, "gob-oracle", dist, local)
	})

	for _, co := range []struct {
		name     string
		coalesce int
	}{{"coalesce-off", -1}, {"coalesce-4k", 4 << 10}} {
		t.Run(co.name, func(t *testing.T) {
			dist := runDistributed(t, "unix", 2, func(s *Spec) { s.Coalesce = co.coalesce })
			if !dist.binaryWire {
				t.Fatal("binary wire not negotiated")
			}
			assertNonVacuous(t, dist)
			compareRuns(t, co.name, dist, local)
		})
	}
}

// TestDistributedWorkerCounts pins the placement invariance: any
// worker count yields the same run — stages just co-locate.
func TestDistributedWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	local := runLocal(t)
	for _, n := range []int{1, 2} {
		t.Run(fmt.Sprintf("workers=%d", n), func(t *testing.T) {
			dist := runDistributed(t, "unix", n)
			compareRuns(t, fmt.Sprintf("n=%d", n), dist, local)
		})
	}
}

// TestSpecResolveMatchesTopologyDefaults guards the dual derivation:
// the Spec's resolved defaults must equal what topology.Build would
// apply, or the coordinator's model drifts from the reference.
func TestSpecResolveMatchesTopologyDefaults(t *testing.T) {
	s := &Spec{
		Name:   "t",
		SpoutB: func(dst []tuple.Tuple) int { return 0 },
		Stages: []StageSpec{{Name: "a", Op: "social/parse"}},
	}
	target := s.resolve()
	if target != 0 {
		t.Fatalf("target = %d", target)
	}
	st := s.Stages[0]
	if st.Instances != topology.DefInstances || st.Window != topology.DefWindow ||
		st.Theta != topology.DefTheta || st.TableMax != topology.DefTableMax {
		t.Fatalf("resolved stage = %+v, want topology defaults", st)
	}
	if s.Budget != topology.DefBudget {
		t.Fatalf("budget = %d, want %d", s.Budget, topology.DefBudget)
	}
	def := engine.DefaultConfig()
	if s.MaxPendingFactor != def.MaxPendingFactor || s.MigrationFactor != def.MigrationFactor {
		t.Fatalf("factors = %v/%v, want engine defaults", s.MaxPendingFactor, s.MigrationFactor)
	}
	if st.Capacity != s.Budget/int64(st.Instances) {
		t.Fatalf("capacity = %d", st.Capacity)
	}
}
