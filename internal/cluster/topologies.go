package cluster

import (
	"repro/internal/engine"
	"repro/internal/state"
	"repro/internal/topology"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// The built-in distributed topologies. Operators register under
// namespaced names so worker processes — which only ever see the name
// in a StageAssign — resolve the identical factories the coordinator's
// local reference run uses.

// wordsPerPost is the social parse fan-out: each post carries this many
// topic words drawn from the social feed.
const wordsPerPost = 4

// parseOp splits one post into its words — the key-oblivious stage
// (any instance can parse any post, hence shuffle routing).
type parseOp struct{}

func (parseOp) Process(ctx *engine.TaskCtx, t tuple.Tuple) {
	words := t.Value.([]tuple.Key)
	for _, w := range words {
		ctx.Emit(tuple.New(w, nil))
	}
}

// countOp counts words with windowed state and publishes each
// interval's counts downstream as (word, delta) tuples. Deltas — not
// running totals — keep the downstream accumulation exact across
// rebalance migrations: a key lives on exactly one instance per
// interval, so per-interval deltas sum to the true total no matter how
// often the key moves.
type countOp struct {
	interval map[tuple.Key]int64
}

func (c *countOp) Process(ctx *engine.TaskCtx, t tuple.Tuple) {
	c.interval[t.Key]++
	ctx.Store.Add(t.Key, state.Entry{Value: int64(1), Size: t.StateSize})
}

func (c *countOp) FlushInterval(ctx *engine.TaskCtx) {
	for k, n := range c.interval {
		out := tuple.New(k, n)
		out.Stream = "counts"
		ctx.Emit(out)
		delete(c.interval, k)
	}
}

// topkOp accumulates the published deltas into authoritative running
// totals. In the distributed runtime the leaderboard stays on the
// hosting worker; the equivalence pin is the stage's arrival accounting
// and state snapshots, which the coordinator harvests.
type topkOp struct {
	totals map[tuple.Key]int64
}

func (o *topkOp) Process(ctx *engine.TaskCtx, t tuple.Tuple) {
	n, _ := t.Value.(int64)
	o.totals[t.Key] += n
}

func init() {
	RegisterOp("social/parse", func(int) engine.Operator { return parseOp{} })
	RegisterOp("social/count", func(int) engine.Operator {
		return &countOp{interval: make(map[tuple.Key]int64)}
	})
	RegisterOp("social/topk", func(int) engine.Operator {
		return &topkOp{totals: make(map[tuple.Key]int64)}
	})

	RegisterTopology("socialpipe", func() *Spec {
		gen := workload.NewSocial(30000, 0.85, 0.002, 97)
		var postSeq uint64
		spoutB := func(dst []tuple.Tuple) int {
			for i := range dst {
				words := make([]tuple.Key, wordsPerPost)
				for w := range words {
					words[w] = gen.Next().Key
				}
				postSeq++
				post := tuple.New(tuple.Key(postSeq), words)
				post.Cost = wordsPerPost
				dst[i] = post
			}
			return len(dst)
		}
		return &Spec{
			Name:    "socialpipe",
			Budget:  2500, // 2500 posts → 10000 words per interval
			SpoutB:  spoutB,
			Advance: func(int64) { gen.Advance() },
			Stages: []StageSpec{
				{Name: "parse", Op: "social/parse", Instances: 4,
					Algorithm: topology.AlgIdeal, Capacity: 4000},
				{Name: "count", Op: "social/count", Instances: 10,
					Algorithm: topology.AlgMixed, Theta: 0.02, MinKeys: 64,
					Capacity: 1200, Target: true},
				{Name: "topk", Op: "social/topk", Instances: 2,
					Capacity: 20000},
			},
		}
	})
}
