package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/engine"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// BenchmarkClusterWire drives the 2-stage forwarding topology on two
// in-process workers over a unix socket, once per wire configuration —
// the in-package twin of benchrunner's -cluster sweep, here so the
// socket data plane can be CPU/heap-profiled with the standard test
// flags.
func BenchmarkClusterWire(b *testing.B) {
	registerWireBenchOps()
	for _, cfg := range []struct {
		name     string
		gob      bool
		coalesce int
	}{
		{"gob", true, -1},
		{"binary-off", false, -1},
		{"binary-32k", false, 32 << 10},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			SetWireGob(cfg.gob)
			defer SetWireGob(false)
			b.ReportAllocs()
			runWireBench(b, cfg.coalesce)
		})
	}
}

var wireBenchOpsDone bool

func registerWireBenchOps() {
	if wireBenchOpsDone {
		return
	}
	wireBenchOpsDone = true
	RegisterOp("wirebench/fwd", func(int) engine.Operator {
		return engine.OperatorFunc(func(ctx *engine.TaskCtx, t tuple.Tuple) {
			ctx.Emit(tuple.New(t.Key, nil))
		})
	})
	RegisterOp("wirebench/sink", func(int) engine.Operator { return engine.Discard })
}

func runWireBench(b *testing.B, coalesce int) {
	const msBudget = 2000
	gen := workload.NewZipfStream(10000, 0.85, 0, msBudget, 17)
	spec := &Spec{
		Name:     "wirebench",
		Budget:   msBudget,
		SpoutB:   gen.NextBatch,
		Coalesce: coalesce,
		Stages: []StageSpec{
			{Name: "ms-map", Op: "wirebench/fwd", Instances: 8},
			{Name: "ms-sink", Op: "wirebench/sink", Instances: 8},
		},
	}
	dir := b.TempDir()
	c, err := NewCoordinator(spec, "unix", filepath.Join(dir, "coord.sock"))
	if err != nil {
		b.Fatal(err)
	}
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		w, err := NewWorker("unix", c.Addr(), filepath.Join(dir, fmt.Sprintf("w%d.sock", i)), fmt.Sprintf("w%d", i))
		if err != nil {
			b.Fatal(err)
		}
		go func() { errs <- w.Run() }()
	}
	if err := c.Deploy(2); err != nil {
		b.Fatal(err)
	}
	if err := c.Run(2); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	err = c.Run(b.N)
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if _, err := c.Shutdown(); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			b.Fatal(err)
		}
	}
	_ = os.RemoveAll(dir)
}
