package cluster

import (
	"fmt"
	"sync"

	"repro/internal/protocol"
	"repro/internal/tuple"
)

// BatchConn is the data plane: an engine.BatchSink streaming tuple
// batches over a cluster connection into a remote stage. One TupleBatch
// message carries exactly one FeedBatch call — the receiver feeds each
// message as a single batch, so chunk boundaries (and with them
// round-robin shuffle routing and arrival accounting) are preserved
// bit-for-bit across the process boundary.
//
// FeedBatch tolerates concurrent callers (upstream task goroutines and
// spout feeders flush into the same edge), serialized by an internal
// mutex. Errors latch: the first send failure poisons the connection
// and every later call becomes a no-op, surfaced at the next Flush —
// the data plane has no mid-interval recovery story, only clean
// teardown at the barrier.
type BatchConn struct {
	c   *Conn
	mu  sync.Mutex
	seq uint64
	err error
}

// NewBatchConn wraps an established data connection.
func NewBatchConn(c *Conn) *BatchConn { return &BatchConn{c: c} }

// FeedBatch sends one batch downstream. The tuples are fully encoded
// before return, so the caller's slice is immediately reusable —
// the same contract engine.Stage.FeedBatch gives its callers.
func (b *BatchConn) FeedBatch(ts []tuple.Tuple) {
	if len(ts) == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err != nil {
		return
	}
	b.err = b.c.Send(&protocol.Message{Batch: &protocol.TupleBatch{Tuples: ts}})
}

// Flush is the delivery barrier: it sends a sequenced Flush message
// and blocks until the receiver echoes it. The receiver enqueues
// batches in receipt order before answering, and the transport is
// FIFO, so a returned Flush proves every prior FeedBatch on this
// connection has been fed into the remote stage's task queues — the
// moment the in-process cascading close reaches between stages.
func (b *BatchConn) Flush() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err != nil {
		return b.err
	}
	b.seq++
	if err := b.c.Send(&protocol.Message{FlushReq: &protocol.Flush{Seq: b.seq}}); err != nil {
		b.err = err
		return err
	}
	m, err := b.c.Recv()
	if err != nil {
		b.err = err
		return err
	}
	if m.FlushReq == nil || m.FlushReq.Seq != b.seq {
		b.err = fmt.Errorf("cluster: flush barrier: expected echo of seq %d, got %s", b.seq, m.Kind())
		return b.err
	}
	return nil
}

// Err returns the latched transport error, if any.
func (b *BatchConn) Err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// Stat returns the underlying connection's byte counters.
func (b *BatchConn) Stat() protocol.ConnStat { return b.c.Stat() }

// Close closes the underlying connection.
func (b *BatchConn) Close() error { return b.c.Close() }
