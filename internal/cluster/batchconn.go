package cluster

import (
	"fmt"
	"sync"

	"repro/internal/protocol"
	"repro/internal/tuple"
)

// DefCoalesce is the default frame-coalescing byte budget: FeedBatch
// chunks accumulate into one wire frame until the frame would exceed
// this many bytes, then the frame ships. 32 KiB keeps frames well under
// typical socket buffer sizes while amortizing the per-frame syscall
// across dozens of steady-state chunks.
const DefCoalesce = 32 << 10

// chunkPool recycles per-call encode scratch so concurrent FeedBatch
// callers serialize only the socket write, never the encoding.
var chunkPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// BatchConn is the data plane: an engine.BatchSink streaming tuple
// batches over a cluster connection into a remote stage. Chunk
// boundaries — one per FeedBatch call — are preserved on the wire, so
// the receiver replays the exact same FeedBatch sequence and
// round-robin shuffle routing plus arrival accounting stay bit-for-bit
// identical across the process boundary.
//
// On a binary-wire connection each chunk is encoded OUTSIDE the mutex
// into pooled scratch (protocol.AppendBatchChunk touches no shared
// state), then appended under the lock to a pending coalesced frame:
// multiple chunks aggregate into one wire frame up to the coalescing
// byte budget, force-flushed at the interval barrier by Flush. Only the
// append-and-maybe-write is serialized, so upstream task goroutines
// fanning into one edge no longer convoy behind each other's gob
// reflection walk. Sub-batch length prefixes inside the frame keep the
// chunk sequence intact.
//
// On a gob connection (the selectable equivalence oracle, and the
// fallback for old peers) the PR 9 behavior is kept verbatim: one
// TupleBatch message per FeedBatch call, encoded under the mutex — the
// gob encoder is stateful (it streams type descriptors once), so its
// encode cannot leave the lock.
//
// Errors latch: the first failure poisons the connection and every
// later call becomes a no-op, surfaced at the next Flush — the data
// plane has no mid-interval recovery story, only clean teardown at the
// barrier.
type BatchConn struct {
	c       *Conn
	mu      sync.Mutex
	seq     uint64
	err     error
	budget  int    // coalescing byte budget; 0 = ship every chunk immediately
	pending []byte // coalesced binary frame under construction
	nsub    int    // chunks in pending
}

// NewBatchConn wraps an established data connection. coalesce is the
// coalescing byte budget: 0 picks DefCoalesce, negative disables
// coalescing (every FeedBatch ships its own frame, the PR 9 wire
// cadence). The budget only applies on binary-wire connections; the gob
// oracle always ships per chunk.
func NewBatchConn(c *Conn, coalesce int) *BatchConn {
	switch {
	case coalesce == 0:
		coalesce = DefCoalesce
	case coalesce < 0:
		coalesce = 0
	}
	return &BatchConn{c: c, budget: coalesce}
}

// FeedBatch sends one batch downstream. The tuples are fully encoded
// before return, so the caller's slice is immediately reusable — the
// same contract engine.Stage.FeedBatch gives its callers. Tolerates
// concurrent callers (upstream task goroutines and spout feeders flush
// into the same edge).
func (b *BatchConn) FeedBatch(ts []tuple.Tuple) {
	if len(ts) == 0 {
		return
	}
	if !b.c.Binary() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if b.err != nil {
			return
		}
		b.err = b.c.Send(&protocol.Message{Batch: &protocol.TupleBatch{Tuples: ts}})
		return
	}
	sp := chunkPool.Get().(*[]byte)
	chunk, encErr := protocol.AppendBatchChunk((*sp)[:0], ts)
	if encErr == nil {
		*sp = chunk[:0]
	}
	b.mu.Lock()
	if b.err == nil {
		if encErr != nil {
			b.err = encErr
		} else {
			if b.nsub == 0 {
				b.pending = protocol.AppendBatchHeader(b.pending[:0])
			}
			b.pending = append(b.pending, chunk...)
			b.nsub++
			if b.budget == 0 || len(b.pending) >= b.budget {
				b.flushPendingLocked()
			}
		}
	}
	b.mu.Unlock()
	if encErr == nil {
		chunkPool.Put(sp)
	}
}

// flushPendingLocked seals and ships the coalesced frame under
// construction. Caller holds mu.
func (b *BatchConn) flushPendingLocked() {
	if b.nsub == 0 || b.err != nil {
		return
	}
	protocol.PatchBatchHeader(b.pending, b.nsub)
	if err := b.c.SendFrame(b.pending); err != nil {
		b.err = err
	}
	b.pending = b.pending[:0]
	b.nsub = 0
}

// Flush is the delivery barrier: it force-ships any pending coalesced
// frame, sends a sequenced Flush message, and blocks until the receiver
// echoes it. The receiver enqueues batches in receipt order before
// answering, and the transport is FIFO, so a returned Flush proves
// every prior FeedBatch on this connection has been fed into the remote
// stage's task queues — the moment the in-process cascading close
// reaches between stages.
func (b *BatchConn) Flush() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.flushPendingLocked()
	if b.err != nil {
		return b.err
	}
	b.seq++
	if err := b.c.Send(&protocol.Message{FlushReq: &protocol.Flush{Seq: b.seq}}); err != nil {
		b.err = err
		return err
	}
	m, err := b.c.Recv()
	if err != nil {
		b.err = err
		return err
	}
	if m.FlushReq == nil || m.FlushReq.Seq != b.seq {
		b.err = fmt.Errorf("cluster: flush barrier: expected echo of seq %d, got %s", b.seq, m.Kind())
		return b.err
	}
	return nil
}

// Err returns the latched transport error, if any.
func (b *BatchConn) Err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// Stat returns the underlying connection's byte counters.
func (b *BatchConn) Stat() protocol.ConnStat { return b.c.Stat() }

// Close closes the underlying connection.
func (b *BatchConn) Close() error { return b.c.Close() }
