package cluster

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/balance"
	"repro/internal/control"
	"repro/internal/controller"
	"repro/internal/engine"
	"repro/internal/topology"
)

// StageSpec declares one pipeline stage of a distributed topology —
// the subset of the topology builder's vocabulary the cluster runtime
// supports, in serializable form. The operator is named, not held:
// worker processes resolve it from the shared registry (RegisterOp),
// so the same binary-side factory builds identical instances on
// whichever host the stage lands on.
type StageSpec struct {
	Name      string
	Op        string
	Instances int
	Window    int
	Algorithm topology.Algorithm
	Capacity  int64
	// Controller parameters (coordinator-side only: policies never
	// leave the coordinator).
	Theta    float64
	MinKeys  int
	TableMax int
	Target   bool
	// Policies are additional coordinator-side control policies, run
	// after the algorithm-derived rebalance controller each round —
	// the Spec-level form of topology.WithPolicy (long-term scalers,
	// scripted elasticity in tests). Never serialized: policies live
	// with the coordinator only.
	Policies []control.Policy
}

// Spec declares a distributed topology: the stages in pipeline order
// plus the spout, which lives with the coordinator (emission is the
// coordinator's job, exactly as the driver's in a single-process run).
type Spec struct {
	Name   string
	Budget int64
	// SpoutB draws the input stream; Advance, when set, shifts the
	// generator after each interval (engine.AdvanceWorkload).
	SpoutB  engine.SpoutBatch
	Advance func(interval int64)
	Stages  []StageSpec
	// MaxPendingFactor and MigrationFactor parameterize the coordinator's
	// throttle and queueing model; zero values take engine.DefaultConfig.
	MaxPendingFactor float64
	MigrationFactor  float64
	// Coalesce is the data-plane frame-coalescing byte budget, applied
	// to every edge (spout→s0 and each inter-stage connection): 0 takes
	// DefCoalesce, negative disables coalescing (one wire frame per
	// FeedBatch chunk — the PR 9 cadence). Only effective on
	// binary-wire connections; the gob oracle always ships per chunk.
	Coalesce int
}

// resolve normalizes the spec in place to the same defaults the
// topology builder applies, so the coordinator's model, the workers'
// stages and BuildLocal's reference system all derive identical
// numbers. Returns the target stage index.
func (s *Spec) resolve() int {
	if s.Budget == 0 {
		s.Budget = topology.DefBudget
	}
	def := engine.DefaultConfig()
	if s.MaxPendingFactor == 0 {
		s.MaxPendingFactor = def.MaxPendingFactor
	}
	if s.MigrationFactor == 0 {
		s.MigrationFactor = def.MigrationFactor
	}
	target := -1
	for i := range s.Stages {
		st := &s.Stages[i]
		if st.Instances == 0 {
			st.Instances = topology.DefInstances
		}
		if st.Window == 0 {
			st.Window = topology.DefWindow
		}
		if st.Theta == 0 {
			st.Theta = topology.DefTheta
		}
		if st.TableMax == 0 {
			st.TableMax = topology.DefTableMax
		}
		if st.Capacity == 0 {
			st.Capacity = s.Budget / int64(st.Instances)
			if st.Capacity < 1 {
				st.Capacity = 1
			}
		}
		if st.Target && target < 0 {
			target = i
		}
	}
	if target < 0 {
		target = 0
	}
	return target
}

// Policies builds stage si's coordinator-side control policies: the
// algorithm-derived rebalance controller, when the algorithm has a
// planner. The returned controller (nil for planner-less stages) is
// also handed back so callers can read Rebalances() after the run.
func (s *Spec) Policies(si int) ([]control.Policy, *controller.Controller) {
	st := &s.Stages[si]
	var policies []control.Policy
	var ctl *controller.Controller
	if st.Algorithm != "" {
		if p := topology.PlannerFor(st.Algorithm, 0, 0); p != nil {
			tm := st.TableMax
			if tm < 0 {
				tm = 0 // balance.Config treats ≤0 as unbounded
			}
			ctl = controller.New(p, balance.Config{ThetaMax: st.Theta, TableMax: tm, Beta: topology.DefBeta})
			ctl.MinKeys = st.MinKeys
			policies = append(policies, ctl)
		}
	}
	policies = append(policies, st.Policies...)
	return policies, ctl
}

// BuildLocal assembles the spec as a single-process topology.System —
// the pinned reference the distributed run must match bit for bit.
// The spec is resolved first, so both paths see identical defaults.
func (s *Spec) BuildLocal() *topology.System {
	s.resolve()
	b := topology.New(
		topology.SpoutBatch(s.SpoutB),
		topology.Budget(s.Budget),
		topology.MaxPending(s.MaxPendingFactor),
		topology.MigrationFactor(s.MigrationFactor),
		topology.AdvanceEach(s.Advance),
	)
	for _, st := range s.Stages {
		opts := []topology.StageOption{
			topology.Instances(st.Instances),
			topology.Window(st.Window),
			topology.Capacity(st.Capacity),
			topology.Theta(st.Theta),
			topology.MinKeys(st.MinKeys),
			topology.TableMax(st.TableMax),
		}
		if st.Algorithm != "" {
			opts = append(opts, topology.WithAlgorithm(st.Algorithm))
		}
		if st.Target {
			opts = append(opts, topology.Target())
		}
		for _, p := range st.Policies {
			opts = append(opts, topology.WithPolicy(p))
		}
		b = b.Stage(st.Name, MustOp(st.Op), opts...)
	}
	return b.Build()
}

// The operator and topology registries: both binaries (cmd/worker,
// cmd/coordinator) import the same registrations, so a name resolves
// to the identical factory on every host.
var (
	regMu      sync.RWMutex
	ops        = map[string]func(id int) engine.Operator{}
	topologies = map[string]func() *Spec{}
)

// RegisterOp registers an operator factory under a globally unique
// name. Typically called from init in the package declaring the
// topology; re-registering a name panics.
func RegisterOp(name string, f func(id int) engine.Operator) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := ops[name]; dup {
		panic(fmt.Sprintf("cluster: operator %q registered twice", name))
	}
	ops[name] = f
}

// MustOp resolves a registered operator factory, panicking on an
// unknown name (a misdeclared topology is a programming error).
func MustOp(name string) func(id int) engine.Operator {
	regMu.RLock()
	defer regMu.RUnlock()
	f, ok := ops[name]
	if !ok {
		panic(fmt.Sprintf("cluster: unknown operator %q", name))
	}
	return f
}

// RegisterTopology registers a named topology constructor. The
// constructor runs once per lookup and must return a fresh Spec —
// generator state must not leak between runs.
func RegisterTopology(name string, f func() *Spec) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := topologies[name]; dup {
		panic(fmt.Sprintf("cluster: topology %q registered twice", name))
	}
	topologies[name] = f
}

// LookupTopology constructs a fresh Spec for a registered topology.
func LookupTopology(name string) (*Spec, error) {
	regMu.RLock()
	f, ok := topologies[name]
	regMu.RUnlock()
	if !ok {
		var known []string
		regMu.RLock()
		for n := range topologies {
			known = append(known, n)
		}
		regMu.RUnlock()
		sort.Strings(known)
		return nil, fmt.Errorf("cluster: unknown topology %q (registered: %v)", name, known)
	}
	return f(), nil
}
