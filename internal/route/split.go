package route

import (
	"sort"
	"sync/atomic"

	"repro/internal/tuple"
)

// Split is one hot key's replica set: the key fans out round-robin
// across Replicas on the feed path while every observable (arrival
// accounting, statistics, snapshots) stays charged to Home, the
// destination the assignment function F(k) resolves to. Home is always
// a member of Replicas, so the unsplit routing decision is one of the
// split ones — folding the replicas' commutative deltas back into Home
// at interval close reconstructs the unsplit run exactly.
type Split struct {
	Key      tuple.Key
	Home     int
	Replicas []int
	// ctr is the round-robin cursor. It is the only mutable word on the
	// split-routing path and is deliberately shared across assignment
	// generations (the cursor is a scheduling hint, not an observable).
	ctr atomic.Uint64
}

// NewSplit builds a split for k fanning out over fan consecutive
// instances starting at home (mod nd). fan is clamped to [2, nd].
func NewSplit(k tuple.Key, home, fan, nd int) *Split {
	if fan < 2 {
		fan = 2
	}
	if fan > nd {
		fan = nd
	}
	reps := make([]int, fan)
	for i := range reps {
		reps[i] = (home + i) % nd
	}
	return &Split{Key: k, Home: home, Replicas: reps}
}

// Pick returns the next replica in round-robin order. It is wait-free
// (one atomic add) and safe for concurrent feeders.
func (s *Split) Pick() int {
	i := s.ctr.Add(1) - 1
	return s.Replicas[i%uint64(len(s.Replicas))]
}

// Fan returns the replica count.
func (s *Split) Fan() int { return len(s.Replicas) }

// SplitTable is the set of currently split keys. Like Table it is an
// immutable snapshot once published through an Assignment; transitions
// install a fresh table via the same atomic pointer swap that
// publishes routing generations.
type SplitTable struct {
	m map[tuple.Key]*Split
}

// NewSplitTable returns an empty split table.
func NewSplitTable() *SplitTable {
	return &SplitTable{m: make(map[tuple.Key]*Split)}
}

// Put inserts or replaces the split for s.Key.
func (t *SplitTable) Put(s *Split) { t.m[s.Key] = s }

// Lookup returns the split for k and whether one exists.
func (t *SplitTable) Lookup(k tuple.Key) (*Split, bool) {
	s, ok := t.m[k]
	return s, ok
}

// Len returns the number of split keys.
func (t *SplitTable) Len() int { return len(t.m) }

// Keys returns the split keys in ascending order.
func (t *SplitTable) Keys() []tuple.Key {
	ks := make([]tuple.Key, 0, len(t.m))
	for k := range t.m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// Each calls fn for every split in unspecified order.
func (t *SplitTable) Each(fn func(*Split)) {
	for _, s := range t.m {
		fn(s)
	}
}
