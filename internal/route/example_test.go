package route_test

import (
	"fmt"

	"repro/internal/route"
)

// ExampleAssignment demonstrates the paper's Eq. 1: explicit entries
// override the hash, everything else falls through.
func ExampleAssignment() {
	table := route.NewTable()
	table.Put(5, 3) // key 5 explicitly routed to instance 3
	f := route.NewAssignment(table, route.ModHasher(4))

	fmt.Println("F(5) =", f.Dest(5)) // routed
	fmt.Println("F(6) =", f.Dest(6)) // hashed: 6 mod 4
	fmt.Println("h(5) =", f.HashDest(5))
	// Output:
	// F(5) = 3
	// F(6) = 2
	// h(5) = 1
}
