package route

import (
	"testing"
	"testing/quick"

	"repro/internal/hashring"
	"repro/internal/tuple"
)

func TestMixedRoutingSemantics(t *testing.T) {
	// Eq. 1: F(k) = A[k] when present, else h(k).
	tab := NewTable()
	tab.Put(5, 3)
	a := NewAssignment(tab, ModHasher(4))
	if got := a.Dest(5); got != 3 {
		t.Fatalf("routed key dest = %d, want 3", got)
	}
	if got := a.Dest(6); got != 2 { // 6 mod 4
		t.Fatalf("hashed key dest = %d, want 2", got)
	}
	if got := a.HashDest(5); got != 1 { // 5 mod 4, table ignored
		t.Fatalf("HashDest = %d, want 1", got)
	}
}

func TestAssignmentTotalFunction(t *testing.T) {
	// Property: F is total and in-range for any key.
	a := NewAssignment(NewTable(), hashring.New(9, 0))
	f := func(k uint64) bool {
		d := a.Dest(tuple.Key(k))
		return d >= 0 && d < 9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestNilTableMeansPureHashing(t *testing.T) {
	a := NewAssignment(nil, ModHasher(3))
	for k := tuple.Key(0); k < 30; k++ {
		if a.Dest(k) != a.HashDest(k) {
			t.Fatal("nil-table assignment deviated from hash")
		}
	}
	if a.Table().Len() != 0 {
		t.Fatal("nil table not empty")
	}
}

func TestTableOps(t *testing.T) {
	tab := NewTable()
	tab.Put(1, 0)
	tab.Put(2, 1)
	tab.Put(1, 2) // overwrite
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
	if d, ok := tab.Lookup(1); !ok || d != 2 {
		t.Fatalf("Lookup(1) = %d,%v, want 2,true", d, ok)
	}
	tab.Delete(1)
	if _, ok := tab.Lookup(1); ok {
		t.Fatal("Delete did not remove entry")
	}
	tab.Delete(99) // absent key: no-op
}

func TestTableKeysSorted(t *testing.T) {
	tab := NewTable()
	for _, k := range []tuple.Key{9, 3, 7, 1} {
		tab.Put(k, 0)
	}
	ks := tab.Keys()
	for i := 1; i < len(ks); i++ {
		if ks[i-1] >= ks[i] {
			t.Fatalf("Keys not ascending: %v", ks)
		}
	}
}

func TestTableCloneIsDeep(t *testing.T) {
	tab := NewTable()
	tab.Put(1, 1)
	c := tab.Clone()
	c.Put(2, 2)
	if tab.Len() != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestDelta(t *testing.T) {
	h := ModHasher(4)
	oldTab := NewTable()
	oldTab.Put(1, 3) // h(1)=1, routed to 3
	oldTab.Put(2, 3) // h(2)=2, routed to 3
	newTab := NewTable()
	newTab.Put(1, 3) // unchanged
	newTab.Put(8, 1) // h(8)=0, now routed to 1
	oldA, newA := NewAssignment(oldTab, h), NewAssignment(newTab, h)

	d := Delta(oldA, newA, nil)
	// key 2: old 3, new h(2)=2 → moved. key 8: old h=0, new 1 → moved.
	// key 1: 3 both → unmoved.
	want := []tuple.Key{2, 8}
	if len(d) != len(want) {
		t.Fatalf("Delta = %v, want %v", d, want)
	}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("Delta = %v, want %v", d, want)
		}
	}
}

func TestDeltaWithExtraKeys(t *testing.T) {
	// Extra keys outside both tables never differ when hashers match.
	h := ModHasher(4)
	oldA := NewAssignment(NewTable(), h)
	newA := NewAssignment(NewTable(), h)
	d := Delta(oldA, newA, []tuple.Key{10, 11, 12})
	if len(d) != 0 {
		t.Fatalf("Delta over identical assignments = %v, want empty", d)
	}
}

func TestDeltaAcrossHasherChange(t *testing.T) {
	// Scale-out: hashers differ; extra keys catch hash-induced moves.
	oldA := NewAssignment(NewTable(), ModHasher(2))
	newA := NewAssignment(NewTable(), ModHasher(3))
	d := Delta(oldA, newA, []tuple.Key{0, 1, 2, 3, 4, 5})
	// k mod 2 vs k mod 3 differ for 2 (0→2), 3 (1→0), 4 (0→1), 5 (1→2).
	want := map[tuple.Key]bool{2: true, 3: true, 4: true, 5: true}
	if len(d) != len(want) {
		t.Fatalf("Delta = %v, want keys 2,3,4,5", d)
	}
	for _, k := range d {
		if !want[k] {
			t.Fatalf("unexpected key %d in Delta %v", k, d)
		}
	}
}

func TestInstances(t *testing.T) {
	a := NewAssignment(NewTable(), ModHasher(7))
	if a.Instances() != 7 {
		t.Fatalf("Instances = %d, want 7", a.Instances())
	}
}

func TestDestBatchAndDestTuplesMatchDest(t *testing.T) {
	// Both batch forms must agree with per-key Dest, with and without
	// routing-table entries, over a real ring hasher.
	tab := NewTable()
	for k := tuple.Key(0); k < 50; k += 7 {
		tab.Put(k, int(k)%5)
	}
	for _, a := range []*Assignment{
		NewAssignment(tab, hashring.New(5, 0)),
		NewAssignment(NewTable(), hashring.New(5, 0)), // empty-table fast path
	} {
		const n = 300
		keys := make([]tuple.Key, n)
		ts := make([]tuple.Tuple, n)
		for i := range keys {
			keys[i] = tuple.Key(i * 13)
			ts[i] = tuple.New(keys[i], nil)
		}
		got := make([]int, n)
		a.DestBatch(keys, got)
		for i, k := range keys {
			if want := a.Dest(k); got[i] != want {
				t.Fatalf("DestBatch[%d] key %d = %d, want %d", i, k, got[i], want)
			}
		}
		a.DestTuples(ts, got)
		for i, k := range keys {
			if want := a.Dest(k); got[i] != want {
				t.Fatalf("DestTuples[%d] key %d = %d, want %d", i, k, got[i], want)
			}
		}
	}
	// Empty batches are no-ops.
	NewAssignment(nil, ModHasher(3)).DestBatch(nil, nil)
	NewAssignment(nil, ModHasher(3)).DestTuples(nil, nil)
}
