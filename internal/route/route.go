// Package route implements the paper's mixed routing strategy (§II,
// Fig. 3): a bounded explicit routing table A layered over a consistent
// hash h, yielding the assignment function
//
//	F(k) = d     if (k, d) ∈ A
//	F(k) = h(k)  otherwise.          (Eq. 1)
//
// The routing table only stores keys whose destination differs from the
// hash default, so its size NA is exactly the number of "exception"
// keys — the quantity the optimization problem (Eq. 3) bounds by Amax.
package route

import (
	"sort"

	"repro/internal/hashring"
	"repro/internal/tuple"
)

// Hasher is the hash half of the assignment function. *hashring.Ring
// satisfies it; tests substitute cheap modular hashers.
type Hasher interface {
	Hash(k tuple.Key) int
	Instances() int
}

// BatchHasher is an optional Hasher extension: HashBatch writes
// dsts[i] = Hash(keys[i]) for a whole batch in one call, letting the
// implementation keep its fast path in a tight loop instead of paying
// an interface dispatch per key. *hashring.Ring implements it, along
// with the tuple-slice form used by the engine's feeder (which saves a
// key-extraction pass over the batch).
type BatchHasher interface {
	HashBatch(keys []tuple.Key, dsts []int)
	HashTuples(ts []tuple.Tuple, dsts []int)
}

// ModHasher is a trivial Hasher (k mod n) used by unit tests and by
// planner micro-benchmarks where ring lookups would dominate.
type ModHasher int

// Hash returns k mod n.
func (m ModHasher) Hash(k tuple.Key) int { return int(uint64(k) % uint64(m)) }

// Instances returns the instance count.
func (m ModHasher) Instances() int { return int(m) }

var _ Hasher = (*hashring.Ring)(nil)

// Table is the explicit routing table A: the set of (key → destination)
// pairs overriding the hash. Table is not safe for concurrent mutation;
// the engine swaps immutable snapshots via Assignment.
type Table struct {
	m map[tuple.Key]int
}

// NewTable returns an empty routing table.
func NewTable() *Table {
	return &Table{m: make(map[tuple.Key]int)}
}

// Put inserts or updates the entry for k.
func (t *Table) Put(k tuple.Key, d int) { t.m[k] = d }

// Delete removes the entry for k if present.
func (t *Table) Delete(k tuple.Key) { delete(t.m, k) }

// Lookup returns the explicit destination for k and whether one exists.
func (t *Table) Lookup(k tuple.Key) (int, bool) {
	d, ok := t.m[k]
	return d, ok
}

// Len returns NA, the number of entries.
func (t *Table) Len() int { return len(t.m) }

// Keys returns the routed keys in ascending order (deterministic for
// tests and for the Mixed algorithm's cleaning phase tie-breaks).
func (t *Table) Keys() []tuple.Key {
	ks := make([]tuple.Key, 0, len(t.m))
	for k := range t.m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	c := &Table{m: make(map[tuple.Key]int, len(t.m))}
	for k, d := range t.m {
		c.m[k] = d
	}
	return c
}

// Each calls fn for every entry in unspecified order.
func (t *Table) Each(fn func(k tuple.Key, d int)) {
	for k, d := range t.m {
		fn(k, d)
	}
}

// Assignment is the full partition function F = (A, h). It is immutable
// after construction so upstream tasks can share it without locking;
// rebalancing installs a fresh Assignment.
type Assignment struct {
	table *Table
	hash  Hasher
	// empty caches table.Len() == 0 at construction so the common
	// hash-only assignment (the Storm baseline, and every pre-rebalance
	// interval) skips the map probe entirely on the per-tuple path. The
	// cache is sound because wrapped tables are immutable snapshots.
	empty bool
	// gen is the publication generation: a counter the publishing
	// router stamps before the atomic pointer swap that makes this
	// assignment live, so feeders can tag every routed batch with the
	// routing epoch it was resolved under — the wait-free migration
	// protocol's double-delivery guard. 0 until stamped.
	gen uint64
	// splits is the hot-key split set published alongside the table
	// through the same atomic pointer, so feeders resolve split routing
	// and ring routing from one wait-free load. nil means no key is
	// split — the cold path costs a single nil check per batch.
	splits *SplitTable
}

// NewAssignment pairs a routing table with a hasher. A nil table is
// treated as empty (pure hashing, the paper's Storm baseline).
func NewAssignment(table *Table, hash Hasher) *Assignment {
	if table == nil {
		table = NewTable()
	}
	return &Assignment{table: table, hash: hash, empty: len(table.m) == 0}
}

// Dest evaluates F(k).
func (a *Assignment) Dest(k tuple.Key) int {
	if a.empty {
		return a.hash.Hash(k)
	}
	if d, ok := a.table.m[k]; ok {
		return d
	}
	return a.hash.Hash(k)
}

// DestBatch evaluates F over a whole batch, writing dsts[i] =
// F(keys[i]). Hoisting the empty-table test and the interface
// indirection out of the per-tuple call chain is what keeps routing off
// the profile when the engine feeds tuples hundreds at a time.
func (a *Assignment) DestBatch(keys []tuple.Key, dsts []int) {
	if len(keys) == 0 {
		return
	}
	dsts = dsts[:len(keys)]
	if a.empty {
		if bh, ok := a.hash.(BatchHasher); ok {
			bh.HashBatch(keys, dsts)
			return
		}
		for i, k := range keys {
			dsts[i] = a.hash.Hash(k)
		}
		return
	}
	for i, k := range keys {
		if d, ok := a.table.m[k]; ok {
			dsts[i] = d
		} else {
			dsts[i] = a.hash.Hash(k)
		}
	}
}

// DestTuples is DestBatch straight off a tuple slice: dsts[i] =
// F(ts[i].Key) with no separate key-extraction pass — the form the
// engine's batched feeder uses.
func (a *Assignment) DestTuples(ts []tuple.Tuple, dsts []int) {
	if len(ts) == 0 {
		return
	}
	dsts = dsts[:len(ts)]
	if a.empty {
		if bh, ok := a.hash.(BatchHasher); ok {
			bh.HashTuples(ts, dsts)
			return
		}
		for i := range ts {
			dsts[i] = a.hash.Hash(ts[i].Key)
		}
		return
	}
	for i := range ts {
		if d, ok := a.table.m[ts[i].Key]; ok {
			dsts[i] = d
		} else {
			dsts[i] = a.hash.Hash(ts[i].Key)
		}
	}
}

// HashDest evaluates the hash half h(k) regardless of the table.
func (a *Assignment) HashDest(k tuple.Key) int { return a.hash.Hash(k) }

// Gen returns the publication generation stamped by the router that
// made this assignment live (0 for assignments never published).
func (a *Assignment) Gen() uint64 { return a.gen }

// Splits returns the hot-key split set carried by this assignment, or
// nil when no key is split.
func (a *Assignment) Splits() *SplitTable { return a.splits }

// SetSplits attaches a split set. Like StampGen it may only be called
// before the atomic store that publishes the assignment; an empty
// table is normalized to nil so the feed path's cold check stays a
// nil test.
func (a *Assignment) SetSplits(st *SplitTable) {
	if st != nil && st.Len() == 0 {
		st = nil
	}
	a.splits = st
}

// StampGen records the publication generation. It is called exactly
// once by the publishing router, before the atomic store that makes
// the assignment visible to feeders — never after publication, which
// would race with wait-free readers.
func (a *Assignment) StampGen(g uint64) { a.gen = g }

// Table returns the underlying routing table (callers must not mutate).
func (a *Assignment) Table() *Table { return a.table }

// Hasher returns the hash half of the assignment.
func (a *Assignment) Hasher() Hasher { return a.hash }

// Instances returns ND, the number of downstream instances.
func (a *Assignment) Instances() int { return a.hash.Instances() }

// Delta computes Δ(F, F′) over the given key universe: the set of keys
// whose destination differs between the two assignments (§II-A). Only
// keys present in either routing table can differ when both assignments
// share the same hasher, so the scan is restricted to that union rather
// than the full key domain.
func Delta(old, new *Assignment, extra []tuple.Key) []tuple.Key {
	seen := make(map[tuple.Key]struct{})
	var out []tuple.Key
	check := func(k tuple.Key) {
		if _, dup := seen[k]; dup {
			return
		}
		seen[k] = struct{}{}
		if old.Dest(k) != new.Dest(k) {
			out = append(out, k)
		}
	}
	old.table.Each(func(k tuple.Key, _ int) { check(k) })
	new.table.Each(func(k tuple.Key, _ int) { check(k) })
	for _, k := range extra {
		check(k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
