package core

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/tuple"
	"repro/internal/workload"
)

func TestDefaultsMatchTableII(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Instances != 10 || c.Window != 1 || c.ThetaMax != 0.08 ||
		c.TableMax != 3000 || c.Beta != 1.5 || c.Algorithm != AlgMixed {
		t.Fatalf("defaults = %+v", c)
	}
}

func TestNewPlannerCoversAllAlgorithms(t *testing.T) {
	withPlanner := []Algorithm{AlgMixed, AlgMixedBF, AlgMinTable, AlgMinMig, AlgLLFD, AlgSimple, AlgCompact, AlgReadj}
	for _, a := range withPlanner {
		if p := NewPlanner(Config{Algorithm: a}); p == nil {
			t.Fatalf("no planner for %s", a)
		}
	}
	for _, a := range []Algorithm{AlgStorm, AlgPKG, AlgIdeal} {
		if p := NewPlanner(Config{Algorithm: a}); p != nil {
			t.Fatalf("planner for migration-free scheme %s", a)
		}
	}
}

func TestNewPlannerPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown algorithm did not panic")
		}
	}()
	NewPlanner(Config{Algorithm: "bogus"})
}

func TestBalanceConfigUnboundedTable(t *testing.T) {
	bc := Config{TableMax: -1}.BalanceConfig()
	if bc.TableMax != 0 {
		t.Fatalf("negative TableMax mapped to %d, want 0 (unbounded)", bc.TableMax)
	}
}

func TestSystemQuickstartMixed(t *testing.T) {
	gen := workload.NewZipfStream(5000, 0.85, 1.0, 4000, 1)
	sys := NewSystem(Config{Instances: 4, Budget: 4000, MinKeys: 10},
		gen.Next, func(int) engine.Operator { return engine.StatefulCount })
	defer sys.Stop()
	sys.Engine.AdvanceWorkload = func(int64) {
		gen.Advance(sys.Stage.AssignmentRouter().Assignment())
	}
	sys.Run(10)
	if sys.Recorder().Len() != 10 {
		t.Fatalf("recorded %d intervals, want 10", sys.Recorder().Len())
	}
	if sys.Controller.Rebalances() == 0 {
		t.Fatal("Mixed system never rebalanced a z=0.85 stream")
	}
	if _, ok := sys.Dest(1); !ok {
		t.Fatal("mixed system must expose a partition function")
	}
}

func TestSystemStormBaselineNeverRebalances(t *testing.T) {
	gen := workload.NewZipfStream(5000, 0.85, 1.0, 4000, 1)
	sys := NewSystem(Config{Instances: 4, Budget: 4000, Algorithm: AlgStorm},
		gen.Next, func(int) engine.Operator { return engine.StatefulCount })
	defer sys.Stop()
	sys.Run(5)
	if sys.Controller != nil {
		t.Fatal("Storm baseline has a controller")
	}
	if sys.Stage.AssignmentRouter().Assignment().Table().Len() != 0 {
		t.Fatal("Storm baseline grew a routing table")
	}
}

func TestSystemPKGAndIdealRouters(t *testing.T) {
	for _, alg := range []Algorithm{AlgPKG, AlgIdeal} {
		gen := workload.NewZipfStream(1000, 0.85, 0, 1000, 2)
		sys := NewSystem(Config{Instances: 4, Budget: 1000, Algorithm: alg},
			gen.Next, func(int) engine.Operator { return engine.Discard })
		sys.Run(2)
		if _, ok := sys.Dest(tuple.Key(1)); ok {
			t.Fatalf("%s should not expose a key-deterministic destination", alg)
		}
		sys.Stop()
	}
}

func TestMixedBeatsStormOnSkewedThroughput(t *testing.T) {
	// The headline claim, end to end: on a skewed fluctuating stream,
	// Mixed sustains higher throughput and lower latency than hash-only.
	run := func(alg Algorithm) (float64, float64) {
		// Discriminating regime: strong skew (z = 1) over few keys, so
		// the hot keys' hash placement dominates instance load — the
		// imbalance mixed routing exists to fix (Fig. 7(b)).
		gen := workload.NewZipfStream(500, 1.0, 0.5, 8000, 3)
		sys := NewSystem(Config{Instances: 8, Budget: 8000, Algorithm: alg, MinKeys: 10},
			gen.Next, func(int) engine.Operator { return engine.StatefulCount })
		defer sys.Stop()
		if ar := sys.Stage.AssignmentRouter(); ar != nil {
			sys.Engine.AdvanceWorkload = func(int64) { gen.Advance(ar.Assignment()) }
		}
		sys.Run(20)
		var thr, lat float64
		for _, m := range sys.Recorder().Series[10:] {
			thr += m.Throughput
			lat += m.LatencyMs
		}
		return thr / 10, lat / 10
	}
	stormThr, stormLat := run(AlgStorm)
	mixedThr, mixedLat := run(AlgMixed)
	if mixedThr <= stormThr {
		t.Fatalf("Mixed throughput %.0f not above Storm %.0f", mixedThr, stormThr)
	}
	if mixedLat >= stormLat {
		t.Fatalf("Mixed latency %.1f not below Storm %.1f", mixedLat, stormLat)
	}
}

func TestNewAssignmentPureHash(t *testing.T) {
	a := NewAssignment(8)
	if a.Table().Len() != 0 || a.Instances() != 8 {
		t.Fatalf("NewAssignment = table %d, nd %d", a.Table().Len(), a.Instances())
	}
}

func TestNewSystemBatchMatchesPerTuple(t *testing.T) {
	// The batch-spout wiring must reproduce the per-tuple system's
	// metrics exactly when fed the same generator sequence.
	run := func(batch bool) []float64 {
		gen := workload.NewZipfStream(5000, 0.85, 0, 5000, 21)
		cfg := Config{Instances: 6, Algorithm: AlgMixed, Budget: 5000, MinKeys: 32}
		var sys *System
		if batch {
			sys = NewSystemBatch(cfg, gen.NextBatch, func(int) engine.Operator { return engine.StatefulCount })
		} else {
			sys = NewSystem(cfg, gen.Next, func(int) engine.Operator { return engine.StatefulCount })
		}
		defer sys.Stop()
		sys.Run(6)
		var out []float64
		for _, m := range sys.Recorder().Series {
			out = append(out, m.Throughput, m.LatencyMs, m.Skewness)
		}
		return out
	}
	a, b := run(false), run(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("metric %d diverges: per-tuple %v ≠ batch %v", i, a[i], b[i])
		}
	}
}
