package core

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/workload"
)

// TestPipelinePassThrough pins the Config.Pipeline plumbing: the knob
// reaches the engine, and on the single-stage topology NewSystem
// builds it is a strict no-op — the interval series is bit-identical
// to the store-and-forward run.
func TestPipelinePassThrough(t *testing.T) {
	run := func(pipeline bool) *System {
		gen := workload.NewZipfStream(2000, 0.9, 1.0, 8000, 53)
		sys := NewSystemBatch(Config{
			Instances: 6,
			Algorithm: AlgMixed,
			Budget:    8000,
			MinKeys:   64,
			Pipeline:  pipeline,
		}, gen.NextBatch, func(int) engine.Operator { return engine.StatefulCount })
		defer sys.Stop()
		ar := sys.Stage.AssignmentRouter()
		sys.Engine.AdvanceWorkload = func(int64) { gen.Advance(ar.Assignment()) }
		sys.Run(6)
		return sys
	}
	sf, pl := run(false), run(true)
	if !pl.Engine.Cfg.Pipeline {
		t.Fatal("Config.Pipeline did not reach the engine")
	}
	a, b := sf.Recorder().Series, pl.Recorder().Series
	for i := range a {
		ma, mb := a[i], b[i]
		ma.PlanMs, mb.PlanMs = 0, 0
		if ma != mb {
			t.Fatalf("single-stage interval %d diverges under Pipeline:\n%+v\n%+v", i, ma, mb)
		}
	}
}
