package core_test

import (
	"fmt"

	"repro/internal/core"
)

// ExampleNewPlanner shows planner selection by algorithm name.
func ExampleNewPlanner() {
	for _, alg := range []core.Algorithm{core.AlgMixed, core.AlgMinTable, core.AlgReadj} {
		fmt.Println(core.NewPlanner(core.Config{Algorithm: alg}).Name())
	}
	// Output:
	// Mixed
	// MinTable
	// Readj
}

// ExampleNewAssignment demonstrates the default partition function: an
// empty routing table over a consistent-hash ring, so every key routes
// to its hash home.
func ExampleNewAssignment() {
	a := core.NewAssignment(4)
	fmt.Println("instances:", a.Instances())
	fmt.Println("table size:", a.Table().Len())
	fmt.Println("F(k) == h(k):", a.Dest(12345) == a.HashDest(12345))
	// Output:
	// instances: 4
	// table size: 0
	// F(k) == h(k): true
}
