// Package core is the public façade of the reproduction: it wires the
// mixed-routing partitioner, the rebalance planners of §III, the
// controller protocol of §IV and the stream engine substrate into a
// small API mirroring how the paper's system would be embedded in a
// real DSPE topology.
//
// Quick start:
//
//	gen := workload.NewZipfStream(100000, 0.85, 1.0, 10000, 1)
//	sys := core.NewSystem(core.Config{Instances: 10, Algorithm: core.AlgMixed},
//	    gen.Next, func(id int) engine.Operator { return engine.StatefulCount })
//	defer sys.Stop()
//	sys.Run(50)
//	fmt.Println(sys.Recorder().MeanThroughput())
package core

import (
	"fmt"
	"time"

	"repro/internal/balance"
	"repro/internal/compact"
	"repro/internal/controller"
	"repro/internal/engine"
	"repro/internal/hashring"
	"repro/internal/metrics"
	"repro/internal/pkgpart"
	"repro/internal/readj"
	"repro/internal/route"
	"repro/internal/tuple"
)

// Algorithm names a rebalance strategy (or split-key baseline).
type Algorithm string

// The supported strategies. AlgStorm is hash-only with no rebalancing
// (the Storm key-grouping baseline); AlgIdeal is key-oblivious shuffle.
const (
	AlgMixed    Algorithm = "mixed"
	AlgMixedBF  Algorithm = "mixedbf"
	AlgMinTable Algorithm = "mintable"
	AlgMinMig   Algorithm = "minmig"
	AlgLLFD     Algorithm = "llfd"
	AlgSimple   Algorithm = "simple"
	AlgCompact  Algorithm = "compact"
	AlgReadj    Algorithm = "readj"
	AlgStorm    Algorithm = "storm"
	AlgPKG      Algorithm = "pkg"
	AlgIdeal    Algorithm = "ideal"
)

// PKGOverhead is the fraction of service capacity PKG's partial-result
// merging and acking consume (~12%), calibrated so Mixed's throughput
// advantage over PKG matches the ~10% the paper reports in Fig. 14(a).
const PKGOverhead = 1.125

// Config selects the system layout and optimization parameters;
// zero-valued fields take the paper's defaults (Tab. II).
type Config struct {
	// Instances is ND, the operator's parallelism. Default 10.
	Instances int
	// Window is the state window w in intervals. Default 1.
	Window int
	// ThetaMax is the imbalance tolerance. Default 0.08.
	ThetaMax float64
	// TableMax is Amax. Default 3000. Negative means unbounded.
	TableMax int
	// Beta is the γ exponent. Default 1.5.
	Beta float64
	// Algorithm selects the rebalance strategy. Default AlgMixed.
	Algorithm Algorithm
	// CompactR is the discretization degree for AlgCompact. Default 8.
	CompactR int64
	// ReadjSigma is Readj's hot-key threshold. Default 0.1.
	ReadjSigma float64
	// Budget is the spout's per-interval tuple budget. Default 10000.
	Budget int64
	// Capacity overrides the per-task service capacity (0 = saturation,
	// Budget/Instances).
	Capacity int64
	// Feeders is the spout parallelism: how many goroutines emit each
	// interval's tuples concurrently. 0 or 1 keeps the serial emission
	// path (the default, bit-identical to the single-feeder engine);
	// N > 1 splits the interval budget across N feeders drawing
	// disjoint shares of the spout sequence, so the emitted multiset
	// matches the serial run while routing, partitioning and channel
	// sends parallelize. For key-partitioned stages (every assignment-
	// routed algorithm) destinations depend only on the key, so exhibit
	// metrics stay bit-identical to the serial run; order-dependent
	// routers (AlgPKG's load-aware choice, AlgIdeal's shuffle) route
	// individual tuples by arrival order, which concurrent feeders
	// interleave nondeterministically.
	Feeders int
	// Pipeline selects streaming inter-stage transfer
	// (engine.Config.Pipeline): upstream tasks flush emissions straight
	// into the next stage mid-interval instead of the driver's
	// store-and-forward barrier. The single-stage topology NewSystem
	// builds is unaffected (pinned by test); the knob is plumbed
	// through so the exhibits' A/B harness and future multi-stage
	// system constructors select the mode in one place. Engines fix
	// their stage list at construction — build multi-stage topologies
	// with engine.New directly, as examples/tpch does.
	Pipeline bool
	// MinKeys delays rebalancing until the operator has seen this many
	// keys (warm-up guard).
	MinKeys int
	// PlanInterval, when positive, is the wall-clock duration one
	// logical interval represents for plan-latency accounting: planners
	// slower than it apply their plans late (controller deferral). Zero
	// disables the staleness model.
	PlanInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.Instances == 0 {
		c.Instances = 10
	}
	if c.Window == 0 {
		c.Window = 1
	}
	if c.ThetaMax == 0 {
		c.ThetaMax = 0.08
	}
	if c.TableMax == 0 {
		c.TableMax = 3000
	}
	if c.Beta == 0 {
		c.Beta = 1.5
	}
	if c.Algorithm == "" {
		c.Algorithm = AlgMixed
	}
	if c.CompactR == 0 {
		c.CompactR = 8
	}
	if c.ReadjSigma == 0 {
		c.ReadjSigma = 0.1
	}
	if c.Budget == 0 {
		c.Budget = 10000
	}
	return c
}

// BalanceConfig converts to the planner-facing parameter set.
func (c Config) BalanceConfig() balance.Config {
	c = c.withDefaults()
	tm := c.TableMax
	if tm < 0 {
		tm = 0 // balance.Config treats ≤0 as unbounded
	}
	return balance.Config{ThetaMax: c.ThetaMax, TableMax: tm, Beta: c.Beta}
}

// NewPlanner instantiates the planner for an algorithm name. AlgStorm,
// AlgPKG and AlgIdeal have no planner (they never migrate) and return
// nil.
func NewPlanner(cfg Config) balance.Planner {
	cfg = cfg.withDefaults()
	switch cfg.Algorithm {
	case AlgMixed:
		return balance.Mixed{}
	case AlgMixedBF:
		return balance.MixedBF{}
	case AlgMinTable:
		return balance.MinTable{}
	case AlgMinMig:
		return balance.MinMig{}
	case AlgLLFD:
		return balance.LLFD{}
	case AlgSimple:
		return balance.Simple{}
	case AlgCompact:
		return compact.Planner{R: cfg.CompactR}
	case AlgReadj:
		return readj.Planner{Sigma: cfg.ReadjSigma}
	case AlgStorm, AlgPKG, AlgIdeal:
		return nil
	default:
		panic(fmt.Sprintf("core: unknown algorithm %q", cfg.Algorithm))
	}
}

// System is a single-operator topology under one rebalance strategy.
type System struct {
	Cfg        Config
	Engine     *engine.Engine
	Stage      *engine.Stage
	Controller *controller.Controller
}

// NewSystem builds a spout → operator topology with ND instances of
// op(id), routed according to cfg.Algorithm, rebalanced by the matching
// planner (if any).
func NewSystem(cfg Config, spout engine.Spout, op func(id int) engine.Operator) *System {
	cfg = cfg.withDefaults()
	router := newRouter(cfg)
	st := engine.NewStage("operator", cfg.Instances, op, cfg.Window, router)
	ecfg := engine.DefaultConfig()
	ecfg.Window = cfg.Window
	ecfg.Budget = cfg.Budget
	ecfg.Capacity = cfg.Capacity
	ecfg.Feeders = cfg.Feeders
	ecfg.Pipeline = cfg.Pipeline
	if cfg.Algorithm == AlgPKG {
		// PKG's split keys require a downstream merge of partial
		// results every period p (the paper settled on p = 10 ms); the
		// coordination costs both latency and throughput (§V: merging
		// "leads to additional response time increase and overall
		// processing throughput reduction"). The latency floor models
		// p/2 + ack waiting; PKGOverhead shaves the equivalent service
		// capacity.
		ecfg.LatencyFloorMs = 10
		if ecfg.Capacity == 0 {
			ecfg.Capacity = int64(float64(cfg.Budget/int64(cfg.Instances)) / PKGOverhead)
		} else {
			ecfg.Capacity = int64(float64(ecfg.Capacity) / PKGOverhead)
		}
	}
	e := engine.New(spout, ecfg, st)
	sys := &System{Cfg: cfg, Engine: e, Stage: st}
	if p := NewPlanner(cfg); p != nil {
		sys.Controller = controller.New(p, cfg.BalanceConfig())
		sys.Controller.MinKeys = cfg.MinKeys
		sys.Controller.IntervalDuration = cfg.PlanInterval
		e.OnSnapshot = sys.Controller.Hook()
	}
	return sys
}

// NewSystemBatch is NewSystem with a batch-capable spout: the engine
// draws tuples straight into its reusable emission buffer (e.g.
// gen.NextBatch from the workload generators), skipping the per-tuple
// adapter on the hot path. With cfg.Feeders > 1 the engine shards the
// spout across the feeder goroutines itself; callers that want
// generator-aware sharding instead (the workload Shard methods) can
// set sys.Engine.SpoutShards via engine.AdaptShards before the first
// interval.
func NewSystemBatch(cfg Config, spout engine.SpoutBatch, op func(id int) engine.Operator) *System {
	sys := NewSystem(cfg, nil, op)
	sys.Engine.SpoutB = spout
	return sys
}

// newRouter builds the stage router matching the algorithm.
func newRouter(cfg Config) engine.Router {
	switch cfg.Algorithm {
	case AlgPKG:
		return engine.PKGRouter{R: pkgpart.NewRouter(cfg.Instances)}
	case AlgIdeal:
		return engine.NewShuffleRouter(cfg.Instances)
	default:
		return engine.NewAssignmentRouter(NewAssignment(cfg.Instances))
	}
}

// NewAssignment returns the paper's default partition function: an
// empty routing table over a consistent-hash ring of nd instances.
func NewAssignment(nd int) *route.Assignment {
	return route.NewAssignment(route.NewTable(), hashring.New(nd, 0))
}

// Run executes n intervals.
func (s *System) Run(n int) { s.Engine.Run(n) }

// Recorder exposes the per-interval metric series.
func (s *System) Recorder() *metrics.Recorder { return s.Engine.Recorder }

// Stop tears down the engine goroutines.
func (s *System) Stop() { s.Engine.Stop() }

// Dest evaluates the live partition function for a key (mixed routing
// systems only).
func (s *System) Dest(k tuple.Key) (int, bool) {
	ar := s.Stage.AssignmentRouter()
	if ar == nil {
		return 0, false
	}
	return ar.Assignment().Dest(k), true
}
