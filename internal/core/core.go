// Package core is the public façade of the reproduction: it wires the
// mixed-routing partitioner, the rebalance planners of §III, the
// controller protocol of §IV and the stream engine substrate into a
// small API mirroring how the paper's system would be embedded in a
// real DSPE topology.
//
// Quick start:
//
//	gen := workload.NewZipfStream(100000, 0.85, 1.0, 10000, 1)
//	sys := core.NewSystem(core.Config{Instances: 10, Algorithm: core.AlgMixed},
//	    gen.Next, func(id int) engine.Operator { return engine.StatefulCount })
//	defer sys.Stop()
//	sys.Run(50)
//	fmt.Println(sys.Recorder().MeanThroughput())
//
// NewSystem builds single-stage systems; multi-stage topologies are
// declared through the topology builder (package internal/topology),
// which NewSystem and NewSystemBatch are thin wrappers over.
package core

import (
	"time"

	"repro/internal/balance"
	"repro/internal/controller"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/route"
	"repro/internal/topology"
	"repro/internal/tuple"
)

// Algorithm names a rebalance strategy (or split-key baseline). It is
// the topology package's Algorithm; the alias keeps the historical
// core.Alg* spellings working everywhere.
type Algorithm = topology.Algorithm

// The supported strategies. AlgStorm is hash-only with no rebalancing
// (the Storm key-grouping baseline); AlgIdeal is key-oblivious shuffle.
const (
	AlgMixed    = topology.AlgMixed
	AlgMixedBF  = topology.AlgMixedBF
	AlgMinTable = topology.AlgMinTable
	AlgMinMig   = topology.AlgMinMig
	AlgLLFD     = topology.AlgLLFD
	AlgSimple   = topology.AlgSimple
	AlgCompact  = topology.AlgCompact
	AlgReadj    = topology.AlgReadj
	AlgStorm    = topology.AlgStorm
	AlgPKG      = topology.AlgPKG
	AlgIdeal    = topology.AlgIdeal
)

// PKGOverhead is the fraction of service capacity PKG's partial-result
// merging and acking consume (~12%), calibrated so Mixed's throughput
// advantage over PKG matches the ~10% the paper reports in Fig. 14(a).
const PKGOverhead = topology.PKGOverhead

// Config selects the system layout and optimization parameters;
// zero-valued fields take the paper's defaults (Tab. II).
type Config struct {
	// Instances is ND, the operator's parallelism. Default 10.
	Instances int
	// Window is the state window w in intervals. Default 1.
	Window int
	// ThetaMax is the imbalance tolerance. Default 0.08.
	ThetaMax float64
	// TableMax is Amax. Default 3000. Negative means unbounded.
	TableMax int
	// Beta is the γ exponent. Default 1.5.
	Beta float64
	// Algorithm selects the rebalance strategy. Default AlgMixed.
	Algorithm Algorithm
	// CompactR is the discretization degree for AlgCompact. Default 8.
	CompactR int64
	// ReadjSigma is Readj's hot-key threshold. Default 0.1.
	ReadjSigma float64
	// Budget is the spout's per-interval tuple budget. Default 10000.
	Budget int64
	// Capacity overrides the per-task service capacity (0 = saturation,
	// Budget/Instances).
	Capacity int64
	// Feeders is the spout parallelism: how many goroutines emit each
	// interval's tuples concurrently. 0 or 1 keeps the serial emission
	// path (the default, bit-identical to the single-feeder engine);
	// N > 1 splits the interval budget across N feeders drawing
	// disjoint shares of the spout sequence, so the emitted multiset
	// matches the serial run while routing, partitioning and channel
	// sends parallelize. For key-partitioned stages (every assignment-
	// routed algorithm) destinations depend only on the key, so exhibit
	// metrics stay bit-identical to the serial run; order-dependent
	// routers (AlgPKG's load-aware choice, AlgIdeal's shuffle) route
	// individual tuples by arrival order, which concurrent feeders
	// interleave nondeterministically.
	Feeders int
	// Pipeline selects streaming inter-stage transfer
	// (engine.Config.Pipeline): upstream tasks flush emissions straight
	// into the next stage mid-interval instead of the driver's
	// store-and-forward barrier. The single-stage topology NewSystem
	// builds is unaffected (pinned by test); multi-stage topologies are
	// declared through the topology builder, where streaming transfer
	// is the default and topology.StoreAndForward selects the barrier
	// mode.
	Pipeline bool
	// MinKeys delays rebalancing until the operator has seen this many
	// keys (warm-up guard).
	MinKeys int
	// PlanInterval, when positive, is the wall-clock duration one
	// logical interval represents for plan-latency accounting: planners
	// slower than it apply their plans late (controller deferral). Zero
	// disables the staleness model.
	PlanInterval time.Duration
}

// withDefaults fills zero-valued fields from the paper's Tab. II
// defaults — the same constants the topology builder applies, so the
// two façades cannot drift.
func (c Config) withDefaults() Config {
	if c.Instances == 0 {
		c.Instances = topology.DefInstances
	}
	if c.Window == 0 {
		c.Window = topology.DefWindow
	}
	if c.ThetaMax == 0 {
		c.ThetaMax = topology.DefTheta
	}
	if c.TableMax == 0 {
		c.TableMax = topology.DefTableMax
	}
	if c.Beta == 0 {
		c.Beta = topology.DefBeta
	}
	if c.Algorithm == "" {
		c.Algorithm = AlgMixed
	}
	if c.CompactR == 0 {
		c.CompactR = topology.DefCompactR
	}
	if c.ReadjSigma == 0 {
		c.ReadjSigma = topology.DefReadjSigma
	}
	if c.Budget == 0 {
		c.Budget = topology.DefBudget
	}
	return c
}

// BalanceConfig converts to the planner-facing parameter set.
func (c Config) BalanceConfig() balance.Config {
	c = c.withDefaults()
	tm := c.TableMax
	if tm < 0 {
		tm = 0 // balance.Config treats ≤0 as unbounded
	}
	return balance.Config{ThetaMax: c.ThetaMax, TableMax: tm, Beta: c.Beta}
}

// NewPlanner instantiates the planner for an algorithm name. AlgStorm,
// AlgPKG and AlgIdeal have no planner (they never migrate) and return
// nil.
func NewPlanner(cfg Config) balance.Planner {
	cfg = cfg.withDefaults()
	return topology.PlannerFor(cfg.Algorithm, cfg.CompactR, cfg.ReadjSigma)
}

// System is a single-operator topology under one rebalance strategy.
type System struct {
	Cfg        Config
	Engine     *engine.Engine
	Stage      *engine.Stage
	Controller *controller.Controller

	// top is the underlying built topology; Stop tears it down (engine
	// goroutines plus the stage's control loop).
	top *topology.System
}

// NewSystem builds a spout → operator topology with ND instances of
// op(id), routed according to cfg.Algorithm, rebalanced by the matching
// planner (if any). It is a thin wrapper over the topology builder for
// the single-stage case.
func NewSystem(cfg Config, spout engine.Spout, op func(id int) engine.Operator) *System {
	cfg = cfg.withDefaults()
	opts := []topology.Option{
		topology.Spout(spout),
		topology.Budget(cfg.Budget),
		topology.Feeders(cfg.Feeders),
	}
	if cfg.Pipeline {
		opts = append(opts, topology.Pipelined())
	} else {
		opts = append(opts, topology.StoreAndForward())
	}
	t := topology.New(opts...).Stage("operator", op,
		topology.Instances(cfg.Instances),
		topology.Window(cfg.Window),
		topology.WithAlgorithm(cfg.Algorithm),
		topology.Theta(cfg.ThetaMax),
		topology.TableMax(cfg.TableMax),
		topology.Beta(cfg.Beta),
		topology.CompactR(cfg.CompactR),
		topology.ReadjSigma(cfg.ReadjSigma),
		topology.Capacity(cfg.Capacity),
		topology.MinKeys(cfg.MinKeys),
		topology.PlanInterval(cfg.PlanInterval),
	).Build()
	return &System{Cfg: cfg, Engine: t.Engine, Stage: t.Stage(0), Controller: t.Controller(0), top: t}
}

// NewSystemBatch is NewSystem with a batch-capable spout: the engine
// draws tuples straight into its reusable emission buffer (e.g.
// gen.NextBatch from the workload generators), skipping the per-tuple
// adapter on the hot path. With cfg.Feeders > 1 the engine shards the
// spout across the feeder goroutines itself; callers that want
// generator-aware sharding instead (the workload Shard methods) can
// set sys.Engine.SpoutShards via engine.AdaptShards before the first
// interval.
func NewSystemBatch(cfg Config, spout engine.SpoutBatch, op func(id int) engine.Operator) *System {
	sys := NewSystem(cfg, nil, op)
	sys.Engine.SpoutB = spout
	return sys
}

// NewAssignment returns the paper's default partition function: an
// empty routing table over a consistent-hash ring of nd instances.
func NewAssignment(nd int) *route.Assignment {
	return topology.NewAssignment(nd)
}

// Run executes n intervals.
func (s *System) Run(n int) { s.Engine.Run(n) }

// Recorder exposes the per-interval metric series.
func (s *System) Recorder() *metrics.Recorder { return s.Engine.Recorder }

// Stop tears down the engine goroutines and the control loop.
func (s *System) Stop() {
	if s.top != nil {
		s.top.Stop()
		return
	}
	s.Engine.Stop()
}

// Dest evaluates the live partition function for a key (mixed routing
// systems only).
func (s *System) Dest(k tuple.Key) (int, bool) {
	ar := s.Stage.AssignmentRouter()
	if ar == nil {
		return 0, false
	}
	return ar.Assignment().Dest(k), true
}
