package core

import (
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// Second round of façade coverage: the compact planner in a live
// system, scale-out through the engine, plan-latency plumbing, and
// capacity overrides.

func TestCompactSystemRebalances(t *testing.T) {
	gen := workload.NewZipfStream(5000, 1.0, 0.5, 4000, 9)
	sys := NewSystem(Config{Instances: 4, Budget: 4000, Algorithm: AlgCompact, CompactR: 8, MinKeys: 16},
		gen.Next, func(int) engine.Operator { return engine.StatefulCount })
	defer sys.Stop()
	ar := sys.Stage.AssignmentRouter()
	sys.Engine.AdvanceWorkload = func(int64) { gen.Advance(ar.Assignment()) }
	sys.Run(10)
	if sys.Controller.Rebalances() == 0 {
		t.Fatal("compact planner never rebalanced a z=1 stream")
	}
	// Routing table stays within Amax.
	if n := ar.Assignment().Table().Len(); n > 3000 {
		t.Fatalf("compact system table %d exceeds default bound", n)
	}
}

func TestScaleOutThroughCore(t *testing.T) {
	gen := workload.NewZipfStream(2000, 0.85, 0, 3000, 4)
	sys := NewSystem(Config{Instances: 3, Budget: 3000, MinKeys: 16},
		gen.Next, func(int) engine.Operator { return engine.StatefulCount })
	defer sys.Stop()
	sys.Run(3)
	moved, err := sys.Engine.ResizeStage(0, +1)
	if err != nil {
		t.Fatalf("ResizeStage(+1): %v", err)
	}
	if sys.Stage.Instances() != 4 {
		t.Fatalf("instances = %d after scale-out", sys.Stage.Instances())
	}
	if moved == 0 {
		t.Fatal("scale-out moved no state despite 3 intervals of accumulation")
	}
	sys.Run(3) // must keep running correctly at the new width
	if sys.Recorder().Len() != 6 {
		t.Fatalf("recorded %d intervals", sys.Recorder().Len())
	}
	// And back down: the live scale-in mirror retires the instance it
	// just added, migrating its keys to the survivors.
	movedBack, err := sys.Engine.ResizeStage(0, -1)
	if err != nil {
		t.Fatalf("ResizeStage(-1): %v", err)
	}
	if sys.Stage.Instances() != 3 {
		t.Fatalf("instances = %d after scale-in", sys.Stage.Instances())
	}
	if movedBack == 0 {
		t.Fatal("scale-in moved no state off the retiring instance")
	}
	sys.Run(3)
	if sys.Recorder().Len() != 9 {
		t.Fatalf("recorded %d intervals", sys.Recorder().Len())
	}
	ar := sys.Stage.AssignmentRouter()
	for _, k := range sys.Stage.LiveKeys() {
		if d := ar.Assignment().Dest(k); d >= 3 {
			t.Fatalf("key %d routed to retired instance %d", k, d)
		}
	}
}

func TestPlanIntervalPlumbedToController(t *testing.T) {
	gen := workload.NewZipfStream(100, 0.85, 0, 100, 1)
	sys := NewSystem(Config{Instances: 2, Budget: 100, PlanInterval: 5 * time.Second},
		gen.Next, func(int) engine.Operator { return engine.Discard })
	defer sys.Stop()
	if sys.Controller.IntervalDuration != 5*time.Second {
		t.Fatalf("IntervalDuration = %v", sys.Controller.IntervalDuration)
	}
}

func TestCapacityOverrideReachesEngine(t *testing.T) {
	gen := workload.NewZipfStream(100, 0.85, 0, 100, 1)
	sys := NewSystem(Config{Instances: 2, Budget: 100, Capacity: 77},
		gen.Next, func(int) engine.Operator { return engine.Discard })
	defer sys.Stop()
	if got := sys.Engine.CapacityOf(0); got != 77 {
		t.Fatalf("engine capacity = %d, want 77", got)
	}
}

func TestPKGCapacityShaved(t *testing.T) {
	gen := workload.NewZipfStream(100, 0.85, 0, 1000, 1)
	sys := NewSystem(Config{Instances: 2, Budget: 1000, Algorithm: AlgPKG},
		gen.Next, func(int) engine.Operator { return engine.Discard })
	defer sys.Stop()
	// Saturation would be 500; PKG pays the merge overhead.
	if got := sys.Engine.CapacityOf(0); got >= 500 {
		t.Fatalf("PKG capacity %d not shaved below 500", got)
	}
}

func TestReadjSystemUsesConfiguredSigma(t *testing.T) {
	gen := workload.NewZipfStream(1000, 1.0, 0.5, 2000, 5)
	sys := NewSystem(Config{Instances: 4, Budget: 2000, Algorithm: AlgReadj, ReadjSigma: 0.05, MinKeys: 16},
		gen.Next, func(int) engine.Operator { return engine.StatefulCount })
	defer sys.Stop()
	ar := sys.Stage.AssignmentRouter()
	sys.Engine.AdvanceWorkload = func(int64) { gen.Advance(ar.Assignment()) }
	sys.Run(8)
	if sys.Controller.Rebalances() == 0 {
		t.Fatal("Readj system never rebalanced")
	}
}

func TestWindowPropagatesToStores(t *testing.T) {
	gen := workload.NewZipfStream(50, 0.85, 0, 100, 2)
	sys := NewSystem(Config{Instances: 2, Budget: 100, Window: 4},
		gen.Next, func(int) engine.Operator { return engine.StatefulCount })
	defer sys.Stop()
	if w := sys.Stage.StoreOf(0).Window(); w != 4 {
		t.Fatalf("store window = %d, want 4", w)
	}
	// State observed in interval 0 must survive 4 intervals.
	k := tuple.Key(7)
	sys.Stage.Feed(tuple.New(k, nil))
	sys.Stage.Barrier()
	d, _ := sys.Dest(k)
	sys.Run(3)
	if sys.Stage.StoreOf(d).Size(k) == 0 {
		t.Fatal("windowed state evicted too early")
	}
}
