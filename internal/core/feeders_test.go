package core

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/workload"
)

// runSystem drives a full rebalancing system — Mixed planner, Zipf
// workload with fluctuation, windowed state — for n intervals at the
// given feeder count and returns it (stopped) for inspection.
func runSystem(t *testing.T, feeders, n int) *System {
	t.Helper()
	gen := workload.NewZipfStream(3000, 0.9, 1.0, 10000, 41)
	sys := NewSystemBatch(Config{
		Instances: 8,
		Window:    2,
		Algorithm: AlgMixed,
		Budget:    10000,
		MinKeys:   64,
		Feeders:   feeders,
	}, gen.NextBatch, func(int) engine.Operator { return engine.StatefulCount })
	defer sys.Stop()
	ar := sys.Stage.AssignmentRouter()
	sys.Engine.AdvanceWorkload = func(int64) { gen.Advance(ar.Assignment()) }
	sys.Run(n)
	return sys
}

// TestFeedersPreserveExhibitMetrics is the pinned end-to-end
// determinism test of the parallel runtime: a Feeders = 4 run of the
// full system (routing, windowed state, statistics harvest, Mixed
// rebalancing, workload fluctuation) must reproduce the Feeders = 1
// interval series — every exhibit-relevant metric — and the final
// harvest snapshot exactly.
func TestFeedersPreserveExhibitMetrics(t *testing.T) {
	const intervals = 12
	serial := runSystem(t, 1, intervals)
	parallel := runSystem(t, 4, intervals)

	a, b := serial.Recorder().Series, parallel.Recorder().Series
	if len(a) != len(b) {
		t.Fatalf("series lengths differ: %d ≠ %d", len(a), len(b))
	}
	for i := range a {
		ma, mb := a[i], b[i]
		// PlanMs is measured wall-clock plan-generation time — real
		// nondeterminism, not a data-plane quantity.
		ma.PlanMs, mb.PlanMs = 0, 0
		if ma != mb {
			t.Fatalf("interval %d diverges:\nfeeders=1 %+v\nfeeders=4 %+v", i, ma, mb)
		}
	}
	sa, sb := serial.Engine.LastSnapshots()[0], parallel.Engine.LastSnapshots()[0]
	if len(sa.Keys) != len(sb.Keys) {
		t.Fatalf("final snapshots differ in size: %d ≠ %d", len(sa.Keys), len(sb.Keys))
	}
	for i := range sa.Keys {
		if sa.Keys[i] != sb.Keys[i] {
			t.Fatalf("final snapshot entry %d: %+v ≠ %+v", i, sb.Keys[i], sa.Keys[i])
		}
	}
	// The routing tables the controller built must match: same
	// rebalance decisions interval by interval.
	ta := serial.Stage.AssignmentRouter().Assignment().Table()
	tb := parallel.Stage.AssignmentRouter().Assignment().Table()
	if ta.Len() != tb.Len() {
		t.Fatalf("routing tables differ in size: %d ≠ %d", ta.Len(), tb.Len())
	}
	for _, k := range ta.Keys() {
		da, _ := ta.Lookup(k)
		db, ok := tb.Lookup(k)
		if !ok || da != db {
			t.Fatalf("routing entry for key %d: feeders=1 → %d, feeders=4 → %d (present=%v)", k, da, db, ok)
		}
	}
}
