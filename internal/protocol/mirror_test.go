package protocol

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/tuple"
)

// The mirror's linear merge must reconstruct exactly the run a full
// report would carry: model each task's population as a map, apply the
// same randomized delta stream to both, and compare the sorted runs.
func TestMirrorMatchesMapModel(t *testing.T) {
	const tasks = 3
	rng := rand.New(rand.NewSource(5))
	m := NewMirror()
	models := make([]map[tuple.Key]KeyStatWire, tasks)
	runs := make([][]KeyStatWire, tasks)
	for d := range models {
		models[d] = map[tuple.Key]KeyStatWire{}
	}
	sortRun := func(run []KeyStatWire) {
		sort.Slice(run, func(i, j int) bool { return wireLess(run[i], run[j]) })
	}
	for round := 0; round < 30; round++ {
		full := round == 0 || rng.Intn(8) == 0
		reports := make([]*LoadReport, tasks)
		for d := 0; d < tasks; d++ {
			epoch := uint64(round + 2)
			// Mutate the model, then derive the delta from the *final*
			// state — mirroring the tracker's close-time harvest, where
			// a key changed then dropped within one interval retires,
			// and one dropped then re-touched changes.
			touched := map[tuple.Key]struct{}{}
			for i := 0; i < 1+rng.Intn(10); i++ {
				k := tuple.Key(rng.Intn(60))
				touched[k] = struct{}{}
				if rng.Intn(5) == 0 {
					delete(models[d], k)
					continue
				}
				models[d][k] = KeyStatWire{Key: k, Cost: int64(1 + rng.Intn(50)), Freq: 1, Mem: int64(rng.Intn(9))}
			}
			var changed []KeyStatWire
			var retired []tuple.Key
			for k := range touched {
				if ks, ok := models[d][k]; ok {
					changed = append(changed, ks)
				} else {
					retired = append(retired, k)
				}
			}
			sort.Slice(retired, func(i, j int) bool { return retired[i] < retired[j] })
			sortRun(changed)

			run := make([]KeyStatWire, 0, len(models[d]))
			for _, ks := range models[d] {
				run = append(run, ks)
			}
			sortRun(run)
			runs[d] = run

			if full {
				reports[d] = &LoadReport{TaskID: d, Epoch: epoch, Stats: run, Tasks: tasks}
			} else {
				reports[d] = &LoadReport{TaskID: d, Epoch: epoch, Delta: true, Changed: changed, Retired: retired, Tasks: tasks}
			}
		}
		eff, err := m.Apply(reports)
		if err != nil {
			t.Fatalf("round %d (full=%v): %v", round, full, err)
		}
		for d := 0; d < tasks; d++ {
			if len(eff[d].Stats) != len(runs[d]) {
				t.Fatalf("round %d task %d: effective run %d entries, model %d", round, d, len(eff[d].Stats), len(runs[d]))
			}
			for i := range runs[d] {
				if eff[d].Stats[i] != runs[d][i] {
					t.Fatalf("round %d task %d entry %d: %+v, model %+v", round, d, i, eff[d].Stats[i], runs[d][i])
				}
			}
			if eff[d].Delta {
				t.Fatalf("round %d task %d: effective report still marked delta", round, d)
			}
		}
	}
}

// Apply must reject what it cannot bridge — epoch gaps, task-count
// changes announced by delta, duplicates, mixed rounds — atomically:
// a failed round leaves the mirror exactly as it was.
func TestMirrorApplyErrors(t *testing.T) {
	m := NewMirror()
	base := []*LoadReport{
		{TaskID: 0, Epoch: 2, Stats: []KeyStatWire{{Key: 1, Cost: 9}}},
		{TaskID: 1, Epoch: 2, Stats: []KeyStatWire{{Key: 2, Cost: 5}}},
	}
	if _, err := m.Apply(base); err != nil {
		t.Fatal(err)
	}
	bad := [][]*LoadReport{
		{ // epoch gap
			{TaskID: 0, Epoch: 4, Delta: true, Tasks: 2},
			{TaskID: 1, Epoch: 3, Delta: true, Tasks: 2},
		},
		{ // task count changed, announced by delta
			{TaskID: 0, Epoch: 3, Delta: true, Tasks: 3},
			{TaskID: 1, Epoch: 3, Delta: true, Tasks: 3},
			{TaskID: 2, Epoch: 3, Delta: true, Tasks: 3},
		},
		{ // duplicate task
			{TaskID: 0, Epoch: 3, Delta: true, Tasks: 2},
			{TaskID: 0, Epoch: 3, Delta: true, Tasks: 2},
		},
		{ // task id out of range
			{TaskID: 0, Epoch: 3, Delta: true, Tasks: 2},
			{TaskID: 7, Epoch: 3, Delta: true, Tasks: 2},
		},
		{ // mixed legacy and epoch-stamped
			{TaskID: 0, Epoch: 3, Delta: true, Tasks: 2},
			{TaskID: 1, Epoch: 0, Tasks: 2},
		},
	}
	for i, reports := range bad {
		if _, err := m.Apply(reports); err == nil {
			t.Fatalf("bad round %d applied without error", i)
		}
	}
	// The failures above must not have advanced the mirror: the
	// legitimate next delta still applies.
	good := []*LoadReport{
		{TaskID: 0, Epoch: 3, Delta: true, Retired: []tuple.Key{1}, Tasks: 2},
		{TaskID: 1, Epoch: 3, Delta: true, Changed: []KeyStatWire{{Key: 3, Cost: 7}}, Tasks: 2},
	}
	eff, err := m.Apply(good)
	if err != nil {
		t.Fatalf("mirror corrupted by failed rounds: %v", err)
	}
	if len(eff[0].Stats) != 0 || len(eff[1].Stats) != 2 {
		t.Fatalf("effective runs %v / %v, want 0 and 2 entries", eff[0].Stats, eff[1].Stats)
	}
}

// Legacy rounds (epoch 0) bypass the mirror untouched.
func TestMirrorLegacyBypass(t *testing.T) {
	m := NewMirror()
	reports := []*LoadReport{{TaskID: 0, Stats: []KeyStatWire{{Key: 1, Cost: 1}}, Tasks: 1}}
	eff, err := m.Apply(reports)
	if err != nil {
		t.Fatal(err)
	}
	if eff[0] != reports[0] {
		t.Fatal("legacy report was not passed through unchanged")
	}
}
