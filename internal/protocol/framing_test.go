package protocol

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

// TestFramedShutdownMarker: after WriteShutdownFrame the reader drains
// everything sent before the marker, then reports io.EOF — the clean
// half of the clean-vs-truncated distinction.
func TestFramedShutdownMarker(t *testing.T) {
	var wire bytes.Buffer
	c := NewFramedCodec(&wire)
	want := &Message{Resume: &Resume{Interval: 7}}
	if err := c.Send(want); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := WriteShutdownFrame(&wire); err != nil {
		t.Fatalf("shutdown frame: %v", err)
	}

	rc := NewFramedCodec(readerOnly{bytes.NewReader(wire.Bytes())})
	got, err := rc.Recv()
	if err != nil {
		t.Fatalf("recv before marker: %v", err)
	}
	if got.Resume == nil || got.Resume.Interval != 7 {
		t.Fatalf("recv: %#v", got)
	}
	if _, err := rc.Recv(); err != io.EOF {
		t.Fatalf("recv after marker: %v, want io.EOF", err)
	}
	// EOF must latch.
	if _, err := rc.Recv(); err != io.EOF {
		t.Fatalf("second recv after marker: %v, want io.EOF", err)
	}
}

// TestFramedCleanCloseWithoutMarker: a stream ending exactly on a
// frame boundary (peer process exited without the marker) is still a
// clean EOF, not a truncation error.
func TestFramedCleanCloseWithoutMarker(t *testing.T) {
	var wire bytes.Buffer
	c := NewFramedCodec(&wire)
	if err := c.Send(&Message{Ack: &Ack{TaskID: 1, Interval: 3}}); err != nil {
		t.Fatalf("send: %v", err)
	}
	rc := NewFramedCodec(readerOnly{bytes.NewReader(wire.Bytes())})
	if _, err := rc.Recv(); err != nil {
		t.Fatalf("recv: %v", err)
	}
	if _, err := rc.Recv(); err != io.EOF {
		t.Fatalf("recv at end: %v, want io.EOF", err)
	}
}

// TestFramedTruncation: cuts inside the header and inside the body
// must surface as errors wrapping io.ErrUnexpectedEOF.
func TestFramedTruncation(t *testing.T) {
	var wire bytes.Buffer
	c := NewFramedCodec(&wire)
	if err := c.Send(&Message{Resume: &Resume{Interval: 9}}); err != nil {
		t.Fatalf("send: %v", err)
	}
	full := wire.Bytes()
	for _, cut := range []int{1, 2, 3, frameHeaderLen + 1, len(full) - 1} {
		rc := NewFramedCodec(readerOnly{bytes.NewReader(full[:cut])})
		_, err := rc.Recv()
		if err == nil {
			t.Fatalf("cut %d: decoded a message from a truncated stream", cut)
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut %d: error %v does not wrap io.ErrUnexpectedEOF", cut, err)
		}
		if !strings.Contains(err.Error(), "truncated") {
			t.Fatalf("cut %d: error %q does not mention truncation", cut, err)
		}
	}
}

// TestFramedOversizeFrame: a hostile or corrupt length prefix beyond
// maxFrame errors immediately instead of attempting the allocation.
func TestFramedOversizeFrame(t *testing.T) {
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(maxFrame+1))
	rc := NewFramedCodec(readerOnly{bytes.NewReader(hdr[:])})
	_, err := rc.Recv()
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize frame: %v, want ErrFrameTooLarge", err)
	}

	fw := &frameWriter{w: io.Discard}
	if _, err := fw.Write(make([]byte, maxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize write: %v, want ErrFrameTooLarge", err)
	}
}

// TestFramedCountersMatchPlain: the framed codec's byte counters count
// gob payload only, so loopback, pipe and socket transports report
// comparable control-plane bandwidth.
func TestFramedCountersMatchPlain(t *testing.T) {
	msgs := []*Message{
		{Report: &LoadReport{TaskID: 1, Interval: 2, Tasks: 4}},
		{Resume: &Resume{Interval: 2}},
	}
	var plainWire, framedWire bytes.Buffer
	plain := NewCodec(&plainWire)
	framed := NewFramedCodec(&framedWire)
	for _, m := range msgs {
		if err := plain.Send(m); err != nil {
			t.Fatalf("plain send: %v", err)
		}
		if err := framed.Send(m); err != nil {
			t.Fatalf("framed send: %v", err)
		}
	}
	if plain.SentBytes() != framed.SentBytes() {
		t.Fatalf("sent counters differ: plain %d, framed %d", plain.SentBytes(), framed.SentBytes())
	}
	rc := NewFramedCodec(readerOnly{bytes.NewReader(framedWire.Bytes())})
	for range msgs {
		if _, err := rc.Recv(); err != nil {
			t.Fatalf("recv: %v", err)
		}
	}
	if rc.RecvBytes() != plain.SentBytes() {
		t.Fatalf("recv counter %d, want %d", rc.RecvBytes(), plain.SentBytes())
	}
	// And the framed stream carries exactly one 4-byte header per
	// message beyond the gob payload.
	if int64(framedWire.Len()) != plain.SentBytes()+int64(len(msgs)*frameHeaderLen) {
		t.Fatalf("framed wire %d bytes, want payload %d + %d headers",
			framedWire.Len(), plain.SentBytes(), len(msgs)*frameHeaderLen)
	}
}
