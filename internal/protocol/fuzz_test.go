package protocol

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"io"
	"reflect"
	"testing"
	"time"

	"repro/internal/state"
	"repro/internal/tuple"
)

func init() {
	// Interface-typed payload fields (tuple.Value, state.Entry.Value)
	// need their concrete types registered, exactly as a cluster
	// deployment registers them at startup.
	gob.Register(int64(0))
	gob.Register([]tuple.Key(nil))
}

// windowPayload builds a real serialized window via state.Codec: a
// store filled deterministically from the rng, one key extracted and
// encoded — the exact bytes a cross-process migration ships.
func windowPayload(r *fuzzRNG, n int) []byte {
	st := state.NewStore(r.intn(3) + 1)
	k := tuple.Key(r.next()%64 + 1)
	for it := 0; it < r.intn(4)+1; it++ {
		for e := 0; e < n%16; e++ {
			st.Add(k, state.Entry{Value: int64(r.next() % 1e6), Size: int64(r.intn(8) + 1)})
		}
		st.EndInterval()
	}
	p, err := state.Codec{}.Encode(st.Extract(k), int64(r.next()%1e6))
	if err != nil {
		panic(err)
	}
	return p
}

// fuzzRNG is a tiny deterministic splitmix64 over the fuzz input, so
// one (seed, shape) pair expands into arbitrary message contents
// without the fuzzer having to guess gob framing bytes.
type fuzzRNG struct{ s uint64 }

func (r *fuzzRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *fuzzRNG) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// buildMessage deterministically expands (seed, kind, n) into one
// message of the chosen kind with n-scaled contents — including the
// empty-table / empty-stats / zero-Moved corners when n lands on 0.
func buildMessage(seed uint64, kind, n int) *Message {
	r := &fuzzRNG{s: seed}
	entries := func(c int) []RouteEntry {
		if c == 0 {
			return nil
		}
		out := make([]RouteEntry, c)
		for i := range out {
			out[i] = RouteEntry{Key: tuple.Key(r.next()), Dest: r.intn(64)}
		}
		return out
	}
	switch kind % 19 {
	case 0:
		rep := &LoadReport{
			TaskID: r.intn(32), Interval: int64(r.intn(1000)),
			Tasks: r.intn(32) + 1, Capacity: int64(r.next() % 1e6),
			Emitted: int64(r.next() % 1e6), Budget: int64(r.next() % 1e6),
			Routable: r.intn(2) == 0, Resizable: r.intn(2) == 0,
		}
		for i := 0; i < r.intn(n+1); i++ {
			rep.Split = append(rep.Split, tuple.Key(r.next()))
		}
		wire := func() KeyStatWire {
			return KeyStatWire{
				Key: tuple.Key(r.next()), Cost: int64(r.intn(1e6)),
				Freq: int64(r.intn(1e6)), Mem: int64(r.intn(1e6)), Hash: r.intn(64),
			}
		}
		switch r.intn(3) {
		case 0: // legacy per-interval report
			for i := 0; i < n; i++ {
				rep.Stats = append(rep.Stats, wire())
			}
		case 1: // epoch-stamped full rebase
			rep.Epoch = r.next()%1e6 + 1
			for i := 0; i < n; i++ {
				rep.Stats = append(rep.Stats, wire())
			}
		default: // delta form (n == 0 is the empty-delta corner)
			rep.Epoch = r.next()%1e6 + 1
			rep.Delta = true
			for i := 0; i < n; i++ {
				rep.Changed = append(rep.Changed, wire())
			}
			for i := 0; i < r.intn(n+1); i++ {
				rep.Retired = append(rep.Retired, tuple.Key(r.next()))
			}
		}
		return &Message{Report: rep}
	case 1:
		return &Message{Plan: &PlanAnnounce{
			Interval: int64(r.intn(1000)),
			Table:    entries(n),
			Moved:    entries(r.intn(n + 1)),
			Algorithm: map[int]string{
				0: "", 1: "Mixed", 2: "MinTable",
			}[r.intn(3)],
			GenTime: time.Duration(r.next() % uint64(time.Second)),
		}}
	case 2:
		delta := 1
		if r.intn(2) == 0 {
			delta = -1
		}
		return &Message{ResizeCmd: &Resize{Interval: int64(r.intn(1000)), Delta: delta}}
	case 3:
		var payload []byte
		if n > 0 {
			if r.intn(2) == 0 {
				// A real serialized window, as the cross-process
				// migration path ships: gob-encoded buckets of entries.
				payload = windowPayload(r, n)
			} else {
				payload = make([]byte, n%4096)
				for i := range payload {
					payload[i] = byte(r.next())
				}
			}
		}
		return &Message{State: &StateTransfer{
			Key: tuple.Key(r.next()), From: r.intn(64), To: r.intn(64),
			Size: int64(r.intn(1e6)), Payload: payload,
		}}
	case 4:
		return &Message{Ack: &Ack{TaskID: r.intn(64), Interval: int64(r.intn(1000))}}
	case 5:
		return &Message{Resume: &Resume{Interval: int64(r.intn(1000))}}
	case 6:
		ann := &SplitAnnounce{Interval: int64(r.intn(1000))}
		for i := 0; i < n%64; i++ {
			ann.Set = append(ann.Set, SplitEntry{Key: tuple.Key(r.next()), Fan: r.intn(16) + 2})
		}
		return &Message{Split: ann}
	case 7:
		return &Message{ResyncReq: &Resync{Interval: int64(r.intn(1000))}}
	case 8:
		roles := []string{"worker", "control", "data"}
		return &Message{Hello: &Hello{
			Proto: r.intn(4), Role: roles[r.intn(3)],
			Worker:   map[int]string{0: "", 1: "w0", 2: "worker-17"}[r.intn(3)],
			Stage:    r.intn(8),
			DataAddr: map[int]string{0: "", 1: "/tmp/w.sock", 2: "127.0.0.1:7701"}[r.intn(3)],
		}}
	case 9:
		return &Message{Welcome: &Welcome{Proto: r.intn(4), ID: r.intn(64)}}
	case 10:
		return &Message{Assign: &StageAssign{
			Stage: r.intn(8), Name: "count", Op: "statefulcount",
			Instances: r.intn(32) + 1, Window: r.intn(8),
			Algorithm: map[int]string{0: "", 1: "Mixed", 2: "Shuffle"}[r.intn(3)],
			Capacity:  int64(r.next() % 1e6), Budget: int64(r.next() % 1e6),
			Harvest: r.intn(3), PauseFree: r.intn(2) == 0, StateWire: r.intn(2) == 0,
			Control:    r.intn(2) == 0,
			Downstream: map[int]string{0: "", 1: "/tmp/d.sock"}[r.intn(2)],
			DownStage:  r.intn(8),
		}}
	case 11:
		return &Message{Start: &StartInterval{
			Interval: int64(r.intn(1000)), Emit: int64(r.next() % 1e6),
		}}
	case 12:
		return &Message{Close: &CloseStage{Stage: r.intn(8)}}
	case 13:
		return &Message{Harvest: &HarvestReq{
			Stage: r.intn(8), Interval: int64(r.intn(1000)), Emit: int64(r.next() % 1e6),
		}}
	case 14:
		hd := &HarvestDone{
			Stage: r.intn(8), Interval: int64(r.intn(1000)),
			Instances: r.intn(32) + 1, LiveState: int64(r.next() % 1e9),
			Rebalanced: r.intn(2) == 0, PlanMs: float64(r.intn(1e6)) / 1000,
			TableSize: r.intn(4096), Moved: int64(r.next() % 1e6),
			ScaledOut: r.intn(2), ScaledIn: r.intn(2),
			Processed: int64(r.next() % 1e9),
		}
		for i := 0; i < n%64; i++ {
			hd.ArrivedCost = append(hd.ArrivedCost, int64(r.next()%1e6))
			hd.ArrivedTuples = append(hd.ArrivedTuples, int64(r.next()%1e6))
			hd.MigPenalty = append(hd.MigPenalty, int64(r.next()%1e6))
		}
		for i := 0; i < r.intn(4); i++ {
			hd.Resizes = append(hd.Resizes, 1-2*r.intn(2))
		}
		return &Message{Harvested: hd}
	case 15:
		b := &TupleBatch{}
		for i := 0; i < n%512; i++ {
			t := tuple.Tuple{
				Key: tuple.Key(r.next()), Cost: int64(r.intn(16) + 1),
				StateSize: int64(r.intn(16)), Seq: r.next(),
				EmitTick: int64(r.intn(1000)),
				Stream:   map[int]string{0: "", 1: "counts"}[r.intn(2)],
			}
			switch r.intn(3) {
			case 0: // nil payload
			case 1:
				t.Value = int64(r.intn(1e6))
			default:
				t.Value = []tuple.Key{tuple.Key(r.next()), tuple.Key(r.next())}
			}
			b.Tuples = append(b.Tuples, t)
		}
		return &Message{Batch: b}
	case 16:
		return &Message{FlushReq: &Flush{Seq: r.next()}}
	case 17:
		return &Message{Bye: &Shutdown{Reason: map[int]string{0: "", 1: "done"}[r.intn(2)]}}
	default:
		st := &Stats{Worker: map[int]string{0: "", 1: "w1"}[r.intn(2)]}
		for i := 0; i < n%8; i++ {
			st.Conns = append(st.Conns, ConnStat{
				Name: "conn", Sent: int64(r.next() % 1e9), Rcvd: int64(r.next() % 1e9),
			})
		}
		return &Message{ConnStats: st}
	}
}

// FuzzCodecRoundTrip drives arbitrary messages of every kind through
// the gob codec and requires the decoded value to reproduce the
// original exactly — the property the wire transport's equivalence
// with the loopback rests on. Seeds cover every kind at empty,
// single-entry and many-entry sizes (empty routing tables, multi-entry
// Moved sets, delta reports with empty change sets included).
func FuzzCodecRoundTrip(f *testing.F) {
	for kind := 0; kind < 19; kind++ {
		for _, n := range []int{0, 1, 17} {
			f.Add(uint64(kind*31+n), kind, n)
		}
	}
	f.Fuzz(func(t *testing.T, seed uint64, kind, n int) {
		if n < 0 {
			n = -n
		}
		n %= 1 << 12
		for name, mk := range map[string]func(io.ReadWriter) *Codec{
			"plain":  func(rw io.ReadWriter) *Codec { return NewCodec(rw) },
			"framed": NewFramedCodec,
			"binary": func(rw io.ReadWriter) *Codec {
				c := NewFramedCodec(rw)
				c.EnableBinary()
				return c
			},
		} {
			orig := buildMessage(seed, kind, n)

			var buf bytes.Buffer
			c := mk(&buf)
			if err := c.Send(orig); err != nil {
				t.Fatalf("%s send %s: %v", name, orig.Kind(), err)
			}
			got, err := c.Recv()
			if err != nil {
				t.Fatalf("%s recv %s: %v", name, orig.Kind(), err)
			}
			if got.Kind() != orig.Kind() {
				t.Fatalf("%s: kind %s decoded as %s", name, orig.Kind(), got.Kind())
			}
			// Gob does not distinguish nil from empty slices; normalize
			// before the exact comparison.
			if !reflect.DeepEqual(normalize(orig), normalize(got)) {
				t.Fatalf("%s round trip altered the message:\n sent %#v\n got  %#v", name, orig, got)
			}

			// A second message on the same stream must also survive (gob
			// streams carry type state across values).
			orig2 := buildMessage(seed^0xabcdef, kind+1, n/2+1)
			if err := c.Send(orig2); err != nil {
				t.Fatalf("%s second send: %v", name, err)
			}
			got2, err := c.Recv()
			if err != nil {
				t.Fatalf("%s second recv: %v", name, err)
			}
			if !reflect.DeepEqual(normalize(orig2), normalize(got2)) {
				t.Fatalf("%s second round trip altered the message:\n sent %#v\n got  %#v", name, orig2, got2)
			}
		}
	})
}

// FuzzFramedTruncation cuts a framed stream at an arbitrary byte
// offset and replays the prefix: the reader must deliver only intact
// messages (bit-identical to the originals) followed by either a clean
// EOF (cut on a frame boundary) or a truncation error — never a
// corrupt or phantom message. This is the short-read safety property
// of the socket transport.
func FuzzFramedTruncation(f *testing.F) {
	for kind := 0; kind < 19; kind++ {
		f.Add(uint64(kind*7+1), kind, 5, kind*13)
	}
	f.Fuzz(func(t *testing.T, seed uint64, kind, n, cut int) {
		if n < 0 {
			n = -n
		}
		n %= 1 << 10
		for _, mode := range []string{"gob", "binary"} {
			var wire bytes.Buffer
			sender := NewFramedCodec(&wire)
			if mode == "binary" {
				sender.EnableBinary()
			}
			msgs := make([]*Message, 3)
			for i := range msgs {
				msgs[i] = buildMessage(seed+uint64(i), kind+i, n)
				if err := sender.Send(msgs[i]); err != nil {
					t.Fatalf("%s send %d: %v", mode, i, err)
				}
			}
			full := wire.Bytes()
			c := cut
			if c < 0 {
				c = -c
			}
			c %= len(full) + 1

			rc := NewFramedCodec(readerOnly{bytes.NewReader(full[:c])})
			if mode == "binary" {
				rc.EnableBinary()
			}
			decoded := 0
			for {
				got, err := rc.Recv()
				if err != nil {
					if err != io.EOF && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, ErrFrameTooLarge) {
						// gob- or binary-level errors on a truncated tail are
						// fine too; what must never happen is a silent wrong
						// message.
						_ = err
					}
					break
				}
				if decoded >= len(msgs) {
					t.Fatalf("%s: decoded %d messages from a %d-message stream", mode, decoded+1, len(msgs))
				}
				if !reflect.DeepEqual(normalize(msgs[decoded]), normalize(got)) {
					t.Fatalf("%s: prefix cut at %d delivered a corrupt message %d:\n sent %#v\n got  %#v",
						mode, c, decoded, msgs[decoded], got)
				}
				decoded++
			}
			if c == len(full) && decoded != len(msgs) {
				t.Fatalf("%s: full stream decoded only %d of %d messages", mode, decoded, len(msgs))
			}
		}
	})
}

// FuzzBinaryHostile hands the binary decoder a raw attacker-controlled
// frame payload: whatever the bytes, Recv must return a message or an
// error — never panic, never attempt an allocation sized from an
// unvalidated count. Seeds cover a valid frame of every binary kind
// plus known-hostile shapes (giant counts, cut columns, bad tags).
func FuzzBinaryHostile(f *testing.F) {
	for _, kind := range []int{0, 1, 3, 4, 5, 7, 8, 15, 16} {
		var wire bytes.Buffer
		c := NewFramedCodec(&wire)
		c.EnableBinary()
		if err := c.Send(buildMessage(uint64(kind)*977, kind, 9)); err != nil {
			f.Fatalf("seed kind %d: %v", kind, err)
		}
		f.Add(wire.Bytes()[frameHeaderLen:]) // strip the length prefix
	}
	f.Add([]byte{kindBatch, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{kindBatch, 0, 0, 0, 1, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{kindBatch, 0, 0, 0, 1, 0, 0, 0, 2, 5})
	f.Add([]byte{kindReport, 0x80})
	f.Add([]byte{kindFlush, 1, 2, 3})
	f.Add([]byte{0x7f})
	f.Add([]byte{kindGob, 0xde, 0xad})
	f.Fuzz(func(t *testing.T, payload []byte) {
		if len(payload) > maxFrame {
			return
		}
		var stream []byte
		stream = binary.BigEndian.AppendUint32(stream, uint32(len(payload)))
		stream = append(stream, payload...)
		c := NewFramedCodec(readerOnly{bytes.NewReader(stream)})
		c.EnableBinary()
		for {
			m, err := c.Recv()
			if err != nil {
				break // any error is acceptable; panics are not
			}
			if m.Kind() == "empty" {
				t.Fatalf("hostile payload decoded to an empty message")
			}
		}
	})
}

// readerOnly hides any Write method so NewFramedCodec's writer half is
// inert in replay tests.
type readerOnly struct{ r io.Reader }

func (ro readerOnly) Read(p []byte) (int, error)  { return ro.r.Read(p) }
func (ro readerOnly) Write(p []byte) (int, error) { return len(p), nil }

// normalize maps nil slices to empty ones so gob's nil/empty collapse
// does not fail the exact comparison.
func normalize(m *Message) *Message {
	c := *m
	if c.Report != nil {
		r := *c.Report
		if r.Stats == nil {
			r.Stats = []KeyStatWire{}
		}
		if r.Split == nil {
			r.Split = []tuple.Key{}
		}
		if r.Changed == nil {
			r.Changed = []KeyStatWire{}
		}
		if r.Retired == nil {
			r.Retired = []tuple.Key{}
		}
		c.Report = &r
	}
	if c.Split != nil {
		s := *c.Split
		if s.Set == nil {
			s.Set = []SplitEntry{}
		}
		c.Split = &s
	}
	if c.Plan != nil {
		p := *c.Plan
		if p.Table == nil {
			p.Table = []RouteEntry{}
		}
		if p.Moved == nil {
			p.Moved = []RouteEntry{}
		}
		c.Plan = &p
	}
	if c.State != nil {
		s := *c.State
		if len(s.Payload) == 0 {
			s.Payload = []byte{}
		}
		c.State = &s
	}
	if c.Harvested != nil {
		h := *c.Harvested
		if h.ArrivedCost == nil {
			h.ArrivedCost = []int64{}
		}
		if h.ArrivedTuples == nil {
			h.ArrivedTuples = []int64{}
		}
		if h.MigPenalty == nil {
			h.MigPenalty = []int64{}
		}
		if h.Resizes == nil {
			h.Resizes = []int{}
		}
		c.Harvested = &h
	}
	if c.Batch != nil {
		b := *c.Batch
		if b.Tuples == nil {
			b.Tuples = []tuple.Tuple{}
		}
		c.Batch = &b
	}
	if c.ConnStats != nil {
		s := *c.ConnStats
		if s.Conns == nil {
			s.Conns = []ConnStat{}
		}
		c.ConnStats = &s
	}
	return &c
}
