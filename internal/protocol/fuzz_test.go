package protocol

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/tuple"
)

// fuzzRNG is a tiny deterministic splitmix64 over the fuzz input, so
// one (seed, shape) pair expands into arbitrary message contents
// without the fuzzer having to guess gob framing bytes.
type fuzzRNG struct{ s uint64 }

func (r *fuzzRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *fuzzRNG) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// buildMessage deterministically expands (seed, kind, n) into one
// message of the chosen kind with n-scaled contents — including the
// empty-table / empty-stats / zero-Moved corners when n lands on 0.
func buildMessage(seed uint64, kind, n int) *Message {
	r := &fuzzRNG{s: seed}
	entries := func(c int) []RouteEntry {
		if c == 0 {
			return nil
		}
		out := make([]RouteEntry, c)
		for i := range out {
			out[i] = RouteEntry{Key: tuple.Key(r.next()), Dest: r.intn(64)}
		}
		return out
	}
	switch kind % 8 {
	case 0:
		rep := &LoadReport{
			TaskID: r.intn(32), Interval: int64(r.intn(1000)),
			Tasks: r.intn(32) + 1, Capacity: int64(r.next() % 1e6),
			Emitted: int64(r.next() % 1e6), Budget: int64(r.next() % 1e6),
			Routable: r.intn(2) == 0, Resizable: r.intn(2) == 0,
		}
		for i := 0; i < r.intn(n+1); i++ {
			rep.Split = append(rep.Split, tuple.Key(r.next()))
		}
		wire := func() KeyStatWire {
			return KeyStatWire{
				Key: tuple.Key(r.next()), Cost: int64(r.intn(1e6)),
				Freq: int64(r.intn(1e6)), Mem: int64(r.intn(1e6)), Hash: r.intn(64),
			}
		}
		switch r.intn(3) {
		case 0: // legacy per-interval report
			for i := 0; i < n; i++ {
				rep.Stats = append(rep.Stats, wire())
			}
		case 1: // epoch-stamped full rebase
			rep.Epoch = r.next()%1e6 + 1
			for i := 0; i < n; i++ {
				rep.Stats = append(rep.Stats, wire())
			}
		default: // delta form (n == 0 is the empty-delta corner)
			rep.Epoch = r.next()%1e6 + 1
			rep.Delta = true
			for i := 0; i < n; i++ {
				rep.Changed = append(rep.Changed, wire())
			}
			for i := 0; i < r.intn(n+1); i++ {
				rep.Retired = append(rep.Retired, tuple.Key(r.next()))
			}
		}
		return &Message{Report: rep}
	case 1:
		return &Message{Plan: &PlanAnnounce{
			Interval: int64(r.intn(1000)),
			Table:    entries(n),
			Moved:    entries(r.intn(n + 1)),
			Algorithm: map[int]string{
				0: "", 1: "Mixed", 2: "MinTable",
			}[r.intn(3)],
			GenTime: time.Duration(r.next() % uint64(time.Second)),
		}}
	case 2:
		delta := 1
		if r.intn(2) == 0 {
			delta = -1
		}
		return &Message{ResizeCmd: &Resize{Interval: int64(r.intn(1000)), Delta: delta}}
	case 3:
		var payload []byte
		if n > 0 {
			payload = make([]byte, n%4096)
			for i := range payload {
				payload[i] = byte(r.next())
			}
		}
		return &Message{State: &StateTransfer{
			Key: tuple.Key(r.next()), From: r.intn(64), To: r.intn(64),
			Size: int64(r.intn(1e6)), Payload: payload,
		}}
	case 4:
		return &Message{Ack: &Ack{TaskID: r.intn(64), Interval: int64(r.intn(1000))}}
	case 5:
		return &Message{Resume: &Resume{Interval: int64(r.intn(1000))}}
	case 6:
		ann := &SplitAnnounce{Interval: int64(r.intn(1000))}
		for i := 0; i < n%64; i++ {
			ann.Set = append(ann.Set, SplitEntry{Key: tuple.Key(r.next()), Fan: r.intn(16) + 2})
		}
		return &Message{Split: ann}
	default:
		return &Message{ResyncReq: &Resync{Interval: int64(r.intn(1000))}}
	}
}

// FuzzCodecRoundTrip drives arbitrary messages of every kind through
// the gob codec and requires the decoded value to reproduce the
// original exactly — the property the wire transport's equivalence
// with the loopback rests on. Seeds cover every kind at empty,
// single-entry and many-entry sizes (empty routing tables, multi-entry
// Moved sets, delta reports with empty change sets included).
func FuzzCodecRoundTrip(f *testing.F) {
	for kind := 0; kind < 8; kind++ {
		for _, n := range []int{0, 1, 17} {
			f.Add(uint64(kind*31+n), kind, n)
		}
	}
	f.Fuzz(func(t *testing.T, seed uint64, kind, n int) {
		if n < 0 {
			n = -n
		}
		n %= 1 << 12
		orig := buildMessage(seed, kind, n)

		var buf bytes.Buffer
		c := NewCodec(&buf)
		if err := c.Send(orig); err != nil {
			t.Fatalf("send %s: %v", orig.Kind(), err)
		}
		got, err := c.Recv()
		if err != nil {
			t.Fatalf("recv %s: %v", orig.Kind(), err)
		}
		if got.Kind() != orig.Kind() {
			t.Fatalf("kind %s decoded as %s", orig.Kind(), got.Kind())
		}
		// Gob does not distinguish nil from empty slices; normalize
		// before the exact comparison.
		if !reflect.DeepEqual(normalize(orig), normalize(got)) {
			t.Fatalf("round trip altered the message:\n sent %#v\n got  %#v", orig, got)
		}

		// A second message on the same stream must also survive (gob
		// streams carry type state across values).
		orig2 := buildMessage(seed^0xabcdef, kind+1, n/2+1)
		if err := c.Send(orig2); err != nil {
			t.Fatalf("second send: %v", err)
		}
		got2, err := c.Recv()
		if err != nil {
			t.Fatalf("second recv: %v", err)
		}
		if !reflect.DeepEqual(normalize(orig2), normalize(got2)) {
			t.Fatalf("second round trip altered the message:\n sent %#v\n got  %#v", orig2, got2)
		}
	})
}

// normalize maps nil slices to empty ones so gob's nil/empty collapse
// does not fail the exact comparison.
func normalize(m *Message) *Message {
	c := *m
	if c.Report != nil {
		r := *c.Report
		if r.Stats == nil {
			r.Stats = []KeyStatWire{}
		}
		if r.Split == nil {
			r.Split = []tuple.Key{}
		}
		if r.Changed == nil {
			r.Changed = []KeyStatWire{}
		}
		if r.Retired == nil {
			r.Retired = []tuple.Key{}
		}
		c.Report = &r
	}
	if c.Split != nil {
		s := *c.Split
		if s.Set == nil {
			s.Set = []SplitEntry{}
		}
		c.Split = &s
	}
	if c.Plan != nil {
		p := *c.Plan
		if p.Table == nil {
			p.Table = []RouteEntry{}
		}
		if p.Moved == nil {
			p.Moved = []RouteEntry{}
		}
		c.Plan = &p
	}
	if c.State != nil {
		s := *c.State
		if len(s.Payload) == 0 {
			s.Payload = []byte{}
		}
		c.State = &s
	}
	return &c
}
