package protocol

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/tuple"
)

// Mirror is the controller-side retained model of every task's tracked
// population, the receiving half of the incremental-report protocol: a
// full report rebases one task's run, a delta report folds Changed and
// Retired into the previous run, and the mirror hands back effective
// full reports so the rest of the controller (SnapshotFromReports, the
// policies) is oblivious to which form crossed the wire.
//
// Epochs are tracked per task: each report must carry exactly the
// mirror's epoch + 1 for its task, or be a full rebase. Any gap —
// lost message, restarted stage, task-count change announced by delta
// — makes Apply return an error without touching the mirror, and the
// control loop answers with a Resync so the stage resends the round in
// full. After the controller issues any command it calls Reset: the
// command's side effects (migrations, resizes, split churn) land in
// the next close's delta on the stage side, but the symmetric rule
// "stage forces full after executing a command, controller forgets
// after sending one" keeps both ends in step without negotiation.
type Mirror struct {
	epochs []uint64
	runs   [][]KeyStatWire
	// spare holds each task's run buffer from two rounds ago, recycled
	// as the next merge's output so steady-state rounds allocate
	// nothing population-sized. Effective reports returned by Apply are
	// therefore valid only until the second following Apply — the
	// control loop consumes them within the round.
	spare [][]KeyStatWire
	// drop is the merge's reusable Δkey membership set, probed once per
	// retained entry of the previous run.
	drop stats.KeySet
}

// NewMirror returns an empty mirror; the first round it sees must be
// full reports.
func NewMirror() *Mirror { return &Mirror{} }

// Reset forgets the mirrored populations; the next round must be full.
func (m *Mirror) Reset() {
	m.epochs = m.epochs[:0]
	m.runs = m.runs[:0]
}

// Apply folds one round of reports (one per task, any order) into the
// mirror and returns the round as effective full reports: full reports
// pass through, delta reports are replaced by a copy whose Stats is
// the task's reconstructed population run. Reports with Epoch 0 (the
// legacy form) bypass the mirror entirely and are returned unchanged.
// On error the mirror is left exactly as it was — the caller requests
// a resync and retries Apply with the full round.
func (m *Mirror) Apply(reports []*LoadReport) ([]*LoadReport, error) {
	legacy, incremental := 0, 0
	for _, r := range reports {
		if r.Epoch == 0 {
			legacy++
		} else {
			incremental++
		}
	}
	if incremental == 0 {
		return reports, nil
	}
	if legacy != 0 {
		return nil, fmt.Errorf("protocol: round mixes %d legacy and %d epoch-stamped reports", legacy, incremental)
	}
	tasks := len(reports)
	resized := len(m.runs) != tasks
	// Stage every new run before committing, so a failed delta cannot
	// leave the mirror half-advanced.
	newRuns := make([][]KeyStatWire, tasks)
	newEpochs := make([]uint64, tasks)
	seen := make([]bool, tasks)
	for _, r := range reports {
		if r.TaskID < 0 || r.TaskID >= tasks {
			return nil, fmt.Errorf("protocol: report task %d outside round of %d", r.TaskID, tasks)
		}
		if seen[r.TaskID] {
			return nil, fmt.Errorf("protocol: duplicate report for task %d", r.TaskID)
		}
		seen[r.TaskID] = true
		if !r.Delta {
			newRuns[r.TaskID] = r.Stats
			newEpochs[r.TaskID] = r.Epoch
			continue
		}
		if resized {
			return nil, fmt.Errorf("protocol: delta report for task %d but task count changed %d → %d", r.TaskID, len(m.runs), tasks)
		}
		if want := m.epochs[r.TaskID] + 1; r.Epoch != want {
			return nil, fmt.Errorf("protocol: task %d delta epoch %d, mirror expects %d", r.TaskID, r.Epoch, want)
		}
		var buf []KeyStatWire
		if r.TaskID < len(m.spare) {
			buf = m.spare[r.TaskID][:0]
		}
		newRuns[r.TaskID] = m.mergeWireRun(buf, m.runs[r.TaskID], r.Changed, r.Retired)
		newEpochs[r.TaskID] = r.Epoch
	}
	// Commit, recycling each replaced run buffer for the merge after
	// next. An empty delta carries the old run forward unchanged — that
	// slice stays live as the new run and must not become scratch.
	oldRuns := m.runs
	m.runs = newRuns
	m.epochs = newEpochs
	if len(m.spare) != tasks {
		m.spare = make([][]KeyStatWire, tasks)
	}
	for t := 0; t < tasks && t < len(oldRuns); t++ {
		old := oldRuns[t]
		if len(old) == 0 || (len(newRuns[t]) > 0 && &old[0] == &newRuns[t][0]) {
			continue
		}
		m.spare[t] = old
	}
	out := make([]*LoadReport, len(reports))
	for i, r := range reports {
		if !r.Delta {
			out[i] = r
			continue
		}
		eff := *r
		eff.Delta = false
		eff.Changed, eff.Retired = nil, nil
		eff.Stats = newRuns[r.TaskID]
		out[i] = &eff
	}
	return out, nil
}

// wireLess is KeyStatLess restricted to one task's run: cost
// descending, key ascending (Dest is constant within a run, so this is
// a strict total order over a run's unique keys).
func wireLess(a, b KeyStatWire) bool {
	if a.Cost != b.Cost {
		return a.Cost > b.Cost
	}
	return a.Key < b.Key
}

// mergeWireRun rebuilds one task's population run from the previous
// run plus one delta, with a single linear merge — the mirror-side
// twin of the tracker's aggregate merge, producing exactly the run a
// full report would have carried.
func (m *Mirror) mergeWireRun(buf, old, changed []KeyStatWire, retired []tuple.Key) []KeyStatWire {
	if len(changed) == 0 && len(retired) == 0 {
		return old
	}
	m.drop.Reset(len(changed) + len(retired))
	for i := range changed {
		m.drop.Add(changed[i].Key)
	}
	for _, k := range retired {
		m.drop.Add(k)
	}
	out := buf
	if cap(out) < len(old)+len(changed) {
		out = make([]KeyStatWire, 0, len(old)+len(changed))
	}
	i := 0
	for _, ks := range old {
		if m.drop.Has(ks.Key) {
			continue
		}
		for i < len(changed) && wireLess(changed[i], ks) {
			out = append(out, changed[i])
			i++
		}
		out = append(out, ks)
	}
	out = append(out, changed[i:]...)
	return out
}
