package protocol

import (
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
)

// Length framing for the socket transport. The gob Codec already
// stages every message into one retained buffer and issues exactly one
// Write per Send; the framed layer prefixes that write with a 4-byte
// big-endian length so a socket reader can distinguish a cleanly
// closed stream from one cut mid-message. A zero-length frame is the
// clean-shutdown marker: the peer announced it is done, and the reader
// reports io.EOF from then on. Anything else that ends early — a
// stream cut inside a header or inside a frame body — surfaces as a
// truncation error wrapping io.ErrUnexpectedEOF, never as a silently
// short message.
//
// The framed layer sits beneath the Codec, so SentBytes/RecvBytes keep
// counting gob payload bytes only (frame headers excluded) — the
// counters stay comparable between loopback, pipe and socket
// transports.

// maxFrame bounds a single framed message. Nothing the control or data
// plane sends approaches it; its job is to turn a corrupted or hostile
// length prefix into an immediate error instead of an attempted
// 4 GiB allocation.
const maxFrame = 1 << 28

// frameHeaderLen is the length-prefix size in bytes.
const frameHeaderLen = 4

// ErrFrameTooLarge reports a length prefix exceeding maxFrame.
var ErrFrameTooLarge = errors.New("protocol: frame exceeds size limit")

// frameWriter turns the Codec's single Write per message into one
// header-prefixed write. The header and payload are staged into one
// retained buffer so the underlying stream still sees a single Write
// per message (one syscall on a real socket).
type frameWriter struct {
	w   io.Writer
	buf []byte
}

func (fw *frameWriter) Write(p []byte) (int, error) {
	if len(p) > maxFrame {
		return 0, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(p))
	}
	need := frameHeaderLen + len(p)
	if cap(fw.buf) < need {
		fw.buf = make([]byte, need)
	}
	fw.buf = fw.buf[:need]
	binary.BigEndian.PutUint32(fw.buf[:frameHeaderLen], uint32(len(p)))
	copy(fw.buf[frameHeaderLen:], p)
	if _, err := fw.w.Write(fw.buf); err != nil {
		return 0, err
	}
	return len(p), nil
}

// frameReader reassembles framed messages and serves their payload
// bytes to the gob decoder. The payload buffer is retained across
// frames, so steady-state reads allocate nothing.
type frameReader struct {
	r    io.Reader
	buf  []byte
	off  int
	n    int
	done bool
	hdr  [frameHeaderLen]byte
}

func (fr *frameReader) Read(p []byte) (int, error) {
	if fr.done {
		return 0, io.EOF
	}
	for fr.off == fr.n {
		if err := fr.fill(); err != nil {
			return 0, err
		}
		if fr.done {
			return 0, io.EOF
		}
	}
	n := copy(p, fr.buf[fr.off:fr.n])
	fr.off += n
	return n, nil
}

// fill reads the next frame into the retained buffer. A clean EOF at a
// frame boundary is a closed stream; an EOF inside the header or the
// body is a truncation error.
func (fr *frameReader) fill() error {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		if err == io.EOF {
			// Stream closed between frames without the shutdown marker:
			// still a clean end (the peer's process exited).
			fr.done = true
			return nil
		}
		return fmt.Errorf("protocol: truncated frame header: %w", io.ErrUnexpectedEOF)
	}
	size := binary.BigEndian.Uint32(fr.hdr[:])
	if size == 0 {
		// Clean-shutdown marker.
		fr.done = true
		return nil
	}
	if size > maxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, size)
	}
	if cap(fr.buf) < int(size) {
		fr.buf = make([]byte, size)
	}
	fr.buf = fr.buf[:size]
	if n, err := io.ReadFull(fr.r, fr.buf); err != nil {
		return fmt.Errorf("protocol: truncated frame (%d of %d bytes): %w", n, size, io.ErrUnexpectedEOF)
	}
	fr.off, fr.n = 0, int(size)
	return nil
}

// frame returns the next whole frame payload. The returned slice
// aliases the retained buffer and is valid until the next frame or
// Read. io.EOF marks a clean shutdown; truncation surfaces as an
// io.ErrUnexpectedEOF-wrapped error, exactly like Read.
func (fr *frameReader) frame() ([]byte, error) {
	if fr.done {
		return nil, io.EOF
	}
	for fr.off == fr.n {
		if err := fr.fill(); err != nil {
			return nil, err
		}
		if fr.done {
			return nil, io.EOF
		}
	}
	p := fr.buf[fr.off:fr.n]
	fr.off = fr.n
	return p, nil
}

// framedSource feeds the gob decoder from a frameReader. It implements
// io.ByteReader so gob reads it directly instead of wrapping it in a
// bufio.Reader — bufio would read ahead past the current message's
// frames, which breaks the gob→binary mode switch after the handshake
// (the binary dispatcher needs the next frame untouched). Bytes served
// are counted into the codec's receive counter.
type framedSource struct {
	fr *frameReader
	n  *atomic.Int64
}

func (s *framedSource) Read(p []byte) (int, error) {
	n, err := s.fr.Read(p)
	s.n.Add(int64(n))
	return n, err
}

func (s *framedSource) ReadByte() (byte, error) {
	fr := s.fr
	if fr.done {
		return 0, io.EOF
	}
	for fr.off == fr.n {
		if err := fr.fill(); err != nil {
			return 0, err
		}
		if fr.done {
			return 0, io.EOF
		}
	}
	b := fr.buf[fr.off]
	fr.off++
	s.n.Add(1)
	return b, nil
}

// NewFramedCodec wraps a byte stream in length framing and returns a
// Codec speaking gob over it. It is the socket-transport variant of
// NewCodec: same message encoding, same counters, plus frame
// boundaries so truncation is always detected and shutdown is clean.
func NewFramedCodec(rw io.ReadWriter) *Codec {
	c := &Codec{w: &frameWriter{w: rw}}
	c.fr = &frameReader{r: rw}
	c.enc = gob.NewEncoder(&c.buf)
	c.dec = gob.NewDecoder(&framedSource{fr: c.fr, n: &c.rcvd})
	return c
}

// WriteShutdownFrame writes the zero-length clean-shutdown marker,
// telling the peer's framed reader to report io.EOF after draining
// everything sent before it.
func WriteShutdownFrame(w io.Writer) error {
	var hdr [frameHeaderLen]byte
	_, err := w.Write(hdr[:])
	return err
}
