package protocol

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/internal/tuple"
)

// binaryPair returns a sender and receiver codec speaking the binary
// wire over one in-memory stream.
func binaryPair(buf *bytes.Buffer) (*Codec, *Codec) {
	send := NewFramedCodec(buf)
	recv := NewFramedCodec(readerOnly{buf})
	send.EnableBinary()
	recv.EnableBinary()
	return send, recv
}

// TestBinaryRoundTripAllKinds drives every message kind through the
// binary wire — hand-rolled hot kinds and gob-fallback rare kinds alike
// — and requires exact reproduction.
func TestBinaryRoundTripAllKinds(t *testing.T) {
	var buf bytes.Buffer
	send, recv := binaryPair(&buf)
	for kind := 0; kind < 19; kind++ {
		for _, n := range []int{0, 1, 33} {
			orig := buildMessage(uint64(kind*131+n), kind, n)
			if err := send.Send(orig); err != nil {
				t.Fatalf("send %s (n=%d): %v", orig.Kind(), n, err)
			}
			got, err := recv.Recv()
			if err != nil {
				t.Fatalf("recv %s (n=%d): %v", orig.Kind(), n, err)
			}
			if got.Kind() != orig.Kind() {
				t.Fatalf("kind %s decoded as %s", orig.Kind(), got.Kind())
			}
			if !reflect.DeepEqual(normalize(orig), normalize(got)) {
				t.Fatalf("%s (n=%d) altered:\n sent %#v\n got  %#v", orig.Kind(), n, orig, got)
			}
		}
	}
}

// TestBinaryValueTags round-trips every tagged tuple.Value type plus
// the gob escape hatch, including negative and boundary numerics.
func TestBinaryValueTags(t *testing.T) {
	values := []any{
		nil,
		int64(0), int64(-1), int64(1 << 62), int64(-1 << 62),
		int(42), int(-42),
		uint64(0), uint64(1<<64 - 1),
		float64(0), float64(-3.25), float64(1e308),
		"", "counts", strings.Repeat("x", 300),
		[]byte{}, []byte{0, 255, 7},
		tuple.Key(0), tuple.Key(1<<64 - 1),
		[]tuple.Key{}, []tuple.Key{1, 1 << 40},
	}
	var buf bytes.Buffer
	send, recv := binaryPair(&buf)
	ts := make([]tuple.Tuple, len(values))
	for i, v := range values {
		ts[i] = tuple.Tuple{Key: tuple.Key(i), Value: v}
	}
	if err := send.Send(&Message{Batch: &TupleBatch{Tuples: ts}}); err != nil {
		t.Fatalf("send: %v", err)
	}
	got, err := recv.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	for i, v := range values {
		g := got.Batch.Tuples[i].Value
		// Empty slices may decode nil; normalize.
		if b, ok := v.([]byte); ok && len(b) == 0 {
			if gb, ok := g.([]byte); !ok || len(gb) != 0 {
				t.Fatalf("value %d: %#v → %#v", i, v, g)
			}
			continue
		}
		if k, ok := v.([]tuple.Key); ok && len(k) == 0 {
			if gk, ok := g.([]tuple.Key); !ok || len(gk) != 0 {
				t.Fatalf("value %d: %#v → %#v", i, v, g)
			}
			continue
		}
		if !reflect.DeepEqual(v, g) {
			t.Fatalf("value %d: sent %#v (%T), got %#v (%T)", i, v, v, g, g)
		}
	}
}

// TestBinaryCoalescedBounds pins the coalescing contract: a frame built
// chunk by chunk with the exported header/chunk helpers decodes into
// one TupleBatch whose Bounds replay the exact chunk sequence.
func TestBinaryCoalescedBounds(t *testing.T) {
	chunks := [][]tuple.Tuple{
		{tuple.New(1, int64(10)), tuple.New(2, int64(20))},
		{tuple.New(3, nil)},
		{},
		{tuple.New(4, "s"), tuple.New(5, []tuple.Key{6, 7}), tuple.New(6, nil)},
	}
	frame := AppendBatchHeader(nil)
	for _, ch := range chunks {
		var err error
		if frame, err = AppendBatchChunk(frame, ch); err != nil {
			t.Fatalf("append chunk: %v", err)
		}
	}
	PatchBatchHeader(frame, len(chunks))

	var buf bytes.Buffer
	send, recv := binaryPair(&buf)
	if err := send.SendFrame(frame); err != nil {
		t.Fatalf("send frame: %v", err)
	}
	got, err := recv.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if got.Batch == nil {
		t.Fatalf("decoded %s, want batch", got.Kind())
	}
	var replayed [][]tuple.Tuple
	got.Batch.Chunks(func(ts []tuple.Tuple) {
		replayed = append(replayed, append([]tuple.Tuple(nil), ts...))
	})
	if len(replayed) != len(chunks) {
		t.Fatalf("replayed %d chunks, want %d", len(replayed), len(chunks))
	}
	for i := range chunks {
		if len(replayed[i]) != len(chunks[i]) {
			t.Fatalf("chunk %d: %d tuples, want %d", i, len(replayed[i]), len(chunks[i]))
		}
		for j := range chunks[i] {
			if !reflect.DeepEqual(chunks[i][j], replayed[i][j]) {
				t.Fatalf("chunk %d tuple %d: %+v, want %+v", i, j, replayed[i][j], chunks[i][j])
			}
		}
	}
}

// TestBinaryModeSwitch pins the handshake pattern: a stream that starts
// in gob (Hello/Welcome) and switches both sides to binary afterwards
// keeps decoding cleanly — the framed gob decoder must not read ahead
// past its own messages.
func TestBinaryModeSwitch(t *testing.T) {
	var buf bytes.Buffer
	send := NewFramedCodec(&buf)
	recv := NewFramedCodec(readerOnly{&buf})

	// Handshake in gob, then data in binary — all queued on one stream
	// before the receiver starts, the worst case for readahead.
	if err := send.Send(&Message{Hello: &Hello{Proto: 1, Role: "data", Features: 1}}); err != nil {
		t.Fatalf("send hello: %v", err)
	}
	send.EnableBinary()
	batch := &Message{Batch: &TupleBatch{Tuples: []tuple.Tuple{tuple.New(7, int64(9))}}}
	if err := send.Send(batch); err != nil {
		t.Fatalf("send batch: %v", err)
	}
	if err := send.Send(&Message{FlushReq: &Flush{Seq: 3}}); err != nil {
		t.Fatalf("send flush: %v", err)
	}

	m, err := recv.Recv()
	if err != nil || m.Hello == nil {
		t.Fatalf("recv hello = %v, %v", m, err)
	}
	recv.EnableBinary()
	m, err = recv.Recv()
	if err != nil || m.Batch == nil || m.Batch.Tuples[0].Key != 7 {
		t.Fatalf("recv batch = %v, %v", m, err)
	}
	m, err = recv.Recv()
	if err != nil || m.FlushReq == nil || m.FlushReq.Seq != 3 {
		t.Fatalf("recv flush = %v, %v", m, err)
	}
}

// TestBinaryHostileInputs feeds corrupt frames to the binary decoder
// and requires clean errors — wrong kinds, hostile counts, truncated
// columns, trailing garbage — never a panic or a giant allocation.
func TestBinaryHostileInputs(t *testing.T) {
	cases := map[string][]byte{
		"empty frame":          {},
		"unknown kind":         {0x7f},
		"batch no header":      {kindBatch},
		"batch huge nsub":      {kindBatch, 0xff, 0xff, 0xff, 0xff},
		"batch huge ntuples":   {kindBatch, 0, 0, 0, 1, 0xff, 0xff, 0xff, 0xff},
		"batch cut column":     {kindBatch, 0, 0, 0, 1, 0, 0, 0, 2, 5},
		"batch trailing bytes": append(mustBatchFrame(t), 0xaa),
		"batch bad value tag":  {kindBatch, 0, 0, 0, 1, 0, 0, 0, 1, 1, 2, 2, 2, 2, 0, 0x6f},
		"flush short":          {kindFlush, 1, 2, 3},
		"report cut":           {kindReport, 0x80},
		"report huge keystats": {kindReport, 2, 4, 6, 0, 0xff, 0xff, 0x7f},
		"ack cut":              {kindAck, 2},
		"resume trailing":      {kindResume, 2, 9},
		"start cut":            {kindStart, 2},
		"close trailing":       {kindClose, 2, 9},
		"harvest cut":          {kindHarvestReq, 2, 4},
		"harvested cut float":  {kindHarvestDone, 2, 4, 0, 0, 0, 0, 0, 2, 2, 1, 2, 3},
		"harvested huge list":  {kindHarvestDone, 2, 4, 0, 0xff, 0xff, 0x7f},
		"gob garbage":          {kindGob, 0xde, 0xad, 0xbe, 0xef},
	}
	for name, payload := range cases {
		t.Run(name, func(t *testing.T) {
			var stream []byte
			stream = append(stream, byte(len(payload)>>24), byte(len(payload)>>16), byte(len(payload)>>8), byte(len(payload)))
			stream = append(stream, payload...)
			c := NewFramedCodec(readerOnly{bytes.NewReader(stream)})
			c.EnableBinary()
			if m, err := c.Recv(); err == nil {
				t.Fatalf("hostile frame decoded as %s", m.Kind())
			} else if errors.Is(err, io.EOF) && len(payload) > 0 {
				t.Fatalf("hostile frame read as clean EOF: %v", err)
			}
		})
	}
}

func mustBatchFrame(t *testing.T) []byte {
	t.Helper()
	frame := AppendBatchHeader(nil)
	frame, err := AppendBatchChunk(frame, []tuple.Tuple{tuple.New(1, nil)})
	if err != nil {
		t.Fatal(err)
	}
	PatchBatchHeader(frame, 1)
	return frame
}

// benchBatch builds a realistic steady-state batch: socialpipe-shaped
// tuples (small keys, cost 1, a stream tag on some). Scalar batches
// carry only nil and small-int64 values (the count→topk edge's shape),
// so a zero-alloc decode is possible; composite batches add
// []tuple.Key values (the parse→count edge), which inherently allocate
// one slice per value on decode.
func benchBatch(n int, composite bool) []tuple.Tuple {
	r := &fuzzRNG{s: 0x5eed}
	ts := make([]tuple.Tuple, n)
	for i := range ts {
		ts[i] = tuple.Tuple{
			Key: tuple.Key(r.next() % 4096), Cost: 1, StateSize: 1,
			Seq: uint64(i), EmitTick: 7,
		}
		switch {
		case i%2 == 0:
			ts[i].Stream = "counts"
			ts[i].Value = int64(r.next() % 100)
		case composite:
			ts[i].Value = []tuple.Key{tuple.Key(r.next() % 4096), tuple.Key(r.next() % 4096)}
		}
	}
	return ts
}

// discardRW swallows writes; reads never happen.
type discardRW struct{}

func (discardRW) Read(p []byte) (int, error)  { return 0, io.EOF }
func (discardRW) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkTupleBatchCodec measures the data-plane hot path per codec:
// one 256-tuple TupleBatch encoded and decoded per iteration. The
// binary wire must run amortized zero allocations per message in both
// directions (pooled scratch, retained decode storage); gob is the
// baseline it replaces.
func BenchmarkTupleBatchCodec(b *testing.B) {
	const batchSize = 256

	bench := func(b *testing.B, msg *Message, mk func(io.ReadWriter) *Codec) {
		b.Run("encode", func(b *testing.B) {
			c := mk(discardRW{})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Send(msg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(c.SentBytes())/float64(b.N)/batchSize, "bytes/tuple")
		})
		b.Run("roundtrip", func(b *testing.B) {
			var buf bytes.Buffer
			send := mk(&buf)
			recv := mk(readerOnly{&buf})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := send.Send(msg); err != nil {
					b.Fatal(err)
				}
				m, err := recv.Recv()
				if err != nil {
					b.Fatal(err)
				}
				if len(m.Batch.Tuples) != batchSize {
					b.Fatalf("decoded %d tuples", len(m.Batch.Tuples))
				}
			}
		})
	}

	mkBinary := func(rw io.ReadWriter) *Codec {
		c := NewFramedCodec(rw)
		c.EnableBinary()
		return c
	}
	for _, shape := range []struct {
		name      string
		composite bool
	}{{"scalar", false}, {"composite", true}} {
		msg := &Message{Batch: &TupleBatch{Tuples: benchBatch(batchSize, shape.composite)}}
		b.Run(shape.name+"/binary", func(b *testing.B) { bench(b, msg, mkBinary) })
		b.Run(shape.name+"/gob", func(b *testing.B) { bench(b, msg, NewFramedCodec) })
	}
}
