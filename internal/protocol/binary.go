package protocol

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"math"

	"repro/internal/tuple"
)

// The binary wire format: a hand-rolled, zero-reflection codec for the
// messages that dominate the wire in steady state — the data plane
// (TupleBatch, Flush), the per-interval control round (LoadReport, Ack,
// Resume, Resync) and the interval drive itself (StartInterval,
// CloseStage, HarvestReq, HarvestDone — one of each per stage per
// interval, which matters because a gob fallback frame is
// self-contained: a fresh encoder re-sends type descriptors and a fresh
// decoder recompiles its engines, several thousand allocations per
// frame). Everything else (handshake, placement, plans,
// state transfers — messages sent once per session or once per command)
// rides as a self-contained gob stream behind a per-frame kind
// dispatch, so no message kind ever needs a binary encoding to cross
// the wire.
//
// Every frame (inside the 4-byte length framing of framing.go) begins
// with one kind byte:
//
//	frame    := len(4,BE) kind payload
//	kind     := 0x00 gob | 0x01 batch | 0x02 flush | 0x03 report
//	          | 0x04 resync | 0x05 ack | 0x06 resume
//	          | 0x07 start | 0x08 close | 0x09 harvest | 0x0a harvested
//
// A batch frame coalesces one or more FeedBatch-sized chunks; the
// sub-batch boundaries are preserved so the receiver replays the exact
// FeedBatch call sequence the sender issued (chunk boundaries drive
// round-robin shuffle routing and arrival accounting, which the
// equivalence pins depend on):
//
//	batch    := nsub(4,BE) sub*
//	sub      := ntuples(4,BE) keys costs states seqs ticks streams values
//
// Columns are varint-packed: keys and seqs as uvarints, costs, state
// sizes and emit ticks as zigzag varints (steady-state values are tiny
// — cost 1, state 1 — so most columns are one byte per tuple). Streams
// are length-prefixed strings (almost always empty: one zero byte);
// values carry a one-byte type tag covering the registered basic types,
// with a per-value self-contained gob blob as the escape hatch for
// exotic application types.
//
// Decode never trusts a length: every count is bounds-checked against
// the remaining payload before any allocation, and every error path
// returns ErrBinaryFrame-wrapped errors — hostile input can make the
// codec fail, never panic or over-allocate.

// Frame kind bytes. kindGob must be zero: a binary-mode peer that
// accidentally feeds a gob stream to the dispatcher fails cleanly on
// the length framing, not silently.
const (
	kindGob byte = iota
	kindBatch
	kindFlush
	kindReport
	kindResync
	kindAck
	kindResume
	kindStart
	kindClose
	kindHarvestReq
	kindHarvestDone
	kindMax
)

// batchHeaderLen is the fixed-width batch frame header: the kind byte
// plus a 4-byte big-endian sub-batch count, patched in place when the
// coalescing sender seals the frame.
const batchHeaderLen = 5

// subHeaderLen is the fixed-width per-sub-batch header (tuple count).
const subHeaderLen = 4

// ErrBinaryFrame tags every decode failure of the binary codec: a
// truncated column, a hostile count, an unknown kind or value tag.
var ErrBinaryFrame = errors.New("protocol: malformed binary frame")

// Value type tags for tuple.Value. The tagged set covers every concrete
// type the in-tree workloads and operators put in tuples; anything else
// falls back to a per-value gob blob (tag valGob), which requires the
// type to be gob-registered exactly as the all-gob wire does.
const (
	valNil byte = iota
	valInt64
	valInt
	valUint64
	valFloat64
	valString
	valBytes
	valKey
	valKeys
	valGob
)

// valueBox wraps an interface value for the gob escape hatch: gob can
// only encode interface-typed data through a concrete wrapper field.
type valueBox struct{ V any }

// appendUvarint/appendSvarint are the column primitives. Signed values
// are zigzag-mapped so small negatives stay small on the wire.
func appendSvarint(dst []byte, v int64) []byte {
	return binary.AppendUvarint(dst, uint64(v)<<1^uint64(v>>63))
}

func unzig(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// cursor is the bounds-checked decode reader over one frame payload.
type cursor struct {
	p   []byte
	off int
}

func (c *cursor) rem() int { return len(c.p) - c.off }

func (c *cursor) fail(what string) error {
	return fmt.Errorf("%w: %s at offset %d of %d", ErrBinaryFrame, what, c.off, len(c.p))
}

func (c *cursor) byte() (byte, error) {
	if c.off >= len(c.p) {
		return 0, c.fail("truncated byte")
	}
	b := c.p[c.off]
	c.off++
	return b, nil
}

func (c *cursor) take(n int) ([]byte, error) {
	if n < 0 || c.rem() < n {
		return nil, c.fail(fmt.Sprintf("truncated %d-byte field", n))
	}
	b := c.p[c.off : c.off+n]
	c.off += n
	return b, nil
}

func (c *cursor) u32() (int, error) {
	b, err := c.take(4)
	if err != nil {
		return 0, err
	}
	return int(binary.BigEndian.Uint32(b)), nil
}

func (c *cursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.p[c.off:])
	if n <= 0 {
		return 0, c.fail("bad uvarint")
	}
	c.off += n
	return v, nil
}

func (c *cursor) svarint() (int64, error) {
	u, err := c.uvarint()
	if err != nil {
		return 0, err
	}
	return unzig(u), nil
}

// count reads a uvarint element count and sanity-checks it against the
// remaining bytes: every element costs at least one byte on the wire,
// so a count exceeding the remainder is hostile and must fail before
// any allocation sized from it.
func (c *cursor) count() (int, error) {
	v, err := c.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(c.rem()) {
		return 0, c.fail(fmt.Sprintf("count %d exceeds %d remaining bytes", v, c.rem()))
	}
	return int(v), nil
}

// appendValue encodes one tuple.Value. The error path is reachable only
// through the gob escape hatch (an unregistered exotic type).
func appendValue(dst []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(dst, valNil), nil
	case int64:
		return appendSvarint(append(dst, valInt64), x), nil
	case int:
		return appendSvarint(append(dst, valInt), int64(x)), nil
	case uint64:
		return binary.AppendUvarint(append(dst, valUint64), x), nil
	case float64:
		return binary.BigEndian.AppendUint64(append(dst, valFloat64), math.Float64bits(x)), nil
	case string:
		dst = binary.AppendUvarint(append(dst, valString), uint64(len(x)))
		return append(dst, x...), nil
	case []byte:
		dst = binary.AppendUvarint(append(dst, valBytes), uint64(len(x)))
		return append(dst, x...), nil
	case tuple.Key:
		return binary.AppendUvarint(append(dst, valKey), uint64(x)), nil
	case []tuple.Key:
		dst = binary.AppendUvarint(append(dst, valKeys), uint64(len(x)))
		for _, k := range x {
			dst = binary.AppendUvarint(dst, uint64(k))
		}
		return dst, nil
	default:
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&valueBox{V: v}); err != nil {
			return nil, fmt.Errorf("protocol: binary codec cannot carry tuple value %T: %w", v, err)
		}
		dst = binary.AppendUvarint(append(dst, valGob), uint64(buf.Len()))
		return append(dst, buf.Bytes()...), nil
	}
}

func (c *cursor) value() (any, error) {
	tag, err := c.byte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case valNil:
		return nil, nil
	case valInt64:
		return c.svarint()
	case valInt:
		v, err := c.svarint()
		return int(v), err
	case valUint64:
		return c.uvarint()
	case valFloat64:
		b, err := c.take(8)
		if err != nil {
			return nil, err
		}
		return math.Float64frombits(binary.BigEndian.Uint64(b)), nil
	case valString:
		n, err := c.count()
		if err != nil {
			return nil, err
		}
		b, err := c.take(n)
		if err != nil {
			return nil, err
		}
		return string(b), nil
	case valBytes:
		n, err := c.count()
		if err != nil {
			return nil, err
		}
		b, err := c.take(n)
		if err != nil {
			return nil, err
		}
		return append([]byte(nil), b...), nil
	case valKey:
		v, err := c.uvarint()
		return tuple.Key(v), err
	case valKeys:
		n, err := c.count()
		if err != nil {
			return nil, err
		}
		out := make([]tuple.Key, n)
		for i := range out {
			v, err := c.uvarint()
			if err != nil {
				return nil, err
			}
			out[i] = tuple.Key(v)
		}
		return out, nil
	case valGob:
		n, err := c.count()
		if err != nil {
			return nil, err
		}
		b, err := c.take(n)
		if err != nil {
			return nil, err
		}
		var box valueBox
		if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&box); err != nil {
			return nil, fmt.Errorf("%w: gob value: %v", ErrBinaryFrame, err)
		}
		return box.V, nil
	default:
		return nil, c.fail(fmt.Sprintf("unknown value tag %#x", tag))
	}
}

// AppendBatchHeader begins a batch frame: the kind byte plus a zeroed
// fixed-width sub-batch count, patched by PatchBatchHeader when the
// frame is sealed. Senders (Codec.Send and the coalescing BatchConn)
// append chunks after it with AppendBatchChunk.
func AppendBatchHeader(dst []byte) []byte {
	return append(dst, kindBatch, 0, 0, 0, 0)
}

// PatchBatchHeader seals a batch frame built on AppendBatchHeader,
// writing the final sub-batch count into the fixed-width header.
func PatchBatchHeader(frame []byte, nsub int) {
	binary.BigEndian.PutUint32(frame[1:batchHeaderLen], uint32(nsub))
}

// AppendBatchChunk appends one FeedBatch chunk as a sub-batch:
// fixed-width tuple count, then the varint-packed columns. It touches
// no shared codec state, so senders encode concurrently outside any
// connection lock and serialize only the socket write.
func AppendBatchChunk(dst []byte, ts []tuple.Tuple) ([]byte, error) {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(ts)))
	for i := range ts {
		dst = binary.AppendUvarint(dst, uint64(ts[i].Key))
	}
	for i := range ts {
		dst = appendSvarint(dst, ts[i].Cost)
	}
	for i := range ts {
		dst = appendSvarint(dst, ts[i].StateSize)
	}
	for i := range ts {
		dst = binary.AppendUvarint(dst, ts[i].Seq)
	}
	for i := range ts {
		dst = appendSvarint(dst, ts[i].EmitTick)
	}
	for i := range ts {
		dst = binary.AppendUvarint(dst, uint64(len(ts[i].Stream)))
		dst = append(dst, ts[i].Stream...)
	}
	var err error
	for i := range ts {
		if dst, err = appendValue(dst, ts[i].Value); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// decodeBatchChunk decodes one sub-batch into dst (appending), returning
// the grown slice. Tuples land in codec-retained storage; every field
// of every appended tuple is written, so no zeroing is needed.
func (c *Codec) decodeBatchChunk(cur *cursor, dst []tuple.Tuple) ([]tuple.Tuple, error) {
	nt, err := cur.u32()
	if err != nil {
		return dst, err
	}
	// Each tuple costs at least 6 bytes (one per varint column plus the
	// value tag); reject hostile counts before sizing the buffer.
	if nt < 0 || nt > cur.rem()/6+1 {
		return dst, cur.fail(fmt.Sprintf("tuple count %d exceeds frame", nt))
	}
	base := len(dst)
	if cap(dst) < base+nt {
		grown := make([]tuple.Tuple, base, base+nt+base/2)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:base+nt]
	sub := dst[base:]
	for i := range sub {
		v, err := cur.uvarint()
		if err != nil {
			return dst, err
		}
		sub[i].Key = tuple.Key(v)
	}
	for i := range sub {
		if sub[i].Cost, err = cur.svarint(); err != nil {
			return dst, err
		}
	}
	for i := range sub {
		if sub[i].StateSize, err = cur.svarint(); err != nil {
			return dst, err
		}
	}
	for i := range sub {
		if sub[i].Seq, err = cur.uvarint(); err != nil {
			return dst, err
		}
	}
	for i := range sub {
		if sub[i].EmitTick, err = cur.svarint(); err != nil {
			return dst, err
		}
	}
	for i := range sub {
		n, err := cur.count()
		if err != nil {
			return dst, err
		}
		b, err := cur.take(n)
		if err != nil {
			return dst, err
		}
		sub[i].Stream = c.internStream(b)
	}
	for i := range sub {
		if sub[i].Value, err = cur.value(); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// internStream maps a decoded stream label to a shared string. Stream
// names are drawn from a tiny fixed vocabulary ("", "counts", "R", …),
// so a small cache removes the per-tuple string allocation; the cache
// is bounded so hostile input cannot grow it without limit.
func (c *Codec) internStream(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := c.strs[string(b)]; ok {
		return s
	}
	s := string(b)
	if c.strs == nil {
		c.strs = make(map[string]string, 8)
	}
	if len(c.strs) < 256 {
		c.strs[s] = s
	}
	return s
}

// decodeBatchFrame decodes a batch frame body into the codec's retained
// tuple buffer. With one sub-batch the message carries no Bounds (the
// uncoalesced form round-trips exactly); with several, Bounds lists the
// sub-batch end offsets so the receiver replays the sender's FeedBatch
// call sequence.
func (c *Codec) decodeBatchFrame(body []byte) (*Message, error) {
	cur := &cursor{p: body}
	nsub, err := cur.u32()
	if err != nil {
		return nil, err
	}
	if nsub < 0 || nsub > cur.rem()/subHeaderLen+1 {
		return nil, cur.fail(fmt.Sprintf("sub-batch count %d exceeds frame", nsub))
	}
	tup := c.tup[:0]
	bounds := c.bounds[:0]
	for i := 0; i < nsub; i++ {
		if tup, err = c.decodeBatchChunk(cur, tup); err != nil {
			c.tup = tup
			return nil, err
		}
		bounds = append(bounds, len(tup))
	}
	if cur.rem() != 0 {
		c.tup = tup
		return nil, cur.fail(fmt.Sprintf("%d trailing bytes", cur.rem()))
	}
	c.tup, c.bounds = tup, bounds
	c.hotBatch.Tuples = tup
	c.hotBatch.Bounds = nil
	if nsub != 1 {
		c.hotBatch.Bounds = bounds
	}
	c.hotMsg = Message{Batch: &c.hotBatch}
	return &c.hotMsg, nil
}

// appendKeyStats encodes a KeyStatWire column run.
func appendKeyStats(dst []byte, ks []KeyStatWire) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ks)))
	for i := range ks {
		dst = binary.AppendUvarint(dst, uint64(ks[i].Key))
		dst = appendSvarint(dst, ks[i].Cost)
		dst = appendSvarint(dst, ks[i].Freq)
		dst = appendSvarint(dst, ks[i].Mem)
		dst = appendSvarint(dst, int64(ks[i].Hash))
	}
	return dst
}

func (c *cursor) keyStats() ([]KeyStatWire, error) {
	n, err := c.count()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	// Each entry costs at least 5 bytes (five varints).
	if n > c.rem()/5+1 {
		return nil, c.fail(fmt.Sprintf("keystat count %d exceeds frame", n))
	}
	out := make([]KeyStatWire, n)
	for i := range out {
		k, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		out[i].Key = tuple.Key(k)
		if out[i].Cost, err = c.svarint(); err != nil {
			return nil, err
		}
		if out[i].Freq, err = c.svarint(); err != nil {
			return nil, err
		}
		if out[i].Mem, err = c.svarint(); err != nil {
			return nil, err
		}
		h, err := c.svarint()
		if err != nil {
			return nil, err
		}
		out[i].Hash = int(h)
	}
	return out, nil
}

func appendKeys(dst []byte, ks []tuple.Key) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ks)))
	for _, k := range ks {
		dst = binary.AppendUvarint(dst, uint64(k))
	}
	return dst
}

func (c *cursor) keys() ([]tuple.Key, error) {
	n, err := c.count()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]tuple.Key, n)
	for i := range out {
		v, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		out[i] = tuple.Key(v)
	}
	return out, nil
}

// Report flag bits (one byte on the wire).
const (
	repDelta     = 1 << 0
	repRoutable  = 1 << 1
	repResizable = 1 << 2
)

// appendReport encodes a LoadReport — all three forms (legacy full,
// epoch-stamped rebase, delta) share the layout; empty sections cost
// one zero byte each.
func appendReport(dst []byte, r *LoadReport) []byte {
	dst = append(dst, kindReport)
	dst = appendSvarint(dst, int64(r.TaskID))
	dst = appendSvarint(dst, r.Interval)
	dst = binary.AppendUvarint(dst, r.Epoch)
	var flags byte
	if r.Delta {
		flags |= repDelta
	}
	if r.Routable {
		flags |= repRoutable
	}
	if r.Resizable {
		flags |= repResizable
	}
	dst = append(dst, flags)
	dst = appendKeyStats(dst, r.Stats)
	dst = appendKeyStats(dst, r.Changed)
	dst = appendKeys(dst, r.Retired)
	dst = appendKeys(dst, r.Split)
	dst = appendSvarint(dst, int64(r.Tasks))
	dst = appendSvarint(dst, r.Capacity)
	dst = appendSvarint(dst, r.Emitted)
	dst = appendSvarint(dst, r.Budget)
	return dst
}

// decodeReport allocates fresh slices: load reports outlive the next
// Recv (the control server collects a round's reports; the mirror
// retains delta runs), so unlike batches they must not alias codec
// storage.
func decodeReport(body []byte) (*Message, error) {
	cur := &cursor{p: body}
	r := &LoadReport{}
	var err error
	var v int64
	if v, err = cur.svarint(); err != nil {
		return nil, err
	}
	r.TaskID = int(v)
	if r.Interval, err = cur.svarint(); err != nil {
		return nil, err
	}
	if r.Epoch, err = cur.uvarint(); err != nil {
		return nil, err
	}
	flags, err := cur.byte()
	if err != nil {
		return nil, err
	}
	r.Delta = flags&repDelta != 0
	r.Routable = flags&repRoutable != 0
	r.Resizable = flags&repResizable != 0
	if r.Stats, err = cur.keyStats(); err != nil {
		return nil, err
	}
	if r.Changed, err = cur.keyStats(); err != nil {
		return nil, err
	}
	if r.Retired, err = cur.keys(); err != nil {
		return nil, err
	}
	if r.Split, err = cur.keys(); err != nil {
		return nil, err
	}
	if v, err = cur.svarint(); err != nil {
		return nil, err
	}
	r.Tasks = int(v)
	if r.Capacity, err = cur.svarint(); err != nil {
		return nil, err
	}
	if r.Emitted, err = cur.svarint(); err != nil {
		return nil, err
	}
	if r.Budget, err = cur.svarint(); err != nil {
		return nil, err
	}
	if cur.rem() != 0 {
		return nil, cur.fail(fmt.Sprintf("%d trailing bytes", cur.rem()))
	}
	return &Message{Report: r}, nil
}

// appendInt64s/appendInts encode a count-prefixed zigzag-varint list.
func appendInt64s(dst []byte, vs []int64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = appendSvarint(dst, v)
	}
	return dst
}

func appendInts(dst []byte, vs []int) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = appendSvarint(dst, int64(v))
	}
	return dst
}

func (c *cursor) int64s() ([]int64, error) {
	n, err := c.count()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	vs := make([]int64, n)
	for i := range vs {
		if vs[i], err = c.svarint(); err != nil {
			return nil, err
		}
	}
	return vs, nil
}

func (c *cursor) ints() ([]int, error) {
	n, err := c.count()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	vs := make([]int, n)
	for i := range vs {
		v, err := c.svarint()
		if err != nil {
			return nil, err
		}
		vs[i] = int(v)
	}
	return vs, nil
}

// HarvestDone flag bits (one byte on the wire).
const (
	hdRebalanced byte = 1 << iota
)

// appendHarvestDone encodes the per-interval stage-close summary: the
// scalar fields as zigzag varints (PlanMs as raw float bits — it is a
// measured duration, not a small integer), the per-instance arrays as
// count-prefixed varint lists.
func appendHarvestDone(dst []byte, h *HarvestDone) []byte {
	dst = append(dst, kindHarvestDone)
	dst = appendSvarint(dst, int64(h.Stage))
	dst = appendSvarint(dst, h.Interval)
	var flags byte
	if h.Rebalanced {
		flags |= hdRebalanced
	}
	dst = append(dst, flags)
	dst = appendInt64s(dst, h.ArrivedCost)
	dst = appendInt64s(dst, h.ArrivedTuples)
	dst = appendInt64s(dst, h.MigPenalty)
	dst = appendInts(dst, h.Resizes)
	dst = appendSvarint(dst, int64(h.Instances))
	dst = appendSvarint(dst, h.LiveState)
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(h.PlanMs))
	dst = appendSvarint(dst, int64(h.TableSize))
	dst = appendSvarint(dst, h.Moved)
	dst = appendSvarint(dst, int64(h.ScaledOut))
	dst = appendSvarint(dst, int64(h.ScaledIn))
	dst = appendSvarint(dst, h.Processed)
	return dst
}

// decodeHarvestDone allocates fresh: the coordinator folds the summary
// into its metrics row after further Recvs on the session may have run.
func decodeHarvestDone(body []byte) (*Message, error) {
	cur := &cursor{p: body}
	h := &HarvestDone{}
	var err error
	var v int64
	if v, err = cur.svarint(); err != nil {
		return nil, err
	}
	h.Stage = int(v)
	if h.Interval, err = cur.svarint(); err != nil {
		return nil, err
	}
	flags, err := cur.byte()
	if err != nil {
		return nil, err
	}
	h.Rebalanced = flags&hdRebalanced != 0
	if h.ArrivedCost, err = cur.int64s(); err != nil {
		return nil, err
	}
	if h.ArrivedTuples, err = cur.int64s(); err != nil {
		return nil, err
	}
	if h.MigPenalty, err = cur.int64s(); err != nil {
		return nil, err
	}
	if h.Resizes, err = cur.ints(); err != nil {
		return nil, err
	}
	if v, err = cur.svarint(); err != nil {
		return nil, err
	}
	h.Instances = int(v)
	if h.LiveState, err = cur.svarint(); err != nil {
		return nil, err
	}
	fb, err := cur.take(8)
	if err != nil {
		return nil, err
	}
	h.PlanMs = math.Float64frombits(binary.BigEndian.Uint64(fb))
	if v, err = cur.svarint(); err != nil {
		return nil, err
	}
	h.TableSize = int(v)
	if h.Moved, err = cur.svarint(); err != nil {
		return nil, err
	}
	if v, err = cur.svarint(); err != nil {
		return nil, err
	}
	h.ScaledOut = int(v)
	if v, err = cur.svarint(); err != nil {
		return nil, err
	}
	h.ScaledIn = int(v)
	if h.Processed, err = cur.svarint(); err != nil {
		return nil, err
	}
	if cur.rem() != 0 {
		return nil, cur.fail(fmt.Sprintf("%d trailing bytes", cur.rem()))
	}
	return &Message{Harvested: h}, nil
}

// sendBinary dispatches one message under the binary wire: hot kinds
// take the hand-rolled encoding through the retained scratch buffer
// (amortized zero allocations per message); everything else becomes a
// self-contained gob stream behind kindGob.
func (c *Codec) sendBinary(m *Message) error {
	switch {
	case m.Batch != nil:
		b := AppendBatchHeader(c.bin[:0])
		nsub := 0
		var err error
		if n := len(m.Batch.Bounds); n > 0 {
			start := 0
			for _, end := range m.Batch.Bounds {
				if end < start || end > len(m.Batch.Tuples) {
					return fmt.Errorf("protocol: batch bounds %v out of range", m.Batch.Bounds)
				}
				if b, err = AppendBatchChunk(b, m.Batch.Tuples[start:end]); err != nil {
					return err
				}
				start = end
				nsub++
			}
		} else {
			if b, err = AppendBatchChunk(b, m.Batch.Tuples); err != nil {
				return err
			}
			nsub = 1
		}
		PatchBatchHeader(b, nsub)
		c.bin = b
		return c.writeFrame(b)
	case m.FlushReq != nil:
		b := append(c.bin[:0], kindFlush)
		b = binary.BigEndian.AppendUint64(b, m.FlushReq.Seq)
		c.bin = b
		return c.writeFrame(b)
	case m.Report != nil:
		c.bin = appendReport(c.bin[:0], m.Report)
		return c.writeFrame(c.bin)
	case m.Ack != nil:
		b := append(c.bin[:0], kindAck)
		b = appendSvarint(b, int64(m.Ack.TaskID))
		b = appendSvarint(b, m.Ack.Interval)
		c.bin = b
		return c.writeFrame(b)
	case m.Resume != nil:
		b := append(c.bin[:0], kindResume)
		b = appendSvarint(b, m.Resume.Interval)
		c.bin = b
		return c.writeFrame(b)
	case m.ResyncReq != nil:
		b := append(c.bin[:0], kindResync)
		b = appendSvarint(b, m.ResyncReq.Interval)
		c.bin = b
		return c.writeFrame(b)
	case m.Start != nil:
		b := append(c.bin[:0], kindStart)
		b = appendSvarint(b, m.Start.Interval)
		b = appendSvarint(b, m.Start.Emit)
		c.bin = b
		return c.writeFrame(b)
	case m.Close != nil:
		b := append(c.bin[:0], kindClose)
		b = appendSvarint(b, int64(m.Close.Stage))
		c.bin = b
		return c.writeFrame(b)
	case m.Harvest != nil:
		b := append(c.bin[:0], kindHarvestReq)
		b = appendSvarint(b, int64(m.Harvest.Stage))
		b = appendSvarint(b, m.Harvest.Interval)
		b = appendSvarint(b, m.Harvest.Emit)
		c.bin = b
		return c.writeFrame(b)
	case m.Harvested != nil:
		c.bin = appendHarvestDone(c.bin[:0], m.Harvested)
		return c.writeFrame(c.bin)
	default:
		// Rare frame: self-contained gob stream (fresh encoder, so the
		// frame carries its own type descriptors and the decoder needs
		// no cross-frame state).
		c.buf.Reset()
		c.buf.WriteByte(kindGob)
		if err := gob.NewEncoder(&c.buf).Encode(m); err != nil {
			return err
		}
		return c.writeFrame(c.buf.Bytes())
	}
}

// recvBinary reads one frame and dispatches on its kind byte. Batch and
// Flush messages (the data-plane hot path) reuse codec-owned storage —
// tuples decode into a pooled retained slice, mirroring the engine's
// recycled feed buffers — and are invalidated by the next Recv on this
// codec; all control-plane messages are freshly allocated.
func (c *Codec) recvBinary() (*Message, error) {
	p, err := c.fr.frame()
	if err != nil {
		return nil, err
	}
	c.rcvd.Add(int64(len(p)))
	if len(p) == 0 {
		return nil, fmt.Errorf("%w: empty frame", ErrBinaryFrame)
	}
	kind, body := p[0], p[1:]
	switch kind {
	case kindGob:
		var m Message
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&m); err != nil {
			return nil, fmt.Errorf("%w: gob frame: %v", ErrBinaryFrame, err)
		}
		return &m, nil
	case kindBatch:
		return c.decodeBatchFrame(body)
	case kindFlush:
		if len(body) != 8 {
			return nil, fmt.Errorf("%w: flush frame has %d payload bytes, want 8", ErrBinaryFrame, len(body))
		}
		c.hotFlush.Seq = binary.BigEndian.Uint64(body)
		c.hotMsg = Message{FlushReq: &c.hotFlush}
		return &c.hotMsg, nil
	case kindReport:
		return decodeReport(body)
	case kindResync:
		cur := &cursor{p: body}
		iv, err := cur.svarint()
		if err != nil || cur.rem() != 0 {
			return nil, cur.fail("resync frame")
		}
		return &Message{ResyncReq: &Resync{Interval: iv}}, nil
	case kindAck:
		cur := &cursor{p: body}
		id, err := cur.svarint()
		if err != nil {
			return nil, err
		}
		iv, err := cur.svarint()
		if err != nil || cur.rem() != 0 {
			return nil, cur.fail("ack frame")
		}
		return &Message{Ack: &Ack{TaskID: int(id), Interval: iv}}, nil
	case kindResume:
		cur := &cursor{p: body}
		iv, err := cur.svarint()
		if err != nil || cur.rem() != 0 {
			return nil, cur.fail("resume frame")
		}
		return &Message{Resume: &Resume{Interval: iv}}, nil
	case kindStart:
		cur := &cursor{p: body}
		iv, err := cur.svarint()
		if err != nil {
			return nil, err
		}
		emit, err := cur.svarint()
		if err != nil || cur.rem() != 0 {
			return nil, cur.fail("start frame")
		}
		return &Message{Start: &StartInterval{Interval: iv, Emit: emit}}, nil
	case kindClose:
		cur := &cursor{p: body}
		st, err := cur.svarint()
		if err != nil || cur.rem() != 0 {
			return nil, cur.fail("close frame")
		}
		return &Message{Close: &CloseStage{Stage: int(st)}}, nil
	case kindHarvestReq:
		cur := &cursor{p: body}
		st, err := cur.svarint()
		if err != nil {
			return nil, err
		}
		iv, err := cur.svarint()
		if err != nil {
			return nil, err
		}
		emit, err := cur.svarint()
		if err != nil || cur.rem() != 0 {
			return nil, cur.fail("harvest frame")
		}
		return &Message{Harvest: &HarvestReq{Stage: int(st), Interval: iv, Emit: emit}}, nil
	case kindHarvestDone:
		return decodeHarvestDone(body)
	default:
		return nil, fmt.Errorf("%w: unknown frame kind %#x", ErrBinaryFrame, kind)
	}
}
