package protocol

import (
	"net"
	"sync"
	"testing"

	"repro/internal/balance"
	"repro/internal/stats"
	"repro/internal/tuple"
)

func TestCodecRoundTripAllKinds(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	ca, cb := NewCodec(a), NewCodec(b)

	msgs := []*Message{
		{Report: &LoadReport{TaskID: 2, Interval: 7, Stats: []KeyStatWire{{Key: 1, Cost: 5, Freq: 3, Mem: 9}}}},
		{Plan: &PlanAnnounce{Interval: 7, Table: []RouteEntry{{Key: 1, Dest: 3}}, Moved: []RouteEntry{{Key: 1, Dest: 3}}}},
		{State: &StateTransfer{Key: 1, From: 0, To: 3, Size: 9, Payload: []byte("window")}},
		{Ack: &Ack{TaskID: 3, Interval: 7}},
		{Resume: &Resume{Interval: 7}},
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, m := range msgs {
			if err := ca.Send(m); err != nil {
				t.Errorf("send %s: %v", m.Kind(), err)
				return
			}
		}
	}()
	wantKinds := []string{"report", "plan", "state", "ack", "resume"}
	for i, want := range wantKinds {
		got, err := cb.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if got.Kind() != want {
			t.Fatalf("message %d kind = %s, want %s", i, got.Kind(), want)
		}
	}
	wg.Wait()

	// Payload fidelity spot checks on a fresh pipe.
	a2, b2 := net.Pipe()
	defer a2.Close()
	defer b2.Close()
	go NewCodec(a2).Send(msgs[2])
	got, err := NewCodec(b2).Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got.State.Payload) != "window" || got.State.Size != 9 {
		t.Fatalf("state transfer corrupted: %+v", got.State)
	}
}

func TestSendRejectsEmpty(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	if err := NewCodec(a).Send(&Message{}); err == nil {
		t.Fatal("empty message accepted")
	}
}

func TestReportFromStatsAndMerge(t *testing.T) {
	r0 := ReportFromStats(0, 5, map[tuple.Key]stats.KeyStat{
		1: {Cost: 4, Freq: 2, Mem: 6},
	})
	r1 := ReportFromStats(1, 5, map[tuple.Key]stats.KeyStat{
		2: {Cost: 9, Freq: 3, Mem: 1},
	})
	merged := MergeReports([]*LoadReport{r0, r1})
	if merged[1].Dest != 0 || merged[2].Dest != 1 {
		t.Fatalf("destinations lost in merge: %+v", merged)
	}
	if merged[2].Cost != 9 || merged[1].Mem != 6 {
		t.Fatalf("values lost in merge: %+v", merged)
	}
}

// TestFullProtocolExchange drives the complete Fig. 5 sequence between
// a controller goroutine and two task goroutines over real pipes: the
// tasks report, the controller plans with the real Mixed planner,
// announces, the source task ships state, acks flow, resume closes the
// round.
func TestFullProtocolExchange(t *testing.T) {
	const interval = 3
	type taskState struct {
		id     int
		stats  map[tuple.Key]stats.KeyStat
		owned  map[tuple.Key][]byte
		paused map[tuple.Key]bool
	}
	// Task 0 is overloaded with five medium keys; task 1 nearly idle.
	t0stats := map[tuple.Key]stats.KeyStat{}
	t0owned := map[tuple.Key][]byte{}
	for k := tuple.Key(10); k < 15; k++ {
		t0stats[k] = stats.KeyStat{Cost: 20, Freq: 20, Mem: 2}
		t0owned[k] = []byte("state-" + string(rune('a'+k-10)))
	}
	tasks := []*taskState{
		{id: 0, stats: t0stats, owned: t0owned, paused: map[tuple.Key]bool{}},
		{id: 1, stats: map[tuple.Key]stats.KeyStat{
			15: {Cost: 20, Freq: 20, Mem: 2},
		}, owned: map[tuple.Key][]byte{15: []byte("x")}, paused: map[tuple.Key]bool{}},
	}

	// Pipes: controller ↔ each task, plus a task0 → task1 data channel.
	c0, t0 := net.Pipe()
	c1, t1 := net.Pipe()
	d01a, d01b := net.Pipe()
	defer func() {
		for _, c := range []net.Conn{c0, t0, c1, t1, d01a, d01b} {
			c.Close()
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, 8)

	// Task goroutines.
	runTask := func(ts *taskState, conn net.Conn, peerSend, peerRecv *Codec) {
		defer wg.Done()
		c := NewCodec(conn)
		// Step 1: report.
		if err := c.Send(&Message{Report: ReportFromStats(ts.id, interval, ts.stats)}); err != nil {
			errs <- err
			return
		}
		// Steps 3–4: receive plan, pause moved keys.
		m, err := c.Recv()
		if err != nil {
			errs <- err
			return
		}
		for _, mv := range m.Plan.Moved {
			ts.paused[mv.Key] = true
			// Step 5: ship state we own that must leave.
			if payload, ok := ts.owned[mv.Key]; ok && mv.Dest != ts.id && peerSend != nil {
				err := peerSend.Send(&Message{State: &StateTransfer{
					Key: mv.Key, From: ts.id, To: mv.Dest,
					Size: int64(len(payload)), Payload: payload,
				}})
				if err != nil {
					errs <- err
					return
				}
				delete(ts.owned, mv.Key)
			}
			// Receive state arriving for us.
			if mv.Dest == ts.id && peerRecv != nil {
				sm, err := peerRecv.Recv()
				if err != nil {
					errs <- err
					return
				}
				ts.owned[sm.State.Key] = sm.State.Payload
			}
		}
		// Step 6: ack.
		if err := c.Send(&Message{Ack: &Ack{TaskID: ts.id, Interval: interval}}); err != nil {
			errs <- err
			return
		}
		// Step 7: resume.
		m, err = c.Recv()
		if err != nil {
			errs <- err
			return
		}
		if m.Kind() != "resume" {
			errs <- errKind{m.Kind()}
			return
		}
		ts.paused = map[tuple.Key]bool{}
	}

	wg.Add(2)
	go runTask(tasks[0], t0, NewCodec(d01a), nil)
	go runTask(tasks[1], t1, nil, NewCodec(d01b))

	// Controller.
	cc := []*Codec{NewCodec(c0), NewCodec(c1)}
	var reports []*LoadReport
	for _, c := range cc {
		m, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, m.Report)
	}
	perKey := MergeReports(reports)
	snap := &stats.Snapshot{Interval: interval, ND: 2}
	for k, ks := range perKey {
		ks.Key = k
		ks.Hash = ks.Dest // hash home = current owner in this toy setup
		snap.Keys = append(snap.Keys, ks)
	}
	stats.SortByCostDesc(snap.Keys)
	plan := balance.Mixed{}.Plan(snap, balance.Config{ThetaMax: 0.2, Beta: 1.5})
	if len(plan.Moved) == 0 {
		t.Fatal("planner did not move the hot key")
	}
	ann := &PlanAnnounce{Interval: interval}
	plan.Table.Each(func(k tuple.Key, d int) { ann.Table = append(ann.Table, RouteEntry{k, d}) })
	for _, k := range plan.Moved {
		ann.Moved = append(ann.Moved, RouteEntry{k, plan.MoveDest[k]})
	}
	for _, c := range cc {
		if err := c.Send(&Message{Plan: ann}); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range cc {
		m, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Kind() != "ack" {
			t.Fatalf("expected ack, got %s", m.Kind())
		}
	}
	for _, c := range cc {
		if err := c.Send(&Message{Resume: &Resume{Interval: interval}}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every moved key's state must now live at its new destination and
	// nowhere else.
	for _, mv := range ann.Moved {
		if mv.Dest != 1 {
			t.Fatalf("toy plan moved key %d to %d, expected everything to task 1", mv.Key, mv.Dest)
		}
		if len(tasks[1].owned[mv.Key]) == 0 {
			t.Fatalf("state for key %d did not arrive", mv.Key)
		}
		if _, still := tasks[0].owned[mv.Key]; still {
			t.Fatalf("state for key %d not removed from source", mv.Key)
		}
	}
}

type errKind struct{ kind string }

func (e errKind) Error() string { return "unexpected message kind " + e.kind }
