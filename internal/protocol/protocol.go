// Package protocol defines the wire messages of the rebalance control
// workflow (Fig. 5) and a gob codec for exchanging them over any
// net.Conn-like transport. The in-process engine applies these steps
// through direct calls (engine.Stage.ApplyPlan); this package carries
// the same protocol across a real network boundary, so a multi-process
// deployment can speak it unchanged:
//
//	task       → controller : LoadReport        (step 1)
//	controller → upstream    : PlanAnnounce+Pause (steps 3–4)
//	source     → destination : StateTransfer     (step 5)
//	task       → controller  : Ack               (step 6)
//	controller → upstream    : Resume            (step 7)
package protocol

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/stats"
	"repro/internal/tuple"
)

// KeyStatWire is the per-key statistics record of a load report: the
// computation cost and windowed memory consumption of §IV step 1.
type KeyStatWire struct {
	Key  tuple.Key
	Cost int64
	Freq int64
	Mem  int64
}

// LoadReport is step 1: one task's interval statistics.
type LoadReport struct {
	TaskID   int
	Interval int64
	Stats    []KeyStatWire
}

// RouteEntry is one routing-table pair (k, d).
type RouteEntry struct {
	Key  tuple.Key
	Dest int
}

// PlanAnnounce is steps 3–4: the new assignment function F′ (as the
// explicit table A′; the hash part is shared configuration) and the
// migration set Δ(F, F′). Receipt implies Pause for the keys in Moved.
type PlanAnnounce struct {
	Interval int64
	Table    []RouteEntry
	Moved    []RouteEntry // key → new destination
}

// StateTransfer is step 5: one key's serialized windowed state moving
// between task instances.
type StateTransfer struct {
	Key      tuple.Key
	From, To int
	Size     int64
	Payload  []byte
}

// Ack is step 6: a task confirms it finished its part of the plan.
type Ack struct {
	TaskID   int
	Interval int64
}

// Resume is step 7: the controller releases the paused keys.
type Resume struct {
	Interval int64
}

// Message is the envelope union; exactly one field is non-nil.
type Message struct {
	Report *LoadReport
	Plan   *PlanAnnounce
	State  *StateTransfer
	Ack    *Ack
	Resume *Resume
}

// Kind names the populated variant, for logging and dispatch.
func (m *Message) Kind() string {
	switch {
	case m.Report != nil:
		return "report"
	case m.Plan != nil:
		return "plan"
	case m.State != nil:
		return "state"
	case m.Ack != nil:
		return "ack"
	case m.Resume != nil:
		return "resume"
	default:
		return "empty"
	}
}

// Codec frames Messages over a byte stream with encoding/gob.
type Codec struct {
	enc *gob.Encoder
	dec *gob.Decoder
}

// NewCodec wraps a bidirectional stream.
func NewCodec(rw io.ReadWriter) *Codec {
	return &Codec{enc: gob.NewEncoder(rw), dec: gob.NewDecoder(rw)}
}

// Send encodes one message.
func (c *Codec) Send(m *Message) error {
	if m.Kind() == "empty" {
		return fmt.Errorf("protocol: refusing to send empty message")
	}
	return c.enc.Encode(m)
}

// Recv decodes the next message.
func (c *Codec) Recv() (*Message, error) {
	var m Message
	if err := c.dec.Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

// ReportFromStats converts a tracker harvest into a LoadReport.
func ReportFromStats(taskID int, interval int64, perKey map[tuple.Key]stats.KeyStat) *LoadReport {
	r := &LoadReport{TaskID: taskID, Interval: interval}
	for k, ks := range perKey {
		r.Stats = append(r.Stats, KeyStatWire{Key: k, Cost: ks.Cost, Freq: ks.Freq, Mem: ks.Mem})
	}
	return r
}

// MergeReports folds task reports into the controller's per-key view,
// tagging each key with the reporting task as its current destination —
// the merge the in-process controller performs via stage.EndInterval.
func MergeReports(reports []*LoadReport) map[tuple.Key]stats.KeyStat {
	out := make(map[tuple.Key]stats.KeyStat)
	for _, r := range reports {
		for _, s := range r.Stats {
			ks := out[s.Key]
			ks.Key = s.Key
			ks.Cost += s.Cost
			ks.Freq += s.Freq
			ks.Mem += s.Mem
			ks.Dest = r.TaskID
			out[s.Key] = ks
		}
	}
	return out
}
