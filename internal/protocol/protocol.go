// Package protocol defines the wire messages of the elastic control
// workflow — the rebalance sequence of Fig. 5 plus the resize commands
// of the unified control plane — and a gob codec for exchanging them
// over any net.Conn-like transport. The in-process engine speaks this
// protocol through internal/control's loopback transport; the same
// bytes flow over a real network boundary (the Codec-over-pipe
// transport is pinned equivalent), so a multi-process deployment can
// speak it unchanged:
//
//	task       → controller  : LoadReport        (step 1)
//	controller → upstream    : PlanAnnounce+Pause (steps 3–4)
//	                           or Resize           (elastic command)
//	source     → destination : StateTransfer     (step 5)
//	task       → controller  : Ack               (step 6)
//	controller → upstream    : Resume            (step 7)
package protocol

import (
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"repro/internal/balance"
	"repro/internal/route"
	"repro/internal/stats"
	"repro/internal/tuple"
)

// KeyStatWire is the per-key statistics record of a load report: the
// computation cost and windowed memory consumption of §IV step 1, plus
// the key's hash destination h(k) so the controller can reconstruct
// the full planner-facing record without sharing the ring.
type KeyStatWire struct {
	Key  tuple.Key
	Cost int64
	Freq int64
	Mem  int64
	Hash int
}

// LoadReport is step 1: one task's interval statistics. The stage
// context fields (Tasks through Resizable) are stamped identically on
// every report of a round — they carry the operator-level facts a
// remote controller needs to judge utilization (the long-term path)
// without a second channel: how many tasks reported, the per-task
// service capacity, what the spout emitted versus its configured
// budget (the backpressure-corrected demand estimate), whether the
// stage routes by assignment (and so can rebalance), and whether its
// instance set can change (assignment over a consistent-hash ring, so
// Resize commands apply).
type LoadReport struct {
	TaskID   int
	Interval int64
	Stats    []KeyStatWire

	// Stage context, identical on every report of a round.
	Tasks     int
	Capacity  int64
	Emitted   int64
	Budget    int64
	Routable  bool
	Resizable bool
	// Split lists the stage's currently split hot keys (ascending), so
	// the controller's plan guard sees the live set without a second
	// channel.
	Split []tuple.Key
}

// RouteEntry is one routing-table pair (k, d).
type RouteEntry struct {
	Key  tuple.Key
	Dest int
}

// PlanAnnounce is steps 3–4: the new assignment function F′ (as the
// explicit table A′; the hash part is shared configuration) and the
// migration set Δ(F, F′). Receipt implies Pause for the keys in Moved.
// Algorithm and GenTime carry the planner's identity and wall-clock
// planning latency for reporting (the PlanMs metric).
type PlanAnnounce struct {
	Interval  int64
	Table     []RouteEntry
	Moved     []RouteEntry // key → new destination
	Algorithm string
	GenTime   time.Duration
}

// Resize is the elastic command of the unified control plane: change
// the stage's instance set by Delta (+1 scale-out, −1 scale-in). The
// receiving side grows or drains-and-retires accordingly, reports each
// resulting key migration as a StateTransfer, and Acks.
type Resize struct {
	Interval int64
	Delta    int
}

// SplitEntry is one hot key's split directive: replicate across Fan
// instances. The receiving stage resolves the replica ring (home +
// Fan−1 successors) from its live assignment at apply time, so the
// announcement stays valid across a rebalance applied earlier in the
// same round.
type SplitEntry struct {
	Key tuple.Key
	Fan int
}

// SplitAnnounce publishes the complete hot-key split set for the
// interval: keys present become (or stay) split, keys absent fold
// back. Like every command it is Acked when applied (or rejected as a
// hold) so the round stays in step.
type SplitAnnounce struct {
	Interval int64
	Set      []SplitEntry
}

// StateTransfer is step 5: one key's serialized windowed state moving
// between task instances. In-process transports move the state itself
// by reference and send this message as the accounting record (Payload
// empty, Size the migrated volume); a cross-process deployment carries
// the serialized window in Payload.
type StateTransfer struct {
	Key      tuple.Key
	From, To int
	Size     int64
	Payload  []byte
}

// Ack is step 6: a task confirms it finished its part of the plan.
type Ack struct {
	TaskID   int
	Interval int64
}

// Resume is step 7: the controller releases the paused keys. It also
// closes a control round: after Resume the stage side returns to
// normal processing until the next interval's reports.
type Resume struct {
	Interval int64
}

// Message is the envelope union; exactly one field is non-nil.
type Message struct {
	Report    *LoadReport
	Plan      *PlanAnnounce
	ResizeCmd *Resize
	Split     *SplitAnnounce
	State     *StateTransfer
	Ack       *Ack
	Resume    *Resume
}

// Kind names the populated variant, for logging and dispatch.
func (m *Message) Kind() string {
	switch {
	case m.Report != nil:
		return "report"
	case m.Plan != nil:
		return "plan"
	case m.ResizeCmd != nil:
		return "resize"
	case m.Split != nil:
		return "split"
	case m.State != nil:
		return "state"
	case m.Ack != nil:
		return "ack"
	case m.Resume != nil:
		return "resume"
	default:
		return "empty"
	}
}

// Codec frames Messages over a byte stream with encoding/gob.
type Codec struct {
	enc *gob.Encoder
	dec *gob.Decoder
}

// NewCodec wraps a bidirectional stream.
func NewCodec(rw io.ReadWriter) *Codec {
	return &Codec{enc: gob.NewEncoder(rw), dec: gob.NewDecoder(rw)}
}

// Send encodes one message.
func (c *Codec) Send(m *Message) error {
	if m.Kind() == "empty" {
		return fmt.Errorf("protocol: refusing to send empty message")
	}
	return c.enc.Encode(m)
}

// Recv decodes the next message.
func (c *Codec) Recv() (*Message, error) {
	var m Message
	if err := c.dec.Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

// ReportFromStats converts a tracker harvest into a LoadReport.
func ReportFromStats(taskID int, interval int64, perKey map[tuple.Key]stats.KeyStat) *LoadReport {
	r := &LoadReport{TaskID: taskID, Interval: interval}
	for k, ks := range perKey {
		r.Stats = append(r.Stats, KeyStatWire{Key: k, Cost: ks.Cost, Freq: ks.Freq, Mem: ks.Mem, Hash: ks.Hash})
	}
	return r
}

// MergeReports folds task reports into the controller's per-key view,
// tagging each key with the reporting task as its current destination —
// the merge the in-process controller performs via stage.EndInterval.
func MergeReports(reports []*LoadReport) map[tuple.Key]stats.KeyStat {
	out := make(map[tuple.Key]stats.KeyStat)
	for _, r := range reports {
		for _, s := range r.Stats {
			ks := out[s.Key]
			ks.Key = s.Key
			ks.Cost += s.Cost
			ks.Freq += s.Freq
			ks.Mem += s.Mem
			ks.Dest = r.TaskID
			ks.Hash = s.Hash
			out[s.Key] = ks
		}
	}
	return out
}

// ReportsFromSnapshot partitions an engine-merged snapshot back into
// the per-task load reports of step 1: report d carries exactly the
// snapshot records destined to task d, in snapshot order. Because each
// run is an order-preserving subsequence of a KeyStatLess-sorted
// slice, SnapshotFromReports reassembles the original snapshot
// bit-identically through stats.MergeRuns.
func ReportsFromSnapshot(snap *stats.Snapshot, tasks int, capacity, emitted, budget int64, routable, resizable bool, split []tuple.Key) []*LoadReport {
	reports := make([]*LoadReport, tasks)
	// One backing array for every report's stats, carved into per-task
	// subslices — the split runs once per stage per interval, so its
	// allocation count matters.
	counts := make([]int, tasks)
	for i := range snap.Keys {
		counts[snap.Keys[i].Dest]++
	}
	backing := make([]KeyStatWire, len(snap.Keys))
	off := 0
	for d := range reports {
		reports[d] = &LoadReport{
			TaskID: d, Interval: snap.Interval,
			Stats: backing[off : off : off+counts[d]],
			Tasks: tasks, Capacity: capacity, Emitted: emitted, Budget: budget,
			Routable: routable, Resizable: resizable, Split: split,
		}
		off += counts[d]
	}
	for _, ks := range snap.Keys {
		r := reports[ks.Dest]
		r.Stats = append(r.Stats, KeyStatWire{Key: ks.Key, Cost: ks.Cost, Freq: ks.Freq, Mem: ks.Mem, Hash: ks.Hash})
	}
	return reports
}

// SnapshotFromReports reassembles a planner-ready snapshot from one
// round of per-task load reports, the inverse of ReportsFromSnapshot:
// each report becomes a sorted run (its stats arrive in snapshot
// order, tagged with the reporting task as destination) and the runs
// k-way-merge under the canonical KeyStatLess order — so a snapshot
// that crossed the wire equals the engine's original byte for byte.
func SnapshotFromReports(reports []*LoadReport) *stats.Snapshot {
	snap := &stats.Snapshot{ND: len(reports)}
	if len(reports) == 0 {
		return snap
	}
	snap.Interval = reports[0].Interval
	total := 0
	for _, r := range reports {
		total += len(r.Stats)
	}
	backing := make([]stats.KeyStat, 0, total)
	runs := make([][]stats.KeyStat, len(reports))
	for _, r := range reports {
		if r.TaskID < 0 || r.TaskID >= len(runs) {
			continue
		}
		lo := len(backing)
		for _, s := range r.Stats {
			backing = append(backing, stats.KeyStat{Key: s.Key, Cost: s.Cost, Freq: s.Freq, Mem: s.Mem, Dest: r.TaskID, Hash: s.Hash})
		}
		runs[r.TaskID] = backing[lo:len(backing):len(backing)]
	}
	snap.Keys = stats.MergeRuns(runs)
	return snap
}

// AnnounceFromPlan marshals a planner result into its wire form: the
// routing table in ascending key order, the migration set in plan
// order (already sorted), and the reporting metadata.
func AnnounceFromPlan(interval int64, plan *balance.Plan) *PlanAnnounce {
	ann := &PlanAnnounce{Interval: interval, Algorithm: plan.Algorithm, GenTime: plan.GenTime}
	if plan.Table != nil {
		for _, k := range plan.Table.Keys() {
			d, _ := plan.Table.Lookup(k)
			ann.Table = append(ann.Table, RouteEntry{Key: k, Dest: d})
		}
	}
	for _, k := range plan.Moved {
		ann.Moved = append(ann.Moved, RouteEntry{Key: k, Dest: plan.MoveDest[k]})
	}
	return ann
}

// PlanFromAnnounce reconstructs the applicable part of a plan from its
// wire form: the routing table A′, the migration set with destinations,
// and the reporting metadata. Planner-side estimates (Loads, MaxTheta,
// Feasible, MigrationCost) do not cross the wire — application needs
// none of them, and the stage side re-derives actual migration volume
// from the transfers it performs.
func PlanFromAnnounce(a *PlanAnnounce) *balance.Plan {
	p := &balance.Plan{
		Algorithm: a.Algorithm,
		Table:     route.NewTable(),
		MoveDest:  make(map[tuple.Key]int, len(a.Moved)),
		GenTime:   a.GenTime,
	}
	for _, e := range a.Table {
		p.Table.Put(e.Key, e.Dest)
	}
	for _, mv := range a.Moved {
		p.Moved = append(p.Moved, mv.Key)
		p.MoveDest[mv.Key] = mv.Dest
	}
	return p
}
