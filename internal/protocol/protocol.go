// Package protocol defines the wire messages of the elastic control
// workflow — the rebalance sequence of Fig. 5 plus the resize commands
// of the unified control plane — and a codec for exchanging them over
// any net.Conn-like transport. The codec's default encoding is gob;
// framed codecs can additionally switch to a hand-rolled binary wire
// (binary.go: kind-dispatched frames, zero-reflection columnar
// encoding for the steady-state message set, gob fallback for rare
// kinds) after both peers agree in a handshake. The in-process engine
// speaks this protocol through internal/control's loopback transport;
// the same bytes flow over a real network boundary (the Codec-over-pipe
// transport is pinned equivalent), so a multi-process deployment can
// speak it unchanged:
//
//	task       → controller  : LoadReport        (step 1)
//	controller → upstream    : PlanAnnounce+Pause (steps 3–4)
//	                           or Resize           (elastic command)
//	source     → destination : StateTransfer     (step 5)
//	task       → controller  : Ack               (step 6)
//	controller → upstream    : Resume            (step 7)
//
// LoadReport has two forms. The legacy full form (Epoch 0) re-carries
// every tracked key's stats each interval. The incremental form stamps
// each report with the tracker's close epoch and, on held rounds,
// sends only the delta — Changed (touched keys, cost-sorted) and
// Retired (dropped keys, ascending) — which the controller-side Mirror
// folds into its retained per-task runs, handing the rest of the loop
// effective full reports. Epoch gaps make the mirror reject the round;
// the controller answers with Resync and the stage resends the same
// interval in full. O(Δkeys) crosses the wire per steady interval
// instead of O(keys), bit-identically to the full form.
package protocol

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/balance"
	"repro/internal/route"
	"repro/internal/stats"
	"repro/internal/tuple"
)

// KeyStatWire is the per-key statistics record of a load report: the
// computation cost and windowed memory consumption of §IV step 1, plus
// the key's hash destination h(k) so the controller can reconstruct
// the full planner-facing record without sharing the ring.
type KeyStatWire struct {
	Key  tuple.Key
	Cost int64
	Freq int64
	Mem  int64
	Hash int
}

// LoadReport is step 1: one task's interval statistics. The stage
// context fields (Tasks through Resizable) are stamped identically on
// every report of a round — they carry the operator-level facts a
// remote controller needs to judge utilization (the long-term path)
// without a second channel: how many tasks reported, the per-task
// service capacity, what the spout emitted versus its configured
// budget (the backpressure-corrected demand estimate), whether the
// stage routes by assignment (and so can rebalance), and whether its
// instance set can change (assignment over a consistent-hash ring, so
// Resize commands apply).
type LoadReport struct {
	TaskID   int
	Interval int64
	Stats    []KeyStatWire

	// Epoch, when nonzero, marks the report as part of an incremental
	// stream: it identifies the task tracker's close this report
	// describes, and the controller folds the report into its Mirror.
	// A full report (Delta false) carries the task's whole tracked
	// population in Stats and rebases the mirror at Epoch; a delta
	// report (Delta true) carries only Changed + Retired against the
	// mirror's run for Epoch−1 — O(Δkeys) on the wire instead of
	// O(population). Epoch 0 is the legacy per-interval form, which
	// bypasses the mirror entirely.
	Epoch uint64
	Delta bool
	// Changed lists the keys touched in the finished interval with
	// their fresh statistics, in canonical snapshot-run order (cost
	// descending, key ascending). Only meaningful when Delta is true.
	Changed []KeyStatWire
	// Retired lists keys that left the task since the previous close
	// (migrated away), ascending, deduplicated, never overlapping
	// Changed. Only meaningful when Delta is true.
	Retired []tuple.Key

	// Stage context, identical on every report of a round.
	Tasks     int
	Capacity  int64
	Emitted   int64
	Budget    int64
	Routable  bool
	Resizable bool
	// Split lists the stage's currently split hot keys (ascending), so
	// the controller's plan guard sees the live set without a second
	// channel.
	Split []tuple.Key
}

// RouteEntry is one routing-table pair (k, d).
type RouteEntry struct {
	Key  tuple.Key
	Dest int
}

// PlanAnnounce is steps 3–4: the new assignment function F′ (as the
// explicit table A′; the hash part is shared configuration) and the
// migration set Δ(F, F′). Receipt implies Pause for the keys in Moved.
// Algorithm and GenTime carry the planner's identity and wall-clock
// planning latency for reporting (the PlanMs metric).
type PlanAnnounce struct {
	Interval  int64
	Table     []RouteEntry
	Moved     []RouteEntry // key → new destination
	Algorithm string
	GenTime   time.Duration
}

// Resize is the elastic command of the unified control plane: change
// the stage's instance set by Delta (+1 scale-out, −1 scale-in). The
// receiving side grows or drains-and-retires accordingly, reports each
// resulting key migration as a StateTransfer, and Acks.
type Resize struct {
	Interval int64
	Delta    int
}

// SplitEntry is one hot key's split directive: replicate across Fan
// instances. The receiving stage resolves the replica ring (home +
// Fan−1 successors) from its live assignment at apply time, so the
// announcement stays valid across a rebalance applied earlier in the
// same round.
type SplitEntry struct {
	Key tuple.Key
	Fan int
}

// SplitAnnounce publishes the complete hot-key split set for the
// interval: keys present become (or stay) split, keys absent fold
// back. Like every command it is Acked when applied (or rejected as a
// hold) so the round stays in step.
type SplitAnnounce struct {
	Interval int64
	Set      []SplitEntry
}

// StateTransfer is step 5: one key's serialized windowed state moving
// between task instances. In-process transports move the state itself
// by reference and send this message as the accounting record (Payload
// empty, Size the migrated volume); a cross-process deployment carries
// the serialized window in Payload.
type StateTransfer struct {
	Key      tuple.Key
	From, To int
	Size     int64
	Payload  []byte
}

// Ack is step 6: a task confirms it finished its part of the plan.
type Ack struct {
	TaskID   int
	Interval int64
}

// Resume is step 7: the controller releases the paused keys. It also
// closes a control round: after Resume the stage side returns to
// normal processing until the next interval's reports.
type Resume struct {
	Interval int64
}

// Resync asks the stage side to resend the current round as full
// reports: the controller's delta mirror hit an epoch it cannot apply
// (a message was lost, or stage and controller restarted out of step).
// The stage answers with one full (Delta false) report per task for
// the same interval and the round proceeds normally.
type Resync struct {
	Interval int64
}

// Hello opens every cluster connection: the dialing side identifies
// itself and its intent before any other traffic. Role is "worker"
// (a worker process registering with the coordinator; DataAddr names
// the address its data-plane listener accepts tuple batches on),
// "control" (a per-stage control-loop connection; Stage identifies
// which), or "data" (a data-plane batch stream into Stage).
type Hello struct {
	Proto    int
	Role     string
	Worker   string
	Stage    int
	DataAddr string
	// Features advertises the dialer's optional wire capabilities as a
	// bit set (see internal/cluster's FeatureBinary). The accepting side
	// answers with the intersection it agreed to; both sides switch any
	// negotiated codec on only after the Welcome, so the handshake
	// itself always speaks plain gob and old peers interoperate.
	Features uint32
}

// Welcome answers a Hello: the accepting side confirms the protocol
// version, assigns the connection an id (for workers, their
// registration index), and echoes the subset of the dialer's offered
// feature bits it accepts.
type Welcome struct {
	Proto    int
	ID       int
	Features uint32
}

// StageAssign places one pipeline stage on a worker: everything the
// worker needs to build the stage locally — operator (by registered
// name), instance count, window, routing algorithm, capacity — plus
// the data-plane address of the downstream stage's host (empty for the
// last stage, whose emissions are discarded after the terminal
// operator runs).
type StageAssign struct {
	Stage      int
	Name       string
	Op         string
	Instances  int
	Window     int
	Algorithm  string
	Capacity   int64
	Budget     int64
	Harvest    int
	PauseFree  bool
	StateWire  bool
	// Control tells the worker to dial a per-stage control connection
	// back to the coordinator (set when the stage has coordinator-side
	// policies; planner-less stages skip the control plane entirely).
	Control    bool
	Downstream string
	DownStage  int
	// Coalesce is the downstream edge's frame-coalescing byte budget:
	// 0 picks the cluster default, negative disables coalescing (one
	// wire frame per FeedBatch chunk).
	Coalesce int
}

// StartInterval opens interval Interval on every stage a worker hosts.
// Emit carries the coordinator's post-throttle emission decision so
// workers stamp the same Emitted into their load reports as a
// single-process run would.
type StartInterval struct {
	Interval int64
	Emit     int64
}

// CloseStage asks the worker hosting Stage to close its interval
// (fold splits, flush operators, drain residual emissions downstream).
// The worker flushes its downstream data connection before acking, so
// acks arriving in pipeline order guarantee every tuple of the
// interval has been enqueued at its destination — the cascading
// CloseInterval of the single-process engine, spelled over the wire.
type CloseStage struct {
	Stage int
}

// HarvestReq asks the worker hosting Stage to end the interval:
// harvest statistics, run the stage's control round against the
// coordinator (over the stage's control connection), and answer with
// HarvestDone. Emit is the interval's true post-draw emission — it can
// be lower than StartInterval.Emit when a finite source ended
// mid-interval — so the round's load reports carry the exact Emitted a
// single-process run would.
type HarvestReq struct {
	Stage    int
	Interval int64
	Emit     int64
}

// HarvestDone closes a stage's interval from the worker side: the
// arrival accounting and migration penalties the coordinator's
// queueing model consumes, the control round's outcome (rebalance /
// resize metadata for the metrics row), and the cumulative processed
// tuple count for zero-loss accounting. Resizes lists the round's
// applied instance-count deltas in order (+1/−1) so the coordinator
// replays the same backlog array surgery the engine performs.
type HarvestDone struct {
	Stage         int
	Interval      int64
	ArrivedCost   []int64
	ArrivedTuples []int64
	MigPenalty    []int64
	Resizes       []int
	Instances     int
	LiveState     int64
	Rebalanced    bool
	PlanMs        float64
	TableSize     int
	Moved         int64
	ScaledOut     int
	ScaledIn      int
	Processed     int64
}

// TupleBatch is the data plane: one or more FeedBatch-sized chunks of
// tuples streaming into a remote stage. An uncoalesced batch (the PR 9
// wire shape) carries one chunk and leaves Bounds nil. A coalesced
// frame packs several FeedBatch chunks into one message; Bounds then
// lists the end offset of each chunk in Tuples (ascending, last ==
// len(Tuples)), so the receiver replays the sender's exact FeedBatch
// call sequence — the property the bit-identical equivalence pins
// depend on (chunk boundaries drive round-robin shuffle routing and
// arrival accounting).
type TupleBatch struct {
	Tuples []tuple.Tuple
	Bounds []int
}

// Chunks calls fn once per FeedBatch chunk, in send order.
func (b *TupleBatch) Chunks(fn func(ts []tuple.Tuple)) {
	if len(b.Bounds) == 0 {
		fn(b.Tuples)
		return
	}
	start := 0
	for _, end := range b.Bounds {
		fn(b.Tuples[start:end])
		start = end
	}
}

// Flush is the data-plane barrier: the sender stamps a sequence
// number, the receiver enqueues everything received before it and
// echoes the same message back. A returned Flush therefore proves
// every prior TupleBatch on the connection has been fed to the stage.
type Flush struct {
	Seq uint64
}

// Shutdown ends a session cleanly: the worker stops its engines,
// answers with its connection Stats, and exits.
type Shutdown struct {
	Reason string
}

// ConnStat is one connection's byte and message counters, by name. A
// message is one codec unit on the wire — one gob value or one binary
// frame — so with frame coalescing SentMsgs counts coalesced frames,
// not the FeedBatch chunks packed inside them.
type ConnStat struct {
	Name     string
	Sent     int64
	Rcvd     int64
	SentMsgs int64
	RcvdMsgs int64
}

// Stats reports a worker's per-connection byte counters at shutdown,
// so the coordinator can print the full cluster's control- and
// data-plane bandwidth table.
type Stats struct {
	Worker string
	Conns  []ConnStat
}

// Message is the envelope union; exactly one field is non-nil.
type Message struct {
	Report    *LoadReport
	Plan      *PlanAnnounce
	ResizeCmd *Resize
	Split     *SplitAnnounce
	State     *StateTransfer
	Ack       *Ack
	Resume    *Resume
	ResyncReq *Resync

	// Cluster session messages (handshake, placement, interval drive,
	// data plane) — spoken only by internal/cluster's socket transport.
	Hello     *Hello
	Welcome   *Welcome
	Assign    *StageAssign
	Start     *StartInterval
	Close     *CloseStage
	Harvest   *HarvestReq
	Harvested *HarvestDone
	Batch     *TupleBatch
	FlushReq  *Flush
	Bye       *Shutdown
	ConnStats *Stats
}

// Kind names the populated variant, for logging and dispatch.
func (m *Message) Kind() string {
	switch {
	case m.Report != nil:
		return "report"
	case m.Plan != nil:
		return "plan"
	case m.ResizeCmd != nil:
		return "resize"
	case m.Split != nil:
		return "split"
	case m.State != nil:
		return "state"
	case m.Ack != nil:
		return "ack"
	case m.Resume != nil:
		return "resume"
	case m.ResyncReq != nil:
		return "resync"
	case m.Hello != nil:
		return "hello"
	case m.Welcome != nil:
		return "welcome"
	case m.Assign != nil:
		return "assign"
	case m.Start != nil:
		return "start"
	case m.Close != nil:
		return "close"
	case m.Harvest != nil:
		return "harvest"
	case m.Harvested != nil:
		return "harvested"
	case m.Batch != nil:
		return "batch"
	case m.FlushReq != nil:
		return "flush"
	case m.Bye != nil:
		return "shutdown"
	case m.ConnStats != nil:
		return "stats"
	default:
		return "empty"
	}
}

// Codec frames Messages over a byte stream. The default encoding is
// gob: each message is staged in one retained encode buffer and written
// with a single Write — gob would otherwise issue several small writes
// per message (type descriptors, then the value), each a syscall on a
// real socket — and the buffer is reused across messages, so
// steady-state sends allocate nothing. The staging also makes exact
// per-direction byte counters (SentBytes/RecvBytes) free; bench-control
// and the harvest sweep read them to report control-plane bandwidth.
//
// A framed codec (NewFramedCodec) can additionally switch to the
// hand-rolled binary wire (binary.go) with EnableBinary, after both
// sides agreed in the cluster handshake: data-plane and steady-state
// control frames take the zero-reflection columnar encoding, everything
// else rides as a self-contained gob frame behind a kind byte. The
// switch is safe mid-stream because the framed gob decoder reads from a
// source that implements io.ByteReader — gob never wraps it in bufio,
// so it consumes exactly its own message bytes and the next frame is
// intact for the binary dispatcher.
//
// Send and Recv are each single-caller (the control loop's contract);
// the counters may be read from any goroutine.
type Codec struct {
	enc  *gob.Encoder
	dec  *gob.Decoder
	w    io.Writer
	buf  bytes.Buffer
	sent atomic.Int64
	rcvd atomic.Int64
	// Message counters: one increment per wire unit (gob value or
	// binary frame), so coalesced frames count once however many chunks
	// they carry. The bench sweep reads them for its allocs/msg column.
	sentMsgs atomic.Int64
	rcvdMsgs atomic.Int64

	// Binary-wire state (framed codecs only). bin is the retained
	// encode scratch; tup/bounds are the retained decode storage that
	// successive hot-path batches reuse (the receive-side mirror of the
	// engine's pooled feed buffers); strs interns stream labels.
	fr     *frameReader
	binary bool
	bin    []byte
	tup    []tuple.Tuple
	bounds []int
	strs   map[string]string

	// Retained hot-path message envelopes: Recv in binary mode returns
	// pointers into these for TupleBatch/Flush, valid until the next
	// Recv — exactly the aliasing contract BatchConn and the worker's
	// data loop already live by. Control messages (reports, acks) are
	// freshly allocated, because the control server retains them across
	// rounds.
	hotMsg   Message
	hotBatch TupleBatch
	hotFlush Flush
}

// NewCodec wraps a bidirectional stream.
func NewCodec(rw io.ReadWriter) *Codec {
	c := &Codec{w: rw}
	c.enc = gob.NewEncoder(&c.buf)
	c.dec = gob.NewDecoder(&countingReader{r: rw, n: &c.rcvd})
	return c
}

// Send encodes one message.
func (c *Codec) Send(m *Message) error {
	if m.Kind() == "empty" {
		return fmt.Errorf("protocol: refusing to send empty message")
	}
	if c.binary {
		return c.sendBinary(m)
	}
	c.buf.Reset()
	if err := c.enc.Encode(m); err != nil {
		return err
	}
	n, err := c.w.Write(c.buf.Bytes())
	c.sent.Add(int64(n))
	c.sentMsgs.Add(1)
	return err
}

// Recv decodes the next message. In binary mode, Batch and FlushReq
// results alias codec-owned storage and are valid until the next Recv;
// all other kinds are freshly allocated.
func (c *Codec) Recv() (*Message, error) {
	if c.binary {
		m, err := c.recvBinary()
		if err == nil {
			c.rcvdMsgs.Add(1)
		}
		return m, err
	}
	var m Message
	if err := c.dec.Decode(&m); err != nil {
		return nil, err
	}
	c.rcvdMsgs.Add(1)
	return &m, nil
}

// EnableBinary switches a framed codec to the binary wire. Call it on
// both sides at the same stream position (after the Hello/Welcome
// exchange agreed on FeatureBinary); every message from then on is a
// kind-dispatched binary frame. Panics on a non-framed codec — the
// binary wire only exists inside length framing.
func (c *Codec) EnableBinary() {
	if c.fr == nil {
		panic("protocol: EnableBinary on a non-framed codec")
	}
	c.binary = true
}

// Binary reports whether the codec is speaking the binary wire.
func (c *Codec) Binary() bool { return c.binary }

// SendFrame writes one pre-encoded binary frame (kind byte included),
// built with AppendBatchHeader/AppendBatchChunk/PatchBatchHeader. It is
// the coalescing sender's path: the frame body is encoded outside any
// lock and only this write needs serializing.
func (c *Codec) SendFrame(p []byte) error {
	if !c.binary {
		return fmt.Errorf("protocol: SendFrame on a non-binary codec")
	}
	return c.writeFrame(p)
}

func (c *Codec) writeFrame(p []byte) error {
	n, err := c.w.Write(p)
	c.sent.Add(int64(n))
	c.sentMsgs.Add(1)
	return err
}

// SentBytes returns the total bytes written to the stream so far.
func (c *Codec) SentBytes() int64 { return c.sent.Load() }

// RecvBytes returns the total bytes read from the stream so far.
func (c *Codec) RecvBytes() int64 { return c.rcvd.Load() }

// SentMsgs returns the number of wire units written so far — gob
// values or binary frames, each coalesced frame counting once.
func (c *Codec) SentMsgs() int64 { return c.sentMsgs.Load() }

// RecvMsgs returns the number of wire units read so far.
func (c *Codec) RecvMsgs() int64 { return c.rcvdMsgs.Load() }

type countingReader struct {
	r io.Reader
	n *atomic.Int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n.Add(int64(n))
	return n, err
}

// ReportFromStats converts a tracker harvest into a LoadReport.
func ReportFromStats(taskID int, interval int64, perKey map[tuple.Key]stats.KeyStat) *LoadReport {
	r := &LoadReport{TaskID: taskID, Interval: interval}
	for k, ks := range perKey {
		r.Stats = append(r.Stats, KeyStatWire{Key: k, Cost: ks.Cost, Freq: ks.Freq, Mem: ks.Mem, Hash: ks.Hash})
	}
	return r
}

// MergeReports folds task reports into the controller's per-key view,
// tagging each key with the reporting task as its current destination —
// the merge the in-process controller performs via stage.EndInterval.
func MergeReports(reports []*LoadReport) map[tuple.Key]stats.KeyStat {
	out := make(map[tuple.Key]stats.KeyStat)
	for _, r := range reports {
		for _, s := range r.Stats {
			ks := out[s.Key]
			ks.Key = s.Key
			ks.Cost += s.Cost
			ks.Freq += s.Freq
			ks.Mem += s.Mem
			ks.Dest = r.TaskID
			ks.Hash = s.Hash
			out[s.Key] = ks
		}
	}
	return out
}

// ReportsFromSnapshot partitions an engine-merged snapshot back into
// the per-task load reports of step 1: report d carries exactly the
// snapshot records destined to task d, in snapshot order. Because each
// run is an order-preserving subsequence of a KeyStatLess-sorted
// slice, SnapshotFromReports reassembles the original snapshot
// bit-identically through stats.MergeRuns.
func ReportsFromSnapshot(snap *stats.Snapshot, tasks int, capacity, emitted, budget int64, routable, resizable bool, split []tuple.Key) []*LoadReport {
	reports := make([]*LoadReport, tasks)
	// One backing array for every report's stats, carved into per-task
	// subslices — the split runs once per stage per interval, so its
	// allocation count matters.
	counts := make([]int, tasks)
	for i := range snap.Keys {
		counts[snap.Keys[i].Dest]++
	}
	backing := make([]KeyStatWire, len(snap.Keys))
	off := 0
	for d := range reports {
		reports[d] = &LoadReport{
			TaskID: d, Interval: snap.Interval,
			Stats: backing[off : off : off+counts[d]],
			Tasks: tasks, Capacity: capacity, Emitted: emitted, Budget: budget,
			Routable: routable, Resizable: resizable, Split: split,
		}
		off += counts[d]
	}
	for _, ks := range snap.Keys {
		r := reports[ks.Dest]
		r.Stats = append(r.Stats, KeyStatWire{Key: ks.Key, Cost: ks.Cost, Freq: ks.Freq, Mem: ks.Mem, Hash: ks.Hash})
	}
	return reports
}

// SnapshotFromReports reassembles a planner-ready snapshot from one
// round of per-task load reports, the inverse of ReportsFromSnapshot:
// each report becomes a sorted run (its stats arrive in snapshot
// order, tagged with the reporting task as destination) and the runs
// k-way-merge under the canonical KeyStatLess order — so a snapshot
// that crossed the wire equals the engine's original byte for byte.
func SnapshotFromReports(reports []*LoadReport) *stats.Snapshot {
	snap := &stats.Snapshot{ND: len(reports)}
	if len(reports) == 0 {
		return snap
	}
	snap.Interval = reports[0].Interval
	// Merge the wire runs straight into the snapshot ordering. Each
	// run is wireLess-sorted (cost desc, key asc; Dest constant within
	// a run), so a k-way select-min with the Dest tie-break yields
	// exactly SortByCostDesc over the stamped concatenation — without
	// first materializing per-task KeyStat runs and merging those, which
	// would touch the whole population twice per round.
	type cursor struct {
		head KeyStatWire
		run  []KeyStatWire
		dest int
		i    int
	}
	total := 0
	cs := make([]cursor, 0, len(reports))
	for _, r := range reports {
		total += len(r.Stats)
		if r.TaskID < 0 || r.TaskID >= len(reports) || len(r.Stats) == 0 {
			continue
		}
		cs = append(cs, cursor{head: r.Stats[0], run: r.Stats, dest: r.TaskID})
	}
	out := make([]stats.KeyStat, 0, total)
	for len(cs) > 0 {
		m := 0
		for j := 1; j < len(cs); j++ {
			a, b := &cs[j], &cs[m]
			if a.head.Cost != b.head.Cost {
				if a.head.Cost > b.head.Cost {
					m = j
				}
			} else if a.head.Key != b.head.Key {
				if a.head.Key < b.head.Key {
					m = j
				}
			} else if a.dest < b.dest {
				m = j
			}
		}
		c := &cs[m]
		s := &c.head
		out = append(out, stats.KeyStat{Key: s.Key, Cost: s.Cost, Freq: s.Freq, Mem: s.Mem, Dest: c.dest, Hash: s.Hash})
		c.i++
		if c.i == len(c.run) {
			cs[m] = cs[len(cs)-1]
			cs = cs[:len(cs)-1]
			continue
		}
		c.head = c.run[c.i]
	}
	if len(out) > 0 {
		snap.Keys = out
	}
	return snap
}

// AnnounceFromPlan marshals a planner result into its wire form: the
// routing table in ascending key order, the migration set in plan
// order (already sorted), and the reporting metadata.
func AnnounceFromPlan(interval int64, plan *balance.Plan) *PlanAnnounce {
	ann := &PlanAnnounce{Interval: interval, Algorithm: plan.Algorithm, GenTime: plan.GenTime}
	if plan.Table != nil {
		for _, k := range plan.Table.Keys() {
			d, _ := plan.Table.Lookup(k)
			ann.Table = append(ann.Table, RouteEntry{Key: k, Dest: d})
		}
	}
	for _, k := range plan.Moved {
		ann.Moved = append(ann.Moved, RouteEntry{Key: k, Dest: plan.MoveDest[k]})
	}
	return ann
}

// PlanFromAnnounce reconstructs the applicable part of a plan from its
// wire form: the routing table A′, the migration set with destinations,
// and the reporting metadata. Planner-side estimates (Loads, MaxTheta,
// Feasible, MigrationCost) do not cross the wire — application needs
// none of them, and the stage side re-derives actual migration volume
// from the transfers it performs.
func PlanFromAnnounce(a *PlanAnnounce) *balance.Plan {
	p := &balance.Plan{
		Algorithm: a.Algorithm,
		Table:     route.NewTable(),
		MoveDest:  make(map[tuple.Key]int, len(a.Moved)),
		GenTime:   a.GenTime,
	}
	for _, e := range a.Table {
		p.Table.Put(e.Key, e.Dest)
	}
	for _, mv := range a.Moved {
		p.Moved = append(p.Moved, mv.Key)
		p.MoveDest[mv.Key] = mv.Dest
	}
	return p
}
