package compact

import (
	"sort"
	"time"

	"repro/internal/balance"
	"repro/internal/route"
	"repro/internal/stats"
	"repro/internal/tuple"
)

// Planner is the Mixed algorithm adapted to the compact representation
// (§IV-A). Planning happens at vector granularity: a vector's Count keys
// share one discretized (cost, mem) pair, so load arithmetic moves whole
// unit blocks; vectors split when only part of a block fits. The final
// vector-level result is materialized back onto real keys, charging
// migration only for keys whose destination actually changed.
type Planner struct {
	// R is the degree of discretization (power of two; 1 = exact values).
	R int64
}

// Name implements balance.Planner.
func (p Planner) Name() string { return "CompactMixed" }

// unit is a (possibly split) slice of a vector assigned to one instance.
type unit struct {
	vec   *Vector
	dest  int // -1 while in the candidate set
	count int64
}

// vplan is the vector-granularity working state.
type vplan struct {
	nd    int
	loads []int64
	lmax  float64
	units []*unit
	cand  []*unit
	beta  float64
}

// Plan implements balance.Planner: the adapted Mixed loop — clean n
// smallest-memory routed keys, disassociate by γ from overloaded
// instances, least-load-fit the candidates, and retry with a deeper
// clean while the resulting table exceeds Amax.
func (p Planner) Plan(snap *stats.Snapshot, cfg balance.Config) *balance.Plan {
	start := time.Now()
	R := p.R
	if R < 1 {
		R = 1
	}
	sp := Build(snap, R)
	trials := cfg.MaxTrials
	if trials <= 0 {
		trials = 32
	}
	n := int64(0)
	var plan *balance.Plan
	for t := 0; t < trials; t++ {
		vp := newVplan(sp, snap.ND, cfg)
		vp.clean(sp, n)
		vp.prepare()
		vp.assignAll()
		plan = materialize(sp, vp, cfg)
		if cfg.TableMax <= 0 {
			break
		}
		over := int64(plan.Table.Len() - cfg.TableMax)
		if over <= 0 {
			break
		}
		n += over
	}
	plan.Algorithm = "CompactMixed"
	plan.GenTime = time.Since(start)
	return plan
}

func newVplan(sp *Space, nd int, cfg balance.Config) *vplan {
	vp := &vplan{nd: nd, loads: make([]int64, nd), beta: cfg.Beta}
	var total int64
	for _, v := range sp.Vectors {
		u := &unit{vec: v, dest: v.Cur, count: v.Count}
		vp.units = append(vp.units, u)
		vp.loads[v.Cur] += v.Cost * v.Count
		total += v.Cost * v.Count
	}
	vp.lmax = (1 + cfg.ThetaMax) * float64(total) / float64(nd)
	return vp
}

// clean implements Phase I: walk routed vectors (Cur ≠ Hash) in
// smallest-memory-first order and send up to n keys back to their hash
// destinations, splitting the last vector if needed. The move is
// virtual: d′ changes, migration is charged at materialization.
func (vp *vplan) clean(sp *Space, n int64) {
	if n <= 0 {
		return
	}
	routed := make([]*unit, 0)
	for _, u := range vp.units {
		if u.vec.Cur != u.vec.Hash {
			routed = append(routed, u)
		}
	}
	sort.Slice(routed, func(a, b int) bool {
		va, vb := routed[a].vec, routed[b].vec
		if va.Mem != vb.Mem {
			return va.Mem < vb.Mem
		}
		if va.Cost != vb.Cost {
			return va.Cost < vb.Cost
		}
		if va.Cur != vb.Cur {
			return va.Cur < vb.Cur
		}
		return va.Hash < vb.Hash
	})
	for _, u := range routed {
		if n <= 0 {
			return
		}
		take := u.count
		if take > n {
			take = n
		}
		vp.moveUnits(u, u.vec.Hash, take)
		n -= take
	}
}

// moveUnits retargets `take` keys of unit u to dest, splitting u when
// take < u.count.
func (vp *vplan) moveUnits(u *unit, dest int, take int64) {
	if take <= 0 || u.dest == dest {
		return
	}
	if take >= u.count {
		vp.loads[u.dest] -= u.vec.Cost * u.count
		vp.loads[dest] += u.vec.Cost * u.count
		u.dest = dest
		return
	}
	moved := &unit{vec: u.vec, dest: dest, count: take}
	u.count -= take
	vp.units = append(vp.units, moved)
	vp.loads[u.dest] -= u.vec.Cost * take
	vp.loads[dest] += u.vec.Cost * take
}

// prepare implements Phase II: for each overloaded instance,
// disassociate vector units in largest-γ-first order (setting d′ = nil)
// until the load estimate drops to Lmax.
func (vp *vplan) prepare() {
	for d := 0; d < vp.nd; d++ {
		if float64(vp.loads[d]) <= vp.lmax {
			continue
		}
		var local []*unit
		for _, u := range vp.units {
			if u.dest == d {
				local = append(local, u)
			}
		}
		sort.Slice(local, func(a, b int) bool {
			ga, gb := local[a].vec.Gamma(vp.beta), local[b].vec.Gamma(vp.beta)
			if ga != gb {
				return ga > gb
			}
			return local[a].vec.Cost > local[b].vec.Cost
		})
		for _, u := range local {
			over := float64(vp.loads[d]) - vp.lmax
			if over <= 0 {
				break
			}
			// Units needed to shed the overload; split so we do not
			// strip more than necessary.
			need := int64(over/float64(u.vec.Cost)) + 1
			if need > u.count {
				need = u.count
			}
			vp.detach(u, need)
		}
	}
}

// detach moves `take` keys of u into the candidate set (d′ = nil).
func (vp *vplan) detach(u *unit, take int64) {
	if take <= 0 {
		return
	}
	if take >= u.count {
		vp.loads[u.dest] -= u.vec.Cost * u.count
		u.dest = -1
		vp.cand = append(vp.cand, u)
		return
	}
	det := &unit{vec: u.vec, dest: -1, count: take}
	u.count -= take
	vp.loads[u.dest] -= u.vec.Cost * take
	vp.units = append(vp.units, det)
	vp.cand = append(vp.cand, det)
}

// assignAll implements the adapted Phase III: candidates in descending
// per-key cost, each block least-load-fitted with splitting — as many
// keys as fit under Lmax go to the least-loaded instance, the remainder
// re-queues. Blocks that fit nowhere go to the least-loaded instance
// whole (the force-assign of the key-level LLFD).
func (vp *vplan) assignAll() {
	sort.Slice(vp.cand, func(a, b int) bool {
		if vp.cand[a].vec.Cost != vp.cand[b].vec.Cost {
			return vp.cand[a].vec.Cost > vp.cand[b].vec.Cost
		}
		return vp.cand[a].vec.Mem < vp.cand[b].vec.Mem
	})
	queue := append([]*unit(nil), vp.cand...)
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		if u.count == 0 {
			continue
		}
		d := vp.leastLoaded()
		room := vp.lmax - float64(vp.loads[d])
		fit := int64(room / float64(u.vec.Cost))
		if fit <= 0 {
			// Nothing fits anywhere (least-loaded is fullest fit):
			// force the whole block onto d.
			vp.place(u, d, u.count)
			continue
		}
		if fit >= u.count {
			vp.place(u, d, u.count)
			continue
		}
		// Split: place what fits, re-queue the rest.
		rest := &unit{vec: u.vec, dest: -1, count: u.count - fit}
		u.count = fit
		vp.units = append(vp.units, rest)
		vp.place(u, d, fit)
		queue = append(queue, rest)
	}
	vp.cand = nil
}

func (vp *vplan) place(u *unit, d int, cnt int64) {
	u.dest = d
	vp.loads[d] += u.vec.Cost * cnt
}

func (vp *vplan) leastLoaded() int {
	best, bl := 0, vp.loads[0]
	for d := 1; d < vp.nd; d++ {
		if vp.loads[d] < bl {
			best, bl = d, vp.loads[d]
		}
	}
	return best
}

// materialize maps the vector-level result back onto real keys (§IV-A
// Phase III adaptation): per vector, tally how many keys each
// destination received; keys staying on the vector's current instance
// are preferred (no migration), the remainder are picked in snapshot
// order and added to Δ(F, F′). The routing table receives every key
// whose final destination differs from its hash.
func materialize(sp *Space, vp *vplan, cfg balance.Config) *balance.Plan {
	plan := &balance.Plan{
		Table:    route.NewTable(),
		MoveDest: make(map[tuple.Key]int),
		Loads:    make([]int64, vp.nd),
	}
	// Group units per vector.
	perVec := make(map[*Vector][]*unit, len(sp.Vectors))
	for _, u := range vp.units {
		if u.count > 0 {
			perVec[u.vec] = append(perVec[u.vec], u)
		}
	}
	for _, v := range sp.Vectors {
		units := perVec[v]
		// wants[d] = number of v's keys that must end on instance d.
		wants := make(map[int]int64, len(units))
		for _, u := range units {
			d := u.dest
			if d < 0 {
				d = v.Cur // defensive: unassigned candidates stay put
			}
			wants[d] += u.count
		}
		// Stable key order; give the "stay" destination first pick so
		// migration is minimized within the vector.
		rem := append([]int(nil), v.keyIdx...)
		if wants[v.Cur] > 0 {
			take := wants[v.Cur]
			assignKeys(sp, plan, rem[:take], v.Cur)
			rem = rem[take:]
			delete(wants, v.Cur)
		}
		dests := make([]int, 0, len(wants))
		for d := range wants {
			dests = append(dests, d)
		}
		sort.Ints(dests)
		for _, d := range dests {
			take := wants[d]
			assignKeys(sp, plan, rem[:take], d)
			rem = rem[take:]
		}
	}
	plan.MaxTheta = stats.MaxTheta(plan.Loads)
	plan.OverloadTheta = stats.OverloadTheta(plan.Loads)
	plan.Feasible = plan.OverloadTheta <= cfg.ThetaMax+1e-9 &&
		(cfg.TableMax <= 0 || plan.Table.Len() <= cfg.TableMax)
	sort.Slice(plan.Moved, func(a, b int) bool { return plan.Moved[a] < plan.Moved[b] })
	return plan
}

// assignKeys finalizes destination d for the given snapshot key indices.
func assignKeys(sp *Space, plan *balance.Plan, idxs []int, d int) {
	for _, i := range idxs {
		ks := sp.snap.Keys[i]
		plan.Loads[d] += ks.Cost
		if d != ks.Hash {
			plan.Table.Put(ks.Key, d)
		}
		if d != ks.Dest {
			plan.Moved = append(plan.Moved, ks.Key)
			plan.MoveDest[ks.Key] = d
			plan.MigrationCost += ks.Mem
		}
	}
}
