package compact

import (
	"sort"
	"testing"
)

// Fuzz targets double as seeded unit tests under plain `go test`.

func FuzzDiscretizerDeviationBounded(f *testing.F) {
	f.Add([]byte{8, 6, 3, 2, 2, 1, 1}, uint8(2))
	f.Add([]byte{200, 199, 150, 90, 3, 1}, uint8(4))
	f.Add([]byte{1, 1, 1, 1}, uint8(0))
	f.Fuzz(func(t *testing.T, raw []byte, rExp uint8) {
		if len(raw) == 0 {
			return
		}
		R := int64(1) << (rExp % 9)
		xs := make([]int64, len(raw))
		for i, b := range raw {
			xs[i] = int64(b) + 1
		}
		sort.Slice(xs, func(a, b int) bool { return xs[a] > xs[b] })
		d := NewDiscretizer(xs[0], R)
		reps := d.Reps()
		// Ladder sanity: strictly decreasing, ends at 1, covers max.
		for i := 1; i < len(reps); i++ {
			if reps[i-1] <= reps[i] {
				t.Fatalf("ladder not strictly decreasing: %v", reps)
			}
		}
		if reps[len(reps)-1] != 1 {
			t.Fatalf("ladder does not end at 1: %v", reps)
		}
		if reps[0] < xs[0] {
			t.Fatalf("ladder top %d below max %d", reps[0], xs[0])
		}
		maxGap := int64(1)
		for i := 1; i < len(reps); i++ {
			if g := reps[i-1] - reps[i]; g > maxGap {
				maxGap = g
			}
		}
		for _, x := range xs {
			phi := d.Map(x)
			// φ(x) must be one of the representatives.
			found := false
			for _, r := range reps {
				if r == phi {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("φ(%d) = %d is not a representative", x, phi)
			}
			// The accumulated deviation stays within one ladder gap.
			if d.Delta() > maxGap || d.Delta() < -maxGap {
				t.Fatalf("|δ| = %d exceeds max gap %d", d.Delta(), maxGap)
			}
		}
	})
}

func FuzzNaiveDiscretizePicksRepresentative(f *testing.F) {
	f.Add([]byte{5, 4, 3, 2, 1}, uint8(3))
	f.Fuzz(func(t *testing.T, raw []byte, rExp uint8) {
		if len(raw) == 0 {
			return
		}
		R := int64(1) << (rExp % 9)
		xs := make([]int64, len(raw))
		var max int64 = 1
		for i, b := range raw {
			xs[i] = int64(b) + 1
			if xs[i] > max {
				max = xs[i]
			}
		}
		out := NaiveDiscretize(xs, R)
		reps := Representatives(max, R)
		in := map[int64]bool{}
		for _, r := range reps {
			in[r] = true
		}
		for i, phi := range out {
			if !in[phi] {
				t.Fatalf("naive φ(%d) = %d not a representative", xs[i], phi)
			}
		}
	})
}
