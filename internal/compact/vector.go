package compact

import (
	"math"
	"sort"

	"repro/internal/stats"
)

// Vector is the paper's 6-dimensional record (d′, d, dh, vc, vS, #):
// Count keys that currently live on instance Cur, hash to instance
// Hash, and each carry discretized cost Cost and windowed memory Mem.
// Next is the planning destination d′; -1 encodes the paper's nil
// (disassociated into the candidate set).
type Vector struct {
	Next  int
	Cur   int
	Hash  int
	Cost  int64
	Mem   int64
	Count int64
	// keyIdx are the snapshot indices of the keys folded into this
	// vector, used to materialize the plan back onto real keys.
	keyIdx []int
}

// Gamma returns the vector's migration priority γ = Cost^β / Mem using
// the shared helper semantics (Mem < 1 treated as 1).
func (v *Vector) Gamma(beta float64) float64 { return gammaOf(v.Cost, v.Mem, beta) }

// Space groups a snapshot's keys into the compact vector space Kc after
// discretizing vc and vS with degree R.
type Space struct {
	Vectors []*Vector
	// R is the degree of discretization used.
	R int64
	// snapshot retained for materialization.
	snap *stats.Snapshot
	// estCost[i] is the discretized cost of snapshot key i, estMem the
	// discretized memory; kept for load-estimation-error reporting.
	estCost []int64
	estMem  []int64
}

// Build folds the snapshot into vectors: keys agreeing on
// (Cur, Hash, φ(cost), φ(mem)) merge into one vector with summed count.
// R = 1 reproduces the exact value space (finest granularity).
func Build(snap *stats.Snapshot, R int64) *Space {
	costs := make([]int64, len(snap.Keys))
	mems := make([]int64, len(snap.Keys))
	for i, ks := range snap.Keys {
		costs[i] = ks.Cost
		mems[i] = ks.Mem
	}
	ec := DiscretizeAll(costs, R)
	em := DiscretizeAll(mems, R)

	type sig struct {
		cur, hash int
		c, m      int64
	}
	groups := make(map[sig]*Vector)
	for i, ks := range snap.Keys {
		s := sig{cur: ks.Dest, hash: ks.Hash, c: ec[i], m: em[i]}
		v := groups[s]
		if v == nil {
			v = &Vector{Next: ks.Dest, Cur: ks.Dest, Hash: ks.Hash, Cost: ec[i], Mem: em[i]}
			groups[s] = v
		}
		v.Count++
		v.keyIdx = append(v.keyIdx, i)
	}
	sp := &Space{R: R, snap: snap, estCost: ec, estMem: em}
	for _, v := range groups {
		sp.Vectors = append(sp.Vectors, v)
	}
	// Deterministic order: by cost desc, then mem, cur, hash.
	sort.Slice(sp.Vectors, func(a, b int) bool {
		va, vb := sp.Vectors[a], sp.Vectors[b]
		if va.Cost != vb.Cost {
			return va.Cost > vb.Cost
		}
		if va.Mem != vb.Mem {
			return va.Mem < vb.Mem
		}
		if va.Cur != vb.Cur {
			return va.Cur < vb.Cur
		}
		return va.Hash < vb.Hash
	})
	return sp
}

// Size returns |Kc|, the number of distinct vectors.
func (sp *Space) Size() int { return len(sp.Vectors) }

// EstimatedLoads returns per-instance loads computed from discretized
// costs under the snapshot's current destinations.
func (sp *Space) EstimatedLoads() []int64 {
	loads := make([]int64, sp.snap.ND)
	for i, ks := range sp.snap.Keys {
		loads[ks.Dest] += sp.estCost[i]
	}
	return loads
}

// LoadEstimationError returns the Fig. 11(b) metric: the maximum over
// instances of |estimated − actual| / actual, as a percentage, under
// the snapshot's current assignment.
func (sp *Space) LoadEstimationError() float64 {
	act := sp.snap.Loads()
	est := sp.EstimatedLoads()
	var worst float64
	for d := range act {
		if act[d] == 0 {
			continue
		}
		diff := float64(est[d] - act[d])
		if diff < 0 {
			diff = -diff
		}
		if e := 100 * diff / float64(act[d]); e > worst {
			worst = e
		}
	}
	return worst
}

// gammaOf computes γ = cost^β / mem with mem clamped to at least 1.
func gammaOf(cost, mem int64, beta float64) float64 {
	s := float64(mem)
	if s < 1 {
		s = 1
	}
	if cost <= 0 {
		return 0
	}
	return math.Pow(float64(cost), beta) / s
}
