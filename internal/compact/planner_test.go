package compact

import (
	"math/rand"
	"testing"

	"repro/internal/balance"
	"repro/internal/stats"
	"repro/internal/tuple"
)

// White-box tests of the vector-granularity planning machinery.

func vplanFixture(nd int, rows ...[5]int64) (*Space, *vplan) {
	snap := mkSnap(nd, rows...)
	sp := Build(snap, 1)
	vp := newVplan(sp, nd, balance.Config{ThetaMax: 0, Beta: 1})
	return sp, vp
}

func TestMoveUnitsSplitsVectors(t *testing.T) {
	// Three identical keys on d0, all routed (hash d1): moving 2 back
	// must split the unit.
	_, vp := vplanFixture(2,
		[5]int64{1, 4, 4, 0, 1},
		[5]int64{2, 4, 4, 0, 1},
		[5]int64{3, 4, 4, 0, 1},
	)
	if len(vp.units) != 1 || vp.units[0].count != 3 {
		t.Fatalf("fixture grouped wrong: %d units", len(vp.units))
	}
	vp.moveUnits(vp.units[0], 1, 2)
	if len(vp.units) != 2 {
		t.Fatalf("split produced %d units, want 2", len(vp.units))
	}
	if vp.loads[0] != 4 || vp.loads[1] != 8 {
		t.Fatalf("loads after split = %v, want [4 8]", vp.loads)
	}
}

func TestMoveUnitsWholeVector(t *testing.T) {
	_, vp := vplanFixture(2, [5]int64{1, 4, 4, 0, 1}, [5]int64{2, 4, 4, 0, 1})
	vp.moveUnits(vp.units[0], 1, 99) // take > count moves everything
	if len(vp.units) != 1 || vp.units[0].dest != 1 {
		t.Fatalf("whole-vector move failed: %+v", vp.units[0])
	}
	if vp.loads[0] != 0 || vp.loads[1] != 8 {
		t.Fatalf("loads = %v", vp.loads)
	}
}

func TestDetachPartial(t *testing.T) {
	_, vp := vplanFixture(2,
		[5]int64{1, 4, 4, 0, 0},
		[5]int64{2, 4, 4, 0, 0},
	)
	vp.detach(vp.units[0], 1)
	if len(vp.cand) != 1 || vp.cand[0].count != 1 || vp.cand[0].dest != -1 {
		t.Fatalf("detach wrong: %+v", vp.cand)
	}
	if vp.loads[0] != 4 {
		t.Fatalf("load after detach = %d", vp.loads[0])
	}
}

func TestAssignAllSplitsAcrossInstances(t *testing.T) {
	// Four unit-cost keys detached with Lmax = 2 per instance: the
	// block must split 2/2.
	_, vp := vplanFixture(2,
		[5]int64{1, 1, 1, 0, 0},
		[5]int64{2, 1, 1, 0, 0},
		[5]int64{3, 1, 1, 0, 0},
		[5]int64{4, 1, 1, 0, 0},
	)
	vp.detach(vp.units[0], 4)
	vp.lmax = 2
	vp.assignAll()
	if vp.loads[0] != 2 || vp.loads[1] != 2 {
		t.Fatalf("assignAll loads = %v, want [2 2]", vp.loads)
	}
}

func TestMaterializePrefersStayingPut(t *testing.T) {
	// Vector of 4 keys on d0; plan keeps 2 on d0 and sends 2 to d1:
	// exactly 2 keys may appear in Moved.
	snap := mkSnap(2,
		[5]int64{1, 1, 3, 0, 0},
		[5]int64{2, 1, 3, 0, 0},
		[5]int64{3, 1, 3, 0, 0},
		[5]int64{4, 1, 3, 0, 0},
	)
	sp := Build(snap, 1)
	vp := newVplan(sp, 2, balance.Config{ThetaMax: 0, Beta: 1})
	vp.detach(vp.units[0], 4)
	vp.lmax = 2
	vp.assignAll()
	plan := materialize(sp, vp, balance.Config{ThetaMax: 0, Beta: 1})
	if len(plan.Moved) != 2 {
		t.Fatalf("moved %d keys, want 2 (stay-preference)", len(plan.Moved))
	}
	if plan.MigrationCost != 6 {
		t.Fatalf("migration cost %d, want 2 keys × mem 3", plan.MigrationCost)
	}
}

func TestCompactPlannerHonorsTableBoundViaCleaning(t *testing.T) {
	// Many routed keys and a tight bound: the clean loop must shrink
	// the final table to ≤ Amax even if it costs migration.
	rng := rand.New(rand.NewSource(31))
	snap := &stats.Snapshot{ND: 4}
	for i := 0; i < 400; i++ {
		hash := rng.Intn(4)
		dest := (hash + 1) % 4 // every key routed
		snap.Keys = append(snap.Keys, stats.KeyStat{
			Key: tuple.Key(i), Cost: int64(1 + rng.Intn(5)), Mem: int64(1 + rng.Intn(5)),
			Dest: dest, Hash: hash,
		})
	}
	stats.SortByCostDesc(snap.Keys)
	cfg := balance.Config{ThetaMax: 0.5, TableMax: 40, Beta: 1.5}
	plan := Planner{R: 2}.Plan(snap, cfg)
	if plan.Table.Len() > cfg.TableMax {
		t.Fatalf("compact plan table %d exceeds bound %d", plan.Table.Len(), cfg.TableMax)
	}
	checkPlan(t, snap, plan)
}

func TestCompactPlannerDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	snap := &stats.Snapshot{ND: 3}
	for i := 0; i < 300; i++ {
		snap.Keys = append(snap.Keys, stats.KeyStat{
			Key: tuple.Key(i), Cost: int64(1 + rng.Intn(20)), Mem: int64(1 + rng.Intn(20)),
			Dest: rng.Intn(3), Hash: rng.Intn(3),
		})
	}
	stats.SortByCostDesc(snap.Keys)
	cfg := balance.Config{ThetaMax: 0.1, TableMax: 100, Beta: 1.5}
	a := Planner{R: 4}.Plan(snap, cfg)
	b := Planner{R: 4}.Plan(snap, cfg)
	if a.MigrationCost != b.MigrationCost || a.TableSize() != b.TableSize() {
		t.Fatal("compact planner non-deterministic")
	}
}

func TestNaiveDiscretizeNearest(t *testing.T) {
	// reps for max 8, R 4: [8 4 2 1]; nearest mapping with ties to lo.
	out := NaiveDiscretize([]int64{8, 6, 3, 2, 1, 5}, 4)
	want := []int64{8, 4, 2, 2, 1, 4}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("NaiveDiscretize = %v, want %v", out, want)
		}
	}
}

func TestNaiveDiscretizeWorseDeviationThanHolistic(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	xs := make([]int64, 5000)
	for i := range xs {
		xs[i] = int64(1 + rng.Intn(50))
	}
	naive := NaiveDiscretize(xs, 8)
	hol := DiscretizeAll(xs, 8)
	var dn, dh int64
	for i := range xs {
		dn += xs[i] - naive[i]
		dh += xs[i] - hol[i]
	}
	if dn < 0 {
		dn = -dn
	}
	if dh < 0 {
		dh = -dh
	}
	if dh > dn {
		t.Fatalf("holistic |δ|=%d worse than naive |δ|=%d", dh, dn)
	}
}
