package compact_test

import (
	"fmt"

	"repro/internal/compact"
)

// ExampleDiscretizer walks the worked example of the paper's Fig. 6(b):
// ten values discretized at degree R = 4 with zero total deviation.
func ExampleDiscretizer() {
	xs := []int64{8, 6, 3, 2, 2, 1, 1, 1, 1, 1}
	d := compact.NewDiscretizer(8, 4)
	phis := make([]int64, len(xs))
	for i, x := range xs {
		phis[i] = d.Map(x)
	}
	fmt.Println(phis)
	fmt.Printf("total deviation: %d\n", d.Delta())
	// Output:
	// [8 4 4 2 2 2 1 1 1 1]
	// total deviation: 0
}

// ExampleRepresentatives shows the half-linear-half-exponential ladder.
func ExampleRepresentatives() {
	fmt.Println(compact.Representatives(8, 4))
	// Output: [8 4 2 1]
}
