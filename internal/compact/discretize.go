// Package compact implements §IV of the paper: the 6-dimensional
// compact representation of key statistics (d′, d, dh, vc, vS, #), the
// half-linear-half-exponential (HLHE) discretization of computation
// cost and memory values with greedy deviation cancellation
// (Theorem 3), and the Mixed algorithm adapted to plan over vectors
// instead of individual keys.
package compact

import "sort"

// Representatives builds the HLHE representative-value ladder for a
// maximum observed value and a degree of discretization R = 2^r:
// a linear part s·R, (s−1)·R, …, R with s = ⌊max/R⌋, followed by an
// exponential tail R/2, R/4, …, 2, 1. The result is strictly
// decreasing. R must be a power of two ≥ 1; max must be ≥ 1.
func Representatives(max, R int64) []int64 {
	if max < 1 {
		max = 1
	}
	if R < 1 {
		R = 1
	}
	var reps []int64
	s := max / R
	// When max is not a multiple of R the paper's ladder tops out below
	// max, leaving values in (s·R, max] with a single candidate and an
	// unbounded one-sided deviation; extending one linear step keeps
	// every value bracketed (and is a no-op when R divides max).
	if s*R < max {
		reps = append(reps, (s+1)*R)
	}
	for i := s; i >= 1; i-- {
		reps = append(reps, i*R)
	}
	for v := R / 2; v >= 1; v /= 2 {
		reps = append(reps, v)
	}
	if len(reps) == 0 {
		reps = []int64{1}
	}
	return reps
}

// Discretizer maps raw values onto HLHE representatives while greedily
// cancelling the accumulated deviation δ = Σ(x − φ(x)): of the two
// bracketing representatives, it picks the one minimizing |δ| after the
// step (ties favour the smaller), so partial sums of discretized values
// track the true sums — the property Theorem 3 relies on, and the exact
// choice sequence of the Fig. 6(b) worked example. Values must be fed
// in non-increasing order, matching the paper's setup.
type Discretizer struct {
	reps []int64
	// delta is the running accumulated deviation Σ(x − φ(x)).
	delta int64
}

// NewDiscretizer builds a discretizer for values up to max with degree R.
func NewDiscretizer(max, R int64) *Discretizer {
	return &Discretizer{reps: Representatives(max, R)}
}

// Reps exposes the representative ladder (for tests and reporting).
func (d *Discretizer) Reps() []int64 { return d.reps }

// Delta returns the current accumulated deviation.
func (d *Discretizer) Delta() int64 { return d.delta }

// Map returns φ(x) for the next value in the non-increasing stream.
// Values below 1 are clamped to 1 (the paper normalizes the smallest
// value to at least 1).
func (d *Discretizer) Map(x int64) int64 {
	if x < 1 {
		x = 1
	}
	reps := d.reps
	if x >= reps[0] {
		d.delta += x - reps[0]
		return reps[0]
	}
	// Find j with reps[j-1] > x ≥ reps[j]; reps is strictly decreasing.
	j := sort.Search(len(reps), func(i int) bool { return reps[i] <= x })
	if j == len(reps) {
		j = len(reps) - 1 // below the smallest representative (x clamped, shouldn't happen)
	}
	lo := reps[j]
	hi := reps[j-1]
	// Pick the candidate minimizing the absolute accumulated deviation;
	// ties favour the smaller representative (matches Fig. 6(b)).
	dLo := d.delta + x - lo
	dHi := d.delta + x - hi
	phi := lo
	if absI(dHi) < absI(dLo) {
		phi = hi
	}
	d.delta += x - phi
	return phi
}

func absI(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// NaiveDiscretize maps each value to its nearest representative
// independently — the "simple piecewise constant function" strawman of
// Fig. 6(a). It exists for the ablation comparing holistic greedy
// deviation cancellation against per-value rounding.
func NaiveDiscretize(xs []int64, R int64) []int64 {
	var max int64 = 1
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	reps := Representatives(max, R)
	out := make([]int64, len(xs))
	for i, x := range xs {
		if x < 1 {
			x = 1
		}
		j := sort.Search(len(reps), func(i int) bool { return reps[i] <= x })
		if j == 0 {
			out[i] = reps[0]
			continue
		}
		if j == len(reps) {
			j = len(reps) - 1
		}
		lo, hi := reps[j], reps[j-1]
		if x-lo <= hi-x {
			out[i] = lo
		} else {
			out[i] = hi
		}
	}
	return out
}

// DiscretizeAll maps a batch of values. The batch is processed in
// non-increasing order of value, and the result slice is index-aligned
// with the input.
func DiscretizeAll(xs []int64, R int64) []int64 {
	if len(xs) == 0 {
		return nil
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] > xs[idx[b]] })
	max := xs[idx[0]]
	d := NewDiscretizer(max, R)
	out := make([]int64, len(xs))
	for _, i := range idx {
		out[i] = d.Map(xs[i])
	}
	return out
}
