package compact

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/balance"
	"repro/internal/stats"
	"repro/internal/tuple"
)

func benchSnap(nk int) *stats.Snapshot {
	rng := rand.New(rand.NewSource(2))
	s := &stats.Snapshot{ND: 10}
	for i := 0; i < nk; i++ {
		c := int64(1 + rng.Intn(100))
		hash := rng.Intn(10)
		dest := hash
		if rng.Intn(4) == 0 {
			dest = rng.Intn(10)
		}
		s.Keys = append(s.Keys, stats.KeyStat{
			Key: tuple.Key(i), Cost: c, Mem: c * int64(1+rng.Intn(3)),
			Dest: dest, Hash: hash,
		})
	}
	stats.SortByCostDesc(s.Keys)
	return s
}

func BenchmarkBuildVectors(b *testing.B) {
	snap := benchSnap(50000)
	for _, R := range []int64{1, 8, 64} {
		b.Run(fmt.Sprintf("R=%d", R), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Build(snap, R)
			}
		})
	}
}

func BenchmarkCompactPlan(b *testing.B) {
	snap := benchSnap(50000)
	cfg := balance.DefaultConfig()
	for _, R := range []int64{1, 8, 64} {
		b.Run(fmt.Sprintf("R=%d", R), func(b *testing.B) {
			b.ReportAllocs()
			p := Planner{R: R}
			for i := 0; i < b.N; i++ {
				p.Plan(snap, cfg)
			}
		})
	}
}

func BenchmarkDiscretizeAll(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]int64, 100000)
	for i := range xs {
		xs[i] = int64(1 + rng.Intn(1000))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DiscretizeAll(xs, 8)
	}
}
