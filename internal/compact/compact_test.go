package compact

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/balance"
	"repro/internal/stats"
	"repro/internal/tuple"
)

func TestRepresentativesPaperExample(t *testing.T) {
	// §IV-B worked example: r = 2, R = 4, max = 8 → y = 8, 4, 2, 1.
	reps := Representatives(8, 4)
	want := []int64{8, 4, 2, 1}
	if len(reps) != len(want) {
		t.Fatalf("reps = %v, want %v", reps, want)
	}
	for i := range want {
		if reps[i] != want[i] {
			t.Fatalf("reps = %v, want %v", reps, want)
		}
	}
}

func TestRepresentativesStrictlyDecreasing(t *testing.T) {
	f := func(max uint16, rExp uint8) bool {
		R := int64(1) << (rExp % 9)
		reps := Representatives(int64(max)+1, R)
		for i := 1; i < len(reps); i++ {
			if reps[i-1] <= reps[i] {
				return false
			}
		}
		return len(reps) > 0 && reps[len(reps)-1] == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDiscretizerPaperExampleZeroDeviation(t *testing.T) {
	// Fig. 6(b): costs 8,6,3,2,2,1,1,1,1,1 with R=4 discretize with
	// per-step deviations 0,2,−1,0,0,−1,0,0,0,0 and total δ = 0.
	xs := []int64{8, 6, 3, 2, 2, 1, 1, 1, 1, 1}
	d := NewDiscretizer(8, 4)
	wantPhi := []int64{8, 4, 4, 2, 2, 2, 1, 1, 1, 1}
	for i, x := range xs {
		if got := d.Map(x); got != wantPhi[i] {
			t.Fatalf("φ(x%d=%d) = %d, want %d (δ so far %d)", i+1, x, got, wantPhi[i], d.Delta())
		}
	}
	if d.Delta() != 0 {
		t.Fatalf("total deviation = %d, want 0 (Theorem 3)", d.Delta())
	}
}

func TestDiscretizerDeviationStaysBounded(t *testing.T) {
	// Theorem 3 in practice: |δ| never exceeds the largest gap between
	// consecutive representatives, because each choice cancels.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 100 + rng.Intn(400)
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = int64(1 + rng.Intn(200))
		}
		// Non-increasing order as the contract requires.
		sortDesc(xs)
		R := int64(1) << rng.Intn(6)
		d := NewDiscretizer(xs[0], R)
		maxGap := int64(0)
		reps := d.Reps()
		for i := 1; i < len(reps); i++ {
			if g := reps[i-1] - reps[i]; g > maxGap {
				maxGap = g
			}
		}
		for _, x := range xs {
			d.Map(x)
			if d.Delta() > maxGap || d.Delta() < -maxGap {
				t.Fatalf("trial %d: |δ| = %d exceeds max representative gap %d", trial, d.Delta(), maxGap)
			}
		}
	}
}

func sortDesc(xs []int64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] > xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestDiscretizeAllAlignment(t *testing.T) {
	xs := []int64{3, 8, 1, 6}
	out := DiscretizeAll(xs, 4)
	if len(out) != len(xs) {
		t.Fatalf("output length %d, want %d", len(out), len(xs))
	}
	// The largest value maps to the top representative exactly.
	if out[1] != 8 {
		t.Fatalf("φ(8) = %d, want 8", out[1])
	}
}

func TestDiscretizeAllREqualsOneIsNearExact(t *testing.T) {
	// R = 1 gives representatives max, max−1, …, 1: every integer is
	// its own representative, so φ is the identity.
	xs := []int64{5, 4, 3, 2, 1, 9, 7}
	out := DiscretizeAll(xs, 1)
	for i := range xs {
		if out[i] != xs[i] {
			t.Fatalf("R=1: φ(%d) = %d, want identity", xs[i], out[i])
		}
	}
}

func mkSnap(nd int, rows ...[5]int64) *stats.Snapshot {
	s := &stats.Snapshot{ND: nd}
	for _, r := range rows {
		s.Keys = append(s.Keys, stats.KeyStat{
			Key: tuple.Key(r[0]), Cost: r[1], Freq: r[1], Mem: r[2],
			Dest: int(r[3]), Hash: int(r[4]),
		})
	}
	stats.SortByCostDesc(s.Keys)
	return s
}

func TestBuildGroupsEqualKeys(t *testing.T) {
	// Two keys with identical (dest, hash, cost, mem) fold into one
	// vector with Count 2 — the paper's (d1,d2,d1,4,4,2) example.
	snap := mkSnap(3,
		[5]int64{1, 4, 4, 1, 0},
		[5]int64{2, 4, 4, 1, 0},
		[5]int64{3, 4, 4, 2, 0},
	)
	sp := Build(snap, 1)
	if sp.Size() != 2 {
		t.Fatalf("|Kc| = %d, want 2", sp.Size())
	}
	var found bool
	for _, v := range sp.Vectors {
		if v.Cur == 1 && v.Hash == 0 && v.Count == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("merged vector (d1, d0-hash, count 2) not found")
	}
}

func TestSpaceShrinksWithLargerR(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	snap := &stats.Snapshot{ND: 4}
	for i := 0; i < 2000; i++ {
		c := int64(1 + rng.Intn(300))
		snap.Keys = append(snap.Keys, stats.KeyStat{
			Key: tuple.Key(i), Cost: c, Mem: int64(1 + rng.Intn(100)),
			Dest: rng.Intn(4), Hash: rng.Intn(4),
		})
	}
	stats.SortByCostDesc(snap.Keys)
	s1 := Build(snap, 1).Size()
	s8 := Build(snap, 8).Size()
	s64 := Build(snap, 64).Size()
	if !(s64 <= s8 && s8 <= s1) {
		t.Fatalf("|Kc| not shrinking with R: R1=%d R8=%d R64=%d", s1, s8, s64)
	}
	if s64 >= s1 {
		t.Fatalf("coarse discretization did not compress: R1=%d R64=%d", s1, s64)
	}
}

func TestLoadEstimationErrorSmall(t *testing.T) {
	// Fig. 11(b): errors stay under ~1% even at R = 256 thanks to the
	// deviation-cancelling discretizer.
	rng := rand.New(rand.NewSource(4))
	snap := &stats.Snapshot{ND: 10}
	for i := 0; i < 20000; i++ {
		c := int64(1 + rng.Intn(100))
		snap.Keys = append(snap.Keys, stats.KeyStat{
			Key: tuple.Key(i), Cost: c, Mem: c,
			Dest: rng.Intn(10), Hash: rng.Intn(10),
		})
	}
	stats.SortByCostDesc(snap.Keys)
	for _, R := range []int64{1, 8} {
		sp := Build(snap, R)
		if err := sp.LoadEstimationError(); err > 1.0 {
			t.Fatalf("R=%d: load estimation error %.3f%% exceeds 1%%", R, err)
		}
	}
	// Coarser degrees trade accuracy for speed; the error must stay
	// small (a few percent) and grow monotonically in expectation.
	for _, R := range []int64{64, 256} {
		sp := Build(snap, R)
		if err := sp.LoadEstimationError(); err > 3.0 {
			t.Fatalf("R=%d: load estimation error %.3f%% exceeds 3%%", R, err)
		}
	}
}

func TestCompactPlannerConsistencyAndBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 15; trial++ {
		nd := 2 + rng.Intn(6)
		snap := &stats.Snapshot{ND: nd}
		for i := 0; i < 500; i++ {
			c := int64(1 + rng.Intn(40))
			hash := rng.Intn(nd)
			dest := hash
			if rng.Intn(5) == 0 {
				dest = rng.Intn(nd)
			}
			if c > 20 && rng.Intn(2) == 0 {
				dest = 0 // skew
			}
			snap.Keys = append(snap.Keys, stats.KeyStat{
				Key: tuple.Key(i), Cost: c, Mem: c, Dest: dest, Hash: hash,
			})
		}
		stats.SortByCostDesc(snap.Keys)
		cfg := balance.Config{ThetaMax: 0.08, TableMax: 400, Beta: 1.5}
		plan := Planner{R: 4}.Plan(snap, cfg)
		checkPlan(t, snap, plan)
		// The plan is computed on discretized loads; true-load overload
		// may exceed θmax slightly, bounded by the estimation error.
		if plan.OverloadTheta > cfg.ThetaMax+0.05 {
			t.Fatalf("trial %d: compact plan overload θ = %v far above θmax", trial, plan.OverloadTheta)
		}
	}
}

func checkPlan(t *testing.T, snap *stats.Snapshot, plan *balance.Plan) {
	t.Helper()
	loads := make([]int64, snap.ND)
	var mig int64
	moved := make(map[tuple.Key]bool)
	for _, k := range plan.Moved {
		moved[k] = true
	}
	for _, ks := range snap.Keys {
		d := ks.Hash
		if td, ok := plan.Table.Lookup(ks.Key); ok {
			d = td
		}
		loads[d] += ks.Cost
		if d != ks.Dest {
			if !moved[ks.Key] {
				t.Fatalf("key %d moved %d→%d but absent from Moved", ks.Key, ks.Dest, d)
			}
			mig += ks.Mem
		}
	}
	if mig != plan.MigrationCost {
		t.Fatalf("MigrationCost = %d, recomputed %d", plan.MigrationCost, mig)
	}
	for d := range loads {
		if loads[d] != plan.Loads[d] {
			t.Fatalf("Loads[%d] = %d, recomputed %d", d, plan.Loads[d], loads[d])
		}
	}
}

func TestCompactPlannerFasterSpaceThanKeys(t *testing.T) {
	// The whole point of §IV: |Kc| ≪ |K| on realistic snapshots.
	rng := rand.New(rand.NewSource(66))
	snap := &stats.Snapshot{ND: 10}
	for i := 0; i < 50000; i++ {
		c := int64(1 + rng.Intn(50))
		snap.Keys = append(snap.Keys, stats.KeyStat{
			Key: tuple.Key(i), Cost: c, Mem: c, Dest: rng.Intn(10), Hash: rng.Intn(10),
		})
	}
	stats.SortByCostDesc(snap.Keys)
	sp := Build(snap, 8)
	if sp.Size() > len(snap.Keys)/10 {
		t.Fatalf("|Kc| = %d not ≪ |K| = %d", sp.Size(), len(snap.Keys))
	}
}

func TestGammaOfClampsMem(t *testing.T) {
	if g := gammaOf(4, 0, 1); g != 4 {
		t.Fatalf("γ(4, 0) = %v, want 4 (mem clamped to 1)", g)
	}
	if g := gammaOf(0, 5, 1.5); g != 0 {
		t.Fatalf("γ(0, 5) = %v, want 0", g)
	}
}
