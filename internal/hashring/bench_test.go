package hashring

import (
	"testing"

	"repro/internal/tuple"
)

func BenchmarkHash(b *testing.B) {
	r := New(10, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Hash(tuple.Key(i))
	}
}

// BenchmarkRingLookupLUT vs BenchmarkRingLookupSearch measures the
// dense-LUT fast path against the O(log n·replicas) binary search it
// replaced on the per-tuple routing path.
func BenchmarkRingLookupLUT(b *testing.B) {
	r := New(10, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Hash(tuple.Key(i))
	}
}

func BenchmarkRingLookupSearch(b *testing.B) {
	r := New(10, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.searchHash(mix(uint64(i)))
	}
}

func BenchmarkNewRing(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		New(40, 0)
	}
}
