package hashring

import (
	"testing"

	"repro/internal/tuple"
)

func BenchmarkHash(b *testing.B) {
	r := New(10, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Hash(tuple.Key(i))
	}
}

func BenchmarkNewRing(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		New(40, 0)
	}
}
