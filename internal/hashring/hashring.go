// Package hashring implements consistent hashing over task instances,
// the universal hash function h : K → D the paper assumes as the default
// key assignment (§II-A, citing Karger et al. [14]).
//
// The ring places VirtualNodes replicas of every instance on a 64-bit
// circle; a key is owned by the first replica clockwise from the key's
// hash point. Consistent hashing matters for the paper's scale-out
// experiment (Fig. 15): when an instance is added, only ~1/ND of the
// keys change their default destination, so the routing table does not
// have to absorb a full reshuffle.
package hashring

import (
	"fmt"
	"sort"

	"repro/internal/tuple"
)

// DefaultVirtualNodes is the replica count per instance. 128 keeps the
// max/min ownership ratio within a few percent for ND ≤ 64 while the
// ring stays small enough that rebuilds are cheap.
const DefaultVirtualNodes = 128

// Ring is an immutable consistent-hash ring over instance IDs 0..n-1.
// Instances are dense integers because the paper's D is a fixed set of
// task instances inside one operator. The zero value is unusable; build
// rings with New.
type Ring struct {
	points   []point
	n        int
	replicas int

	// lut is a dense power-of-two successor table built at construction,
	// making Hash an O(1) masked array index on the hot path. Bucket i
	// covers the hash range [i<<shift, (i+1)<<shift): buckets containing
	// no ring point store the owning instance directly (every hash in
	// such a bucket has the same clockwise successor), buckets containing
	// one or more points store -1 and fall back to the exact binary
	// search over the ring. With lutFactor× more buckets than points the
	// fast path covers the vast majority of lookups while results stay
	// bit-identical to the search.
	lut   []int32
	shift uint
}

type point struct {
	hash uint64
	inst int
}

// New builds a ring over n instances with the given number of virtual
// nodes per instance. n must be positive; replicas ≤ 0 selects
// DefaultVirtualNodes.
func New(n, replicas int) *Ring {
	if n <= 0 {
		panic(fmt.Sprintf("hashring: non-positive instance count %d", n))
	}
	if replicas <= 0 {
		replicas = DefaultVirtualNodes
	}
	r := &Ring{n: n, replicas: replicas}
	r.points = make([]point, 0, n*replicas)
	for inst := 0; inst < n; inst++ {
		for v := 0; v < replicas; v++ {
			// Domain-separate point hashes from key hashes (Hash uses
			// mix(k) directly): without the double mix, instance 0's
			// points would be mix(v), colliding with the hash positions
			// of the small integer keys synthetic workloads use.
			h := mix(mix(uint64(inst)+1) ^ (uint64(v) + 0x9e3779b97f4a7c15))
			r.points = append(r.points, point{hash: h, inst: inst})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].inst < r.points[j].inst
	})
	r.buildLUT()
	return r
}

// lutFactor oversizes the lookup table relative to the point count so
// most buckets are point-free (the O(1) path); maxLUTBits caps the
// table at 4 MiB of int32 entries for very large rings.
const (
	lutFactor  = 8
	maxLUTBits = 20
)

// buildLUT precomputes the successor table from the sorted point list.
// It walks points and buckets together from high hash to low, so every
// empty bucket is stamped with the instance of the first point above it
// (wrapping to points[0] past the top of the circle).
func (r *Ring) buildLUT() {
	bits := uint(1)
	for 1<<bits < len(r.points)*lutFactor && bits < maxLUTBits {
		bits++
	}
	size := 1 << bits
	shift := 64 - bits
	lut := make([]int32, size)
	succ := int32(r.points[0].inst) // wrap successor for the top arc
	b := size - 1
	for pi := len(r.points) - 1; pi >= 0; {
		pb := int(r.points[pi].hash >> shift)
		for ; b > pb; b-- {
			lut[b] = succ
		}
		lut[pb] = -1 // bucket holds ring points: exact search decides
		for pi >= 0 && int(r.points[pi].hash>>shift) == pb {
			succ = int32(r.points[pi].inst)
			pi--
		}
		b = pb - 1
	}
	for ; b >= 0; b-- {
		lut[b] = succ
	}
	r.lut, r.shift = lut, shift
}

// Grow returns a new ring with one more instance, leaving r untouched.
// Existing instances keep their virtual-node positions, so only keys
// falling into the new instance's arcs move — the property the
// scale-out experiment relies on.
func (r *Ring) Grow() *Ring {
	return New(r.n+1, r.replicas)
}

// Shrink returns a new ring with the last instance removed, leaving r
// untouched. Point positions are deterministic per (instance, replica),
// so the surviving instances keep their arcs exactly: only keys whose
// clockwise successor was one of the retiring instance's points move —
// and they move to the next surviving point, never between survivors.
// This is the scale-in mirror of Grow. n must be at least 2.
func (r *Ring) Shrink() *Ring {
	if r.n < 2 {
		panic(fmt.Sprintf("hashring: cannot shrink a ring of %d instance(s)", r.n))
	}
	return New(r.n-1, r.replicas)
}

// Instances returns the number of instances on the ring.
func (r *Ring) Instances() int { return r.n }

// Hash returns the default destination instance for key k.
func (r *Ring) Hash(k tuple.Key) int {
	h := mix(uint64(k))
	if d := r.lut[h>>r.shift]; d >= 0 {
		return int(d)
	}
	return r.searchHash(h)
}

// HashBatch resolves a whole batch of keys in one call, writing
// dsts[i] = Hash(keys[i]). The mix+LUT fast path runs as a tight loop
// with no per-key interface dispatch, which is what the batched
// routing path (route.Assignment.DestBatch) wants.
func (r *Ring) HashBatch(keys []tuple.Key, dsts []int) {
	lut, shift := r.lut, r.shift
	for i, k := range keys {
		h := mix(uint64(k))
		if d := lut[h>>shift]; d >= 0 {
			dsts[i] = int(d)
		} else {
			dsts[i] = r.searchHash(h)
		}
	}
}

// HashTuples is HashBatch straight off a tuple slice: dsts[i] =
// Hash(ts[i].Key) without a separate key-extraction pass.
func (r *Ring) HashTuples(ts []tuple.Tuple, dsts []int) {
	lut, shift := r.lut, r.shift
	for i := range ts {
		h := mix(uint64(ts[i].Key))
		if d := lut[h>>shift]; d >= 0 {
			dsts[i] = int(d)
		} else {
			dsts[i] = r.searchHash(h)
		}
	}
}

// searchHash is the exact ring lookup: binary search for the first
// point with hash ≥ h, wrapping. The LUT fast path delegates here for
// the rare buckets that contain ring points; Grow rebuilds from the
// exact point list, so the LUT is purely an acceleration structure.
func (r *Ring) searchHash(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].inst
}

// mix is a 64-bit finalizer (splitmix64) giving a well-distributed
// position on the circle for sequential integer inputs.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
