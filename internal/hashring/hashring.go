// Package hashring implements consistent hashing over task instances,
// the universal hash function h : K → D the paper assumes as the default
// key assignment (§II-A, citing Karger et al. [14]).
//
// The ring places VirtualNodes replicas of every instance on a 64-bit
// circle; a key is owned by the first replica clockwise from the key's
// hash point. Consistent hashing matters for the paper's scale-out
// experiment (Fig. 15): when an instance is added, only ~1/ND of the
// keys change their default destination, so the routing table does not
// have to absorb a full reshuffle.
package hashring

import (
	"fmt"
	"sort"

	"repro/internal/tuple"
)

// DefaultVirtualNodes is the replica count per instance. 128 keeps the
// max/min ownership ratio within a few percent for ND ≤ 64 while the
// ring stays small enough that rebuilds are cheap.
const DefaultVirtualNodes = 128

// Ring is an immutable consistent-hash ring over instance IDs 0..n-1.
// Instances are dense integers because the paper's D is a fixed set of
// task instances inside one operator. The zero value is unusable; build
// rings with New.
type Ring struct {
	points   []point
	n        int
	replicas int
}

type point struct {
	hash uint64
	inst int
}

// New builds a ring over n instances with the given number of virtual
// nodes per instance. n must be positive; replicas ≤ 0 selects
// DefaultVirtualNodes.
func New(n, replicas int) *Ring {
	if n <= 0 {
		panic(fmt.Sprintf("hashring: non-positive instance count %d", n))
	}
	if replicas <= 0 {
		replicas = DefaultVirtualNodes
	}
	r := &Ring{n: n, replicas: replicas}
	r.points = make([]point, 0, n*replicas)
	for inst := 0; inst < n; inst++ {
		for v := 0; v < replicas; v++ {
			// Domain-separate point hashes from key hashes (Hash uses
			// mix(k) directly): without the double mix, instance 0's
			// points would be mix(v), colliding with the hash positions
			// of the small integer keys synthetic workloads use.
			h := mix(mix(uint64(inst)+1) ^ (uint64(v) + 0x9e3779b97f4a7c15))
			r.points = append(r.points, point{hash: h, inst: inst})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].inst < r.points[j].inst
	})
	return r
}

// Grow returns a new ring with one more instance, leaving r untouched.
// Existing instances keep their virtual-node positions, so only keys
// falling into the new instance's arcs move — the property the
// scale-out experiment relies on.
func (r *Ring) Grow() *Ring {
	return New(r.n+1, r.replicas)
}

// Instances returns the number of instances on the ring.
func (r *Ring) Instances() int { return r.n }

// Hash returns the default destination instance for key k.
func (r *Ring) Hash(k tuple.Key) int {
	h := mix(uint64(k))
	// Binary search for the first point with hash ≥ h, wrapping.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].inst
}

// mix is a 64-bit finalizer (splitmix64) giving a well-distributed
// position on the circle for sequential integer inputs.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
