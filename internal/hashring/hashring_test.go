package hashring

import (
	"testing"
	"testing/quick"

	"repro/internal/tuple"
)

func TestHashInRange(t *testing.T) {
	r := New(10, 0)
	f := func(k uint64) bool {
		d := r.Hash(tuple.Key(k))
		return d >= 0 && d < 10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestHashDeterministic(t *testing.T) {
	a, b := New(7, 0), New(7, 0)
	for k := tuple.Key(0); k < 1000; k++ {
		if a.Hash(k) != b.Hash(k) {
			t.Fatalf("rings disagree on key %d", k)
		}
	}
}

func TestBalanceAcrossInstances(t *testing.T) {
	// With many uniform keys, per-instance ownership should be within
	// a reasonable band of the average.
	const nd, keys = 8, 100000
	r := New(nd, 0)
	counts := make([]int, nd)
	for k := 0; k < keys; k++ {
		counts[r.Hash(tuple.Key(k))]++
	}
	avg := keys / nd
	for d, c := range counts {
		if c < avg/2 || c > avg*2 {
			t.Fatalf("instance %d owns %d keys, avg %d: ring too unbalanced", d, c, avg)
		}
	}
}

func TestGrowMovesOnlyFraction(t *testing.T) {
	// Consistent hashing's defining property: adding one instance moves
	// roughly 1/(n+1) of the keys, far from a full reshuffle.
	const keys = 50000
	old := New(10, 0)
	grown := old.Grow()
	if grown.Instances() != 11 {
		t.Fatalf("Grow gave %d instances, want 11", grown.Instances())
	}
	moved := 0
	for k := 0; k < keys; k++ {
		if old.Hash(tuple.Key(k)) != grown.Hash(tuple.Key(k)) {
			moved++
		}
	}
	frac := float64(moved) / keys
	if frac > 0.2 {
		t.Fatalf("Grow moved %.1f%% of keys; consistent hashing should move ~%.1f%%",
			100*frac, 100.0/11)
	}
	if moved == 0 {
		t.Fatal("Grow moved no keys at all")
	}
	// Keys that moved must have moved to the new instance.
	for k := 0; k < keys; k++ {
		o, g := old.Hash(tuple.Key(k)), grown.Hash(tuple.Key(k))
		if o != g && g != 10 {
			t.Fatalf("key %d moved %d→%d, but only instance 10 is new", k, o, g)
		}
	}
}

func TestSingleInstance(t *testing.T) {
	r := New(1, 0)
	for k := tuple.Key(0); k < 100; k++ {
		if r.Hash(k) != 0 {
			t.Fatal("single-instance ring must map everything to 0")
		}
	}
}

func TestNewPanicsOnZeroInstances(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0, _) did not panic")
		}
	}()
	New(0, 0)
}

func TestLUTMatchesBinarySearch(t *testing.T) {
	// The LUT is an acceleration structure only: for every key, the O(1)
	// path must return exactly what the exact ring search would.
	for _, nd := range []int{1, 2, 3, 10, 40, 64} {
		r := New(nd, 0)
		for k := tuple.Key(0); k < 20000; k++ {
			h := mix(uint64(k))
			if got, want := r.Hash(k), r.searchHash(h); got != want {
				t.Fatalf("nd=%d key %d: LUT hash %d ≠ search %d", nd, k, got, want)
			}
		}
	}
	// Adversarial hashes: values landing exactly on and around ring
	// points, where bucket boundaries matter most.
	r := New(10, 0)
	for _, p := range r.points {
		for _, h := range []uint64{p.hash - 1, p.hash, p.hash + 1} {
			if got, want := r.lut[h>>r.shift], int32(-1); got != want && int(got) != r.searchHash(h) {
				t.Fatalf("hash %#x: LUT bucket %d disagrees with search %d", h, got, r.searchHash(h))
			}
		}
	}
}

func TestLUTSizedToRing(t *testing.T) {
	r := New(10, 0)
	if len(r.lut) < len(r.points) {
		t.Fatalf("LUT %d entries for %d points: too coarse to be useful", len(r.lut), len(r.points))
	}
	if len(r.lut)&(len(r.lut)-1) != 0 {
		t.Fatalf("LUT size %d is not a power of two", len(r.lut))
	}
	if len(r.lut) > 1<<maxLUTBits {
		t.Fatalf("LUT size %d exceeds cap", len(r.lut))
	}
}

func TestCustomReplicas(t *testing.T) {
	r := New(3, 16)
	if r.replicas != 16 {
		t.Fatalf("replicas = %d, want 16", r.replicas)
	}
	if len(r.points) != 3*16 {
		t.Fatalf("points = %d, want 48", len(r.points))
	}
}

func TestHashBatchFormsMatchHash(t *testing.T) {
	r := New(7, 0)
	const n = 5000
	keys := make([]tuple.Key, n)
	ts := make([]tuple.Tuple, n)
	for i := range keys {
		keys[i] = tuple.Key(i * 31)
		ts[i].Key = keys[i]
	}
	got := make([]int, n)
	r.HashBatch(keys, got)
	for i, k := range keys {
		if want := r.Hash(k); got[i] != want {
			t.Fatalf("HashBatch[%d] = %d, want %d", i, got[i], want)
		}
	}
	r.HashTuples(ts, got)
	for i, k := range keys {
		if want := r.Hash(k); got[i] != want {
			t.Fatalf("HashTuples[%d] = %d, want %d", i, got[i], want)
		}
	}
}
