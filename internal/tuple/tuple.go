// Package tuple defines the fundamental data unit flowing through the
// stream processing engine: a keyed tuple with an integer service cost
// and a state footprint.
//
// The paper models a stream as a sequence of key-value pairs τ = (k, v).
// Every tuple additionally carries the CPU cost c it charges to the task
// that processes it and the state size s it adds to the task's windowed
// store; both default to one unit. Keeping these on the tuple (rather
// than deriving them from the value) lets workload generators shape the
// cost and memory distributions independently, which the evaluation in
// §V of the paper requires.
package tuple

import "fmt"

// Key identifies the partitioning key of a tuple. The paper's key domain
// K is opaque; we use uint64 so synthetic generators can draw keys
// directly from integer domains and real-ish workloads can hash strings
// into the domain via KeyOf.
type Key uint64

// fnv64 constants for KeyOf.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// KeyOf maps an arbitrary string (a word, a stock symbol, a join key)
// into the Key domain using FNV-1a. It is deterministic across runs.
func KeyOf(s string) Key {
	var h uint64 = fnvOffset64
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return Key(h)
}

// Tuple is one stream element. Value is free-form payload; Cost is the
// simulated CPU cost c charged when the tuple is processed; StateSize is
// the memory s the tuple contributes to the key's windowed state.
//
// Field order is deliberate: Key, Cost and StateSize — the fields the
// data plane (routing, arrival accounting, statistics) touches per
// tuple — sit in the first 24 bytes so hot-path scans over tuple
// batches read one cache line per tuple as often as possible.
type Tuple struct {
	Key       Key
	Cost      int64
	StateSize int64
	Value     any
	// Stream tags the logical stream the tuple belongs to, used by
	// multi-input operators such as joins (e.g. "R" and "S").
	Stream string
	// Seq is a generator-assigned sequence number, used for latency
	// accounting and deterministic replay.
	Seq uint64
	// EmitTick is the interval index at which the tuple entered the
	// system; the engine uses it to compute queueing latency.
	EmitTick int64
}

// New returns a unit-cost, unit-state tuple for key k carrying v.
func New(k Key, v any) Tuple {
	return Tuple{Key: k, Value: v, Cost: 1, StateSize: 1}
}

// WithCost returns a copy of t with the given service cost.
func (t Tuple) WithCost(c int64) Tuple {
	t.Cost = c
	return t
}

// WithState returns a copy of t with the given state footprint.
func (t Tuple) WithState(s int64) Tuple {
	t.StateSize = s
	return t
}

// String implements fmt.Stringer for debugging output.
func (t Tuple) String() string {
	return fmt.Sprintf("tuple{k=%d v=%v c=%d s=%d stream=%q}", t.Key, t.Value, t.Cost, t.StateSize, t.Stream)
}
