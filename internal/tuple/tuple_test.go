package tuple

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestKeyOfDeterministic(t *testing.T) {
	if KeyOf("hello") != KeyOf("hello") {
		t.Fatal("KeyOf not deterministic")
	}
	if KeyOf("hello") == KeyOf("world") {
		t.Fatal("KeyOf collision on trivial inputs")
	}
}

func TestKeyOfMatchesFNV1a(t *testing.T) {
	// Known FNV-1a 64-bit test vector: "a" → 0xaf63dc4c8601ec8c.
	if got := KeyOf("a"); got != Key(0xaf63dc4c8601ec8c) {
		t.Fatalf("KeyOf(a) = %x, want af63dc4c8601ec8c", uint64(got))
	}
	// Empty string hashes to the offset basis.
	if got := KeyOf(""); got != Key(uint64(14695981039346656037)) {
		t.Fatalf("KeyOf(\"\") = %d, want offset basis", got)
	}
}

func TestKeyOfQuickNoTrivialCollisions(t *testing.T) {
	// Property: distinct short strings essentially never collide.
	f := func(a, b string) bool {
		if a == b {
			return true
		}
		return KeyOf(a) != KeyOf(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestNewDefaults(t *testing.T) {
	tp := New(42, "v")
	if tp.Cost != 1 || tp.StateSize != 1 {
		t.Fatalf("New tuple cost/state = %d/%d, want 1/1", tp.Cost, tp.StateSize)
	}
	if tp.Key != 42 || tp.Value != "v" {
		t.Fatalf("New tuple key/value = %v/%v", tp.Key, tp.Value)
	}
}

func TestWithCostAndState(t *testing.T) {
	tp := New(1, nil).WithCost(7).WithState(9)
	if tp.Cost != 7 || tp.StateSize != 9 {
		t.Fatalf("chained setters gave %d/%d, want 7/9", tp.Cost, tp.StateSize)
	}
	// Original is unaffected (value semantics).
	orig := New(1, nil)
	_ = orig.WithCost(99)
	if orig.Cost != 1 {
		t.Fatal("WithCost mutated the receiver")
	}
}

func TestStringIncludesFields(t *testing.T) {
	s := New(5, "x").String()
	for _, want := range []string{"k=5", "v=x"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}
