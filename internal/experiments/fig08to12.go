package experiments

import (
	"fmt"
	"time"

	"repro/internal/balance"
	"repro/internal/compact"
	"repro/internal/readj"
	"repro/internal/stats"
)

// Algorithm-level sweeps (Figs. 8–12): plan-generation time and
// migration cost of Mixed vs MinTable (and Readj/MixedBF in Fig. 12)
// as N_D, θmax, K, R and f vary. Each data point averages `sweepRounds`
// plan/fluctuate cycles after one warm-up adjustment.

const sweepRounds = 8

func defCfg() balance.Config {
	return balance.Config{ThetaMax: defTheta, TableMax: defNA, Beta: defBeta}
}

// sweepPoint runs one planner at one parameter setting, for both
// window sizes the paper reports (w = 1 and w = 5).
func sweepPoint(p balance.Planner, cfg balance.Config, k, nd, w int, f float64, seed int64) planMetrics {
	return sweepPointN(p, cfg, k, nd, w, f, seed, sweepRounds)
}

// sweepPointN is sweepPoint with an explicit round count, for the
// expensive planners (MixedBF, tuned Readj).
func sweepPointN(p balance.Planner, cfg balance.Config, k, nd, w int, f float64, seed int64, rounds int) planMetrics {
	sim := newPlanSim(k, defZ, f, nd, w, seed)
	// Warm-up: one adjustment so the routing table is realistic.
	runPlanner(sim, p, cfg, 1)
	return runPlanner(sim, p, cfg, rounds)
}

// Fig08 regenerates Fig. 8: performance with varying N_D.
func Fig08() *Result {
	r := &Result{
		ID:     "fig08",
		Title:  "Plan generation time and migration cost vs N_D",
		Header: []string{"N_D", "Mixed ms", "MinTable ms", "Mixed mig% w1", "MinTable mig% w1", "Mixed mig% w5", "MinTable mig% w5"},
		Notes:  "Mixed migrates far less than MinTable; w=5 cheapens migration",
	}
	for _, nd := range []int{5, 10, 15, 20, 25, 30, 35, 40} {
		mx1 := sweepPoint(balance.Mixed{}, defCfg(), defK, nd, 1, defF, 11)
		mt1 := sweepPoint(balance.MinTable{}, defCfg(), defK, nd, 1, defF, 11)
		mx5 := sweepPoint(balance.Mixed{}, defCfg(), defK, nd, 5, defF, 11)
		mt5 := sweepPoint(balance.MinTable{}, defCfg(), defK, nd, 5, defF, 11)
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(nd), ms(mx1.GenTime), ms(mt1.GenTime),
			f2(mx1.MigPct), f2(mt1.MigPct), f2(mx5.MigPct), f2(mt5.MigPct),
		})
	}
	return r
}

// Fig09 regenerates Fig. 9: performance with varying θmax.
func Fig09() *Result {
	r := &Result{
		ID:     "fig09",
		Title:  "Plan generation time and migration cost vs theta_max",
		Header: []string{"theta", "Mixed ms", "MinTable ms", "Mixed mig% w1", "MinTable mig% w1", "Mixed mig% w5", "MinTable mig% w5"},
		Notes:  "stricter theta → more migration; MinTable ≈ 3x Mixed's cost",
	}
	for _, th := range []float64{0.02, 0.05, 0.08, 0.11, 0.14, 0.17, 0.2, 0.3, 0.4, 0.5} {
		cfg := defCfg()
		cfg.ThetaMax = th
		mx1 := sweepPoint(balance.Mixed{}, cfg, defK, defND, 1, defF, 13)
		mt1 := sweepPoint(balance.MinTable{}, cfg, defK, defND, 1, defF, 13)
		mx5 := sweepPoint(balance.Mixed{}, cfg, defK, defND, 5, defF, 13)
		mt5 := sweepPoint(balance.MinTable{}, cfg, defK, defND, 5, defF, 13)
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%.2f", th), ms(mx1.GenTime), ms(mt1.GenTime),
			f2(mx1.MigPct), f2(mt1.MigPct), f2(mx5.MigPct), f2(mt5.MigPct),
		})
	}
	return r
}

// Fig10 regenerates Fig. 10: performance with varying key-domain size.
func Fig10() *Result {
	r := &Result{
		ID:     "fig10",
		Title:  "Plan generation time and migration cost vs K",
		Header: []string{"K", "Mixed ms", "MinTable ms", "Mixed mig% w1", "MinTable mig% w1", "Mixed mig% w5", "MinTable mig% w5"},
		Notes:  "Mixed stays stable across domain sizes; migration cost drops at w=5",
	}
	for _, k := range []int{5000, 10000, 100000, 1000000} {
		mx1 := sweepPoint(balance.Mixed{}, defCfg(), k, defND, 1, defF, 17)
		mt1 := sweepPoint(balance.MinTable{}, defCfg(), k, defND, 1, defF, 17)
		mx5 := sweepPoint(balance.Mixed{}, defCfg(), k, defND, 5, defF, 17)
		mt5 := sweepPoint(balance.MinTable{}, defCfg(), k, defND, 5, defF, 17)
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(k), ms(mx1.GenTime), ms(mt1.GenTime),
			f2(mx1.MigPct), f2(mt1.MigPct), f2(mx5.MigPct), f2(mt5.MigPct),
		})
	}
	return r
}

// Fig11 regenerates Fig. 11: the compact representation's effect —
// plan time vs discretization degree R (with the original key space as
// baseline) and the induced load-estimation error across θmax settings.
// The key domain is scaled to 10^6 keys with a matching tuple budget:
// §IV's optimization targets statistics streams of "millions of unique
// keys", where per-key planning is the bottleneck.
func Fig11() *Result {
	const (
		bigK      = 1000000
		bigBudget = 1000000
		rounds    = 3
	)
	r := &Result{
		ID:     "fig11",
		Title:  "Compact representation: plan time and load-estimation error vs R (K=1e6)",
		Header: []string{"R", "plan ms", "estErr% th=0", "estErr% th=0.02", "estErr% th=0.08", "estErr% th=0.15"},
		Notes:  "plan time collapses once vectors replace keys (R≥2); errors stay around or below 1%",
	}
	point := func(p balance.Planner) planMetrics {
		sim := newPlanSimBudget(bigK, defZ, defF, defND, 1, 19, bigBudget)
		runPlanner(sim, p, defCfg(), 1)
		return runPlanner(sim, p, defCfg(), rounds)
	}
	// Baseline: the key-space Mixed planner on the same stream.
	base := point(balance.Mixed{})
	r.Rows = append(r.Rows, []string{"orig-key-space", ms(base.GenTime), "-", "-", "-", "-"})

	for _, R := range []int64{1, 2, 4, 8, 16, 32, 64, 128, 256} {
		cm := compact.Planner{R: R}
		pm := point(cm)
		row := []string{fmt.Sprint(R), ms(pm.GenTime)}
		// Estimation error measured on a fresh snapshot per θmax (the
		// θ setting shifts the post-plan load shape slightly).
		for _, th := range []float64{0, 0.02, 0.08, 0.15} {
			cfg := defCfg()
			cfg.ThetaMax = th
			sim := newPlanSimBudget(bigK, defZ, defF, defND, 1, 19, bigBudget)
			runPlanner(sim, cm, cfg, 2)
			sp := compact.Build(sim.snapshot(), R)
			row = append(row, fmt.Sprintf("%.4f", sp.LoadEstimationError()))
		}
		r.Rows = append(r.Rows, row)
	}
	return r
}

// Fig12 regenerates Fig. 12: scheduling efficiency and migration cost
// with varying distribution-change frequency f, comparing Mixed,
// MinTable, Readj and MixedBF (θmax = 0.08 as in the paper).
func Fig12() *Result {
	r := &Result{
		ID:     "fig12",
		Title:  "Plan time and migration cost vs fluctuation rate f",
		Header: []string{"f", "Mixed ms", "MinTable ms", "Readj ms", "MixedBF ms", "Mixed mig%", "MinTable mig%", "Readj mig%", "MixedBF mig%"},
		Notes:  "Mixed ≪ Readj ≪ MixedBF on plan time; Mixed's migration grows slowest",
	}
	// Readj at its best σ, found by the same tuning the paper applied.
	readjTuned := plannerFunc{"Readj", func(s *stats.Snapshot, cfg balance.Config) *balance.Plan {
		return readj.Tune(s, cfg, nil)
	}}
	for _, f := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		mx := sweepPoint(balance.Mixed{}, defCfg(), defK, defND, 1, f, 23)
		mt := sweepPoint(balance.MinTable{}, defCfg(), defK, defND, 1, f, 23)
		rj := sweepPointN(readjTuned, defCfg(), defK, defND, 1, f, 23, 3)
		bf := sweepPointN(balance.MixedBF{MaxTrials: 128}, defCfg(), defK, defND, 1, f, 23, 3)
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%.1f", f),
			ms(mx.GenTime), ms(mt.GenTime), ms(rj.GenTime), ms(bf.GenTime),
			f2(mx.MigPct), f2(mt.MigPct), f2(rj.MigPct), f2(bf.MigPct),
		})
	}
	return r
}

// plannerFunc adapts a closure to balance.Planner.
type plannerFunc struct {
	name string
	fn   func(*stats.Snapshot, balance.Config) *balance.Plan
}

// Name implements balance.Planner.
func (p plannerFunc) Name() string { return p.name }

// Plan implements balance.Planner.
func (p plannerFunc) Plan(s *stats.Snapshot, cfg balance.Config) *balance.Plan {
	return p.fn(s, cfg)
}

func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

var _ = time.Duration(0)
