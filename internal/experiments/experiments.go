// Package experiments regenerates every table and figure of the
// paper's evaluation section (§V plus the appendix figures) as text
// series. Each FigXX function is self-contained and deterministic;
// cmd/benchrunner prints them, the root bench_test.go wraps them in
// testing.B benches, and per-exhibit comments interpret the measured
// shapes against the paper's.
//
// Two harnesses are used:
//
//   - a planning-only simulator (planSim) for the algorithm-level
//     figures (8–12, 17–21): per-interval expected loads from the
//     synthetic Zipf generator drive the planners directly, so plan
//     generation time and migration cost are measured without engine
//     noise;
//   - the full engine for the system-level figures (13–16): tuples
//     actually flow, states actually migrate, and throughput/latency
//     come from the saturation model.
package experiments

import (
	"encoding/csv"
	"fmt"
	"strings"
	"time"

	"repro/internal/balance"
	"repro/internal/hashring"
	"repro/internal/metrics"
	"repro/internal/route"
	"repro/internal/stats"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// Result is one regenerated exhibit.
type Result struct {
	ID     string // e.g. "fig08"
	Title  string
	Header []string
	Rows   [][]string
	// Notes records interpretation guidance (what shape to expect).
	Notes string
}

// Render formats the result as an aligned text table.
func (r *Result) Render() string {
	s := fmt.Sprintf("== %s: %s ==\n", r.ID, r.Title)
	s += metrics.Table(r.Header, r.Rows)
	if r.Notes != "" {
		s += "note: " + r.Notes + "\n"
	}
	return s
}

// CSV renders the result as comma-separated values (header first) for
// external plotting.
func (r *Result) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	w.Write(r.Header)
	for _, row := range r.Rows {
		w.Write(row)
	}
	w.Flush()
	return b.String()
}

// Registry lists every experiment in paper order.
func Registry() []struct {
	ID  string
	Run func() *Result
} {
	return []struct {
		ID  string
		Run func() *Result
	}{
		{"fig01", Fig01},
		{"table2", Table2},
		{"fig07a", Fig07a},
		{"fig07b", Fig07b},
		{"fig08", Fig08},
		{"fig09", Fig09},
		{"fig10", Fig10},
		{"fig11", Fig11},
		{"fig12", Fig12},
		{"fig13", Fig13},
		{"fig14a", Fig14a},
		{"fig14b", Fig14b},
		{"fig15", Fig15},
		{"fig16", Fig16},
		{"fig17", Fig17},
		{"fig18", Fig18},
		{"fig19", Fig19},
		{"fig20", Fig20},
		{"fig21", Fig21},
		{"abl-adjust", AblAdjust},
		{"abl-clean", AblClean},
		{"abl-psi", AblPsi},
		{"abl-discretize", AblDiscretize},
		{"abl-sigma", AblSigma},
	}
}

// usePipeline selects streaming inter-stage transfer for the
// engine-backed exhibits (fig01's three-operator topology and the
// systems of figs 13–16). On key-partitioned stages exhibit outputs
// are identical under both transfer modes — every printed quantity is
// an arrival-order-independent aggregate — and cmd/benchrunner's
// -pipeline flag flips this so the claim stays checkable end to end
// (run the exhibits both ways and diff). The one caveat is fig01's
// shuffle-routed stages: shuffle destinations depend on arrival
// order, which concurrent upstream flushes interleave, so its
// per-instance split (not its printed totals, in practice) can vary
// on multicore hosts — the same caveat Feeders > 1 carries.
var usePipeline bool

// SetPipeline switches the engine-backed exhibits between streaming
// (true) and store-and-forward (false, the default) inter-stage
// transfer.
func SetPipeline(on bool) { usePipeline = on }

// Defaults mirror Tab. II's bold entries.
const (
	defK      = 100000
	defZ      = 0.85
	defF      = 1.0
	defTheta  = 0.08
	defBeta   = 1.5
	defND     = 10
	defNA     = 3000
	defBudget = 100000 // tuples per interval in the planning simulator
)

// Table2 prints the parameter defaults actually used, next to the
// paper's (they are identical by construction).
func Table2() *Result {
	r := &Result{
		ID:     "table2",
		Title:  "Parameter settings (Tab. II defaults)",
		Header: []string{"param", "default", "meaning"},
		Rows: [][]string{
			{"K", fmt.Sprint(defK), "size of key domain"},
			{"z", fmt.Sprint(defZ), "distribution skewness"},
			{"f", fmt.Sprint(defF), "fluctuation rate"},
			{"theta_max", fmt.Sprint(defTheta), "tolerance on load imbalance"},
			{"beta", fmt.Sprint(defBeta), "migration selection factor"},
			{"w", "1 (and 5)", "state window in intervals"},
			{"N_D", fmt.Sprint(defND), "number of task instances"},
			{"N_A", fmt.Sprint(defNA), "routing table bound"},
		},
	}
	return r
}

// planSim drives planners against per-interval expected loads: the
// algorithm-level harness. It maintains the live assignment F, a
// w-interval memory window per key, and applies each plan before the
// next fluctuation — exactly the controller's cadence without tuples.
type planSim struct {
	stream *workload.ZipfStream
	asg    *route.Assignment
	w      int
	// win holds the last w intervals' per-key state contributions
	// (state ∝ tuple count for the unit-cost synthetic workload).
	win      []map[tuple.Key]int64
	interval int64
}

func newPlanSim(k int, z, f float64, nd, w int, seed int64) *planSim {
	return newPlanSimBudget(k, z, f, nd, w, seed, defBudget)
}

// newPlanSimBudget lets experiments scale the per-interval tuple budget
// (and with it the number of statistically active keys) independently
// of the key-domain size.
func newPlanSimBudget(k int, z, f float64, nd, w int, seed, budget int64) *planSim {
	return &planSim{
		stream: workload.NewZipfStream(k, z, f, budget, seed),
		asg:    route.NewAssignment(route.NewTable(), hashring.New(nd, 0)),
		w:      w,
	}
}

// stateWeight decouples a key's per-tuple state footprint from its CPU
// cost: values carried by different keys have different sizes (1–4
// units), deterministically derived from the key. Without this, w = 1
// would make S(k,w) ∝ c(k) and the migration-priority index
// γ = c^β/S degenerate to a pure cost ordering for every β — erasing
// the β sensitivity the appendix figures study.
func stateWeight(k tuple.Key) int64 {
	return 1 + int64((uint64(k)*2654435761)>>30%4)
}

// snapshot builds the planner input for the current interval.
func (s *planSim) snapshot() *stats.Snapshot {
	load := s.stream.ExpectedLoad()
	s.win = append(s.win, load)
	if len(s.win) > s.w {
		s.win = s.win[len(s.win)-s.w:]
	}
	snap := &stats.Snapshot{Interval: s.interval, ND: s.asg.Instances()}
	for k, c := range load {
		var mem int64
		for _, m := range s.win {
			mem += m[k]
		}
		snap.Keys = append(snap.Keys, stats.KeyStat{
			Key: k, Cost: c, Freq: c, Mem: mem * stateWeight(k),
			Dest: s.asg.Dest(k), Hash: s.asg.HashDest(k),
		})
	}
	stats.SortByCostDesc(snap.Keys)
	return snap
}

// apply installs a plan's routing table as the live assignment.
func (s *planSim) apply(p *balance.Plan) {
	s.asg = route.NewAssignment(p.Table.Clone(), s.asg.Hasher())
}

// advance moves to the next interval, fluctuating the stream.
func (s *planSim) advance() {
	s.stream.Advance(s.asg)
	s.interval++
}

// planMetrics aggregates a planner's behaviour over `rounds`
// plan/apply/fluctuate cycles, after a warm-up adjustment.
type planMetrics struct {
	GenTime  time.Duration // mean
	MigPct   float64       // mean migration %, per adjustment
	Table    int           // final table size
	MaxTheta float64       // mean post-plan imbalance
}

func runPlanner(sim *planSim, p balance.Planner, cfg balance.Config, rounds int) planMetrics {
	var out planMetrics
	var gen time.Duration
	var mig, theta float64
	for r := 0; r < rounds; r++ {
		snap := sim.snapshot()
		plan := p.Plan(snap, cfg)
		gen += plan.GenTime
		mig += plan.MigrationPct(snap.TotalMem())
		theta += plan.MaxTheta
		out.Table = plan.TableSize()
		sim.apply(plan)
		sim.advance()
	}
	out.GenTime = gen / time.Duration(rounds)
	out.MigPct = mig / float64(rounds)
	out.MaxTheta = theta / float64(rounds)
	return out
}

// ms renders a duration in milliseconds for table cells.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000)
}
