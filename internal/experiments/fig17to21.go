package experiments

import (
	"fmt"

	"repro/internal/balance"
)

// Appendix figures: sensitivity of migration cost and routing-table
// size to the table bound N_A, the adjustment count, the state window w
// and the migration-selection factor β.

// Fig17 regenerates appendix Fig. 17: Mixed's migration cost as the
// routing-table bound N_A = 2^i varies, for several θmax.
func Fig17() *Result {
	r := &Result{
		ID:     "fig17",
		Title:  "Mixed migration cost vs routing-table bound N_A (=2^i)",
		Header: []string{"N_A", "mig% th=0.02", "mig% th=0.08", "mig% th=0.15", "mig% th=0.30"},
		Notes:  "tight N_A forces cleaning (MinTable-like, expensive); relaxed N_A lets Mixed migrate minimally",
	}
	for i := 1; i <= 13; i += 2 {
		na := 1 << i
		row := []string{fmt.Sprint(na)}
		for _, th := range []float64{0.02, 0.08, 0.15, 0.30} {
			cfg := balance.Config{ThetaMax: th, TableMax: na, Beta: defBeta}
			pm := sweepPoint(balance.Mixed{}, cfg, defK, defND, 1, defF, 29)
			row = append(row, f2(pm.MigPct))
		}
		r.Rows = append(r.Rows, row)
	}
	return r
}

// Fig18 regenerates appendix Fig. 18: MinMig's routing-table growth
// over repeated adjustments (K = 1e4 as in the paper), converging
// toward (N_D−1)/N_D · K.
func Fig18() *Result {
	const k = 10000
	r := &Result{
		ID:     "fig18",
		Title:  "MinMig routing-table size vs number of adjustments (K=1e4)",
		Header: []string{"adjustments", "table th=0.02", "table th=0.08", "table th=0.15", "table th=0.30"},
		Notes: fmt.Sprintf("converges toward (N_D-1)/N_D*K = %d; smaller theta grows faster",
			(defND-1)*k/defND),
	}
	thetas := []float64{0.02, 0.08, 0.15, 0.30}
	sims := make([]*planSim, len(thetas))
	for i := range thetas {
		sims[i] = newPlanSim(k, defZ, defF, defND, 1, 31)
	}
	adjusted := 0
	for _, checkpoint := range []int{1, 4, 16, 64, 256, 1024} {
		row := []string{fmt.Sprint(checkpoint)}
		for i, th := range thetas {
			cfg := balance.Config{ThetaMax: th, Beta: defBeta} // unbounded table
			pm := runPlanner(sims[i], balance.MinMig{}, cfg, checkpoint-adjusted)
			row = append(row, fmt.Sprint(pm.Table))
		}
		adjusted = checkpoint
		r.Rows = append(r.Rows, row)
	}
	return r
}

// Fig19 regenerates appendix Fig. 19: migration cost vs window size w.
func Fig19() *Result {
	r := &Result{
		ID:     "fig19",
		Title:  "Migration cost vs state window w",
		Header: []string{"w", "Mixed mig%", "MinTable mig%"},
		Notes:  "longer windows widen the candidate pool, so Mixed migrates less; MinTable stays expensive",
	}
	for _, w := range []int{1, 3, 5, 7, 9, 11, 13, 15} {
		mx := sweepPoint(balance.Mixed{}, defCfg(), defK, defND, w, defF, 37)
		mt := sweepPoint(balance.MinTable{}, defCfg(), defK, defND, w, defF, 37)
		r.Rows = append(r.Rows, []string{fmt.Sprint(w), f2(mx.MigPct), f2(mt.MigPct)})
	}
	return r
}

// betaSweep runs MinMig over 10 adjustments at one β across θmax
// settings, reporting table size and migration cost — the harness
// behind appendix Figs. 20 and 21.
func betaSweep(beta float64) (tables []int, migs []float64) {
	for _, th := range []float64{0.02, 0.08, 0.15, 0.30} {
		cfg := balance.Config{ThetaMax: th, Beta: beta}
		sim := newPlanSim(defK, defZ, defF, defND, 1, 41)
		pm := runPlanner(sim, balance.MinMig{}, cfg, 10)
		tables = append(tables, pm.Table)
		migs = append(migs, pm.MigPct)
	}
	return
}

var betaLadder = []float64{1.0, 1.2, 1.4, 1.5, 1.6, 1.8, 2.0}

// Fig20 regenerates appendix Fig. 20: routing-table size vs β.
func Fig20() *Result {
	r := &Result{
		ID:     "fig20",
		Title:  "MinMig routing-table size vs beta (10 adjustments)",
		Header: []string{"beta", "table th=0.02", "table th=0.08", "table th=0.15", "table th=0.30"},
		Notes:  "larger beta migrates big-load keys → smaller tables, flattening past ~1.5",
	}
	for _, b := range betaLadder {
		tables, _ := betaSweep(b)
		row := []string{fmt.Sprintf("%.1f", b)}
		for _, t := range tables {
			row = append(row, fmt.Sprint(t))
		}
		r.Rows = append(r.Rows, row)
	}
	return r
}

// Fig21 regenerates appendix Fig. 21: migration cost vs β.
func Fig21() *Result {
	r := &Result{
		ID:     "fig21",
		Title:  "MinMig migration cost vs beta (10 adjustments)",
		Header: []string{"beta", "mig% th=0.02", "mig% th=0.08", "mig% th=0.15", "mig% th=0.30"},
		Notes:  "beta trades migration volume against table size; paper settles on 1.5",
	}
	for _, b := range betaLadder {
		_, migs := betaSweep(b)
		row := []string{fmt.Sprintf("%.1f", b)}
		for _, m := range migs {
			row = append(row, f2(m))
		}
		r.Rows = append(r.Rows, row)
	}
	return r
}
