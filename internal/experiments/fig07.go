package experiments

import (
	"fmt"

	"repro/internal/hashring"
	"repro/internal/metrics"
	"repro/internal/route"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig. 7 studies the baseline problem: how skewed per-instance load is
// under pure hashing, as a cumulative distribution of the per-interval
// workload-skewness metric max L(d)/L̄ over 50 intervals.

var cdfPercentiles = []float64{20, 40, 60, 80, 100}

// hashSkewnessCDF samples skewness over `intervals` intervals of a
// fluctuating Zipf stream routed purely by hash.
func hashSkewnessCDF(k, nd, intervals int, seed int64) []float64 {
	stream := workload.NewZipfStream(k, defZ, defF, defBudget, seed)
	asg := route.NewAssignment(route.NewTable(), hashring.New(nd, 0))
	var sample []float64
	for i := 0; i < intervals; i++ {
		loads := make([]int64, nd)
		for key, c := range stream.ExpectedLoad() {
			loads[asg.Dest(key)] += c
		}
		sample = append(sample, stats.Skewness(loads))
		stream.Advance(asg)
	}
	return metrics.CDF(sample, cdfPercentiles)
}

// Fig07a regenerates Fig. 7(a): skewness CDF vs number of instances.
func Fig07a() *Result {
	r := &Result{
		ID:     "fig07a",
		Title:  "Workload skewness CDF under hashing, varying N_D (K=1e5)",
		Header: []string{"N_D", "p20", "p40", "p60", "p80", "p100"},
		Notes:  "skewness grows with N_D (paper: ~2.5x max/min at N_D=40)",
	}
	for _, nd := range []int{5, 10, 20, 40} {
		cdf := hashSkewnessCDF(defK, nd, 50, 7)
		row := []string{fmt.Sprint(nd)}
		for _, v := range cdf {
			row = append(row, metrics.F(v))
		}
		r.Rows = append(r.Rows, row)
	}
	return r
}

// Fig07b regenerates Fig. 7(b): skewness CDF vs key-domain size.
func Fig07b() *Result {
	r := &Result{
		ID:     "fig07b",
		Title:  "Workload skewness CDF under hashing, varying K (N_D=10)",
		Header: []string{"K", "p20", "p40", "p60", "p80", "p100"},
		Notes:  "smaller key domains hash worse (paper: ~4x at K=5000)",
	}
	for _, k := range []int{5000, 10000, 100000, 1000000} {
		cdf := hashSkewnessCDF(k, defND, 50, 7)
		row := []string{fmt.Sprint(k)}
		for _, v := range cdf {
			row = append(row, metrics.F(v))
		}
		r.Rows = append(r.Rows, row)
	}
	return r
}
