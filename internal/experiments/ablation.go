package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/balance"
	"repro/internal/compact"
	"repro/internal/readj"
	"repro/internal/stats"
	"repro/internal/tuple"
)

// readjPlanner adapts readj at a fixed σ to the sweep harness.
type readjPlanner struct{ sigma float64 }

func (p readjPlanner) Name() string { return "Readj" }
func (p readjPlanner) Plan(s *stats.Snapshot, cfg balance.Config) *balance.Plan {
	return readj.Planner{Sigma: p.sigma}.Plan(s, cfg)
}

// Ablations of the reproduction's design choices. These go beyond
// the paper's own exhibits: each isolates one mechanism (the Adjust
// repair, the cleaning criterion η, the selection criterion ψ, the
// holistic discretizer) and measures what it buys.

// AblAdjust quantifies the exchangeable-set repair of §III-A: LLFD with
// and without Adjust on snapshots where re-overloading bites (a few
// heavy keys over few instances).
func AblAdjust() *Result {
	r := &Result{
		ID:     "abl-adjust",
		Title:  "(ablation) LLFD with vs without the Adjust repair",
		Header: []string{"N_D", "theta with-adjust", "theta no-adjust", "forced placements avoided"},
		Notes:  "Adjust repairs the re-overloading problem; without it heavy keys land on overloaded instances",
	}
	for _, nd := range []int{2, 4, 8} {
		var withT, without float64
		improved := 0
		const trials = 40
		rng := rand.New(rand.NewSource(int64(100 + nd)))
		for t := 0; t < trials; t++ {
			snap := heavyKeySnapshot(rng, nd)
			cfg := balance.Config{ThetaMax: 0, Beta: 1}
			a := balance.LLFD{}.Plan(snap, cfg)
			b := balance.LLFD{NoAdjust: true}.Plan(snap, cfg)
			withT += a.OverloadTheta
			without += b.OverloadTheta
			if a.OverloadTheta < b.OverloadTheta {
				improved++
			}
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(nd),
			fmt.Sprintf("%.4f", withT/trials),
			fmt.Sprintf("%.4f", without/trials),
			fmt.Sprintf("%d/%d", improved, trials),
		})
	}
	return r
}

// heavyKeySnapshot builds instances with a handful of heavy keys and a
// light tail — the regime where placing a heavy key re-overloads its
// least-loaded target.
func heavyKeySnapshot(rng *rand.Rand, nd int) *stats.Snapshot {
	s := &stats.Snapshot{ND: nd}
	id := 0
	add := func(cost int64) {
		s.Keys = append(s.Keys, stats.KeyStat{
			Key: tuple.Key(id), Cost: cost, Freq: cost, Mem: cost,
			Dest: rng.Intn(nd), Hash: rng.Intn(nd),
		})
		id++
	}
	for i := 0; i < nd*2; i++ {
		add(int64(50 + rng.Intn(51))) // heavy heads
	}
	for i := 0; i < nd*20; i++ {
		add(int64(1 + rng.Intn(5))) // light tail
	}
	stats.SortByCostDesc(s.Keys)
	return s
}

// AblClean compares Mixed's cleaning criterion η: the paper's
// smallest-memory-first against largest-memory and arbitrary order,
// under a tight routing-table bound that forces deep cleaning.
func AblClean() *Result {
	r := &Result{
		ID:     "abl-clean",
		Title:  "(ablation) Mixed cleaning criterion eta under a tight table bound",
		Header: []string{"policy", "mig% (mean)", "table (final)"},
		Notes:  "smallest-memory-first cleaning moves the cheapest state back; inverting it pays the maximum migration",
	}
	// Grow a sizable routing table first (MinMig, unbounded, strict θ),
	// then hand every policy the *same* snapshot with a bound tight
	// enough that hundreds of entries must be cleaned.
	sim := newPlanSim(20000, defZ, defF, defND, 3, 71)
	grow := balance.Config{ThetaMax: 0.02, Beta: 1.0}
	runPlanner(sim, balance.MinMig{}, grow, 10)
	snap := sim.snapshot()
	routed := 0
	for _, ks := range snap.Keys {
		if ks.Routed() {
			routed++
		}
	}
	cfg := balance.Config{ThetaMax: defTheta, TableMax: routed / 8, Beta: defBeta}
	type pol struct {
		name string
		p    balance.CleanPolicy
	}
	for _, pc := range []pol{
		{"smallest-mem (paper)", balance.CleanSmallestMem},
		{"largest-mem", balance.CleanLargestMem},
		{"arbitrary", balance.CleanByKey},
	} {
		plan := balance.Mixed{Clean: pc.p}.Plan(snap, cfg)
		r.Rows = append(r.Rows, []string{
			pc.name, f2(plan.MigrationPct(snap.TotalMem())), fmt.Sprint(plan.TableSize()),
		})
	}
	r.Notes += fmt.Sprintf(" (table grown to %d entries, bound %d)", routed, cfg.TableMax)
	return r
}

// AblPsi compares the Phase II selection criterion ψ: highest cost
// first (MinTable's) vs largest γ first (MinMig's), isolating the
// migration-priority index's contribution.
func AblPsi() *Result {
	r := &Result{
		ID:     "abl-psi",
		Title:  "(ablation) Phase II selection: psi = cost vs psi = gamma",
		Header: []string{"psi", "mig% w=3 (mean)", "theta (mean)"},
		Notes:  "gamma selection moves computation-dense, state-light keys: same balance, less state moved",
	}
	for _, c := range []struct {
		name string
		p    balance.Planner
	}{
		{"cost (MinTable-style)", psiPlanner{balance.ByCost}},
		{"gamma (MinMig/Mixed)", psiPlanner{balance.ByGamma}},
	} {
		sim := newPlanSim(20000, defZ, defF, defND, 3, 73)
		cfg := balance.Config{ThetaMax: defTheta, Beta: defBeta}
		runPlanner(sim, c.p, cfg, 1)
		pm := runPlanner(sim, c.p, cfg, sweepRounds)
		r.Rows = append(r.Rows, []string{c.name, f2(pm.MigPct), fmt.Sprintf("%.4f", pm.MaxTheta)})
	}
	return r
}

// psiPlanner is MinMig's no-cleaning workflow under an explicit ψ.
type psiPlanner struct{ psi balance.Criterion }

// Name implements balance.Planner.
func (p psiPlanner) Name() string { return "psi-ablation" }

// Plan implements balance.Planner.
func (p psiPlanner) Plan(s *stats.Snapshot, cfg balance.Config) *balance.Plan {
	if p.psi == balance.ByCost {
		// MinMig's workflow with MinTable's ψ ≡ LLFD directly.
		return balance.LLFD{Psi: balance.ByCost}.Plan(s, cfg)
	}
	return balance.MinMig{}.Plan(s, cfg)
}

// AblDiscretize reproduces the Fig. 6 comparison as an ablation: the
// naive nearest-representative rounding vs the holistic greedy
// cancellation, measured by total deviation |δ| on Zipf cost batches.
func AblDiscretize() *Result {
	r := &Result{
		ID:     "abl-discretize",
		Title:  "(ablation) naive vs holistic HLHE discretization (total |delta| per 10k values)",
		Header: []string{"R", "naive |delta|", "holistic |delta|"},
		Notes:  "Theorem 3: the greedy choice keeps the accumulated deviation near zero at any degree",
	}
	rng := rand.New(rand.NewSource(79))
	xs := make([]int64, 10000)
	for i := range xs {
		// Zipf-flavoured values: many small, few large.
		v := int64(1)
		switch rng.Intn(10) {
		case 0:
			v = int64(100 + rng.Intn(900))
		case 1, 2:
			v = int64(10 + rng.Intn(90))
		default:
			v = int64(1 + rng.Intn(9))
		}
		xs[i] = v
	}
	for _, R := range []int64{2, 8, 32, 128} {
		naive := compact.NaiveDiscretize(xs, R)
		hol := compact.DiscretizeAll(xs, R)
		var dn, dh int64
		for i := range xs {
			dn += xs[i] - naive[i]
			dh += xs[i] - hol[i]
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(R), fmt.Sprint(absI64(dn)), fmt.Sprint(absI64(dh)),
		})
	}
	return r
}

func absI64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// AblSigma sweeps Readj's hot-key threshold σ, the parameter the paper
// tuned by binary search per experiment: small σ admits more candidate
// keys (better balance, slower plans), large σ restricts moves to the
// few hottest keys (fast but coarse). The sweep justifies both the
// paper's per-experiment tuning and this repo's readj.Tune helper.
func AblSigma() *Result {
	r := &Result{
		ID:     "abl-sigma",
		Title:  "(ablation) Readj sensitivity to the hot-key threshold sigma",
		Header: []string{"sigma", "theta (mean)", "mig% (mean)", "plan ms"},
		Notes:  "balance quality degrades as sigma grows; the paper binary-searched sigma per run",
	}
	for _, sigma := range []float64{0.005, 0.01, 0.05, 0.1, 0.2, 0.5} {
		sim := newPlanSim(20000, defZ, defF, defND, 1, 83)
		p := readjPlanner{sigma}
		runPlanner(sim, p, defCfg(), 1)
		pm := runPlanner(sim, p, defCfg(), sweepRounds)
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%.3f", sigma),
			fmt.Sprintf("%.4f", pm.MaxTheta),
			f2(pm.MigPct),
			ms(pm.GenTime),
		})
	}
	return r
}
