package experiments

import (
	"strconv"
	"testing"
)

// Shape tests: regenerate the cheaper exhibits and assert the paper's
// qualitative claims hold — the repository's headline regression tests.
// The expensive exhibits (multi-minute engine sweeps) are exercised by
// the bench harness instead.

func num(t *testing.T, r *Result, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(r.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("%s[%d][%d] = %q not numeric", r.ID, row, col, r.Rows[row][col])
	}
	return v
}

func TestFig13ShapeMixedBeatsStormAtLowF(t *testing.T) {
	if testing.Short() {
		t.Skip("exhibit regeneration skipped in -short")
	}
	r := Fig13()
	// Row 0 is f = 0.1: Storm < Readj < Mixed ≤ Ideal.
	storm, readj, mixed, ideal := num(t, r, 0, 1), num(t, r, 0, 2), num(t, r, 0, 3), num(t, r, 0, 4)
	if !(storm < readj && readj < mixed && mixed <= ideal) {
		t.Fatalf("f=0.1 ordering broken: storm %v, readj %v, mixed %v, ideal %v",
			storm, readj, mixed, ideal)
	}
	if mixed < 0.9*ideal {
		t.Fatalf("Mixed %v not within 10%% of Ideal %v at f=0.1", mixed, ideal)
	}
}

func TestFig01ShapeBackpressure(t *testing.T) {
	if testing.Short() {
		t.Skip("exhibit regeneration skipped in -short")
	}
	r := Fig01()
	storm, mixed, ideal := num(t, r, 0, 2), num(t, r, 1, 2), num(t, r, 2, 2)
	if !(storm < mixed && mixed < ideal) {
		t.Fatalf("pipeline ordering broken: storm %v, mixed %v, ideal %v", storm, mixed, ideal)
	}
	// The throttled spout is the backpushing evidence: Storm's emission
	// must sit well below the budget while Ideal's matches it.
	if num(t, r, 0, 1) > 0.8*num(t, r, 2, 1) {
		t.Fatal("Storm's spout was not visibly throttled by operator 2's imbalance")
	}
}

func TestAblAdjustShape(t *testing.T) {
	if testing.Short() {
		t.Skip("exhibit regeneration skipped in -short")
	}
	r := AblAdjust()
	for i := range r.Rows {
		with, without := num(t, r, i, 1), num(t, r, i, 2)
		if with >= without {
			t.Fatalf("row %d: Adjust (%v) did not beat NoAdjust (%v)", i, with, without)
		}
	}
}

func TestAblCleanShape(t *testing.T) {
	if testing.Short() {
		t.Skip("exhibit regeneration skipped in -short")
	}
	r := AblClean()
	paper, inverted := num(t, r, 0, 1), num(t, r, 1, 1)
	if paper >= inverted {
		t.Fatalf("smallest-mem cleaning (%v%%) not below largest-mem (%v%%)", paper, inverted)
	}
	// All policies must land within the bound.
	bound := num(t, r, 0, 2)
	for i := 1; i < len(r.Rows); i++ {
		if num(t, r, i, 2) != bound {
			t.Fatalf("policies reached different table sizes")
		}
	}
}

func TestAblPsiShape(t *testing.T) {
	if testing.Short() {
		t.Skip("exhibit regeneration skipped in -short")
	}
	r := AblPsi()
	cost, gamma := num(t, r, 0, 1), num(t, r, 1, 1)
	if gamma >= cost {
		t.Fatalf("γ selection (%v%%) did not reduce migration vs cost selection (%v%%)", gamma, cost)
	}
}

func TestAblDiscretizeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("exhibit regeneration skipped in -short")
	}
	r := AblDiscretize()
	for i := range r.Rows {
		naive, hol := num(t, r, i, 1), num(t, r, i, 2)
		if hol > naive {
			t.Fatalf("row %d: holistic |δ| %v above naive %v", i, hol, naive)
		}
		if hol != 0 {
			t.Fatalf("row %d: holistic |δ| = %v, want 0 on this batch", i, hol)
		}
	}
}

func TestFig17Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("exhibit regeneration skipped in -short")
	}
	r := Fig17()
	// Tightest bound at θ=0.02 must cost at least as much migration as
	// the most relaxed one.
	tight := num(t, r, 0, 1)
	relaxed := num(t, r, len(r.Rows)-1, 1)
	if tight < relaxed {
		t.Fatalf("tight N_A migration %v below relaxed %v", tight, relaxed)
	}
}

func TestFig20Fig21BetaShape(t *testing.T) {
	if testing.Short() {
		t.Skip("exhibit regeneration skipped in -short")
	}
	r20 := Fig20()
	first := num(t, r20, 0, 1)
	last := num(t, r20, len(r20.Rows)-1, 1)
	if last >= first {
		t.Fatalf("β=2 table (%v) not smaller than β=1 table (%v)", last, first)
	}
	r21 := Fig21()
	m1 := num(t, r21, 0, 1)
	m2 := num(t, r21, len(r21.Rows)-1, 1)
	if m2 <= m1 {
		t.Fatalf("β=2 migration (%v) not above β=1 (%v)", m2, m1)
	}
}
