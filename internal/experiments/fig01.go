package experiments

import (
	"sync/atomic"

	"repro/internal/balance"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// Fig01 recreates the paper's motivating example (Fig. 1): a
// three-operator pipeline where the middle operator's *internal*
// imbalance throttles the whole topology. Operator 1 (a balanced,
// shuffled map) is forced to slow down by backpressure from operator
// 2's hottest instance, and operator 3 starves — even though every
// *operator* has enough aggregate capacity. Keeping task instances
// balanced inside operator 2 (Mixed) releases the pipeline.
func Fig01() *Result {
	r := &Result{
		ID:     "fig01",
		Title:  "Motivating example: intra-operator imbalance backpressures the pipeline",
		Header: []string{"op2 scheme", "spout emitted/s", "op2 throughput/s", "op3 received/s"},
		Notes:  "hash skew inside operator 2 throttles operator 1 (backpushing) and starves operator 3",
	}
	const budget = 9000
	for _, alg := range []core.Algorithm{core.AlgStorm, core.AlgMixed, core.AlgIdeal} {
		emitted, thr, sunk := runPipeline(alg, budget)
		r.Rows = append(r.Rows, []string{string(alg), f0(emitted), f0(thr), f0(sunk)})
	}
	return r
}

// sinkCounter counts tuples reaching operator 3. The counter is shared
// by all sink instances, hence atomic.
type sinkCounter struct{ n *atomic.Int64 }

func (s sinkCounter) Process(ctx *engine.TaskCtx, t tuple.Tuple) { s.n.Add(1) }

func runPipeline(alg core.Algorithm, budget int64) (emitted, thr, sunk float64) {
	gen := workload.NewZipfStream(300, 1.0, 0.5, budget, 67)

	// Operator 1: balanced pass-through map (shuffle-routed).
	mapOp := func(int) engine.Operator {
		return engine.OperatorFunc(func(ctx *engine.TaskCtx, t tuple.Tuple) {
			out := t
			ctx.Emit(out)
		})
	}
	s0 := engine.NewStage("op1-map", 3, mapOp, 1, engine.NewShuffleRouter(3))

	// Operator 2: the keyed, skew-prone stage under study.
	// Six instances over 300 keys: the hottest keys carry a full
	// instance's share each, the regime of Fig. 7(b).
	const op2ND = 6
	var router engine.Router
	switch alg {
	case core.AlgIdeal:
		router = engine.NewShuffleRouter(op2ND)
	default:
		router = engine.NewAssignmentRouter(core.NewAssignment(op2ND))
	}
	countAndForward := func(int) engine.Operator {
		return engine.OperatorFunc(func(ctx *engine.TaskCtx, t tuple.Tuple) {
			ctx.Emit(tuple.New(t.Key, nil))
		})
	}
	s1 := engine.NewStage("op2-keyed", op2ND, countAndForward, 1, router)

	// Operator 3: sink counting arrivals.
	var sinkN atomic.Int64
	s2 := engine.NewStage("op3-sink", 3, func(int) engine.Operator {
		return sinkCounter{&sinkN}
	}, 1, engine.NewShuffleRouter(3))

	cfg := engine.DefaultConfig()
	cfg.Budget = budget
	cfg.Pipeline = usePipeline
	e := engine.New(gen.Next, cfg, s0, s1, s2)
	defer e.Stop()
	e.Target = 1 // operator 2 drives the backpressure and the metrics
	if alg == core.AlgMixed {
		ctl := controller.New(balance.Mixed{}, defCfg())
		ctl.MinKeys = 16
		e.OnSnapshot = ctl.Hook()
	}
	if ar := s1.AssignmentRouter(); ar != nil {
		e.AdvanceWorkload = func(int64) { gen.Advance(ar.Assignment()) }
	}

	const intervals = 16
	e.Run(intervals)
	var em, th float64
	for _, m := range e.Recorder.Series[4:] {
		em += float64(m.Emitted)
		th += m.Throughput
	}
	n := float64(intervals - 4)
	return em / n, th / n, float64(sinkN.Load()) / float64(intervals)
}
