package experiments

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/topology"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// Fig01 recreates the paper's motivating example (Fig. 1): a
// three-operator pipeline where the middle operator's *internal*
// imbalance throttles the whole topology. Operator 1 (a balanced,
// shuffled map) is forced to slow down by backpressure from operator
// 2's hottest instance, and operator 3 starves — even though every
// *operator* has enough aggregate capacity. Keeping task instances
// balanced inside operator 2 (Mixed) releases the pipeline.
func Fig01() *Result {
	r := &Result{
		ID:     "fig01",
		Title:  "Motivating example: intra-operator imbalance backpressures the pipeline",
		Header: []string{"op2 scheme", "spout emitted/s", "op2 throughput/s", "op3 received/s"},
		Notes:  "hash skew inside operator 2 throttles operator 1 (backpushing) and starves operator 3",
	}
	const budget = 9000
	for _, alg := range []core.Algorithm{core.AlgStorm, core.AlgMixed, core.AlgIdeal} {
		emitted, thr, sunk := runPipeline(alg, budget)
		r.Rows = append(r.Rows, []string{string(alg), f0(emitted), f0(thr), f0(sunk)})
	}
	return r
}

// sinkCounter counts tuples reaching operator 3. The counter is shared
// by all sink instances, hence atomic.
type sinkCounter struct{ n *atomic.Int64 }

func (s sinkCounter) Process(ctx *engine.TaskCtx, t tuple.Tuple) { s.n.Add(1) }

func runPipeline(alg core.Algorithm, budget int64) (emitted, thr, sunk float64) {
	gen := workload.NewZipfStream(300, 1.0, 0.5, budget, 67)

	// Operator 1: balanced pass-through map (shuffle-routed).
	mapOp := func(int) engine.Operator {
		return engine.OperatorFunc(func(ctx *engine.TaskCtx, t tuple.Tuple) {
			out := t
			ctx.Emit(out)
		})
	}
	// Operator 2: the keyed, skew-prone stage under study. Six
	// instances over 300 keys: the hottest keys carry a full instance's
	// share each, the regime of Fig. 7(b). AlgStorm/AlgMixed route by
	// assignment (only Mixed gets a planner); AlgIdeal shuffles.
	countAndForward := func(int) engine.Operator {
		return engine.OperatorFunc(func(ctx *engine.TaskCtx, t tuple.Tuple) {
			ctx.Emit(tuple.New(t.Key, nil))
		})
	}
	// Operator 3: sink counting arrivals.
	var sinkN atomic.Int64
	sinkOp := func(int) engine.Operator { return sinkCounter{&sinkN} }

	// The exhibits run store-and-forward unless the harness selected
	// streaming transfer (cmd/benchrunner -pipeline): exhibit outputs
	// must stay independent of the host's core count, and this
	// topology's shuffle stages would otherwise observe mid-interval
	// interleaving on multicore.
	mode := topology.StoreAndForward()
	if usePipeline {
		mode = topology.Pipelined()
	}
	sys := topology.New(topology.Spout(gen.Next), topology.Budget(budget), mode).
		Stage("op1-map", mapOp,
			topology.Instances(3), topology.WithAlgorithm(topology.AlgIdeal)).
		Stage("op2-keyed", countAndForward,
			topology.Instances(6), topology.WithAlgorithm(alg),
			topology.MinKeys(16),
			topology.Target()). // operator 2 drives the backpressure and the metrics
		Stage("op3-sink", sinkOp,
			topology.Instances(3), topology.WithAlgorithm(topology.AlgIdeal)).
		Build()
	defer sys.Stop()
	if ar := sys.StageNamed("op2-keyed").AssignmentRouter(); ar != nil {
		sys.Engine.AdvanceWorkload = func(int64) { gen.Advance(ar.Assignment()) }
	}

	const intervals = 16
	sys.Run(intervals)
	var em, th float64
	for _, m := range sys.Recorder().Series[4:] {
		em += float64(m.Emitted)
		th += m.Throughput
	}
	n := float64(intervals - 4)
	return em / n, th / n, float64(sinkN.Load()) / float64(intervals)
}
