package experiments

import (
	"strings"
	"testing"

	"repro/internal/balance"
	"repro/internal/tuple"
)

func TestRegistryCoversEveryExhibit(t *testing.T) {
	want := []string{
		"fig01", "table2", "fig07a", "fig07b", "fig08", "fig09", "fig10", "fig11",
		"fig12", "fig13", "fig14a", "fig14b", "fig15", "fig16", "fig17",
		"fig18", "fig19", "fig20", "fig21",
		"abl-adjust", "abl-clean", "abl-psi", "abl-discretize", "abl-sigma",
	}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d exhibits, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Fatalf("registry[%d] = %s, want %s", i, reg[i].ID, id)
		}
		if reg[i].Run == nil {
			t.Fatalf("exhibit %s has no runner", id)
		}
	}
}

func TestTable2MatchesDefaults(t *testing.T) {
	r := Table2()
	if len(r.Rows) != 8 {
		t.Fatalf("Table II has %d rows, want 8", len(r.Rows))
	}
	if r.Rows[0][1] != "100000" || r.Rows[1][1] != "0.85" {
		t.Fatalf("defaults wrong: %v", r.Rows[:2])
	}
}

func TestResultRender(t *testing.T) {
	r := &Result{ID: "x", Title: "T", Header: []string{"a"}, Rows: [][]string{{"1"}}, Notes: "n"}
	out := r.Render()
	for _, want := range []string{"== x: T ==", "a", "1", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q in:\n%s", want, out)
		}
	}
}

func TestPlanSimRoundTrip(t *testing.T) {
	sim := newPlanSim(1000, 0.85, 1.0, 4, 2, 1)
	snap := sim.snapshot()
	if snap.ND != 4 || len(snap.Keys) == 0 {
		t.Fatalf("bad snapshot: nd=%d keys=%d", snap.ND, len(snap.Keys))
	}
	// Hash destinations must match the live assignment.
	for _, ks := range snap.Keys[:10] {
		if ks.Hash != sim.asg.HashDest(ks.Key) {
			t.Fatal("snapshot hash dest out of sync")
		}
		if ks.Dest != sim.asg.Dest(ks.Key) {
			t.Fatal("snapshot dest out of sync")
		}
	}
	plan := balance.Mixed{}.Plan(snap, defCfg())
	sim.apply(plan)
	// After apply, the assignment must reflect the plan's table.
	for _, k := range plan.Table.Keys() {
		d, _ := plan.Table.Lookup(k)
		if sim.asg.Dest(k) != d {
			t.Fatal("apply did not install routing entry")
		}
	}
	sim.advance()
	if sim.interval != 1 {
		t.Fatalf("interval = %d after advance", sim.interval)
	}
}

func TestPlanSimWindowedMemory(t *testing.T) {
	sim := newPlanSim(100, 0.85, 0, 2, 3, 2)
	s1 := sim.snapshot()
	sim.advance()
	s2 := sim.snapshot()
	// With a static distribution (f = 0) and w = 3, the second
	// interval's windowed memory must be roughly double the first's.
	if s2.TotalMem() <= s1.TotalMem() {
		t.Fatalf("windowed memory did not accumulate: %d then %d", s1.TotalMem(), s2.TotalMem())
	}
}

func TestStateWeightRangeAndDeterminism(t *testing.T) {
	for k := 0; k < 1000; k++ {
		w := stateWeight(tuple.Key(k))
		if w < 1 || w > 4 {
			t.Fatalf("stateWeight(%d) = %d out of [1,4]", k, w)
		}
		if w != stateWeight(tuple.Key(k)) {
			t.Fatal("stateWeight not deterministic")
		}
	}
	// All four weights occur.
	seen := map[int64]bool{}
	for k := 0; k < 1000; k++ {
		seen[stateWeight(tuple.Key(k))] = true
	}
	if len(seen) != 4 {
		t.Fatalf("stateWeight uses %d distinct values, want 4", len(seen))
	}
}

func TestRunPlannerAggregates(t *testing.T) {
	sim := newPlanSim(2000, 0.85, 1.0, 4, 1, 3)
	pm := runPlanner(sim, balance.Mixed{}, defCfg(), 3)
	if pm.GenTime <= 0 {
		t.Fatal("no generation time recorded")
	}
	if pm.MaxTheta < 0 {
		t.Fatal("negative theta")
	}
}

// Smoke-run the two cheapest figure regenerators end to end so harness
// regressions are caught by `go test` without paying the full sweep.
func TestFig07aSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration skipped in -short")
	}
	r := Fig07a()
	if len(r.Rows) != 4 || len(r.Rows[0]) != 6 {
		t.Fatalf("fig07a shape %dx%d", len(r.Rows), len(r.Rows[0]))
	}
}

func TestFig19Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration skipped in -short")
	}
	r := Fig19()
	if len(r.Rows) != 8 {
		t.Fatalf("fig19 rows = %d", len(r.Rows))
	}
}
