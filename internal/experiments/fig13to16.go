package experiments

import (
	"fmt"

	"repro/internal/balance"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/ops"
	"repro/internal/readj"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// System-level experiments (Figs. 13–16): real tuples through the
// engine, real state migration, throughput/latency from the saturation
// model. Scales are laptop-sized: tuple
// budgets per interval are 10^4 instead of the cluster's 10^5/s, and
// interval counts are tens instead of hundreds. Shapes, not absolute
// numbers, are the reproduction target.

const (
	realBudget    = 10000
	realND        = 10
	realIntervals = 24
	realWarmup    = 4
	// baseCost is the per-tuple service cost; it scales capacity so
	// migration volumes are a visible fraction of service capacity.
	// PKG's partial-result coordination overhead is charged by
	// core.PKGOverhead against its capacity.
	baseCost = 8
)

// realSpec configures one system run.
type realSpec struct {
	alg      core.Algorithm
	theta    float64
	window   int
	next     func() tuple.Tuple // raw generator draw
	advance  func()             // workload drift per interval
	op       func(id int) engine.Operator
	nd       int
	sigma    float64 // Readj σ
	useTuned bool    // tune Readj σ per plan (paper's best-σ reporting)
}

// buildSystem assembles the stage/engine/controller per spec through
// the topology builder. The transfer mode is explicit (usePipeline):
// exhibit outputs must not depend on where the builder's multi-stage
// default would land, and these systems are single-stage anyway.
func buildSystem(s realSpec) *topology.System {
	cost := int64(baseCost)
	nd := s.nd
	if nd == 0 {
		nd = realND
	}
	mode := topology.StoreAndForward()
	if usePipeline {
		mode = topology.Pipelined()
	}
	spout := func() tuple.Tuple {
		t := s.next()
		t.Cost = cost
		return t
	}
	sopts := []topology.StageOption{
		topology.Instances(nd),
		topology.Window(s.window),
		topology.WithAlgorithm(s.alg),
		topology.Theta(s.theta),
		topology.TableMax(defNA),
		topology.Beta(defBeta),
		topology.Capacity(int64(baseCost) * realBudget / int64(nd)),
		topology.MinKeys(32),
	}
	if s.alg == core.AlgReadj {
		// Run the fixed-σ planner, or the tuned variant when asked
		// (the paper's best-σ reporting).
		p := balance.Planner(readj.Planner{Sigma: s.sigma})
		if s.useTuned {
			p = plannerFunc{"ReadjTuned", func(sn *stats.Snapshot, c balance.Config) *balance.Plan {
				return readj.Tune(sn, c, nil)
			}}
		}
		sopts = append(sopts, topology.WithPlanner(p))
	}
	sys := topology.New(topology.Spout(spout), topology.Budget(realBudget), mode).
		Stage("operator", s.op, sopts...).
		Build()
	if s.advance != nil {
		sys.Engine.AdvanceWorkload = func(int64) { s.advance() }
	}
	return sys
}

// steadyState runs the spec and returns mean throughput (tuples/s) and
// latency (ms) after warm-up.
func steadyState(s realSpec, intervals int) (float64, float64) {
	sys := buildSystem(s)
	defer sys.Stop()
	sys.Run(intervals)
	var thr, lat float64
	n := 0
	for _, m := range sys.Recorder().Series[realWarmup:] {
		thr += m.Throughput
		lat += m.LatencyMs
		n++
	}
	return thr / float64(n), lat / float64(n)
}

// Fig13 regenerates Fig. 13: throughput and latency vs fluctuation
// rate f for Storm, Readj, Mixed and the Ideal shuffle bound.
func Fig13() *Result {
	r := &Result{
		ID:     "fig13",
		Title:  "Throughput (tuples/s) and latency (ms) vs fluctuation rate f",
		Header: []string{"f", "Storm thr", "Readj thr", "Mixed thr", "Ideal thr", "Storm lat", "Readj lat", "Mixed lat", "Ideal lat"},
		Notes:  "Mixed tracks Ideal; Readj degrades as f grows; Storm trails throughout",
	}
	// K = 1e4 puts meaningful mass on the hot keys (Fig. 7(b)) so hash
	// placement matters; z, θmax at Tab. II defaults.
	const k = 10000
	run := func(alg core.Algorithm, f float64) (float64, float64) {
		gen := workload.NewZipfStream(k, defZ, f, realBudget, 43)
		sp := realSpec{
			alg: alg, theta: defTheta, window: 1,
			next:  gen.Next,
			op:    func(int) engine.Operator { return engine.StatefulCount },
			sigma: 0.1,
		}
		sys := buildSystem(sp)
		defer sys.Stop()
		// Fluctuation swaps frequencies between keys on *different task
		// instances* of the system under test (§V), so the live
		// assignment must drive them; key-oblivious schemes get a fixed
		// modular view.
		if ar := sys.Stage(0).AssignmentRouter(); ar != nil {
			sys.Engine.AdvanceWorkload = func(int64) { gen.Advance(ar.Assignment()) }
		} else {
			sys.Engine.AdvanceWorkload = func(int64) { gen.Advance(modAsg{realND}) }
		}
		sys.Run(realIntervals)
		var thr, lat float64
		n := 0
		for _, m := range sys.Recorder().Series[realWarmup:] {
			thr += m.Throughput
			lat += m.LatencyMs
			n++
		}
		return thr / float64(n), lat / float64(n)
	}
	for _, f := range []float64{0.1, 0.5, 0.9, 1.3, 1.7, 2.0} {
		sThr, sLat := run(core.AlgStorm, f)
		rThr, rLat := run(core.AlgReadj, f)
		mThr, mLat := run(core.AlgMixed, f)
		iThr, iLat := run(core.AlgIdeal, f)
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%.1f", f),
			f0(sThr), f0(rThr), f0(mThr), f0(iThr),
			f1(sLat), f1(rLat), f1(mLat), f1(iLat),
		})
	}
	return r
}

// modAsg is a key-modulo assignment view used only to drive workload
// fluctuation for schemes without an assignment router.
type modAsg struct{ nd int }

func (m modAsg) Dest(k tuple.Key) int { return int(uint64(k) % uint64(m.nd)) }
func (m modAsg) Instances() int       { return m.nd }

// fig14 runs one dataset across algorithms × θmax, reporting mean
// throughput (the bar chart of Fig. 14).
func fig14(id, title string, algs []core.Algorithm, mkSpec func(alg core.Algorithm, theta float64) realSpec) *Result {
	r := &Result{
		ID:     id,
		Title:  title,
		Header: []string{"theta"},
		Notes:  "best throughput at strict theta under Mixed; Readj needs loose theta to catch up",
	}
	for _, a := range algs {
		r.Header = append(r.Header, string(a)+" thr")
	}
	for _, th := range []float64{0.02, 0.08, 0.15, 0.3} {
		row := []string{fmt.Sprintf("%.2f", th)}
		for _, a := range algs {
			thr, _ := steadyState(mkSpec(a, th), realIntervals)
			row = append(row, f0(thr))
		}
		r.Rows = append(r.Rows, row)
	}
	return r
}

// Fig14a regenerates Fig. 14(a): word count on the Social feed.
func Fig14a() *Result {
	algs := []core.Algorithm{core.AlgStorm, core.AlgReadj, core.AlgMixed, core.AlgPKG, core.AlgMinTable}
	return fig14("fig14a", "Throughput on Social data (word count)", algs,
		func(alg core.Algorithm, th float64) realSpec {
			gen := workload.NewSocial(30000, defZ, 0.002, 47)
			fleet := ops.NewWordCountFleet()
			return realSpec{
				alg: alg, theta: th, window: 1,
				next:    gen.Next,
				advance: gen.Advance,
				op:      fleet.Factory,
				sigma:   0.1, useTuned: true,
			}
		})
}

// Fig14b regenerates Fig. 14(b): self-join over the Stock tape. PKG is
// excluded, as in the paper: key splitting breaks join semantics.
func Fig14b() *Result {
	algs := []core.Algorithm{core.AlgStorm, core.AlgReadj, core.AlgMixed, core.AlgMinTable}
	return fig14("fig14b", "Throughput on Stock data (windowed self-join)", algs,
		func(alg core.Algorithm, th float64) realSpec {
			gen := workload.NewStock(0, defZ, 53)
			fleet := ops.NewSelfJoinFleet(false)
			return realSpec{
				alg: alg, theta: th, window: 5,
				next:    gen.Next,
				advance: gen.Advance,
				op:      fleet.Factory,
				sigma:   0.1, useTuned: true,
			}
		})
}

// Fig15 regenerates Fig. 15: throughput over time as one instance is
// added mid-run (Social word count). Series are sampled every other
// interval; the recovery speed after the scale-out event is the story.
func Fig15() *Result {
	const (
		pre   = 8
		post  = 16
		total = pre + post
	)
	r := &Result{
		ID:     "fig15",
		Title:  "Scale-out dynamics on Social data (instance added at t=8)",
		Header: []string{"t"},
		Notes:  "Mixed restores full throughput within ~1 interval; Readj lags; Storm never rebalances onto the new instance beyond hash arcs",
	}
	type series struct {
		label string
		spec  realSpec
		grow  bool
	}
	mk := func(alg core.Algorithm, th float64, tuned bool) realSpec {
		gen := workload.NewSocial(30000, defZ, 0.002, 59)
		fleet := ops.NewWordCountFleet()
		return realSpec{
			alg: alg, theta: th, window: 1, nd: realND - 1,
			next: gen.Next, advance: gen.Advance,
			op: fleet.Factory, sigma: 0.1, useTuned: tuned,
		}
	}
	pkgSpec := mk(core.AlgPKG, 0.1, false)
	pkgSpec.nd = realND // PKG is theta-insensitive; runs at final size
	sers := []series{
		{"Mixed th=0.1", mk(core.AlgMixed, 0.1, false), true},
		{"Readj th=0.1", mk(core.AlgReadj, 0.1, true), true},
		{"Mixed th=0.2", mk(core.AlgMixed, 0.2, false), true},
		{"Readj th=0.2", mk(core.AlgReadj, 0.2, true), true},
		{"PKG", pkgSpec, false},
		{"Storm", mk(core.AlgStorm, 0.1, false), true},
	}
	cols := make([][]float64, len(sers))
	for i, se := range sers {
		r.Header = append(r.Header, se.label)
		sys := buildSystem(se.spec)
		sys.Run(pre)
		if se.grow {
			sys.Engine.ResizeStage(0, +1)
		}
		sys.Run(post)
		for _, m := range sys.Recorder().Series {
			cols[i] = append(cols[i], m.Throughput)
		}
		sys.Stop()
	}
	for t := 0; t < total; t += 2 {
		row := []string{fmt.Sprint(t)}
		for i := range sers {
			row = append(row, f0(cols[i][t]))
		}
		r.Rows = append(r.Rows, row)
	}
	return r
}

// Fig16 regenerates Fig. 16: continuous TPC-H Q5 under periodic
// distribution shifts (every 5 intervals), θmax ∈ {0.1, 0.2}.
func Fig16() *Result {
	const intervals = 30
	r := &Result{
		ID:     "fig16",
		Title:  "TPC-H Q5 throughput over time (FK distribution shift every 5 intervals)",
		Header: []string{"t"},
		Notes:  "Mixed recovers after each shift; Storm stays depressed; MinTable pays migration dips",
	}
	type series struct {
		label string
		alg   core.Algorithm
		theta float64
	}
	sers := []series{
		{"Mixed th=0.1", core.AlgMixed, 0.1},
		{"Readj th=0.1", core.AlgReadj, 0.1},
		{"MinTable th=0.1", core.AlgMinTable, 0.1},
		{"Storm", core.AlgStorm, 0.1},
		{"Mixed th=0.2", core.AlgMixed, 0.2},
		{"Readj th=0.2", core.AlgReadj, 0.2},
	}
	cols := make([][]float64, len(sers))
	for i, se := range sers {
		cfg := workload.DefaultTPCHConfig()
		cfg.Seed = 61
		gen := workload.NewTPCH(cfg)
		fleet := ops.NewQ5JoinFleet(gen, 2 /* ASIA */)
		tick := 0
		sp := realSpec{
			alg: se.alg, theta: se.theta, window: 5,
			next: gen.Next,
			advance: func() {
				tick++
				if tick%5 == 0 {
					gen.Advance()
				}
			},
			op:    fleet.Factory,
			sigma: 0.1, useTuned: true,
		}
		sys := buildSystem(sp)
		sys.Run(intervals)
		for _, m := range sys.Recorder().Series {
			cols[i] = append(cols[i], m.Throughput)
		}
		sys.Stop()
		r.Header = append(r.Header, se.label)
	}
	for t := 0; t < intervals; t += 2 {
		row := []string{fmt.Sprint(t)}
		for i := range sers {
			row = append(row, f0(cols[i][t]))
		}
		r.Rows = append(r.Rows, row)
	}
	return r
}

func f0(x float64) string { return fmt.Sprintf("%.0f", x) }
func f1(x float64) string { return fmt.Sprintf("%.1f", x) }

var _ = metrics.F
