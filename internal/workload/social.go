package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/tuple"
)

// Social models the paper's first real workload: a 5-day microblog
// feed, >5M tuples over ~180k topic words, where "the word frequency
// usually changes slowly". We reproduce the trait with a Zipf word
// distribution whose rank permutation drifts gradually: each interval a
// small fraction of adjacent ranks swap, so hot topics rise and fall
// over many intervals instead of jumping.
type Social struct {
	dist *Zipf
	rng  *rand.Rand
	perm []tuple.Key
	// DriftFrac is the fraction of ranks nudged per interval.
	DriftFrac float64
	seq       uint64
	words     map[tuple.Key]string
}

// SocialKeys is the topic-word vocabulary size from the paper.
const SocialKeys = 180000

// NewSocial builds the social feed with the given vocabulary size
// (≤ 0 selects the paper's 180k), skew and drift fraction per interval.
func NewSocial(keys int, z, drift float64, seed int64) *Social {
	if keys <= 0 {
		keys = SocialKeys
	}
	rng := rand.New(rand.NewSource(seed))
	s := &Social{
		dist:      NewZipf(keys, z),
		rng:       rng,
		perm:      make([]tuple.Key, keys),
		DriftFrac: drift,
		words:     make(map[tuple.Key]string),
	}
	for i := range s.perm {
		s.perm[i] = tuple.Key(i)
	}
	rng.Shuffle(keys, func(i, j int) { s.perm[i], s.perm[j] = s.perm[j], s.perm[i] })
	return s
}

// K returns the vocabulary size.
func (s *Social) K() int { return s.dist.K }

// Next draws one feed word as a unit-cost tuple; Value carries the
// word string for the word-count example application.
func (s *Social) Next() tuple.Tuple {
	r := s.dist.Rank(s.rng)
	k := s.perm[r-1]
	s.seq++
	w := s.words[k]
	if w == "" {
		w = fmt.Sprintf("topic-%06d", uint64(k))
		s.words[k] = w
	}
	t := tuple.New(k, w)
	t.Seq = s.seq
	return t
}

// NextBatch fills dst with the next len(dst) feed words, identical in
// sequence to successive Next calls. Always returns len(dst).
func (s *Social) NextBatch(dst []tuple.Tuple) int { return batchDraw(dst, s.Next) }

// Advance drifts the distribution slowly: DriftFrac·K random adjacent
// rank swaps. Adjacent swaps change each key's frequency only
// marginally — the "slowly changing" regime.
func (s *Social) Advance() {
	n := int(s.DriftFrac * float64(len(s.perm)))
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		a := s.rng.Intn(len(s.perm) - 1)
		s.perm[a], s.perm[a+1] = s.perm[a+1], s.perm[a]
	}
}

// ExpectedLoad returns expected per-key costs for an interval of n
// tuples under the current permutation.
func (s *Social) ExpectedLoad(n int64) map[tuple.Key]int64 {
	counts := s.dist.ExpectedCounts(n)
	out := make(map[tuple.Key]int64, 4096)
	for r, c := range counts {
		if c > 0 {
			out[s.perm[r]] = c
		}
	}
	return out
}
