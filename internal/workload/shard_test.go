package workload

import (
	"sync"
	"testing"

	"repro/internal/tuple"
)

// tupleCount is a multiset fingerprint of a tuple draw: everything the
// data plane observes about a tuple except its draw position.
type tupleCount struct {
	key    tuple.Key
	cost   int64
	state  int64
	stream string
}

func countTuples(ts []tuple.Tuple) map[tupleCount]int {
	m := make(map[tupleCount]int)
	for _, t := range ts {
		m[tupleCount{t.Key, t.Cost, t.StateSize, t.Stream}]++
	}
	return m
}

// drainShards pulls n tuples total from the shards with one goroutine
// per shard drawing in chunks, returning each shard's draws.
func drainShards(shards []func([]tuple.Tuple) int, perShard, chunk int) [][]tuple.Tuple {
	out := make([][]tuple.Tuple, len(shards))
	var wg sync.WaitGroup
	for i, sb := range shards {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]tuple.Tuple, chunk)
			for got := 0; got < perShard; {
				c := perShard - got
				if c > chunk {
					c = chunk
				}
				n := sb(buf[:c])
				out[i] = append(out[i], buf[:n]...)
				got += n
				if n < c {
					return
				}
			}
		}()
	}
	wg.Wait()
	return out
}

// TestShardUnionMatchesSingleSequence pins the sharder's multiset
// invariant for every generator family: the union of B draws claimed
// across 4 concurrent shards equals the first B draws of an identically
// seeded unsharded generator, and shard draws are disjoint (counts sum
// exactly, nothing duplicated or lost).
func TestShardUnionMatchesSingleSequence(t *testing.T) {
	const total, shards, chunk = 8000, 4, 97
	gens := map[string]struct {
		single func() []func([]tuple.Tuple) int
		shard  func() []func([]tuple.Tuple) int
	}{
		"zipf": {
			single: func() []func([]tuple.Tuple) int { return NewZipfStream(5000, 0.85, 1, 10000, 11).Shard(1) },
			shard:  func() []func([]tuple.Tuple) int { return NewZipfStream(5000, 0.85, 1, 10000, 11).Shard(shards) },
		},
		"social": {
			single: func() []func([]tuple.Tuple) int { return NewSocial(3000, 0.8, 0.01, 12).Shard(1) },
			shard:  func() []func([]tuple.Tuple) int { return NewSocial(3000, 0.8, 0.01, 12).Shard(shards) },
		},
		"stock": {
			single: func() []func([]tuple.Tuple) int { return NewStock(0, 0.8, 13).Shard(1) },
			shard:  func() []func([]tuple.Tuple) int { return NewStock(0, 0.8, 13).Shard(shards) },
		},
		"tpch": {
			single: func() []func([]tuple.Tuple) int { return NewTPCH(DefaultTPCHConfig()).Shard(1) },
			shard:  func() []func([]tuple.Tuple) int { return NewTPCH(DefaultTPCHConfig()).Shard(shards) },
		},
	}
	for name, g := range gens {
		t.Run(name, func(t *testing.T) {
			ref := make([]tuple.Tuple, total)
			if got := g.single()[0](ref); got != total {
				t.Fatalf("single shard drew %d of %d", got, total)
			}
			parts := drainShards(g.shard(), total/shards, chunk)
			var merged []tuple.Tuple
			seqs := make(map[uint64]int)
			for _, p := range parts {
				merged = append(merged, p...)
				for _, tp := range p {
					seqs[tp.Seq]++
				}
			}
			if len(merged) != total {
				t.Fatalf("shards drew %d of %d", len(merged), total)
			}
			// Disjointness: no draw position claimed twice.
			for s, n := range seqs {
				if n != 1 {
					t.Fatalf("seq %d claimed by %d shards", s, n)
				}
			}
			want, got := countTuples(ref), countTuples(merged)
			if len(want) != len(got) {
				t.Fatalf("distinct tuple fingerprints %d ≠ %d", len(got), len(want))
			}
			for tc, n := range want {
				if got[tc] != n {
					t.Fatalf("tuple %+v drawn %d times sharded, %d unsharded", tc, got[tc], n)
				}
			}
		})
	}
}

// TestShardExhaustionLatches verifies a finite source stops every shard
// once exhausted instead of re-entering the drained generator.
func TestShardExhaustionLatches(t *testing.T) {
	remaining := 10
	shards := shardSpouts(3, func(dst []tuple.Tuple) int {
		n := len(dst)
		if n > remaining {
			n = remaining
		}
		remaining -= n
		for i := 0; i < n; i++ {
			dst[i] = tuple.New(tuple.Key(i), nil)
		}
		return n
	})
	buf := make([]tuple.Tuple, 4)
	var total int
	for i := 0; i < 12; i++ {
		total += shards[i%3](buf)
	}
	if total != 10 {
		t.Fatalf("shards drew %d tuples from a 10-tuple source", total)
	}
}
