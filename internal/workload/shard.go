package workload

import (
	"sync"

	"repro/internal/tuple"
)

// This file is the partitioned-draw API behind the engine's parallel
// spouts: Shard(n) splits one generator's draw sequence across n spout
// shards so n feeder goroutines can emit concurrently.
//
// The generators are driven by a single sequential RNG, so the draw
// itself cannot be parallelized without changing the published
// sequences. Sharding therefore serializes only the raw draw — each
// shard call atomically claims the next len(dst) draws of the shared
// sequence under one lock — while everything downstream of the draw
// (routing, partitioning, channel sends, operator work) runs on the
// caller's goroutine in parallel. The invariants, which the engine's
// determinism tests pin, are:
//
//   - disjointness: every draw of the underlying sequence is handed to
//     exactly one shard;
//   - multiset determinism: the union of the first B draws claimed
//     across all shards is exactly the first B draws of the unsharded
//     sequence, whatever the interleaving of shard calls — so interval
//     statistics, routing decisions and exhibit metrics on
//     key-partitioned stages are identical to a single-feeder run
//     (order-dependent routers — PKG, shuffle — see the interleaving).
//
// Which contiguous segment a particular shard receives depends on
// goroutine scheduling; no consumer observes it, because all shards
// feed the same stage and per-key accounting is order-independent
// within an interval.

// sharder serializes draws from one generator across its shards. It
// deliberately mirrors engine.ShardSpout: workload sits below engine
// in the import graph, so the ~20-line mutex wrapper is duplicated
// here rather than importing the engine from every generator. A
// semantic change to either copy (locking, exhaustion latching) must
// land in both.
type sharder struct {
	mu   sync.Mutex
	next func(dst []tuple.Tuple) int
	// done latches when the source returns a short draw (finite
	// sources), so later claims from any shard return 0 instead of
	// re-entering an exhausted generator.
	done bool
}

func (s *sharder) draw(dst []tuple.Tuple) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return 0
	}
	got := s.next(dst)
	if got < len(dst) {
		s.done = true
	}
	return got
}

// shardSpouts builds n spout shards over one batch-draw function. Each
// shard has the engine's SpoutBatch shape (func(dst) int), so the
// result wires directly into engine.Engine.SpoutShards.
func shardSpouts(n int, next func(dst []tuple.Tuple) int) []func(dst []tuple.Tuple) int {
	if n < 1 {
		n = 1
	}
	sh := &sharder{next: next}
	out := make([]func(dst []tuple.Tuple) int, n)
	for i := range out {
		out[i] = sh.draw
	}
	return out
}

// Shard splits the stream's draw sequence across n spout shards for
// parallel emission. Advance must not run concurrently with shard
// draws (the engine advances workloads between intervals, when the
// feeders are joined).
func (s *ZipfStream) Shard(n int) []func(dst []tuple.Tuple) int {
	return shardSpouts(n, s.NextBatch)
}

// Shard splits the feed's draw sequence across n spout shards for
// parallel emission.
func (s *Social) Shard(n int) []func(dst []tuple.Tuple) int {
	return shardSpouts(n, s.NextBatch)
}

// Shard splits the trade tape's draw sequence across n spout shards
// for parallel emission.
func (s *Stock) Shard(n int) []func(dst []tuple.Tuple) int {
	return shardSpouts(n, s.NextBatch)
}

// Shard splits the fact stream's draw sequence across n spout shards
// for parallel emission.
func (t *TPCH) Shard(n int) []func(dst []tuple.Tuple) int {
	return shardSpouts(n, t.NextBatch)
}
