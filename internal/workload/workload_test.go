package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tuple"
)

func TestZipfProbabilitiesSumToOne(t *testing.T) {
	for _, z := range []float64{0, 0.5, 0.85, 1.0} {
		d := NewZipf(1000, z)
		var sum float64
		for r := 1; r <= d.K; r++ {
			sum += d.Prob(r)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("z=%v: ΣP = %v, want 1", z, sum)
		}
	}
}

func TestZipfSkewOrdering(t *testing.T) {
	// Higher z concentrates more mass on rank 1; z = 0 is uniform.
	d0 := NewZipf(100, 0)
	d85 := NewZipf(100, 0.85)
	if math.Abs(d0.Prob(1)-0.01) > 1e-9 {
		t.Fatalf("z=0 P(1) = %v, want 0.01", d0.Prob(1))
	}
	if d85.Prob(1) <= d0.Prob(1) {
		t.Fatalf("z=0.85 P(1)=%v not above uniform", d85.Prob(1))
	}
	for r := 2; r <= 100; r++ {
		if d85.Prob(r) > d85.Prob(r-1)+1e-12 {
			t.Fatalf("Zipf probabilities not non-increasing at rank %d", r)
		}
	}
}

func TestZipfRankInRange(t *testing.T) {
	d := NewZipf(50, 0.85)
	rng := rand.New(rand.NewSource(1))
	f := func(_ uint8) bool {
		r := d.Rank(rng)
		return r >= 1 && r <= 50
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSamplingMatchesDistribution(t *testing.T) {
	d := NewZipf(10, 0.85)
	rng := rand.New(rand.NewSource(7))
	counts := make([]int, 11)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[d.Rank(rng)]++
	}
	for r := 1; r <= 10; r++ {
		want := d.Prob(r)
		got := float64(counts[r]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("rank %d: sampled %.4f, expected %.4f", r, got, want)
		}
	}
}

func TestExpectedCountsSumToN(t *testing.T) {
	d := NewZipf(97, 0.85)
	var sum int64
	for _, c := range d.ExpectedCounts(10000) {
		sum += c
	}
	if sum < 9990 || sum > 10000 {
		t.Fatalf("ΣExpectedCounts = %d, want ≈10000", sum)
	}
}

// fixedAsg assigns keys modulo nd, for fluctuation tests.
type fixedAsg int

func (f fixedAsg) Dest(k tuple.Key) int { return int(uint64(k) % uint64(f)) }
func (f fixedAsg) Instances() int       { return int(f) }

func TestZipfStreamDeterministic(t *testing.T) {
	a := NewZipfStream(1000, 0.85, 1.0, 10000, 3)
	b := NewZipfStream(1000, 0.85, 1.0, 10000, 3)
	for i := 0; i < 500; i++ {
		if a.Next().Key != b.Next().Key {
			t.Fatal("same-seed streams diverged")
		}
	}
}

func TestZipfStreamAdvanceShiftsLoad(t *testing.T) {
	s := NewZipfStream(1000, 0.85, 0.5, 10000, 3)
	asg := fixedAsg(4)
	before := instLoads(s.ExpectedLoad(), asg)
	s.Advance(asg)
	after := instLoads(s.ExpectedLoad(), asg)
	avg := 10000.0 / 4
	var totalShift float64
	for d := range before {
		totalShift += math.Abs(float64(after[d]-before[d])) / avg
	}
	if totalShift < 0.5 {
		t.Fatalf("Advance(f=0.5) shifted Σ|ΔL|/L̄ = %.3f, want ≥ 0.5", totalShift)
	}
}

func TestZipfStreamFluctuationIsTransient(t *testing.T) {
	// Short-term fluctuations perturb a stable base: after many
	// Advances, the hottest keys still come from the base head rather
	// than drifting arbitrarily.
	s := NewZipfStream(1000, 0.85, 1.0, 10000, 4)
	baseHot := map[tuple.Key]bool{}
	for _, k := range s.HottestKeys(50) {
		baseHot[k] = true
	}
	asg := fixedAsg(4)
	for i := 0; i < 30; i++ {
		s.Advance(asg)
	}
	overlap := 0
	for _, k := range s.HottestKeys(50) {
		if baseHot[k] {
			overlap++
		}
	}
	if overlap < 25 {
		t.Fatalf("only %d/50 hot keys survived 30 intervals; fluctuation must be transient", overlap)
	}
}

func TestZipfStreamZeroFluctuationIsStatic(t *testing.T) {
	s := NewZipfStream(100, 0.85, 0, 1000, 1)
	before := s.HottestKeys(10)
	s.Advance(fixedAsg(4))
	after := s.HottestKeys(10)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("f=0 stream changed its permutation")
		}
	}
}

func instLoads(load map[tuple.Key]int64, asg fixedAsg) []int64 {
	out := make([]int64, asg.Instances())
	for k, c := range load {
		out[asg.Dest(k)] += c
	}
	return out
}

func TestSocialDriftIsGradual(t *testing.T) {
	s := NewSocial(5000, 0.85, 0.01, 2)
	before := s.ExpectedLoad(100000)
	s.Advance()
	after := s.ExpectedLoad(100000)
	// Hot-key mass must be nearly unchanged interval-to-interval.
	var diff, total int64
	for k, c := range before {
		d := c - after[k]
		if d < 0 {
			d = -d
		}
		diff += d
		total += c
	}
	if float64(diff)/float64(total) > 0.1 {
		t.Fatalf("social drift moved %.1f%% of mass in one interval; should be slow",
			100*float64(diff)/float64(total))
	}
}

func TestSocialTupleCarriesWord(t *testing.T) {
	s := NewSocial(100, 0.85, 0.01, 2)
	tp := s.Next()
	if w, ok := tp.Value.(string); !ok || w == "" {
		t.Fatalf("social tuple value = %v, want topic word", tp.Value)
	}
	if s.K() != 100 {
		t.Fatalf("K = %d, want 100", s.K())
	}
}

func TestSocialDefaultVocabulary(t *testing.T) {
	s := NewSocial(0, 0.85, 0.01, 1)
	if s.K() != SocialKeys {
		t.Fatalf("default vocabulary %d, want %d", s.K(), SocialKeys)
	}
}

func TestStockBurstsShiftLoadAbruptly(t *testing.T) {
	s := NewStock(0, 0.85, 5)
	if s.K() != StockKeys {
		t.Fatalf("K = %d, want %d", s.K(), StockKeys)
	}
	// Advance until a burst ignites (probability 0.6 per interval).
	for i := 0; i < 50 && s.ActiveBursts() == 0; i++ {
		s.Advance()
	}
	if s.ActiveBursts() == 0 {
		t.Fatal("no burst ignited in 50 intervals with BurstProb 0.6")
	}
	// A bursting symbol should now attract a visible share of draws.
	counts := make(map[tuple.Key]int)
	for i := 0; i < 50000; i++ {
		counts[s.Next().Key]++
	}
	var burstKey tuple.Key
	for k := range s.bursts {
		burstKey = k
		break
	}
	if counts[burstKey] < 500 {
		t.Fatalf("bursting symbol drew only %d of 50000 tuples", counts[burstKey])
	}
}

func TestStockBurstsExpire(t *testing.T) {
	s := NewStock(100, 0.85, 9)
	s.BurstProb = 1.0
	s.Advance()
	if s.ActiveBursts() == 0 {
		t.Fatal("burst did not ignite with probability 1")
	}
	s.BurstProb = 0
	for i := 0; i < 5; i++ {
		s.Advance()
	}
	if s.ActiveBursts() != 0 {
		t.Fatalf("bursts did not expire: %d active", s.ActiveBursts())
	}
}

func TestTPCHDimensionsAndFacts(t *testing.T) {
	cfg := DefaultTPCHConfig()
	cfg.Customers, cfg.Suppliers, cfg.OrderPool = 1000, 100, 500
	g := NewTPCH(cfg)
	if len(g.Customers) != 1000 || len(g.Suppliers) != 100 {
		t.Fatalf("dimensions sized %d/%d", len(g.Customers), len(g.Suppliers))
	}
	var orders, lineitems int
	for i := 0; i < 5000; i++ {
		tp := g.Next()
		switch tp.Value.(type) {
		case Order:
			orders++
			if tp.Stream != "O" {
				t.Fatal("order tuple not tagged O")
			}
		case Lineitem:
			lineitems++
			if tp.Stream != "L" {
				t.Fatal("lineitem tuple not tagged L")
			}
			li := tp.Value.(Lineitem)
			if tuple.Key(li.OrderKey) != tp.Key {
				t.Fatal("lineitem not keyed by orderkey")
			}
			if li.Discount < 0 || li.Discount > 0.1 {
				t.Fatalf("discount %v out of range", li.Discount)
			}
		default:
			t.Fatalf("unexpected tuple value %T", tp.Value)
		}
	}
	// Mix ≈ 1 order per LineitemsPerOrder lineitems.
	wantRatio := float64(cfg.LineitemsPerOrder)
	ratio := float64(lineitems) / float64(orders)
	if math.Abs(ratio-wantRatio) > 0.5 {
		t.Fatalf("lineitem/order ratio %.2f, want ≈%.0f", ratio, wantRatio)
	}
}

func TestTPCHForeignKeySkew(t *testing.T) {
	cfg := DefaultTPCHConfig()
	cfg.OrderPool = 1000
	g := NewTPCH(cfg)
	counts := make(map[tuple.Key]int)
	for i := 0; i < 50000; i++ {
		counts[g.Next().Key]++
	}
	var max, total int
	for _, c := range counts {
		if c > max {
			max = c
		}
		total += c
	}
	avg := float64(total) / float64(len(counts))
	if float64(max) < 4*avg {
		t.Fatalf("hot orderkey %d× avg %.1f: FK skew too weak for z=0.8", max, avg)
	}
}

func TestTPCHAdvanceShiftsHotKeys(t *testing.T) {
	cfg := DefaultTPCHConfig()
	cfg.OrderPool = 500
	g := NewTPCH(cfg)
	hotBefore := hotKey(g)
	g.Advance()
	hotAfter := hotKey(g)
	if hotBefore == hotAfter {
		t.Skip("hot key survived reshuffle (possible but rare); rerun-safe skip")
	}
}

func hotKey(g *TPCH) tuple.Key {
	counts := make(map[tuple.Key]int)
	for i := 0; i < 20000; i++ {
		counts[g.Next().Key]++
	}
	var best tuple.Key
	max := -1
	for k, c := range counts {
		if c > max {
			best, max = k, c
		}
	}
	return best
}

func TestRegionOfNation(t *testing.T) {
	if RegionOfNation(0) != 0 || RegionOfNation(4) != 0 || RegionOfNation(5) != 1 || RegionOfNation(24) != 4 {
		t.Fatal("nation→region mapping wrong")
	}
}

func TestNationLookupsStable(t *testing.T) {
	g := NewTPCH(DefaultTPCHConfig())
	if g.NationOfCust(1) != g.NationOfCust(1) {
		t.Fatal("customer nation lookup unstable")
	}
	n := g.NationOfSupp(5)
	if n < 0 || n >= len(Regions)*NationsPerRegion {
		t.Fatalf("supplier nation %d out of range", n)
	}
}

func TestStockExpectedLoadIncludesBursts(t *testing.T) {
	s := NewStock(200, 0.85, 13)
	s.BurstProb = 1.0
	s.Advance()
	if s.ActiveBursts() == 0 {
		t.Fatal("no burst after Advance with probability 1")
	}
	load := s.ExpectedLoad(10000)
	var burstKey tuple.Key
	for k := range s.bursts {
		burstKey = k
	}
	if load[burstKey] == 0 {
		t.Fatal("expected load omits the bursting symbol")
	}
	var total int64
	for _, c := range load {
		total += c
	}
	if total < 9000 || total > 10500 {
		t.Fatalf("expected load sums to %d, want ≈10000", total)
	}
}

func TestZipfStreamK(t *testing.T) {
	if NewZipfStream(123, 0.85, 0, 100, 1).K() != 123 {
		t.Fatal("K accessor wrong")
	}
}

func TestHottestKeysClamped(t *testing.T) {
	s := NewZipfStream(5, 0.85, 0, 100, 1)
	if got := len(s.HottestKeys(50)); got != 5 {
		t.Fatalf("HottestKeys(50) over 5 keys returned %d", got)
	}
}

func TestZipfProbOutOfRange(t *testing.T) {
	d := NewZipf(10, 0.85)
	if d.Prob(0) != 0 || d.Prob(11) != 0 {
		t.Fatal("out-of-range rank has nonzero probability")
	}
}

func TestNewZipfPanicsOnZeroK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(0) did not panic")
		}
	}()
	NewZipf(0, 0.85)
}

// Batch draws must replicate the per-tuple draw sequence exactly: the
// engine's batched emission path relies on this to keep experiment
// outputs identical to the per-tuple path.
func TestNextBatchMatchesSequentialNext(t *testing.T) {
	type gen struct {
		name  string
		next  func() tuple.Tuple
		batch func([]tuple.Tuple) int
	}
	za := NewZipfStream(1000, 0.85, 1.0, 10000, 5)
	zb := NewZipfStream(1000, 0.85, 1.0, 10000, 5)
	sa := NewSocial(2000, 0.85, 0.002, 5)
	sb := NewSocial(2000, 0.85, 0.002, 5)
	ka := NewStock(0, 0.85, 5)
	kb := NewStock(0, 0.85, 5)
	ca := DefaultTPCHConfig()
	ca.Seed = 5
	cb := DefaultTPCHConfig()
	cb.Seed = 5
	ta := NewTPCH(ca)
	tb := NewTPCH(cb)
	gens := []gen{
		{"zipf", za.Next, zb.NextBatch},
		{"social", sa.Next, sb.NextBatch},
		{"stock", ka.Next, kb.NextBatch},
		{"tpch", ta.Next, tb.NextBatch},
	}
	for _, g := range gens {
		buf := make([]tuple.Tuple, 257)
		if got := g.batch(buf); got != len(buf) {
			t.Fatalf("%s: NextBatch returned %d, want %d", g.name, got, len(buf))
		}
		for i := range buf {
			want := g.next()
			if buf[i].Key != want.Key || buf[i].Seq != want.Seq ||
				buf[i].Cost != want.Cost || buf[i].StateSize != want.StateSize ||
				buf[i].Stream != want.Stream {
				t.Fatalf("%s: draw %d batch %+v ≠ sequential %+v", g.name, i, buf[i], want)
			}
		}
	}
}
