package workload

import (
	"math/rand"

	"repro/internal/tuple"
)

// Assigner tells the generator which instance a key currently routes
// to; the fluctuation machinery needs it because the paper's generator
// "keeps swapping frequencies between keys from different task
// instances until the change on workload is significant enough".
type Assigner interface {
	Dest(k tuple.Key) int
	Instances() int
}

// ZipfStream is the paper's synthetic workload: a key domain of size K
// whose per-interval tuple frequencies follow Zipf(z), with a
// fluctuation parameter f that reshuffles which keys carry which
// frequency rank at every interval boundary (Tab. II: z default 0.85,
// f default 1.0).
type ZipfStream struct {
	dist *Zipf
	rng  *rand.Rand
	// perm maps frequency rank (0-based) to key: key perm[0] is the
	// hottest key this interval.
	perm []tuple.Key
	// base is the long-term rank permutation. Fluctuations are
	// *short-term* in the paper's taxonomy (§I distinguishes them from
	// long-term shifts), so every interval starts from base and applies
	// a fresh perturbation of magnitude f·L̄ rather than compounding
	// drift — the persistent hash-placement luck that motivates the
	// whole paper survives across intervals.
	base []tuple.Key
	// F is the fluctuation rate.
	F float64
	// PerInterval is the tuple budget per interval used for expected
	// load computations during fluctuation.
	PerInterval int64
	seq         uint64
}

// NewZipfStream builds a stream over the integer key domain [0, K) with
// skew z and fluctuation rate f. The rank→key permutation starts as a
// random shuffle so hash placement of hot keys is unbiased.
func NewZipfStream(k int, z, f float64, perInterval int64, seed int64) *ZipfStream {
	rng := rand.New(rand.NewSource(seed))
	s := &ZipfStream{
		dist:        NewZipf(k, z),
		rng:         rng,
		perm:        make([]tuple.Key, k),
		base:        make([]tuple.Key, k),
		F:           f,
		PerInterval: perInterval,
	}
	for i := 0; i < k; i++ {
		s.perm[i] = tuple.Key(i)
	}
	rng.Shuffle(k, func(i, j int) { s.perm[i], s.perm[j] = s.perm[j], s.perm[i] })
	copy(s.base, s.perm)
	return s
}

// K returns the key-domain size.
func (s *ZipfStream) K() int { return s.dist.K }

// Next draws one unit-cost tuple from the current interval's
// distribution.
func (s *ZipfStream) Next() tuple.Tuple {
	r := s.dist.Rank(s.rng)
	s.seq++
	t := tuple.New(s.perm[r-1], nil)
	t.Seq = s.seq
	return t
}

// NextBatch fills dst from the current interval's distribution,
// identical in sequence to len(dst) successive Next calls — the form
// the engine's batch spout path consumes. Always returns len(dst).
func (s *ZipfStream) NextBatch(dst []tuple.Tuple) int { return batchDraw(dst, s.Next) }

// batchDraw is the shared batch-draw adapter behind every generator's
// NextBatch: fill dst by successive draws, preserving the per-tuple
// sequence exactly.
func batchDraw(dst []tuple.Tuple, next func() tuple.Tuple) int {
	for i := range dst {
		dst[i] = next()
	}
	return len(dst)
}

// ExpectedLoad returns the expected per-key costs for one interval
// under the current rank permutation: cost(perm[r]) = E[count of rank
// r+1] with unit tuple cost.
func (s *ZipfStream) ExpectedLoad() map[tuple.Key]int64 {
	counts := s.dist.ExpectedCounts(s.PerInterval)
	out := make(map[tuple.Key]int64, len(counts))
	for r, c := range counts {
		if c > 0 {
			out[s.perm[r]] = c
		}
	}
	return out
}

// Advance applies the paper's fluctuation procedure at an interval
// boundary: repeatedly swap the frequency ranks of two keys currently
// routed to *different* instances until the workload change reaches
// the fluctuation target. With f = 0 the distribution is static.
//
// Interpretation note: the paper states the stop condition as
// |L_i(d) − L_{i−1}(d)|/L̄ ≥ f. Read as a per-instance maximum, f = 2
// would concentrate two instances' worth of load shift onto a single
// instance every interval — no scheme, including the paper's, could
// track that, yet Fig. 13 shows Mixed hugging the Ideal bound at
// f = 2.0. We therefore read the condition over the total change,
// Σ_d |ΔL(d)| ≥ f·L̄, which spreads a fluctuation of f·L̄ across
// instances and reproduces the published curve shapes.
func (s *ZipfStream) Advance(asg Assigner) {
	if s.F <= 0 {
		return
	}
	nd := asg.Instances()
	if nd < 2 {
		return
	}
	// Fresh perturbation of the stable base distribution.
	copy(s.perm, s.base)
	counts := s.dist.ExpectedCounts(s.PerInterval)
	avg := float64(s.PerInterval) / float64(nd)
	target := s.F * avg
	delta := make([]float64, nd)
	// Hot ranks carry the load, so swaps that involve one reach the
	// fluctuation target in few steps; purely random pairs would need
	// O(K) swaps on large domains. Half the draws come from the head.
	head := len(s.perm)/100 + 2
	// Bound the swap loop: a capped number of attempts means the target
	// is unreachable (e.g. z = 0: all frequencies equal), so bail out
	// rather than spin.
	maxSwaps := 16*len(s.perm) + 4096
	if maxSwaps > 200000 {
		maxSwaps = 200000
	}
	for i := 0; i < maxSwaps; i++ {
		a := s.rng.Intn(len(s.perm))
		if i%2 == 0 {
			a = s.rng.Intn(head)
		}
		b := s.rng.Intn(len(s.perm))
		if a == b {
			continue
		}
		ka, kb := s.perm[a], s.perm[b]
		da, db := asg.Dest(ka), asg.Dest(kb)
		if da == db {
			continue
		}
		// Swapping ranks a and b moves count difference between the
		// two keys' instances.
		diff := float64(counts[a] - counts[b])
		delta[da] -= diff
		delta[db] += diff
		s.perm[a], s.perm[b] = s.perm[b], s.perm[a]
		var total float64
		for _, dd := range delta {
			total += abs(dd)
		}
		if total >= target {
			return
		}
	}
}

// HottestKeys returns the n currently hottest keys (for tests).
func (s *ZipfStream) HottestKeys(n int) []tuple.Key {
	if n > len(s.perm) {
		n = len(s.perm)
	}
	out := make([]tuple.Key, n)
	copy(out, s.perm[:n])
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
