package workload

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/tuple"
)

// Trace replays a recorded tuple stream from a CSV source, so the
// system can be evaluated against real traces (the role the paper's
// proprietary Social and Stock feeds played). The format is
//
//	key,cost,state,stream
//
// with cost/state/stream optional (defaulting to 1, 1 and ""). Keys
// are either unsigned integers or arbitrary strings (hashed through
// tuple.KeyOf). Traces can loop to extend short recordings.
type Trace struct {
	tuples []tuple.Tuple
	// Loop restarts the trace at the end instead of returning ok=false.
	Loop bool
	pos  int
	seq  uint64
}

// ReadTrace parses a CSV trace.
func ReadTrace(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	cr.FieldsPerRecord = -1
	tr := &Trace{}
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line+1, err)
		}
		line++
		if len(rec) == 0 || (len(rec) == 1 && rec[0] == "") {
			continue
		}
		var t tuple.Tuple
		if u, err := strconv.ParseUint(rec[0], 10, 64); err == nil {
			t = tuple.New(tuple.Key(u), rec[0])
		} else {
			t = tuple.New(tuple.KeyOf(rec[0]), rec[0])
		}
		if len(rec) > 1 && rec[1] != "" {
			c, err := strconv.ParseInt(rec[1], 10, 64)
			if err != nil || c < 0 {
				return nil, fmt.Errorf("workload: trace line %d: bad cost %q", line, rec[1])
			}
			t.Cost = c
		}
		if len(rec) > 2 && rec[2] != "" {
			s, err := strconv.ParseInt(rec[2], 10, 64)
			if err != nil || s < 0 {
				return nil, fmt.Errorf("workload: trace line %d: bad state size %q", line, rec[2])
			}
			t.StateSize = s
		}
		if len(rec) > 3 {
			t.Stream = rec[3]
		}
		tr.tuples = append(tr.tuples, t)
	}
	if len(tr.tuples) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	return tr, nil
}

// Len returns the number of recorded tuples.
func (t *Trace) Len() int { return len(t.tuples) }

// Next returns the next tuple. When the trace is exhausted and Loop is
// unset, ok is false.
func (t *Trace) Next() (tuple.Tuple, bool) {
	if t.pos >= len(t.tuples) {
		if !t.Loop {
			return tuple.Tuple{}, false
		}
		t.pos = 0
	}
	tp := t.tuples[t.pos]
	t.pos++
	t.seq++
	tp.Seq = t.seq
	return tp, true
}

// Spout adapts the trace to the engine's infinite spout contract
// (looping regardless of the Loop flag, since spouts cannot signal
// exhaustion).
func (t *Trace) Spout() func() tuple.Tuple {
	return func() tuple.Tuple {
		tp, ok := t.Next()
		if !ok {
			t.pos = 0
			tp, _ = t.Next()
		}
		return tp
	}
}

// BatchSpout adapts the trace to the engine's batch spout contract,
// looping like Spout. It always fills dst entirely.
func (t *Trace) BatchSpout() func(dst []tuple.Tuple) int {
	sp := t.Spout()
	return func(dst []tuple.Tuple) int { return batchDraw(dst, sp) }
}

// WriteTrace records a tuple sequence as CSV, the inverse of ReadTrace
// (numeric keys only; string-keyed tuples round-trip through their
// hashed key).
func WriteTrace(w io.Writer, tuples []tuple.Tuple) error {
	cw := csv.NewWriter(w)
	for _, t := range tuples {
		rec := []string{
			strconv.FormatUint(uint64(t.Key), 10),
			strconv.FormatInt(t.Cost, 10),
			strconv.FormatInt(t.StateSize, 10),
			t.Stream,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
