// Package workload provides the four workload families of the paper's
// evaluation (§V): synthetic Zipf streams with controllable skew z and
// fluctuation rate f, a Social microblog-like feed (many keys, slow
// drift), a Stock trade tape (few keys, abrupt bursts), and a TPC-H
// dbgen-lite row generator with Zipf-skewed foreign keys for the Q5
// pipeline. All generators are deterministic given a seed.
package workload

import (
	"math"
	"math/rand"
	"sort"
)

// Zipf is a discrete Zipf(z) distribution over ranks 1..K with
// P(rank r) ∝ 1/r^z. Unlike math/rand.Zipf it accepts any z ≥ 0
// (the paper sweeps z ∈ [0, 1], where stdlib requires s > 1).
type Zipf struct {
	K   int
	Z   float64
	cdf []float64 // cdf[i] = P(rank ≤ i+1)
}

// NewZipf precomputes the CDF for K ranks with skew z.
func NewZipf(k int, z float64) *Zipf {
	if k < 1 {
		panic("workload: Zipf needs K ≥ 1")
	}
	d := &Zipf{K: k, Z: z, cdf: make([]float64, k)}
	var sum float64
	for i := 0; i < k; i++ {
		sum += 1 / math.Pow(float64(i+1), z)
		d.cdf[i] = sum
	}
	for i := range d.cdf {
		d.cdf[i] /= sum
	}
	return d
}

// Rank draws a rank in [1, K] (1 = hottest).
func (d *Zipf) Rank(rng *rand.Rand) int {
	u := rng.Float64()
	i := sort.SearchFloat64s(d.cdf, u)
	if i >= d.K {
		i = d.K - 1
	}
	return i + 1
}

// Prob returns P(rank r).
func (d *Zipf) Prob(r int) float64 {
	if r < 1 || r > d.K {
		return 0
	}
	if r == 1 {
		return d.cdf[0]
	}
	return d.cdf[r-1] - d.cdf[r-2]
}

// ExpectedCounts returns the expected number of tuples per rank when n
// tuples are drawn — the planner-facing load shape without sampling
// noise, used by the pure-algorithm experiments so results are exactly
// reproducible.
func (d *Zipf) ExpectedCounts(n int64) []int64 {
	out := make([]int64, d.K)
	var acc float64
	var emitted int64
	for r := 1; r <= d.K; r++ {
		acc += d.Prob(r) * float64(n)
		c := int64(acc) - emitted
		emitted += c
		out[r-1] = c
	}
	return out
}
