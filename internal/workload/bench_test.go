package workload

import "testing"

func BenchmarkZipfRank(b *testing.B) {
	s := NewZipfStream(100000, 0.85, 1.0, 10000, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Next()
	}
}

func BenchmarkZipfAdvance(b *testing.B) {
	s := NewZipfStream(100000, 0.85, 1.0, 100000, 1)
	asg := fixedAsg(10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Advance(asg)
	}
}

func BenchmarkExpectedCounts(b *testing.B) {
	d := NewZipf(100000, 0.85)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.ExpectedCounts(100000)
	}
}

func BenchmarkTPCHNext(b *testing.B) {
	g := NewTPCH(DefaultTPCHConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

func BenchmarkStockNext(b *testing.B) {
	s := NewStock(0, 0.85, 1)
	s.Advance()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Next()
	}
}
