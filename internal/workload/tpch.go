package workload

import (
	"math/rand"

	"repro/internal/tuple"
)

// This file is dbgen-lite: a TPC-H-shaped row generator sufficient to
// run the paper's continuous Q5 over a sliding window (§V, Fig. 16).
// The paper used DBGen with Zipf skew z = 0.8 injected on foreign keys;
// we generate the same schema relations with the same skew knob. Scale
// is expressed directly in row counts instead of the 1 GB scale factor.

// TPC-H Q5 touches region, nation, customer, supplier, orders and
// lineitem. Region/nation are tiny and static; customer and supplier
// are dimension tables; orders and lineitem are the streamed facts.

// Region names follow the spec; Q5 filters on one region.
var Regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

// NationsPerRegion is 5 in TPC-H (25 nations across 5 regions).
const NationsPerRegion = 5

// Customer is a dimension row.
type Customer struct {
	CustKey   int64
	NationKey int
}

// Supplier is a dimension row.
type Supplier struct {
	SuppKey   int64
	NationKey int
}

// Order is a streamed fact row.
type Order struct {
	OrderKey int64
	CustKey  int64
	// DateTick stands in for o_orderdate: the interval index.
	DateTick int64
}

// Lineitem is a streamed fact row.
type Lineitem struct {
	OrderKey      int64
	SuppKey       int64
	ExtendedPrice float64
	Discount      float64
}

// TPCH generates the Q5 workload: interleaved order and lineitem
// tuples keyed by orderkey (the stateful windowed-join key), with
// Zipf-skewed orderkey popularity on the lineitem side, plus in-memory
// customer/supplier dimensions for the lookup stages.
type TPCH struct {
	rng       *rand.Rand
	Customers []Customer
	Suppliers []Supplier
	// orderDist skews which orders attract lineitems (z on the FK).
	orderDist *Zipf
	custDist  *Zipf
	suppDist  *Zipf
	// LineitemsPerOrder controls the fact-stream mix.
	LineitemsPerOrder int
	nextOrderKey      int64
	tick              int64
	seq               uint64
	// liveOrders maps rank → orderkey so lineitem FKs reference real,
	// recently generated orders.
	liveOrders []int64
}

// TPCHConfig sizes the dbgen-lite run.
type TPCHConfig struct {
	Customers         int
	Suppliers         int
	OrderPool         int // number of live orders lineitems reference
	Z                 float64
	LineitemsPerOrder int
	Seed              int64
}

// DefaultTPCHConfig mirrors the paper's setup in spirit: 1 GB TPC-H is
// ~150k customers / 10k suppliers; we default to a laptop-scale pool
// with the same z = 0.8 FK skew.
func DefaultTPCHConfig() TPCHConfig {
	return TPCHConfig{Customers: 30000, Suppliers: 2000, OrderPool: 20000, Z: 0.8, LineitemsPerOrder: 4, Seed: 1}
}

// NewTPCH builds the generator and its dimension tables.
func NewTPCH(cfg TPCHConfig) *TPCH {
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &TPCH{
		rng:               rng,
		orderDist:         NewZipf(cfg.OrderPool, cfg.Z),
		custDist:          NewZipf(cfg.Customers, cfg.Z),
		suppDist:          NewZipf(cfg.Suppliers, cfg.Z),
		LineitemsPerOrder: cfg.LineitemsPerOrder,
		liveOrders:        make([]int64, cfg.OrderPool),
	}
	for i := 0; i < cfg.Customers; i++ {
		t.Customers = append(t.Customers, Customer{CustKey: int64(i + 1), NationKey: rng.Intn(len(Regions) * NationsPerRegion)})
	}
	for i := 0; i < cfg.Suppliers; i++ {
		t.Suppliers = append(t.Suppliers, Supplier{SuppKey: int64(i + 1), NationKey: rng.Intn(len(Regions) * NationsPerRegion)})
	}
	for i := range t.liveOrders {
		t.liveOrders[i] = t.newOrderKey()
	}
	return t
}

func (t *TPCH) newOrderKey() int64 {
	t.nextOrderKey++
	return t.nextOrderKey
}

// NationOfCust resolves a customer's nation (the c ⋈ n lookup).
func (t *TPCH) NationOfCust(custKey int64) int {
	return t.Customers[(custKey-1)%int64(len(t.Customers))].NationKey
}

// NationOfSupp resolves a supplier's nation (the s ⋈ n lookup).
func (t *TPCH) NationOfSupp(suppKey int64) int {
	return t.Suppliers[(suppKey-1)%int64(len(t.Suppliers))].NationKey
}

// RegionOfNation resolves n_regionkey.
func RegionOfNation(nationKey int) int { return nationKey / NationsPerRegion }

// Advance moves the logical clock and recycles a slice of the order
// pool, shifting which orderkeys are hot — the distribution change the
// Fig. 16 experiment triggers every 15 minutes with f = 1.
func (t *TPCH) Advance() {
	t.tick++
	// Recycle the hottest tenth of the pool so the hot join keys move.
	n := len(t.liveOrders) / 10
	for i := 0; i < n; i++ {
		t.liveOrders[t.rng.Intn(len(t.liveOrders))] = t.newOrderKey()
	}
	// Reshuffle rank→order mapping: abrupt change in FK popularity.
	t.rng.Shuffle(len(t.liveOrders), func(i, j int) {
		t.liveOrders[i], t.liveOrders[j] = t.liveOrders[j], t.liveOrders[i]
	})
}

// Next emits the next fact tuple: one order tuple followed by
// LineitemsPerOrder lineitem tuples per cycle, all keyed by orderkey so
// the windowed join partitions on the skewed FK. Lineitem tuples carry
// heavier state (they are wider rows buffered in the join window).
func (t *TPCH) Next() tuple.Tuple {
	t.seq++
	cycle := int(t.seq % uint64(1+t.LineitemsPerOrder))
	if cycle == 0 {
		rank := t.orderDist.Rank(t.rng)
		ok := t.liveOrders[rank-1]
		o := Order{OrderKey: ok, CustKey: int64(t.custDist.Rank(t.rng)), DateTick: t.tick}
		tp := tuple.New(tuple.Key(ok), o)
		tp.Stream = "O"
		tp.Seq = t.seq
		return tp
	}
	rank := t.orderDist.Rank(t.rng)
	ok := t.liveOrders[rank-1]
	li := Lineitem{
		OrderKey:      ok,
		SuppKey:       int64(t.suppDist.Rank(t.rng)),
		ExtendedPrice: 100 + t.rng.Float64()*900,
		Discount:      t.rng.Float64() * 0.1,
	}
	tp := tuple.New(tuple.Key(ok), li)
	tp.Stream = "L"
	tp.Seq = t.seq
	tp.StateSize = 2 // lineitems are wider than orders in the window
	return tp
}

// NextBatch fills dst with the next len(dst) fact tuples, identical in
// sequence to successive Next calls. Always returns len(dst).
func (t *TPCH) NextBatch(dst []tuple.Tuple) int { return batchDraw(dst, t.Next) }
