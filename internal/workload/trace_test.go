package workload

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/tuple"
)

func TestReadTraceFull(t *testing.T) {
	in := "42,3,2,R\n7,1,1,S\nAAPL,5,4,T\n"
	tr, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	a, ok := tr.Next()
	if !ok || a.Key != 42 || a.Cost != 3 || a.StateSize != 2 || a.Stream != "R" {
		t.Fatalf("first tuple = %+v", a)
	}
	_, _ = tr.Next()
	c, _ := tr.Next()
	if c.Key != tuple.KeyOf("AAPL") {
		t.Fatal("string key not hashed")
	}
	if _, ok := tr.Next(); ok {
		t.Fatal("exhausted trace returned a tuple")
	}
}

func TestReadTraceDefaults(t *testing.T) {
	tr, err := ReadTrace(strings.NewReader("5\n"))
	if err != nil {
		t.Fatal(err)
	}
	tp, _ := tr.Next()
	if tp.Cost != 1 || tp.StateSize != 1 || tp.Stream != "" {
		t.Fatalf("defaults = %+v", tp)
	}
}

func TestReadTraceErrors(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("")); err == nil {
		t.Fatal("empty trace accepted")
	}
	if _, err := ReadTrace(strings.NewReader("1,notanumber\n")); err == nil {
		t.Fatal("bad cost accepted")
	}
	if _, err := ReadTrace(strings.NewReader("1,1,-5\n")); err == nil {
		t.Fatal("negative state accepted")
	}
}

func TestTraceLoop(t *testing.T) {
	tr, err := ReadTrace(strings.NewReader("1\n2\n"))
	if err != nil {
		t.Fatal(err)
	}
	tr.Loop = true
	seen := []tuple.Key{}
	for i := 0; i < 5; i++ {
		tp, ok := tr.Next()
		if !ok {
			t.Fatal("looping trace ended")
		}
		seen = append(seen, tp.Key)
	}
	want := []tuple.Key{1, 2, 1, 2, 1}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("loop order %v, want %v", seen, want)
		}
	}
	// Sequence numbers stay monotone across the loop.
	tp, _ := tr.Next()
	if tp.Seq != 6 {
		t.Fatalf("Seq = %d, want 6", tp.Seq)
	}
}

func TestTraceSpoutNeverEnds(t *testing.T) {
	tr, err := ReadTrace(strings.NewReader("9\n"))
	if err != nil {
		t.Fatal(err)
	}
	spout := tr.Spout()
	for i := 0; i < 10; i++ {
		if spout().Key != 9 {
			t.Fatal("spout returned wrong tuple")
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	in := []tuple.Tuple{
		tuple.New(1, nil).WithCost(2).WithState(3),
		tuple.New(99, nil),
	}
	in[0].Stream = "X"
	var buf bytes.Buffer
	if err := WriteTrace(&buf, in); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := tr.Next()
	b, _ := tr.Next()
	if a.Key != 1 || a.Cost != 2 || a.StateSize != 3 || a.Stream != "X" {
		t.Fatalf("round trip lost fields: %+v", a)
	}
	if b.Key != 99 || b.Cost != 1 {
		t.Fatalf("second tuple: %+v", b)
	}
}
