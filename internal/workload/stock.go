package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/tuple"
)

// Stock models the paper's second real workload: 3 days of exchange
// records, >6M tuples over 1,036 stock IDs, with "abrupt and unexpected
// bursts on certain keys". A base Zipf tape is overlaid with burst
// events: at each interval boundary, with BurstProb per interval, a
// random symbol outside the top ranks multiplies its frequency by
// BurstFactor for a burst lasting 1–3 intervals.
type Stock struct {
	dist *Zipf
	rng  *rand.Rand
	perm []tuple.Key
	// BurstProb is the probability a new burst starts at an interval
	// boundary; BurstFactor scales a bursting symbol's draw weight.
	BurstProb   float64
	BurstFactor float64
	// bursts maps key → remaining burst intervals.
	bursts map[tuple.Key]int
	// burstKeys caches the bursting keys for the weighted sampler.
	seq uint64
}

// StockKeys is the symbol count from the paper.
const StockKeys = 1036

// NewStock builds the stock tape. keys ≤ 0 selects the paper's 1,036.
func NewStock(keys int, z float64, seed int64) *Stock {
	if keys <= 0 {
		keys = StockKeys
	}
	rng := rand.New(rand.NewSource(seed))
	s := &Stock{
		dist:        NewZipf(keys, z),
		rng:         rng,
		perm:        make([]tuple.Key, keys),
		BurstProb:   0.6,
		BurstFactor: 40,
		bursts:      make(map[tuple.Key]int),
	}
	for i := range s.perm {
		s.perm[i] = tuple.Key(i)
	}
	rng.Shuffle(keys, func(i, j int) { s.perm[i], s.perm[j] = s.perm[j], s.perm[i] })
	return s
}

// K returns the symbol count.
func (s *Stock) K() int { return s.dist.K }

// Next draws one trade. Bursting symbols intercept a share of draws
// proportional to their boosted weight; Value carries a synthetic
// (symbol, volume) payload for the self-join example. Trades carry a
// state footprint of 1 so the sliding-window join state grows with
// trade frequency.
func (s *Stock) Next() tuple.Tuple {
	var k tuple.Key
	// With probability proportional to the boost mass, emit a bursting
	// symbol; otherwise draw from the base tape.
	if len(s.bursts) > 0 && s.rng.Float64() < s.burstShare() {
		i := s.rng.Intn(len(s.bursts))
		for bk := range s.bursts {
			if i == 0 {
				k = bk
				break
			}
			i--
		}
	} else {
		k = s.perm[s.dist.Rank(s.rng)-1]
	}
	s.seq++
	t := tuple.New(k, fmt.Sprintf("trade-%d", s.seq))
	t.Seq = s.seq
	t.Stream = "T"
	return t
}

// NextBatch fills dst with the next len(dst) trades, identical in
// sequence to successive Next calls. Always returns len(dst).
func (s *Stock) NextBatch(dst []tuple.Tuple) int { return batchDraw(dst, s.Next) }

// burstShare approximates the fraction of the tape the active bursts
// occupy: each burst contributes BurstFactor times a mid-rank weight.
func (s *Stock) burstShare() float64 {
	per := s.BurstFactor * s.dist.Prob(s.dist.K/4+1)
	share := per * float64(len(s.bursts))
	if share > 0.5 {
		share = 0.5
	}
	return share
}

// Advance rolls burst lifetimes and possibly ignites a new burst — the
// "abrupt and unexpected" regime.
func (s *Stock) Advance() {
	for k, left := range s.bursts {
		if left <= 1 {
			delete(s.bursts, k)
		} else {
			s.bursts[k] = left - 1
		}
	}
	if s.rng.Float64() < s.BurstProb {
		// Pick a symbol outside the top 10% so the burst really shifts load.
		r := s.dist.K/10 + s.rng.Intn(s.dist.K-s.dist.K/10)
		s.bursts[s.perm[r]] = 1 + s.rng.Intn(3)
	}
}

// ActiveBursts returns the currently bursting symbols (for tests).
func (s *Stock) ActiveBursts() int { return len(s.bursts) }

// ExpectedLoad returns expected per-key costs for an interval of n
// tuples, including burst boosts.
func (s *Stock) ExpectedLoad(n int64) map[tuple.Key]int64 {
	share := s.burstShare()
	base := s.dist.ExpectedCounts(int64(float64(n) * (1 - share)))
	out := make(map[tuple.Key]int64, s.dist.K)
	for r, c := range base {
		if c > 0 {
			out[s.perm[r]] = c
		}
	}
	if len(s.bursts) > 0 {
		per := int64(share * float64(n) / float64(len(s.bursts)))
		for k := range s.bursts {
			out[k] += per
		}
	}
	return out
}
