// Package pkgpart reimplements PKG — Partial Key Grouping (Nasir et
// al., "The power of both choices: Practical load balancing for
// distributed stream processing engines", ICDE 2015) — the split-key
// baseline of the reproduced paper's evaluation.
//
// PKG gives every key two candidate instances via two independent hash
// functions and routes each tuple to whichever candidate the source
// currently estimates as less loaded. Splitting keys balances load
// without migration, but the semantics of key-based stateful operations
// now require a downstream *merge* operator that combines the two
// partial states per key every p milliseconds (Fig. 2 of the paper);
// the merge overhead is what costs PKG throughput in Fig. 14.
package pkgpart

import (
	"repro/internal/tuple"
)

// Router implements the two-choices routing decision. One Router lives
// in each upstream task; the load vector is the sender's local estimate
// (tuple counts), exactly as in the published algorithm — senders do
// not coordinate.
type Router struct {
	nd    int
	loads []int64
	seedA uint64
	seedB uint64
}

// NewRouter creates a PKG router over nd downstream instances.
func NewRouter(nd int) *Router {
	return &Router{nd: nd, loads: make([]int64, nd), seedA: 0x9e3779b97f4a7c15, seedB: 0xc2b2ae3d27d4eb4f}
}

// Instances returns the downstream instance count.
func (r *Router) Instances() int { return r.nd }

// Candidates returns the key's two candidate instances d1, d2.
func (r *Router) Candidates(k tuple.Key) (int, int) {
	h1 := mix(uint64(k) ^ r.seedA)
	h2 := mix(uint64(k) ^ r.seedB)
	d1 := int(h1 % uint64(r.nd))
	d2 := int(h2 % uint64(r.nd))
	if d1 == d2 && r.nd > 1 {
		// Degenerate collision: derive the second choice by offset so
		// every key always has two distinct candidates.
		d2 = (d1 + 1 + int((h2>>32)%uint64(r.nd-1))) % r.nd
	}
	return d1, d2
}

// Route picks the less-loaded candidate for the tuple's key, charges the
// tuple's cost to it and returns it.
func (r *Router) Route(t tuple.Tuple) int {
	d1, d2 := r.Candidates(t.Key)
	d := d1
	if r.loads[d2] < r.loads[d1] {
		d = d2
	}
	r.loads[d] += t.Cost
	return d
}

// Loads exposes the sender-local load estimates (for tests).
func (r *Router) Loads() []int64 { return r.loads }

// Reset clears the local load estimates (e.g. at interval boundaries so
// stale history does not dominate the two-choices decision).
func (r *Router) Reset() {
	for i := range r.loads {
		r.loads[i] = 0
	}
}

func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Merger models PKG's downstream partial-result combiner for key-based
// aggregations: each upstream partial (key, value) pair lands in one of
// the key's two slots; Flush combines and emits totals every period.
// The merge work per flush is proportional to the number of live keys,
// which is the extra computation the paper charges PKG for.
type Merger struct {
	partial map[tuple.Key]int64
	// FlushedKeys counts key-merges performed, a proxy for merge cost.
	FlushedKeys int64
	flushed     map[tuple.Key]int64
}

// NewMerger returns an empty merger.
func NewMerger() *Merger {
	return &Merger{partial: make(map[tuple.Key]int64), flushed: make(map[tuple.Key]int64)}
}

// Add accumulates a partial count for key k.
func (m *Merger) Add(k tuple.Key, v int64) {
	m.partial[k] += v
}

// Flush merges all pending partials into the global result and returns
// the number of keys merged this period.
func (m *Merger) Flush() int {
	n := len(m.partial)
	for k, v := range m.partial {
		m.flushed[k] += v
		m.FlushedKeys++
		delete(m.partial, k)
	}
	return n
}

// Result returns the merged total for key k.
func (m *Merger) Result(k tuple.Key) int64 { return m.flushed[k] }

// Pending returns the number of keys awaiting a merge.
func (m *Merger) Pending() int { return len(m.partial) }
