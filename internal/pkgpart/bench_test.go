package pkgpart

import (
	"testing"

	"repro/internal/tuple"
)

func BenchmarkRoute(b *testing.B) {
	r := NewRouter(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Route(tuple.New(tuple.Key(i%1000), nil))
	}
}

func BenchmarkMergerFlush(b *testing.B) {
	m := NewMerger()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 100; k++ {
			m.Add(tuple.Key(k), 1)
		}
		m.Flush()
	}
}
