package pkgpart

import (
	"testing"
	"testing/quick"

	"repro/internal/tuple"
)

func TestCandidatesDistinctAndStable(t *testing.T) {
	r := NewRouter(10)
	f := func(k uint64) bool {
		d1, d2 := r.Candidates(tuple.Key(k))
		e1, e2 := r.Candidates(tuple.Key(k))
		return d1 == e1 && d2 == e2 && d1 != d2 &&
			d1 >= 0 && d1 < 10 && d2 >= 0 && d2 < 10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestRouteOnlyToCandidates(t *testing.T) {
	r := NewRouter(8)
	for k := tuple.Key(0); k < 2000; k++ {
		d1, d2 := r.Candidates(k)
		d := r.Route(tuple.New(k, nil))
		if d != d1 && d != d2 {
			t.Fatalf("key %d routed to %d, candidates %d/%d", k, d, d1, d2)
		}
	}
}

func TestTwoChoicesBalancesHotKey(t *testing.T) {
	// One pathological key hammered 10000 times: PKG splits it across
	// its two candidates roughly evenly — the behaviour key grouping
	// cannot offer.
	r := NewRouter(4)
	hot := tuple.Key(7)
	for i := 0; i < 10000; i++ {
		r.Route(tuple.New(hot, nil))
	}
	d1, d2 := r.Candidates(hot)
	l1, l2 := r.Loads()[d1], r.Loads()[d2]
	if l1+l2 != 10000 {
		t.Fatalf("hot key load %d+%d, want 10000 total", l1, l2)
	}
	diff := l1 - l2
	if diff < 0 {
		diff = -diff
	}
	if diff > 1 {
		t.Fatalf("two-choices split %d/%d; should alternate", l1, l2)
	}
}

func TestTwoChoicesBalancesSkewedStream(t *testing.T) {
	// Zipf-ish synthetic stream: the max/avg load ratio under PKG must
	// stay near 1 (the ICDE'15 result our baseline must reproduce).
	r := NewRouter(5)
	for i := 0; i < 50000; i++ {
		k := tuple.Key(i % 100)
		if i%3 != 0 {
			k = tuple.Key(i % 7) // heavy head
		}
		r.Route(tuple.New(k, nil))
	}
	var max, sum int64
	for _, l := range r.Loads() {
		if l > max {
			max = l
		}
		sum += l
	}
	avg := float64(sum) / 5
	if float64(max)/avg > 1.1 {
		t.Fatalf("PKG skew %v, want ≤ 1.1", float64(max)/avg)
	}
}

func TestRouterReset(t *testing.T) {
	r := NewRouter(3)
	r.Route(tuple.New(1, nil))
	r.Reset()
	for _, l := range r.Loads() {
		if l != 0 {
			t.Fatal("Reset did not clear loads")
		}
	}
}

func TestSingleInstanceRouter(t *testing.T) {
	r := NewRouter(1)
	for k := tuple.Key(0); k < 50; k++ {
		if d := r.Route(tuple.New(k, nil)); d != 0 {
			t.Fatalf("nd=1 routed to %d", d)
		}
	}
}

func TestMergerCombinesPartials(t *testing.T) {
	m := NewMerger()
	m.Add(1, 5)
	m.Add(1, 7)
	m.Add(2, 3)
	if m.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", m.Pending())
	}
	if n := m.Flush(); n != 2 {
		t.Fatalf("Flush merged %d keys, want 2", n)
	}
	if m.Result(1) != 12 || m.Result(2) != 3 {
		t.Fatalf("Results = %d/%d, want 12/3", m.Result(1), m.Result(2))
	}
	if m.Pending() != 0 {
		t.Fatal("Flush left pending partials")
	}
	// Second period accumulates on top.
	m.Add(1, 1)
	m.Flush()
	if m.Result(1) != 13 {
		t.Fatalf("Result after second flush = %d, want 13", m.Result(1))
	}
	if m.FlushedKeys != 3 {
		t.Fatalf("FlushedKeys = %d, want 3", m.FlushedKeys)
	}
}
