package metrics

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRecorderMeans(t *testing.T) {
	r := &Recorder{}
	r.Add(Interval{Throughput: 100, LatencyMs: 10, Skewness: 1.2})
	r.Add(Interval{Throughput: 200, LatencyMs: 20, Skewness: 1.4})
	if got := r.MeanThroughput(); got != 150 {
		t.Fatalf("MeanThroughput = %v", got)
	}
	if got := r.MeanLatency(); got != 15 {
		t.Fatalf("MeanLatency = %v", got)
	}
	if got := r.MeanSkewness(); got < 1.299 || got > 1.301 {
		t.Fatalf("MeanSkewness = %v", got)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestRecorderEmptyMeansZero(t *testing.T) {
	r := &Recorder{}
	if r.MeanThroughput() != 0 || r.MeanLatency() != 0 || r.MeanPlanMs() != 0 {
		t.Fatal("empty recorder means not zero")
	}
}

func TestRebalanceOnlyAverages(t *testing.T) {
	r := &Recorder{}
	r.Add(Interval{MigrationPct: 10, PlanMs: 4, Rebalanced: true})
	r.Add(Interval{MigrationPct: 0, PlanMs: 0, Rebalanced: false})
	r.Add(Interval{MigrationPct: 20, PlanMs: 8, Rebalanced: true})
	if got := r.MeanMigrationPct(); got != 15 {
		t.Fatalf("MeanMigrationPct = %v, want 15 (over rebalanced intervals only)", got)
	}
	if got := r.MeanPlanMs(); got != 6 {
		t.Fatalf("MeanPlanMs = %v, want 6", got)
	}
}

func TestRecoveryIntervals(t *testing.T) {
	r := &Recorder{}
	for _, thr := range []float64{100, 40, 60, 95, 100} {
		r.Add(Interval{Throughput: thr})
	}
	if got := r.RecoveryIntervals(1, 100, 0.9); got != 2 {
		t.Fatalf("RecoveryIntervals = %d, want 2 (95 ≥ 90 at index 3)", got)
	}
	if got := r.RecoveryIntervals(1, 1000, 0.9); got != -1 {
		t.Fatalf("unreachable target returned %d, want -1", got)
	}
}

func TestCDF(t *testing.T) {
	sample := []float64{1, 2, 3, 4, 5}
	got := CDF(sample, []float64{20, 60, 100})
	want := []float64{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CDF = %v, want %v", got, want)
		}
	}
	if out := CDF(nil, []float64{50}); out[0] != 0 {
		t.Fatal("empty-sample CDF not zero")
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		out := CDF(xs, []float64{25, 50, 75, 100})
		for i := 1; i < len(out); i++ {
			if out[i] < out[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTableAlignment(t *testing.T) {
	s := Table([]string{"a", "long-header"}, [][]string{{"xxxx", "1"}})
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("table has %d lines, want 3", len(lines))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Fatalf("separator not aligned with header: %q vs %q", lines[0], lines[1])
	}
	if !strings.Contains(lines[2], "xxxx") {
		t.Fatal("row content missing")
	}
}

func TestF(t *testing.T) {
	cases := map[float64]string{0: "0", 12345: "12345", 42.42: "42.4", 1.23456: "1.235"}
	for in, want := range cases {
		if got := F(in); got != want {
			t.Fatalf("F(%v) = %q, want %q", in, got, want)
		}
	}
}
