package metrics

import (
	"testing"
	"time"
)

func TestLatencyHistQuantiles(t *testing.T) {
	var h LatencyHist
	if h.Quantile(0.99) != 0 || h.QuantileUs(0.5) != 0 {
		t.Fatal("empty histogram must report zero quantiles")
	}
	// 99 samples near 1µs, one near 1ms: p50 sits in the 1µs bucket,
	// p99 still does, p100 lands in the outlier's bucket.
	for i := 0; i < 99; i++ {
		h.Observe(time.Microsecond)
	}
	h.Observe(time.Millisecond)
	if h.Count() != 100 {
		t.Fatalf("Count = %d, want 100", h.Count())
	}
	// A log2 bucket is exact to within √2 of its geometric midpoint.
	within := func(got, want time.Duration) bool {
		lo := float64(want) / 1.5
		hi := float64(want) * 1.5
		return float64(got) >= lo && float64(got) <= hi
	}
	if q := h.Quantile(0.50); !within(q, time.Microsecond) {
		t.Fatalf("p50 = %v, want ~1µs", q)
	}
	if q := h.Quantile(0.99); !within(q, time.Microsecond) {
		t.Fatalf("p99 = %v, want ~1µs (the outlier is the 100th sample)", q)
	}
	if q := h.Quantile(1.0); !within(q, time.Millisecond) {
		t.Fatalf("p100 = %v, want ~1ms", q)
	}
	if us := h.QuantileUs(0.50); us < 0.6 || us > 1.6 {
		t.Fatalf("QuantileUs(0.5) = %v, want ~1", us)
	}
}

func TestLatencyHistMergeReset(t *testing.T) {
	var a, b LatencyHist
	for i := 0; i < 10; i++ {
		a.Observe(time.Microsecond)
		b.Observe(time.Millisecond)
	}
	a.Merge(&b)
	if a.Count() != 20 {
		t.Fatalf("merged Count = %d, want 20", a.Count())
	}
	// Half the mass is at ~1ms, so p75 must sit in the millisecond
	// bucket while p50 stays at the microsecond one.
	if p50, p75 := a.Quantile(0.50), a.Quantile(0.75); p75 < 100*p50 {
		t.Fatalf("p50 = %v, p75 = %v: merge lost the millisecond mass", p50, p75)
	}
	a.Reset()
	if a.Count() != 0 || a.Quantile(0.99) != 0 {
		t.Fatal("Reset did not clear the histogram")
	}
}
