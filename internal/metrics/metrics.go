// Package metrics defines the evaluation measurements of §V — workload
// skewness, migration cost, throughput, plan-generation time, and
// processing latency — plus a recorder for per-interval series (the
// time-axis figures) and aggregate summaries (the bar-chart figures).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Interval is one logical interval's measurements for one stage.
type Interval struct {
	Index int64
	// Throughput is processed tuples per simulated second.
	Throughput float64
	// LatencyMs is the arrival-weighted mean processing latency.
	LatencyMs float64
	// Skewness is max L(d) / L̄ of the interval's arrived load.
	Skewness float64
	// MaxTheta is max_d |L(d)−L̄|/L̄.
	MaxTheta float64
	// MigrationPct is this interval's migrated state as a percentage of
	// total live state (zero when no rebalance ran).
	MigrationPct float64
	// PlanMs is the rebalance plan generation time, if one ran.
	PlanMs float64
	// TableSize is the routing-table size after any rebalance.
	TableSize int
	// Emitted is the number of tuples the spout emitted (post-throttle).
	Emitted int64
	// Rebalanced marks intervals where a migration plan was applied.
	Rebalanced bool
	// ScaleOuts and ScaleIns count elastic resize events applied at
	// this interval's end (instances added / retired live by the
	// control plane's ScaleOut and ScaleIn commands). Like every
	// Interval field they describe the engine's target stage; resizes
	// of other stages are recorded in their policies' histories.
	ScaleOuts int
	ScaleIns  int
	// FeedP50Us / FeedP99Us are the median and 99th-percentile
	// wall-clock feed-call latencies of this interval's emission, in
	// microseconds — the measured (not modeled) cost of routing one
	// chunk into the first stage. Recorded only when the engine's
	// feed-latency histogram is enabled (engine.Config.FeedLatency);
	// zero otherwise. A migration that stalls feeders (the pausing
	// oracle's drain) shows up here as a p99 cliff; the pause-free
	// protocol's claim is precisely that it does not.
	FeedP50Us float64
	FeedP99Us float64
}

// Recorder accumulates a per-interval series.
type Recorder struct {
	Series []Interval
}

// Add appends one interval.
func (r *Recorder) Add(m Interval) { r.Series = append(r.Series, m) }

// Len returns the number of recorded intervals.
func (r *Recorder) Len() int { return len(r.Series) }

// MeanThroughput averages throughput over all intervals.
func (r *Recorder) MeanThroughput() float64 {
	return r.mean(func(m Interval) float64 { return m.Throughput })
}

// MeanLatency averages latency over all intervals.
func (r *Recorder) MeanLatency() float64 {
	return r.mean(func(m Interval) float64 { return m.LatencyMs })
}

// MeanSkewness averages the skewness metric.
func (r *Recorder) MeanSkewness() float64 {
	return r.mean(func(m Interval) float64 { return m.Skewness })
}

// MeanMigrationPct averages migration cost over the intervals where a
// rebalance actually ran (the paper reports cost per adjustment).
func (r *Recorder) MeanMigrationPct() float64 {
	var s float64
	var n int
	for _, m := range r.Series {
		if m.Rebalanced {
			s += m.MigrationPct
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// MeanPlanMs averages plan-generation time over rebalance intervals.
func (r *Recorder) MeanPlanMs() float64 {
	var s float64
	var n int
	for _, m := range r.Series {
		if m.Rebalanced {
			s += m.PlanMs
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// RecoveryIntervals returns how many intervals after `from` it took for
// throughput to reach frac·target — the Fig. 15 "time to rebalance
// after scale-out" measure. Returns -1 if never reached.
func (r *Recorder) RecoveryIntervals(from int, target, frac float64) int {
	for i := from; i < len(r.Series); i++ {
		if r.Series[i].Throughput >= frac*target {
			return i - from
		}
	}
	return -1
}

func (r *Recorder) mean(f func(Interval) float64) float64 {
	if len(r.Series) == 0 {
		return 0
	}
	var s float64
	for _, m := range r.Series {
		s += f(m)
	}
	return s / float64(len(r.Series))
}

// CDF computes the cumulative distribution of a sample at the given
// percentiles (0–100], e.g. Fig. 7's skewness percentile curves.
func CDF(sample []float64, percentiles []float64) []float64 {
	if len(sample) == 0 {
		return make([]float64, len(percentiles))
	}
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	out := make([]float64, len(percentiles))
	for i, p := range percentiles {
		idx := int(math.Ceil(p/100*float64(len(s)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(s) {
			idx = len(s) - 1
		}
		out[i] = s[idx]
	}
	return out
}

// Table renders an aligned text table; the bench harness uses it to
// print figure series the way the paper's plots read.
func Table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

// F formats a float compactly for table cells.
func F(x float64) string {
	switch {
	case x == 0:
		return "0"
	case math.Abs(x) >= 1000:
		return fmt.Sprintf("%.0f", x)
	case math.Abs(x) >= 10:
		return fmt.Sprintf("%.1f", x)
	default:
		return fmt.Sprintf("%.3f", x)
	}
}
