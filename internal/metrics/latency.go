package metrics

import (
	"math"
	"math/bits"
	"time"
)

// LatencyHist is a fixed-size log2-bucketed latency histogram: bucket
// b counts observations in [2^(b−1), 2^b) nanoseconds. Sixty-four
// buckets cover every representable duration, Observe is two adds and
// a bit-scan (cheap enough to sit on the feed hot path), and the
// zero value is ready to use. Not safe for concurrent observers; the
// engine keeps one per feeder goroutine and merges at interval end.
type LatencyHist struct {
	n       uint64
	buckets [64]uint64
}

// Observe records one latency sample.
func (h *LatencyHist) Observe(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	h.buckets[bits.Len64(ns)&63]++
	h.n++
}

// Merge folds o's samples into h.
func (h *LatencyHist) Merge(o *LatencyHist) {
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	h.n += o.n
}

// Count returns the number of recorded samples.
func (h *LatencyHist) Count() uint64 { return h.n }

// Reset clears the histogram for reuse.
func (h *LatencyHist) Reset() { *h = LatencyHist{} }

// Quantile returns the q-quantile (0 < q ≤ 1) as a duration, taking
// the geometric midpoint of the containing bucket — the usual estimator
// for log-spaced buckets, exact to within a factor of √2. Returns 0 on
// an empty histogram.
func (h *LatencyHist) Quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for b, c := range h.buckets {
		cum += c
		if cum >= rank {
			if b == 0 {
				return 0
			}
			// Bucket b spans [2^(b−1), 2^b); geometric midpoint
			// 2^(b−0.5) = 2^(b−1)·√2.
			return time.Duration(float64(uint64(1)<<(b-1)) * math.Sqrt2)
		}
	}
	return 0
}

// QuantileUs is Quantile in (fractional) microseconds, the unit the
// Interval series reports.
func (h *LatencyHist) QuantileUs(q float64) float64 {
	return float64(h.Quantile(q).Nanoseconds()) / 1e3
}
