package stats

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/tuple"
)

// The merge-path retained close must stay bit-identical to the
// full-rescan oracle under any interleaving of observation, absorb,
// drop (retire) and adopt — the tracker-level half of the incremental
// ≡ full pin.
func TestRetainedScanMergeEquivalence(t *testing.T) {
	scan := NewTracker(3)
	merge := NewTracker(3)
	if err := scan.SetRetain(RetainScan); err != nil {
		t.Fatal(err)
	}
	if err := merge.SetRetain(RetainMerge); err != nil {
		t.Fatal(err)
	}
	stamp := func(ks *KeyStat) { ks.Hash = int(ks.Key) % 7 }
	rng := rand.New(rand.NewSource(23))
	live := map[tuple.Key]bool{}
	for interval := 0; interval < 40; interval++ {
		ops := 50 + rng.Intn(200)
		for i := 0; i < ops; i++ {
			k := tuple.Key(rng.Intn(300))
			switch rng.Intn(10) {
			case 0: // migrate away: drop state and stats
				scan.DropKey(k)
				merge.DropKey(k)
				delete(live, k)
			case 1: // migrate in: adopt windowed memory
				m := int64(1 + rng.Intn(50))
				scan.AdoptKey(k, m)
				merge.AdoptKey(k, m)
				live[k] = true
			case 2: // split fold-back: absorb replica aggregate
				c, f, m := int64(rng.Intn(20)), int64(rng.Intn(5)), int64(rng.Intn(30))
				scan.AbsorbKey(k, c, f, m)
				merge.AbsorbKey(k, c, f, m)
				if c != 0 || f != 0 || m != 0 {
					live[k] = true
				}
			default:
				cost, mem := int64(1+rng.Intn(9)), int64(rng.Intn(16))
				scan.ObserveKey(k, cost, mem)
				merge.ObserveKey(k, cost, mem)
				live[k] = true
			}
		}
		sRun, sD := scan.EndIntervalRetained(stamp)
		mRun, mD := merge.EndIntervalRetained(stamp)
		if !reflect.DeepEqual(sD, mD) {
			t.Fatalf("interval %d: deltas diverge\nscan:  %+v\nmerge: %+v", interval, sD, mD)
		}
		if len(sRun) != len(mRun) {
			t.Fatalf("interval %d: run lengths %d vs %d", interval, len(sRun), len(mRun))
		}
		for i := range sRun {
			if sRun[i] != mRun[i] {
				t.Fatalf("interval %d: run[%d] scan %+v merge %+v", interval, i, sRun[i], mRun[i])
			}
		}
		// The retained run covers exactly the live population.
		if len(sRun) < len(live) {
			t.Fatalf("interval %d: run %d entries, %d live keys", interval, len(sRun), len(live))
		}
	}
}

// Untouched keys carry forward with the statistics of their last
// change; retired keys leave the run and appear once in the delta.
func TestRetainedCarryForwardAndRetire(t *testing.T) {
	tr := NewTracker(2)
	if err := tr.SetRetain(RetainMerge); err != nil {
		t.Fatal(err)
	}
	tr.ObserveKey(1, 10, 4)
	tr.ObserveKey(2, 20, 8)
	run, d := tr.EndIntervalRetained(nil)
	if len(run) != 2 || d.Epoch != 2 || len(d.Changed) != 2 || d.Retired != nil {
		t.Fatalf("close 1: run=%v delta=%+v", run, d)
	}
	// Interval 2: only key 1 touched; key 2 must carry forward.
	tr.ObserveKey(1, 5, 0)
	run, d = tr.EndIntervalRetained(nil)
	if len(run) != 2 {
		t.Fatalf("close 2: run %v", run)
	}
	if run[0].Key != 2 || run[0].Cost != 20 {
		t.Fatalf("close 2: carried entry %+v, want key 2 cost 20", run[0])
	}
	if run[1].Key != 1 || run[1].Cost != 5 || run[1].Mem != 4 {
		// windowed mem for key 1: interval-1 slot 4 + interval-2 slot 0
		t.Fatalf("close 2: changed entry %+v", run[1])
	}
	if len(d.Changed) != 1 || d.Changed[0].Key != 1 || d.Retired != nil {
		t.Fatalf("close 2: delta %+v", d)
	}
	// Interval 3: key 2 migrates away; nothing else happens.
	tr.DropKey(2)
	run, d = tr.EndIntervalRetained(nil)
	if len(run) != 1 || run[0].Key != 1 {
		t.Fatalf("close 3: run %v", run)
	}
	if len(d.Changed) != 0 || len(d.Retired) != 1 || d.Retired[0] != 2 {
		t.Fatalf("close 3: delta %+v", d)
	}
	// A drop followed by re-observation in the same interval is a
	// change, not a retirement.
	tr.DropKey(1)
	tr.ObserveKey(1, 7, 0)
	run, d = tr.EndIntervalRetained(nil)
	if len(run) != 1 || run[0].Cost != 7 {
		t.Fatalf("close 4: run %v", run)
	}
	if len(d.Changed) != 1 || d.Retired != nil {
		t.Fatalf("close 4: delta %+v", d)
	}
}

// An adopted key must surface in the adopter's next retained close
// (zero cost, migrated windowed memory) so the population mirrors
// stay coherent across a migration.
func TestRetainedAdoptSurfacesKey(t *testing.T) {
	tr := NewTracker(2)
	if err := tr.SetRetain(RetainMerge); err != nil {
		t.Fatal(err)
	}
	tr.ObserveKey(1, 1, 0)
	tr.EndIntervalRetained(nil) // finished > 0 so AdoptKey takes the hist path
	tr.AdoptKey(9, 42)
	run, d := tr.EndIntervalRetained(nil)
	found := false
	for _, ks := range run {
		if ks.Key == 9 {
			found = true
			if ks.Cost != 0 || ks.Mem != 42 {
				t.Fatalf("adopted key entry %+v, want cost 0 mem 42", ks)
			}
		}
	}
	if !found {
		t.Fatalf("adopted key missing from retained run %v", run)
	}
	if len(d.Changed) != 1 || d.Changed[0].Key != 9 {
		t.Fatalf("delta %+v, want adopted key changed", d)
	}
}

// Pinned: TopK never surfaces zero-cost cells — an adopted or retired
// key carries no load evidence, and reporting it would let delta
// retirement resurrect dead keys in the hot-key detector's input.
func TestTopKSkipsZeroCostCells(t *testing.T) {
	tr := NewTracker(2)
	if err := tr.SetRetain(RetainMerge); err != nil {
		t.Fatal(err)
	}
	tr.ObserveKey(1, 1, 0)
	tr.EndIntervalRetained(nil)
	tr.AdoptKey(9, 42) // zero-cost touch in the new interval
	tr.ObserveKey(2, 5, 0)
	top := tr.TopK(10)
	if len(top) != 1 || top[0].Key != 2 {
		t.Fatalf("TopK = %v, want only key 2 (adopted key 9 is zero-cost)", top)
	}
	// Same contract without retain: a state-only observation is
	// reported by EndInterval but is not hot-key evidence.
	lt := NewTracker(1)
	lt.ObserveKey(3, 0, 8)
	if top := lt.TopK(4); top != nil {
		t.Fatalf("TopK over zero-cost-only interval = %v, want nil", top)
	}
}

// Pinned: Keys() must not resurrect a key whose history has fully
// drained — stale cells persist physically after the epoch rolls, but
// they are not history.
func TestKeysSkipsStaleCells(t *testing.T) {
	tr := NewTracker(1)
	tr.ObserveKey(5, 3, 0) // no state: hist slot entry is 0-valued but present
	tr.EndInterval()
	// Interval 2: key 5 untouched. Its hist slot from interval 1 still
	// exists (window 1), so it remains history.
	tr.ObserveKey(6, 1, 0)
	tr.EndInterval()
	// Interval 3: key 5's slot has been evicted; only its stale cell
	// remains. Keys must now exclude it.
	got := tr.Keys()
	if len(got) != 1 || got[0] != 6 {
		t.Fatalf("Keys = %v, want [6]", got)
	}
}

func TestSetRetainRejectsHistory(t *testing.T) {
	tr := NewTracker(1)
	tr.ObserveKey(1, 1, 0)
	if err := tr.SetRetain(RetainMerge); err == nil {
		t.Fatal("SetRetain accepted a tracker with dirty keys")
	}
	tr2 := NewTracker(1)
	tr2.EndInterval()
	if err := tr2.SetRetain(RetainScan); err == nil {
		t.Fatal("SetRetain accepted a tracker with finished intervals")
	}
}

// Restamp refreshes carried entries' hash destinations in place, in
// both retained representations, without disturbing run order.
func TestRestampRefreshesCarriedEntries(t *testing.T) {
	for _, mode := range []RetainMode{RetainScan, RetainMerge} {
		tr := NewTracker(1)
		if err := tr.SetRetain(mode); err != nil {
			t.Fatal(err)
		}
		hash := 1
		stamp := func(ks *KeyStat) { ks.Hash = hash }
		tr.ObserveKey(1, 10, 0)
		tr.ObserveKey(2, 20, 0)
		tr.EndIntervalRetained(stamp)
		hash = 2 // "ring resized"
		tr.Restamp(stamp)
		tr.ObserveKey(1, 1, 0)
		run, _ := tr.EndIntervalRetained(stamp)
		for _, ks := range run {
			if ks.Hash != 2 {
				t.Fatalf("mode %v: entry %+v kept stale hash", mode, ks)
			}
		}
	}
}

// The legacy map harvest over the dirty list must equal what a full
// table scan would have produced — dropped-then-retouched keys count
// once, dropped keys not at all.
func TestEndIntervalAfterDropAndRetouch(t *testing.T) {
	tr := NewTracker(1)
	tr.ObserveKey(1, 5, 0)
	tr.ObserveKey(2, 6, 0)
	tr.DropKey(1)
	tr.ObserveKey(1, 3, 0) // re-touched: chained twice, must count once
	tr.DropKey(2)          // gone for good
	out := tr.EndInterval()
	if len(out) != 1 || out[1].Cost != 3 || out[1].Freq != 1 {
		t.Fatalf("EndInterval = %v, want key 1 cost 3 freq 1 only", out)
	}
}
