package stats

import (
	"math/rand"
	"testing"

	"repro/internal/tuple"
)

// The open-addressed cell table must behave exactly like a map under
// interleaved upserts and deletes — backward-shift deletion is the
// subtle part, so it gets a model-based test.
func TestCellTabMatchesMapModel(t *testing.T) {
	var tab cellTab
	model := map[tuple.Key]int64{}
	rng := rand.New(rand.NewSource(11))
	for op := 0; op < 200000; op++ {
		k := tuple.Key(rng.Intn(500)) // dense domain forces probe chains
		if rng.Intn(4) == 0 {
			tab.del(k)
			delete(model, k)
			continue
		}
		tab.upsert(k).cost++
		model[k]++
	}
	if tab.n != len(model) {
		t.Fatalf("table has %d live cells, model %d", tab.n, len(model))
	}
	seen := 0
	tab.each(func(c *cell) {
		seen++
		if model[c.key] != c.cost {
			t.Fatalf("key %d cost %d, model %d", c.key, c.cost, model[c.key])
		}
	})
	if seen != len(model) {
		t.Fatalf("each visited %d cells, model %d", seen, len(model))
	}
	// Every model key must still be findable by probe (no broken chains).
	for k, want := range model {
		if got := tab.upsert(k).cost; got != want {
			t.Fatalf("lookup key %d cost %d, want %d", k, got, want)
		}
	}
}

func TestCellTabKeyZeroAndGrow(t *testing.T) {
	var tab cellTab
	tab.upsert(0).cost = 7 // key 0 must be a first-class citizen
	for k := tuple.Key(1); k < 10000; k++ {
		tab.upsert(k).cost = int64(k)
	}
	if tab.n != 10000 {
		t.Fatalf("n = %d after 10000 inserts", tab.n)
	}
	if got := tab.upsert(0).cost; got != 7 {
		t.Fatalf("key 0 cost %d after growth, want 7", got)
	}
	tab.del(0)
	if tab.n != 9999 {
		t.Fatalf("n = %d after delete", tab.n)
	}
	if got := tab.upsert(0).cost; got != 0 {
		t.Fatalf("deleted key 0 resurrected with cost %d", got)
	}
	tab.reset()
	if tab.n != 0 {
		t.Fatal("reset left live cells")
	}
	tab.each(func(*cell) { t.Fatal("reset table iterated a cell") })
}
