package stats

import (
	"math/rand"
	"testing"

	"repro/internal/tuple"
)

// Tests of the harvest k-way merge: MergeRuns over sorted runs must
// equal SortByCostDesc over their concatenation, for every shape the
// stage can produce — unique keys (assignment routing), duplicate keys
// across runs (shuffle/PKG stages), cost ties, empty runs.

func randomRuns(rng *rand.Rand, nRuns, maxLen, keyDomain, costDomain int) [][]KeyStat {
	runs := make([][]KeyStat, nRuns)
	for d := range runs {
		// Keys are unique within a run (a task's tracker reports each
		// key once) but may repeat across runs; (Key, Dest) is then
		// unique over the concatenation, so the KeyStatLess order is
		// total and the expected output is well-defined.
		perm := rng.Perm(keyDomain)
		n := rng.Intn(maxLen + 1)
		if n > keyDomain {
			n = keyDomain
		}
		run := make([]KeyStat, n)
		for i := range run {
			run[i] = KeyStat{
				Key:  tuple.Key(perm[i]),
				Cost: int64(1 + rng.Intn(costDomain)),
				Freq: int64(rng.Intn(50)),
				Mem:  int64(rng.Intn(100)),
				Dest: d,
				Hash: rng.Intn(nRuns),
			}
		}
		SortByCostDesc(run)
		runs[d] = run
	}
	return runs
}

func TestMergeRunsEqualsSortedConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		// Small cost domains force heavy ties; small key domains force
		// the same key into several runs (the shuffle-stage shape).
		runs := randomRuns(rng, 1+rng.Intn(8), 40, 1+rng.Intn(30), 1+rng.Intn(5))
		var concat []KeyStat
		for _, r := range runs {
			concat = append(concat, r...)
		}
		SortByCostDesc(concat)
		got := MergeRuns(runs)
		if len(got) != len(concat) {
			t.Fatalf("trial %d: merged %d entries, want %d", trial, len(got), len(concat))
		}
		for i := range concat {
			if got[i] != concat[i] {
				t.Fatalf("trial %d entry %d: merge %+v ≠ sort %+v", trial, i, got[i], concat[i])
			}
		}
	}
}

func TestMergeRunsEdgeShapes(t *testing.T) {
	if got := MergeRuns(nil); got != nil {
		t.Fatalf("merge of no runs = %v, want nil", got)
	}
	if got := MergeRuns([][]KeyStat{nil, {}, nil}); got != nil {
		t.Fatalf("merge of empty runs = %v, want nil", got)
	}
	single := []KeyStat{{Key: 2, Cost: 5}, {Key: 1, Cost: 3}}
	got := MergeRuns([][]KeyStat{nil, single, nil})
	if len(got) != 2 || got[0] != single[0] || got[1] != single[1] {
		t.Fatalf("single-run merge = %v, want copy of the run", got)
	}
	// The single-run fast path must return a copy, not alias the input.
	got[0].Cost = 99
	if single[0].Cost == 99 {
		t.Fatal("single-run merge aliases the input run")
	}
}

func TestKeyStatLessTotalOrder(t *testing.T) {
	// Antisymmetry on the duplicate-key, equal-cost case the Dest
	// tie-break exists for.
	a := KeyStat{Key: 7, Cost: 4, Dest: 1}
	b := KeyStat{Key: 7, Cost: 4, Dest: 2}
	if !KeyStatLess(a, b) || KeyStatLess(b, a) {
		t.Fatal("Dest tie-break is not a strict order")
	}
	if KeyStatLess(a, a) {
		t.Fatal("KeyStatLess is not irreflexive")
	}
}
