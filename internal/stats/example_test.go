package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

// ExampleTheta computes the balance indicator of §II-A for the paper's
// Fig. 4 starting point: loads 16 and 4 around an average of 10.
func ExampleTheta() {
	loads := []int64{16, 4}
	fmt.Println(stats.Theta(loads))
	fmt.Println("skewness:", stats.Skewness(loads))
	// Output:
	// [0.6 0.6]
	// skewness: 1.6
}

// ExampleTracker shows the per-interval statistics cycle: observe
// tuples, close the interval, read c(k), g(k) and S(k, w).
func ExampleTracker() {
	tr := stats.NewTracker(2) // w = 2 intervals
	tr.ObserveKey(7, 3, 1)    // key 7: cost 3, state 1
	tr.ObserveKey(7, 2, 1)
	got := tr.EndInterval()
	ks := got[7]
	fmt.Printf("c=%d g=%d S=%d\n", ks.Cost, ks.Freq, ks.Mem)
	// Output: c=5 g=2 S=2
}
