package stats

import (
	"math/rand"
	"testing"

	"repro/internal/tuple"
)

// TestTopKMatchesEndInterval pins TopK's contract: on an identically
// fed twin tracker, TopK(n) must equal the first n entries of
// SortByCostDesc over EndInterval's full map — same cost, frequency
// and post-roll windowed memory — across interval rolls, key churn and
// every n from under- to over-sized.
func TestTopKMatchesEndInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	a, b := NewTracker(3), NewTracker(3)
	for interval := 0; interval < 7; interval++ {
		nKeys := 20 + rng.Intn(180)
		for i := 0; i < 3000; i++ {
			k := tuple.Key(rng.Intn(nKeys))
			cost, mem := int64(1+rng.Intn(9)), int64(rng.Intn(4))
			a.ObserveKey(k, cost, mem)
			b.ObserveKey(k, cost, mem)
		}
		for _, n := range []int{1, 5, nKeys / 2, nKeys, nKeys * 2} {
			got := a.TopK(n)
			full := make([]KeyStat, 0, nKeys)
			// Replay EndInterval's view without closing a: the twin b
			// closes for real below, so compare against its map on the
			// final n only after the roll. Mid-loop, compare heap output
			// against a full sort of another TopK call with huge n —
			// TopK(∞) must itself match EndInterval, checked below.
			full = append(full, a.TopK(nKeys*4)...)
			want := full
			if n < len(full) {
				want = full[:n]
			}
			if len(got) != len(want) {
				t.Fatalf("interval %d TopK(%d): %d entries, want %d", interval, n, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("interval %d TopK(%d)[%d] = %+v, want %+v", interval, n, i, got[i], want[i])
				}
			}
		}
		// The oracle: TopK over everything, taken immediately before the
		// roll, must reproduce EndInterval's map exactly.
		top := a.TopK(nKeys * 4)
		am, bm := a.EndInterval(), b.EndInterval()
		if len(top) != len(am) {
			t.Fatalf("interval %d: TopK sees %d keys, EndInterval %d", interval, len(top), len(am))
		}
		for _, ks := range top {
			if am[ks.Key] != ks {
				t.Fatalf("interval %d key %d: TopK %+v, EndInterval %+v", interval, ks.Key, ks, am[ks.Key])
			}
		}
		// And the twin trackers agree (sanity that feeding was identical).
		if len(am) != len(bm) {
			t.Fatalf("twin trackers diverged: %d vs %d keys", len(am), len(bm))
		}
		for k, ks := range am {
			if bm[k] != ks {
				t.Fatalf("twin trackers diverged on key %d", k)
			}
		}
	}
}

// TestTopKEmptyAndZero covers the degenerate corners.
func TestTopKEmptyAndZero(t *testing.T) {
	tr := NewTracker(2)
	if got := tr.TopK(5); got != nil {
		t.Fatalf("TopK on empty tracker = %v, want nil", got)
	}
	tr.ObserveKey(1, 10, 0)
	if got := tr.TopK(0); got != nil {
		t.Fatalf("TopK(0) = %v, want nil", got)
	}
}

// TestHotKeyDetectorHysteresis pins the enter/exit band: a key splits
// at EnterRatio × capacity, stays split while above the exit
// threshold, folds back below it, and its fan never shrinks while
// active.
func TestHotKeyDetectorHysteresis(t *testing.T) {
	d := NewHotKeyDetector(4, 1.0) // enter at cost ≥ 1000, exit below 700
	const capacity, nd = 1000, 8
	snap := func(cost int64) []KeyStat {
		return []KeyStat{{Key: 42, Cost: cost, Freq: cost}}
	}

	if hot, changed := d.Update(snap(900), capacity, nd); len(hot) != 0 || changed {
		t.Fatalf("cost 900 below enter: hot=%v changed=%v", hot, changed)
	}
	hot, changed := d.Update(snap(2500), capacity, nd)
	if !changed || len(hot) != 1 || hot[0].Key != 42 || hot[0].Fan != 3 {
		t.Fatalf("cost 2500: hot=%v changed=%v, want key 42 fan 3", hot, changed)
	}
	// Cooling to 800 — below enter, above exit — stays split, fan kept.
	hot, changed = d.Update(snap(800), capacity, nd)
	if changed || len(hot) != 1 || hot[0].Fan != 3 {
		t.Fatalf("cost 800 inside band: hot=%v changed=%v", hot, changed)
	}
	// Heating to 5000 grows the fan (never shrinks).
	hot, changed = d.Update(snap(5000), capacity, nd)
	if !changed || hot[0].Fan != 5 {
		t.Fatalf("cost 5000: hot=%v changed=%v, want fan 5", hot, changed)
	}
	if hot, _ = d.Update(snap(1200), capacity, nd); hot[0].Fan != 5 {
		t.Fatalf("fan shrank to %d while active", hot[0].Fan)
	}
	// Cooling below exit folds back.
	hot, changed = d.Update(snap(600), capacity, nd)
	if !changed || len(hot) != 0 {
		t.Fatalf("cost 600 below exit: hot=%v changed=%v", hot, changed)
	}
	// Re-entry needs the full enter threshold again, with a fresh fan.
	if hot, _ = d.Update(snap(800), capacity, nd); len(hot) != 0 {
		t.Fatalf("cost 800 re-split without reaching enter: %v", hot)
	}
	hot, _ = d.Update(snap(1000), capacity, nd)
	if len(hot) != 1 || hot[0].Fan != 2 {
		t.Fatalf("re-entry at 1000: %v, want fan 2 (clamped floor)", hot)
	}
}

// TestHotKeyDetectorBounds pins MaxSplit, the fan clamp to nd, and the
// disabled modes (capacity ≤ 0, nd < 2 fold everything back).
func TestHotKeyDetectorBounds(t *testing.T) {
	d := NewHotKeyDetector(2, 1.0)
	keys := []KeyStat{
		{Key: 1, Cost: 9000}, {Key: 2, Cost: 8000},
		{Key: 3, Cost: 7000}, {Key: 4, Cost: 6000},
	}
	hot, _ := d.Update(keys, 1000, 3)
	if len(hot) != 2 {
		t.Fatalf("MaxSplit=2 but %d keys split", len(hot))
	}
	for _, h := range hot {
		if h.Fan != 3 {
			t.Fatalf("fan %d exceeds nd=3", h.Fan)
		}
	}
	if hot, changed := d.Update(keys, 0, 3); len(hot) != 0 || !changed {
		t.Fatalf("capacity 0 must fold everything: hot=%v changed=%v", hot, changed)
	}
	hot, _ = d.Update(keys, 1000, 3)
	if len(hot) != 2 {
		t.Fatalf("re-arm after disable: %d split", len(hot))
	}
	if hot, _ := d.Update(keys, 1000, 1); len(hot) != 0 {
		t.Fatalf("nd=1 must fold everything: %v", hot)
	}
}
