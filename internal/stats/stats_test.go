package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tuple"
)

func TestThetaDefinition(t *testing.T) {
	// θ(d) = |L(d) − L̄| / L̄ per §II-A.
	loads := []int64{16, 4} // L̄ = 10
	th := Theta(loads)
	if math.Abs(th[0]-0.6) > 1e-12 || math.Abs(th[1]-0.6) > 1e-12 {
		t.Fatalf("Theta = %v, want [0.6 0.6]", th)
	}
	if got := MaxTheta(loads); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("MaxTheta = %v, want 0.6", got)
	}
}

func TestThetaZeroLoads(t *testing.T) {
	th := Theta([]int64{0, 0, 0})
	for _, v := range th {
		if v != 0 {
			t.Fatalf("Theta on zero loads = %v, want zeros", th)
		}
	}
}

func TestOverloadThetaOneSided(t *testing.T) {
	// One instance at 0, three at 4: L̄=3, max overload (4−3)/3 = 1/3,
	// even though the empty instance's two-sided θ is 1.
	loads := []int64{0, 4, 4, 4}
	if got := OverloadTheta(loads); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("OverloadTheta = %v, want 1/3", got)
	}
	if got := MaxTheta(loads); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("MaxTheta = %v, want 1", got)
	}
}

func TestSkewness(t *testing.T) {
	if got := Skewness([]int64{20, 10, 10}); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("Skewness = %v, want 1.5", got)
	}
	if got := Skewness([]int64{5, 5}); got != 1 {
		t.Fatalf("balanced Skewness = %v, want 1", got)
	}
	if got := Skewness(nil); got != 1 {
		t.Fatalf("empty Skewness = %v, want 1", got)
	}
}

func TestSkewnessAtLeastOne(t *testing.T) {
	f := func(a, b, c uint16) bool {
		loads := []int64{int64(a), int64(b), int64(c)}
		return Skewness(loads) >= 1 || (a == 0 && b == 0 && c == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotLoadsAndTotals(t *testing.T) {
	s := &Snapshot{ND: 3, Keys: []KeyStat{
		{Key: 1, Cost: 5, Mem: 2, Dest: 0},
		{Key: 2, Cost: 3, Mem: 4, Dest: 0},
		{Key: 3, Cost: 7, Mem: 1, Dest: 2},
	}}
	loads := s.Loads()
	if loads[0] != 8 || loads[1] != 0 || loads[2] != 7 {
		t.Fatalf("Loads = %v", loads)
	}
	if s.TotalCost() != 15 || s.TotalMem() != 7 {
		t.Fatalf("totals = %d/%d, want 15/7", s.TotalCost(), s.TotalMem())
	}
	if got := s.AvgLoad(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("AvgLoad = %v, want 5", got)
	}
}

func TestSnapshotClone(t *testing.T) {
	s := &Snapshot{ND: 2, Keys: []KeyStat{{Key: 1, Cost: 5}}}
	c := s.Clone()
	c.Keys[0].Cost = 99
	if s.Keys[0].Cost != 5 {
		t.Fatal("Clone shares key slice")
	}
}

func TestSortByCostDesc(t *testing.T) {
	ks := []KeyStat{{Key: 1, Cost: 2}, {Key: 3, Cost: 9}, {Key: 2, Cost: 9}}
	SortByCostDesc(ks)
	if ks[0].Cost != 9 || ks[1].Cost != 9 || ks[2].Cost != 2 {
		t.Fatalf("not cost-descending: %v", ks)
	}
	if ks[0].Key != 2 { // tie broken by ascending key
		t.Fatalf("tie-break wrong: %v", ks)
	}
}

func TestRouted(t *testing.T) {
	if (KeyStat{Dest: 1, Hash: 1}).Routed() {
		t.Fatal("Dest == Hash reported as routed")
	}
	if !(KeyStat{Dest: 2, Hash: 1}).Routed() {
		t.Fatal("Dest ≠ Hash not reported as routed")
	}
}

// --- Tracker ---------------------------------------------------------

func TestTrackerAccumulatesInterval(t *testing.T) {
	tr := NewTracker(1)
	tr.Observe(tuple.Tuple{Key: 1, Cost: 3, StateSize: 2})
	tr.Observe(tuple.Tuple{Key: 1, Cost: 2, StateSize: 1})
	tr.Observe(tuple.Tuple{Key: 2, Cost: 1, StateSize: 1})
	out := tr.EndInterval()
	if ks := out[1]; ks.Cost != 5 || ks.Freq != 2 || ks.Mem != 3 {
		t.Fatalf("key 1 stats = %+v, want cost 5, freq 2, mem 3", ks)
	}
	if ks := out[2]; ks.Cost != 1 || ks.Freq != 1 || ks.Mem != 1 {
		t.Fatalf("key 2 stats = %+v", ks)
	}
}

func TestTrackerWindowedMemory(t *testing.T) {
	// w = 3: S(k, 3) sums the last three finished intervals.
	tr := NewTracker(3)
	for i := 0; i < 5; i++ {
		tr.ObserveKey(7, 1, 10)
		out := tr.EndInterval()
		want := int64(10 * (i + 1))
		if want > 30 {
			want = 30
		}
		if got := out[7].Mem; got != want {
			t.Fatalf("interval %d: S(k,3) = %d, want %d", i, got, want)
		}
	}
}

func TestTrackerWindowEviction(t *testing.T) {
	tr := NewTracker(2)
	tr.ObserveKey(1, 1, 5)
	tr.EndInterval()
	tr.EndInterval() // key 1 idle
	if got := tr.WindowedMem(1); got != 5 {
		t.Fatalf("after 1 idle interval S = %d, want 5 (still in window)", got)
	}
	tr.EndInterval() // now evicted
	if got := tr.WindowedMem(1); got != 0 {
		t.Fatalf("after 2 idle intervals S = %d, want 0", got)
	}
}

func TestTrackerDropAndAdopt(t *testing.T) {
	src, dst := NewTracker(2), NewTracker(2)
	src.ObserveKey(9, 4, 7)
	src.EndInterval()
	dst.EndInterval() // keep clocks aligned
	mem := src.WindowedMem(9)
	src.DropKey(9)
	dst.AdoptKey(9, mem)
	if got := src.WindowedMem(9); got != 0 {
		t.Fatalf("source retains %d after DropKey", got)
	}
	if got := dst.WindowedMem(9); got != 7 {
		t.Fatalf("destination adopted %d, want 7", got)
	}
}

func TestTrackerAdoptBeforeFirstInterval(t *testing.T) {
	tr := NewTracker(2)
	tr.AdoptKey(3, 11)
	out := tr.EndInterval()
	if got := out[3].Mem; got != 11 {
		t.Fatalf("adopted-before-first-interval mem = %d, want 11", got)
	}
}

func TestBuildSnapshotResolvesDests(t *testing.T) {
	perKey := map[tuple.Key]KeyStat{
		4: {Cost: 2, Freq: 1, Mem: 1},
		5: {Cost: 6, Freq: 3, Mem: 2},
	}
	asg := fakeAsg{dests: map[tuple.Key]int{4: 1, 5: 0}, hashes: map[tuple.Key]int{4: 0, 5: 0}, nd: 2}
	snap := BuildSnapshot(3, perKey, asg)
	if snap.Interval != 3 || snap.ND != 2 || len(snap.Keys) != 2 {
		t.Fatalf("snapshot header wrong: %+v", snap)
	}
	// Sorted cost-descending: key 5 first.
	if snap.Keys[0].Key != 5 || snap.Keys[0].Dest != 0 {
		t.Fatalf("first key = %+v", snap.Keys[0])
	}
	if snap.Keys[1].Key != 4 || snap.Keys[1].Dest != 1 || snap.Keys[1].Hash != 0 {
		t.Fatalf("second key = %+v", snap.Keys[1])
	}
}

type fakeAsg struct {
	dests, hashes map[tuple.Key]int
	nd            int
}

func (f fakeAsg) Dest(k tuple.Key) int     { return f.dests[k] }
func (f fakeAsg) HashDest(k tuple.Key) int { return f.hashes[k] }
func (f fakeAsg) Instances() int           { return f.nd }

func TestMergeKeyStats(t *testing.T) {
	dst := map[tuple.Key]KeyStat{1: {Key: 1, Cost: 2, Freq: 1, Mem: 3}}
	src := map[tuple.Key]KeyStat{1: {Key: 1, Cost: 5, Freq: 2, Mem: 1}, 2: {Key: 2, Cost: 1, Freq: 1, Mem: 1}}
	MergeKeyStats(dst, src)
	if d := dst[1]; d.Cost != 7 || d.Freq != 3 || d.Mem != 4 {
		t.Fatalf("merged key 1 = %+v", d)
	}
	if d := dst[2]; d.Cost != 1 {
		t.Fatalf("merged key 2 = %+v", d)
	}
}

func TestTrackerWindowClamp(t *testing.T) {
	if NewTracker(0).Window() != 1 {
		t.Fatal("window 0 not clamped to 1")
	}
	if NewTracker(-3).Window() != 1 {
		t.Fatal("negative window not clamped to 1")
	}
}
