// Package stats collects and summarizes the per-key measurements the
// rebalance planners consume: tuple frequency g_i(k), computation cost
// c_i(k), per-interval state size s_i(k) and its windowed sum S_i(k,w)
// (§II-A). It also computes the per-instance load L_i(d, F), the
// balance indicator θ_i(d, F) and the workload-skewness metric
// max L(d) / L̄ reported throughout §V.
//
// The Tracker's interval close is O(Δkeys), not O(tracked keys): first
// touches chain keys onto a dirty list (an epoch stamp per cell makes
// the per-interval reset free), EndInterval harvests only that list,
// and in retained mode EndIntervalRetained merges the harvest into a
// persistent sorted aggregate whose previous run stays valid as a
// copy-on-write view until the close after next — together with the
// interval's retirements this is the Delta the incremental load-report
// protocol ships instead of the full population.
package stats

import (
	"sort"

	"repro/internal/tuple"
)

// KeyStat is the planner-facing record for one key, estimated from the
// previous interval's measurements as the problem formulation (§II-B)
// prescribes.
type KeyStat struct {
	Key  tuple.Key
	Cost int64 // c_{i-1}(k): CPU cost of the key's tuples last interval
	Freq int64 // g_{i-1}(k): tuple count last interval
	Mem  int64 // S_{i-1}(k, w): windowed state size (migration cost unit)
	Dest int   // current destination F(k)
	Hash int   // hash destination h(k)
}

// Routed reports whether the key currently occupies a routing-table
// entry (its destination differs from its hash default).
func (ks KeyStat) Routed() bool { return ks.Dest != ks.Hash }

// Snapshot is one interval's worth of statistics for a single operator:
// everything the balance algorithms in §III need to construct F′.
type Snapshot struct {
	Interval int64
	ND       int
	Keys     []KeyStat
}

// Loads returns L(d) for every instance under the snapshot's recorded
// destinations.
func (s *Snapshot) Loads() []int64 {
	loads := make([]int64, s.ND)
	for _, ks := range s.Keys {
		loads[ks.Dest] += ks.Cost
	}
	return loads
}

// TotalCost returns Σ_k c(k).
func (s *Snapshot) TotalCost() int64 {
	var t int64
	for _, ks := range s.Keys {
		t += ks.Cost
	}
	return t
}

// TotalMem returns Σ_k S(k,w), the denominator of the migration-cost
// percentage reported in the paper's figures.
func (s *Snapshot) TotalMem() int64 {
	var t int64
	for _, ks := range s.Keys {
		t += ks.Mem
	}
	return t
}

// AvgLoad returns L̄ = Σ L(d) / ND.
func (s *Snapshot) AvgLoad() float64 {
	if s.ND == 0 {
		return 0
	}
	return float64(s.TotalCost()) / float64(s.ND)
}

// Clone deep-copies the snapshot so planners can mutate destinations
// while the caller retains the original.
func (s *Snapshot) Clone() *Snapshot {
	c := &Snapshot{Interval: s.Interval, ND: s.ND, Keys: make([]KeyStat, len(s.Keys))}
	copy(c.Keys, s.Keys)
	return c
}

// KeyStatLess is the canonical snapshot ordering: descending cost,
// key-ascending tie-break, destination-ascending final tie-break. Cost
// and key alone order any snapshot whose keys are unique (every
// assignment-routed stage); the destination term makes the order total
// for shuffle- and PKG-style stages where one key's tuples land on
// several instances, so merging per-task sorted runs is deterministic
// and equal to sorting the concatenation.
func KeyStatLess(a, b KeyStat) bool {
	if a.Cost != b.Cost {
		return a.Cost > b.Cost
	}
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	return a.Dest < b.Dest
}

// SortByCostDesc orders keys by KeyStatLess — descending cost with
// key-ascending tie-break, the ordering both LLFD and Simple iterate
// in.
func SortByCostDesc(keys []KeyStat) {
	sort.Slice(keys, func(i, j int) bool { return KeyStatLess(keys[i], keys[j]) })
}

// KeySet is a small reusable open-addressing membership set over
// tuple keys. The incremental close paths probe it once per retained
// aggregate entry while it holds only the interval's Δkeys, so the
// table stays a compact power-of-two array (≤ 50% load) that is
// cache-resident during the O(population) skip scan — several times
// cheaper per probe than a scratch Go map rebuilt every close.
type KeySet struct {
	// One array of (key, used) pairs, not parallel arrays: a probe
	// touches a single cache line.
	slots []keySlot
}

type keySlot struct {
	k    tuple.Key
	used bool
}

// Reset empties the set and sizes it for n keys, reusing the backing
// array whenever it is already large enough.
func (s *KeySet) Reset(n int) {
	want := 8
	for want < 2*n {
		want <<= 1
	}
	if want <= cap(s.slots) {
		s.slots = s.slots[:want]
		for i := range s.slots {
			s.slots[i] = keySlot{}
		}
		return
	}
	s.slots = make([]keySlot, want)
}

// Add inserts k (idempotently).
func (s *KeySet) Add(k tuple.Key) {
	mask := uint64(len(s.slots) - 1)
	i := cellHash(k) & mask
	for s.slots[i].used {
		if s.slots[i].k == k {
			return
		}
		i = (i + 1) & mask
	}
	s.slots[i] = keySlot{k: k, used: true}
}

// Has reports whether k was added since the last Reset.
func (s *KeySet) Has(k tuple.Key) bool {
	if len(s.slots) == 0 {
		return false
	}
	mask := uint64(len(s.slots) - 1)
	for i := cellHash(k) & mask; s.slots[i].used; i = (i + 1) & mask {
		if s.slots[i].k == k {
			return true
		}
	}
	return false
}

// MergeRuns k-way-merges per-task sorted runs (each ordered by
// KeyStatLess) into one slice with the same ordering — the harvest
// merge Stage.EndInterval uses instead of re-sorting the concatenated
// runs from scratch. Each run must be sorted; the result is then
// exactly SortByCostDesc over the concatenation, at the cost of one
// heap operation per element over a k-sized heap instead of a full
// O(n log n) comparison sort on the interval-barrier critical path.
func MergeRuns(runs [][]KeyStat) []KeyStat {
	total := 0
	live := make([]int, 0, len(runs)) // indices of non-empty runs
	for i, r := range runs {
		total += len(r)
		if len(r) > 0 {
			live = append(live, i)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return append([]KeyStat(nil), runs[live[0]]...)
	}
	out := make([]KeyStat, 0, total)
	// At typical stage fan-ins a select-min over cached heads beats the
	// index heap: the comparisons run on contiguous cursor structs
	// instead of chasing runs[live[i]][pos[...]] twice per compare, and
	// the merge is one KeyStat copy per element. The heap takes over
	// when k is large enough for O(k) selection to lose.
	if len(live) <= 8 {
		type cursor struct {
			head KeyStat
			run  []KeyStat
			i    int
		}
		cs := make([]cursor, len(live))
		for j, idx := range live {
			cs[j] = cursor{head: runs[idx][0], run: runs[idx]}
		}
		for len(cs) > 1 {
			m := 0
			for j := 1; j < len(cs); j++ {
				if KeyStatLess(cs[j].head, cs[m].head) {
					m = j
				}
			}
			c := &cs[m]
			out = append(out, c.head)
			c.i++
			if c.i == len(c.run) {
				cs[m] = cs[len(cs)-1]
				cs = cs[:len(cs)-1]
				continue
			}
			c.head = c.run[c.i]
		}
		return append(out, cs[0].run[cs[0].i:]...)
	}
	pos := make([]int, len(runs))
	// Index heap over live runs, ordered by each run's current head.
	less := func(a, b int) bool { return KeyStatLess(runs[a][pos[a]], runs[b][pos[b]]) }
	down := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(live) && less(live[l], live[m]) {
				m = l
			}
			if r < len(live) && less(live[r], live[m]) {
				m = r
			}
			if m == i {
				return
			}
			live[i], live[m] = live[m], live[i]
			i = m
		}
	}
	for i := len(live)/2 - 1; i >= 0; i-- {
		down(i)
	}
	for len(live) > 0 {
		top := live[0]
		out = append(out, runs[top][pos[top]])
		pos[top]++
		if pos[top] == len(runs[top]) {
			live[0] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		down(0)
	}
	return out
}

// Theta returns the balance indicator θ(d) = |L(d) − L̄| / L̄ for every
// instance. A zero average load yields all-zero indicators.
func Theta(loads []int64) []float64 {
	avg := avgOf(loads)
	out := make([]float64, len(loads))
	if avg == 0 {
		return out
	}
	for i, l := range loads {
		d := float64(l) - avg
		if d < 0 {
			d = -d
		}
		out[i] = d / avg
	}
	return out
}

// MaxTheta returns max_d θ(d), the quantity constrained by θmax.
func MaxTheta(loads []int64) float64 {
	var m float64
	for _, t := range Theta(loads) {
		if t > m {
			m = t
		}
	}
	return m
}

// OverloadTheta returns max_d (L(d) − L̄)/L̄ clamped at 0: the overload
// side of the balance indicator. This is the quantity the algorithms'
// Lmax = (1+θmax)·L̄ constraint actually bounds; an instance can remain
// *under*loaded without any key placement being able to fix it (e.g.
// fewer heavy keys than instances), so feasibility is judged one-sided.
func OverloadTheta(loads []int64) float64 {
	avg := avgOf(loads)
	if avg == 0 {
		return 0
	}
	var max int64
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	over := (float64(max) - avg) / avg
	if over < 0 {
		return 0
	}
	return over
}

// Skewness returns max L(d) / L̄, the "workload skewness" metric of
// Fig. 7. Returns 1 for a perfectly balanced or empty load vector.
func Skewness(loads []int64) float64 {
	avg := avgOf(loads)
	if avg == 0 {
		return 1
	}
	var max int64
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return float64(max) / avg
}

func avgOf(loads []int64) float64 {
	if len(loads) == 0 {
		return 0
	}
	var t int64
	for _, l := range loads {
		t += l
	}
	return float64(t) / float64(len(loads))
}
