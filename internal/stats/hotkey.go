package stats

import (
	"math"
	"sort"

	"repro/internal/tuple"
)

// HotKey is a detector verdict: key k should run split across Fan
// replicas this interval.
type HotKey struct {
	Key tuple.Key
	Fan int
}

// HotKeyDetector decides, interval by interval, which keys are hot
// enough to split — the Doppel-style contention detector adapted to
// cost-per-interval load. A key enters the split set when its interval
// cost reaches EnterRatio × the per-task service capacity (one task
// can no longer keep up with the key alone), and leaves only when its
// cost drops below ExitFraction of that entry threshold — the
// hysteresis band that keeps keys hovering near the threshold from
// flapping in and out of the split set every interval. At most
// MaxSplit keys are split at once, hottest first.
//
// The detector is deliberately snapshot-driven: it consumes the sorted
// per-interval key statistics the control plane already harvests
// (Snapshot.Keys, or Tracker.TopK for a single task) and keeps only
// the active set as state, so it drops into a control.Policy without
// touching the data plane.
type HotKeyDetector struct {
	// MaxSplit bounds the number of concurrently split keys.
	MaxSplit int
	// EnterRatio × capacity is the cost at which a key becomes split.
	EnterRatio float64
	// ExitFraction × EnterRatio × capacity is the cost below which an
	// active key folds back for good. Must be < 1 for real hysteresis.
	ExitFraction float64

	active map[tuple.Key]int // key → current fan
}

// DefExitFraction is the default hysteresis band: a split key must
// cool to 70% of the entry threshold before it unsplits.
const DefExitFraction = 0.7

// NewHotKeyDetector returns a detector splitting at most maxSplit keys
// once their interval cost reaches enterRatio × capacity. maxSplit < 1
// is clamped to 1; enterRatio ≤ 0 defaults to 1 (split as soon as a
// key saturates a whole task).
func NewHotKeyDetector(maxSplit int, enterRatio float64) *HotKeyDetector {
	if maxSplit < 1 {
		maxSplit = 1
	}
	if enterRatio <= 0 {
		enterRatio = 1
	}
	return &HotKeyDetector{
		MaxSplit:     maxSplit,
		EnterRatio:   enterRatio,
		ExitFraction: DefExitFraction,
		active:       make(map[tuple.Key]int),
	}
}

// Update consumes one finished interval's per-key statistics (sorted
// by KeyStatLess — Snapshot.Keys or Tracker.TopK output) and returns
// the new split set (sorted by key) plus whether it differs from the
// previous interval's. capacity is the per-task service capacity the
// cost thresholds are relative to; nd bounds each key's fan. A
// non-positive capacity or nd < 2 disables detection (no instance to
// split across), folding every active key back.
func (d *HotKeyDetector) Update(keys []KeyStat, capacity int64, nd int) ([]HotKey, bool) {
	if d.active == nil {
		d.active = make(map[tuple.Key]int)
	}
	next := make(map[tuple.Key]int, len(d.active))
	if capacity > 0 && nd >= 2 {
		enter := d.EnterRatio * float64(capacity)
		exit := enter * d.ExitFraction
		for i := range keys {
			cost := float64(keys[i].Cost)
			if cost < exit {
				break // sorted desc: nothing colder can qualify
			}
			k := keys[i].Key
			fan := clampFan(int(math.Ceil(cost/float64(capacity))), nd)
			if old, ok := d.active[k]; ok {
				// Hysteresis: stay split above the exit threshold, and
				// never shrink the fan while split — fan only grows with
				// demand and resets when the key leaves the set.
				if fan < old {
					fan = old
				}
				next[k] = fan
			} else if cost >= enter && len(next) < d.MaxSplit {
				next[k] = fan
			}
		}
	}
	changed := len(next) != len(d.active)
	if !changed {
		for k, fan := range next {
			if d.active[k] != fan {
				changed = true
				break
			}
		}
	}
	d.active = next
	out := make([]HotKey, 0, len(next))
	for k, fan := range next {
		out = append(out, HotKey{Key: k, Fan: fan})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, changed
}

// Active returns the current split set size.
func (d *HotKeyDetector) Active() int { return len(d.active) }

func clampFan(fan, nd int) int {
	if fan < 2 {
		fan = 2
	}
	if fan > nd {
		fan = nd
	}
	return fan
}
