package stats

import (
	"testing"

	"repro/internal/tuple"
)

// benchTuples cycles a bounded key set so the tracker map reaches a
// steady size instead of growing with b.N.
func benchTuples(n int) []tuple.Tuple {
	ts := make([]tuple.Tuple, n)
	for i := range ts {
		ts[i] = tuple.New(tuple.Key(uint64(i)*2654435761%4096), nil)
	}
	return ts
}

func BenchmarkTrackerObserve(b *testing.B) {
	tr := NewTracker(1)
	ts := benchTuples(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Observe(ts[i%len(ts)])
	}
}

func BenchmarkTrackerObserveBatch(b *testing.B) {
	tr := NewTracker(1)
	const batch = 256
	ts := benchTuples(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n += batch {
		off := n % len(ts)
		if off+batch > len(ts) {
			off = 0
		}
		tr.ObserveBatch(ts[off : off+batch])
	}
}

func BenchmarkTrackerEndInterval(b *testing.B) {
	tr := NewTracker(2)
	ts := benchTuples(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.ObserveBatch(ts)
		tr.EndInterval()
	}
}
