package stats

import (
	"sort"

	"repro/internal/tuple"
)

// Tracker accumulates per-key measurements inside the current interval
// and maintains a ring of the last w intervals so S(k, w) can be
// reported. One Tracker serves one operator; the engine's tasks feed it
// and the controller snapshots it at interval boundaries (step 1 of the
// Fig. 5 workflow).
//
// Tracker is not internally synchronized: in the engine each task owns
// a private Tracker and the controller merges them, mirroring the
// paper's per-instance load-reporting module.
type Tracker struct {
	window int
	// cur accumulates the in-progress interval in an open-addressed
	// table of value cells: one probe-and-update per observation (a Go
	// map would cost a hashed access plus a hashed assign), no per-key
	// cell allocation, and a linear scan at harvest time.
	cur cellTab
	// hist[j] holds a finished interval's per-key state sizes; the ring
	// covers the last `window` finished intervals.
	hist []map[tuple.Key]int64
	// next is the ring index the next finished interval lands in.
	next int
	// finished counts completed intervals (for Interval stamping).
	finished int64
}

// cell is one key's in-progress interval accumulator.
type cell struct {
	key  tuple.Key
	live bool
	cost int64
	freq int64
	mem  int64
}

// cellTab is a power-of-two open-addressed table with linear probing
// and backward-shift deletion. It exists because the tracker update is
// on the engine's per-tuple path: upsert is a splitmix hash, a masked
// index and (almost always) one cache line touched.
type cellTab struct {
	cells  []cell
	mask   uint64
	n      int
	growAt int
}

const cellTabMinSize = 64

func (t *cellTab) init(size int) {
	t.cells = make([]cell, size)
	t.mask = uint64(size - 1)
	t.n = 0
	t.growAt = size * 3 / 4
}

// upsert returns the live cell for k, inserting a zero cell if absent.
// The pointer is valid until the next upsert (which may grow the
// table).
func (t *cellTab) upsert(k tuple.Key) *cell {
	if t.cells == nil {
		t.init(cellTabMinSize)
	} else if t.n >= t.growAt {
		t.grow()
	}
	i := cellHash(k) & t.mask
	for {
		c := &t.cells[i]
		if !c.live {
			c.key = k
			c.live = true
			t.n++
			return c
		}
		if c.key == k {
			return c
		}
		i = (i + 1) & t.mask
	}
}

func (t *cellTab) grow() {
	old := t.cells
	t.init(len(old) * 2)
	for i := range old {
		if old[i].live {
			c := t.upsert(old[i].key)
			*c = old[i]
		}
	}
}

// del removes k's cell, if present, restoring the probe invariant by
// backward-shifting any displaced successors into the hole.
func (t *cellTab) del(k tuple.Key) {
	if t.n == 0 {
		return
	}
	i := cellHash(k) & t.mask
	for t.cells[i].key != k || !t.cells[i].live {
		if !t.cells[i].live {
			return
		}
		i = (i + 1) & t.mask
	}
	t.n--
	j := i
	for {
		j = (j + 1) & t.mask
		if !t.cells[j].live {
			break
		}
		h := cellHash(t.cells[j].key) & t.mask
		if (j-h)&t.mask >= (j-i)&t.mask {
			t.cells[i] = t.cells[j]
			i = j
		}
	}
	t.cells[i] = cell{}
}

// reset clears every cell, keeping capacity for the next interval.
func (t *cellTab) reset() {
	clear(t.cells)
	t.n = 0
}

// each calls fn for every live cell.
func (t *cellTab) each(fn func(*cell)) {
	for i := range t.cells {
		if t.cells[i].live {
			fn(&t.cells[i])
		}
	}
}

// cellHash is splitmix64, matching the ring's key mixing: fast and
// well-distributed for the small-integer keys synthetic workloads use.
func cellHash(k tuple.Key) uint64 {
	x := uint64(k) + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewTracker returns a tracker keeping a state window of w intervals.
// w < 1 is clamped to 1 (the paper's minimum, instantaneous state).
func NewTracker(w int) *Tracker {
	if w < 1 {
		w = 1
	}
	return &Tracker{
		window: w,
		hist:   make([]map[tuple.Key]int64, w),
	}
}

// Window returns w.
func (t *Tracker) Window() int { return t.window }

// Observe charges one tuple's cost and state to its key in the current
// interval.
func (t *Tracker) Observe(tp tuple.Tuple) {
	t.ObserveKey(tp.Key, tp.Cost, tp.StateSize)
}

// ObserveKey charges cost and state directly, letting workload drivers
// skip tuple construction in tight loops.
func (t *Tracker) ObserveKey(k tuple.Key, cost, state int64) {
	c := t.cur.upsert(k)
	c.cost += cost
	c.freq++
	c.mem += state
}

// ObserveBatch folds a whole batch of tuples into the current interval
// with one call, the entry point the engine's task loop uses so tracker
// accounting is amortized across every tuple of a channel message. It
// returns the batch's total cost, already read during the single pass,
// so callers charging processed-cost accounting need no second pass.
func (t *Tracker) ObserveBatch(ts []tuple.Tuple) int64 {
	tab := &t.cur
	if tab.cells == nil {
		tab.init(cellTabMinSize)
	}
	cells, mask := tab.cells, tab.mask
	var total int64
	for i := range ts {
		// Grow on demand, sized by live keys — not by batch length,
		// which over-allocates badly when a huge batch cycles few keys.
		if tab.n >= tab.growAt {
			tab.grow()
			cells, mask = tab.cells, tab.mask
		}
		k := ts[i].Key
		j := cellHash(k) & mask
		for {
			c := &cells[j]
			if c.live {
				if c.key == k {
					c.cost += ts[i].Cost
					c.freq++
					c.mem += ts[i].StateSize
					break
				}
				j = (j + 1) & mask
				continue
			}
			c.key = k
			c.live = true
			tab.n++
			c.cost = ts[i].Cost
			c.freq = 1
			c.mem = ts[i].StateSize
			break
		}
		total += ts[i].Cost
	}
	return total
}

// AbsorbKey folds an already-aggregated (cost, freq, mem) contribution
// into k's current-interval cell. The hot-key fold-back path uses it
// to charge a split key's replica work to the key's home task before
// harvest: the adds are plain integer sums, so absorbing replica
// deltas in any order yields the same cell an unsplit run would have
// accumulated tuple by tuple.
func (t *Tracker) AbsorbKey(k tuple.Key, cost, freq, mem int64) {
	if cost == 0 && freq == 0 && mem == 0 {
		return
	}
	c := t.cur.upsert(k)
	c.cost += cost
	c.freq += freq
	c.mem += mem
}

// DropKey forgets all history for k. The state store calls this when a
// key's state migrates away so the source task stops reporting it.
func (t *Tracker) DropKey(k tuple.Key) {
	t.cur.del(k)
	for _, h := range t.hist {
		delete(h, k)
	}
}

// AdoptKey seeds windowed memory for a key that just migrated in, so
// S(k,w) remains continuous across migration. The memory is recorded in
// the most recently finished interval slot (or the current one if none
// has finished yet).
func (t *Tracker) AdoptKey(k tuple.Key, mem int64) {
	if t.finished == 0 {
		t.cur.upsert(k).mem += mem
		return
	}
	last := (t.next - 1 + t.window) % t.window
	if t.hist[last] == nil {
		t.hist[last] = make(map[tuple.Key]int64)
	}
	t.hist[last][k] += mem
}

// EndInterval closes the current interval, rolls the state window and
// returns the per-key statistics of the finished interval: cost c(k),
// frequency g(k) and the windowed memory S(k, w) including the interval
// just finished.
func (t *Tracker) EndInterval() map[tuple.Key]KeyStat {
	// Roll the just-finished interval's state sizes into the ring,
	// evicting the slot from w intervals ago (the paper's model: state
	// from T_{i-w} is erased after T_i completes).
	slot := make(map[tuple.Key]int64, t.cur.n)
	t.cur.each(func(c *cell) {
		slot[c.key] = c.mem
	})
	t.hist[t.next] = slot
	t.next = (t.next + 1) % t.window
	t.finished++

	out := make(map[tuple.Key]KeyStat, t.cur.n)
	t.cur.each(func(c *cell) {
		out[c.key] = KeyStat{Key: c.key, Cost: c.cost, Freq: c.freq, Mem: t.WindowedMem(c.key)}
	})
	t.cur.reset()
	return out
}

// TopK returns the n hottest keys of the interval in progress without
// closing it: the result is exactly the first n entries of
// SortByCostDesc over the map EndInterval would return right now
// (same cost/freq, same post-roll windowed memory), but computed with
// one bounded min-heap over the live cells — O(keys · log n) time and
// O(n) allocation instead of materializing the full map. The hot-key
// detector polls it every interval.
func (t *Tracker) TopK(n int) []KeyStat {
	if n <= 0 || t.cur.n == 0 {
		return nil
	}
	// colder orders by the inverse of KeyStatLess (Dest is zero for
	// every candidate, matching EndInterval's map), so the heap root is
	// always the weakest current member.
	colder := func(a, b KeyStat) bool {
		if a.Cost != b.Cost {
			return a.Cost < b.Cost
		}
		return a.Key > b.Key
	}
	heap := make([]KeyStat, 0, n)
	t.cur.each(func(c *cell) {
		ks := KeyStat{Key: c.key, Cost: c.cost, Freq: c.freq, Mem: c.mem}
		if len(heap) < n {
			heap = append(heap, ks)
			for i := len(heap) - 1; i > 0; {
				p := (i - 1) / 2
				if !colder(heap[i], heap[p]) {
					break
				}
				heap[i], heap[p] = heap[p], heap[i]
				i = p
			}
			return
		}
		if !colder(heap[0], ks) {
			return
		}
		heap[0] = ks
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(heap) && colder(heap[l], heap[m]) {
				m = l
			}
			if r < len(heap) && colder(heap[r], heap[m]) {
				m = r
			}
			if m == i {
				break
			}
			heap[i], heap[m] = heap[m], heap[i]
			i = m
		}
	})
	// EndInterval reports Mem post-roll: the current interval's state
	// lands in slot t.next (evicting the interval from w ago) and then
	// S(k, w) sums the whole ring. Equivalently, for a live cell: its
	// current mem plus every finished slot except the one about to be
	// evicted.
	for i := range heap {
		for j, h := range t.hist {
			if j == t.next {
				continue
			}
			heap[i].Mem += h[heap[i].Key]
		}
	}
	SortByCostDesc(heap)
	return heap
}

// WindowedMem returns S(k, w) = Σ_{j=i-w+1..i} s_j(k) over the finished
// intervals currently in the window.
func (t *Tracker) WindowedMem(k tuple.Key) int64 {
	var s int64
	for _, h := range t.hist {
		s += h[k]
	}
	return s
}

// Finished returns the number of completed intervals.
func (t *Tracker) Finished() int64 { return t.finished }

// Keys returns every key with any recorded history — current-interval
// observations or windowed memory in a finished slot — in ascending
// order. Scale-in uses it to enumerate what a retiring task still
// reports, so tracker history migrates along with state even for keys
// whose windowed state has already shrunk to zero.
func (t *Tracker) Keys() []tuple.Key {
	hint := t.cur.n
	for _, h := range t.hist {
		if len(h) > hint {
			hint = len(h)
		}
	}
	seen := make(map[tuple.Key]struct{}, hint)
	t.cur.each(func(c *cell) { seen[c.key] = struct{}{} })
	for _, h := range t.hist {
		for k := range h {
			seen[k] = struct{}{}
		}
	}
	out := make([]tuple.Key, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Assigner resolves a key's current and hash destinations; the route
// package's Assignment satisfies it.
type Assigner interface {
	Dest(k tuple.Key) int
	HashDest(k tuple.Key) int
	Instances() int
}

// BuildSnapshot merges per-key stats (typically from Tracker.EndInterval,
// possibly from several tasks) into a planner-ready Snapshot, resolving
// each key's current and hash destinations through the assignment.
func BuildSnapshot(interval int64, perKey map[tuple.Key]KeyStat, asg Assigner) *Snapshot {
	s := &Snapshot{Interval: interval, ND: asg.Instances(), Keys: make([]KeyStat, 0, len(perKey))}
	for k, ks := range perKey {
		ks.Key = k
		ks.Dest = asg.Dest(k)
		ks.Hash = asg.HashDest(k)
		s.Keys = append(s.Keys, ks)
	}
	SortByCostDesc(s.Keys)
	return s
}

// MergeKeyStats adds src's per-key measurements into dst (cost, freq and
// memory are additive; destinations are resolved later by
// BuildSnapshot). Used by the controller to merge task-level reports.
func MergeKeyStats(dst, src map[tuple.Key]KeyStat) {
	for k, s := range src {
		d := dst[k]
		d.Key = k
		d.Cost += s.Cost
		d.Freq += s.Freq
		d.Mem += s.Mem
		dst[k] = d
	}
}
