package stats

import (
	"fmt"
	"sort"

	"repro/internal/tuple"
)

// RetainMode selects what a Tracker's interval close reports (see
// SetRetain). The default, RetainOff, reports only the keys touched
// during the finished interval — the original per-interval harvest.
// The retained modes additionally carry every previously reported key
// forward with its last-reported statistics, so the close describes
// the task's whole tracked population; they differ only in how the
// retained aggregate is rebuilt, and are pinned bit-identical to each
// other (RetainScan is the equivalence oracle for RetainMerge).
type RetainMode int

const (
	// RetainOff is the legacy per-interval harvest: EndInterval reports
	// exactly the keys observed since the previous close.
	RetainOff RetainMode = iota
	// RetainScan retains the population in a map and rebuilds the full
	// sorted run from scratch at every close — O(population·log) per
	// interval, the oracle the merge path is pinned against.
	RetainScan
	// RetainMerge retains the population as a persistent sorted
	// aggregate and folds only the interval's dirty keys in with one
	// linear merge — O(population) copy plus O(dirty·log dirty) sort,
	// no full re-sort, and the run handed out is a copy-on-write view
	// of the aggregate itself.
	RetainMerge
)

// Tracker accumulates per-key measurements inside the current interval
// and maintains a ring of the last w intervals so S(k, w) can be
// reported. One Tracker serves one operator; the engine's tasks feed it
// and the controller snapshots it at interval boundaries (step 1 of the
// Fig. 5 workflow).
//
// Tracker is not internally synchronized: in the engine each task owns
// a private Tracker and the controller merges them, mirroring the
// paper's per-instance load-reporting module.
type Tracker struct {
	window int
	// cur accumulates the in-progress interval in an open-addressed
	// table of value cells: one probe-and-update per observation (a Go
	// map would cost a hashed access plus a hashed assign), no per-key
	// cell allocation. Cells persist across intervals, stamped with the
	// epoch of their last touch; a close consumes only the dirty list
	// below and "resets" the table by bumping the epoch — O(1) instead
	// of a capacity-wide clear.
	cur cellTab
	// epoch identifies the in-progress interval (starts at 1 so the
	// zero value of a fresh cell never matches). A cell whose epoch
	// differs is stale: its accumulators belong to an already-harvested
	// interval and are reset on the next touch.
	epoch uint64
	// dirty chains each key touched this interval, once, at first-touch
	// time — the close harvests exactly this list instead of scanning
	// the table's capacity, so interval-close cost is O(touched keys).
	dirty []tuple.Key
	// dirtyDropped counts current-epoch cells deleted by DropKey this
	// interval. While zero (the overwhelmingly common case) the dirty
	// list holds no duplicates and harvest needs no dedup map; a drop
	// followed by a re-touch chains the key a second time.
	dirtyDropped int
	// hist[j] holds a finished interval's per-key state sizes; the ring
	// covers the last `window` finished intervals.
	hist []map[tuple.Key]int64
	// next is the ring index the next finished interval lands in.
	next int
	// finished counts completed intervals (for Interval stamping).
	finished int64

	// Retained-population state (SetRetain). retired records keys
	// dropped since the last close so the aggregate and any downstream
	// delta consumer retire them coherently.
	retain  RetainMode
	retired []tuple.Key
	// aggMap is RetainScan's population (key → last-reported stat).
	aggMap map[tuple.Key]KeyStat
	// agg / aggSpare double-buffer RetainMerge's sorted aggregate: each
	// close merges into the spare and swaps, so the run returned by the
	// previous close stays valid until the close after next.
	agg      []KeyStat
	aggSpare []KeyStat
	// drop is the merge's reusable Δkey membership set (changed ∪
	// retired), probed once per retained aggregate entry.
	drop KeySet
}

// cell is one key's interval accumulator. epoch stamps the interval of
// the last touch: a live cell with a stale epoch carries already
//-harvested values and is logically absent from the current interval.
type cell struct {
	key   tuple.Key
	live  bool
	epoch uint64
	cost  int64
	freq  int64
	mem   int64
}

// cellTab is a power-of-two open-addressed table with linear probing
// and backward-shift deletion. It exists because the tracker update is
// on the engine's per-tuple path: upsert is a splitmix hash, a masked
// index and (almost always) one cache line touched.
type cellTab struct {
	cells  []cell
	mask   uint64
	n      int
	growAt int
}

const cellTabMinSize = 64

func (t *cellTab) init(size int) {
	t.cells = make([]cell, size)
	t.mask = uint64(size - 1)
	t.n = 0
	t.growAt = size * 3 / 4
}

// upsert returns the live cell for k, inserting a zero cell if absent.
// The pointer is valid until the next upsert (which may grow the
// table).
func (t *cellTab) upsert(k tuple.Key) *cell {
	if t.cells == nil {
		t.init(cellTabMinSize)
	} else if t.n >= t.growAt {
		t.grow()
	}
	i := cellHash(k) & t.mask
	for {
		c := &t.cells[i]
		if !c.live {
			c.key = k
			c.live = true
			t.n++
			return c
		}
		if c.key == k {
			return c
		}
		i = (i + 1) & t.mask
	}
}

// lookup returns k's live cell, or nil.
func (t *cellTab) lookup(k tuple.Key) *cell {
	if t.n == 0 {
		return nil
	}
	i := cellHash(k) & t.mask
	for {
		c := &t.cells[i]
		if !c.live {
			return nil
		}
		if c.key == k {
			return c
		}
		i = (i + 1) & t.mask
	}
}

func (t *cellTab) grow() {
	old := t.cells
	t.init(len(old) * 2)
	for i := range old {
		if old[i].live {
			c := t.upsert(old[i].key)
			*c = old[i]
		}
	}
}

// reset clears every cell, keeping capacity.
func (t *cellTab) reset() {
	for i := range t.cells {
		t.cells[i] = cell{}
	}
	t.n = 0
}

// del removes k's cell, if present, restoring the probe invariant by
// backward-shifting any displaced successors into the hole.
func (t *cellTab) del(k tuple.Key) {
	if t.n == 0 {
		return
	}
	i := cellHash(k) & t.mask
	for t.cells[i].key != k || !t.cells[i].live {
		if !t.cells[i].live {
			return
		}
		i = (i + 1) & t.mask
	}
	t.n--
	j := i
	for {
		j = (j + 1) & t.mask
		if !t.cells[j].live {
			break
		}
		h := cellHash(t.cells[j].key) & t.mask
		if (j-h)&t.mask >= (j-i)&t.mask {
			t.cells[i] = t.cells[j]
			i = j
		}
	}
	t.cells[i] = cell{}
}

// each calls fn for every live cell, current-epoch or stale.
func (t *cellTab) each(fn func(*cell)) {
	for i := range t.cells {
		if t.cells[i].live {
			fn(&t.cells[i])
		}
	}
}

// cellHash is splitmix64, matching the ring's key mixing: fast and
// well-distributed for the small-integer keys synthetic workloads use.
func cellHash(k tuple.Key) uint64 {
	x := uint64(k) + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewTracker returns a tracker keeping a state window of w intervals.
// w < 1 is clamped to 1 (the paper's minimum, instantaneous state).
func NewTracker(w int) *Tracker {
	if w < 1 {
		w = 1
	}
	return &Tracker{
		window: w,
		epoch:  1,
		hist:   make([]map[tuple.Key]int64, w),
	}
}

// Window returns w.
func (t *Tracker) Window() int { return t.window }

// SetRetain selects the tracker's harvest mode. Must be called on a
// fresh tracker (before the first observation or close): the retained
// aggregate is built forward from the dirty sets, so switching modes
// mid-stream would start it from a hole.
func (t *Tracker) SetRetain(m RetainMode) error {
	if m == t.retain {
		return nil
	}
	if t.finished != 0 || len(t.dirty) != 0 {
		return fmt.Errorf("stats: SetRetain on a tracker with history (finished=%d, dirty=%d)", t.finished, len(t.dirty))
	}
	t.retain = m
	if m == RetainScan && t.aggMap == nil {
		t.aggMap = make(map[tuple.Key]KeyStat)
	}
	return nil
}

// Retain returns the tracker's harvest mode.
func (t *Tracker) Retain() RetainMode { return t.retain }

// Epoch returns the identifier the *next* close will carry (the
// in-progress interval's epoch plus the closes already taken).
func (t *Tracker) Epoch() uint64 { return t.epoch }

// touch returns k's current-interval cell, resetting a stale one and
// chaining the key into the dirty list on its first touch of the
// interval.
func (t *Tracker) touch(k tuple.Key) *cell {
	c := t.cur.upsert(k)
	if c.epoch != t.epoch {
		c.epoch = t.epoch
		c.cost, c.freq, c.mem = 0, 0, 0
		t.dirty = append(t.dirty, k)
	}
	return c
}

// Observe charges one tuple's cost and state to its key in the current
// interval.
func (t *Tracker) Observe(tp tuple.Tuple) {
	t.ObserveKey(tp.Key, tp.Cost, tp.StateSize)
}

// ObserveKey charges cost and state directly, letting workload drivers
// skip tuple construction in tight loops.
func (t *Tracker) ObserveKey(k tuple.Key, cost, state int64) {
	c := t.touch(k)
	c.cost += cost
	c.freq++
	c.mem += state
}

// ObserveBatch folds a whole batch of tuples into the current interval
// with one call, the entry point the engine's task loop uses so tracker
// accounting is amortized across every tuple of a channel message. It
// returns the batch's total cost, already read during the single pass,
// so callers charging processed-cost accounting need no second pass.
func (t *Tracker) ObserveBatch(ts []tuple.Tuple) int64 {
	tab := &t.cur
	if tab.cells == nil {
		tab.init(cellTabMinSize)
	}
	cells, mask := tab.cells, tab.mask
	epoch := t.epoch
	var total int64
	for i := range ts {
		// Grow on demand, sized by live keys — not by batch length,
		// which over-allocates badly when a huge batch cycles few keys.
		if tab.n >= tab.growAt {
			tab.grow()
			cells, mask = tab.cells, tab.mask
		}
		k := ts[i].Key
		j := cellHash(k) & mask
		for {
			c := &cells[j]
			if c.live {
				if c.key == k {
					if c.epoch == epoch {
						c.cost += ts[i].Cost
						c.freq++
						c.mem += ts[i].StateSize
					} else {
						// Stale cell from an already-harvested interval:
						// first touch of this interval resets and chains.
						c.epoch = epoch
						c.cost = ts[i].Cost
						c.freq = 1
						c.mem = ts[i].StateSize
						t.dirty = append(t.dirty, k)
					}
					break
				}
				j = (j + 1) & mask
				continue
			}
			c.key = k
			c.live = true
			tab.n++
			c.epoch = epoch
			c.cost = ts[i].Cost
			c.freq = 1
			c.mem = ts[i].StateSize
			t.dirty = append(t.dirty, k)
			break
		}
		total += ts[i].Cost
	}
	return total
}

// AbsorbKey folds an already-aggregated (cost, freq, mem) contribution
// into k's current-interval cell. The hot-key fold-back path uses it
// to charge a split key's replica work to the key's home task before
// harvest: the adds are plain integer sums, so absorbing replica
// deltas in any order yields the same cell an unsplit run would have
// accumulated tuple by tuple.
func (t *Tracker) AbsorbKey(k tuple.Key, cost, freq, mem int64) {
	if cost == 0 && freq == 0 && mem == 0 {
		return
	}
	c := t.touch(k)
	c.cost += cost
	c.freq += freq
	c.mem += mem
}

// DropKey forgets all history for k. The state store calls this when a
// key's state migrates away so the source task stops reporting it; in
// a retained mode the key is also queued for retirement so the next
// close removes it from the aggregate (and the delta report tells the
// controller's mirror to do the same).
func (t *Tracker) DropKey(k tuple.Key) {
	if c := t.cur.lookup(k); c != nil {
		if c.epoch == t.epoch {
			t.dirtyDropped++
		}
		t.cur.del(k)
	}
	if t.retain != RetainOff {
		t.retired = append(t.retired, k)
	}
	for _, h := range t.hist {
		delete(h, k)
	}
}

// AdoptKey seeds windowed memory for a key that just migrated in, so
// S(k,w) remains continuous across migration. The memory is recorded in
// the most recently finished interval slot (or the current one if none
// has finished yet). In a retained mode the key is additionally
// touched, so the adopting task's very next close reports it (zero
// cost, migrated windowed memory) instead of leaving a population gap
// until its next tuple — the retiring side's DropKey and this touch
// keep the aggregates coherent across a migration.
func (t *Tracker) AdoptKey(k tuple.Key, mem int64) {
	if t.finished == 0 {
		t.touch(k).mem += mem
		return
	}
	last := (t.next - 1 + t.window) % t.window
	if t.hist[last] == nil {
		t.hist[last] = make(map[tuple.Key]int64)
	}
	t.hist[last][k] += mem
	if t.retain != RetainOff {
		t.touch(k)
	}
}

// harvestDirty calls fn once per key touched this interval, in chain
// order, skipping keys whose cell was dropped after the touch. The
// dedup map is only built when a DropKey actually created a possible
// duplicate this interval.
func (t *Tracker) harvestDirty(fn func(k tuple.Key, c *cell)) {
	if t.dirtyDropped == 0 {
		for _, k := range t.dirty {
			if c := t.cur.lookup(k); c != nil && c.epoch == t.epoch {
				fn(k, c)
			}
		}
		return
	}
	seen := make(map[tuple.Key]struct{}, len(t.dirty))
	for _, k := range t.dirty {
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		if c := t.cur.lookup(k); c != nil && c.epoch == t.epoch {
			fn(k, c)
		}
	}
}

// rollWindow rolls the just-finished interval's state sizes into the
// ring, evicting the slot from w intervals ago (the paper's model:
// state from T_{i-w} is erased after T_i completes).
func (t *Tracker) rollWindow() {
	slot := make(map[tuple.Key]int64, len(t.dirty))
	t.harvestDirty(func(k tuple.Key, c *cell) {
		slot[k] = c.mem
	})
	t.hist[t.next] = slot
	t.next = (t.next + 1) % t.window
	t.finished++
}

// closeInterval advances the epoch and clears the per-interval
// bookkeeping; the stale cells stay in place until their next touch.
func (t *Tracker) closeInterval() {
	t.epoch++
	t.dirty = t.dirty[:0]
	t.dirtyDropped = 0
	t.retired = t.retired[:0]
}

// EndInterval closes the current interval, rolls the state window and
// returns the per-key statistics of the finished interval: cost c(k),
// frequency g(k) and the windowed memory S(k, w) including the interval
// just finished. Only the interval's dirty keys are visited — the
// close costs O(touched keys), not O(table capacity).
func (t *Tracker) EndInterval() map[tuple.Key]KeyStat {
	t.rollWindow()
	out := make(map[tuple.Key]KeyStat, len(t.dirty))
	t.harvestDirty(func(k tuple.Key, c *cell) {
		out[k] = KeyStat{Key: k, Cost: c.cost, Freq: c.freq, Mem: t.WindowedMem(k)}
	})
	t.closeInterval()
	return out
}

// Delta is one retained close's change set against the previous close:
// the keys touched (or adopted) during the finished interval with
// their fresh statistics, the keys retired since, and the epoch
// identifying the close. A consumer holding the previous close's run
// reconstructs the new one exactly by removing Retired ∪ keys(Changed)
// and merging Changed in under the canonical KeyStatLess order — the
// controller-side protocol.Mirror does precisely that.
type Delta struct {
	Epoch   uint64
	Changed []KeyStat   // sorted by KeyStatLess
	Retired []tuple.Key // ascending, deduplicated, re-added keys pruned
}

// EndIntervalRetained closes the current interval in a retained mode:
// the window rolls exactly as EndInterval's does, and the returned run
// lists the task's whole tracked population — keys untouched this
// interval carry their last-reported statistics forward — sorted by
// KeyStatLess. stamp (optional) resolves Dest/Hash on each changed
// entry before it enters the aggregate; carried entries keep the stamp
// of their last change (see Restamp for the resize-time refresh).
//
// Under RetainMerge the run is a copy-on-write view of the persistent
// aggregate: treat it as read-only; it stays valid until the close
// after next. Under RetainScan (the oracle) the run is rebuilt from
// scratch. Both modes return byte-identical runs and deltas for
// identical histories.
func (t *Tracker) EndIntervalRetained(stamp func(*KeyStat)) ([]KeyStat, Delta) {
	if t.retain == RetainOff {
		panic("stats: EndIntervalRetained requires SetRetain")
	}
	t.rollWindow()
	changed := make([]KeyStat, 0, len(t.dirty))
	t.harvestDirty(func(k tuple.Key, c *cell) {
		ks := KeyStat{Key: k, Cost: c.cost, Freq: c.freq, Mem: t.WindowedMem(k)}
		if stamp != nil {
			stamp(&ks)
		}
		changed = append(changed, ks)
	})
	SortByCostDesc(changed)
	retired := t.pruneRetired()
	t.closeInterval()
	d := Delta{Epoch: t.epoch, Changed: changed, Retired: retired}

	if t.retain == RetainScan {
		for _, k := range retired {
			delete(t.aggMap, k)
		}
		for _, ks := range changed {
			t.aggMap[ks.Key] = ks
		}
		run := make([]KeyStat, 0, len(t.aggMap))
		for _, ks := range t.aggMap {
			run = append(run, ks)
		}
		SortByCostDesc(run)
		return run, d
	}
	return t.mergeAggregate(changed, retired), d
}

// pruneRetired deduplicates the interval's retirement queue, drops
// keys that came back (their live cell means the changed set carries a
// fresh entry) and returns the survivors in ascending order.
func (t *Tracker) pruneRetired() []tuple.Key {
	if len(t.retired) == 0 {
		return nil
	}
	seen := make(map[tuple.Key]struct{}, len(t.retired))
	out := make([]tuple.Key, 0, len(t.retired))
	for _, k := range t.retired {
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		if t.cur.lookup(k) != nil {
			continue
		}
		out = append(out, k)
	}
	if len(out) == 0 {
		return nil
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// mergeAggregate folds one close's changed/retired sets into the
// persistent sorted aggregate with a single linear merge into the
// spare buffer, then swaps buffers. Keys are unique within a task and
// every entry carries the same Dest, so KeyStatLess is a strict total
// order and the merge reproduces exactly what a full re-sort would.
func (t *Tracker) mergeAggregate(changed []KeyStat, retired []tuple.Key) []KeyStat {
	if len(changed) == 0 && len(retired) == 0 {
		return t.agg
	}
	// The skip scan probes once per retained aggregate entry, so the
	// Δkey set must stay cache-resident: a compact reusable KeySet over
	// changed ∪ retired, not a scratch map rebuilt every close.
	t.drop.Reset(len(changed) + len(retired))
	for i := range changed {
		t.drop.Add(changed[i].Key)
	}
	for _, k := range retired {
		t.drop.Add(k)
	}
	out := t.aggSpare[:0]
	i := 0
	for _, ks := range t.agg {
		if t.drop.Has(ks.Key) {
			continue
		}
		for i < len(changed) && KeyStatLess(changed[i], ks) {
			out = append(out, changed[i])
			i++
		}
		out = append(out, ks)
	}
	out = append(out, changed[i:]...)
	t.aggSpare = t.agg
	t.agg = out
	return out
}

// Restamp re-resolves each retained aggregate entry's stamp (Dest and
// hash destination) in place. The stage calls it after a ring resize:
// carried entries keep the stamp of their last change, and a
// grown/shrunk ring moves hash destinations of keys that never
// migrate. Order is preserved — the stamp never changes Cost, Key or
// Dest-within-a-task, the components KeyStatLess orders by.
func (t *Tracker) Restamp(stamp func(*KeyStat)) {
	if stamp == nil {
		return
	}
	switch t.retain {
	case RetainScan:
		for k, ks := range t.aggMap {
			stamp(&ks)
			t.aggMap[k] = ks
		}
	case RetainMerge:
		for i := range t.agg {
			stamp(&t.agg[i])
		}
	}
}

// TopK returns the n hottest keys of the interval in progress without
// closing it: the nonzero-cost subset of the map EndInterval would
// return right now (same cost/freq, same post-roll windowed memory),
// ordered by SortByCostDesc and cut to n — computed with one bounded
// min-heap over the interval's dirty keys, O(touched · log n) time and
// O(n) allocation. Zero-cost cells are never candidates: a retired or
// merely-adopted cell carries no load evidence, and surfacing it would
// let delta retirement resurrect dead keys in the hot-key detector's
// input. The detector polls TopK every interval.
func (t *Tracker) TopK(n int) []KeyStat {
	if n <= 0 || len(t.dirty) == 0 {
		return nil
	}
	// colder orders by the inverse of KeyStatLess (Dest is zero for
	// every candidate, matching EndInterval's map), so the heap root is
	// always the weakest current member.
	colder := func(a, b KeyStat) bool {
		if a.Cost != b.Cost {
			return a.Cost < b.Cost
		}
		return a.Key > b.Key
	}
	heap := make([]KeyStat, 0, n)
	t.harvestDirty(func(_ tuple.Key, c *cell) {
		if c.cost == 0 {
			return
		}
		ks := KeyStat{Key: c.key, Cost: c.cost, Freq: c.freq, Mem: c.mem}
		if len(heap) < n {
			heap = append(heap, ks)
			for i := len(heap) - 1; i > 0; {
				p := (i - 1) / 2
				if !colder(heap[i], heap[p]) {
					break
				}
				heap[i], heap[p] = heap[p], heap[i]
				i = p
			}
			return
		}
		if !colder(heap[0], ks) {
			return
		}
		heap[0] = ks
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(heap) && colder(heap[l], heap[m]) {
				m = l
			}
			if r < len(heap) && colder(heap[r], heap[m]) {
				m = r
			}
			if m == i {
				break
			}
			heap[i], heap[m] = heap[m], heap[i]
			i = m
		}
	})
	if len(heap) == 0 {
		return nil
	}
	// EndInterval reports Mem post-roll: the current interval's state
	// lands in slot t.next (evicting the interval from w ago) and then
	// S(k, w) sums the whole ring. Equivalently, for a live cell: its
	// current mem plus every finished slot except the one about to be
	// evicted.
	for i := range heap {
		for j, h := range t.hist {
			if j == t.next {
				continue
			}
			heap[i].Mem += h[heap[i].Key]
		}
	}
	SortByCostDesc(heap)
	return heap
}

// WindowedMem returns S(k, w) = Σ_{j=i-w+1..i} s_j(k) over the finished
// intervals currently in the window.
func (t *Tracker) WindowedMem(k tuple.Key) int64 {
	var s int64
	for _, h := range t.hist {
		s += h[k]
	}
	return s
}

// Finished returns the number of completed intervals.
func (t *Tracker) Finished() int64 { return t.finished }

// Keys returns every key with any recorded history in ascending order.
// In the default mode that is current-interval observations or
// windowed memory in a finished slot — stale cells (keys whose last
// touch was an already-harvested interval and whose window has
// drained) are skipped, so a retired key cannot resurrect in scale-in
// or detector input. In a retained mode the whole tracked population
// counts as history: scale-in must migrate the aggregate's keys along
// with everything else a retiring task reports.
func (t *Tracker) Keys() []tuple.Key {
	hint := t.cur.n
	for _, h := range t.hist {
		if len(h) > hint {
			hint = len(h)
		}
	}
	seen := make(map[tuple.Key]struct{}, hint)
	if t.retain == RetainOff {
		t.cur.each(func(c *cell) {
			if c.epoch == t.epoch {
				seen[c.key] = struct{}{}
			}
		})
	} else {
		// Every live cell is either dirty this interval or a member of
		// the retained aggregate (cells leave only through DropKey,
		// which also retires them).
		t.cur.each(func(c *cell) { seen[c.key] = struct{}{} })
	}
	for _, h := range t.hist {
		for k := range h {
			seen[k] = struct{}{}
		}
	}
	out := make([]tuple.Key, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Assigner resolves a key's current and hash destinations; the route
// package's Assignment satisfies it.
type Assigner interface {
	Dest(k tuple.Key) int
	HashDest(k tuple.Key) int
	Instances() int
}

// BuildSnapshot merges per-key stats (typically from Tracker.EndInterval,
// possibly from several tasks) into a planner-ready Snapshot, resolving
// each key's current and hash destinations through the assignment.
func BuildSnapshot(interval int64, perKey map[tuple.Key]KeyStat, asg Assigner) *Snapshot {
	s := &Snapshot{Interval: interval, ND: asg.Instances(), Keys: make([]KeyStat, 0, len(perKey))}
	for k, ks := range perKey {
		ks.Key = k
		ks.Dest = asg.Dest(k)
		ks.Hash = asg.HashDest(k)
		s.Keys = append(s.Keys, ks)
	}
	SortByCostDesc(s.Keys)
	return s
}

// MergeKeyStats adds src's per-key measurements into dst (cost, freq and
// memory are additive; destinations are resolved later by
// BuildSnapshot). Used by the controller to merge task-level reports.
func MergeKeyStats(dst, src map[tuple.Key]KeyStat) {
	for k, s := range src {
		d := dst[k]
		d.Key = k
		d.Cost += s.Cost
		d.Freq += s.Freq
		d.Mem += s.Mem
		dst[k] = d
	}
}
