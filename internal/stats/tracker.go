package stats

import (
	"repro/internal/tuple"
)

// Tracker accumulates per-key measurements inside the current interval
// and maintains a ring of the last w intervals so S(k, w) can be
// reported. One Tracker serves one operator; the engine's tasks feed it
// and the controller snapshots it at interval boundaries (step 1 of the
// Fig. 5 workflow).
//
// Tracker is not internally synchronized: in the engine each task owns
// a private Tracker and the controller merges them, mirroring the
// paper's per-instance load-reporting module.
type Tracker struct {
	window int
	// cur accumulates the in-progress interval.
	cur map[tuple.Key]*cell
	// hist[j] holds a finished interval's per-key state sizes; the ring
	// covers the last `window` finished intervals.
	hist []map[tuple.Key]int64
	// next is the ring index the next finished interval lands in.
	next int
	// finished counts completed intervals (for Interval stamping).
	finished int64
}

type cell struct {
	cost int64
	freq int64
	mem  int64
}

// NewTracker returns a tracker keeping a state window of w intervals.
// w < 1 is clamped to 1 (the paper's minimum, instantaneous state).
func NewTracker(w int) *Tracker {
	if w < 1 {
		w = 1
	}
	return &Tracker{
		window: w,
		cur:    make(map[tuple.Key]*cell),
		hist:   make([]map[tuple.Key]int64, w),
	}
}

// Window returns w.
func (t *Tracker) Window() int { return t.window }

// Observe charges one tuple's cost and state to its key in the current
// interval.
func (t *Tracker) Observe(tp tuple.Tuple) {
	t.ObserveKey(tp.Key, tp.Cost, tp.StateSize)
}

// ObserveKey charges cost and state directly, letting workload drivers
// skip tuple construction in tight loops.
func (t *Tracker) ObserveKey(k tuple.Key, cost, state int64) {
	c := t.cur[k]
	if c == nil {
		c = &cell{}
		t.cur[k] = c
	}
	c.cost += cost
	c.freq++
	c.mem += state
}

// DropKey forgets all history for k. The state store calls this when a
// key's state migrates away so the source task stops reporting it.
func (t *Tracker) DropKey(k tuple.Key) {
	delete(t.cur, k)
	for _, h := range t.hist {
		delete(h, k)
	}
}

// AdoptKey seeds windowed memory for a key that just migrated in, so
// S(k,w) remains continuous across migration. The memory is recorded in
// the most recently finished interval slot (or the current one if none
// has finished yet).
func (t *Tracker) AdoptKey(k tuple.Key, mem int64) {
	if t.finished == 0 {
		c := t.cur[k]
		if c == nil {
			c = &cell{}
			t.cur[k] = c
		}
		c.mem += mem
		return
	}
	last := (t.next - 1 + t.window) % t.window
	if t.hist[last] == nil {
		t.hist[last] = make(map[tuple.Key]int64)
	}
	t.hist[last][k] += mem
}

// EndInterval closes the current interval, rolls the state window and
// returns the per-key statistics of the finished interval: cost c(k),
// frequency g(k) and the windowed memory S(k, w) including the interval
// just finished.
func (t *Tracker) EndInterval() map[tuple.Key]KeyStat {
	// Roll the just-finished interval's state sizes into the ring,
	// evicting the slot from w intervals ago (the paper's model: state
	// from T_{i-w} is erased after T_i completes).
	slot := make(map[tuple.Key]int64, len(t.cur))
	for k, c := range t.cur {
		slot[k] = c.mem
	}
	t.hist[t.next] = slot
	t.next = (t.next + 1) % t.window
	t.finished++

	out := make(map[tuple.Key]KeyStat, len(t.cur))
	for k, c := range t.cur {
		out[k] = KeyStat{Key: k, Cost: c.cost, Freq: c.freq, Mem: t.WindowedMem(k)}
	}
	t.cur = make(map[tuple.Key]*cell)
	return out
}

// WindowedMem returns S(k, w) = Σ_{j=i-w+1..i} s_j(k) over the finished
// intervals currently in the window.
func (t *Tracker) WindowedMem(k tuple.Key) int64 {
	var s int64
	for _, h := range t.hist {
		s += h[k]
	}
	return s
}

// Finished returns the number of completed intervals.
func (t *Tracker) Finished() int64 { return t.finished }

// Assigner resolves a key's current and hash destinations; the route
// package's Assignment satisfies it.
type Assigner interface {
	Dest(k tuple.Key) int
	HashDest(k tuple.Key) int
	Instances() int
}

// BuildSnapshot merges per-key stats (typically from Tracker.EndInterval,
// possibly from several tasks) into a planner-ready Snapshot, resolving
// each key's current and hash destinations through the assignment.
func BuildSnapshot(interval int64, perKey map[tuple.Key]KeyStat, asg Assigner) *Snapshot {
	s := &Snapshot{Interval: interval, ND: asg.Instances(), Keys: make([]KeyStat, 0, len(perKey))}
	for k, ks := range perKey {
		ks.Key = k
		ks.Dest = asg.Dest(k)
		ks.Hash = asg.HashDest(k)
		s.Keys = append(s.Keys, ks)
	}
	SortByCostDesc(s.Keys)
	return s
}

// MergeKeyStats adds src's per-key measurements into dst (cost, freq and
// memory are additive; destinations are resolved later by
// BuildSnapshot). Used by the controller to merge task-level reports.
func MergeKeyStats(dst, src map[tuple.Key]KeyStat) {
	for k, s := range src {
		d := dst[k]
		d.Key = k
		d.Cost += s.Cost
		d.Freq += s.Freq
		d.Mem += s.Mem
		dst[k] = d
	}
}
