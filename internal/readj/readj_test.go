package readj

import (
	"math/rand"
	"testing"

	"repro/internal/balance"
	"repro/internal/stats"
	"repro/internal/tuple"
)

func mk(nd int, rows ...[5]int64) *stats.Snapshot {
	s := &stats.Snapshot{ND: nd}
	for _, r := range rows {
		s.Keys = append(s.Keys, stats.KeyStat{
			Key: tuple.Key(r[0]), Cost: r[1], Freq: r[1], Mem: r[2],
			Dest: int(r[3]), Hash: int(r[4]),
		})
	}
	stats.SortByCostDesc(s.Keys)
	return s
}

func TestReadjBalancesUniformHotKeys(t *testing.T) {
	// Readj's sweet spot: near-uniform key weights. Six keys of cost
	// 10, four on d0 and two on d1 → a single move fixes it.
	snap := mk(2,
		[5]int64{1, 10, 10, 0, 0},
		[5]int64{2, 10, 10, 0, 0},
		[5]int64{3, 10, 10, 0, 0},
		[5]int64{4, 10, 10, 0, 0},
		[5]int64{5, 10, 10, 1, 1},
		[5]int64{6, 10, 10, 1, 1},
	)
	plan := Planner{Sigma: 0.1}.Plan(snap, balance.Config{ThetaMax: 0, Beta: 1})
	if plan.Loads[0] != 30 || plan.Loads[1] != 30 {
		t.Fatalf("Readj loads = %v, want [30 30]", plan.Loads)
	}
	if len(plan.Moved) != 1 {
		t.Fatalf("Readj moved %d keys, one move suffices", len(plan.Moved))
	}
}

func TestReadjMovesBackFirst(t *testing.T) {
	// A routed key whose hash home has room must return home (Readj's
	// restore bias), shrinking the table.
	snap := mk(2,
		[5]int64{1, 5, 5, 0, 1}, // routed to d0, hash home d1
		[5]int64{2, 5, 5, 0, 0},
		[5]int64{3, 5, 5, 1, 1},
	)
	plan := Planner{Sigma: 0.1}.Plan(snap, balance.Config{ThetaMax: 0.5, Beta: 1})
	if _, ok := plan.Table.Lookup(1); ok {
		t.Fatalf("key 1 still routed; Readj should move it back (table %d)", plan.Table.Len())
	}
}

func TestReadjFailsOnSkewedGranularity(t *testing.T) {
	// The paper's critique: when key weights vary wildly, move/swap over
	// hot keys cannot reach tight balance. One cost-90 key + many
	// cost-1 keys on two instances: perfect balance needs fine-grained
	// redistribution Readj won't find with a high σ.
	rows := [][5]int64{{1, 90, 90, 0, 0}}
	for i := int64(2); i < 32; i++ {
		rows = append(rows, [5]int64{i, 1, 1, 0, 0})
	}
	snap := mk(2, rows...)
	plan := Planner{Sigma: 0.5}.Plan(snap, balance.Config{ThetaMax: 0.02, Beta: 1})
	if plan.Feasible {
		t.Fatalf("Readj(σ=0.5) claimed feasibility on pathological granularity (θ=%v)", plan.OverloadTheta)
	}
}

func TestReadjConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		nd := 2 + rng.Intn(6)
		snap := &stats.Snapshot{ND: nd}
		for i := 0; i < 150; i++ {
			c := int64(1 + rng.Intn(40))
			hash := rng.Intn(nd)
			dest := hash
			if rng.Intn(4) == 0 {
				dest = rng.Intn(nd)
			}
			snap.Keys = append(snap.Keys, stats.KeyStat{
				Key: tuple.Key(i), Cost: c, Mem: c, Dest: dest, Hash: hash,
			})
		}
		stats.SortByCostDesc(snap.Keys)
		plan := Planner{Sigma: 0.05}.Plan(snap, balance.Config{ThetaMax: 0.1, Beta: 1})

		loads := make([]int64, nd)
		var mig int64
		moved := make(map[tuple.Key]bool)
		for _, k := range plan.Moved {
			moved[k] = true
		}
		for _, ks := range snap.Keys {
			d := ks.Hash
			if td, ok := plan.Table.Lookup(ks.Key); ok {
				d = td
			}
			loads[d] += ks.Cost
			if d != ks.Dest {
				if !moved[ks.Key] {
					t.Fatalf("trial %d: key %d moved but not reported", trial, ks.Key)
				}
				mig += ks.Mem
			}
		}
		if mig != plan.MigrationCost {
			t.Fatalf("trial %d: migration %d, recomputed %d", trial, plan.MigrationCost, mig)
		}
		for d := range loads {
			if loads[d] != plan.Loads[d] {
				t.Fatalf("trial %d: loads mismatch at %d", trial, d)
			}
		}
	}
}

func TestTunePicksBestSigma(t *testing.T) {
	// With mixed granularity, small σ must beat large σ; Tune should
	// return a plan at least as balanced as any single σ run.
	rows := [][5]int64{{1, 50, 50, 0, 0}, {2, 30, 30, 0, 0}}
	for i := int64(3); i < 43; i++ {
		rows = append(rows, [5]int64{i, 2, 2, 0, 0})
	}
	snap := mk(2, rows...)
	cfg := balance.Config{ThetaMax: 0.05, Beta: 1}
	best := Tune(snap, cfg, nil)
	coarse := Planner{Sigma: 0.5}.Plan(snap, cfg)
	if best.MaxTheta > coarse.MaxTheta+1e-9 {
		t.Fatalf("Tune θ=%v worse than σ=0.5 θ=%v", best.MaxTheta, coarse.MaxTheta)
	}
}

func TestReadjDeterministic(t *testing.T) {
	snap := mk(3,
		[5]int64{1, 20, 20, 0, 0}, [5]int64{2, 15, 15, 0, 0},
		[5]int64{3, 10, 10, 1, 1}, [5]int64{4, 5, 5, 2, 2},
	)
	cfg := balance.Config{ThetaMax: 0.05, Beta: 1}
	a := Planner{Sigma: 0.1}.Plan(snap, cfg)
	b := Planner{Sigma: 0.1}.Plan(snap, cfg)
	if a.MigrationCost != b.MigrationCost || a.MaxTheta != b.MaxTheta {
		t.Fatal("Readj non-deterministic")
	}
}
