package readj

import (
	"math/rand"
	"testing"

	"repro/internal/balance"
	"repro/internal/stats"
	"repro/internal/tuple"
)

func benchSnapshot(nk int) *stats.Snapshot {
	rng := rand.New(rand.NewSource(1))
	s := &stats.Snapshot{ND: 10}
	for i := 0; i < nk; i++ {
		cost := int64(1 + rng.Intn(4))
		if i < nk/50+1 {
			cost = int64(50 + rng.Intn(200))
		}
		hash := rng.Intn(10)
		s.Keys = append(s.Keys, stats.KeyStat{
			Key: tuple.Key(i), Cost: cost, Mem: cost, Dest: hash, Hash: hash,
		})
	}
	stats.SortByCostDesc(s.Keys)
	return s
}

func BenchmarkReadjPlan10k(b *testing.B) {
	snap := benchSnapshot(10000)
	cfg := balance.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Planner{Sigma: 0.1}.Plan(snap, cfg)
	}
}

func BenchmarkReadjTune10k(b *testing.B) {
	snap := benchSnapshot(10000)
	cfg := balance.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Tune(snap, cfg, nil)
	}
}
