// Package readj reimplements the Readj baseline (Gedik, "Partitioning
// functions for stateful data parallelism in stream processing", VLDBJ
// 23(4), 2014) as characterized in §I/§VI of the reproduced paper:
//
//   - it uses the same hash + explicit-table partitioning function;
//   - rebalance first tries to move routed keys back to their hash
//     destinations, then searches migrations over the *hot* keys only —
//     those whose load is at least σ·L̄ — by pairing tasks and keys and
//     evaluating all single-key moves and pairwise swaps, applying the
//     best improvement until balance is reached or no move helps.
//
// The exhaustive pairing is what makes Readj slow under high churn
// (Fig. 12) and ineffective when hot keys alone cannot restore balance
// (Fig. 14): both behaviours emerge from this implementation.
package readj

import (
	"sort"
	"time"

	"repro/internal/balance"
	"repro/internal/route"
	"repro/internal/stats"
	"repro/internal/tuple"
)

// Planner runs the Readj heuristic. Sigma is the hot-key threshold: a
// key participates in moves/swaps when c(k) ≥ Sigma·L̄. The paper tunes
// σ per experiment by binary search; SigmaCandidates in this package's
// Tune helper mirrors that.
type Planner struct {
	Sigma float64
	// MaxIters bounds the improvement loop; ≤ 0 selects a default
	// proportional to the candidate count.
	MaxIters int
}

// Name implements balance.Planner.
func (p Planner) Name() string { return "Readj" }

type keyView struct {
	key  tuple.Key
	cost int64
	mem  int64
	orig int
	hash int
	cur  int
}

// Plan implements balance.Planner.
func (p Planner) Plan(snap *stats.Snapshot, cfg balance.Config) *balance.Plan {
	start := time.Now()
	nd := snap.ND
	keys := make([]keyView, len(snap.Keys))
	loads := make([]int64, nd)
	var total int64
	for i, ks := range snap.Keys {
		keys[i] = keyView{key: ks.Key, cost: ks.Cost, mem: ks.Mem, orig: ks.Dest, hash: ks.Hash, cur: ks.Dest}
		loads[ks.Dest] += ks.Cost
		total += ks.Cost
	}
	avg := float64(total) / float64(nd)
	lmax := (1 + cfg.ThetaMax) * avg

	// Step 1: restore routed keys to their hash destination whenever the
	// receiving instance stays within Lmax — Readj's bias toward a small
	// routing table.
	for i := range keys {
		k := &keys[i]
		if k.cur != k.hash && float64(loads[k.hash])+float64(k.cost) <= lmax {
			loads[k.cur] -= k.cost
			loads[k.hash] += k.cost
			k.cur = k.hash
		}
	}

	// Hot-key candidate set: c(k) ≥ σ·L̄.
	thresh := p.Sigma * avg
	var hot []int
	for i := range keys {
		if float64(keys[i].cost) >= thresh {
			hot = append(hot, i)
		}
	}
	sort.Slice(hot, func(a, b int) bool { return keys[hot[a]].cost > keys[hot[b]].cost })

	maxIters := p.MaxIters
	if maxIters <= 0 {
		maxIters = 4*len(hot) + 64
	}

	// Improvement loop: each round scans every (hot key → instance) move
	// and every hot-key pair swap, applying the single change that most
	// reduces the maximum load. This O(|hot|²) pairing per round is the
	// published algorithm's cost profile.
	for iter := 0; iter < maxIters; iter++ {
		maxLoad := loads[0]
		for _, l := range loads {
			if l > maxLoad {
				maxLoad = l
			}
		}
		if float64(maxLoad) <= lmax {
			break
		}
		bestGain := int64(0)
		bestMove := -1
		bestDest := -1
		bestSwapA, bestSwapB := -1, -1
		// Single moves.
		for _, i := range hot {
			k := &keys[i]
			if loads[k.cur] != maxLoad {
				continue
			}
			for d := 0; d < nd; d++ {
				if d == k.cur {
					continue
				}
				newSrc := loads[k.cur] - k.cost
				newDst := loads[d] + k.cost
				newMax := max64(newSrc, newDst)
				if gain := maxLoad - newMax; gain > bestGain {
					bestGain, bestMove, bestDest = gain, i, d
					bestSwapA, bestSwapB = -1, -1
				}
			}
		}
		// Pairwise swaps.
		for ai := 0; ai < len(hot); ai++ {
			a := &keys[hot[ai]]
			if loads[a.cur] != maxLoad {
				continue
			}
			for bi := 0; bi < len(hot); bi++ {
				b := &keys[hot[bi]]
				if b.cur == a.cur || b.cost >= a.cost {
					continue
				}
				diff := a.cost - b.cost
				newSrc := loads[a.cur] - diff
				newDst := loads[b.cur] + diff
				newMax := max64(newSrc, newDst)
				if gain := maxLoad - newMax; gain > bestGain {
					bestGain = gain
					bestMove, bestDest = -1, -1
					bestSwapA, bestSwapB = hot[ai], hot[bi]
				}
			}
		}
		if bestGain <= 0 {
			break // no improving move among hot keys
		}
		if bestMove >= 0 {
			k := &keys[bestMove]
			loads[k.cur] -= k.cost
			loads[bestDest] += k.cost
			k.cur = bestDest
		} else {
			a, b := &keys[bestSwapA], &keys[bestSwapB]
			loads[a.cur] -= a.cost
			loads[b.cur] -= b.cost
			a.cur, b.cur = b.cur, a.cur
			loads[a.cur] += a.cost
			loads[b.cur] += b.cost
		}
	}

	plan := &balance.Plan{
		Algorithm: "Readj",
		Table:     route.NewTable(),
		MoveDest:  make(map[tuple.Key]int),
		Loads:     loads,
	}
	for i := range keys {
		k := &keys[i]
		if k.cur != k.hash {
			plan.Table.Put(k.key, k.cur)
		}
		if k.cur != k.orig {
			plan.Moved = append(plan.Moved, k.key)
			plan.MoveDest[k.key] = k.cur
			plan.MigrationCost += k.mem
		}
	}
	sort.Slice(plan.Moved, func(a, b int) bool { return plan.Moved[a] < plan.Moved[b] })
	plan.MaxTheta = stats.MaxTheta(loads)
	plan.OverloadTheta = stats.OverloadTheta(loads)
	plan.Feasible = plan.OverloadTheta <= cfg.ThetaMax+1e-9
	plan.GenTime = time.Since(start)
	return plan
}

// Tune runs the planner over a ladder of σ values and returns the plan
// with the best balance (ties: least migration), mirroring the paper's
// "run Readj with different σs and report the best result".
func Tune(snap *stats.Snapshot, cfg balance.Config, sigmas []float64) *balance.Plan {
	if len(sigmas) == 0 {
		sigmas = []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.5}
	}
	start := time.Now()
	var best *balance.Plan
	for _, s := range sigmas {
		p := Planner{Sigma: s}.Plan(snap, cfg)
		if best == nil || p.MaxTheta < best.MaxTheta ||
			(p.MaxTheta == best.MaxTheta && p.MigrationCost < best.MigrationCost) {
			best = p
		}
	}
	best.GenTime = time.Since(start)
	return best
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
