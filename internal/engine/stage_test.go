package engine

import (
	"testing"

	"repro/internal/route"
	"repro/internal/tuple"
)

// Second round of engine coverage: flush hooks, model edges, guard
// paths and idempotent teardown.

type flushOp struct {
	flushed int
}

func (f *flushOp) Process(ctx *TaskCtx, t tuple.Tuple) {}
func (f *flushOp) FlushInterval(ctx *TaskCtx) {
	f.flushed++
	ctx.Emit(tuple.New(99, "flush"))
}

func TestFlushOpsRunsOnIntervalFlushers(t *testing.T) {
	op := &flushOp{}
	st := NewStage("f", 1, func(int) Operator { return op }, 1, newAsgRouter(1))
	defer st.Stop()
	st.Feed(tuple.New(1, nil))
	st.Barrier()
	st.FlushOps()
	if op.flushed != 1 {
		t.Fatalf("flushed %d times, want 1", op.flushed)
	}
	out := st.DrainEmitted()
	if len(out) != 1 || out[0].Key != 99 {
		t.Fatalf("flush emission lost: %v", out)
	}
}

func TestFlushOpsSkipsPlainOperators(t *testing.T) {
	st := NewStage("p", 1, func(int) Operator { return Discard }, 1, newAsgRouter(1))
	defer st.Stop()
	st.FlushOps() // must not panic or emit
	if out := st.DrainEmitted(); len(out) != 0 {
		t.Fatalf("plain operator emitted %d tuples on flush", len(out))
	}
}

func TestStageStopIdempotent(t *testing.T) {
	st := statefulStage(2, 1)
	st.Stop()
	st.Stop() // second call must be a no-op, not a close-panic
}

func TestEngineStopIdempotent(t *testing.T) {
	e := New(func() tuple.Tuple { return tuple.New(1, nil) }, DefaultConfig(), statefulStage(1, 1))
	e.Stop()
	e.Stop()
}

func TestRunIntervalAfterStopPanics(t *testing.T) {
	e := New(func() tuple.Tuple { return tuple.New(1, nil) }, DefaultConfig(), statefulStage(1, 1))
	e.Stop()
	defer func() {
		if recover() == nil {
			t.Fatal("RunInterval after Stop did not panic")
		}
	}()
	e.RunInterval()
}

func TestApplyPlanWithoutAssignmentRouterErrors(t *testing.T) {
	st := NewStage("s", 2, func(int) Operator { return Discard }, 1, NewShuffleRouter(2))
	defer st.Stop()
	if _, err := st.ApplyPlan(nil); err == nil {
		t.Fatal("ApplyPlan on shuffle stage did not error")
	}
}

func TestScaleOutWithoutRingErrors(t *testing.T) {
	// An assignment router over a non-ring hasher cannot grow.
	r := NewAssignmentRouter(route.NewAssignment(route.NewTable(), route.ModHasher(2)))
	st := NewStage("s", 2, func(int) Operator { return Discard }, 1, r)
	defer st.Stop()
	if _, err := st.ScaleOut(); err == nil {
		t.Fatal("ScaleOut without a ring did not error")
	}
	if st.Instances() != 2 {
		t.Fatalf("failed ScaleOut changed instance count to %d", st.Instances())
	}
}

func TestThrottleFloor(t *testing.T) {
	// A hopelessly overloaded single instance: emission must throttle
	// but never below 10% of the budget.
	st := statefulStage(2, 1)
	cfg := DefaultConfig()
	cfg.Budget = 1000
	e := New(func() tuple.Tuple { return tuple.New(7, nil) }, cfg, st)
	defer e.Stop()
	e.Run(20)
	last := e.Recorder.Series[19]
	if last.Emitted >= 1000 {
		t.Fatal("spout never throttled")
	}
	if last.Emitted < 100 {
		t.Fatalf("throttle floor breached: emitted %d", last.Emitted)
	}
}

func TestLatencyGrowsWithBacklog(t *testing.T) {
	st := statefulStage(2, 1)
	cfg := DefaultConfig()
	cfg.Budget = 1000
	e := New(func() tuple.Tuple { return tuple.New(7, nil) }, cfg, st)
	defer e.Stop()
	e.Run(2)
	if e.Recorder.Series[1].LatencyMs <= e.Recorder.Series[0].LatencyMs {
		t.Fatalf("latency did not grow with backlog: %v then %v",
			e.Recorder.Series[0].LatencyMs, e.Recorder.Series[1].LatencyMs)
	}
}

func TestMigrationPenaltyConsumesCapacityOnce(t *testing.T) {
	st := statefulStage(2, 1)
	cfg := DefaultConfig()
	cfg.Budget = 1000
	cfg.MigrationFactor = 1
	e := New(func() tuple.Tuple { return tuple.New(tuple.Key(len(st.Backlog)), nil) }, cfg, st)
	defer e.Stop()
	st.MigPenalty[0] = 100
	e.RunInterval()
	if st.MigPenalty[0] != 0 {
		t.Fatal("migration penalty not reset after being charged")
	}
}

func TestCapacityAccessors(t *testing.T) {
	st := statefulStage(4, 1)
	cfg := DefaultConfig()
	cfg.Budget = 4000
	e := New(func() tuple.Tuple { return tuple.New(1, nil) }, cfg, st)
	defer e.Stop()
	if got := e.CapacityOf(0); got != 1000 {
		t.Fatalf("CapacityOf = %d, want saturation 1000", got)
	}
	e.RunInterval()
	if e.LastEmitted() != 4000 {
		t.Fatalf("LastEmitted = %d", e.LastEmitted())
	}
	if e.Interval() != 1 {
		t.Fatalf("Interval = %d", e.Interval())
	}
}

func TestExplicitCapacityOverride(t *testing.T) {
	st := statefulStage(4, 1)
	cfg := DefaultConfig()
	cfg.Budget = 4000
	cfg.Capacity = 99
	e := New(func() tuple.Tuple { return tuple.New(1, nil) }, cfg, st)
	defer e.Stop()
	if got := e.CapacityOf(0); got != 99 {
		t.Fatalf("CapacityOf = %d, want explicit 99", got)
	}
}

func TestLastSnapshotsExposed(t *testing.T) {
	st := statefulStage(2, 1)
	cfg := DefaultConfig()
	cfg.Budget = 100
	e := New(func() tuple.Tuple { return tuple.New(5, nil) }, cfg, st)
	defer e.Stop()
	e.RunInterval()
	snaps := e.LastSnapshots()
	if len(snaps) != 1 || len(snaps[0].Keys) != 1 || snaps[0].Keys[0].Key != 5 {
		t.Fatalf("LastSnapshots = %+v", snaps)
	}
}

func TestAdvanceWorkloadCalledPerInterval(t *testing.T) {
	st := statefulStage(1, 1)
	cfg := DefaultConfig()
	cfg.Budget = 10
	e := New(func() tuple.Tuple { return tuple.New(1, nil) }, cfg, st)
	defer e.Stop()
	var calls []int64
	e.AdvanceWorkload = func(i int64) { calls = append(calls, i) }
	e.Run(3)
	if len(calls) != 3 || calls[0] != 1 || calls[2] != 3 {
		t.Fatalf("AdvanceWorkload calls = %v", calls)
	}
}

func TestShuffleRouterRoundRobin(t *testing.T) {
	r := NewShuffleRouter(3)
	counts := make([]int, 3)
	for i := 0; i < 300; i++ {
		counts[r.Route(tuple.New(7, nil))]++
	}
	for d, c := range counts {
		if c != 100 {
			t.Fatalf("shuffle instance %d got %d of 300", d, c)
		}
	}
}

func TestAssignmentRouterSwap(t *testing.T) {
	ar := newAsgRouter(2)
	old := ar.Assignment()
	tab := route.NewTable()
	tab.Put(5, 1)
	ar.Swap(route.NewAssignment(tab, old.Hasher()))
	if ar.Route(tuple.New(5, nil)) != 1 {
		t.Fatal("swapped assignment not in effect")
	}
}
