package engine

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/balance"
	"repro/internal/state"
	"repro/internal/stats"
	"repro/internal/tuple"
)

// Tests of hot-key splitting: split-routed tuples must fan out across
// the replica set, fold back into the home task at interval close with
// exact tracker/state/operator accounting, pin split keys against
// rebalance plans, and survive split churn concurrent with continuous
// rebalancing under live traffic (run under -race by the suite).

// splitCountOp counts per key like countingOp and implements the
// SplitFolder contract: the replica delta is the tuple count, folded
// back as count + windowed state.
type splitCountOp struct {
	countingOp
}

func (s *splitCountOp) SplitAbsorb(t tuple.Tuple) int64 { return 1 }

func (s *splitCountOp) SplitMerge(ctx *TaskCtx, k tuple.Key, delta, freq, mem int64) {
	if freq == 0 {
		return
	}
	s.counts[k] += delta
	ctx.Store.Add(k, state.Entry{Value: delta, Size: mem})
}

func splitCountStage(nd int) (*Stage, []*splitCountOp) {
	fleet := make([]*splitCountOp, nd)
	st := NewStage("hk", nd, func(id int) Operator {
		fleet[id] = &splitCountOp{countingOp{counts: make(map[tuple.Key]int64)}}
		return fleet[id]
	}, 2, newAsgRouter(nd))
	return st, fleet
}

// TestSplitFoldsBackExactly pins the fold-back accounting: a split
// key's tuples absorbed on replicas land, after CloseInterval, on the
// home task only — operator count, windowed state and tracker cell all
// exactly as fed.
func TestSplitFoldsBackExactly(t *testing.T) {
	const nd = 4
	st, fleet := splitCountStage(nd)
	defer st.Stop()
	if err := st.SetPauseFree(true); err != nil {
		t.Fatal(err)
	}
	hot := tuple.Key(7)
	if err := st.ApplySplitSet([]stats.HotKey{{Key: hot, Fan: 3}}); err != nil {
		t.Fatal(err)
	}
	if ks := st.SplitKeys(); len(ks) != 1 || ks[0] != hot {
		t.Fatalf("SplitKeys = %v, want [%d]", ks, hot)
	}

	const n = 600
	for i := 0; i < n; i++ {
		st.Feed(tuple.New(hot, i))
		st.Feed(tuple.New(tuple.Key(i%50)+100, i))
	}
	st.Barrier()

	home := st.AssignmentRouter().Assignment().Dest(hot)
	// Pre-fold: the home's operator saw only the share round-robined to
	// it; the rest sits in replica cells.
	if got := fleet[home].counts[hot]; got >= n {
		t.Fatalf("home processed %d of %d split-key tuples before fold; replicas absorbed nothing", got, n)
	}

	st.CloseInterval()
	snap := st.EndInterval(1)

	var total int64
	for d, op := range fleet {
		if d != home && op.counts[hot] != 0 {
			t.Fatalf("replica %d retained %d counts for split key after fold", d, op.counts[hot])
		}
		total += op.counts[hot]
	}
	if total != n {
		t.Fatalf("split key count %d after fold, fed %d", total, n)
	}
	for d := 0; d < nd; d++ {
		want := int64(0)
		if d == home {
			want = n
		}
		if got := st.StoreOf(d).Size(hot); got != want {
			t.Fatalf("instance %d holds %d state units for split key, want %d", d, got, want)
		}
	}
	for _, ks := range snap.Keys {
		if ks.Key != hot {
			continue
		}
		if ks.Cost != n || ks.Freq != n || ks.Dest != home {
			t.Fatalf("harvest for split key: %+v, want cost=freq=%d dest=%d", ks, n, home)
		}
		return
	}
	t.Fatalf("split key missing from harvest")
}

// TestSplitRetireExtractsResidue pins the swap-grace-extract path: a
// key leaving the split set mid-interval has its unfolded replica
// residue merged home immediately, not lost.
func TestSplitRetireExtractsResidue(t *testing.T) {
	st, fleet := splitCountStage(4)
	defer st.Stop()
	if err := st.SetPauseFree(true); err != nil {
		t.Fatal(err)
	}
	hot := tuple.Key(3)
	if err := st.ApplySplitSet([]stats.HotKey{{Key: hot, Fan: 4}}); err != nil {
		t.Fatal(err)
	}
	const n = 400
	for i := 0; i < n; i++ {
		st.Feed(tuple.New(hot, i))
	}
	st.Barrier()
	// Unsplit without an interval close in between: retirement must
	// extract the cells.
	if err := st.ApplySplitSet(nil); err != nil {
		t.Fatal(err)
	}
	if ks := st.SplitKeys(); ks != nil {
		t.Fatalf("SplitKeys = %v after full retire", ks)
	}
	st.Barrier()
	var total int64
	for _, op := range fleet {
		total += op.counts[hot]
	}
	if total != n {
		t.Fatalf("count %d after retire, fed %d", total, n)
	}
	home := st.AssignmentRouter().Assignment().Dest(hot)
	if got := st.StoreOf(home).Size(hot); got != n {
		t.Fatalf("home state %d after retire, want %d", got, n)
	}
}

// TestSplitPinsKeysAgainstPlans pins the stage-level plan guard: a
// rebalance plan that tries to migrate a split key has that move
// stripped (counted in SplitPinned) and the key's routing left at its
// home, while the plan's other moves apply normally.
func TestSplitPinsKeysAgainstPlans(t *testing.T) {
	st, _ := splitCountStage(4)
	defer st.Stop()
	if err := st.SetPauseFree(true); err != nil {
		t.Fatal(err)
	}
	for k := tuple.Key(0); k < 20; k++ {
		st.Feed(tuple.New(k, nil))
	}
	st.Barrier()

	hot, cold := tuple.Key(5), tuple.Key(11)
	if err := st.ApplySplitSet([]stats.HotKey{{Key: hot, Fan: 2}}); err != nil {
		t.Fatal(err)
	}
	asg := st.AssignmentRouter().Assignment()
	home := asg.Dest(hot)
	tab := asg.Table().Clone()
	plan := &balance.Plan{Table: tab, MoveDest: map[tuple.Key]int{}}
	for _, k := range []tuple.Key{hot, cold} {
		dst := (asg.Dest(k) + 1) % 4
		tab.Put(k, dst)
		plan.Moved = append(plan.Moved, k)
		plan.MoveDest[k] = dst
	}
	if _, err := st.ApplyPlan(plan); err != nil {
		t.Fatal(err)
	}
	if st.SplitPinned() != 1 {
		t.Fatalf("SplitPinned = %d, want 1", st.SplitPinned())
	}
	cur := st.AssignmentRouter().Assignment()
	if cur.Dest(hot) != home {
		t.Fatalf("split key moved from %d to %d despite guard", home, cur.Dest(hot))
	}
	if cur.Dest(cold) != plan.MoveDest[cold] {
		t.Fatalf("cold key at %d, plan wanted %d", cur.Dest(cold), plan.MoveDest[cold])
	}
}

// TestSplitStressWithContinuousRebalance is the -race stress of split
// churn composed with live migration: four feeders emit a viral-key
// mix while a controller goroutine alternates rebalance plans (some
// deliberately targeting split keys) with split-set changes — arm,
// fan growth, retire. Every tuple must be counted exactly once and
// every key's state must end at its routed home.
func TestSplitStressWithContinuousRebalance(t *testing.T) {
	const (
		nd        = 4
		feeders   = 4
		keyDomain = 60
		chunk     = 64
		minChunks = 8
		rounds    = 16
	)
	st, fleet := splitCountStage(nd)
	defer st.Stop()
	if err := st.SetPauseFree(true); err != nil {
		t.Fatal(err)
	}

	// Preload so plans migrate real state.
	pre := make([]tuple.Tuple, 2*keyDomain)
	for i := range pre {
		pre[i] = tuple.New(tuple.Key(i%keyDomain), i)
	}
	st.FeedBatch(pre)
	st.Barrier()

	// Controller: alternate split-set changes (split keys 0 and 1 at
	// varying fans, then retire) with plans rotating a stripe of the
	// domain — including, every round, an attempt to move the split
	// keys themselves, which the guard must pin.
	splitSets := [][]stats.HotKey{
		{{Key: 0, Fan: 2}},
		{{Key: 0, Fan: 3}, {Key: 1, Fan: 2}},
		{{Key: 1, Fan: 4}},
		nil,
	}
	stop := make(chan struct{})
	var ctlWg sync.WaitGroup
	ctlWg.Add(1)
	go func() {
		defer ctlWg.Done()
		defer close(stop)
		for i := 0; i < rounds; i++ {
			if err := st.ApplySplitSet(splitSets[i%len(splitSets)]); err != nil {
				t.Errorf("ApplySplitSet: %v", err)
				return
			}
			asg := st.AssignmentRouter().Assignment()
			tab := asg.Table().Clone()
			plan := &balance.Plan{Table: tab, MoveDest: map[tuple.Key]int{}}
			for k := tuple.Key(i % 5); k < keyDomain; k += 5 {
				dst := (asg.Dest(k) + 1) % nd
				tab.Put(k, dst)
				plan.Moved = append(plan.Moved, k)
				plan.MoveDest[k] = dst
			}
			if _, err := st.ApplyPlan(plan); err != nil {
				t.Errorf("ApplyPlan: %v", err)
				return
			}
			if i%4 == 3 {
				st.CloseInterval() // exercise the mid-churn fold too
			}
		}
	}()

	// Feeders: every other tuple hits the viral keys 0/1.
	var seq atomic.Uint64
	shards := ShardSpout(func(dst []tuple.Tuple) int {
		for i := range dst {
			n := seq.Add(1) - 1
			k := tuple.Key(n % keyDomain)
			if n%2 == 0 {
				k = tuple.Key(n % 4 / 2) // keys 0 and 1
			}
			dst[i] = tuple.New(k, n)
		}
		return len(dst)
	}, feeders)
	var wg sync.WaitGroup
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func(sb SpoutBatch) {
			defer wg.Done()
			buf := make([]tuple.Tuple, chunk)
			for j := 0; ; j++ {
				if j >= minChunks {
					select {
					case <-stop:
						return
					default:
					}
				}
				got := sb(buf[:chunk])
				st.FeedBatch(buf[:got])
				time.Sleep(time.Millisecond)
			}
		}(shards[f])
	}
	ctlWg.Wait()
	wg.Wait()
	if t.Failed() {
		return
	}

	// Drain and fold everything back.
	st.Barrier()
	if err := st.ApplySplitSet(nil); err != nil {
		t.Fatal(err)
	}
	st.CloseInterval()

	fedPerKey := make(map[tuple.Key]int64)
	for i := range pre {
		fedPerKey[pre[i].Key]++
	}
	total := int64(seq.Load())
	for n := int64(0); n < total; n++ {
		k := tuple.Key(n % keyDomain)
		if n%2 == 0 {
			k = tuple.Key(n % 4 / 2)
		}
		fedPerKey[k]++
	}
	got := make(map[tuple.Key]int64)
	for _, op := range fleet {
		for k, n := range op.counts {
			got[k] += n
		}
	}
	for k, n := range fedPerKey {
		if got[k] != n {
			t.Fatalf("key %d counted %d times, fed %d (loss or double-count)", k, got[k], n)
		}
	}
	if len(got) != len(fedPerKey) {
		t.Fatalf("key cardinality: fed %d, counted %d", len(fedPerKey), len(got))
	}

	// Placement: all state at each key's routed home, volumes exact.
	cur := st.AssignmentRouter().Assignment()
	var totalState int64
	for k := tuple.Key(0); k < keyDomain; k++ {
		home := cur.Dest(k)
		for d := 0; d < nd; d++ {
			sz := st.StoreOf(d).Size(k)
			totalState += sz
			if d != home && sz != 0 {
				t.Fatalf("key %d leaked %d state units on instance %d (home %d)", k, sz, d, home)
			}
		}
	}
	if want := int64(len(pre)) + total; totalState != want {
		t.Fatalf("total state %d, want %d", totalState, want)
	}
}
