package engine

// Hot-key splitting: the stage-side half of the dynamic per-key
// replication protocol. A split key's tuples fan out round-robin
// across a replica set on the wait-free feed path (route.SplitTable,
// published through the same generation-stamped atomic pointer as the
// routing assignment); replicas reduce them into commutative delta
// cells (task.absorbSplit); and foldSplits drains the cells back into
// the key's home task before statistics harvest and interval flush, so
// every observable — interval series, snapshots, routing tables, final
// aggregates — is bit-identical to an unsplit run. The throughput win
// is physical: the hot key's work actually executes on Fan goroutines
// instead of one.
//
// Split transitions ride the pause-free migration machinery:
// publishing a split set is arm-then-swap (cells armed over the task
// FIFOs before the generation swap, exactly like handoff buffers), and
// retiring one is swap-then-grace-then-extract (the old generation's
// epoch counter proves no feeder can still pick a retired replica).

import (
	"fmt"
	"runtime"
	"sort"

	"repro/internal/route"
	"repro/internal/stats"
	"repro/internal/tuple"
)

// ApplySplitSet publishes a new hot-key split set, replacing the
// current one: keys present in set become (or stay) split with the
// given fan, keys absent fold back into their home task for good.
// Each key's home and replica ring are resolved from the assignment
// live at apply time, so an announcement composes correctly with a
// rebalance plan applied earlier in the same control round. Safe to
// call from a controller goroutine concurrent with feeding. Requires
// the pause-free protocol (the pausing oracle predates splitting and
// stays split-free).
func (s *Stage) ApplySplitSet(set []stats.HotKey) error {
	ar := s.AssignmentRouter()
	if ar == nil {
		return fmt.Errorf("engine: stage %q has no assignment router; cannot split keys", s.Name)
	}
	if !s.pauseFree.Load() {
		return fmt.Errorf("engine: stage %q: hot-key splitting requires pause-free migration", s.Name)
	}
	s.migMu.Lock()
	defer s.migMu.Unlock()
	s.applySplitSetLocked(set, ar)
	return nil
}

func (s *Stage) applySplitSetLocked(set []stats.HotKey, ar *AssignmentRouter) {
	old := ar.Assignment()
	oldSt := old.Splits()
	nd := len(s.tasks)

	// Build the next split table. Unchanged entries keep their Split
	// object (round-robin cursor and armed replicas survive); new or
	// fan-grown entries get a fresh replica ring anchored at the key's
	// current home.
	var nst *route.SplitTable
	if nd >= 2 {
		for _, hk := range set {
			home := old.Dest(hk.Key)
			fan := hk.Fan
			if fan < 2 {
				fan = 2
			}
			if fan > nd {
				fan = nd
			}
			if nst == nil {
				nst = route.NewSplitTable()
			}
			if oldSt != nil {
				if sp, ok := oldSt.Lookup(hk.Key); ok && sp.Home == home && sp.Fan() == fan {
					nst.Put(sp)
					continue
				}
			}
			nst.Put(route.NewSplit(hk.Key, home, fan, nd))
		}
	}
	if oldSt == nil && nst == nil {
		return
	}

	// Arm delta cells on every replica not already armed for its key —
	// fire-and-forget thunks queued ahead of the swap, so FIFO makes
	// the cells exist before the first split-routed tuple is dequeued.
	if nst != nil {
		armPer := make(map[int][]tuple.Key)
		nst.Each(func(sp *route.Split) {
			var oldReps []int
			if oldSt != nil {
				if o, ok := oldSt.Lookup(sp.Key); ok {
					oldReps = o.Replicas
				}
			}
			for _, d := range sp.Replicas {
				if !containsDest(oldReps, d) {
					armPer[d] = append(armPer[d], sp.Key)
				}
			}
		})
		for d, keys := range armPer {
			s.tasks[d].armSplit(keys)
		}
	}

	// Publish: same table and hasher, new split set, generation g+1.
	next := route.NewAssignment(old.Table(), old.Hasher())
	next.SetSplits(nst)
	ar.Swap(next)

	// Retirements: keys leaving the set (and any replica dropped from a
	// surviving key's ring) must have their cells extracted — but only
	// after the grace period proves no old-generation feeder can still
	// pick a retired replica.
	type retirement struct {
		k    tuple.Key
		home int
		reps []int // replicas to extract from (full set when unsplitting)
	}
	var rets []retirement
	if oldSt != nil {
		oldSt.Each(func(sp *route.Split) {
			var newReps []int
			if nst != nil {
				if n, ok := nst.Lookup(sp.Key); ok {
					newReps = n.Replicas
				}
			}
			var drop []int
			for _, d := range sp.Replicas {
				if !containsDest(newReps, d) {
					drop = append(drop, d)
				}
			}
			if len(drop) > 0 {
				rets = append(rets, retirement{k: sp.Key, home: sp.Home, reps: drop})
			}
		})
	}
	if len(rets) == 0 {
		return
	}
	sort.Slice(rets, func(i, j int) bool { return rets[i].k < rets[j].k })
	oldSlot := int(old.Gen() & 1)
	for s.genInflight[oldSlot].Load() != 0 {
		runtime.Gosched()
	}
	for _, r := range rets {
		var sum splitCell
		for _, d := range r.reps {
			t := s.tasks[d]
			t.barrier(func(*TaskCtx) {
				if c, ok := t.split[r.k]; ok {
					sum.delta += c.delta
					sum.cost += c.cost
					sum.freq += c.freq
					sum.mem += c.mem
					delete(t.split, r.k)
				}
			})
		}
		if sum.zero() {
			continue
		}
		home := s.tasks[r.home]
		home.barrier(func(ctx *TaskCtx) {
			mergeSplitCell(home, ctx, r.k, sum)
		})
	}
}

// foldSplits drains every replica's delta cells and merges them into
// each key's home task — the fold-back step of the split protocol,
// run before interval flush and statistics harvest so the home task's
// canonical state, tracker cell and processed-work accounting end the
// interval exactly as an unsplit run's would. Keys stay armed; a cell
// already drained (or never fed) contributes nothing, which makes the
// fold idempotent across the close/flush/harvest call sites.
func (s *Stage) foldSplits() {
	ar := s.AssignmentRouter()
	if ar == nil {
		return
	}
	s.migMu.Lock()
	defer s.migMu.Unlock()
	st := ar.Assignment().Splits()
	if st == nil {
		return
	}
	// Collect concurrently: each task drains its own cells under a
	// barrier thunk (FIFO puts the drain after every enqueued tuple).
	perTask := make([]map[tuple.Key]splitCell, len(s.tasks))
	dones := make([]chan struct{}, 0, len(s.tasks))
	for i, t := range s.tasks {
		i, t := i, t
		dones = append(dones, t.barrierAsync(func(*TaskCtx) {
			if len(t.split) == 0 {
				return
			}
			m := make(map[tuple.Key]splitCell, len(t.split))
			for k, c := range t.split {
				if c.zero() {
					continue
				}
				m[k] = *c
				*c = splitCell{}
			}
			perTask[i] = m
		}))
	}
	for _, d := range dones {
		<-d
	}
	agg := make(map[tuple.Key]splitCell)
	for _, m := range perTask {
		for k, c := range m {
			a := agg[k]
			a.delta += c.delta
			a.cost += c.cost
			a.freq += c.freq
			a.mem += c.mem
			agg[k] = a
		}
	}
	if len(agg) == 0 {
		return
	}
	// Merge per home task, keys ascending, all homes concurrently —
	// deterministic per-task merge order, one barrier round total.
	asg := ar.Assignment()
	perHome := make(map[int][]tuple.Key)
	for k := range agg {
		home := asg.Dest(k)
		if sp, ok := st.Lookup(k); ok {
			home = sp.Home
		}
		perHome[home] = append(perHome[home], k)
	}
	mdones := make([]chan struct{}, 0, len(perHome))
	for home, keys := range perHome {
		home, keys := home, keys
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		t := s.tasks[home]
		mdones = append(mdones, t.barrierAsync(func(ctx *TaskCtx) {
			for _, k := range keys {
				mergeSplitCell(t, ctx, k, agg[k])
			}
		}))
	}
	for _, d := range mdones {
		<-d
	}
}

// mergeSplitCell applies one key's summed replica contribution on the
// home task's goroutine: tracker and processed-work attribution (the
// arrival side was charged to the home at feed time), then the
// operator's own fold. Plain integer adds end to end — commutative, so
// replica and fold order never show in any observable.
func mergeSplitCell(t *task, ctx *TaskCtx, k tuple.Key, c splitCell) {
	ctx.Tracker.AbsorbKey(k, c.cost, c.freq, c.mem)
	ctx.ProcessedCost += c.cost
	ctx.ProcessedTuples += c.freq
	if t.folder != nil {
		t.folder.SplitMerge(ctx, k, c.delta, c.freq, c.mem)
	}
}

// clearSplits folds back and retires the entire split set — the
// actuator resizes run before touching the ring, since a replica set
// anchored to a changing instance count would go stale. The detector
// re-splits survivors on the next interval's evidence.
func (s *Stage) clearSplits(ar *AssignmentRouter) {
	if ar == nil || ar.Assignment().Splits() == nil {
		return
	}
	s.migMu.Lock()
	defer s.migMu.Unlock()
	s.applySplitSetLocked(nil, ar)
}

// SplitKeys returns the currently split keys in ascending order (nil
// when none). The control plane stamps them into load reports so the
// controller's plan guard sees the live set.
func (s *Stage) SplitKeys() []tuple.Key {
	ar := s.AssignmentRouter()
	if ar == nil {
		return nil
	}
	st := ar.Assignment().Splits()
	if st == nil {
		return nil
	}
	return st.Keys()
}

// SplitPinned returns the cumulative count of rebalance-plan moves the
// stage refused because their key was split at apply time (the plan's
// table entry is pinned to the key's home instead) — the stage-level
// mirror of the controller's SplitPinned guard counter.
func (s *Stage) SplitPinned() int64 { return s.splitPinned.Load() }

func containsDest(reps []int, d int) bool {
	for _, r := range reps {
		if r == d {
			return true
		}
	}
	return false
}
