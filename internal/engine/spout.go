package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/tuple"
)

// This file is the emission plane: the serial single-feeder path and
// the Cfg.Feeders fan-out that splits each interval's budget across N
// spout goroutines. The stage side (FeedBatch) already tolerates
// concurrent callers; what the fan-out adds is N private scratch
// buffers and a partitioned draw, so routing, partitioning and channel
// sends — the bulk of emission cost — run in parallel while the draw
// itself stays a deterministic single sequence.

// ShardSpout splits one batch spout across n shards sharing a mutex:
// each shard call atomically claims the next len(dst) draws of the
// underlying sequence. Disjointness and the drawn multiset are exact —
// the union of B draws across shards is the first B draws of sb — so
// sharded emission keeps single-feeder statistics bit-identical; which
// segment lands on which shard depends on scheduling, which no
// consumer observes. A short draw latches exhaustion for every shard.
func ShardSpout(sb SpoutBatch, n int) []SpoutBatch {
	if n < 1 {
		n = 1
	}
	var mu sync.Mutex
	done := false
	draw := func(dst []tuple.Tuple) int {
		mu.Lock()
		defer mu.Unlock()
		if done {
			return 0
		}
		got := sb(dst)
		if got < len(dst) {
			done = true
		}
		return got
	}
	out := make([]SpoutBatch, n)
	for i := range out {
		out[i] = draw
	}
	return out
}

// AdaptShards converts plain sharded draw functions — the shape the
// workload generators' Shard methods return — into SpoutBatch values
// for Engine.SpoutShards.
func AdaptShards(fns []func(dst []tuple.Tuple) int) []SpoutBatch {
	out := make([]SpoutBatch, len(fns))
	for i, f := range fns {
		out[i] = f
	}
	return out
}

// batchSpout resolves the engine's draw source, wrapping a legacy
// per-tuple Spout when only that is configured.
func (e *Engine) batchSpout() SpoutBatch {
	if e.SpoutB != nil {
		return e.SpoutB
	}
	if e.Spout == nil {
		panic("engine: RunInterval with neither Spout nor SpoutB configured")
	}
	return BatchSpout(e.Spout)
}

// emit feeds emitN tuples of the current interval into stage 0 and
// returns how many were actually drawn (fewer when a finite source
// ends early).
func (e *Engine) emit(emitN int64) int64 {
	if e.emitter == nil {
		// Generator-provided shards cover the parallel draw on their
		// own; only resolve the unified spout when some path needs it.
		var sb SpoutBatch
		if e.Cfg.Feeders <= 1 || len(e.SpoutShards) == 0 {
			sb = e.batchSpout()
		}
		e.emitter = NewEmitter(e.Stages[0], sb, e.SpoutShards, e.Cfg.Feeders, e.Cfg.FeedLatency)
	}
	return e.emitter.Emit(e.interval, emitN)
}

// Emitter is the emission plane detached from the engine: it draws an
// interval's tuples from a (possibly sharded) spout and feeds them
// into any BatchSink in emitChunk-sized batches — the first stage of
// an in-process engine, or a cluster data connection fanning the same
// batches to a remote stage host. The engine and the cluster
// coordinator run this exact code, which is what pins their chunk
// boundaries (and hence shuffle routing and arrival accounting)
// bit-identical.
type Emitter struct {
	sink    BatchSink
	feeders int
	sb      SpoutBatch
	shards  []SpoutBatch
	scratch [][]tuple.Tuple
	// hists are the per-feeder feed-latency histograms (index 0 for the
	// serial path); nil when latency measurement is off.
	hists []metrics.LatencyHist
}

// NewEmitter builds an emission plane over sink. feeders ≤ 1 selects
// the serial path; with feeders > 1, shards (len == feeders) gives
// each feeder its own partitioned draw source, or nil wraps sb in a
// mutex sharder (ShardSpout), preserving the drawn multiset exactly.
func NewEmitter(sink BatchSink, sb SpoutBatch, shards []SpoutBatch, feeders int, feedLatency bool) *Emitter {
	if feeders < 1 {
		feeders = 1
	}
	em := &Emitter{sink: sink, sb: sb, feeders: feeders}
	if feeders > 1 {
		if len(shards) > 0 {
			if len(shards) != feeders {
				panic("engine: len(SpoutShards) must equal Cfg.Feeders")
			}
			em.shards = shards
		} else {
			em.shards = ShardSpout(sb, feeders)
		}
	}
	em.scratch = make([][]tuple.Tuple, feeders)
	if feedLatency {
		em.hists = make([]metrics.LatencyHist, feeders)
	}
	return em
}

// Emit feeds emitN tuples stamped with interval into the sink and
// returns how many were actually drawn (fewer when a finite source
// ends early). Dispatches between the serial path and the feeder
// fan-out.
func (em *Emitter) Emit(interval, emitN int64) int64 {
	if em.feeders > 1 {
		return em.emitParallel(interval, emitN)
	}
	return em.emitSerial(interval, emitN)
}

// HasLatency reports whether feed-latency histograms are collected.
func (em *Emitter) HasLatency() bool { return em.hists != nil }

// DrainLatency merges the interval's per-feeder feed-latency
// histograms into dst and resets them.
func (em *Emitter) DrainLatency(dst *metrics.LatencyHist) {
	for f := range em.hists {
		dst.Merge(&em.hists[f])
		em.hists[f].Reset()
	}
}

// feedTimed routes one chunk into the sink, wall-clock timing the feed
// call into hist when the feed-latency histogram is enabled (hist is
// owned by the calling feeder; no synchronization needed).
func (em *Emitter) feedTimed(buf []tuple.Tuple, hist *metrics.LatencyHist) {
	if hist == nil {
		em.sink.FeedBatch(buf)
		return
	}
	t0 := time.Now()
	em.sink.FeedBatch(buf)
	hist.Observe(time.Since(t0))
}

// emitSerial is the single-feeder emission loop, byte-for-byte the
// pre-fan-out engine behavior: one goroutine, one scratch buffer,
// emitChunk-sized draws.
func (em *Emitter) emitSerial(interval, emitN int64) int64 {
	sb := em.sb
	if cap(em.scratch[0]) < emitChunk {
		em.scratch[0] = make([]tuple.Tuple, emitChunk)
	}
	var hist *metrics.LatencyHist
	if em.hists != nil {
		hist = &em.hists[0]
	}
	for j := int64(0); j < emitN; {
		c := emitN - j
		if c > emitChunk {
			c = emitChunk
		}
		buf := em.scratch[0][:c]
		got := sb(buf)
		for i := 0; i < got; i++ {
			buf[i].EmitTick = interval
		}
		em.feedTimed(buf[:got], hist)
		j += int64(got)
		if int64(got) < c {
			return j
		}
	}
	return emitN
}

// emitParallel fans emission out to the feeder goroutines. The budget
// is split into per-feeder quotas before the fan-out (throttling has
// already shaped emitN), so each feeder knows its share up front and
// the fan-out needs no mid-interval coordination beyond the draw
// itself. Feeder f draws through its shard into its own scratch and
// calls FeedBatch concurrently with the others — safe per the stage's
// mu-guarded partition scratch and refcounted batch buffers (and the
// cluster BatchConn's send mutex).
func (em *Emitter) emitParallel(interval, emitN int64) int64 {
	feeders := em.feeders
	var wg sync.WaitGroup
	var total atomic.Int64
	quota := emitN / int64(feeders)
	rem := emitN % int64(feeders)
	for f := 0; f < feeders; f++ {
		q := quota
		if int64(f) < rem {
			q++
		}
		if q == 0 {
			continue
		}
		if cap(em.scratch[f]) < emitChunk {
			em.scratch[f] = make([]tuple.Tuple, emitChunk)
		}
		var hist *metrics.LatencyHist
		if em.hists != nil {
			hist = &em.hists[f]
		}
		wg.Add(1)
		go func(sb SpoutBatch, scratch []tuple.Tuple, q int64, hist *metrics.LatencyHist) {
			defer wg.Done()
			for j := int64(0); j < q; {
				c := q - j
				if c > emitChunk {
					c = emitChunk
				}
				buf := scratch[:c]
				got := sb(buf)
				for i := 0; i < got; i++ {
					buf[i].EmitTick = interval
				}
				em.feedTimed(buf[:got], hist)
				j += int64(got)
				total.Add(int64(got))
				if int64(got) < c {
					return
				}
			}
		}(em.shards[f], em.scratch[f], q, hist)
	}
	wg.Wait()
	return total.Load()
}
