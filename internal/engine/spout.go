package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/tuple"
)

// This file is the emission plane: the serial single-feeder path and
// the Cfg.Feeders fan-out that splits each interval's budget across N
// spout goroutines. The stage side (FeedBatch) already tolerates
// concurrent callers; what the fan-out adds is N private scratch
// buffers and a partitioned draw, so routing, partitioning and channel
// sends — the bulk of emission cost — run in parallel while the draw
// itself stays a deterministic single sequence.

// ShardSpout splits one batch spout across n shards sharing a mutex:
// each shard call atomically claims the next len(dst) draws of the
// underlying sequence. Disjointness and the drawn multiset are exact —
// the union of B draws across shards is the first B draws of sb — so
// sharded emission keeps single-feeder statistics bit-identical; which
// segment lands on which shard depends on scheduling, which no
// consumer observes. A short draw latches exhaustion for every shard.
func ShardSpout(sb SpoutBatch, n int) []SpoutBatch {
	if n < 1 {
		n = 1
	}
	var mu sync.Mutex
	done := false
	draw := func(dst []tuple.Tuple) int {
		mu.Lock()
		defer mu.Unlock()
		if done {
			return 0
		}
		got := sb(dst)
		if got < len(dst) {
			done = true
		}
		return got
	}
	out := make([]SpoutBatch, n)
	for i := range out {
		out[i] = draw
	}
	return out
}

// AdaptShards converts plain sharded draw functions — the shape the
// workload generators' Shard methods return — into SpoutBatch values
// for Engine.SpoutShards.
func AdaptShards(fns []func(dst []tuple.Tuple) int) []SpoutBatch {
	out := make([]SpoutBatch, len(fns))
	for i, f := range fns {
		out[i] = f
	}
	return out
}

// batchSpout resolves the engine's draw source, wrapping a legacy
// per-tuple Spout when only that is configured.
func (e *Engine) batchSpout() SpoutBatch {
	if e.SpoutB != nil {
		return e.SpoutB
	}
	if e.Spout == nil {
		panic("engine: RunInterval with neither Spout nor SpoutB configured")
	}
	return BatchSpout(e.Spout)
}

// emit feeds emitN tuples of the current interval into stage 0 and
// returns how many were actually drawn (fewer when a finite source
// ends early). Dispatches between the serial path and the feeder
// fan-out on Cfg.Feeders.
func (e *Engine) emit(emitN int64) int64 {
	if e.Cfg.FeedLatency && e.feedHists == nil {
		n := e.Cfg.Feeders
		if n < 1 {
			n = 1
		}
		e.feedHists = make([]metrics.LatencyHist, n)
	}
	if e.Cfg.Feeders > 1 {
		return e.emitParallel(emitN)
	}
	return e.emitSerial(emitN)
}

// feedTimed routes one chunk into stage 0, wall-clock timing the feed
// call into hist when the feed-latency histogram is enabled (hist is
// owned by the calling feeder; no synchronization needed).
func (e *Engine) feedTimed(buf []tuple.Tuple, hist *metrics.LatencyHist) {
	if hist == nil {
		e.Stages[0].FeedBatch(buf)
		return
	}
	t0 := time.Now()
	e.Stages[0].FeedBatch(buf)
	hist.Observe(time.Since(t0))
}

// emitSerial is the single-feeder emission loop, byte-for-byte the
// pre-fan-out engine behavior: one goroutine, one scratch buffer,
// emitChunk-sized draws.
func (e *Engine) emitSerial(emitN int64) int64 {
	sb := e.batchSpout()
	if cap(e.scratch) < emitChunk {
		e.scratch = make([]tuple.Tuple, emitChunk)
	}
	var hist *metrics.LatencyHist
	if e.feedHists != nil {
		hist = &e.feedHists[0]
	}
	for j := int64(0); j < emitN; {
		c := emitN - j
		if c > emitChunk {
			c = emitChunk
		}
		buf := e.scratch[:c]
		got := sb(buf)
		for i := 0; i < got; i++ {
			buf[i].EmitTick = e.interval
		}
		e.feedTimed(buf[:got], hist)
		j += int64(got)
		if int64(got) < c {
			return j
		}
	}
	return emitN
}

// emitParallel fans emission out to Cfg.Feeders goroutines. The budget
// is split into per-feeder quotas before the fan-out (throttling has
// already shaped emitN), so each feeder knows its share up front and
// the fan-out needs no mid-interval coordination beyond the draw
// itself. Feeder f draws through its shard into its own scratch and
// calls FeedBatch concurrently with the others — safe per the stage's
// mu-guarded partition scratch and refcounted batch buffers.
func (e *Engine) emitParallel(emitN int64) int64 {
	feeders := e.Cfg.Feeders
	if e.feedShards == nil {
		if len(e.SpoutShards) > 0 {
			if len(e.SpoutShards) != feeders {
				panic("engine: len(SpoutShards) must equal Cfg.Feeders")
			}
			e.feedShards = e.SpoutShards
		} else {
			e.feedShards = ShardSpout(e.batchSpout(), feeders)
		}
		e.feedScratch = make([][]tuple.Tuple, feeders)
	}
	interval := e.interval
	var wg sync.WaitGroup
	var total atomic.Int64
	quota := emitN / int64(feeders)
	rem := emitN % int64(feeders)
	for f := 0; f < feeders; f++ {
		q := quota
		if int64(f) < rem {
			q++
		}
		if q == 0 {
			continue
		}
		if cap(e.feedScratch[f]) < emitChunk {
			e.feedScratch[f] = make([]tuple.Tuple, emitChunk)
		}
		var hist *metrics.LatencyHist
		if e.feedHists != nil {
			hist = &e.feedHists[f]
		}
		wg.Add(1)
		go func(sb SpoutBatch, scratch []tuple.Tuple, q int64, hist *metrics.LatencyHist) {
			defer wg.Done()
			for j := int64(0); j < q; {
				c := q - j
				if c > emitChunk {
					c = emitChunk
				}
				buf := scratch[:c]
				got := sb(buf)
				for i := 0; i < got; i++ {
					buf[i].EmitTick = interval
				}
				e.feedTimed(buf[:got], hist)
				j += int64(got)
				total.Add(int64(got))
				if int64(got) < c {
					return
				}
			}
		}(e.feedShards[f], e.feedScratch[f], q, hist)
	}
	wg.Wait()
	return total.Load()
}
