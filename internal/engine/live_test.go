package engine

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/balance"
	"repro/internal/route"
	"repro/internal/state"
	"repro/internal/tuple"
)

// Tests of the live (no-global-barrier) rebalance path: migration
// concurrent with traffic, run under the race detector by the suite.

func TestApplyPlanLiveConcurrentWithTraffic(t *testing.T) {
	var processed atomic.Int64
	st := NewStage("live", 4, func(int) Operator {
		return OperatorFunc(func(ctx *TaskCtx, tp tuple.Tuple) {
			ctx.Store.Add(tp.Key, state.Entry{Value: tp.Value, Size: tp.StateSize})
			processed.Add(1)
		})
	}, 3, newAsgRouter(4))
	defer st.Stop()

	const hot = tuple.Key(42)
	const total = 20000

	// Feeder goroutine: continuous traffic, half on the hot key.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			k := hot
			if i%2 == 1 {
				k = tuple.Key(1000 + i%997) // disjoint from the hot key
			}
			st.Feed(tuple.New(k, i))
		}
	}()

	// Controller goroutine: after some traffic, live-migrate the hot
	// key to the instance after its current home.
	asg := st.AssignmentRouter().Assignment()
	src := asg.Dest(hot)
	dst := (src + 1) % 4
	tab := route.NewTable()
	tab.Put(hot, dst)
	for processed.Load() < total/4 {
	}
	moved, err := st.ApplyPlanLive(&balance.Plan{
		Table:    tab,
		Moved:    []tuple.Key{hot},
		MoveDest: map[tuple.Key]int{hot: dst},
	})
	if err != nil {
		t.Fatalf("ApplyPlanLive: %v", err)
	}
	if moved == 0 {
		t.Error("live migration moved no state despite hot-key traffic")
	}

	wg.Wait()
	st.Barrier()

	if got := processed.Load(); got != total {
		t.Fatalf("processed %d of %d tuples across live migration", got, total)
	}
	// All hot-key state must be on dst, none on src; totals must equal
	// the number of hot tuples (every tuple has state size 1).
	if leak := st.StoreOf(src).Size(hot); leak != 0 {
		t.Fatalf("source retains %d hot state units", leak)
	}
	wantHot := int64(total / 2)
	if got := st.StoreOf(dst).Size(hot); got != wantHot {
		t.Fatalf("dest hot state = %d, want %d", got, wantHot)
	}
	// Routing reflects the new table.
	if st.AssignmentRouter().Assignment().Dest(hot) != dst {
		t.Fatal("assignment not swapped")
	}
}

func TestApplyPlanLiveManyKeysUnderLoad(t *testing.T) {
	st := statefulStage(4, 2)
	defer st.Stop()
	// Preload 100 keys.
	for i := 0; i < 2000; i++ {
		st.Feed(tuple.New(tuple.Key(i%100), nil))
	}
	st.Barrier()

	// Move every fourth key one instance over, with traffic running.
	asg := st.AssignmentRouter().Assignment()
	tab := route.NewTable()
	plan := &balance.Plan{Table: tab, MoveDest: map[tuple.Key]int{}}
	for k := tuple.Key(0); k < 100; k += 4 {
		dst := (asg.Dest(k) + 1) % 4
		tab.Put(k, dst)
		plan.Moved = append(plan.Moved, k)
		plan.MoveDest[k] = dst
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5000; i++ {
			st.Feed(tuple.New(tuple.Key(i%100), nil))
		}
	}()
	st.ApplyPlanLive(plan)
	wg.Wait()
	st.Barrier()

	// Every migrated key's state lives exactly at its planned home.
	cur := st.AssignmentRouter().Assignment()
	for _, k := range plan.Moved {
		home := cur.Dest(k)
		if home != plan.MoveDest[k] {
			t.Fatalf("key %d routed to %d, plan said %d", k, home, plan.MoveDest[k])
		}
		for d := 0; d < 4; d++ {
			if d != home && st.StoreOf(d).Size(k) != 0 {
				t.Fatalf("key %d leaked state on instance %d", k, d)
			}
		}
	}
	// No tuples lost: total state equals total fed (7000 unit entries).
	var totalState int64
	for d := 0; d < 4; d++ {
		totalState += st.StoreOf(d).TotalSize()
	}
	if totalState != 7000 {
		t.Fatalf("total state %d, want 7000", totalState)
	}
}

func TestApplyPlanLiveOnShuffleStageErrors(t *testing.T) {
	st := NewStage("s", 2, func(int) Operator { return Discard }, 1, NewShuffleRouter(2))
	defer st.Stop()
	if _, err := st.ApplyPlanLive(&balance.Plan{}); err == nil {
		t.Fatal("ApplyPlanLive on shuffle stage did not error")
	}
}
