package engine

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/balance"
	"repro/internal/hashring"
	"repro/internal/route"
	"repro/internal/state"
	"repro/internal/stats"
	"repro/internal/tuple"
)

// handoffSoftCap bounds a destination task's per-migrating-key handoff
// buffer: beyond it, arrivals are still kept (correctness) but counted
// as overflow on the stage, so a migration outliving its buffers is
// observable instead of silent. One queue depth of headroom per key is
// far beyond what a per-key transfer window accumulates in practice.
const handoffSoftCap = taskQueueDepth

// Stage is one logical operator: ND task instances behind a Router.
// The engine feeds tuples from a single goroutine; task goroutines
// process them concurrently; barriers synchronize interval boundaries
// and rebalance operations.
type Stage struct {
	Name   string
	tasks  []*task
	router Router
	window int
	opFn   func(id int) Operator // factory, kept for scale-out

	// Pause/Resume protocol state (steps 3–7 of Fig. 5). paused keys
	// have their tuples held upstream (cached locally in the paper)
	// until migration completes. mu guards them so ApplyPlanLive can
	// run from a controller goroutine concurrent with the feeder.
	mu     sync.Mutex
	paused map[tuple.Key]struct{}
	held   []tuple.Tuple
	// pausedGen is nonzero while a pause epoch is active (maintained
	// only by PauseKeys/Resume, under mu; equivalent to len(paused) > 0
	// there). It is an atomic so the feed paths' fast-path check stays
	// valid if a future lock-free segment reads it before taking mu.
	pausedGen atomic.Uint32
	// inflight counts feed calls that routed under mu but have not yet
	// finished their channel sends (sends run outside the lock so task
	// backpressure cannot block pause/resume). ApplyPlanLive drains it
	// after pausing: once zero, every tuple routed under the old
	// assignment is in its task queue, so the extraction barriers see a
	// complete window. Increments happen under mu; the decrement is
	// atomic and only takes mu to signal when a drainer is waiting.
	inflight     atomic.Int64
	draining     atomic.Bool
	inflightZero *sync.Cond

	// Pause-free migration state (the default live-migration protocol;
	// see applyMovesLive). pauseFree selects the wait-free feed paths
	// and the generation-epoch sequencer over the pause/drain/resume
	// protocol above. genInflight is a two-slot epoch counter indexed
	// by assignment generation parity: a feed call increments the slot
	// of the generation it routed under before sending and decrements
	// after, so the sequencer's grace period — wait for the *old*
	// generation's slot to reach zero — proves every tuple routed under
	// the pre-swap assignment is in its task queue, without feeders
	// ever taking a lock. migMu serializes migration sequencers (plan
	// application, scale-out/in state moves); it is never touched by
	// the feed path. handoffOverflow counts tuples parked beyond
	// handoffSoftCap across all destination buffers.
	pauseFree       atomic.Bool
	genInflight     [2]atomic.Int64
	migMu           sync.Mutex
	handoffOverflow atomic.Int64
	// splitPinned counts rebalance-plan moves refused because their key
	// was split at apply time (see applyPlanPauseFree's guard).
	splitPinned atomic.Int64

	// FeedBatch partition scratch, guarded by mu (FeedBatch may be
	// entered concurrently by the feeder and by Resume's held replay).
	scratchDst []int
	scratchOff []int

	// Per-interval arrival accounting (cost units / tuples per task),
	// reset at EndInterval; feeds the performance model.
	arrivedCost   []int64
	arrivedTuples []int64

	// Backlog is the queued-but-unprocessed cost carried across
	// intervals by the performance model; MigPenalty is capacity
	// consumed by state transfer in the next interval.
	Backlog    []int64
	MigPenalty []int64

	// down is the pipelined emission sink (nil when store-and-forward
	// or last stage): the next stage in process, or a cluster data
	// connection to its remote host. curTick is the current interval
	// index. Both are propagated to tasks created later by ScaleOut.
	down    BatchSink
	curTick int64
	// drainBuf is DrainEmitted's reused concatenation buffer, so the
	// legacy store-and-forward path allocates nothing per interval once
	// warm.
	drainBuf []tuple.Tuple

	// harvest selects the interval-close mode (see HarvestMode);
	// lastDeltas holds the per-task change sets of the most recent
	// retained close, the control plane's delta-report input.
	harvest    HarvestMode
	lastDeltas []stats.Delta

	// stateWire routes every key migration through the state codec:
	// extracted windows are serialized, and the *decoded* copy is what
	// the destination injects — the cross-process migration path, also
	// selectable in process so its equivalence with the in-memory
	// reference stays pinned by test. codecErrs counts codec failures
	// (the transfer falls back to the in-memory reference so no state is
	// lost; nonzero means an operator shipped an unregistered value
	// type).
	stateWire atomic.Bool
	codecErrs atomic.Int64

	stopped bool
}

// NewStage builds a stage with nd instances running op(id), a state
// window of w intervals, and the given router.
func NewStage(name string, nd int, op func(id int) Operator, w int, router Router) *Stage {
	s := &Stage{
		Name:          name,
		router:        router,
		window:        w,
		opFn:          op,
		paused:        make(map[tuple.Key]struct{}),
		arrivedCost:   make([]int64, nd),
		arrivedTuples: make([]int64, nd),
		Backlog:       make([]int64, nd),
		MigPenalty:    make([]int64, nd),
	}
	s.inflightZero = sync.NewCond(&s.mu)
	for i := 0; i < nd; i++ {
		s.tasks = append(s.tasks, newTask(i, op(i), w, s))
	}
	return s
}

// SetPauseFree selects the migration protocol: true (requires an
// assignment router) routes feeds through the wait-free generation-
// stamped paths and applies plans with the handoff protocol; false
// restores the pause/drain/resume oracle. Must be called while the
// stage is idle (before feeding, or between intervals) — the engine
// does so at construction time from Config.PauseFree.
func (s *Stage) SetPauseFree(on bool) error {
	if on && s.AssignmentRouter() == nil {
		return fmt.Errorf("engine: stage %q: pause-free migration requires an assignment router", s.Name)
	}
	s.pauseFree.Store(on)
	return nil
}

// PauseFree reports whether the pause-free migration protocol is
// selected.
func (s *Stage) PauseFree() bool { return s.pauseFree.Load() }

// HandoffOverflow returns the cumulative count of tuples parked beyond
// a migrating key's soft handoff bound — nonzero means a migration ran
// long enough that a destination buffer outgrew one queue depth.
func (s *Stage) HandoffOverflow() int64 { return s.handoffOverflow.Load() }

// Instances returns ND.
func (s *Stage) Instances() int { return len(s.tasks) }

// Router returns the stage's input router.
func (s *Stage) Router() Router { return s.router }

// AssignmentRouter returns the router as an *AssignmentRouter, or nil
// when the stage uses a different scheme (PKG, shuffle).
func (s *Stage) AssignmentRouter() *AssignmentRouter {
	ar, _ := s.router.(*AssignmentRouter)
	return ar
}

// Feed routes one tuple into the stage. In pause-free mode (the
// default for assignment-routed stages) the tuple is routed wait-free
// under the current generation; in pausing mode tuples for paused keys
// are held (the upstream cache of Fig. 5 step 4) and delivered by
// Resume. FeedBatch is the batch-oriented fast path; Feed remains for
// tests and fine-grained callers.
func (s *Stage) Feed(t tuple.Tuple) {
	if s.pauseFree.Load() {
		s.feedLive(s.router.(*AssignmentRouter), t)
		return
	}
	s.mu.Lock()
	if s.pausedGen.Load() != 0 {
		if _, p := s.paused[t.Key]; p {
			s.held = append(s.held, t)
			s.mu.Unlock()
			return
		}
	}
	d := s.router.Route(t)
	s.arrivedCost[d] += t.Cost
	s.arrivedTuples[d]++
	s.inflight.Add(1)
	s.mu.Unlock()
	// Channel send outside the lock: a full task queue must exert
	// backpressure on the feeder without blocking pause/resume.
	s.tasks[d].send(t, 0)
	s.sendDone()
}

// enterGen is the wait-free feed entry of the pause-free protocol: it
// pins the caller to the current assignment's generation epoch. The
// seqlock-style dance — load the assignment, raise the generation's
// inflight slot, re-check the pointer — guarantees that once a swap is
// published and the old slot drains to zero, no feed call can still be
// routing under the old assignment (a racer that loaded it pre-swap
// either raised the slot before the drain began, or fails the
// re-check and retries on the new generation). Feeders never block:
// the loop retries only across a concurrent swap, which migMu makes
// rare and brief.
func (s *Stage) enterGen(ar *AssignmentRouter) (*route.Assignment, int) {
	for {
		a := ar.Assignment()
		slot := int(a.Gen() & 1)
		s.genInflight[slot].Add(1)
		if ar.Assignment() == a {
			return a, slot
		}
		s.genInflight[slot].Add(-1)
	}
}

// feedLive is Feed's pause-free path: no stage mutex, no paused-key
// probe — route under the pinned generation, account arrivals
// atomically, send with the generation stamp, release the epoch. A
// split key's tuple is physically sent to the next round-robin replica
// while its arrival stays charged to the home destination F(k), so
// arrival accounting (and everything modeled from it) reconstructs the
// unsplit run.
func (s *Stage) feedLive(ar *AssignmentRouter, t tuple.Tuple) {
	a, slot := s.enterGen(ar)
	d := a.Dest(t.Key)
	atomic.AddInt64(&s.arrivedCost[d], t.Cost)
	atomic.AddInt64(&s.arrivedTuples[d], 1)
	if st := a.Splits(); st != nil {
		if sp, ok := st.Lookup(t.Key); ok {
			d = sp.Pick()
		}
	}
	s.tasks[d].send(t, a.Gen())
	s.genInflight[slot].Add(-1)
}

// liveScratch is the pause-free partition scratch: per-call state from
// a pool instead of the mu-guarded per-stage fields, since concurrent
// feeders no longer serialize on anything.
type liveScratch struct {
	dst    []int
	bounds []int
	off    []int
	cost   []int64
	tup    []int64
}

var liveScratchPool = sync.Pool{New: func() any { return new(liveScratch) }}

// feedBatchLive is FeedBatch's pause-free path: the same
// partition-into-pooled-buffers scheme, minus the stage mutex and the
// paused-key branch. The epoch slot is held across the channel sends,
// so when the migration sequencer observes the old generation's slot
// at zero, every tuple routed under the old assignment is already in
// its task's queue — the property the per-key extraction barriers
// build on.
func (s *Stage) feedBatchLive(ar *AssignmentRouter, ts []tuple.Tuple) {
	a, slot := s.enterGen(ar)
	nd := len(s.tasks)
	sc := liveScratchPool.Get().(*liveScratch)
	if cap(sc.dst) < len(ts) {
		sc.dst = make([]int, len(ts))
	}
	dst := sc.dst[:len(ts)]
	a.DestTuples(ts, dst)
	st := a.Splits()
	if st != nil {
		// Hot keys present: charge arrivals at each tuple's home
		// destination (dst as routed — the unsplit attribution), then
		// remap split tuples' physical destination to the round-robin
		// replica. Cold batches never enter this block: the split check
		// costs one nil test per batch.
		if cap(sc.cost) < nd {
			sc.cost = make([]int64, nd)
		}
		if cap(sc.tup) < nd {
			sc.tup = make([]int64, nd)
		}
		cost, tup := sc.cost[:nd], sc.tup[:nd]
		for i := range cost {
			cost[i] = 0
			tup[i] = 0
		}
		for i := range ts {
			d := dst[i]
			cost[d] += ts[i].Cost
			tup[d]++
			if sp, ok := st.Lookup(ts[i].Key); ok {
				dst[i] = sp.Pick()
			}
		}
		for d := 0; d < nd; d++ {
			if tup[d] > 0 {
				atomic.AddInt64(&s.arrivedTuples[d], tup[d])
				atomic.AddInt64(&s.arrivedCost[d], cost[d])
			}
		}
	}
	if cap(sc.bounds) < nd+1 {
		sc.bounds = make([]int, nd+1)
	}
	bounds := sc.bounds[:nd+1]
	for i := range bounds {
		bounds[i] = 0
	}
	active := 0
	for _, d := range dst {
		bounds[d+1]++
	}
	for d := 0; d < nd; d++ {
		if bounds[d+1] > 0 {
			active++
			if st == nil {
				atomic.AddInt64(&s.arrivedTuples[d], int64(bounds[d+1]))
			}
		}
		bounds[d+1] += bounds[d]
	}
	bb := batchBufPool.Get().(*batchBuf)
	if cap(bb.data) < len(ts) {
		bb.data = make([]tuple.Tuple, len(ts))
	}
	bb.refs.Store(int32(active))
	buf := bb.data[:len(ts)]
	if cap(sc.off) < nd {
		sc.off = make([]int, nd)
	}
	off := sc.off[:nd]
	copy(off, bounds[:nd])
	// Accumulate arrival cost per destination locally and publish one
	// atomic add per active destination below — an atomic RMW per tuple
	// here would cost more than the whole routing scatter.
	if cap(sc.cost) < nd {
		sc.cost = make([]int64, nd)
	}
	cost := sc.cost[:nd]
	for i := range cost {
		cost[i] = 0
	}
	if st == nil {
		for i := range ts {
			d := dst[i]
			buf[off[d]] = ts[i]
			off[d]++
			cost[d] += ts[i].Cost
		}
	} else {
		// Cost was already accounted (by home) in the split pass above.
		for i := range ts {
			d := dst[i]
			buf[off[d]] = ts[i]
			off[d]++
		}
	}
	gen := a.Gen()
	for d := 0; d < nd; d++ {
		if lo, hi := bounds[d], bounds[d+1]; hi > lo {
			if st == nil {
				atomic.AddInt64(&s.arrivedCost[d], cost[d])
			}
			s.tasks[d].sendBatch(buf[lo:hi:hi], bb, gen)
		}
	}
	liveScratchPool.Put(sc)
	s.genInflight[slot].Add(-1)
}

// sendDone retires one in-flight feed call. The fast path is a single
// atomic decrement; only the send that drops the count to zero while
// ApplyPlanLive is draining pays for the lock to signal it. (A drainer
// that starts after our decrement sees inflight == 0 under mu and
// never waits, so the skipped broadcast cannot be missed.)
func (s *Stage) sendDone() {
	if s.inflight.Add(-1) == 0 && s.draining.Load() {
		s.mu.Lock()
		s.inflightZero.Broadcast()
		s.mu.Unlock()
	}
}

// FeedBatch routes a whole batch of tuples into the stage under a
// single lock acquisition: destinations are resolved through the batch
// routing path, tuples are partitioned into per-destination slices, and
// each task receives at most one channel message — amortizing the lock,
// the routing indirection and the channel operations across hundreds of
// tuples. Tuples are copied out of ts, so the caller may reuse the
// slice immediately. Pause semantics match Feed: tuples for paused keys
// are held upstream and delivered by Resume.
func (s *Stage) FeedBatch(ts []tuple.Tuple) {
	if len(ts) == 0 {
		return
	}
	if s.pauseFree.Load() {
		s.feedBatchLive(s.router.(*AssignmentRouter), ts)
		return
	}
	s.mu.Lock()
	nd := len(s.tasks)
	if cap(s.scratchDst) < len(ts) {
		s.scratchDst = make([]int, len(ts))
	}
	dst := s.scratchDst[:len(ts)]
	n := len(ts) // tuples routed this call (len(ts) minus any held)
	if s.pausedGen.Load() != 0 {
		// Pause epochs are rare and brief: per-tuple slow path.
		n = 0
		for i := range ts {
			if _, p := s.paused[ts[i].Key]; p {
				s.held = append(s.held, ts[i])
				dst[i] = -1
				continue
			}
			dst[i] = s.router.Route(ts[i])
			n++
		}
	} else if ar, ok := s.router.(*AssignmentRouter); ok {
		ar.Assignment().DestTuples(ts, dst)
	} else {
		for i := range ts {
			dst[i] = s.router.Route(ts[i])
		}
	}

	// Count per destination (into bounds[d+1]). bounds is a per-call
	// allocation because it is read after the lock is released, where
	// the scratch fields are no longer ours.
	bounds := make([]int, nd+1)
	active := 0
	for _, d := range dst {
		if d >= 0 {
			bounds[d+1]++
		}
	}
	for d := 0; d < nd; d++ {
		if bounds[d+1] > 0 {
			active++
			s.arrivedTuples[d] += int64(bounds[d+1])
		}
		bounds[d+1] += bounds[d]
	}
	if active == 0 {
		s.mu.Unlock()
		return
	}
	// Carve contiguous per-destination regions out of a recycled
	// backing array; the tasks hand it back to the pool once the last
	// subslice is processed, so steady state allocates nothing per
	// batch.
	bb := batchBufPool.Get().(*batchBuf)
	if cap(bb.data) < n {
		bb.data = make([]tuple.Tuple, n)
	}
	bb.refs.Store(int32(active))
	buf := bb.data[:n]
	if cap(s.scratchOff) < nd {
		s.scratchOff = make([]int, nd)
	}
	off := s.scratchOff[:nd]
	copy(off, bounds[:nd])
	for i := range ts {
		if d := dst[i]; d >= 0 {
			buf[off[d]] = ts[i]
			off[d]++
			s.arrivedCost[d] += ts[i].Cost
		}
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	// Channel sends outside the lock, as in Feed: a full task queue must
	// exert backpressure on the feeder without blocking pause/resume.
	for d := 0; d < nd; d++ {
		if lo, hi := bounds[d], bounds[d+1]; hi > lo {
			s.tasks[d].sendBatch(buf[lo:hi:hi], bb, 0)
		}
	}
	s.sendDone()
}

// Barrier waits until every task has drained its queue.
func (s *Stage) Barrier() {
	for _, t := range s.tasks {
		t.barrier(nil)
	}
}

// SetDownstream wires (or, with nil, unwires) the stage's pipelined
// emission sink: every task's Emit streams into next.FeedBatch in
// emitChunk-sized batches from the task's own goroutine, instead of
// accumulating for the driver's DrainEmitted. Must be called while
// tasks are idle; the engine does so before the first pipelined
// interval.
func (s *Stage) SetDownstream(next *Stage) {
	if next == nil {
		// Guard the typed-nil trap: assigning a nil *Stage into the
		// BatchSink interface would make ctx.sink non-nil.
		s.SetSink(nil)
		return
	}
	s.SetSink(next)
}

// SetSink wires the stage's pipelined emissions into an arbitrary
// BatchSink — the generalization of SetDownstream the cluster runtime
// uses to point a stage's output at a data connection crossing a
// process boundary. Must be called while tasks are idle.
func (s *Stage) SetSink(sink BatchSink) {
	s.down = sink
	for _, t := range s.tasks {
		t.ctx.sink = sink
	}
}

// SetStateWire selects serialized-state migration: every key transfer
// this stage performs round-trips through state.Codec and the decoded
// copy is injected, exactly as a cross-process migration would arrive.
// Off (the default) moves state by reference — the pinned equivalence
// oracle. Must be called while the stage is idle.
func (s *Stage) SetStateWire(on bool) { s.stateWire.Store(on) }

// StateWire reports whether serialized-state migration is selected.
func (s *Stage) StateWire() bool { return s.stateWire.Load() }

// StateWireErrs returns the cumulative count of state-codec failures
// (each fell back to the in-memory reference move).
func (s *Stage) StateWireErrs() int64 { return s.codecErrs.Load() }

// serializeTransfer routes one extracted transfer through the state
// codec when state-wire mode is on: the caller injects the returned
// Migrated/mem (a decoded copy sharing nothing with the source store)
// and ships the returned payload in its StateTransfer message. With
// state-wire off — or on a codec failure, which is counted — the
// original references pass through and the payload is nil.
func (s *Stage) serializeTransfer(m state.Migrated, mem int64) (state.Migrated, int64, []byte) {
	if !s.stateWire.Load() {
		return m, mem, nil
	}
	p, err := state.Codec{}.Encode(m, mem)
	if err != nil {
		s.codecErrs.Add(1)
		return m, mem, nil
	}
	dm, dmem, err := state.Codec{}.Decode(p)
	if err != nil {
		s.codecErrs.Add(1)
		return m, mem, nil
	}
	return dm, dmem, p
}

// StartInterval publishes the interval index tasks stamp on emitted
// tuples (tuple.EmitTick at emission time). Must be called while tasks
// are idle; the engine does so before each interval's emission, and
// the subsequent channel sends give tasks the happens-before edge.
func (s *Stage) StartInterval(interval int64) {
	s.curTick = interval
	for _, t := range s.tasks {
		t.ctx.emitTick = interval
	}
}

// CloseInterval is the pipelined interval close: every task runs its
// operator's FlushInterval hook (when implemented) and flushes its
// residual emission buffer downstream, on its own goroutine, after
// draining its queue — the per-stage step of the engine's cascading
// close. All tasks close concurrently; CloseInterval returns when the
// slowest is done, at which point every tuple this stage emitted this
// interval is in the downstream stage's queues (or held by its pause
// epoch) and the downstream stage may be closed in turn.
func (s *Stage) CloseInterval() {
	// Fold split replicas home first: FlushInterval hooks (and the
	// harvest after them) must see canonical state.
	s.foldSplits()
	dones := make([]chan struct{}, len(s.tasks))
	for i, t := range s.tasks {
		dones[i] = t.closeInterval()
	}
	for _, d := range dones {
		<-d
	}
}

// FlushOps invokes FlushInterval on every task whose operator
// implements engine.IntervalFlusher, on the task goroutine.
func (s *Stage) FlushOps() {
	s.foldSplits()
	for _, t := range s.tasks {
		if f, ok := t.op.(IntervalFlusher); ok {
			t.barrier(func(ctx *TaskCtx) { f.FlushInterval(ctx) })
		}
	}
}

// DrainEmitted collects and clears the tuples emitted downstream by all
// tasks during this interval. Call after Barrier. The returned slice is
// backed by a per-stage buffer reused across intervals (steady state
// allocates nothing) and is valid until the next DrainEmitted call;
// Stage.FeedBatch copies out of it, so feeding it onward is safe.
func (s *Stage) DrainEmitted() []tuple.Tuple {
	out := s.drainBuf[:0]
	for _, t := range s.tasks {
		out = append(out, t.ctx.out...)
		t.ctx.out = t.ctx.out[:0]
	}
	s.drainBuf = out
	return out
}

// ArrivedCost returns this interval's per-task arrived cost (valid
// until EndInterval resets it).
func (s *Stage) ArrivedCost() []int64 { return s.arrivedCost }

// ArrivedTuples returns this interval's per-task arrived tuple counts.
func (s *Stage) ArrivedTuples() []int64 { return s.arrivedTuples }

// EndInterval closes the statistics interval on every task and merges
// the per-task reports into a planner-ready snapshot (step 1 of Fig. 5:
// instances report to the controller). The harvest runs on all task
// goroutines concurrently — each task rolls its own tracker window,
// resolves hash destinations and sorts its report into a run ordered
// by stats.KeyStatLess — and the driver k-way-merges the sorted runs,
// so the interval-barrier cost is the slowest single task plus an
// O(n log ND) merge instead of a serial walk plus a full re-sort.
// Destinations are taken from the task that actually observed the key;
// hash destinations from the assignment router when present. Arrival
// accounting is reset.
func (s *Stage) EndInterval(interval int64) *stats.Snapshot {
	// Idempotent re-fold (zero cells skip): callers that harvest
	// without a prior CloseInterval/FlushOps still get home-complete
	// statistics.
	s.foldSplits()
	if s.harvest != HarvestTouched {
		return s.endIntervalRetained(interval)
	}
	snap := &stats.Snapshot{Interval: interval, ND: len(s.tasks)}
	// The assignment is resolved once, outside the thunks: it is an
	// immutable snapshot, safe for concurrent HashDest reads, and no
	// swap can race the harvest (the controller runs after it).
	var asg *route.Assignment
	if ar := s.AssignmentRouter(); ar != nil {
		asg = ar.Assignment()
	}
	runs := make([][]stats.KeyStat, len(s.tasks))
	dones := make([]chan struct{}, len(s.tasks))
	for d, t := range s.tasks {
		dones[d] = t.barrierAsync(func(ctx *TaskCtx) {
			got := ctx.Tracker.EndInterval()
			ctx.Store.EndInterval()
			ctx.ProcessedTuples = 0
			ctx.ProcessedCost = 0
			run := make([]stats.KeyStat, 0, len(got))
			for k, ks := range got {
				ks.Key = k
				ks.Dest = d
				if asg != nil {
					ks.Hash = asg.HashDest(k)
				} else {
					ks.Hash = d
				}
				run = append(run, ks)
			}
			stats.SortByCostDesc(run)
			runs[d] = run
		})
	}
	for _, done := range dones {
		<-done
	}
	snap.Keys = stats.MergeRuns(runs)
	for d := range s.arrivedCost {
		s.arrivedCost[d] = 0
		s.arrivedTuples[d] = 0
	}
	return snap
}

// PauseKeys enters the pause phase for the given keys: subsequent Feed
// and FeedBatch calls hold their tuples upstream.
func (s *Stage) PauseKeys(keys []tuple.Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range keys {
		s.paused[k] = struct{}{}
	}
	if len(s.paused) > 0 {
		s.pausedGen.Store(1)
	}
}

// Resume exits the pause phase and replays held tuples through the
// (possibly new) assignment — step 7 of Fig. 5.
func (s *Stage) Resume() {
	s.mu.Lock()
	s.pausedGen.Store(0)
	clear(s.paused)
	held := s.held
	s.held = nil
	s.mu.Unlock()
	s.FeedBatch(held)
}

// ApplyPlanLive executes a rebalance plan while traffic is flowing.
// In pause-free mode (the default) it runs the generation-epoch
// handoff protocol of applyMovesLive: the hot path never pauses, and
// p99 feed latency stays flat across the migration. In pausing mode it
// runs the Fig. 5 sequence with per-key granularity and no global
// barrier: migrating keys pause (their tuples held upstream), each
// key's state is extracted on the source task's goroutine and injected
// on the destination's via control thunks, so unaffected keys keep
// processing throughout — the paper's "no interruption of normal
// processing on the data with keys not covered by Δ(F, F′)". Safe to
// call from a goroutine other than the feeder. Returns an error (no
// state touched) on a stage without an assignment router.
func (s *Stage) ApplyPlanLive(plan *balance.Plan) (int64, error) {
	return s.ApplyPlanLiveObserved(plan, nil)
}

// ApplyPlanLiveObserved is ApplyPlanLive with a per-key migration
// observer (nil behaves exactly like ApplyPlanLive).
func (s *Stage) ApplyPlanLiveObserved(plan *balance.Plan, obs MigrationObserver) (int64, error) {
	ar := s.AssignmentRouter()
	if ar == nil {
		return 0, fmt.Errorf("engine: stage %q has no assignment router; cannot apply plan", s.Name)
	}
	if s.pauseFree.Load() {
		return s.applyPlanPauseFree(plan, obs, ar), nil
	}
	s.PauseKeys(plan.Moved)
	// Drain in-flight sends: a feed call may have routed tuples under
	// the pre-pause assignment but not yet enqueued them (sends happen
	// outside the lock). Waiting for inflight == 0 guarantees those
	// tuples are in their task queues before the extraction barriers
	// run, so no migrating key's tuple can land on the old owner after
	// its state has been extracted.
	s.mu.Lock()
	s.draining.Store(true)
	for s.inflight.Load() > 0 {
		s.inflightZero.Wait()
	}
	s.draining.Store(false)
	s.mu.Unlock()
	old := ar.Assignment()
	var moved int64
	for _, k := range plan.Moved {
		src := old.Dest(k)
		dst := plan.MoveDest[k]
		if src == dst {
			continue
		}
		// Extract on the source task's goroutine: channel FIFO means
		// every tuple enqueued before the pause (and drained above) is
		// processed first, so the extracted window is complete.
		var m state.Migrated
		var mem int64
		s.tasks[src].barrier(func(ctx *TaskCtx) {
			m = ctx.Store.Extract(k)
			mem = ctx.Tracker.WindowedMem(k)
			ctx.Tracker.DropKey(k)
		})
		m, mem, payload := s.serializeTransfer(m, mem)
		s.tasks[dst].barrier(func(ctx *TaskCtx) {
			if m.Size > 0 {
				ctx.Store.Inject(m)
			}
			if mem > 0 {
				ctx.Tracker.AdoptKey(k, mem)
			}
		})
		s.mu.Lock()
		s.MigPenalty[src] += m.Size
		s.MigPenalty[dst] += m.Size
		s.mu.Unlock()
		if obs != nil {
			obs(k, src, dst, m.Size, payload)
		}
		moved += m.Size
	}
	ar.Swap(route.NewAssignment(plan.Table.Clone(), old.Hasher()))
	s.Resume()
	return moved, nil
}

// keyMove is one key's migration edge: src still owns the state, the
// new assignment routes the key to dst.
type keyMove struct {
	k        tuple.Key
	src, dst int
}

// applyPlanPauseFree translates a rebalance plan into key moves and
// runs them through the generation-epoch sequencer, publishing the
// plan's table as the new assignment.
func (s *Stage) applyPlanPauseFree(plan *balance.Plan, obs MigrationObserver, ar *AssignmentRouter) int64 {
	s.migMu.Lock()
	defer s.migMu.Unlock()
	old := ar.Assignment()
	st := old.Splits()
	tbl := plan.Table.Clone()
	moves := make([]keyMove, 0, len(plan.Moved))
	for _, k := range plan.Moved {
		if st != nil {
			if _, split := st.Lookup(k); split {
				continue // pinned below; never a state move while split
			}
		}
		if src, dst := old.Dest(k), plan.MoveDest[k]; src != dst {
			moves = append(moves, keyMove{k: k, src: src, dst: dst})
		}
	}
	if st != nil {
		// A split key cannot migrate: its replica ring and home-charged
		// accounting are anchored to Home. The controller strips such
		// moves before planning around them (controller.SplitPinned);
		// this is the stage-level backstop for raw callers — patch the
		// incoming table so F(k) keeps resolving to the split home, and
		// count every pin.
		hash := old.Hasher()
		st.Each(func(sp *route.Split) {
			cur := hash.Hash(sp.Key)
			if d, ok := tbl.Lookup(sp.Key); ok {
				cur = d
			}
			if cur == sp.Home {
				return
			}
			s.splitPinned.Add(1)
			if hash.Hash(sp.Key) == sp.Home {
				tbl.Delete(sp.Key)
			} else {
				tbl.Put(sp.Key, sp.Home)
			}
		})
	}
	next := route.NewAssignment(tbl, old.Hasher())
	// The split set rides across plan publications untouched.
	next.SetSplits(st)
	return s.applyMovesLive(next, moves, obs, ar)
}

// applyMovesLive is the pause-free migration sequencer — the epoch
// protocol that replaces pause/drain/resume. The caller holds migMu
// (one migration at a time per stage); feeders keep running wait-free
// throughout. The sequence:
//
//  1. Arm: enqueue a control thunk at every destination task opening
//     empty handoff buffers for the keys it will receive. The thunks
//     sit in the FIFO input queues *before* the swap below, so they
//     execute before any tuple routed under the new generation.
//  2. Swap: publish the new assignment with generation g+1. From this
//     instant feeders route migrating keys straight to their
//     destinations, where they park in the handoff buffers.
//  3. Grace period: spin until genInflight[g&1] reaches zero — every
//     feed call that routed under generation g has finished its
//     channel sends, so each source task's queue holds all of its
//     old-generation tuples (the per-slot watermark that replaces the
//     pausing path's global inflight drain; only the sequencer waits,
//     never a feeder).
//  4. Per key, in plan order: a source barrier — FIFO-ordered after
//     every old-generation tuple, so the window is complete — extracts
//     the windowed state and tracker history and marks the key
//     rerouted (any straggler is forwarded by generation check, not
//     processed); then a destination barrier injects the state and
//     replays the handoff buffer in arrival order. No tuple is lost or
//     double-processed: each lives either before the extraction point
//     at the source or after the injection point at the destination.
//  5. Cleanup: retire the straggler guards (by step 3 no matching
//     tuple can remain in flight; the guard exists for paths outside
//     the epoch accounting).
//
// Returns the migrated state volume. Also used by scale-out/in state
// moves in pause-free mode, with the resized assignment as next.
func (s *Stage) applyMovesLive(next *route.Assignment, moves []keyMove, obs MigrationObserver, ar *AssignmentRouter) int64 {
	if len(moves) == 0 {
		ar.Swap(next)
		return 0
	}
	perDst := make(map[int][]tuple.Key)
	for _, mv := range moves {
		perDst[mv.dst] = append(perDst[mv.dst], mv.k)
	}
	for d, keys := range perDst {
		s.tasks[d].armHandoff(keys)
	}
	ar.Swap(next)
	newGen := next.Gen()
	oldSlot := int((newGen - 1) & 1)
	for s.genInflight[oldSlot].Load() != 0 {
		runtime.Gosched()
	}
	var moved int64
	for _, mv := range moves {
		mv := mv
		var m state.Migrated
		var mem int64
		src, dst := s.tasks[mv.src], s.tasks[mv.dst]
		src.barrier(func(ctx *TaskCtx) {
			m = ctx.Store.Extract(mv.k)
			mem = ctx.Tracker.WindowedMem(mv.k)
			ctx.Tracker.DropKey(mv.k)
			if src.reroute == nil {
				src.reroute = make(map[tuple.Key]uint64)
			}
			src.reroute[mv.k] = newGen
		})
		m, mem, payload := s.serializeTransfer(m, mem)
		dst.barrier(func(ctx *TaskCtx) {
			if m.Size > 0 {
				ctx.Store.Inject(m)
			}
			if mem > 0 {
				ctx.Tracker.AdoptKey(mv.k, mem)
			}
			dst.replayHandoff(ctx, mv.k)
		})
		s.mu.Lock()
		s.MigPenalty[mv.src] += m.Size
		s.MigPenalty[mv.dst] += m.Size
		s.mu.Unlock()
		if obs != nil {
			obs(mv.k, mv.src, mv.dst, m.Size, payload)
		}
		moved += m.Size
	}
	for _, mv := range moves {
		mv := mv
		src := s.tasks[mv.src]
		src.barrierAsync(func(*TaskCtx) { delete(src.reroute, mv.k) })
	}
	return moved
}

// MigrationObserver is notified of every key migration an actuation
// performs (plan application, scale-out, scale-in): key, source task,
// destination task, the migrated state volume, and — in state-wire
// mode — the serialized window that crossed the codec (nil otherwise).
// The control plane's executor uses it to emit one
// protocol.StateTransfer per migration — step 5 of Fig. 5 as an
// observable wire event, carrying the real payload when migration runs
// serialized.
type MigrationObserver = func(k tuple.Key, from, to int, size int64, payload []byte)

// ApplyPlan executes a rebalance plan against live state at hook time
// (between Barrier/EndInterval and the next Feed): move each key's
// windowed state and statistics from its current owner to the planned
// destination and install the new routing table. In pause-free mode
// the generation-epoch sequencer runs (with idle tasks its handoff
// buffers stay empty and its grace period is instantaneous, so the
// effect — and every observable byte of state, statistics and routing
// — is identical to the pausing oracle); in pausing mode the migrating
// keys pause and resume around the direct move. Returns the total
// state volume moved, or an error (no state touched) on a stage
// without an assignment router.
func (s *Stage) ApplyPlan(plan *balance.Plan) (int64, error) {
	return s.ApplyPlanObserved(plan, nil)
}

// ApplyPlanObserved is ApplyPlan with a per-key migration observer
// (nil behaves exactly like ApplyPlan).
func (s *Stage) ApplyPlanObserved(plan *balance.Plan, obs MigrationObserver) (int64, error) {
	ar := s.AssignmentRouter()
	if ar == nil {
		return 0, fmt.Errorf("engine: stage %q has no assignment router; cannot apply plan", s.Name)
	}
	if s.pauseFree.Load() {
		return s.applyPlanPauseFree(plan, obs, ar), nil
	}
	s.PauseKeys(plan.Moved)
	old := ar.Assignment()
	var moved int64
	for _, k := range plan.Moved {
		src := old.Dest(k)
		dst := plan.MoveDest[k]
		if src == dst {
			continue
		}
		size, payload := s.migrateKey(k, src, dst)
		if obs != nil {
			obs(k, src, dst, size, payload)
		}
		moved += size
	}
	ar.Swap(route.NewAssignment(plan.Table.Clone(), old.Hasher()))
	s.Resume()
	return moved, nil
}

// migrateKey moves one key's state and tracker history from task src to
// task dst, charging the transfer volume to both sides' migration
// penalty (send + receive). Tasks are idle (post-barrier), so ctx
// access is safe. In state-wire mode the transfer round-trips through
// the state codec and the serialized window is returned (nil
// otherwise).
func (s *Stage) migrateKey(k tuple.Key, src, dst int) (int64, []byte) {
	sc, dc := s.tasks[src].ctx, s.tasks[dst].ctx
	m := sc.Store.Extract(k)
	mem := sc.Tracker.WindowedMem(k)
	sc.Tracker.DropKey(k)
	m, mem, payload := s.serializeTransfer(m, mem)
	if m.Size > 0 {
		dc.Store.Inject(m)
	}
	if mem > 0 {
		dc.Tracker.AdoptKey(k, mem)
	}
	s.MigPenalty[src] += m.Size
	s.MigPenalty[dst] += m.Size
	return m.Size, payload
}

// LiveKeys returns the union of keys holding state on any task.
func (s *Stage) LiveKeys() []tuple.Key {
	seen := make(map[tuple.Key]struct{})
	var out []tuple.Key
	for _, t := range s.tasks {
		for _, k := range t.ctx.Store.Keys() {
			if _, ok := seen[k]; !ok {
				seen[k] = struct{}{}
				out = append(out, k)
			}
		}
	}
	return out
}

// ScaleOut adds one task instance and regrows the consistent-hash
// ring. Keys whose overall destination F(k) changes under the new ring
// have their state migrated immediately so processing stays correct;
// rebalancing toward θmax is then the controller's job on subsequent
// intervals (the Fig. 15 scenario). Returns the migrated volume, or an
// error (no state touched) when the stage's router cannot scale.
func (s *Stage) ScaleOut() (int64, error) {
	return s.ScaleOutObserved(nil)
}

// ScaleOutObserved is ScaleOut with a per-key migration observer (nil
// behaves exactly like ScaleOut). Migrations run in ascending key
// order so the observed transfer sequence is deterministic.
func (s *Stage) ScaleOutObserved(obs MigrationObserver) (int64, error) {
	ar := s.AssignmentRouter()
	if ar == nil {
		return 0, fmt.Errorf("engine: stage %q: scale-out requires an assignment router", s.Name)
	}
	if _, ok := ar.Assignment().Hasher().(*hashring.Ring); !ok {
		return 0, fmt.Errorf("engine: stage %q: scale-out requires a consistent-hash ring hasher", s.Name)
	}
	// Fold back and retire every split before the ring changes: replica
	// rings are anchored to the pre-resize instance count. The detector
	// re-splits on the next interval's evidence.
	s.clearSplits(ar)
	old := ar.Assignment()
	ring := old.Hasher().(*hashring.Ring)
	newHash := ring.Grow()

	id := len(s.tasks)
	nt := newTask(id, s.opFn(id), s.window, s)
	// The new instance joins the running interval: it inherits the
	// pipelined sink and emission tick its siblings got at wiring /
	// StartInterval time.
	nt.ctx.sink = s.down
	nt.ctx.emitTick = s.curTick
	s.tasks = append(s.tasks, nt)
	s.arrivedCost = append(s.arrivedCost, 0)
	s.arrivedTuples = append(s.arrivedTuples, 0)
	s.Backlog = append(s.Backlog, 0)
	s.MigPenalty = append(s.MigPenalty, 0)

	// Keep the old routing table; recompute destinations under the new
	// hash and migrate keys whose effective destination moved.
	newAsg := route.NewAssignment(old.Table().Clone(), newHash)
	moved := s.migrateDelta(old, newAsg, s.LiveKeys(), obs, ar)
	s.restampRetained()
	return moved, nil
}

// ScaleIn retires the stage's last task instance live — the mirror of
// ScaleOut and the actuator the paper's §VII future work calls for:
// the retiring task is drained, the consistent-hash ring shrinks (only
// the retiring instance's arcs move; survivors keep theirs), routing
// table entries pointing at the retiring instance are dropped so those
// keys fall back to the shrunk ring, and every key the retiring task
// still stores or reports migrates to its surviving destination with
// windowed state and tracker history intact. The retired goroutine is
// stopped and all per-task bookkeeping shrinks; its residual model
// backlog folds into the last surviving instance (scale-in fires under
// sustained *low* utilization, where that backlog is ~0), while its
// accumulated send-side migration penalty retires with it — the
// decommissioned instance has no future intervals to charge.
//
// Must be called while tasks are idle (between EndInterval and the
// next Feed — controller-hook time). Returns the migrated volume, or
// an error (no state touched) when the stage cannot retire an
// instance.
func (s *Stage) ScaleIn() (int64, error) {
	return s.ScaleInObserved(nil)
}

// ScaleInObserved is ScaleIn with a per-key migration observer (nil
// behaves exactly like ScaleIn).
func (s *Stage) ScaleInObserved(obs MigrationObserver) (int64, error) {
	ar := s.AssignmentRouter()
	if ar == nil {
		return 0, fmt.Errorf("engine: stage %q has no assignment router; cannot scale in", s.Name)
	}
	if len(s.tasks) < 2 {
		return 0, fmt.Errorf("engine: stage %q cannot retire its only instance", s.Name)
	}
	if _, ok := ar.Assignment().Hasher().(*hashring.Ring); !ok {
		return 0, fmt.Errorf("engine: stage %q: scale-in requires a consistent-hash ring hasher", s.Name)
	}
	// As in scale-out: the split set folds back before the ring shrinks
	// (a replica ring could otherwise reference the retiring instance).
	s.clearSplits(ar)
	old := ar.Assignment()
	ring := old.Hasher().(*hashring.Ring)
	rid := len(s.tasks) - 1
	retiring := s.tasks[rid]

	// Drain the retiring task and enumerate everything it still owns:
	// keys holding windowed state plus keys with tracker history only
	// (state already expired, statistics still reported).
	var retired []tuple.Key
	retiring.barrier(func(ctx *TaskCtx) {
		seen := make(map[tuple.Key]struct{})
		for _, k := range ctx.Store.Keys() {
			seen[k] = struct{}{}
		}
		for _, k := range ctx.Tracker.Keys() {
			seen[k] = struct{}{}
		}
		retired = make([]tuple.Key, 0, len(seen))
		for k := range seen {
			retired = append(retired, k)
		}
	})

	// The new assignment: table entries pointing at the retiring
	// instance are dropped (their keys fall back to the shrunk ring);
	// everything else is untouched, so surviving placements hold.
	nt := old.Table().Clone()
	for _, k := range nt.Keys() {
		if d, _ := nt.Lookup(k); d == rid {
			nt.Delete(k)
		}
	}
	newAsg := route.NewAssignment(nt, ring.Shrink())

	// Migrate every key whose effective destination moved — by ring
	// construction exactly the keys F used to send to the retiring
	// instance, each landing on a surviving one.
	keys := append(s.LiveKeys(), retired...)
	moved := s.migrateDelta(old, newAsg, keys, obs, ar)

	// Retire the instance and shrink the per-task bookkeeping. Arrival
	// accounting was reset by EndInterval; any residual (non-hook-time
	// callers) folds into the last survivor like the model backlog.
	retiring.stop()
	s.tasks = s.tasks[:rid]
	s.arrivedCost[rid-1] += s.arrivedCost[rid]
	s.arrivedCost = s.arrivedCost[:rid]
	s.arrivedTuples[rid-1] += s.arrivedTuples[rid]
	s.arrivedTuples = s.arrivedTuples[:rid]
	s.Backlog[rid-1] += s.Backlog[rid]
	s.Backlog = s.Backlog[:rid]
	s.MigPenalty = s.MigPenalty[:rid]
	s.restampRetained()
	return moved, nil
}

// migrateDelta migrates every key in keys whose destination differs
// between old and next (deduplicated, ascending key order so observer
// sequences are deterministic), then installs next as the stage's live
// assignment. Tasks must be idle. In pause-free mode the moves run
// through the generation-epoch sequencer — scale-out/in reuse the same
// handoff protocol as plan application, and with idle tasks its effect
// is identical to the direct move.
func (s *Stage) migrateDelta(old, next *route.Assignment, keys []tuple.Key, obs MigrationObserver, ar *AssignmentRouter) int64 {
	seen := make(map[tuple.Key]struct{}, len(keys))
	uniq := keys[:0]
	for _, k := range keys {
		if _, dup := seen[k]; !dup {
			seen[k] = struct{}{}
			uniq = append(uniq, k)
		}
	}
	sort.Slice(uniq, func(i, j int) bool { return uniq[i] < uniq[j] })
	if s.pauseFree.Load() {
		moves := make([]keyMove, 0, len(uniq))
		for _, k := range uniq {
			if from, to := old.Dest(k), next.Dest(k); from != to {
				moves = append(moves, keyMove{k: k, src: from, dst: to})
			}
		}
		s.migMu.Lock()
		defer s.migMu.Unlock()
		return s.applyMovesLive(next, moves, obs, ar)
	}
	var moved int64
	for _, k := range uniq {
		from := old.Dest(k)
		to := next.Dest(k)
		if from == to {
			continue
		}
		size, payload := s.migrateKey(k, from, to)
		if obs != nil {
			obs(k, from, to, size, payload)
		}
		moved += size
	}
	ar.Swap(next)
	return moved
}

// Stop terminates all task goroutines (for tests and example
// teardown). Safe to call more than once.
func (s *Stage) Stop() {
	if s.stopped {
		return
	}
	s.stopped = true
	for _, t := range s.tasks {
		t.stop()
	}
}

// StoreOf returns task d's state store. Only safe while tasks are idle
// (between a barrier and the next Feed).
func (s *Stage) StoreOf(d int) *state.Store { return s.tasks[d].ctx.Store }

// CtxOf returns task d's execution context, for tests and examples that
// inspect operator state at barriers.
func (s *Stage) CtxOf(d int) *TaskCtx { return s.tasks[d].ctx }
