package engine

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/balance"
	"repro/internal/state"
	"repro/internal/stats"
	"repro/internal/tuple"
	"repro/internal/workload"
)

func init() {
	// The serialized path gob-encodes stored Entry values; the tests
	// here store int64 payloads (and nil, which needs no registration).
	state.RegisterValue(int64(0))
}

// Tests of serialized-state migration (StateWire mode): with the mode
// on, every migrated key's windowed state crosses a full
// state.Codec encode/decode round trip — the exact bytes a remote host
// would receive — and the run must stay bit-identical to the in-memory
// reference path the single-process engine pins.

// TestStateWireMatchesInMemory runs the same seeded randomized plan
// schedule (with a scale-out and a scale-in mixed in) twice, once with
// serialized-state migration and once through the in-memory reference,
// and requires identical interval series, harvest snapshots, routing
// tables and state placement. The wire run must actually serialize:
// at least one observed migration carries a non-nil payload, and the
// codec error counter stays zero.
func TestStateWireMatchesInMemory(t *testing.T) {
	run := func(wire bool) (*Engine, *Stage, int64) {
		gen := workload.NewZipfStream(1500, 0.9, 0, 8000, 53)
		st := statefulStage(4, 2)
		cfg := DefaultConfig()
		cfg.Budget = 8000
		e := NewBatch(gen.NextBatch, cfg, st)
		st.SetStateWire(wire)
		if st.StateWire() != wire {
			t.Fatalf("stage state-wire = %v, want %v", st.StateWire(), wire)
		}
		var payloads int64
		obs := func(k tuple.Key, from, to int, size int64, payload []byte) {
			if payload != nil {
				payloads++
			}
		}
		rng := rand.New(rand.NewSource(131))
		round := 0
		e.AddSnapshotHook(0, func(e *Engine, si int, snap *stats.Snapshot) *Rebalance {
			round++
			stage := e.Stages[si]
			// A fixed scale-out and scale-in in the schedule exercise the
			// resize migration path through the same serializer.
			if round == 3 || round == 6 {
				delta := 1
				if round == 6 {
					delta = -1
				}
				if _, err := e.ResizeStageObserved(si, delta, obs); err != nil {
					t.Fatalf("ResizeStageObserved(%d): %v", delta, err)
				}
				reb := &Rebalance{}
				if delta > 0 {
					reb.ScaledOut = 1
				} else {
					reb.ScaledIn = 1
				}
				return reb
			}
			if len(snap.Keys) == 0 || rng.Intn(4) == 0 {
				return nil
			}
			asg := stage.AssignmentRouter().Assignment()
			nd := stage.Instances()
			tab := asg.Table().Clone()
			plan := &balance.Plan{Table: tab, MoveDest: map[tuple.Key]int{}}
			for _, ks := range snap.Keys {
				if rng.Intn(16) != 0 {
					continue
				}
				dst := (asg.Dest(ks.Key) + 1 + rng.Intn(nd-1)) % nd
				tab.Put(ks.Key, dst)
				plan.Moved = append(plan.Moved, ks.Key)
				plan.MoveDest[ks.Key] = dst
			}
			if len(plan.Moved) == 0 {
				return nil
			}
			moved, err := stage.ApplyPlanObserved(plan, obs)
			if err != nil {
				t.Fatalf("ApplyPlanObserved(wire=%v): %v", wire, err)
			}
			return &Rebalance{Plan: plan, Moved: moved}
		})
		e.Run(8)
		if errs := st.StateWireErrs(); errs != 0 {
			t.Fatalf("wire=%v: %d codec round-trip failures fell back to reference state", wire, errs)
		}
		return e, st, payloads
	}

	ref, rst, refPayloads := run(false)
	defer ref.Stop()
	wired, wst, wirePayloads := run(true)
	defer wired.Stop()

	if refPayloads != 0 {
		t.Fatalf("reference run observed %d serialized payloads, want 0", refPayloads)
	}
	if wirePayloads == 0 {
		t.Fatal("wire run observed no serialized payloads; the equivalence is vacuous")
	}

	for i := range ref.Recorder.Series {
		a, b := ref.Recorder.Series[i], wired.Recorder.Series[i]
		a.PlanMs, b.PlanMs = 0, 0
		if a != b {
			t.Fatalf("interval %d diverges:\nin-memory  %+v\nserialized %+v", i, a, b)
		}
	}
	rs, ws := ref.LastSnapshots()[0], wired.LastSnapshots()[0]
	if len(rs.Keys) != len(ws.Keys) {
		t.Fatalf("snapshot sizes %d ≠ %d", len(ws.Keys), len(rs.Keys))
	}
	for i := range rs.Keys {
		if rs.Keys[i] != ws.Keys[i] {
			t.Fatalf("snapshot entry %d: in-memory %+v, serialized %+v", i, rs.Keys[i], ws.Keys[i])
		}
	}
	rtab := map[tuple.Key]int{}
	rst.AssignmentRouter().Assignment().Table().Each(func(k tuple.Key, d int) { rtab[k] = d })
	wtab := map[tuple.Key]int{}
	wst.AssignmentRouter().Assignment().Table().Each(func(k tuple.Key, d int) { wtab[k] = d })
	if len(rtab) != len(wtab) {
		t.Fatalf("table sizes %d ≠ %d", len(wtab), len(rtab))
	}
	for k, d := range rtab {
		if wtab[k] != d {
			t.Fatalf("table entry %d: in-memory %d, serialized %d", k, d, wtab[k])
		}
	}
	if rst.Instances() != wst.Instances() {
		t.Fatalf("instance counts %d ≠ %d", wst.Instances(), rst.Instances())
	}
	for d := 0; d < rst.Instances(); d++ {
		if a, b := rst.StoreOf(d).TotalSize(), wst.StoreOf(d).TotalSize(); a != b {
			t.Fatalf("instance %d state: in-memory %d, serialized %d", d, a, b)
		}
		if a, b := rst.StoreOf(d).KeyCount(), wst.StoreOf(d).KeyCount(); a != b {
			t.Fatalf("instance %d key count: in-memory %d, serialized %d", d, a, b)
		}
	}
}

// TestStateWireLiveFeeders is the -race stress of serialized-state
// migration under live traffic: four feeders emit into a pipelined
// two-stage pause-free topology with StateWire on while a controller
// applies rebalance plans continuously. Zero loss, no double-delivery,
// exact final placement, no codec fallbacks — the serializer runs
// inside migration barriers with feeders pounding both stages.
func TestStateWireLiveFeeders(t *testing.T) {
	const (
		nd          = 4
		feeders     = 4
		keyDomain   = 100
		chunk       = 64
		minChunks   = 8
		plansTarget = 8
	)
	fleet0 := make([]*forwardCountOp, nd)
	st0 := NewStage("sw-up", nd, func(id int) Operator {
		fleet0[id] = &forwardCountOp{countingOp{counts: make(map[tuple.Key]int64)}}
		return fleet0[id]
	}, 2, newAsgRouter(nd))
	defer st0.Stop()
	fleet1 := make([]*countingOp, nd)
	st1 := NewStage("sw-down", nd, func(id int) Operator {
		fleet1[id] = &countingOp{counts: make(map[tuple.Key]int64)}
		return fleet1[id]
	}, 2, newAsgRouter(nd))
	defer st1.Stop()
	st0.SetDownstream(st1)
	for _, st := range []*Stage{st0, st1} {
		if err := st.SetPauseFree(true); err != nil {
			t.Fatal(err)
		}
		st.SetStateWire(true)
	}

	pre := make([]tuple.Tuple, 2*keyDomain)
	for i := range pre {
		pre[i] = tuple.New(tuple.Key(i%keyDomain), int64(i))
	}
	st0.FeedBatch(pre)
	st0.Barrier()
	st1.Barrier()

	var payloads atomic.Int64
	obs := func(k tuple.Key, from, to int, size int64, payload []byte) {
		if payload != nil {
			payloads.Add(1)
		}
	}

	stop := make(chan struct{})
	var ctlWg sync.WaitGroup
	ctlWg.Add(1)
	go func() {
		defer ctlWg.Done()
		defer close(stop)
		for i := 0; i < plansTarget; i++ {
			st := st0
			if i%2 == 1 {
				st = st1
			}
			asg := st.AssignmentRouter().Assignment()
			tab := asg.Table().Clone()
			plan := &balance.Plan{Table: tab, MoveDest: map[tuple.Key]int{}}
			for k := tuple.Key(i % 5); k < keyDomain; k += 5 {
				dst := (asg.Dest(k) + 1) % nd
				tab.Put(k, dst)
				plan.Moved = append(plan.Moved, k)
				plan.MoveDest[k] = dst
			}
			if _, err := st.ApplyPlanObserved(plan, obs); err != nil {
				t.Errorf("ApplyPlanObserved: %v", err)
				return
			}
		}
	}()

	var seq atomic.Uint64
	shards := ShardSpout(func(dst []tuple.Tuple) int {
		for i := range dst {
			n := seq.Add(1) - 1
			dst[i] = tuple.New(tuple.Key(n%keyDomain), int64(n))
		}
		return len(dst)
	}, feeders)
	var wg sync.WaitGroup
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func(sb SpoutBatch) {
			defer wg.Done()
			buf := make([]tuple.Tuple, chunk)
			for j := 0; ; j++ {
				if j >= minChunks {
					select {
					case <-stop:
						return
					default:
					}
				}
				got := sb(buf[:chunk])
				st0.FeedBatch(buf[:got])
				time.Sleep(time.Millisecond)
			}
		}(shards[f])
	}
	ctlWg.Wait()
	wg.Wait()
	if t.Failed() {
		return
	}

	st0.Barrier()
	st0.CloseInterval()
	st1.Barrier()

	if payloads.Load() == 0 {
		t.Fatal("no migration carried a serialized payload; the stress is vacuous")
	}
	for si, st := range []*Stage{st0, st1} {
		if errs := st.StateWireErrs(); errs != 0 {
			t.Fatalf("stage %d: %d codec round-trip failures fell back to reference state", si, errs)
		}
	}

	fedPerKey := make(map[tuple.Key]int64)
	for i := range pre {
		fedPerKey[pre[i].Key]++
	}
	total := int64(seq.Load())
	for n := int64(0); n < total; n++ {
		fedPerKey[tuple.Key(n%int64(keyDomain))]++
	}
	got0 := make(map[tuple.Key]int64)
	for _, op := range fleet0 {
		for k, n := range op.counts {
			got0[k] += n
		}
	}
	got1 := mergedCounts(fleet1)
	for k, n := range fedPerKey {
		if got0[k] != n {
			t.Fatalf("stage 0 processed key %d %d times, fed %d (loss or double-delivery)", k, got0[k], n)
		}
		if got1[k] != n {
			t.Fatalf("stage 1 processed key %d %d times, stage 0 emitted %d", k, got1[k], n)
		}
	}
	for si, st := range []*Stage{st0, st1} {
		cur := st.AssignmentRouter().Assignment()
		var totalState int64
		for k := tuple.Key(0); k < keyDomain; k++ {
			home := cur.Dest(k)
			for d := 0; d < nd; d++ {
				sz := st.StoreOf(d).Size(k)
				totalState += sz
				if d != home && sz != 0 {
					t.Fatalf("stage %d key %d leaked %d state units on instance %d (home %d)", si, k, sz, d, home)
				}
			}
		}
		if want := int64(len(pre)) + total; totalState != want {
			t.Fatalf("stage %d total state %d, want %d", si, totalState, want)
		}
	}
}
