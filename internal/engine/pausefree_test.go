package engine

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/balance"
	"repro/internal/stats"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// Tests of pause-free migration: the generation-stamped routing path
// must be bit-identical to the pausing oracle at hook time, and must
// survive continuous plan application under live traffic with zero
// tuple loss and no double-delivery (run under -race by the suite).

// TestPauseFreeMatchesPausingOracle pins the tentpole equivalence
// claim: the same spout and the same randomized plan schedule, run
// once pause-free and once through the pausing oracle, produce
// bit-identical interval series, final harvest snapshots, routing
// tables and state placement.
func TestPauseFreeMatchesPausingOracle(t *testing.T) {
	run := func(pauseFree bool) (*Engine, *Stage) {
		gen := workload.NewZipfStream(1500, 0.9, 0, 8000, 41)
		st := statefulStage(4, 2)
		cfg := DefaultConfig()
		cfg.Budget = 8000
		cfg.PauseFree = pauseFree
		e := NewBatch(gen.NextBatch, cfg, st)
		if st.PauseFree() != pauseFree {
			t.Fatalf("stage pause-free = %v, want %v", st.PauseFree(), pauseFree)
		}
		// Seeded random plan schedule: each interval (with probability
		// 3/4) roughly 6% of the harvested keys move to a random other
		// instance. Both modes see identical snapshots, so identical
		// seeds yield identical schedules — the inductive step of the
		// equivalence pin.
		rng := rand.New(rand.NewSource(97))
		e.AddSnapshotHook(0, func(e *Engine, si int, snap *stats.Snapshot) *Rebalance {
			if len(snap.Keys) == 0 || rng.Intn(4) == 0 {
				return nil
			}
			stage := e.Stages[si]
			asg := stage.AssignmentRouter().Assignment()
			tab := asg.Table().Clone()
			plan := &balance.Plan{Table: tab, MoveDest: map[tuple.Key]int{}}
			for _, ks := range snap.Keys {
				if rng.Intn(16) != 0 {
					continue
				}
				dst := (asg.Dest(ks.Key) + 1 + rng.Intn(snap.ND-1)) % snap.ND
				tab.Put(ks.Key, dst)
				plan.Moved = append(plan.Moved, ks.Key)
				plan.MoveDest[ks.Key] = dst
			}
			if len(plan.Moved) == 0 {
				return nil
			}
			moved, err := stage.ApplyPlan(plan)
			if err != nil {
				t.Fatalf("ApplyPlan(pauseFree=%v): %v", pauseFree, err)
			}
			return &Rebalance{Plan: plan, Moved: moved}
		})
		e.Run(8)
		return e, st
	}

	oracle, ost := run(false)
	defer oracle.Stop()
	live, lst := run(true)
	defer live.Stop()

	for i := range oracle.Recorder.Series {
		a, b := oracle.Recorder.Series[i], live.Recorder.Series[i]
		a.PlanMs, b.PlanMs = 0, 0
		if a != b {
			t.Fatalf("interval %d diverges:\npausing    %+v\npause-free %+v", i, a, b)
		}
	}
	os, ls := oracle.LastSnapshots()[0], live.LastSnapshots()[0]
	if len(os.Keys) != len(ls.Keys) {
		t.Fatalf("snapshot sizes %d ≠ %d", len(ls.Keys), len(os.Keys))
	}
	for i := range os.Keys {
		if os.Keys[i] != ls.Keys[i] {
			t.Fatalf("snapshot entry %d: pausing %+v, pause-free %+v", i, os.Keys[i], ls.Keys[i])
		}
	}
	otab := map[tuple.Key]int{}
	ost.AssignmentRouter().Assignment().Table().Each(func(k tuple.Key, d int) { otab[k] = d })
	ltab := map[tuple.Key]int{}
	lst.AssignmentRouter().Assignment().Table().Each(func(k tuple.Key, d int) { ltab[k] = d })
	if len(otab) != len(ltab) {
		t.Fatalf("table sizes %d ≠ %d", len(ltab), len(otab))
	}
	for k, d := range otab {
		if ltab[k] != d {
			t.Fatalf("table entry %d: pausing %d, pause-free %d", k, d, ltab[k])
		}
	}
	for d := 0; d < 4; d++ {
		if a, b := ost.StoreOf(d).TotalSize(), lst.StoreOf(d).TotalSize(); a != b {
			t.Fatalf("instance %d state: pausing %d, pause-free %d", d, a, b)
		}
	}
	if lst.AssignmentRouter().Assignment().Gen() == 0 {
		t.Fatal("pause-free run never advanced the routing generation")
	}
}

// forwardCountOp counts like countingOp and streams every tuple
// downstream — the stage-0 operator of the pipelined stress topology.
type forwardCountOp struct {
	countingOp
}

func (f *forwardCountOp) Process(ctx *TaskCtx, tp tuple.Tuple) {
	f.countingOp.Process(ctx, tp)
	ctx.Emit(tp)
}

// TestPauseFreeStressContinuousPlans is the -race stress of the
// generation protocol end to end: four feeder goroutines emit into a
// pipelined two-stage topology (both stages pause-free) while a
// controller goroutine applies rebalance plans continuously to both
// stages. Every tuple must be processed exactly once per stage — zero
// loss, no double-delivery — and every migrated key's state must sit
// exactly at its final planned home.
func TestPauseFreeStressContinuousPlans(t *testing.T) {
	const (
		nd          = 4
		feeders     = 4
		keyDomain   = 100
		chunk       = 64
		minChunks   = 8  // each feeder emits at least this many chunks
		plansTarget = 12 // controller applies exactly this many plans
	)
	fleet0 := make([]*forwardCountOp, nd)
	st0 := NewStage("pf-up", nd, func(id int) Operator {
		fleet0[id] = &forwardCountOp{countingOp{counts: make(map[tuple.Key]int64)}}
		return fleet0[id]
	}, 2, newAsgRouter(nd))
	defer st0.Stop()
	fleet1 := make([]*countingOp, nd)
	st1 := NewStage("pf-down", nd, func(id int) Operator {
		fleet1[id] = &countingOp{counts: make(map[tuple.Key]int64)}
		return fleet1[id]
	}, 2, newAsgRouter(nd))
	defer st1.Stop()
	st0.SetDownstream(st1)
	for _, st := range []*Stage{st0, st1} {
		if err := st.SetPauseFree(true); err != nil {
			t.Fatal(err)
		}
	}

	// Preload both stages so every plan migrates real state.
	pre := make([]tuple.Tuple, 2*keyDomain)
	for i := range pre {
		pre[i] = tuple.New(tuple.Key(i%keyDomain), i)
	}
	st0.FeedBatch(pre)
	st0.Barrier()
	st1.Barrier()

	// Controller goroutine: rotate a different seventh of the key
	// domain one instance over, alternating stages, for plansTarget
	// plans; feeders keep emitting until it is done.
	stop := make(chan struct{})
	var ctlWg sync.WaitGroup
	ctlWg.Add(1)
	go func() {
		defer ctlWg.Done()
		defer close(stop)
		for i := 0; i < plansTarget; i++ {
			st := st0
			if i%2 == 1 {
				st = st1
			}
			asg := st.AssignmentRouter().Assignment()
			tab := asg.Table().Clone()
			plan := &balance.Plan{Table: tab, MoveDest: map[tuple.Key]int{}}
			for k := tuple.Key(i % 7); k < keyDomain; k += 7 {
				dst := (asg.Dest(k) + 1) % nd
				tab.Put(k, dst)
				plan.Moved = append(plan.Moved, k)
				plan.MoveDest[k] = dst
			}
			if _, err := st.ApplyPlan(plan); err != nil {
				t.Errorf("ApplyPlan: %v", err)
				return
			}
		}
	}()

	// Four feeders drawing disjoint shares of one shard-split sequence.
	var seq atomic.Uint64
	shards := ShardSpout(func(dst []tuple.Tuple) int {
		for i := range dst {
			n := seq.Add(1) - 1
			dst[i] = tuple.New(tuple.Key(n%keyDomain), n)
		}
		return len(dst)
	}, feeders)
	var wg sync.WaitGroup
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func(sb SpoutBatch) {
			defer wg.Done()
			buf := make([]tuple.Tuple, chunk)
			for j := 0; ; j++ {
				if j >= minChunks {
					select {
					case <-stop:
						return
					default:
					}
				}
				got := sb(buf[:chunk])
				st0.FeedBatch(buf[:got])
				// Pace the offered load below saturation: a saturated
				// 4096-deep task queue would make every migration
				// barrier wait behind a full queue drain, turning the
				// stress into a minutes-long slog under -race without
				// sharpening it.
				time.Sleep(time.Millisecond)
			}
		}(shards[f])
	}
	ctlWg.Wait()
	wg.Wait()
	if t.Failed() {
		return
	}

	// Drain: finish stage 0, flush its residual emissions downstream,
	// then finish stage 1.
	st0.Barrier()
	st0.CloseInterval()
	st1.Barrier()

	fedPerKey := make(map[tuple.Key]int64)
	for i := range pre {
		fedPerKey[pre[i].Key]++
	}
	total := int64(seq.Load())
	for n := int64(0); n < total; n++ {
		fedPerKey[tuple.Key(n%int64(keyDomain))]++
	}

	got0 := make(map[tuple.Key]int64)
	for _, op := range fleet0 {
		for k, n := range op.counts {
			got0[k] += n
		}
	}
	got1 := mergedCounts(fleet1)
	for k, n := range fedPerKey {
		if got0[k] != n {
			t.Fatalf("stage 0 processed key %d %d times, fed %d (loss or double-delivery)", k, got0[k], n)
		}
		if got1[k] != n {
			t.Fatalf("stage 1 processed key %d %d times, stage 0 emitted %d", k, got1[k], n)
		}
	}
	if len(got0) != len(fedPerKey) || len(got1) != len(fedPerKey) {
		t.Fatalf("key cardinality: fed %d, stage0 %d, stage1 %d", len(fedPerKey), len(got0), len(got1))
	}

	// Placement: every key's state sits exactly at its current home on
	// both stages, and volumes add up to the fed totals.
	for si, st := range []*Stage{st0, st1} {
		cur := st.AssignmentRouter().Assignment()
		var totalState int64
		for k := tuple.Key(0); k < keyDomain; k++ {
			home := cur.Dest(k)
			for d := 0; d < nd; d++ {
				sz := st.StoreOf(d).Size(k)
				totalState += sz
				if d != home && sz != 0 {
					t.Fatalf("stage %d key %d leaked %d state units on instance %d (home %d)", si, k, sz, d, home)
				}
			}
		}
		want := int64(len(pre)) + total
		if totalState != want {
			t.Fatalf("stage %d total state %d, want %d", si, totalState, want)
		}
	}
}
