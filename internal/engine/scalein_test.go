package engine

import (
	"testing"

	"repro/internal/balance"
	"repro/internal/route"
	"repro/internal/tuple"
)

// feedInterval pushes one interval's worth of keys through the stage
// and closes it.
func feedInterval(st *Stage, interval int64, keys int) {
	for k := 0; k < keys; k++ {
		st.Feed(tuple.New(tuple.Key(k), nil))
	}
	st.Barrier()
	st.EndInterval(interval)
}

func liveStateTotal(st *Stage) int64 {
	var total int64
	for d := 0; d < st.Instances(); d++ {
		total += st.StoreOf(d).TotalSize()
	}
	return total
}

// TestStageScaleInMigratesEverything pins the scale-in contract: the
// retiring instance's keys — hash-owned and table-routed alike — all
// land on survivors with state volume preserved, the routing table
// drops its entries for the retired destination, and the observer sees
// every transfer leave the retiring instance.
func TestStageScaleInMigratesEverything(t *testing.T) {
	st := statefulStage(3, 2)
	defer st.Stop()
	const keys = 300
	feedInterval(st, 0, keys)

	// Pin a key whose hash home is elsewhere onto the retiring instance
	// through the routing table, so scale-in must also handle the
	// explicit-entry case (entry pruned, key falls back to its ring
	// home on a survivor... or migrates off the retiree).
	asg := st.AssignmentRouter().Assignment()
	var pinned tuple.Key
	for k := tuple.Key(0); k < keys; k++ {
		if asg.HashDest(k) != 2 {
			pinned = k
			break
		}
	}
	plan := &balance.Plan{
		Table:    route.NewTable(),
		Moved:    []tuple.Key{pinned},
		MoveDest: map[tuple.Key]int{pinned: 2},
	}
	plan.Table.Put(pinned, 2)
	st.ApplyPlan(plan)

	before := liveStateTotal(st)
	if st.StoreOf(2).TotalSize() == 0 {
		t.Fatal("retiring instance holds no state; the test is vacuous")
	}

	var transferred int64
	moved, errScaleIn := st.ScaleInObserved(func(k tuple.Key, from, to int, size int64, payload []byte) {
		if from != 2 {
			t.Fatalf("key %d migrated from surviving instance %d during scale-in", k, from)
		}
		if to < 0 || to >= 2 {
			t.Fatalf("key %d migrated to %d, not a survivor", k, to)
		}
		transferred += size
	})
	if errScaleIn != nil {
		t.Fatalf("ScaleInObserved: %v", errScaleIn)
	}

	if st.Instances() != 2 {
		t.Fatalf("instances = %d after scale-in", st.Instances())
	}
	if moved != transferred {
		t.Fatalf("moved %d but observer saw %d", moved, transferred)
	}
	if moved == 0 {
		t.Fatal("scale-in moved no state")
	}
	if got := liveStateTotal(st); got != before {
		t.Fatalf("state volume %d after scale-in, want %d (no loss)", got, before)
	}
	newAsg := st.AssignmentRouter().Assignment()
	if newAsg.Instances() != 2 {
		t.Fatalf("assignment still spans %d instances", newAsg.Instances())
	}
	if d, ok := newAsg.Table().Lookup(pinned); ok && d >= 2 {
		t.Fatalf("pinned key's table entry still points at retired instance %d", d)
	}
	for k := tuple.Key(0); k < keys; k++ {
		d := newAsg.Dest(k)
		if d < 0 || d >= 2 {
			t.Fatalf("key %d routes to %d after scale-in", k, d)
		}
		if got := st.StoreOf(d).Size(k); got == 0 {
			t.Fatalf("key %d has no state at its post-scale-in home %d", k, d)
		}
	}
	// Surviving instances' hash arcs are untouched: keys not owned by
	// the retiree keep their exact placement (consistent hashing).
	for k := tuple.Key(0); k < keys; k++ {
		if k != pinned && asg.Dest(k) != 2 {
			if newAsg.Dest(k) != asg.Dest(k) {
				t.Fatalf("key %d moved between survivors (%d -> %d)", k, asg.Dest(k), newAsg.Dest(k))
			}
		}
	}
}

// TestStageScaleInCarriesTrackerHistory verifies statistics follow the
// keys: after scale-in, the next harvest reports every key at a
// surviving destination with its windowed memory intact.
func TestStageScaleInCarriesTrackerHistory(t *testing.T) {
	st := statefulStage(3, 3) // 3-interval window: history spans harvests
	defer st.Stop()
	const keys = 120
	feedInterval(st, 0, keys)
	st.ScaleIn()

	// Next interval: feed the same keys again and harvest. Every key's
	// windowed memory must span both intervals (2 units) — including
	// the migrated keys, whose pre-scale-in unit was carried over by
	// the tracker adoption — and every report must come from a
	// survivor.
	for k := 0; k < keys; k++ {
		st.Feed(tuple.New(tuple.Key(k), nil))
	}
	st.Barrier()
	snap := st.EndInterval(1)
	if snap.ND != 2 {
		t.Fatalf("snapshot ND = %d", snap.ND)
	}
	if len(snap.Keys) != keys {
		t.Fatalf("harvest reports %d keys, want %d", len(snap.Keys), keys)
	}
	for _, ks := range snap.Keys {
		if ks.Dest >= 2 {
			t.Fatalf("key %d reported by retired instance %d", ks.Key, ks.Dest)
		}
		if ks.Mem != 2 {
			t.Fatalf("key %d windowed memory = %d, want 2 (history lost in migration)", ks.Key, ks.Mem)
		}
	}
}

// TestEngineResizeStageRoundTrip drives the engine-level actuator both
// directions mid-run and checks the model keeps working at each width.
func TestEngineResizeStageRoundTrip(t *testing.T) {
	st := statefulStage(3, 1)
	cfg := DefaultConfig()
	cfg.Budget = 3000
	var n uint64
	e := New(func() tuple.Tuple {
		n++
		return tuple.New(tuple.Key(n%200), nil)
	}, cfg, st)
	defer e.Stop()
	e.Run(2)
	if moved, err := e.ResizeStage(0, +1); err != nil || moved == 0 {
		t.Fatalf("scale-out moved nothing (moved=%d, err=%v)", moved, err)
	}
	e.Run(2)
	if moved, err := e.ResizeStage(0, -1); err != nil || moved == 0 {
		t.Fatalf("scale-in moved nothing (moved=%d, err=%v)", moved, err)
	}
	if st.Instances() != 3 {
		t.Fatalf("instances = %d after round trip", st.Instances())
	}
	e.Run(2)
	if e.Recorder.Len() != 6 {
		t.Fatalf("recorded %d intervals", e.Recorder.Len())
	}
	for _, m := range e.Recorder.Series {
		if m.Throughput <= 0 {
			t.Fatalf("interval %d throughput %.0f after resizes", m.Index, m.Throughput)
		}
	}
}

// TestScaleInGuards pins the failure modes: no assignment router, and
// a single-instance stage.
func TestScaleInGuards(t *testing.T) {
	shuffle := NewStage("sh", 2, func(int) Operator { return Discard }, 1, NewShuffleRouter(2))
	defer shuffle.Stop()
	if _, err := shuffle.ScaleIn(); err == nil {
		t.Fatal("shuffle scale-in did not error")
	}

	single := statefulStage(1, 1)
	defer single.Stop()
	if _, err := single.ScaleIn(); err == nil {
		t.Fatal("single-instance scale-in did not error")
	}
	if single.Instances() != 1 {
		t.Fatalf("failed scale-in changed instance count to %d", single.Instances())
	}
}
