package engine

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/balance"
	"repro/internal/route"
	"repro/internal/state"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// Tests of the streaming inter-stage pipeline: Cfg.Pipeline must change
// cost, not semantics — the downstream multiset, per-interval metrics,
// harvest snapshots and backpressure behavior stay identical to the
// store-and-forward driver, and task-goroutine flushes must survive
// live migration of the downstream stage under -race.

// mkTwoStageEngine builds a map→count topology over a seeded Zipf draw:
// stage 0 forwards a derived tuple per input, stage 1 counts arrivals
// per key into windowed state. Returns the engine, both stages and the
// downstream counting fleet.
func mkTwoStageEngine(pipelined bool) (*Engine, *Stage, *Stage, []*countingOp) {
	const nd = 4
	gen := workload.NewZipfStream(1500, 0.9, 0, 8000, 29)
	fwd := OperatorFunc(func(ctx *TaskCtx, tp tuple.Tuple) {
		ctx.Emit(tuple.New(tp.Key, nil))
	})
	s0 := NewStage("map", nd, func(int) Operator { return fwd }, 1, newAsgRouter(nd))
	fleet := make([]*countingOp, nd)
	s1 := NewStage("count", nd, func(id int) Operator {
		fleet[id] = &countingOp{counts: make(map[tuple.Key]int64)}
		return fleet[id]
	}, 2, newAsgRouter(nd))
	cfg := DefaultConfig()
	cfg.Budget = 8000
	cfg.Pipeline = pipelined
	e := NewBatch(gen.NextBatch, cfg, s0, s1)
	return e, s0, s1, fleet
}

// TestPipelineMatchesStoreAndForward pins the tentpole equivalence
// claim: with Cfg.Pipeline the per-interval metric series, the harvest
// snapshots of both stages and the downstream tuple multiset equal the
// store-and-forward run over identical seeds.
func TestPipelineMatchesStoreAndForward(t *testing.T) {
	sf, _, _, sfFleet := mkTwoStageEngine(false)
	defer sf.Stop()
	sf.Run(5)

	pl, _, _, plFleet := mkTwoStageEngine(true)
	defer pl.Stop()
	pl.Run(5)

	for i := 0; i < 5; i++ {
		ma, mb := sf.Recorder.Series[i], pl.Recorder.Series[i]
		if ma != mb {
			t.Fatalf("interval %d metrics diverge:\nstore-and-forward %+v\npipelined         %+v", i, ma, mb)
		}
	}
	for si := 0; si < 2; si++ {
		sa, sb := sf.LastSnapshots()[si], pl.LastSnapshots()[si]
		if len(sa.Keys) != len(sb.Keys) {
			t.Fatalf("stage %d snapshot sizes %d ≠ %d", si, len(sb.Keys), len(sa.Keys))
		}
		for i := range sa.Keys {
			if sa.Keys[i] != sb.Keys[i] {
				t.Fatalf("stage %d snapshot entry %d: %+v ≠ %+v", si, i, sb.Keys[i], sa.Keys[i])
			}
		}
	}
	want, got := mergedCounts(sfFleet), mergedCounts(plFleet)
	if len(want) != len(got) {
		t.Fatalf("downstream distinct keys %d ≠ %d", len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("key %d reached stage 1 %d times pipelined, %d store-and-forward", k, got[k], n)
		}
	}
}

// TestPipelineSingleStageFallsBackToLegacy pins that Cfg.Pipeline on a
// single-stage topology is a no-op: the store-and-forward close runs
// and emissions are drained (and dropped) exactly as before.
func TestPipelineSingleStageFallsBackToLegacy(t *testing.T) {
	mk := func(pipelined bool) *Engine {
		st := statefulStage(2, 1)
		cfg := DefaultConfig()
		cfg.Budget = 2000
		cfg.Pipeline = pipelined
		var n uint64
		return New(func() tuple.Tuple {
			n++
			return tuple.New(tuple.Key(n%100), nil)
		}, cfg, st)
	}
	a, b := mk(false), mk(true)
	defer a.Stop()
	defer b.Stop()
	a.Run(3)
	b.Run(3)
	for i := range a.Recorder.Series {
		if a.Recorder.Series[i] != b.Recorder.Series[i] {
			t.Fatalf("single-stage interval %d diverges under Pipeline", i)
		}
	}
}

// TestBackpressureScansAllStages pins the max-pending fix: a backlogged
// downstream stage throttles the spout even though the target stage is
// clear, with the same proportional formula the single-stage engine
// always used.
func TestBackpressureScansAllStages(t *testing.T) {
	fwd := OperatorFunc(func(ctx *TaskCtx, tp tuple.Tuple) { ctx.Emit(tuple.New(tp.Key, nil)) })
	mk := func() (*Engine, *Stage) {
		s0 := NewStage("map", 1, func(int) Operator { return fwd }, 1, newAsgRouter(1))
		s1 := NewStage("count", 1, func(int) Operator { return Discard }, 1, newAsgRouter(1))
		cfg := DefaultConfig()
		cfg.Budget = 1000 // capacity 1000 per stage, pending threshold 500
		var n uint64
		e := New(func() tuple.Tuple {
			n++
			return tuple.New(tuple.Key(n%50), nil)
		}, cfg, s0, s1)
		return e, s1
	}
	for _, pipelined := range []bool{false, true} {
		e, s1 := mk()
		e.Cfg.Pipeline = pipelined
		// A downstream backlog of 2000 against threshold 500 must
		// throttle emission to 500/2000 of the budget: 250 tuples.
		s1.Backlog[0] = 2000
		e.RunInterval()
		e.Stop()
		if got := e.LastEmitted(); got != 250 {
			t.Fatalf("pipelined=%v: downstream backlog 2000 emitted %d, want 250", pipelined, got)
		}
	}
}

// TestBackpressureSingleStageUnchanged pins that the all-stage scan
// reproduces the original single-stage throttle exactly, including the
// 0.1 floor.
func TestBackpressureSingleStageUnchanged(t *testing.T) {
	for _, tc := range []struct {
		backlog int64
		want    int64
	}{
		{0, 1000},    // below threshold: full budget
		{500, 1000},  // at threshold: full budget
		{2000, 250},  // 500/2000 of 1000
		{50000, 100}, // floor at 0.1
	} {
		st := statefulStage(1, 1)
		cfg := DefaultConfig()
		cfg.Budget = 1000
		var n uint64
		e := New(func() tuple.Tuple {
			n++
			return tuple.New(tuple.Key(n%50), nil)
		}, cfg, st)
		st.Backlog[0] = tc.backlog
		e.RunInterval()
		e.Stop()
		if got := e.LastEmitted(); got != tc.want {
			t.Fatalf("backlog %d emitted %d, want %d", tc.backlog, got, tc.want)
		}
	}
}

// emitTickRecorder accumulates the EmitTick histogram of arriving
// tuples; instances share one map under a mutex (arrival order is not
// under test, the stamps are).
type emitTickRecorder struct {
	mu    *sync.Mutex
	ticks map[int64]int64
}

func (r emitTickRecorder) Process(ctx *TaskCtx, t tuple.Tuple) {
	r.mu.Lock()
	r.ticks[t.EmitTick]++
	r.mu.Unlock()
}

// TestEmitTickStampedAtEmission pins the emission-time stamp: tuples a
// stage emits carry the interval they were emitted in, on both
// transfer paths (previously the driver stamped them post hoc while
// concatenating).
func TestEmitTickStampedAtEmission(t *testing.T) {
	for _, pipelined := range []bool{false, true} {
		fwd := OperatorFunc(func(ctx *TaskCtx, tp tuple.Tuple) { ctx.Emit(tuple.New(tp.Key, nil)) })
		s0 := NewStage("map", 2, func(int) Operator { return fwd }, 1, newAsgRouter(2))
		rec := emitTickRecorder{mu: &sync.Mutex{}, ticks: make(map[int64]int64)}
		s1 := NewStage("sink", 2, func(int) Operator { return rec }, 1, newAsgRouter(2))
		cfg := DefaultConfig()
		cfg.Budget = 600
		cfg.Pipeline = pipelined
		var n uint64
		e := New(func() tuple.Tuple {
			n++
			return tuple.New(tuple.Key(n%40), nil)
		}, cfg, s0, s1)
		e.Run(3)
		e.Stop()
		for tick := int64(0); tick < 3; tick++ {
			if got := rec.ticks[tick]; got != 600 {
				t.Fatalf("pipelined=%v: %d tuples stamped with interval %d, want 600 (%v)",
					pipelined, got, tick, rec.ticks)
			}
		}
	}
}

// TestDrainEmittedReusesBuffer pins the legacy path's allocation
// behavior: successive drains of comparable volume reuse one backing
// array instead of reallocating the concatenation every interval.
func TestDrainEmittedReusesBuffer(t *testing.T) {
	fwd := OperatorFunc(func(ctx *TaskCtx, tp tuple.Tuple) { ctx.Emit(tp) })
	st := NewStage("f", 2, func(int) Operator { return fwd }, 1, newAsgRouter(2))
	defer st.Stop()
	feed := func() []tuple.Tuple {
		for i := 0; i < 100; i++ {
			st.Feed(tuple.New(tuple.Key(i), nil))
		}
		st.Barrier()
		return st.DrainEmitted()
	}
	first := feed()
	if len(first) != 100 {
		t.Fatalf("drained %d, want 100", len(first))
	}
	second := feed()
	if len(second) != 100 {
		t.Fatalf("drained %d, want 100", len(second))
	}
	if &first[0] != &second[0] {
		t.Fatal("second drain did not reuse the first drain's backing array")
	}
}

// TestPipelineConcurrentWithApplyPlanLive is the -race stress test of
// streaming transfer against live migration: upstream tasks flush
// emissions into the downstream stage from their own goroutines while
// a controller goroutine applies a live plan to that stage. No tuple
// may be lost — flushes for paused keys must be held and replayed —
// and migrated keys must land exactly at their planned destinations.
func TestPipelineConcurrentWithApplyPlanLive(t *testing.T) {
	const (
		nd        = 4
		keyDomain = 120
		total     = 24000
		chunk     = 256
	)
	fwd := OperatorFunc(func(ctx *TaskCtx, tp tuple.Tuple) { ctx.Emit(tp) })
	s0 := NewStage("up", nd, func(int) Operator { return fwd }, 1, newAsgRouter(nd))
	defer s0.Stop()
	var processed atomic.Int64
	s1 := NewStage("down", nd, func(int) Operator {
		return OperatorFunc(func(ctx *TaskCtx, tp tuple.Tuple) {
			ctx.Store.Add(tp.Key, state.Entry{Value: tp.Value, Size: tp.StateSize})
			processed.Add(1)
		})
	}, 2, newAsgRouter(nd))
	defer s1.Stop()
	s0.SetDownstream(s1)
	s0.StartInterval(0)

	// Preload the downstream stage so migration has state to move.
	pre := make([]tuple.Tuple, 2*keyDomain)
	for i := range pre {
		pre[i] = tuple.New(tuple.Key(i%keyDomain), i)
	}
	s1.FeedBatch(pre)
	s1.Barrier()

	// Plan: every third key moves one instance over on the downstream
	// stage, mid-stream.
	asg := s1.AssignmentRouter().Assignment()
	tab := route.NewTable()
	plan := &balance.Plan{Table: tab, MoveDest: map[tuple.Key]int{}}
	for k := tuple.Key(0); k < keyDomain; k += 3 {
		dst := (asg.Dest(k) + 1) % nd
		tab.Put(k, dst)
		plan.Moved = append(plan.Moved, k)
		plan.MoveDest[k] = dst
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]tuple.Tuple, chunk)
		for j := 0; j < total; {
			c := total - j
			if c > chunk {
				c = chunk
			}
			for i := 0; i < c; i++ {
				buf[i] = tuple.New(tuple.Key((j+i)%keyDomain), j+i)
			}
			s0.FeedBatch(buf[:c])
			j += c
		}
	}()
	s1.ApplyPlanLive(plan)
	wg.Wait()
	s0.CloseInterval() // residual task buffers stream downstream
	s1.Barrier()

	want := int64(len(pre) + total)
	if got := processed.Load(); got != want {
		t.Fatalf("downstream processed %d of %d tuples across live migration", got, want)
	}
	cur := s1.AssignmentRouter().Assignment()
	for _, k := range plan.Moved {
		home := cur.Dest(k)
		if home != plan.MoveDest[k] {
			t.Fatalf("key %d routes to %d, plan said %d", k, home, plan.MoveDest[k])
		}
		for d := 0; d < nd; d++ {
			if d != home && s1.StoreOf(d).Size(k) != 0 {
				t.Fatalf("key %d leaked state on instance %d", k, d)
			}
		}
	}
	var totalState int64
	for d := 0; d < nd; d++ {
		totalState += s1.StoreOf(d).TotalSize()
	}
	if totalState != want {
		t.Fatalf("downstream state %d, want %d (tuple loss or duplication)", totalState, want)
	}
}
