package engine

import (
	"sync"
	"sync/atomic"

	"repro/internal/state"
	"repro/internal/stats"
	"repro/internal/tuple"
)

// batchBuf is a recycled backing array for batch messages: one
// FeedBatch call carves it into per-destination subslices, and the last
// task to finish processing returns it to the pool. Recycling keeps the
// hot path free of per-batch allocations (and the GC free of per-batch
// garbage), which profiling shows otherwise dominates the feeder.
type batchBuf struct {
	data []tuple.Tuple
	refs atomic.Int32
}

var batchBufPool = sync.Pool{New: func() any { return new(batchBuf) }}

// message is the unit of the task actor protocol: a batch of tuples, a
// single tuple, or a control thunk to execute on the task goroutine.
// Batches are the hot path — one channel operation amortized across
// hundreds of tuples; the single-tuple form keeps the legacy Feed path
// allocation-free. Control thunks with a done channel double as
// barriers: because the input channel is FIFO, acknowledging the thunk
// proves every earlier tuple has been fully processed.
type message struct {
	t    tuple.Tuple   // single tuple; valid when ts == nil and ctrl == nil
	ts   []tuple.Tuple // tuple batch; ownership passes to the task
	buf  *batchBuf     // shared backing of ts, refcounted for recycling
	ctrl func(*TaskCtx)
	done chan struct{}
}

// task is one running instance: a goroutine draining its input channel.
type task struct {
	id  int
	in  chan message
	ctx *TaskCtx
	op  Operator
	opB BatchOperator // non-nil when op implements the batch extension
	wg  sync.WaitGroup
}

// taskQueueDepth sizes each instance's input channel. Deep enough that
// the feeding loop rarely blocks within an interval, small enough to
// exercise real channel backpressure under pathological skew.
const taskQueueDepth = 4096

func newTask(id int, op Operator, window int) *task {
	opB, _ := op.(BatchOperator)
	t := &task{
		id:  id,
		in:  make(chan message, taskQueueDepth),
		op:  op,
		opB: opB,
		ctx: &TaskCtx{
			ID:      id,
			Store:   state.NewStore(window),
			Tracker: stats.NewTracker(window),
		},
	}
	t.wg.Add(1)
	go t.loop()
	return t
}

func (t *task) loop() {
	defer t.wg.Done()
	for m := range t.in {
		switch {
		case m.ctrl != nil:
			m.ctrl(t.ctx)
			if m.done != nil {
				close(m.done)
			}
		case m.ts != nil:
			if t.opB != nil {
				t.opB.ProcessBatch(t.ctx, m.ts)
			} else {
				for i := range m.ts {
					t.op.Process(t.ctx, m.ts[i])
				}
			}
			t.ctx.ProcessedCost += t.ctx.Tracker.ObserveBatch(m.ts)
			t.ctx.ProcessedTuples += int64(len(m.ts))
			if m.buf != nil && m.buf.refs.Add(-1) == 0 {
				batchBufPool.Put(m.buf)
			}
		default:
			t.op.Process(t.ctx, m.t)
			t.ctx.Tracker.Observe(m.t)
			t.ctx.ProcessedTuples++
			t.ctx.ProcessedCost += m.t.Cost
		}
	}
}

// send enqueues a tuple.
func (t *task) send(tp tuple.Tuple) { t.in <- message{t: tp} }

// sendBatch enqueues a batch; the slice must not be touched by the
// sender afterwards (ownership transfers to the task goroutine). buf,
// when non-nil, is the recycled backing array the batch was carved
// from; the task decrements its refcount after processing.
func (t *task) sendBatch(ts []tuple.Tuple, buf *batchBuf) { t.in <- message{ts: ts, buf: buf} }

// barrier runs fn on the task goroutine and waits for it; fn == nil is
// a pure drain barrier. After barrier returns, the caller may touch
// the task's ctx directly until it sends the next message (the channel
// handoff gives the necessary happens-before edges).
func (t *task) barrier(fn func(*TaskCtx)) {
	<-t.barrierAsync(fn)
}

// barrierAsync enqueues fn on the task goroutine and returns the done
// channel without waiting, so a caller can start one barrier per task
// and join them all — the parallel form Stage.EndInterval uses to
// harvest every tracker concurrently. The channel is closed after fn
// runs (receiving from it gives the happens-before edge on anything fn
// wrote).
func (t *task) barrierAsync(fn func(*TaskCtx)) chan struct{} {
	if fn == nil {
		fn = func(*TaskCtx) {}
	}
	done := make(chan struct{})
	t.in <- message{ctrl: fn, done: done}
	return done
}

// closeInterval enqueues the pipelined interval-close thunk: drain the
// queue, run the operator's FlushInterval hook when implemented, then
// flush the residual emission buffer downstream — or discard it on a
// sink-less last stage, matching the driver's store-and-forward
// drain-and-drop. Running on the task goroutine serializes the
// residual flush with the task's own mid-interval flushes. Returns the
// done channel so the stage can close all tasks concurrently.
func (t *task) closeInterval() chan struct{} {
	f, _ := t.op.(IntervalFlusher)
	return t.barrierAsync(func(ctx *TaskCtx) {
		if f != nil {
			f.FlushInterval(ctx)
		}
		if ctx.sink != nil {
			if len(ctx.out) > 0 {
				ctx.flushDown()
			}
		} else {
			ctx.out = ctx.out[:0]
		}
	})
}

// stop closes the input channel and waits for the goroutine to exit.
func (t *task) stop() {
	close(t.in)
	t.wg.Wait()
}
