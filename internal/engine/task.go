package engine

import (
	"sync"
	"sync/atomic"

	"repro/internal/state"
	"repro/internal/stats"
	"repro/internal/tuple"
)

// batchBuf is a recycled backing array for batch messages: one
// FeedBatch call carves it into per-destination subslices, and the last
// task to finish processing returns it to the pool. Recycling keeps the
// hot path free of per-batch allocations (and the GC free of per-batch
// garbage), which profiling shows otherwise dominates the feeder.
type batchBuf struct {
	data []tuple.Tuple
	refs atomic.Int32
}

var batchBufPool = sync.Pool{New: func() any { return new(batchBuf) }}

// message is the unit of the task actor protocol: a batch of tuples, a
// single tuple, or a control thunk to execute on the task goroutine.
// Batches are the hot path — one channel operation amortized across
// hundreds of tuples; the single-tuple form keeps the legacy Feed path
// allocation-free. Control thunks with a done channel double as
// barriers: because the input channel is FIFO, acknowledging the thunk
// proves every earlier tuple has been fully processed.
type message struct {
	t    tuple.Tuple   // single tuple; valid when ts == nil and ctrl == nil
	ts   []tuple.Tuple // tuple batch; ownership passes to the task
	buf  *batchBuf     // shared backing of ts, refcounted for recycling
	gen  uint64        // routing generation the sender resolved under (pause-free mode)
	ctrl func(*TaskCtx)
	done chan struct{}
}

// task is one running instance: a goroutine draining its input channel.
type task struct {
	id    int
	in    chan message
	ctx   *TaskCtx
	op    Operator
	opB   BatchOperator // non-nil when op implements the batch extension
	stage *Stage        // owning stage, for straggler re-feeds in pause-free mode
	wg    sync.WaitGroup

	// Pause-free migration state, touched only on the task goroutine
	// (armed/cleared via ctrl thunks, consulted by the processing loop).
	//
	// handoff holds per-migrating-key buffers on a *destination* task:
	// between the generation swap (which routes the key here) and the
	// arrival of its windowed state, tuples are parked instead of
	// processed, then replayed in arrival order once the state is
	// injected — so nothing is processed against missing state and
	// nothing is reordered.
	//
	// reroute marks keys extracted *away* from this task, with the
	// generation at which they left: a tuple still stamped with an
	// older generation is a straggler routed under the pre-swap
	// assignment and is forwarded through the stage's current router
	// instead of being processed against state that is no longer here.
	// Entries are retired by the migration's cleanup thunk once no
	// old-generation tuple can remain in flight.
	handoff map[tuple.Key][]tuple.Tuple
	reroute map[tuple.Key]uint64

	// Hot-key split state, likewise confined to the task goroutine.
	// split holds one commutative delta cell per split key this task
	// replicates: tuples for those keys are absorbed into the cell
	// (operator delta + arrival sums) instead of processed, and the
	// interval-close fold drains the cells back to each key's home
	// task. folder caches the operator's SplitFolder assertion.
	split  map[tuple.Key]*splitCell
	folder SplitFolder
}

// splitCell accumulates one split key's replica-side contribution
// since the last fold: the operator's commutative delta plus the
// cost/frequency/state sums the home task's tracker and processed-work
// accounting will absorb. Every field is a plain integer sum, so
// folding replicas in any order reconstructs exactly the cell an
// unsplit run would have accumulated.
type splitCell struct {
	delta int64
	cost  int64
	freq  int64
	mem   int64
}

func (c *splitCell) zero() bool {
	return c.delta == 0 && c.cost == 0 && c.freq == 0 && c.mem == 0
}

// taskQueueDepth sizes each instance's input channel. Deep enough that
// the feeding loop rarely blocks within an interval, small enough to
// exercise real channel backpressure under pathological skew.
const taskQueueDepth = 4096

func newTask(id int, op Operator, window int, stage *Stage) *task {
	opB, _ := op.(BatchOperator)
	folder, _ := op.(SplitFolder)
	t := &task{
		id:     id,
		in:     make(chan message, taskQueueDepth),
		op:     op,
		opB:    opB,
		folder: folder,
		stage:  stage,
		ctx: &TaskCtx{
			ID:      id,
			Store:   state.NewStore(window),
			Tracker: stats.NewTracker(window),
		},
	}
	if stage != nil {
		// A task created by scale-out joins the stage's harvest protocol
		// from birth; its tracker is fresh, so SetRetain cannot fail.
		_ = t.ctx.Tracker.SetRetain(stage.harvest.retain())
	}
	t.wg.Add(1)
	go t.loop()
	return t
}

func (t *task) loop() {
	defer t.wg.Done()
	for m := range t.in {
		switch {
		case m.ctrl != nil:
			m.ctrl(t.ctx)
			if m.done != nil {
				close(m.done)
			}
		case m.ts != nil:
			ts := m.ts
			if len(t.handoff)+len(t.reroute) != 0 {
				ts = t.divert(ts, m.gen)
			}
			if len(t.split) != 0 && len(ts) > 0 {
				ts = t.absorbSplit(ts)
			}
			if len(ts) > 0 {
				if t.opB != nil {
					t.opB.ProcessBatch(t.ctx, ts)
				} else {
					for i := range ts {
						t.op.Process(t.ctx, ts[i])
					}
				}
				t.ctx.ProcessedCost += t.ctx.Tracker.ObserveBatch(ts)
				t.ctx.ProcessedTuples += int64(len(ts))
			}
			if m.buf != nil && m.buf.refs.Add(-1) == 0 {
				batchBufPool.Put(m.buf)
			}
		default:
			if len(t.handoff)+len(t.reroute) != 0 {
				if buf, ok := t.handoff[m.t.Key]; ok {
					t.bufferHandoff(buf, m.t)
					continue
				}
				if _, ok := t.reroute[m.t.Key]; ok {
					t.stage.Feed(m.t)
					continue
				}
			}
			if len(t.split) != 0 {
				if c, ok := t.split[m.t.Key]; ok {
					t.absorbOne(c, m.t)
					continue
				}
			}
			t.op.Process(t.ctx, m.t)
			t.ctx.Tracker.Observe(m.t)
			t.ctx.ProcessedTuples++
			t.ctx.ProcessedCost += m.t.Cost
		}
	}
}

// divert is the pause-free migration slow path, entered only while a
// migration has keys armed or rerouted on this task. It compacts ts in
// place to the tuples this task should process now: tuples for armed
// keys are parked in their handoff buffer (replayed after state
// injection), tuples for keys that migrated away are forwarded through
// the stage's current router — the generation check that makes
// old-generation stragglers land on the key's new owner instead of
// being processed against extracted state. Runs on the task goroutine;
// handoff/reroute need no locks.
func (t *task) divert(ts []tuple.Tuple, gen uint64) []tuple.Tuple {
	keep := ts[:0]
	var fwd []tuple.Tuple
	for i := range ts {
		k := ts[i].Key
		if buf, ok := t.handoff[k]; ok {
			t.bufferHandoff(buf, ts[i])
			continue
		}
		if left, ok := t.reroute[k]; ok && gen < left {
			fwd = append(fwd, ts[i])
			continue
		} else if ok {
			// A tuple stamped at or after the generation that moved k
			// away cannot have been routed here by that assignment;
			// forward it too rather than process against absent state.
			fwd = append(fwd, ts[i])
			continue
		}
		keep = append(keep, ts[i])
	}
	if len(fwd) > 0 {
		// Re-feed through the stage: the current assignment routes these
		// keys to their post-migration owner (never back here — reroute
		// entries are cleared before any assignment could move the key
		// home again, so forwarding cannot cycle).
		t.stage.FeedBatch(fwd)
	}
	return keep
}

// absorbSplit is the hot-key replica path, entered only while this
// task replicates at least one split key. It compacts ts in place to
// the tuples this task should process normally; tuples for split keys
// are reduced into their delta cells — no operator state, no tracker
// observation, no processed-work accounting here. Everything the home
// task would have recorded is reconstructed from the cell sums at fold
// time, so the replica stays invisible to every interval observable.
func (t *task) absorbSplit(ts []tuple.Tuple) []tuple.Tuple {
	keep := ts[:0]
	for i := range ts {
		if c, ok := t.split[ts[i].Key]; ok {
			t.absorbOne(c, ts[i])
			continue
		}
		keep = append(keep, ts[i])
	}
	return keep
}

// absorbOne folds a single split-key tuple into its delta cell.
func (t *task) absorbOne(c *splitCell, tp tuple.Tuple) {
	if t.folder != nil {
		c.delta += t.folder.SplitAbsorb(tp)
	}
	c.cost += tp.Cost
	c.freq++
	c.mem += tp.StateSize
}

// armSplit enqueues the control thunk that opens delta cells for keys
// on this (replica) task. Like armHandoff it is called *before* the
// assignment swap that publishes the split, so channel FIFO guarantees
// the cells exist before the first split-routed tuple is dequeued.
// Already-armed keys keep their cell (fan growth re-arms survivors).
func (t *task) armSplit(keys []tuple.Key) {
	t.in <- message{ctrl: func(*TaskCtx) {
		if t.split == nil {
			t.split = make(map[tuple.Key]*splitCell)
		}
		for _, k := range keys {
			if _, ok := t.split[k]; !ok {
				t.split[k] = new(splitCell)
			}
		}
	}}
}

// bufferHandoff parks one tuple in key k's handoff buffer. The buffer
// is bounded softly: beyond handoffSoftCap the overflow is counted on
// the stage (observable backpressure signal) but the tuple is still
// kept — dropping would lose data, and blocking on the task goroutine
// would deadlock against the state-injection thunk queued behind us.
func (t *task) bufferHandoff(buf []tuple.Tuple, tp tuple.Tuple) {
	if len(buf) >= handoffSoftCap {
		t.stage.handoffOverflow.Add(1)
	}
	t.handoff[tp.Key] = append(buf, tp)
}

// armHandoff enqueues the control thunk that opens empty handoff
// buffers for keys on this (destination) task. The migration sequencer
// calls it *before* swapping the routing generation: channel FIFO then
// guarantees the buffers exist before the first new-generation tuple
// for any of these keys is dequeued.
func (t *task) armHandoff(keys []tuple.Key) {
	t.in <- message{ctrl: func(*TaskCtx) {
		if t.handoff == nil {
			t.handoff = make(map[tuple.Key][]tuple.Tuple)
		}
		for _, k := range keys {
			if _, ok := t.handoff[k]; !ok {
				t.handoff[k] = nil
			}
		}
	}}
}

// replayHandoff drains and retires key k's handoff buffer through the
// operator, in arrival order, with full tracker and processed-work
// accounting — the tuples the destination parked while the key's state
// was still in flight. Must run on the task goroutine (the migration
// sequencer invokes it from the state-injection barrier thunk).
func (t *task) replayHandoff(ctx *TaskCtx, k tuple.Key) {
	buf, ok := t.handoff[k]
	if !ok {
		return
	}
	delete(t.handoff, k)
	if len(buf) == 0 {
		return
	}
	// A replayed key may have become split while its state was in
	// flight (a non-split key's migration and a split announcement can
	// land in the same control round): absorb instead of processing so
	// the replica contract holds for the parked tuples too.
	if c, ok := t.split[k]; ok {
		for i := range buf {
			t.absorbOne(c, buf[i])
		}
		return
	}
	if t.opB != nil {
		t.opB.ProcessBatch(ctx, buf)
	} else {
		for i := range buf {
			t.op.Process(ctx, buf[i])
		}
	}
	ctx.ProcessedCost += ctx.Tracker.ObserveBatch(buf)
	ctx.ProcessedTuples += int64(len(buf))
}

// send enqueues a tuple.
func (t *task) send(tp tuple.Tuple, gen uint64) { t.in <- message{t: tp, gen: gen} }

// sendBatch enqueues a batch; the slice must not be touched by the
// sender afterwards (ownership transfers to the task goroutine). buf,
// when non-nil, is the recycled backing array the batch was carved
// from; the task decrements its refcount after processing. gen is the
// routing generation the sender resolved the batch under (0 on the
// legacy pausing path, which never consults it).
func (t *task) sendBatch(ts []tuple.Tuple, buf *batchBuf, gen uint64) {
	t.in <- message{ts: ts, buf: buf, gen: gen}
}

// barrier runs fn on the task goroutine and waits for it; fn == nil is
// a pure drain barrier. After barrier returns, the caller may touch
// the task's ctx directly until it sends the next message (the channel
// handoff gives the necessary happens-before edges).
func (t *task) barrier(fn func(*TaskCtx)) {
	<-t.barrierAsync(fn)
}

// barrierAsync enqueues fn on the task goroutine and returns the done
// channel without waiting, so a caller can start one barrier per task
// and join them all — the parallel form Stage.EndInterval uses to
// harvest every tracker concurrently. The channel is closed after fn
// runs (receiving from it gives the happens-before edge on anything fn
// wrote).
func (t *task) barrierAsync(fn func(*TaskCtx)) chan struct{} {
	if fn == nil {
		fn = func(*TaskCtx) {}
	}
	done := make(chan struct{})
	t.in <- message{ctrl: fn, done: done}
	return done
}

// closeInterval enqueues the pipelined interval-close thunk: drain the
// queue, run the operator's FlushInterval hook when implemented, then
// flush the residual emission buffer downstream — or discard it on a
// sink-less last stage, matching the driver's store-and-forward
// drain-and-drop. Running on the task goroutine serializes the
// residual flush with the task's own mid-interval flushes. Returns the
// done channel so the stage can close all tasks concurrently.
func (t *task) closeInterval() chan struct{} {
	f, _ := t.op.(IntervalFlusher)
	return t.barrierAsync(func(ctx *TaskCtx) {
		if f != nil {
			f.FlushInterval(ctx)
		}
		if ctx.sink != nil {
			if len(ctx.out) > 0 {
				ctx.flushDown()
			}
		} else {
			ctx.out = ctx.out[:0]
		}
	})
}

// stop closes the input channel and waits for the goroutine to exit.
func (t *task) stop() {
	close(t.in)
	t.wg.Wait()
}
