package engine

import (
	"sync"

	"repro/internal/state"
	"repro/internal/stats"
	"repro/internal/tuple"
)

// message is the unit of the task actor protocol: either a tuple to
// process or a control thunk to execute on the task goroutine. Control
// thunks with a done channel double as barriers: because the input
// channel is FIFO, acknowledging the thunk proves every earlier tuple
// has been fully processed.
type message struct {
	t    tuple.Tuple
	ctrl func(*TaskCtx)
	done chan struct{}
}

// task is one running instance: a goroutine draining its input channel.
type task struct {
	id  int
	in  chan message
	ctx *TaskCtx
	op  Operator
	wg  sync.WaitGroup
}

// taskQueueDepth sizes each instance's input channel. Deep enough that
// the feeding loop rarely blocks within an interval, small enough to
// exercise real channel backpressure under pathological skew.
const taskQueueDepth = 4096

func newTask(id int, op Operator, window int) *task {
	t := &task{
		id: id,
		in: make(chan message, taskQueueDepth),
		op: op,
		ctx: &TaskCtx{
			ID:      id,
			Store:   state.NewStore(window),
			Tracker: stats.NewTracker(window),
		},
	}
	t.wg.Add(1)
	go t.loop()
	return t
}

func (t *task) loop() {
	defer t.wg.Done()
	for m := range t.in {
		if m.ctrl != nil {
			m.ctrl(t.ctx)
			if m.done != nil {
				close(m.done)
			}
			continue
		}
		t.op.Process(t.ctx, m.t)
		t.ctx.Tracker.Observe(m.t)
		t.ctx.ProcessedTuples++
		t.ctx.ProcessedCost += m.t.Cost
	}
}

// send enqueues a tuple.
func (t *task) send(tp tuple.Tuple) { t.in <- message{t: tp} }

// barrier runs fn on the task goroutine and waits for it; fn == nil is
// a pure drain barrier. After barrier returns, the caller may touch
// the task's ctx directly until it sends the next message (the channel
// handoff gives the necessary happens-before edges).
func (t *task) barrier(fn func(*TaskCtx)) {
	if fn == nil {
		fn = func(*TaskCtx) {}
	}
	done := make(chan struct{})
	t.in <- message{ctrl: fn, done: done}
	<-done
}

// stop closes the input channel and waits for the goroutine to exit.
func (t *task) stop() {
	close(t.in)
	t.wg.Wait()
}
