package engine

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/balance"
	"repro/internal/stats"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// TestIncrementalMatchesFullHarvest pins the tentpole equivalence
// claim of the incremental interval close: the same spout driven
// through the same randomized control schedule — rebalance plans,
// scale-out, live scale-in and hot-key split churn — once under
// HarvestFull (the full-rescan oracle) and once under
// HarvestIncremental (dirty-key merge into persistent aggregates)
// produces bit-identical interval series, harvest snapshots, per-task
// deltas, routing tables and state placement. Run under -race by the
// CI suite.
func TestIncrementalMatchesFullHarvest(t *testing.T) {
	run := func(mode HarvestMode) (*Engine, *Stage) {
		gen := workload.NewZipfStream(1500, 0.9, 0, 8000, 41)
		st := statefulStage(4, 2)
		cfg := DefaultConfig()
		cfg.Budget = 8000
		cfg.Harvest = mode
		e := NewBatch(gen.NextBatch, cfg, st)
		if st.Harvest() != mode {
			t.Fatalf("stage harvest = %v, want %v", st.Harvest(), mode)
		}
		// Seeded random control schedule. Both modes see identical
		// snapshots, so identical seeds yield identical schedules — the
		// inductive step of the equivalence pin.
		rng := rand.New(rand.NewSource(97))
		splitOn := false
		e.AddSnapshotHook(0, func(e *Engine, si int, snap *stats.Snapshot) *Rebalance {
			if len(snap.Keys) == 0 {
				return nil
			}
			stage := e.Stages[si]
			switch rng.Intn(8) {
			case 0: // hold
				return nil
			case 1: // scale out
				if stage.Instances() >= 6 {
					return nil
				}
				if _, err := e.ResizeStage(si, +1); err != nil {
					t.Fatalf("ResizeStage(+1, %v): %v", mode, err)
				}
				return &Rebalance{ScaledOut: 1}
			case 2: // live scale-in
				if stage.Instances() <= 2 {
					return nil
				}
				if _, err := e.ResizeStage(si, -1); err != nil {
					t.Fatalf("ResizeStage(-1, %v): %v", mode, err)
				}
				return &Rebalance{ScaledIn: 1}
			case 3: // split churn: toggle a 2-fan split on the hottest key
				splitOn = !splitOn
				var set []stats.HotKey
				if splitOn {
					set = []stats.HotKey{{Key: snap.Keys[0].Key, Fan: 2}}
				}
				if err := stage.ApplySplitSet(set); err != nil {
					t.Fatalf("ApplySplitSet(%v): %v", mode, err)
				}
				return nil
			default: // rebalance ~6% of harvested keys
				asg := stage.AssignmentRouter().Assignment()
				tab := asg.Table().Clone()
				plan := &balance.Plan{Table: tab, MoveDest: map[tuple.Key]int{}}
				nd := stage.Instances()
				for _, ks := range snap.Keys {
					if rng.Intn(16) != 0 {
						continue
					}
					dst := (asg.Dest(ks.Key) + 1 + rng.Intn(nd-1)) % nd
					tab.Put(ks.Key, dst)
					plan.Moved = append(plan.Moved, ks.Key)
					plan.MoveDest[ks.Key] = dst
				}
				if len(plan.Moved) == 0 {
					return nil
				}
				moved, err := stage.ApplyPlan(plan)
				if err != nil {
					t.Fatalf("ApplyPlan(%v): %v", mode, err)
				}
				return &Rebalance{Plan: plan, Moved: moved}
			}
		})
		e.Run(14)
		return e, st
	}

	oracle, ost := run(HarvestFull)
	defer oracle.Stop()
	live, lst := run(HarvestIncremental)
	defer live.Stop()

	for i := range oracle.Recorder.Series {
		a, b := oracle.Recorder.Series[i], live.Recorder.Series[i]
		a.PlanMs, b.PlanMs = 0, 0
		if a != b {
			t.Fatalf("interval %d diverges:\nfull        %+v\nincremental %+v", i, a, b)
		}
	}
	os, ls := oracle.LastSnapshots()[0], live.LastSnapshots()[0]
	if len(os.Keys) != len(ls.Keys) {
		t.Fatalf("snapshot sizes %d ≠ %d", len(ls.Keys), len(os.Keys))
	}
	for i := range os.Keys {
		if os.Keys[i] != ls.Keys[i] {
			t.Fatalf("snapshot entry %d: full %+v, incremental %+v", i, os.Keys[i], ls.Keys[i])
		}
	}
	if !reflect.DeepEqual(ost.LastDeltas(), lst.LastDeltas()) {
		t.Fatalf("final deltas diverge:\nfull        %+v\nincremental %+v", ost.LastDeltas(), lst.LastDeltas())
	}
	otab := map[tuple.Key]int{}
	ost.AssignmentRouter().Assignment().Table().Each(func(k tuple.Key, d int) { otab[k] = d })
	ltab := map[tuple.Key]int{}
	lst.AssignmentRouter().Assignment().Table().Each(func(k tuple.Key, d int) { ltab[k] = d })
	if !reflect.DeepEqual(otab, ltab) {
		t.Fatalf("routing tables diverge: full %v, incremental %v", otab, ltab)
	}
	if ost.Instances() != lst.Instances() {
		t.Fatalf("instance counts %d ≠ %d", lst.Instances(), ost.Instances())
	}
	for d := 0; d < ost.Instances(); d++ {
		if a, b := ost.StoreOf(d).TotalSize(), lst.StoreOf(d).TotalSize(); a != b {
			t.Fatalf("instance %d state: full %d, incremental %d", d, a, b)
		}
	}
	// The retained semantic must have actually engaged: the final
	// snapshot lists more keys than the final interval touched.
	var touched int
	for _, d := range lst.LastDeltas() {
		touched += len(d.Changed)
	}
	if len(ls.Keys) <= touched {
		t.Fatalf("retained snapshot (%d keys) no larger than final working set (%d) — carry-forward never engaged", len(ls.Keys), touched)
	}
}

// The retained snapshot covers the whole tracked population while the
// delta covers only the interval's working set — the O(Δkeys) property
// the control plane rides.
func TestRetainedSnapshotCarriesUntouchedKeys(t *testing.T) {
	st := statefulStage(2, 2)
	defer st.Stop()
	if err := st.SetHarvest(HarvestIncremental); err != nil {
		t.Fatal(err)
	}
	wide := make([]tuple.Tuple, 0, 256)
	for k := tuple.Key(0); k < 256; k++ {
		wide = append(wide, tuple.New(k, 1))
	}
	st.FeedBatch(wide)
	st.Barrier()
	if snap := st.EndInterval(1); len(snap.Keys) != 256 {
		t.Fatalf("interval 1 snapshot %d keys, want 256", len(snap.Keys))
	}
	st.FeedBatch([]tuple.Tuple{tuple.New(3, 1), tuple.New(7, 1)})
	st.Barrier()
	snap := st.EndInterval(2)
	if len(snap.Keys) != 256 {
		t.Fatalf("interval 2 snapshot %d keys, want the full 256-key population", len(snap.Keys))
	}
	var changed int
	for _, d := range st.LastDeltas() {
		changed += len(d.Changed)
		if d.Retired != nil {
			t.Fatalf("unexpected retirement %v", d.Retired)
		}
	}
	if changed != 2 {
		t.Fatalf("interval 2 delta carries %d changed keys, want 2", changed)
	}
}
