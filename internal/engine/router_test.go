package engine

import (
	"testing"

	"repro/internal/pkgpart"
	"repro/internal/tuple"
)

func TestRouterInstanceCounts(t *testing.T) {
	if got := newAsgRouter(7).Instances(); got != 7 {
		t.Fatalf("AssignmentRouter.Instances = %d", got)
	}
	if got := (PKGRouter{R: pkgpart.NewRouter(5)}).Instances(); got != 5 {
		t.Fatalf("PKGRouter.Instances = %d", got)
	}
	if got := NewShuffleRouter(3).Instances(); got != 3 {
		t.Fatalf("ShuffleRouter.Instances = %d", got)
	}
}

func TestShuffleRouterStartsAtZero(t *testing.T) {
	// Round-robin must begin at instance 0 and wrap exactly: the old
	// post-increment routing started at 1, shorting instance 0 on the
	// first wrap.
	r := NewShuffleRouter(3)
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i, w := range want {
		if got := r.Route(tuple.New(tuple.Key(i), nil)); got != w {
			t.Fatalf("shuffle draw %d routed to %d, want %d (sequence %v)", i, got, w, want)
		}
	}
}

func TestPKGRouterRoutesWithinRange(t *testing.T) {
	r := PKGRouter{R: pkgpart.NewRouter(4)}
	for i := 0; i < 200; i++ {
		d := r.Route(tuple.New(tuple.Key(i%9), nil))
		if d < 0 || d >= 4 {
			t.Fatalf("PKG routed to %d", d)
		}
	}
}

func TestStageRouterAccessor(t *testing.T) {
	r := NewShuffleRouter(2)
	st := NewStage("s", 2, func(int) Operator { return Discard }, 1, r)
	defer st.Stop()
	if st.Router() != Router(r) {
		t.Fatal("Router accessor returned a different router")
	}
	if st.AssignmentRouter() != nil {
		t.Fatal("shuffle stage claims an assignment router")
	}
}

func TestEngineScaleOutTarget(t *testing.T) {
	st := statefulStage(3, 1)
	cfg := DefaultConfig()
	cfg.Budget = 3000
	var n uint64
	e := New(func() tuple.Tuple {
		n++
		return tuple.New(tuple.Key(n%200), nil)
	}, cfg, st)
	defer e.Stop()
	e.Run(2)
	moved, err := e.ScaleOutTarget()
	if err != nil {
		t.Fatalf("ScaleOutTarget: %v", err)
	}
	if st.Instances() != 4 {
		t.Fatalf("instances = %d", st.Instances())
	}
	if moved == 0 {
		t.Fatal("no state moved on engine-level scale-out")
	}
	// The model keeps working at the new width.
	e.Run(2)
	if e.Recorder.Len() != 4 {
		t.Fatalf("recorded %d intervals", e.Recorder.Len())
	}
}
