package engine

import (
	"sync/atomic"

	"repro/internal/pkgpart"
	"repro/internal/route"
	"repro/internal/tuple"
)

// Router picks the destination instance for each tuple on a stage's
// input edge. Implementations correspond to the partitioning schemes
// compared in §V.
type Router interface {
	Route(t tuple.Tuple) int
	Instances() int
}

// AssignmentRouter is the paper's mixed routing: an atomically swappable
// route.Assignment (hash + bounded table). With an empty table and no
// rebalancing it degenerates to the "Storm" key-grouping baseline.
type AssignmentRouter struct {
	cur atomic.Pointer[route.Assignment]
}

// NewAssignmentRouter starts from the given assignment.
func NewAssignmentRouter(a *route.Assignment) *AssignmentRouter {
	r := &AssignmentRouter{}
	r.cur.Store(a)
	return r
}

// Route implements Router.
func (r *AssignmentRouter) Route(t tuple.Tuple) int { return r.cur.Load().Dest(t.Key) }

// Instances implements Router.
func (r *AssignmentRouter) Instances() int { return r.cur.Load().Instances() }

// Assignment returns the active assignment.
func (r *AssignmentRouter) Assignment() *route.Assignment { return r.cur.Load() }

// Swap atomically installs a new assignment (step 7 of Fig. 5 — the
// Resume signal carries F′ to the upstream tasks). The incoming
// assignment is stamped with the successor generation before the store,
// so wait-free feeders observing the new pointer also observe the new
// generation — the Doppel wfmutex idiom of a version counter published
// in the same atomic word as the data it versions.
func (r *AssignmentRouter) Swap(a *route.Assignment) {
	a.StampGen(r.cur.Load().Gen() + 1)
	r.cur.Store(a)
}

// PKGRouter adapts the partial-key-grouping baseline.
type PKGRouter struct{ R *pkgpart.Router }

// Route implements Router.
func (p PKGRouter) Route(t tuple.Tuple) int { return p.R.Route(t) }

// Instances implements Router.
func (p PKGRouter) Instances() int { return p.R.Instances() }

// ShuffleRouter is the "Ideal" upper bound of Fig. 13: round-robin,
// key-oblivious (and therefore unusable for stateful operators — it
// exists purely as the theoretical throughput/latency limit).
type ShuffleRouter struct {
	nd   int
	next uint64
}

// NewShuffleRouter builds an nd-way round-robin router.
func NewShuffleRouter(nd int) *ShuffleRouter { return &ShuffleRouter{nd: nd} }

// Route implements Router. The round-robin starts at instance 0:
// AddUint64 returns the post-increment value, so the pre-increment
// counter is recovered by subtracting one — otherwise the first wrap
// would serve instance 0 one tuple short.
func (s *ShuffleRouter) Route(t tuple.Tuple) int {
	n := atomic.AddUint64(&s.next, 1) - 1
	return int(n % uint64(s.nd))
}

// Instances implements Router.
func (s *ShuffleRouter) Instances() int { return s.nd }
