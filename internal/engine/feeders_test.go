package engine

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/balance"
	"repro/internal/route"
	"repro/internal/state"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// Tests of the fanned-out emission plane: Cfg.Feeders > 1 must change
// cost, not semantics — the drawn multiset, per-interval metrics and
// harvest snapshots stay identical to the serial single-feeder run,
// and concurrent feeders must survive live migration under -race.

// countingOp accumulates the per-key tuple multiset an instance
// processed, so tests can compare what actually flowed.
type countingOp struct {
	counts map[tuple.Key]int64
}

func (c *countingOp) Process(ctx *TaskCtx, t tuple.Tuple) {
	c.counts[t.Key]++
	ctx.Store.Add(t.Key, state.Entry{Value: t.Value, Size: t.StateSize})
}

// mergedCounts sums the per-instance multisets of a fleet.
func mergedCounts(fleet []*countingOp) map[tuple.Key]int64 {
	m := make(map[tuple.Key]int64)
	for _, op := range fleet {
		for k, n := range op.counts {
			m[k] += n
		}
	}
	return m
}

// mkFeederEngine builds a 6-instance engine over a seeded Zipf draw
// with the given feeder count, returning the engine and its fleet.
func mkFeederEngine(feeders int, shards bool) (*Engine, []*countingOp) {
	const nd = 6
	gen := workload.NewZipfStream(2000, 0.9, 0, 10000, 23)
	fleet := make([]*countingOp, nd)
	st := NewStage("op", nd, func(id int) Operator {
		fleet[id] = &countingOp{counts: make(map[tuple.Key]int64)}
		return fleet[id]
	}, 2, newAsgRouter(nd))
	cfg := DefaultConfig()
	cfg.Budget = 10000
	cfg.Feeders = feeders
	e := NewBatch(gen.NextBatch, cfg, st)
	if shards {
		e.SpoutB = nil
		e.SpoutShards = AdaptShards(gen.Shard(feeders))
	}
	return e, fleet
}

// TestParallelFeedersMatchSerial pins the tentpole determinism claim:
// with Feeders = 4 the merged tuple multiset and every exhibit-relevant
// metric (throughput, latency, skewness, emitted, the harvest
// snapshot) equal the Feeders = 1 run over identical seeds — both for
// the engine's internal mutex sharder and for generator-provided
// SpoutShards.
func TestParallelFeedersMatchSerial(t *testing.T) {
	serial, serialFleet := mkFeederEngine(1, false)
	defer serial.Stop()
	serial.Run(5)

	for _, tc := range []struct {
		name   string
		shards bool
	}{
		{"auto-sharded-spout", false},
		{"generator-shards", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			par, parFleet := mkFeederEngine(4, tc.shards)
			defer par.Stop()
			par.Run(5)

			for i := 0; i < 5; i++ {
				ms, mp := serial.Recorder.Series[i], par.Recorder.Series[i]
				if ms != mp {
					t.Fatalf("interval %d metrics diverge:\nserial   %+v\nfeeders4 %+v", i, ms, mp)
				}
			}
			want, got := mergedCounts(serialFleet), mergedCounts(parFleet)
			if len(want) != len(got) {
				t.Fatalf("distinct keys %d ≠ %d", len(got), len(want))
			}
			for k, n := range want {
				if got[k] != n {
					t.Fatalf("key %d processed %d times with 4 feeders, %d serially", k, got[k], n)
				}
			}
			ss, sp := serial.LastSnapshots()[0], par.LastSnapshots()[0]
			if len(ss.Keys) != len(sp.Keys) {
				t.Fatalf("snapshot sizes %d ≠ %d", len(sp.Keys), len(ss.Keys))
			}
			for i := range ss.Keys {
				if ss.Keys[i] != sp.Keys[i] {
					t.Fatalf("snapshot entry %d: %+v ≠ %+v", i, sp.Keys[i], ss.Keys[i])
				}
			}
		})
	}
}

// TestParallelFeedersShardCountMismatchPanics pins the SpoutShards
// wiring contract.
func TestParallelFeedersShardCountMismatchPanics(t *testing.T) {
	e, _ := mkFeederEngine(4, false)
	defer e.Stop()
	e.SpoutShards = make([]SpoutBatch, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched SpoutShards length did not panic")
		}
	}()
	e.RunInterval()
}

// TestConcurrentFeedersWithApplyPlanLive is the -race stress test of
// the fanned-out feeder fleet against live migration: four feeder
// goroutines drive FeedBatch through shard draws while a controller
// goroutine applies a live plan mid-interval. No tuple may be lost and
// migrated keys must land exactly at their planned destinations.
func TestConcurrentFeedersWithApplyPlanLive(t *testing.T) {
	const (
		nd        = 4
		feeders   = 4
		keyDomain = 100
		perFeeder = 8000
		chunk     = 256
	)
	var processed atomic.Int64
	st := NewStage("live-feeders", nd, func(int) Operator {
		return OperatorFunc(func(ctx *TaskCtx, tp tuple.Tuple) {
			ctx.Store.Add(tp.Key, state.Entry{Value: tp.Value, Size: tp.StateSize})
			processed.Add(1)
		})
	}, 2, newAsgRouter(nd))
	defer st.Stop()

	// Preload every key so migration has state to move.
	pre := make([]tuple.Tuple, 2*keyDomain)
	for i := range pre {
		pre[i] = tuple.New(tuple.Key(i%keyDomain), i)
	}
	st.FeedBatch(pre)
	st.Barrier()

	// Plan: every third key moves one instance over.
	asg := st.AssignmentRouter().Assignment()
	tab := route.NewTable()
	plan := &balance.Plan{Table: tab, MoveDest: map[tuple.Key]int{}}
	for k := tuple.Key(0); k < keyDomain; k += 3 {
		dst := (asg.Dest(k) + 1) % nd
		tab.Put(k, dst)
		plan.Moved = append(plan.Moved, k)
		plan.MoveDest[k] = dst
	}

	// Four feeders drawing disjoint shares of one shard-split sequence,
	// exactly the emission shape of Cfg.Feeders = 4.
	var seq atomic.Uint64
	shards := ShardSpout(func(dst []tuple.Tuple) int {
		for i := range dst {
			n := seq.Add(1) - 1
			dst[i] = tuple.New(tuple.Key(n%keyDomain), n)
		}
		return len(dst)
	}, feeders)
	var wg sync.WaitGroup
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func(sb SpoutBatch) {
			defer wg.Done()
			buf := make([]tuple.Tuple, chunk)
			for j := 0; j < perFeeder; {
				c := perFeeder - j
				if c > chunk {
					c = chunk
				}
				got := sb(buf[:c])
				st.FeedBatch(buf[:got])
				j += got
			}
		}(shards[f])
	}
	st.ApplyPlanLive(plan)
	wg.Wait()
	st.Barrier()

	want := int64(len(pre) + feeders*perFeeder)
	if got := processed.Load(); got != want {
		t.Fatalf("processed %d of %d tuples across live migration", got, want)
	}
	cur := st.AssignmentRouter().Assignment()
	for _, k := range plan.Moved {
		home := cur.Dest(k)
		if home != plan.MoveDest[k] {
			t.Fatalf("key %d routes to %d, plan said %d", k, home, plan.MoveDest[k])
		}
		for d := 0; d < nd; d++ {
			if d != home && st.StoreOf(d).Size(k) != 0 {
				t.Fatalf("key %d leaked state on instance %d", k, d)
			}
		}
	}
	var total int64
	for d := 0; d < nd; d++ {
		total += st.StoreOf(d).TotalSize()
	}
	if total != want {
		t.Fatalf("total state %d, want %d (tuple loss or duplication)", total, want)
	}
}
