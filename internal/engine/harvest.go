package engine

import (
	"fmt"

	"repro/internal/route"
	"repro/internal/stats"
)

// HarvestMode selects what Stage.EndInterval's snapshot describes and
// how it is built. The zero value is the original behavior.
type HarvestMode int

const (
	// HarvestTouched (default) snapshots only the keys observed during
	// the finished interval — the legacy per-interval harvest, now
	// gathered from each tracker's dirty list in O(touched keys).
	HarvestTouched HarvestMode = iota
	// HarvestFull snapshots the whole tracked population every
	// interval, untouched keys carrying their last-reported statistics
	// forward, rebuilt from scratch each close — the equivalence oracle
	// for HarvestIncremental.
	HarvestFull
	// HarvestIncremental produces the same full-population snapshot as
	// HarvestFull (pinned bit-identical) from persistent per-task
	// sorted aggregates: each close merges only the interval's dirty
	// keys and additionally publishes per-task Deltas (LastDeltas) so
	// the control plane can ship O(Δkeys) reports.
	HarvestIncremental
)

func (m HarvestMode) retain() stats.RetainMode {
	switch m {
	case HarvestFull:
		return stats.RetainScan
	case HarvestIncremental:
		return stats.RetainMerge
	default:
		return stats.RetainOff
	}
}

func (m HarvestMode) String() string {
	switch m {
	case HarvestTouched:
		return "touched"
	case HarvestFull:
		return "full"
	case HarvestIncremental:
		return "incremental"
	default:
		return fmt.Sprintf("HarvestMode(%d)", int(m))
	}
}

// SetHarvest selects the stage's interval-close mode. Must be called
// while the stage is idle and before any interval has closed (the
// retained aggregates are built forward from the first interval) — the
// engine does so at construction time from Config.Harvest.
func (s *Stage) SetHarvest(m HarvestMode) error {
	if m == s.harvest {
		return nil
	}
	var err error
	for _, t := range s.tasks {
		t.barrier(func(ctx *TaskCtx) {
			if e := ctx.Tracker.SetRetain(m.retain()); e != nil && err == nil {
				err = e
			}
		})
		if err != nil {
			return fmt.Errorf("engine: stage %q: %w", s.Name, err)
		}
	}
	s.harvest = m
	return nil
}

// Harvest returns the stage's interval-close mode.
func (s *Stage) Harvest() HarvestMode { return s.harvest }

// LastDeltas returns the per-task change sets of the most recent
// retained close (HarvestIncremental/HarvestFull), indexed by task.
// Valid until the next EndInterval; nil before the first close or
// under HarvestTouched.
func (s *Stage) LastDeltas() []stats.Delta { return s.lastDeltas }

// endIntervalRetained is EndInterval's retained-mode close: each task
// folds its dirty keys into its persistent aggregate and returns the
// full-population run as a copy-on-write view — O(touched·log) work
// plus one linear aggregate pass, no per-interval rebuild — and the
// driver merges the runs exactly as the legacy path does (MergeRuns
// copies, so the snapshot never aliases live aggregates).
func (s *Stage) endIntervalRetained(interval int64) *stats.Snapshot {
	snap := &stats.Snapshot{Interval: interval, ND: len(s.tasks)}
	var asg *route.Assignment
	if ar := s.AssignmentRouter(); ar != nil {
		asg = ar.Assignment()
	}
	runs := make([][]stats.KeyStat, len(s.tasks))
	if len(s.lastDeltas) != len(s.tasks) {
		s.lastDeltas = make([]stats.Delta, len(s.tasks))
	}
	dones := make([]chan struct{}, len(s.tasks))
	for d, t := range s.tasks {
		dones[d] = t.barrierAsync(func(ctx *TaskCtx) {
			run, delta := ctx.Tracker.EndIntervalRetained(func(ks *stats.KeyStat) {
				ks.Dest = d
				if asg != nil {
					ks.Hash = asg.HashDest(ks.Key)
				} else {
					ks.Hash = d
				}
			})
			ctx.Store.EndInterval()
			ctx.ProcessedTuples = 0
			ctx.ProcessedCost = 0
			runs[d] = run
			s.lastDeltas[d] = delta
		})
	}
	for _, done := range dones {
		<-done
	}
	snap.Keys = stats.MergeRuns(runs)
	for d := range s.arrivedCost {
		s.arrivedCost[d] = 0
		s.arrivedTuples[d] = 0
	}
	return snap
}

// restampRetained re-resolves every retained aggregate entry's hash
// destination after a ring resize: carried entries keep the stamp of
// their last touch, and a grown or shrunk ring moves hash arcs of keys
// that never migrate. Runs on the task goroutines; a no-op outside the
// retained modes. Rebalance plans and split churn never change hash
// destinations, so only the resize paths call this.
func (s *Stage) restampRetained() {
	if s.harvest == HarvestTouched {
		return
	}
	ar := s.AssignmentRouter()
	if ar == nil {
		return
	}
	asg := ar.Assignment()
	dones := make([]chan struct{}, len(s.tasks))
	for d, t := range s.tasks {
		dones[d] = t.barrierAsync(func(ctx *TaskCtx) {
			ctx.Tracker.Restamp(func(ks *stats.KeyStat) {
				ks.Dest = d
				ks.Hash = asg.HashDest(ks.Key)
			})
		})
	}
	for _, done := range dones {
		<-done
	}
}
