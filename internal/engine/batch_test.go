package engine

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/balance"
	"repro/internal/route"
	"repro/internal/state"
	"repro/internal/tuple"
)

// Tests of the batched data plane: FeedBatch must be observationally
// identical to a Feed-per-tuple loop (routing decisions, arrival
// accounting, statistics, pause/hold semantics) while taking the
// amortized path.

func TestFeedBatchMatchesFeedPerTuple(t *testing.T) {
	const nd, n = 4, 5000
	batched := statefulStage(nd, 2)
	defer batched.Stop()
	single := statefulStage(nd, 2)
	defer single.Stop()

	rng := rand.New(rand.NewSource(7))
	ts := make([]tuple.Tuple, n)
	for i := range ts {
		ts[i] = tuple.New(tuple.Key(rng.Intn(300)), i).WithCost(int64(1 + i%3))
	}
	for _, tp := range ts {
		single.Feed(tp)
	}
	// Feed the same sequence in uneven batch sizes, including empty.
	batched.FeedBatch(nil)
	for lo := 0; lo < n; {
		hi := lo + 1 + rng.Intn(700)
		if hi > n {
			hi = n
		}
		batched.FeedBatch(ts[lo:hi])
		lo = hi
	}
	single.Barrier()
	batched.Barrier()

	for d := 0; d < nd; d++ {
		if a, b := single.ArrivedCost()[d], batched.ArrivedCost()[d]; a != b {
			t.Fatalf("instance %d arrived cost %d (per-tuple) ≠ %d (batched)", d, a, b)
		}
		if a, b := single.ArrivedTuples()[d], batched.ArrivedTuples()[d]; a != b {
			t.Fatalf("instance %d arrived tuples %d ≠ %d", d, a, b)
		}
		if a, b := single.CtxOf(d).ProcessedCost, batched.CtxOf(d).ProcessedCost; a != b {
			t.Fatalf("instance %d processed cost %d ≠ %d", d, a, b)
		}
	}
	sSnap := single.EndInterval(0)
	bSnap := batched.EndInterval(0)
	if len(sSnap.Keys) != len(bSnap.Keys) {
		t.Fatalf("snapshot key counts differ: %d ≠ %d", len(sSnap.Keys), len(bSnap.Keys))
	}
	for i := range sSnap.Keys {
		if sSnap.Keys[i] != bSnap.Keys[i] {
			t.Fatalf("snapshot entry %d differs: %+v ≠ %+v", i, sSnap.Keys[i], bSnap.Keys[i])
		}
	}
	// Per-key state must live on identical instances with identical size.
	for k := tuple.Key(0); k < 300; k++ {
		for d := 0; d < nd; d++ {
			if a, b := single.StoreOf(d).Size(k), batched.StoreOf(d).Size(k); a != b {
				t.Fatalf("key %d instance %d state %d ≠ %d", k, d, a, b)
			}
		}
	}
}

func TestFeedBatchHoldsPausedKeys(t *testing.T) {
	st := statefulStage(2, 1)
	defer st.Stop()
	held := tuple.Key(7)
	st.PauseKeys([]tuple.Key{held})
	batch := []tuple.Tuple{
		tuple.New(held, "held-1"),
		tuple.New(8, "flows"),
		tuple.New(held, "held-2"),
	}
	st.FeedBatch(batch)
	st.Barrier()
	asg := st.AssignmentRouter().Assignment()
	if st.StoreOf(asg.Dest(held)).Size(held) != 0 {
		t.Fatal("paused key's tuples processed before Resume")
	}
	if st.StoreOf(asg.Dest(8)).Size(8) != 1 {
		t.Fatal("unpaused tuple in the batch was blocked")
	}
	st.Resume()
	st.Barrier()
	if st.StoreOf(asg.Dest(held)).Size(held) != 2 {
		t.Fatal("held tuples not replayed on Resume")
	}
}

func TestFeedBatchOnShuffleAndPKGStages(t *testing.T) {
	// Non-assignment routers take the per-tuple routing fallback inside
	// FeedBatch; counts must still balance.
	st := NewStage("sh", 3, func(int) Operator { return Discard }, 1, NewShuffleRouter(3))
	defer st.Stop()
	batch := make([]tuple.Tuple, 300)
	for i := range batch {
		batch[i] = tuple.New(tuple.Key(i), nil)
	}
	st.FeedBatch(batch)
	st.Barrier()
	for d := 0; d < 3; d++ {
		if got := st.ArrivedTuples()[d]; got != 100 {
			t.Fatalf("shuffle instance %d got %d of 300", d, got)
		}
	}
}

// TestFeedBatchConcurrentWithApplyPlanLive is the -race stress test of
// the batched feeder against live migration: a feeder goroutine drives
// FeedBatch while a controller goroutine applies a live plan. No tuple
// may be lost, and migrated keys must end up exactly at their planned
// destinations.
func TestFeedBatchConcurrentWithApplyPlanLive(t *testing.T) {
	const (
		nd        = 4
		keyDomain = 100
		batchSize = 256
		batches   = 40
	)
	var processed atomic.Int64
	st := NewStage("live-batch", nd, func(int) Operator {
		return OperatorFunc(func(ctx *TaskCtx, tp tuple.Tuple) {
			ctx.Store.Add(tp.Key, state.Entry{Value: tp.Value, Size: tp.StateSize})
			processed.Add(1)
		})
	}, 2, newAsgRouter(nd))
	defer st.Stop()

	// Preload every key so migration has state to move.
	pre := make([]tuple.Tuple, 2*keyDomain)
	for i := range pre {
		pre[i] = tuple.New(tuple.Key(i%keyDomain), i)
	}
	st.FeedBatch(pre)
	st.Barrier()

	// Plan: every third key moves one instance over.
	asg := st.AssignmentRouter().Assignment()
	tab := route.NewTable()
	plan := &balance.Plan{Table: tab, MoveDest: map[tuple.Key]int{}}
	for k := tuple.Key(0); k < keyDomain; k += 3 {
		dst := (asg.Dest(k) + 1) % nd
		tab.Put(k, dst)
		plan.Moved = append(plan.Moved, k)
		plan.MoveDest[k] = dst
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]tuple.Tuple, batchSize)
		for b := 0; b < batches; b++ {
			for i := range buf {
				buf[i] = tuple.New(tuple.Key((b*batchSize+i)%keyDomain), b)
			}
			st.FeedBatch(buf)
		}
	}()
	st.ApplyPlanLive(plan)
	wg.Wait()
	st.Barrier()

	// No tuple lost across the migration.
	want := int64(len(pre) + batches*batchSize)
	if got := processed.Load(); got != want {
		t.Fatalf("processed %d of %d tuples across live migration", got, want)
	}
	// Post-migration destinations: state lives exactly at the planned
	// home, and fresh batches route there.
	cur := st.AssignmentRouter().Assignment()
	for _, k := range plan.Moved {
		home := cur.Dest(k)
		if home != plan.MoveDest[k] {
			t.Fatalf("key %d routes to %d, plan said %d", k, home, plan.MoveDest[k])
		}
		for d := 0; d < nd; d++ {
			if d != home && st.StoreOf(d).Size(k) != 0 {
				t.Fatalf("key %d leaked state on instance %d", k, d)
			}
		}
	}
	var total int64
	for d := 0; d < nd; d++ {
		total += st.StoreOf(d).TotalSize()
	}
	if total != want {
		t.Fatalf("total state %d, want %d (tuple loss or duplication)", total, want)
	}
}

func TestEngineBatchSpoutMatchesLegacySpout(t *testing.T) {
	// The same generator sequence driven through NewBatch and through
	// the legacy per-tuple spout adapter must produce identical interval
	// metrics — the batched emission path changes cost, not semantics.
	mk := func(batch bool) *Engine {
		var n uint64
		draw := func() tuple.Tuple {
			n++
			return tuple.New(tuple.Key(n%777), nil)
		}
		st := statefulStage(4, 1)
		cfg := DefaultConfig()
		cfg.Budget = 5000
		if batch {
			return NewBatch(BatchSpout(draw), cfg, st)
		}
		return New(draw, cfg, st)
	}
	a, b := mk(false), mk(true)
	defer a.Stop()
	defer b.Stop()
	a.Run(3)
	b.Run(3)
	for i := 0; i < 3; i++ {
		ma, mb := a.Recorder.Series[i], b.Recorder.Series[i]
		if ma.Throughput != mb.Throughput || ma.LatencyMs != mb.LatencyMs || ma.Skewness != mb.Skewness {
			t.Fatalf("interval %d metrics diverge: %+v ≠ %+v", i, ma, mb)
		}
	}
}
