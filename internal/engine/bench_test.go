package engine

import (
	"testing"

	"repro/internal/tuple"
)

func BenchmarkStageFeedHash(b *testing.B) {
	st := statefulStage(10, 1)
	defer st.Stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Feed(tuple.New(tuple.Key(i), nil))
	}
	b.StopTimer()
	st.Barrier()
}

func BenchmarkEngineInterval(b *testing.B) {
	var n uint64
	st := statefulStage(10, 1)
	cfg := DefaultConfig()
	cfg.Budget = 10000
	e := New(func() tuple.Tuple {
		n++
		return tuple.New(tuple.Key(n%10000), nil)
	}, cfg, st)
	defer e.Stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunInterval()
	}
}

// feedBenchStage builds a routing-focused stage (Discard operator) so
// the Feed-vs-FeedBatch comparison measures the data plane — lock,
// routing, channel, tracker — rather than operator state growth.
func feedBenchStage(nd int) *Stage {
	return NewStage("bench", nd, func(int) Operator { return Discard }, 1, newAsgRouter(nd))
}

// benchKeys cycles a bounded key set so tracker maps stay a fixed size
// regardless of b.N.
func benchKeys(n int) []tuple.Tuple {
	ts := make([]tuple.Tuple, n)
	for i := range ts {
		ts[i] = tuple.New(tuple.Key(uint64(i)*2654435761%4096), nil)
	}
	return ts
}

// BenchmarkFeedPerTuple is the per-tuple baseline BenchmarkFeedBatch is
// measured against: identical workload, one Feed call per tuple.
func BenchmarkFeedPerTuple(b *testing.B) {
	st := feedBenchStage(10)
	defer st.Stop()
	ts := benchKeys(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Feed(ts[i%len(ts)])
	}
	b.StopTimer()
	st.Barrier()
}

// BenchmarkFeedBatch drives the same workload through the batched data
// plane in engine-sized chunks; ns/op stays per-tuple comparable.
func BenchmarkFeedBatch(b *testing.B) {
	st := feedBenchStage(10)
	defer st.Stop()
	const batch = emitChunk
	ts := benchKeys(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n += batch {
		off := n % len(ts)
		if off+batch > len(ts) {
			off = 0
		}
		st.FeedBatch(ts[off : off+batch])
	}
	b.StopTimer()
	st.Barrier()
}

func BenchmarkMigrateKey(b *testing.B) {
	st := statefulStage(2, 1)
	defer st.Stop()
	k := tuple.Key(1)
	st.Feed(tuple.New(k, nil))
	st.Barrier()
	src := st.AssignmentRouter().Assignment().Dest(k)
	dst := 1 - src
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.migrateKey(k, src, dst)
		src, dst = dst, src
	}
}
