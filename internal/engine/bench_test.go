package engine

import (
	"testing"

	"repro/internal/tuple"
)

func BenchmarkStageFeedHash(b *testing.B) {
	st := statefulStage(10, 1)
	defer st.Stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Feed(tuple.New(tuple.Key(i), nil))
	}
	b.StopTimer()
	st.Barrier()
}

func BenchmarkEngineInterval(b *testing.B) {
	var n uint64
	st := statefulStage(10, 1)
	cfg := DefaultConfig()
	cfg.Budget = 10000
	e := New(func() tuple.Tuple {
		n++
		return tuple.New(tuple.Key(n%10000), nil)
	}, cfg, st)
	defer e.Stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunInterval()
	}
}

func BenchmarkMigrateKey(b *testing.B) {
	st := statefulStage(2, 1)
	defer st.Stop()
	k := tuple.Key(1)
	st.Feed(tuple.New(k, nil))
	st.Barrier()
	src := st.AssignmentRouter().Assignment().Dest(k)
	dst := 1 - src
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.migrateKey(k, src, dst)
		src, dst = dst, src
	}
}
