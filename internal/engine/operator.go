// Package engine is the distributed-stream-processing substrate the
// reproduced paper ran on Storm: operators parallelized into task
// instances, key-partitioned edges, per-interval statistics reporting
// and the pause/migrate/resume rebalance hooks of Fig. 5.
//
// Execution model. Every task instance is a goroutine consuming a
// channel of messages (tuples or control thunks), exactly one goroutine
// per instance, so operator state is goroutine-confined and lock-free.
// Time is divided into logical intervals (the paper used 10 s): the
// engine feeds each interval's tuples through the running tasks, then
// runs a barrier, at which point statistics are harvested and the
// controller may rebalance. Tuple routing, operator logic, state
// accumulation and migration are all real; only *performance* (task
// service capacity, queueing) is modelled in simulated cost units so
// results are deterministic and hardware-independent (see README.md).
package engine

import (
	"repro/internal/state"
	"repro/internal/stats"
	"repro/internal/tuple"
)

// BatchSink consumes batches of tuples: the downstream end of a
// pipeline edge. In-process it is the next *Stage; across a process
// boundary it is a cluster data connection streaming the same batches
// to the next stage's host. FeedBatch must copy what it keeps — the
// caller reuses the slice immediately — and must tolerate concurrent
// callers.
type BatchSink interface {
	FeedBatch(ts []tuple.Tuple)
}

// TaskCtx is the per-instance execution context handed to operators.
type TaskCtx struct {
	// ID is the task instance id within its operator (0..ND-1).
	ID int
	// Store is the instance's windowed state store.
	Store *state.Store
	// Tracker accumulates the per-key statistics the controller
	// harvests at interval boundaries.
	Tracker *stats.Tracker
	// out gathers tuples emitted downstream during the interval. With a
	// sink wired (pipelined execution) it is the emission chunk buffer:
	// streamed into the downstream stage whenever it fills to emitChunk
	// and at interval close, so it never grows past one chunk. Without a
	// sink it accumulates for the driver's DrainEmitted.
	out []tuple.Tuple
	// sink is the downstream edge pipelined emissions flush into — the
	// next stage in process, or a cluster data connection to its remote
	// host. It is nil under store-and-forward execution (the driver
	// drains out instead) and on the last stage (whose emissions are
	// discarded at interval close, as the driver's drain-and-drop does).
	sink BatchSink
	// emitTick is the interval index stamped on emitted tuples,
	// maintained by Stage.StartInterval.
	emitTick int64
	// ProcessedTuples and ProcessedCost account the work done this
	// interval (reset at barriers).
	ProcessedTuples int64
	ProcessedCost   int64
}

// Emit sends a tuple to the next stage, stamped with the emitting
// interval. Under pipelined execution a full chunk flushes straight
// into the downstream stage from the emitting task's goroutine;
// otherwise tuples collect until the driver drains them at the
// interval barrier.
func (c *TaskCtx) Emit(t tuple.Tuple) {
	t.EmitTick = c.emitTick
	c.out = append(c.out, t)
	if c.sink != nil && len(c.out) >= emitChunk {
		c.flushDown()
	}
}

// flushDown streams the buffered emissions into the downstream stage
// and resets the buffer. FeedBatch copies tuples out of its argument,
// so the buffer is immediately reusable; downstream pause epochs are
// honored exactly as for feeder sends (held tuples replay on Resume).
func (c *TaskCtx) flushDown() {
	c.sink.FeedBatch(c.out)
	c.out = c.out[:0]
}

// Operator is the processing logic of one logical operator. Process
// runs on the owning task's goroutine; implementations must not share
// mutable state across instances except through ctx.Store.
type Operator interface {
	// Process handles one input tuple, optionally emitting downstream
	// tuples and updating windowed state.
	Process(ctx *TaskCtx, t tuple.Tuple)
}

// BatchOperator is an optional Operator extension: ProcessBatch
// handles a whole contiguous batch of tuples on the task goroutine.
// The task loop prefers it over per-tuple Process when implemented,
// letting operators hoist interface dispatch and per-tuple setup out
// of the loop. Semantics must match calling Process on each tuple in
// order.
type BatchOperator interface {
	ProcessBatch(ctx *TaskCtx, ts []tuple.Tuple)
}

// IntervalFlusher is an optional Operator extension: FlushInterval runs
// on the task goroutine at the end of every interval, before statistics
// harvest, and may Emit — the hook periodic emitters (partial-aggregate
// operators like PKG's upstream half) use to publish per-interval
// results downstream.
type IntervalFlusher interface {
	FlushInterval(ctx *TaskCtx)
}

// SplitFolder is the optional Operator extension hot-key splitting
// requires. While a key is split, its tuples are physically processed
// on several replica tasks; instead of running Process there (which
// would scatter canonical state), the engine reduces each tuple to a
// commutative int64 delta via SplitAbsorb — the pkgpart partial
// representation — and sums the replicas' deltas per interval. At
// interval close (and when the key unsplits) the summed delta folds
// back into the key's home task via SplitMerge, together with the
// engine-tracked tuple count and state volume, so the home task's
// canonical state ends the interval exactly as an unsplit run would
// have left it.
//
// Contract: SplitAbsorb runs on replica task goroutines and must be a
// pure function of the tuple (no ctx access — replica state is the
// engine's delta cell, nothing else); SplitMerge runs on the home
// task's goroutine under an interval-close barrier and must leave the
// operator's state as if Process had run freq times with contributions
// summing to delta and mem. Operators whose Process emits mid-interval
// cannot satisfy that contract and must not implement SplitFolder;
// interval-flush emitters (PartialCount) qualify because the fold
// lands before FlushInterval.
type SplitFolder interface {
	SplitAbsorb(t tuple.Tuple) int64
	SplitMerge(ctx *TaskCtx, k tuple.Key, delta, freq, mem int64)
}

// OperatorFunc adapts a function to the Operator interface.
type OperatorFunc func(ctx *TaskCtx, t tuple.Tuple)

// Process implements Operator.
func (f OperatorFunc) Process(ctx *TaskCtx, t tuple.Tuple) { f(ctx, t) }

// Discard is an Operator that consumes tuples, charging their cost to
// the task but keeping no state — a stand-in sink for routing-focused
// experiments. It implements BatchOperator, so a batch costs no
// per-tuple dispatch at all.
var Discard Operator = discardOp{}

type discardOp struct{}

func (discardOp) Process(ctx *TaskCtx, t tuple.Tuple)         {}
func (discardOp) ProcessBatch(ctx *TaskCtx, ts []tuple.Tuple) {}

// Discard keeps no state, so its split delta is trivially zero.
func (discardOp) SplitAbsorb(t tuple.Tuple) int64                              { return 0 }
func (discardOp) SplitMerge(ctx *TaskCtx, k tuple.Key, delta, freq, mem int64) {}

// StatefulCount is a minimal stateful Operator: it appends each tuple
// to the key's windowed state (size = t.StateSize), so state volumes
// and migration costs behave like the paper's word-count topology. Its
// BatchOperator form runs the store appends in a tight loop.
var StatefulCount Operator = statefulCountOp{}

type statefulCountOp struct{}

func (statefulCountOp) Process(ctx *TaskCtx, t tuple.Tuple) {
	ctx.Store.Add(t.Key, state.Entry{Value: t.Value, Size: t.StateSize})
}

func (statefulCountOp) ProcessBatch(ctx *TaskCtx, ts []tuple.Tuple) {
	for i := range ts {
		ctx.Store.Add(ts[i].Key, state.Entry{Value: ts[i].Value, Size: ts[i].StateSize})
	}
}

// SplitAbsorb reduces a tuple to its state-size contribution; the
// per-entry Values collapse into one merged entry at fold time, which
// preserves every aggregate observable (per-key size, windowed expiry,
// store totals) an unsplit run would report.
func (statefulCountOp) SplitAbsorb(t tuple.Tuple) int64 { return t.StateSize }

func (statefulCountOp) SplitMerge(ctx *TaskCtx, k tuple.Key, delta, freq, mem int64) {
	if freq == 0 {
		return
	}
	ctx.Store.Add(k, state.Entry{Value: freq, Size: delta})
}
