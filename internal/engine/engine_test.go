package engine

import (
	"math/rand"
	"testing"

	"repro/internal/balance"
	"repro/internal/hashring"
	"repro/internal/route"
	"repro/internal/state"
	"repro/internal/stats"
	"repro/internal/tuple"
)

func newAsgRouter(nd int) *AssignmentRouter {
	return NewAssignmentRouter(route.NewAssignment(route.NewTable(), hashring.New(nd, 0)))
}

func statefulStage(nd, w int) *Stage {
	return NewStage("s", nd, func(int) Operator { return StatefulCount }, w, newAsgRouter(nd))
}

func TestStageRoutesByAssignment(t *testing.T) {
	st := statefulStage(4, 1)
	defer st.Stop()
	asg := st.AssignmentRouter().Assignment()
	for k := tuple.Key(0); k < 200; k++ {
		st.Feed(tuple.New(k, nil))
	}
	st.Barrier()
	for k := tuple.Key(0); k < 200; k++ {
		want := asg.Dest(k)
		if got := st.StoreOf(want).Size(k); got != 1 {
			t.Fatalf("key %d state on instance %d = %d, want 1", k, want, got)
		}
	}
}

func TestStageArrivalAccounting(t *testing.T) {
	st := statefulStage(2, 1)
	defer st.Stop()
	for i := 0; i < 100; i++ {
		st.Feed(tuple.New(tuple.Key(i), nil).WithCost(2))
	}
	st.Barrier()
	var cost, n int64
	for d := 0; d < 2; d++ {
		cost += st.ArrivedCost()[d]
		n += st.ArrivedTuples()[d]
	}
	if cost != 200 || n != 100 {
		t.Fatalf("arrived cost/tuples = %d/%d, want 200/100", cost, n)
	}
}

func TestEndIntervalSnapshot(t *testing.T) {
	st := statefulStage(3, 2)
	defer st.Stop()
	for i := 0; i < 300; i++ {
		st.Feed(tuple.New(tuple.Key(i%30), nil))
	}
	st.Barrier()
	snap := st.EndInterval(0)
	if snap.ND != 3 {
		t.Fatalf("snapshot ND = %d", snap.ND)
	}
	if len(snap.Keys) != 30 {
		t.Fatalf("snapshot keys = %d, want 30", len(snap.Keys))
	}
	if snap.TotalCost() != 300 {
		t.Fatalf("snapshot cost = %d, want 300", snap.TotalCost())
	}
	asg := st.AssignmentRouter().Assignment()
	for _, ks := range snap.Keys {
		if ks.Dest != asg.Dest(ks.Key) {
			t.Fatalf("key %d snapshot dest %d ≠ assignment %d", ks.Key, ks.Dest, asg.Dest(ks.Key))
		}
		if ks.Hash != asg.HashDest(ks.Key) {
			t.Fatalf("key %d snapshot hash wrong", ks.Key)
		}
	}
	// Arrival accounting reset.
	for d := 0; d < 3; d++ {
		if st.ArrivedCost()[d] != 0 {
			t.Fatal("EndInterval did not reset arrivals")
		}
	}
}

func TestApplyPlanMigratesState(t *testing.T) {
	st := statefulStage(2, 3)
	defer st.Stop()
	k := tuple.Key(42)
	for i := 0; i < 10; i++ {
		st.Feed(tuple.New(k, i))
	}
	st.Barrier()
	st.EndInterval(0)
	asg := st.AssignmentRouter().Assignment()
	src := asg.Dest(k)
	dst := 1 - src

	tab := route.NewTable()
	tab.Put(k, dst)
	plan := &balance.Plan{
		Table:    tab,
		Moved:    []tuple.Key{k},
		MoveDest: map[tuple.Key]int{k: dst},
	}
	moved, err := st.ApplyPlan(plan)
	if err != nil {
		t.Fatalf("ApplyPlan: %v", err)
	}
	if moved != 10 {
		t.Fatalf("ApplyPlan moved %d state units, want 10", moved)
	}
	if st.StoreOf(src).Size(k) != 0 {
		t.Fatal("source retains state after migration")
	}
	if st.StoreOf(dst).Size(k) != 10 {
		t.Fatalf("dest state = %d, want 10", st.StoreOf(dst).Size(k))
	}
	// New tuples follow the new assignment.
	st.Feed(tuple.New(k, "post"))
	st.Barrier()
	if st.StoreOf(dst).Size(k) != 11 {
		t.Fatal("post-migration tuple did not follow routing table")
	}
	// Migration penalty charged to both endpoints.
	if st.MigPenalty[src] != 10 || st.MigPenalty[dst] != 10 {
		t.Fatalf("migration penalties = %v", st.MigPenalty)
	}
}

func TestPauseHoldsAndResumeReplays(t *testing.T) {
	st := statefulStage(2, 1)
	defer st.Stop()
	k := tuple.Key(7)
	st.PauseKeys([]tuple.Key{k})
	st.Feed(tuple.New(k, "held"))
	st.Feed(tuple.New(tuple.Key(8), "flows"))
	st.Barrier()
	asg := st.AssignmentRouter().Assignment()
	if st.StoreOf(asg.Dest(k)).Size(k) != 0 {
		t.Fatal("paused key's tuple was processed before Resume")
	}
	if st.StoreOf(asg.Dest(8)).Size(8) != 1 {
		t.Fatal("unpaused key was blocked by pause")
	}
	st.Resume()
	st.Barrier()
	if st.StoreOf(asg.Dest(k)).Size(k) != 1 {
		t.Fatal("held tuple not replayed on Resume")
	}
}

func TestScaleOutPreservesStateAndCorrectness(t *testing.T) {
	st := statefulStage(3, 2)
	defer st.Stop()
	for i := 0; i < 500; i++ {
		st.Feed(tuple.New(tuple.Key(i%100), nil))
	}
	st.Barrier()
	st.EndInterval(0)
	var before int64
	for d := 0; d < 3; d++ {
		before += st.StoreOf(d).TotalSize()
	}
	moved, err := st.ScaleOut()
	if err != nil {
		t.Fatalf("ScaleOut: %v", err)
	}
	if st.Instances() != 4 {
		t.Fatalf("instances = %d after ScaleOut", st.Instances())
	}
	var after int64
	for d := 0; d < 4; d++ {
		after += st.StoreOf(d).TotalSize()
	}
	if after != before {
		t.Fatalf("state volume changed across scale-out: %d → %d", before, after)
	}
	if moved == 0 {
		t.Fatal("scale-out moved no state; ring growth must remap some keys")
	}
	// Every key's state must live where the new assignment routes it.
	asg := st.AssignmentRouter().Assignment()
	for k := tuple.Key(0); k < 100; k++ {
		home := asg.Dest(k)
		for d := 0; d < 4; d++ {
			if d != home && st.StoreOf(d).Size(k) != 0 {
				t.Fatalf("key %d has state on %d but routes to %d", k, d, home)
			}
		}
	}
}

func TestEngineThroughputBalancedVsSkewed(t *testing.T) {
	// Uniform keys: throughput ≈ budget. All-hot-key skew: the single
	// owning task caps throughput near capacity (budget/nd), and
	// backpressure throttles emission.
	mkEngine := func(spout Spout) *Engine {
		st := statefulStage(4, 1)
		cfg := DefaultConfig()
		cfg.Budget = 4000
		return New(spout, cfg, st)
	}
	var u uint64
	uniform := mkEngine(func() tuple.Tuple {
		u++
		return tuple.New(tuple.Key(u%1000), nil)
	})
	defer uniform.Stop()
	uniform.Run(5)
	balancedThr := uniform.Recorder.Series[4].Throughput

	skewed := mkEngine(func() tuple.Tuple { return tuple.New(7, nil) })
	defer skewed.Stop()
	skewed.Run(5)
	skewThr := skewed.Recorder.Series[4].Throughput

	if balancedThr < 3500 {
		t.Fatalf("balanced throughput %v, want near 4000", balancedThr)
	}
	if skewThr > balancedThr/2 {
		t.Fatalf("all-on-one-key throughput %v not limited by single task (balanced %v)", skewThr, balancedThr)
	}
	if skewed.Recorder.Series[4].LatencyMs <= uniform.Recorder.Series[4].LatencyMs {
		t.Fatal("skewed latency not above balanced latency")
	}
	// Backpressure must have throttled the skewed spout.
	if skewed.Recorder.Series[4].Emitted >= 4000 {
		t.Fatal("spout never throttled despite hopeless backlog")
	}
}

func TestEngineSkewnessMetric(t *testing.T) {
	st := statefulStage(2, 1)
	cfg := DefaultConfig()
	cfg.Budget = 1000
	e := New(func() tuple.Tuple { return tuple.New(3, nil) }, cfg, st)
	defer e.Stop()
	e.Run(1)
	if got := e.Recorder.Series[0].Skewness; got != 2 {
		t.Fatalf("one-key-two-instances skewness = %v, want 2", got)
	}
}

func TestEngineMultiStagePipeline(t *testing.T) {
	// Stage 0 emits a derived tuple per input; stage 1 counts them.
	fwd := OperatorFunc(func(ctx *TaskCtx, tp tuple.Tuple) {
		out := tuple.New(tp.Key, nil)
		ctx.Emit(out)
	})
	s0 := NewStage("map", 2, func(int) Operator { return fwd }, 1, newAsgRouter(2))
	s1 := NewStage("count", 2, func(int) Operator { return StatefulCount }, 1, newAsgRouter(2))
	cfg := DefaultConfig()
	cfg.Budget = 500
	var n uint64
	e := New(func() tuple.Tuple {
		n++
		return tuple.New(tuple.Key(n%50), nil)
	}, cfg, s0, s1)
	defer e.Stop()
	e.Run(1)
	var total int64
	for d := 0; d < 2; d++ {
		total += s1.StoreOf(d).TotalSize()
	}
	if total != 500 {
		t.Fatalf("stage-1 received %d tuples, want 500", total)
	}
}

func TestEngineOnSnapshotHookSeesLoad(t *testing.T) {
	st := statefulStage(2, 1)
	cfg := DefaultConfig()
	cfg.Budget = 100
	var sawKeys int
	e := New(func() tuple.Tuple { return tuple.New(tuple.Key(rand.Intn(10)), nil) }, cfg, st)
	defer e.Stop()
	e.OnSnapshot = func(_ *Engine, si int, snap *stats.Snapshot) *Rebalance {
		sawKeys = len(snap.Keys)
		return nil
	}
	e.Run(1)
	if sawKeys == 0 {
		t.Fatal("OnSnapshot hook saw no keys")
	}
}

func TestDiscardAndStatefulCountOperators(t *testing.T) {
	st := NewStage("d", 1, func(int) Operator { return Discard }, 1, newAsgRouter(1))
	defer st.Stop()
	st.Feed(tuple.New(1, nil))
	st.Barrier()
	if st.StoreOf(0).TotalSize() != 0 {
		t.Fatal("Discard kept state")
	}
	if st.CtxOf(0).ProcessedTuples != 1 {
		t.Fatal("Discard did not account the tuple")
	}
}

func TestTaskCtxEmit(t *testing.T) {
	var ctx TaskCtx
	ctx.Emit(tuple.New(1, nil))
	ctx.Emit(tuple.New(2, nil))
	if len(ctx.out) != 2 {
		t.Fatal("Emit did not collect tuples")
	}
}

func TestStatefulCountKeepsWindowState(t *testing.T) {
	st := NewStage("c", 1, func(int) Operator { return StatefulCount }, 2, newAsgRouter(1))
	defer st.Stop()
	st.Feed(tuple.New(5, "x").WithState(3))
	st.Barrier()
	if got := st.StoreOf(0).Size(5); got != 3 {
		t.Fatalf("state size = %d, want 3", got)
	}
	_ = state.Entry{} // keep import for clarity of intent
}
