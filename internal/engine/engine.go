package engine

import (
	"fmt"

	"repro/internal/balance"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/tuple"
)

// Spout produces the next input tuple. The paper configured spout
// parallelism at 10; since our spouts are in-process generators the
// parallelism collapses into one deterministic draw sequence.
type Spout func() tuple.Tuple

// SpoutBatch fills dst with the next tuples of the stream and returns
// how many were written (len(dst) for the endless generators). Fewer
// signals exhaustion, which is terminal: the stream has ended, the
// interval's emission stops, and the engine may or may not re-enter
// the spout afterwards (the serial path polls it once per later
// interval; the sharded path latches and never calls again — both
// observable behaviors coincide because an exhausted source keeps
// returning 0). It is the batch-capable spout contract: the engine
// hands it a reusable scratch buffer, so a full emission costs one
// call per few hundred tuples instead of one call per tuple.
type SpoutBatch func(dst []tuple.Tuple) int

// BatchSpout adapts a legacy per-tuple Spout to SpoutBatch, preserving
// the draw sequence exactly — experiments keep their published outputs
// whether they are wired per tuple or per batch.
func BatchSpout(s Spout) SpoutBatch {
	return func(dst []tuple.Tuple) int {
		for i := range dst {
			dst[i] = s()
		}
		return len(dst)
	}
}

// Config is the engine's performance model (see "Execution model" in
// README.md). The paper
// drove its cluster to CPU saturation at perfect balance; we mirror
// that with Capacity = spout budget / ND for the target stage, so any
// imbalance immediately shows up as backlog, throttling and latency.
type Config struct {
	// Window is the state window w in intervals, carried for reference
	// only: stages take their actual window from NewStage's w
	// parameter, and the engine never reads this field.
	Window int
	// Budget is the spout's tuple budget per interval at full rate.
	Budget int64
	// Capacity is a task's service capacity in cost units per interval;
	// 0 derives saturation capacity Budget/ND from the target stage.
	Capacity int64
	// MaxPendingFactor is the backpressure threshold: when a task's
	// backlog exceeds MaxPendingFactor·Capacity, the spout throttles
	// proportionally (Storm's max-pending mechanism).
	MaxPendingFactor float64
	// MigrationFactor converts one unit of migrated state into consumed
	// service capacity on both endpoints in the following interval.
	// State transfer is bulk I/O overlapping normal processing, so a
	// unit of state costs a fraction of a unit of tuple service; 0.5
	// makes heavy migrations (MinTable's full reshuffles) visibly dent
	// throughput while Mixed's minimal plans stay cheap — the Fig. 15/16
	// contrast.
	MigrationFactor float64
	// LatencyFloorMs is an additive latency term for schemes with extra
	// coordination (PKG's merge period p).
	LatencyFloorMs float64
	// Feeders is the spout parallelism: how many goroutines emit each
	// interval's tuples concurrently (the paper ran its spouts at
	// parallelism 10). 0 or 1 selects the serial emission path, whose
	// behavior — draw sequence, chunking, metrics — is exactly that of
	// the single-feeder engine. With N > 1 the per-interval budget is
	// split across N feeders before the fan-out; each feeder owns a
	// private scratch buffer and calls Stage.FeedBatch concurrently.
	// The drawn multiset is preserved exactly; per-tuple destinations
	// (and so all metrics) are preserved for key-partitioned routers,
	// while order-dependent routers (PKG, shuffle) observe the feeders'
	// nondeterministic interleaving.
	Feeders int
	// Pipeline selects streaming inter-stage transfer: each task
	// flushes its emitted tuples straight into the next stage in
	// emitChunk-sized batches as they fill, from its own goroutine, so
	// stage s+1 consumes and processes while stage s is still working.
	// The interval then ends with a cascading close — barrier stage s,
	// flush each task's residual emission buffer downstream, close
	// stage s+1 — instead of the driver's store-and-forward
	// Barrier/DrainEmitted/FeedBatch sequence. The emitted multiset,
	// per-stage arrival totals, harvest snapshots and routing tables
	// are identical either way; only arrival *order* at downstream
	// stages changes, which none of those observe (order-dependent
	// downstream routers — PKG, shuffle — see the interleaving, as they
	// do under Feeders > 1). False keeps the store-and-forward path, so
	// the equivalence stays testable. Single-stage topologies are
	// unaffected either way.
	Pipeline bool
	// PauseFree selects the generation-epoch live-migration protocol on
	// every assignment-routed stage (stages with other routers are
	// unaffected): routing state is published behind an atomic pointer
	// carrying a generation counter, Feed/FeedBatch load it wait-free
	// and stamp each batch, and plan application hands migrating keys
	// over via destination-side buffers instead of pausing the feed.
	// The hot path loses the paused-key branch and the migration drain
	// entirely; at interval hooks the observable effects (state,
	// statistics, routing tables, metrics) are identical to the pausing
	// protocol, which remains selectable as the equivalence oracle by
	// leaving this false.
	PauseFree bool
	// Harvest selects every stage's interval-close mode. The zero value
	// (HarvestTouched) is the original per-interval harvest: snapshots
	// list only the keys observed in the finished interval.
	// HarvestFull and HarvestIncremental switch the stage to
	// retained-population snapshots — every tracked key, untouched ones
	// carrying their last statistics forward — differing only in build
	// strategy: full rebuild each close (the oracle) versus persistent
	// sorted aggregates merged with only the interval's dirty keys,
	// which also publishes per-task deltas for O(Δkeys) load reports.
	// The two retained modes are pinned bit-identical (series,
	// snapshots, routing tables, plans).
	Harvest HarvestMode
	// FeedLatency enables the per-interval feed-latency histogram:
	// every FeedBatch call on stage 0 is wall-clock timed into a
	// per-feeder metrics.LatencyHist, and the interval record reports
	// the merged p50/p99 (Interval.FeedP50Us / FeedP99Us). Off by
	// default: the measurement itself costs two clock reads per chunk,
	// and the engine's own latency model is unaffected either way.
	FeedLatency bool
}

// DefaultConfig returns the model used across the experiments. The
// pending threshold is deliberately tight (half an interval's service),
// mirroring the paper's Storm configuration of a small max-pending: a
// single backed-up instance throttles the whole spout, which is exactly
// how intra-operator imbalance destroys cluster throughput in §I.
func DefaultConfig() Config {
	return Config{Window: 1, Budget: 10000, MaxPendingFactor: 0.5, MigrationFactor: 0.5, PauseFree: true}
}

// emitChunk is the spout batch size: large enough to amortize the
// stage lock, routing, channel and goroutine-switch costs across many
// tuples (throughput keeps improving up to ~1k tuples per chunk),
// small enough that a default interval still feeds in several chunks
// and the scratch buffer stays modest (~72 KiB).
const emitChunk = 1024

// Rebalance reports what the controller hook did at an interval end:
// a rebalance plan, elastic resizes, or both (the unified control
// plane can apply a plan and a scale command in one round).
type Rebalance struct {
	Plan  *balance.Plan
	Moved int64
	// ScaledOut and ScaledIn count instance additions and live
	// retirements applied this interval end.
	ScaledOut int
	ScaledIn  int
}

// SnapshotHook is a controller callback invoked at each interval end
// with one stage's harvested statistics. It may apply a plan (via
// stage.ApplyPlan) and report what it did; a nil return means it took
// no rebalance action. Hooks run on the driver goroutine while every
// task is idle (post-harvest), so plan application is barrier-safe.
type SnapshotHook = func(e *Engine, stageIdx int, snap *stats.Snapshot) *Rebalance

// Engine runs a pipeline of stages over logical intervals.
type Engine struct {
	Spout Spout
	// SpoutB, when set, is preferred over Spout: tuples are drawn
	// through the batch API straight into the engine's reusable scratch
	// buffer. When only Spout is set it is wrapped by BatchSpout.
	SpoutB SpoutBatch
	// SpoutShards, when set (len == Cfg.Feeders), gives each feeder
	// goroutine its own partitioned draw source — e.g. the workload
	// generators' Shard(n) results via AdaptShards. When unset and
	// Cfg.Feeders > 1, the engine wraps the single spout in a mutex
	// sharder (ShardSpout), which preserves the drawn multiset exactly.
	SpoutShards []SpoutBatch
	Stages      []*Stage
	Cfg         Config
	// Target selects the stage whose metrics are recorded (the operator
	// under study; downstream stages still execute and consume).
	Target   int
	Recorder *metrics.Recorder
	// OnSnapshot is the engine-wide controller hook, invoked for every
	// stage at each interval end with the harvested statistics. Hooks
	// registered per stage with AddSnapshotHook run after it; prefer
	// those for topologies where more than one stage is
	// controller-managed.
	OnSnapshot SnapshotHook
	// AdvanceWorkload, when set, is invoked after each interval so the
	// generator can shift its distribution (fluctuation, bursts).
	AdvanceWorkload func(interval int64)

	// stageHooks is the per-stage snapshot fan-out: stageHooks[si] are
	// invoked with stage si's snapshot only, letting every stage carry
	// its own controller (the engine-wide OnSnapshot can only filter by
	// Target). Maintained by AddSnapshotHook; nil until the first
	// registration.
	stageHooks [][]SnapshotHook

	interval  int64
	capacity  []int64 // per stage
	backlogT  [][]int64
	lastEmit  int64
	wired     bool // inter-stage sinks currently wired for Cfg.Pipeline
	stopped   bool
	snapshots []*stats.Snapshot // last interval's, per stage (for tests)
	// emitter is the emission plane (spout draw → chunked FeedBatch into
	// stage 0), built lazily on the first interval so spout fields may
	// be assigned any time before.
	emitter *Emitter
	// throttleBacklog is the reusable per-stage backlog view handed to
	// ThrottleBudget each interval.
	throttleBacklog [][]int64
}

// New assembles an engine over the given stages.
func New(spout Spout, cfg Config, stages ...*Stage) *Engine {
	e := &Engine{Spout: spout, Stages: stages, Cfg: cfg, Recorder: &metrics.Recorder{}}
	return e.init()
}

// NewBatch assembles an engine drawing tuples through a batch-capable
// spout, skipping the per-tuple adapter on the emission path.
func NewBatch(spout SpoutBatch, cfg Config, stages ...*Stage) *Engine {
	e := &Engine{SpoutB: spout, Stages: stages, Cfg: cfg, Recorder: &metrics.Recorder{}}
	return e.init()
}

func (e *Engine) init() *Engine {
	cfg, stages := e.Cfg, e.Stages
	e.capacity = make([]int64, len(stages))
	e.backlogT = make([][]int64, len(stages))
	for i, s := range stages {
		c := cfg.Capacity
		if c == 0 {
			c = cfg.Budget / int64(s.Instances())
			if c < 1 {
				c = 1
			}
		}
		e.capacity[i] = c
		e.backlogT[i] = make([]int64, s.Instances())
		if cfg.PauseFree && s.AssignmentRouter() != nil {
			// Error impossible: the router check just passed.
			_ = s.SetPauseFree(true)
		}
		if cfg.Harvest != HarvestTouched {
			// Error impossible at construction time: trackers are fresh.
			_ = s.SetHarvest(cfg.Harvest)
		}
	}
	return e
}

// Interval returns the number of completed intervals.
func (e *Engine) Interval() int64 { return e.interval }

// CapacityOf returns stage si's per-task service capacity in cost
// units per interval.
func (e *Engine) CapacityOf(si int) int64 { return e.capacity[si] }

// SetStageCapacity overrides stage si's per-task service capacity,
// replacing the Cfg.Capacity / Budget-derived default. Call before the
// first RunInterval (the performance model reads it every interval).
func (e *Engine) SetStageCapacity(si int, c int64) {
	if c < 1 {
		c = 1
	}
	e.capacity[si] = c
}

// AddSnapshotHook registers a per-stage controller hook: h is invoked
// at each interval end with stage si's harvested snapshot, after the
// engine-wide OnSnapshot. Each stage can carry any number of hooks
// (they run in registration order), so multi-stage topologies can put
// an independent controller on every stage. Call before the first
// RunInterval or between intervals; the hook list is read on the
// driver goroutine only.
func (e *Engine) AddSnapshotHook(si int, h SnapshotHook) {
	if e.stageHooks == nil {
		e.stageHooks = make([][]SnapshotHook, len(e.Stages))
	}
	e.stageHooks[si] = append(e.stageHooks[si], h)
}

// LastEmitted returns the post-throttle tuple count of the most recent
// interval; comparing it with Cfg.Budget reveals how much demand the
// backpressure suppressed.
func (e *Engine) LastEmitted() int64 { return e.lastEmit }

// SetLastEmitted records the post-throttle emission for the current
// interval. Cluster workers call it when the coordinator owns the
// spout: their stages never run the emission loop, but load reports
// still carry Emitted so a remote controller judges demand exactly as
// a single-process run would.
func (e *Engine) SetLastEmitted(n int64) { e.lastEmit = n }

// LastSnapshots returns the previous interval's per-stage snapshots.
func (e *Engine) LastSnapshots() []*stats.Snapshot { return e.snapshots }

// Run executes n intervals.
func (e *Engine) Run(n int) {
	for i := 0; i < n; i++ {
		e.RunInterval()
	}
}

// RunInterval drives one full logical interval: throttled emission,
// pipelined processing, statistics harvest, controller hook, metrics.
func (e *Engine) RunInterval() {
	if e.stopped {
		panic("engine: RunInterval after Stop")
	}
	target := e.Stages[e.Target]

	// (Un)wire the inter-stage emission sinks when the mode changed
	// since the last interval; publish the interval index every task
	// stamps on emitted tuples. Tasks are idle here (the previous
	// interval ended with barriers), and the emission sends below give
	// them the happens-before edge on both writes.
	pipelined := e.Cfg.Pipeline && len(e.Stages) > 1
	if pipelined != e.wired {
		for si := 0; si+1 < len(e.Stages); si++ {
			var next *Stage
			if pipelined {
				next = e.Stages[si+1]
			}
			e.Stages[si].SetDownstream(next)
		}
		e.wired = pipelined
	}
	for _, s := range e.Stages {
		s.StartInterval(e.interval)
	}

	// Backpressure: Storm's max-pending, applied against every stage —
	// with stages running concurrently, a slow downstream stage must
	// throttle the spout exactly like the stage under study. The spout
	// slows in proportion to the worst backlog-beyond-threshold across
	// all stages.
	if e.throttleBacklog == nil {
		e.throttleBacklog = make([][]int64, len(e.Stages))
	}
	for si, s := range e.Stages {
		e.throttleBacklog[si] = s.Backlog
	}
	emitN := ThrottleBudget(e.Cfg.Budget, e.Cfg.MaxPendingFactor, e.capacity, e.throttleBacklog)
	e.lastEmit = emitN

	// Feed the pipeline. Emission runs through reusable scratch buffers
	// in emitChunk-sized batches: the spout fills a scratch, the stage's
	// FeedBatch copies the tuples into per-destination messages, and the
	// scratch is immediately reusable for the next chunk. With
	// Cfg.Feeders > 1 the budget is split across N feeder goroutines
	// before the fan-out. Under Cfg.Pipeline every downstream stage is
	// consuming concurrently from the first chunk on — its tasks receive
	// upstream flushes mid-interval — so the emission loop below drives
	// the whole topology, not just stage 0.
	if got := e.emit(emitN); got < emitN {
		// The spout ended early (finite batch sources); record the true
		// emission so the model and metrics charge what actually
		// arrived.
		emitN = got
		e.lastEmit = got
	}
	if pipelined {
		// Cascading close: once stage s's tasks have drained, flushed
		// their interval hooks and streamed their residual buffers, all
		// of stage s's output is in stage s+1's queues (or held by its
		// pause epoch) and s+1 can be closed in turn. Interval
		// semantics — which tuples belong to which interval, arrival
		// accounting, migration safety — match store-and-forward
		// exactly; only the transfer overlaps processing.
		for si := 0; si < len(e.Stages); si++ {
			e.Stages[si].CloseInterval()
		}
	} else {
		// Store-and-forward: run each stage to completion, concatenate
		// every task's emissions on the driver, and only then feed the
		// next stage. EmitTick is stamped at emission time by
		// TaskCtx.Emit, and DrainEmitted's buffer is reused across
		// intervals, so this legacy path allocates nothing per interval
		// once warm.
		for si := 0; si < len(e.Stages); si++ {
			e.Stages[si].Barrier()
			e.Stages[si].FlushOps()
			out := e.Stages[si].DrainEmitted()
			if si+1 < len(e.Stages) {
				e.Stages[si+1].FeedBatch(out)
			}
		}
	}

	// Capture arrival accounting before EndInterval resets it, then run
	// the performance model per stage.
	type arr struct{ cost, tuples []int64 }
	arrived := make([]arr, len(e.Stages))
	for si, s := range e.Stages {
		arrived[si] = arr{
			cost:   append([]int64(nil), s.ArrivedCost()...),
			tuples: append([]int64(nil), s.ArrivedTuples()...),
		}
	}

	// Harvest statistics (also resets arrival accounting).
	e.snapshots = make([]*stats.Snapshot, len(e.Stages))
	for si, s := range e.Stages {
		e.snapshots[si] = s.EndInterval(e.interval)
	}

	// Pre-rebalance live state volume for migration percentage.
	var liveState int64
	for d := 0; d < target.Instances(); d++ {
		liveState += target.StoreOf(d).TotalSize()
	}

	// Controller hooks (may pause/migrate/resume and swap assignments):
	// the engine-wide OnSnapshot sees every stage, then each stage's
	// registered hooks fan out with that stage's snapshot. The target
	// stage's first rebalance is the one the interval metrics record.
	var reb *Rebalance
	if e.OnSnapshot != nil || e.stageHooks != nil {
		record := func(si int, r *Rebalance) {
			if si == e.Target && r != nil && reb == nil {
				reb = r
			}
		}
		for si := range e.Stages {
			if e.OnSnapshot != nil {
				record(si, e.OnSnapshot(e, si, e.snapshots[si]))
			}
			if e.stageHooks != nil {
				for _, h := range e.stageHooks[si] {
					record(si, h(e, si, e.snapshots[si]))
				}
			}
		}
	}

	m := e.model(e.Target, arrived[e.Target].cost, arrived[e.Target].tuples)
	// Other stages still advance their backlog models so multi-stage
	// pipelines throttle realistically.
	for si := range e.Stages {
		if si != e.Target {
			e.model(si, arrived[si].cost, arrived[si].tuples)
		}
	}
	m.Index = e.interval
	m.Emitted = emitN
	if e.Cfg.FeedLatency && e.emitter != nil && e.emitter.HasLatency() {
		var merged metrics.LatencyHist
		e.emitter.DrainLatency(&merged)
		m.FeedP50Us = merged.QuantileUs(0.50)
		m.FeedP99Us = merged.QuantileUs(0.99)
	}
	if reb != nil {
		m.ScaleOuts = reb.ScaledOut
		m.ScaleIns = reb.ScaledIn
		if reb.Plan != nil {
			m.Rebalanced = true
			m.PlanMs = float64(reb.Plan.GenTime.Microseconds()) / 1000
			m.TableSize = reb.Plan.TableSize()
			if liveState > 0 {
				m.MigrationPct = 100 * float64(reb.Moved) / float64(liveState)
			}
		}
	}
	e.Recorder.Add(m)

	e.interval++
	if e.AdvanceWorkload != nil {
		e.AdvanceWorkload(e.interval)
	}
}

// model advances stage si's queueing model for one interval and
// returns the interval metrics (throughput, latency, skewness).
func (e *Engine) model(si int, cost, tuples []int64) metrics.Interval {
	s := e.Stages[si]
	p := ModelParams{
		Capacity:        e.capacity[si],
		MigrationFactor: e.Cfg.MigrationFactor,
		LatencyFloorMs:  e.Cfg.LatencyFloorMs,
	}
	return StepModel(p, s.Backlog, e.backlogT[si], s.MigPenalty, cost, tuples)
}

// ModelParams are the per-stage constants of the queueing model:
// everything StepModel needs beyond the interval's arrays.
type ModelParams struct {
	// Capacity is the per-task service capacity in cost units per
	// interval.
	Capacity int64
	// MigrationFactor converts one unit of migrated state into consumed
	// service capacity (Config.MigrationFactor).
	MigrationFactor float64
	// LatencyFloorMs is the additive latency term
	// (Config.LatencyFloorMs).
	LatencyFloorMs float64
}

// ThrottleBudget applies Storm's max-pending backpressure to one
// interval's spout budget: the spout slows in proportion to the worst
// backlog-beyond-threshold across all stages (capacity[si] and
// backlog[si] describe stage si; a non-positive threshold exempts the
// stage), floored at 10% of the budget. It is the engine's throttle
// step detached from the engine so a cluster coordinator — which holds
// the stages' backlog arrays but not the stages — computes the
// bit-identical emission decision.
func ThrottleBudget(budget int64, maxPendingFactor float64, capacity []int64, backlog [][]int64) int64 {
	emitN := budget
	throttle := 1.0
	for si := range backlog {
		maxPending := int64(maxPendingFactor * float64(capacity[si]))
		if maxPending <= 0 {
			continue
		}
		var worst int64
		for _, b := range backlog[si] {
			if b > worst {
				worst = b
			}
		}
		if worst > maxPending {
			if f := float64(maxPending) / float64(worst); f < throttle {
				throttle = f
			}
		}
	}
	if throttle < 1 {
		if throttle < 0.1 {
			throttle = 0.1
		}
		emitN = int64(throttle * float64(emitN))
	}
	return emitN
}

// StepModel advances one stage's queueing model by one interval and
// returns the interval metrics (throughput, latency, skewness). The
// instance count is len(backlog); backlog (cost units) and backlogT
// (tuples) are updated in place and migPenalty is consumed and zeroed.
// cost and tuples are the interval's per-instance arrivals, captured
// before any resize: shorter arrays pad with zero-arrival instances, a
// longer tail (retired instances) folds into the last survivor — its
// already-processed work must stay in the throughput account, and its
// keys' future tuples route to survivors anyway. Exported so a cluster
// coordinator can run the identical model over arrival accounting that
// crossed the wire.
func StepModel(p ModelParams, backlog, backlogT, migPenalty, cost, tuples []int64) metrics.Interval {
	n := len(backlog)
	for len(cost) < n {
		cost = append(cost, 0)
		tuples = append(tuples, 0)
	}
	if len(cost) > n {
		for d := n; d < len(cost); d++ {
			cost[n-1] += cost[d]
			tuples[n-1] += tuples[d]
		}
		cost, tuples = cost[:n], tuples[:n]
	}
	cap64 := p.Capacity
	var thr float64
	var latSum, latW float64
	for d := 0; d < n; d++ {
		offeredC := backlog[d] + cost[d]
		offeredT := backlogT[d] + tuples[d]
		eff := cap64 - int64(p.MigrationFactor*float64(migPenalty[d]))
		if eff < 0 {
			eff = 0
		}
		processedC := offeredC
		if processedC > eff {
			processedC = eff
		}
		var processedT int64
		if offeredC > 0 {
			processedT = int64(float64(offeredT) * float64(processedC) / float64(offeredC))
		}
		newBacklogC := offeredC - processedC
		newBacklogT := offeredT - processedT
		// Latency: average queueing delay over the interval plus the
		// service time of one tuple, in ms of the 1-second interval.
		avgQ := float64(backlog[d]+newBacklogC) / 2
		var lat float64
		if cap64 > 0 {
			lat = 1000 * avgQ / float64(cap64)
			if offeredT > 0 {
				lat += 1000 * (float64(offeredC) / float64(offeredT)) / float64(cap64)
			}
		}
		lat += p.LatencyFloorMs
		latSum += lat * float64(tuples[d])
		latW += float64(tuples[d])
		thr += float64(processedT)
		backlog[d] = newBacklogC
		backlogT[d] = newBacklogT
		migPenalty[d] = 0
	}
	var m metrics.Interval
	m.Throughput = thr
	if latW > 0 {
		m.LatencyMs = latSum / latW
	}
	m.Skewness = stats.Skewness(cost)
	m.MaxTheta = stats.MaxTheta(cost)
	return m
}

// ResizeStage changes stage si's instance set by delta (+1 scale-out,
// −1 live scale-in) and keeps the model's bookkeeping in step — the
// generalized elastic actuator (any stage, both directions) behind the
// unified control plane's ScaleOut/ScaleIn commands. Capacity per task
// stays fixed: resizing changes headroom, not per-instance speed.
// Returns an error — with no state touched — on an invalid delta or a
// stage whose router cannot resize (no assignment router, non-ring
// hasher, retiring the only instance).
func (e *Engine) ResizeStage(si, delta int) (int64, error) {
	return e.ResizeStageObserved(si, delta, nil)
}

// ResizeStageObserved is ResizeStage with a per-key migration observer
// forwarded to the stage actuator (nil behaves like ResizeStage).
func (e *Engine) ResizeStageObserved(si, delta int, obs MigrationObserver) (int64, error) {
	switch delta {
	case 1:
		moved, err := e.Stages[si].ScaleOutObserved(obs)
		if err != nil {
			return 0, err
		}
		e.backlogT[si] = append(e.backlogT[si], 0)
		return moved, nil
	case -1:
		moved, err := e.Stages[si].ScaleInObserved(obs)
		if err != nil {
			return 0, err
		}
		bt := e.backlogT[si]
		last := len(bt) - 1
		// The retired instance's residual tuple backlog folds into the
		// last survivor, matching the stage's cost-backlog fold.
		bt[last-1] += bt[last]
		e.backlogT[si] = bt[:last]
		return moved, nil
	default:
		return 0, fmt.Errorf("engine: ResizeStage delta must be ±1 (got %d)", delta)
	}
}

// ScaleOutTarget adds an instance to the target stage (Fig. 15
// scenario); it is ResizeStage(Target, +1), kept for callers of the
// pre-ResizeStage API.
func (e *Engine) ScaleOutTarget() (int64, error) {
	return e.ResizeStage(e.Target, 1)
}

// Stop terminates all stage goroutines.
func (e *Engine) Stop() {
	if e.stopped {
		return
	}
	e.stopped = true
	for _, s := range e.Stages {
		s.Stop()
	}
}
