package control_test

import (
	"fmt"
	"testing"

	"repro/internal/control"
	"repro/internal/engine"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// holdPolicy never commands: rounds measure pure loop overhead
// (report marshaling, transport crossing, merge, decide, resume).
type holdPolicy struct{}

func (holdPolicy) Decide(control.Env, *stats.Snapshot) []control.Command { return nil }

func benchSnapshot(keys, nd int) *stats.Snapshot {
	snap := &stats.Snapshot{Interval: 1, ND: nd}
	for i := 0; i < keys; i++ {
		snap.Keys = append(snap.Keys, stats.KeyStat{
			Key: tuple.Key(i), Cost: int64(keys - i), Freq: 1, Mem: 2,
			Dest: i % nd, Hash: i % nd,
		})
	}
	stats.SortByCostDesc(snap.Keys)
	return snap
}

// BenchmarkEngineInterval quantifies what the control plane adds to a
// whole engine interval (10k tuples through a Mixed-managed stage):
// "direct" drives the legacy in-process hook, "loop" and "wire" the
// unified command path over each transport. The direct-vs-loop delta
// is the honest price of speaking the protocol every interval.
func BenchmarkEngineInterval(b *testing.B) {
	run := func(b *testing.B, wiring string) {
		gen := workload.NewZipfStream(10000, 0.85, 0, 10000, 17)
		st := engine.NewStage("op", 10, func(int) engine.Operator { return engine.StatefulCount }, 1,
			engine.NewAssignmentRouter(topology.NewAssignment(10)))
		cfg := engine.DefaultConfig()
		e := engine.NewBatch(gen.NextBatch, cfg, st)
		defer e.Stop()
		ctl := mkController()
		switch wiring {
		case "direct":
			e.AddSnapshotHook(0, ctl.StageHook(0))
		case "loop":
			loop := control.NewLoop(e, 0, []control.Policy{ctl})
			defer loop.Close()
			e.AddSnapshotHook(0, loop.Hook())
		case "wire":
			loop := control.NewLoop(e, 0, []control.Policy{ctl}, control.Wire())
			defer loop.Close()
			e.AddSnapshotHook(0, loop.Hook())
		}
		b.ResetTimer()
		e.Run(b.N)
	}
	for _, wiring := range []string{"direct", "loop", "wire"} {
		b.Run(wiring, func(b *testing.B) { run(b, wiring) })
	}
}

// BenchmarkControlRound measures one hold round of the per-stage
// control loop — the steady per-interval cost the unified control
// plane adds — across transports and snapshot sizes. Compare against
// an interval's data-plane work (tens of thousands of tuples) to see
// the loop is off the critical path.
func BenchmarkControlRound(b *testing.B) {
	for _, wire := range []bool{false, true} {
		for _, keys := range []int{0, 512, 4096} {
			name := fmt.Sprintf("loopback/keys=%d", keys)
			var opts []control.LoopOption
			if wire {
				name = fmt.Sprintf("wire/keys=%d", keys)
				opts = append(opts, control.Wire())
			}
			b.Run(name, func(b *testing.B) {
				st := engine.NewStage("bench", 10, func(int) engine.Operator { return engine.Discard }, 1,
					engine.NewAssignmentRouter(topology.NewAssignment(10)))
				e := engine.New(func() tuple.Tuple { return tuple.New(0, nil) }, engine.DefaultConfig(), st)
				defer e.Stop()
				loop := control.NewLoop(e, 0, []control.Policy{holdPolicy{}}, opts...)
				defer loop.Close()
				hook := loop.Hook()
				snap := benchSnapshot(keys, 10)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					hook(e, 0, snap)
				}
			})
		}
	}
}
