package control_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/balance"
	"repro/internal/control"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// holdPolicy never commands: rounds measure pure loop overhead
// (report marshaling, transport crossing, merge, decide, resume).
type holdPolicy struct{}

func (holdPolicy) Decide(control.Env, *stats.Snapshot) []control.Command { return nil }

func benchSnapshot(keys, nd int) *stats.Snapshot {
	snap := &stats.Snapshot{Interval: 1, ND: nd}
	for i := 0; i < keys; i++ {
		snap.Keys = append(snap.Keys, stats.KeyStat{
			Key: tuple.Key(i), Cost: int64(keys - i), Freq: 1, Mem: 2,
			Dest: i % nd, Hash: i % nd,
		})
	}
	stats.SortByCostDesc(snap.Keys)
	return snap
}

// BenchmarkEngineInterval quantifies what the control plane adds to a
// whole engine interval (10k tuples through a Mixed-managed stage):
// "direct" drives the legacy in-process hook, "loop" and "wire" the
// unified command path over each transport. The direct-vs-loop delta
// is the honest price of speaking the protocol every interval.
func BenchmarkEngineInterval(b *testing.B) {
	run := func(b *testing.B, wiring string) {
		gen := workload.NewZipfStream(10000, 0.85, 0, 10000, 17)
		st := engine.NewStage("op", 10, func(int) engine.Operator { return engine.StatefulCount }, 1,
			engine.NewAssignmentRouter(topology.NewAssignment(10)))
		cfg := engine.DefaultConfig()
		e := engine.NewBatch(gen.NextBatch, cfg, st)
		defer e.Stop()
		ctl := mkController()
		switch wiring {
		case "direct":
			e.AddSnapshotHook(0, ctl.StageHook(0))
		case "loop":
			loop := control.NewLoop(e, 0, []control.Policy{ctl})
			defer loop.Close()
			e.AddSnapshotHook(0, loop.Hook())
		case "wire":
			loop := control.NewLoop(e, 0, []control.Policy{ctl}, control.Wire())
			defer loop.Close()
			e.AddSnapshotHook(0, loop.Hook())
		}
		b.ResetTimer()
		e.Run(b.N)
	}
	for _, wiring := range []string{"direct", "loop", "wire"} {
		b.Run(wiring, func(b *testing.B) { run(b, wiring) })
	}
}

// BenchmarkControlRound measures one hold round of the per-stage
// control loop — the steady per-interval cost the unified control
// plane adds — across transports and snapshot sizes. Compare against
// an interval's data-plane work (tens of thousands of tuples) to see
// the loop is off the critical path.
func BenchmarkControlRound(b *testing.B) {
	for _, wire := range []bool{false, true} {
		for _, keys := range []int{0, 512, 4096} {
			name := fmt.Sprintf("loopback/keys=%d", keys)
			var opts []control.LoopOption
			if wire {
				name = fmt.Sprintf("wire/keys=%d", keys)
				opts = append(opts, control.Wire())
			}
			b.Run(name, func(b *testing.B) {
				st := engine.NewStage("bench", 10, func(int) engine.Operator { return engine.Discard }, 1,
					engine.NewAssignmentRouter(topology.NewAssignment(10)))
				e := engine.New(func() tuple.Tuple { return tuple.New(0, nil) }, engine.DefaultConfig(), st)
				defer e.Stop()
				loop := control.NewLoop(e, 0, []control.Policy{holdPolicy{}}, opts...)
				defer loop.Close()
				hook := loop.Hook()
				snap := benchSnapshot(keys, 10)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					hook(e, 0, snap)
				}
			})
		}
	}
}

// BenchmarkRebalanceLatency is the tentpole's headline measurement:
// the distribution of FeedBatch call latency — p50 and p99, reported
// as p50-µs / p99-µs — with and without a controller goroutine
// applying rebalance plans continuously, on the pausing oracle versus
// the pause-free generation protocol. On the pausing path every plan
// pauses feeds and drains in-flight sends, so the rebalance case
// shows a p99 cliff over its steady case; pause-free feeders never
// block on a plan and p99 stays flat. Run via `make bench-control`.
// BenchmarkWireCodec measures the gob codec's per-message cost for
// report traffic at several population sizes — the satellite win here
// is the retained staging buffer: each Send gob-encodes into a reused
// bytes.Buffer and hits the transport with one Write, so steady-state
// allocations per message stay flat as reports grow. Run with
// -benchmem; B/msg is the encoded wire size.
func BenchmarkWireCodec(b *testing.B) {
	for _, keys := range []int{0, 64, 1024} {
		b.Run(fmt.Sprintf("report/keys=%d", keys), func(b *testing.B) {
			var buf bytes.Buffer
			c := protocol.NewCodec(&buf)
			rep := &protocol.LoadReport{TaskID: 1, Interval: 7, Tasks: 4, Capacity: 1 << 20}
			for i := 0; i < keys; i++ {
				rep.Stats = append(rep.Stats, protocol.KeyStatWire{
					Key: tuple.Key(i), Cost: int64(keys - i), Freq: 1, Mem: 2, Hash: i % 4,
				})
			}
			m := &protocol.Message{Report: rep}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Send(m); err != nil {
					b.Fatal(err)
				}
				if _, err := c.Recv(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(c.SentBytes())/float64(b.N), "B/msg")
		})
	}
}

func BenchmarkRebalanceLatency(b *testing.B) {
	const (
		nd        = 4
		keyDomain = 512
		chunk     = 256
	)
	for _, mode := range []string{"pausing", "pausefree"} {
		for _, load := range []string{"steady", "rebalance"} {
			b.Run(mode+"/"+load, func(b *testing.B) {
				st := engine.NewStage("bench", nd, func(int) engine.Operator { return engine.StatefulCount }, 1,
					engine.NewAssignmentRouter(topology.NewAssignment(nd)))
				defer st.Stop()
				if mode == "pausefree" {
					if err := st.SetPauseFree(true); err != nil {
						b.Fatal(err)
					}
				}
				pre := make([]tuple.Tuple, keyDomain)
				for i := range pre {
					pre[i] = tuple.New(tuple.Key(i), nil)
				}
				st.FeedBatch(pre)
				st.Barrier()

				stop := make(chan struct{})
				var wg sync.WaitGroup
				if load == "rebalance" {
					// Controller goroutine: rotate a fifth of the key
					// domain one instance over, continuously, via the
					// live-migration entry point (on the pausing oracle
					// that is pause → drain → migrate → resume; on a
					// pause-free stage it is the generation protocol).
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := 0; ; i++ {
							select {
							case <-stop:
								return
							default:
							}
							asg := st.AssignmentRouter().Assignment()
							tab := asg.Table().Clone()
							plan := &balance.Plan{Table: tab, MoveDest: map[tuple.Key]int{}}
							for k := tuple.Key(i % 5); k < keyDomain; k += 5 {
								dst := (asg.Dest(k) + 1) % nd
								tab.Put(k, dst)
								plan.Moved = append(plan.Moved, k)
								plan.MoveDest[k] = dst
							}
							if _, err := st.ApplyPlanLive(plan); err != nil {
								b.Error(err)
								return
							}
						}
					}()
				}

				buf := make([]tuple.Tuple, chunk)
				var seq int
				var hist metrics.LatencyHist
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for j := range buf {
						buf[j] = tuple.New(tuple.Key(seq%keyDomain), nil)
						seq++
					}
					t0 := time.Now()
					st.FeedBatch(buf)
					hist.Observe(time.Since(t0))
					// Drain periodically (outside the histogram) so the
					// measurement is feed-path stall, not steady-state
					// queue saturation — which would bury both modes
					// under the same backlog delay.
					if i%8 == 7 {
						st.Barrier()
					}
				}
				b.StopTimer()
				close(stop)
				wg.Wait()
				st.Barrier()
				b.ReportMetric(hist.QuantileUs(0.5), "p50-µs")
				b.ReportMetric(hist.QuantileUs(0.99), "p99-µs")
			})
		}
	}
}
