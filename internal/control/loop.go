package control

import (
	"sync"

	"repro/internal/engine"
	"repro/internal/hashring"
	"repro/internal/protocol"
	"repro/internal/stats"
	"repro/internal/tuple"
)

// Executor is the stage-side half of the control loop: the single
// per-stage actuator that reports the interval's statistics and
// applies whatever commands come back, marshaling every step through
// protocol messages. It is the only component that touches the engine;
// the policies on the other end of the Conn see wire data exclusively.
type Executor struct {
	e    *engine.Engine
	si   int
	conn Conn
	// needFull forces the next round's reports to the full form. True
	// initially (the controller's mirror starts empty) and after any
	// round that carried a command: the command's side effects
	// (migrations, resizes, split churn) land in the next close's
	// delta, but the controller forgets its mirror when it commands —
	// the symmetric rule that keeps both ends in step without
	// negotiation — so the stage must rebase it.
	needFull bool
	// OnResize, when set, observes every successful Resize actuation
	// with its delta (+1 scale-out, -1 scale-in), in application order.
	// The cluster worker records the sequence so the coordinator can
	// replay the same backlog reshaping on its model state. Called on
	// the round-driving goroutine; set before the first round.
	OnResize func(delta int)
}

// NewExecutor binds an executor to stage si of e, speaking over conn.
// Most callers want NewLoop, which wires both halves; a standalone
// executor serves a remote controller (anything answering on conn with
// the protocol's command messages).
func NewExecutor(e *engine.Engine, si int, conn Conn) *Executor {
	return &Executor{e: e, si: si, conn: conn, needFull: true}
}

// RunRound drives one interval's control round: report the interval's
// statistics (step 1), then serve the controller's command stream —
// PlanAnnounce applies through the stage's pause/migrate/resume path,
// Resize through the engine's elastic actuator, each migration
// reported as a StateTransfer and each command Acked — until Resume
// closes the round. The return value summarizes what was applied, in
// the shape the engine records (nil when the round held, or the
// transport is gone).
//
// Under engine.HarvestIncremental the reports are deltas — each task's
// changed and retired keys against the previous close, O(Δkeys) on the
// wire — except when the mirror on the other end needs a rebase: the
// first round, the round after any command, and whenever the
// controller asks with Resync mid-round.
func (x *Executor) RunRound(snap *stats.Snapshot) *engine.Rebalance {
	st := x.e.Stages[x.si]
	deltas := st.LastDeltas()
	incremental := st.Harvest() == engine.HarvestIncremental && len(deltas) == st.Instances()
	sendFull := func() bool {
		reports := protocol.ReportsFromSnapshot(snap, st.Instances(),
			x.e.CapacityOf(x.si), x.e.LastEmitted(), x.e.Cfg.Budget,
			st.AssignmentRouter() != nil, x.resizable(), st.SplitKeys())
		if incremental {
			for d := range reports {
				reports[d].Epoch = deltas[d].Epoch
			}
		}
		for _, r := range reports {
			if x.conn.Send(&protocol.Message{Report: r}) != nil {
				return false
			}
		}
		return true
	}
	sent := false
	if incremental && !x.needFull {
		sent = x.sendDeltas(st, snap, deltas)
	}
	if !sent && !sendFull() {
		x.needFull = true
		return nil
	}
	var reb *engine.Rebalance
	gotCmd := false
	for {
		m, err := x.conn.Recv()
		if err != nil {
			x.needFull = true
			return reb
		}
		switch {
		case m.ResyncReq != nil:
			// The controller's mirror could not apply this round's
			// deltas; resend the same interval in full.
			if !sendFull() {
				x.needFull = true
				return reb
			}
		case m.Plan != nil:
			gotCmd = true
			// Inapplicable commands are rejected as holds, not
			// panics: the executor may serve a remote controller, and
			// a malformed command must not crash the driver. The Ack
			// still flows so the round stays in step.
			if st.AssignmentRouter() == nil || !planFits(m.Plan, st.Instances()) {
				x.ack(m.Plan.Interval)
				break
			}
			plan := protocol.PlanFromAnnounce(m.Plan)
			moved, err := st.ApplyPlanObserved(plan, x.transferObserver())
			if err != nil {
				// Same reject-as-hold as the guards above: the router
				// check raced a topology change, so the plan no longer
				// applies. Nothing was migrated; Ack and move on.
				x.ack(m.Plan.Interval)
				break
			}
			if reb == nil {
				reb = &engine.Rebalance{}
			}
			if reb.Plan == nil {
				reb.Plan, reb.Moved = plan, moved
			}
			x.ack(m.Plan.Interval)
		case m.ResizeCmd != nil:
			gotCmd = true
			delta := m.ResizeCmd.Delta
			if !x.canResize(delta) {
				x.ack(m.ResizeCmd.Interval)
				break
			}
			if _, err := x.e.ResizeStageObserved(x.si, delta, x.transferObserver()); err != nil {
				// Reject-as-hold: the resize stopped being applicable
				// between canResize and actuation. Ack keeps the round
				// in step; nothing moved.
				x.ack(m.ResizeCmd.Interval)
				break
			}
			if reb == nil {
				reb = &engine.Rebalance{}
			}
			if delta > 0 {
				reb.ScaledOut++
			} else {
				reb.ScaledIn++
			}
			if x.OnResize != nil {
				x.OnResize(delta)
			}
			x.ack(m.ResizeCmd.Interval)
		case m.Split != nil:
			gotCmd = true
			// Reject-as-hold mirrors the plan path: splitting requires
			// an assignment router and the pause-free protocol, and
			// ApplySplitSet re-checks both under its own lock. Nothing
			// is recorded in reb — a split is a routing-layer change,
			// not a migration.
			if st.AssignmentRouter() == nil || !st.PauseFree() {
				x.ack(m.Split.Interval)
				break
			}
			set := make([]stats.HotKey, 0, len(m.Split.Set))
			for _, e := range m.Split.Set {
				set = append(set, stats.HotKey{Key: e.Key, Fan: e.Fan})
			}
			_ = st.ApplySplitSet(set)
			x.ack(m.Split.Interval)
		case m.Resume != nil:
			// A commanded round rebases the mirror next interval (the
			// controller forgot it when it commanded); a held round
			// keeps the delta stream going.
			x.needFull = gotCmd
			return reb
		default:
			// Protocol violation: bail out of the round rather than
			// wedge the driver goroutine.
			x.needFull = true
			return reb
		}
	}
}

// sendDeltas reports the round as per-task delta reports built from
// the stage's last retained close: changed entries, retired keys and
// the close's epoch, with the stage context every report carries.
// Returns false if the transport is gone.
func (x *Executor) sendDeltas(st *engine.Stage, snap *stats.Snapshot, deltas []stats.Delta) bool {
	tasks := st.Instances()
	capacity, emitted, budget := x.e.CapacityOf(x.si), x.e.LastEmitted(), x.e.Cfg.Budget
	routable, resizable, split := st.AssignmentRouter() != nil, x.resizable(), st.SplitKeys()
	total := 0
	for d := range deltas {
		total += len(deltas[d].Changed)
	}
	// One backing array carved into per-task Changed slices, as
	// ReportsFromSnapshot does for full reports.
	backing := make([]protocol.KeyStatWire, 0, total)
	for d := range deltas {
		lo := len(backing)
		for _, ks := range deltas[d].Changed {
			backing = append(backing, protocol.KeyStatWire{Key: ks.Key, Cost: ks.Cost, Freq: ks.Freq, Mem: ks.Mem, Hash: ks.Hash})
		}
		r := &protocol.LoadReport{
			TaskID: d, Interval: snap.Interval,
			Epoch: deltas[d].Epoch, Delta: true,
			Changed: backing[lo:len(backing):len(backing)],
			Retired: deltas[d].Retired,
			Tasks:   tasks, Capacity: capacity, Emitted: emitted, Budget: budget,
			Routable: routable, Resizable: resizable, Split: split,
		}
		if x.conn.Send(&protocol.Message{Report: r}) != nil {
			return false
		}
	}
	return true
}

// planFits reports whether every destination a plan announce
// references exists on the stage right now. A plan computed before a
// same-round scale-in — or a malformed one from a remote controller —
// can target a retired instance; applying it would index past the
// task slice. The in-tree Controller drops such plans itself
// (DroppedStale); this guard holds the line at the executor boundary
// for everything else.
func planFits(a *protocol.PlanAnnounce, instances int) bool {
	for _, e := range a.Table {
		if e.Dest < 0 || e.Dest >= instances {
			return false
		}
	}
	for _, mv := range a.Moved {
		if mv.Dest < 0 || mv.Dest >= instances {
			return false
		}
	}
	return true
}

// resizable reports whether the stage's instance set can change at
// all: assignment routing over a consistent-hash ring. Reported to
// policies in the round context, so they never emit resizes the
// executor would reject.
func (x *Executor) resizable() bool {
	ar := x.e.Stages[x.si].AssignmentRouter()
	if ar == nil {
		return false
	}
	_, ring := ar.Assignment().Hasher().(*hashring.Ring)
	return ring
}

// canResize reports whether a Resize command is applicable to the
// stage right now: delta must be ±1, the stage must be resizable, and
// a scale-in must leave at least one instance.
func (x *Executor) canResize(delta int) bool {
	if delta != 1 && delta != -1 {
		return false
	}
	if !x.resizable() {
		return false
	}
	return delta == 1 || x.e.Stages[x.si].Instances() > 1
}

// transferObserver emits one StateTransfer per key migration (step 5
// as a wire event). With the stage in serialized-state mode the
// message carries the key's encoded windowed state in Payload — the
// actual bytes a remote host would decode; otherwise the state moved
// by reference inside the engine and the message is the accounting
// record alone. Send failures are ignored — the migration already
// happened, and the round's Ack (or its absence) is what the
// controller acts on.
func (x *Executor) transferObserver() engine.MigrationObserver {
	return func(k tuple.Key, from, to int, size int64, payload []byte) {
		_ = x.conn.Send(&protocol.Message{State: &protocol.StateTransfer{
			Key: k, From: from, To: to, Size: size, Payload: payload,
		}})
	}
}

// ack confirms the current command finished (step 6). TaskID carries
// the stage index: the executor acks on behalf of the whole stage.
func (x *Executor) ack(interval int64) {
	_ = x.conn.Send(&protocol.Message{Ack: &protocol.Ack{TaskID: x.si, Interval: interval}})
}

// Loop wires a complete per-stage control loop in one process: the
// stage-side Executor, the controller-side policy Server on its own
// goroutine, and the Conn pair between them (loopback by default, the
// gob wire transport with Wire). Register Hook with the engine's
// per-stage snapshot fan-out; Close tears the server down.
type Loop struct {
	x    *Executor
	srv  *Server
	once sync.Once
}

// LoopOption configures NewLoop.
type LoopOption func(*loopCfg)

type loopCfg struct{ wire bool }

// Wire selects the gob-Codec-over-pipe transport instead of the
// in-process loopback: every control message is fully serialized and
// parsed, exactly as across a process boundary. Pinned equivalent to
// the loopback by test; used to prove multi-process readiness and to
// measure true wire cost.
func Wire() LoopOption { return func(c *loopCfg) { c.wire = true } }

// NewLoop builds the control loop for stage si of e, running the given
// policies in order on the controller side, and starts the policy
// server. The caller owns the returned loop and must Close it.
func NewLoop(e *engine.Engine, si int, policies []Policy, opts ...LoopOption) *Loop {
	var cfg loopCfg
	for _, o := range opts {
		o(&cfg)
	}
	var agent, ctrl Conn
	if cfg.wire {
		agent, ctrl = NewWirePair()
	} else {
		agent, ctrl = NewLoopbackPair()
	}
	l := &Loop{x: NewExecutor(e, si, agent), srv: NewServer(ctrl, policies)}
	l.srv.Start()
	return l
}

// Hook adapts the loop to the engine's snapshot fan-out: register it
// with engine.AddSnapshotHook(si, loop.Hook()). It runs one control
// round per interval on the driver goroutine (tasks are idle
// post-harvest, so plan application and resize are barrier-safe).
func (l *Loop) Hook() engine.SnapshotHook {
	return func(e *engine.Engine, idx int, snap *stats.Snapshot) *engine.Rebalance {
		if idx != l.x.si {
			return nil
		}
		return l.x.RunRound(snap)
	}
}

// Close shuts the transport down and waits for the policy server to
// exit, so policy state is safe to read afterwards. Safe to call more
// than once.
func (l *Loop) Close() {
	l.once.Do(func() {
		l.x.conn.Close()
		l.srv.Close()
	})
}

// WireBytes reports the cumulative bytes the controller transport has
// sent and received, when the transport counts them (the gob wire
// transport does; the in-process loopback moves no bytes and reports
// zeros). bench-control and the harvest sweep use it to measure
// control-plane bandwidth.
func (l *Loop) WireBytes() (sent, rcvd int64) {
	return l.srv.WireBytes()
}
