package control

import (
	"fmt"
	"net"
	"sync"

	"repro/internal/protocol"
)

// Conn is one side of a bidirectional control-message link. The
// protocol Codec over any net.Conn satisfies the Send/Recv half; the
// in-process loopback passes the same *protocol.Message values through
// channels. Close unblocks the peer's pending Recv with an error.
type Conn interface {
	Send(*protocol.Message) error
	Recv() (*protocol.Message, error)
	Close() error
}

// errClosed is returned by loopback operations after either endpoint
// closed the pair.
var errClosed = fmt.Errorf("control: transport closed")

// chanConn is the loopback transport: a buffered channel pair carrying
// message pointers. Both endpoints share one done channel (and the
// once guarding it), so closing either side releases both directions.
type chanConn struct {
	out  chan *protocol.Message
	in   chan *protocol.Message
	done chan struct{}
	once *sync.Once
}

func (c *chanConn) Send(m *protocol.Message) error {
	select {
	case c.out <- m:
		return nil
	case <-c.done:
		return errClosed
	}
}

func (c *chanConn) Recv() (*protocol.Message, error) {
	select {
	case m := <-c.in:
		return m, nil
	case <-c.done:
		// Drain anything already queued before reporting closure, so a
		// shutdown cannot drop a round's trailing messages.
		select {
		case m := <-c.in:
			return m, nil
		default:
			return nil, errClosed
		}
	}
}

func (c *chanConn) Close() error {
	c.once.Do(func() { close(c.done) })
	return nil
}

// loopbackBuffer sizes each loopback direction: deep enough that a
// full round (per-task reports, command, transfers, ack, resume) never
// context-switches on queue capacity for ordinary stages.
const loopbackBuffer = 64

// NewLoopbackPair returns two connected in-process Conns: messages
// Sent on one arrive at the other's Recv as the same pointer values,
// with no serialization. It is the control plane's default transport.
func NewLoopbackPair() (Conn, Conn) {
	ab := make(chan *protocol.Message, loopbackBuffer)
	ba := make(chan *protocol.Message, loopbackBuffer)
	done := make(chan struct{})
	once := new(sync.Once)
	return &chanConn{out: ab, in: ba, done: done, once: once},
		&chanConn{out: ba, in: ab, done: done, once: once}
}

// pipeConn frames messages with the gob Codec over a real byte-stream
// connection — the wire transport.
type pipeConn struct {
	*protocol.Codec
	c net.Conn
}

func (p *pipeConn) Close() error { return p.c.Close() }

// NewWirePair returns two Conns speaking the gob wire format over an
// in-memory synchronous pipe — every message is fully encoded and
// decoded, exactly as it would be across a process boundary. The
// control loop is pinned to behave identically over NewLoopbackPair
// and NewWirePair; a real deployment substitutes its own net.Conn via
// WrapConn.
func NewWirePair() (Conn, Conn) {
	a, b := net.Pipe()
	return WrapConn(a), WrapConn(b)
}

// WrapConn frames control messages over an established network
// connection with the protocol Codec.
func WrapConn(c net.Conn) Conn {
	return &pipeConn{Codec: protocol.NewCodec(c), c: c}
}
