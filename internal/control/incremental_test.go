package control_test

import (
	"sync"
	"testing"

	"repro/internal/control"
	"repro/internal/engine"
	"repro/internal/protocol"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// mkEngineH is mkEngine with an interval-close mode.
func mkEngineH(seed int64, h engine.HarvestMode) (*engine.Engine, *engine.Stage) {
	gen := workload.NewZipfStream(4000, 1.0, 1.0, 8000, seed)
	st := engine.NewStage("op", 8, func(int) engine.Operator { return engine.StatefulCount }, 1,
		engine.NewAssignmentRouter(topology.NewAssignment(8)))
	cfg := engine.DefaultConfig()
	cfg.Budget = 8000
	cfg.Harvest = h
	e := engine.New(gen.Next, cfg, st)
	ar := st.AssignmentRouter()
	e.AdvanceWorkload = func(int64) { gen.Advance(ar.Assignment()) }
	return e, st
}

// capturePolicy records every snapshot the controller side decides on,
// delegating the decision itself.
type capturePolicy struct {
	mu    sync.Mutex
	inner control.Policy
	snaps []*stats.Snapshot
}

func (c *capturePolicy) Decide(env control.Env, snap *stats.Snapshot) []control.Command {
	c.mu.Lock()
	c.snaps = append(c.snaps, snap)
	c.mu.Unlock()
	if c.inner != nil {
		return c.inner.Decide(env, snap)
	}
	return nil
}

// TestIncrementalLoopMatchesFullLoop pins the control plane's half of
// the incremental equivalence: the same workload and the same planning
// controller, once over full-population reports (HarvestFull) and once
// over the delta stream (HarvestIncremental, mirror-reconstructed on
// the controller side, full rebases forced around every command),
// produce bit-identical series, snapshots and routing tables — over
// the real gob wire transport.
func TestIncrementalLoopMatchesFullLoop(t *testing.T) {
	run := func(h engine.HarvestMode) (*engine.Engine, *engine.Stage) {
		e, st := mkEngineH(101, h)
		loop := control.NewLoop(e, 0, []control.Policy{mkController()}, control.Wire())
		e.AddSnapshotHook(0, loop.Hook())
		e.Run(20)
		loop.Close()
		return e, st
	}
	eFull, stFull := run(engine.HarvestFull)
	defer eFull.Stop()
	eInc, stInc := run(engine.HarvestIncremental)
	defer eInc.Stop()

	sameSeries(t, "incremental-vs-full", eFull.Recorder.Series, eInc.Recorder.Series)
	sameSnapshots(t, "incremental-vs-full", eFull.LastSnapshots(), eInc.LastSnapshots())
	sameTables(t, "incremental-vs-full", stFull, stInc)
}

// TestMirrorReconstructsStageSnapshots pins, round by round, that the
// snapshot the policies decide on — reconstructed on the controller
// side from delta reports through the mirror — is bit-identical to the
// snapshot the stage harvested, across command rounds (which force
// full rebases) and held rounds (which ride deltas).
func TestMirrorReconstructsStageSnapshots(t *testing.T) {
	e, _ := mkEngineH(77, engine.HarvestIncremental)
	defer e.Stop()
	var stageSnaps []*stats.Snapshot
	e.AddSnapshotHook(0, func(_ *engine.Engine, _ int, snap *stats.Snapshot) *engine.Rebalance {
		stageSnaps = append(stageSnaps, snap)
		return nil
	})
	cap := &capturePolicy{inner: mkController()}
	loop := control.NewLoop(e, 0, []control.Policy{cap}, control.Wire())
	defer loop.Close()
	e.AddSnapshotHook(0, loop.Hook())
	e.Run(16)
	loop.Close()

	cap.mu.Lock()
	defer cap.mu.Unlock()
	if len(cap.snaps) != len(stageSnaps) {
		t.Fatalf("controller decided on %d rounds, stage harvested %d", len(cap.snaps), len(stageSnaps))
	}
	for i := range cap.snaps {
		got, want := cap.snaps[i], stageSnaps[i]
		if got.Interval != want.Interval || got.ND != want.ND || len(got.Keys) != len(want.Keys) {
			t.Fatalf("round %d headers: controller {%d %d %d keys}, stage {%d %d %d keys}",
				i, got.Interval, got.ND, len(got.Keys), want.Interval, want.ND, len(want.Keys))
		}
		for j := range got.Keys {
			if got.Keys[j] != want.Keys[j] {
				t.Fatalf("round %d entry %d: controller %+v, stage %+v", i, j, got.Keys[j], want.Keys[j])
			}
		}
	}
	sent, rcvd := loop.WireBytes()
	if sent == 0 || rcvd == 0 {
		t.Fatalf("wire transport counted no bytes (sent %d, rcvd %d)", sent, rcvd)
	}
}

// TestResyncAndForceFull drives a standalone Executor over the wire
// transport with a hand-written controller and pins the report-form
// state machine: full on the first round, deltas on held rounds, a
// mid-round Resync answered with full reports for the same interval,
// and a forced full rebase on the round after any command.
func TestResyncAndForceFull(t *testing.T) {
	e, st := mkEngineH(7, engine.HarvestIncremental)
	defer e.Stop()
	agent, ctrl := control.NewWirePair()
	defer agent.Close()
	x := control.NewExecutor(e, 0, agent)

	feed := func(keys ...tuple.Key) {
		ts := make([]tuple.Tuple, len(keys))
		for i, k := range keys {
			ts[i] = tuple.New(k, 1)
		}
		st.FeedBatch(ts)
		st.Barrier()
	}
	recvReports := func(interval int64, wantDelta bool) []*protocol.LoadReport {
		t.Helper()
		reports := make([]*protocol.LoadReport, 0, st.Instances())
		for len(reports) < st.Instances() {
			m, err := ctrl.Recv()
			if err != nil {
				t.Fatalf("interval %d: recv: %v", interval, err)
			}
			r := m.Report
			if r == nil {
				t.Fatalf("interval %d: expected report, got %s", interval, m.Kind())
			}
			if r.Interval != interval || r.Delta != wantDelta || r.Epoch == 0 {
				t.Fatalf("interval %d: report {interval %d, delta %v, epoch %d}, want delta %v",
					interval, r.Interval, r.Delta, r.Epoch, wantDelta)
			}
			reports = append(reports, r)
		}
		return reports
	}
	send := func(m *protocol.Message) {
		t.Helper()
		if err := ctrl.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	round := func(interval int64, drive func()) {
		t.Helper()
		done := make(chan struct{})
		go func() { defer close(done); x.RunRound(st.EndInterval(interval)) }()
		drive()
		<-done
	}

	// Round 1: mirror empty, reports must be full.
	feed(1, 2, 3, 4, 5, 6, 7, 8)
	round(1, func() {
		recvReports(1, false)
		send(&protocol.Message{Resume: &protocol.Resume{Interval: 1}})
	})

	// Round 2: held round rides deltas; a Resync mid-round makes the
	// executor resend the same interval in full.
	feed(1, 2)
	round(2, func() {
		recvReports(2, true)
		send(&protocol.Message{ResyncReq: &protocol.Resync{Interval: 2}})
		full := recvReports(2, false)
		var total int
		for _, r := range full {
			total += len(r.Stats)
		}
		if total != 8 {
			t.Fatalf("resync full reports carry %d entries, want the 8-key population", total)
		}
		send(&protocol.Message{Resume: &protocol.Resume{Interval: 2}})
	})

	// Round 3: still delta (a resync is not a command).
	feed(3)
	round(3, func() {
		recvReports(3, true)
		// An applied command (here an empty split set) must force the
		// next round full.
		send(&protocol.Message{Split: &protocol.SplitAnnounce{Interval: 3}})
		m, err := ctrl.Recv()
		if err != nil || m.Ack == nil {
			t.Fatalf("expected ack, got %v (err %v)", m, err)
		}
		send(&protocol.Message{Resume: &protocol.Resume{Interval: 3}})
	})

	// Round 4: full rebase after the commanded round.
	feed(4)
	round(4, func() {
		recvReports(4, false)
		send(&protocol.Message{Resume: &protocol.Resume{Interval: 4}})
	})

	// Round 5: back to deltas.
	feed(5)
	round(5, func() {
		recvReports(5, true)
		send(&protocol.Message{Resume: &protocol.Resume{Interval: 5}})
	})
}
