package control_test

import (
	"sync"
	"testing"

	"repro/internal/balance"
	"repro/internal/control"
	"repro/internal/engine"
	"repro/internal/longterm"
	"repro/internal/protocol"
	"repro/internal/route"
	"repro/internal/state"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// countingFleet is a stateful counting sink whose per-instance totals
// survive instance retirement, so zero-tuple-loss is checkable after a
// live scale-in. Each operator instance is goroutine-confined; the
// fleet map itself is guarded for concurrent Factory calls (scale-out
// can create instances mid-run from the driver).
type countingFleet struct {
	mu  sync.Mutex
	ops []*countingOp
}

type countingOp struct{ n int64 }

func (c *countingOp) Process(ctx *engine.TaskCtx, t tuple.Tuple) {
	c.n++
	ctx.Store.Add(t.Key, state.Entry{Value: int64(1), Size: 1})
}

func (c *countingOp) ProcessBatch(ctx *engine.TaskCtx, ts []tuple.Tuple) {
	c.n += int64(len(ts))
	for i := range ts {
		ctx.Store.Add(ts[i].Key, state.Entry{Value: int64(1), Size: 1})
	}
}

func (f *countingFleet) factory(int) engine.Operator {
	f.mu.Lock()
	defer f.mu.Unlock()
	op := &countingOp{}
	f.ops = append(f.ops, op)
	return op
}

func (f *countingFleet) total() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var s int64
	for _, op := range f.ops {
		s += op.n
	}
	return s
}

// buildScaleInTopology declares the stress topology: a shuffle parse
// stage streaming into a counted, Mixed-rebalanced sink whose control
// loop carries the autoscaler — a pipelined 2-stage system where the
// *non-target* downstream stage resizes live.
func buildScaleInTopology(fleet *countingFleet, scaler *longterm.AutoScaler, opts ...topology.Option) *topology.System {
	gen := workload.NewZipfStream(600, 0.9, 0.5, 2000, 77)
	fwd := engine.OperatorFunc(func(ctx *engine.TaskCtx, t tuple.Tuple) {
		ctx.Emit(tuple.New(t.Key, nil))
	})
	base := []topology.Option{
		topology.Spout(gen.Next),
		topology.Budget(2000),
		topology.Pipelined(),
	}
	return topology.New(append(base, opts...)...).
		Stage("parse", func(int) engine.Operator { return fwd },
			topology.Instances(4),
			topology.Capacity(4000),
			topology.Target(),
		).
		Stage("count", fleet.factory,
			topology.Instances(6),
			topology.Capacity(2000), // 2000 tuples over 6×2000: ~17% utilization
			topology.WithAlgorithm(topology.AlgMixed),
			topology.Theta(0.08), topology.MinKeys(32),
			topology.WithPolicy(scaler),
		).
		Build()
}

// TestScaleInLivePipelined is the acceptance stress (run under -race
// in CI): sustained low utilization must trigger live ScaleIn on the
// pipelined 2-stage topology's downstream stage, with zero tuple loss
// and every migrated key landing on a surviving instance.
func TestScaleInLivePipelined(t *testing.T) {
	fleet := &countingFleet{}
	scaler := &longterm.AutoScaler{Detector: longterm.NewDetector(), MinInstances: 2}
	sys := buildScaleInTopology(fleet, scaler)
	defer sys.Stop()

	const intervals = 30
	sys.Run(intervals)

	count := sys.StageNamed("count")
	if scaler.ScaleIns == 0 {
		t.Fatalf("no scale-in fired in %d idle intervals (util %.2f)", intervals, scaler.Detector.Utilization())
	}
	if got := count.Instances(); got >= 6 || got < 2 {
		t.Fatalf("count stage at %d instances, want within [2, 6)", got)
	}

	// Zero tuple loss: every tuple the spout emitted crossed both
	// stages and was counted — including tuples processed by instances
	// that have since retired.
	var emitted int64
	for _, m := range sys.Recorder().Series {
		emitted += m.Emitted
	}
	count.Barrier()
	if got := fleet.total(); got != emitted {
		t.Fatalf("counted %d of %d emitted tuples across the scale-in", got, emitted)
	}

	// Every key still holding state routes to a surviving instance.
	ar := count.AssignmentRouter()
	for _, k := range count.LiveKeys() {
		if d := ar.Assignment().Dest(k); d >= count.Instances() {
			t.Fatalf("key %d routed to retired instance %d (have %d)", k, d, count.Instances())
		}
	}
	// The interval metrics recorded the scale events.
	var ins int
	for _, m := range sys.Recorder().Series {
		ins += m.ScaleIns
	}
	// The scaler manages the non-target stage, so the target stage's
	// series does not carry its events; the policy history is the
	// record. (Documented: metrics follow the target stage.)
	if ins != 0 {
		t.Fatalf("target-stage series recorded %d scale-ins belonging to the count stage", ins)
	}
	if len(scaler.History) == 0 {
		t.Fatal("autoscaler history empty despite applied scale-ins")
	}
}

// TestScaleInLoopbackEqualsWire pins the two transports against each
// other on the full elastic scenario: identical series, identical
// final instance counts, identical routing tables, identical applied
// histories.
func TestScaleInLoopbackEqualsWire(t *testing.T) {
	run := func(opts ...topology.Option) (*topology.System, *countingFleet, *longterm.AutoScaler) {
		fleet := &countingFleet{}
		scaler := &longterm.AutoScaler{Detector: longterm.NewDetector(), MinInstances: 2}
		sys := buildScaleInTopology(fleet, scaler, opts...)
		sys.Run(30)
		return sys, fleet, scaler
	}
	lb, lbFleet, lbScaler := run()
	defer lb.Stop()
	w, wFleet, wScaler := run(topology.WireControl())
	defer w.Stop()

	sameSeries(t, "loopback-vs-wire", lb.Recorder().Series, w.Recorder().Series)
	sameSnapshots(t, "loopback-vs-wire", lb.Engine.LastSnapshots(), w.Engine.LastSnapshots())
	sameTables(t, "loopback-vs-wire", lb.StageNamed("count"), w.StageNamed("count"))
	if a, b := lb.StageNamed("count").Instances(), w.StageNamed("count").Instances(); a != b {
		t.Fatalf("instance counts diverged: %d vs %d", a, b)
	}
	if lbScaler.ScaleIns == 0 || lbScaler.ScaleIns != wScaler.ScaleIns || lbScaler.ScaleOuts != wScaler.ScaleOuts {
		t.Fatalf("scale histories diverged: in %d/%d out %d/%d",
			lbScaler.ScaleIns, wScaler.ScaleIns, lbScaler.ScaleOuts, wScaler.ScaleOuts)
	}
	if a, b := lb.Rebalances(), w.Rebalances(); a != b {
		t.Fatalf("rebalance counts diverged: %d vs %d", a, b)
	}
	lb.StageNamed("count").Barrier()
	w.StageNamed("count").Barrier()
	if a, b := lbFleet.total(), wFleet.total(); a != b {
		t.Fatalf("counted totals diverged: %d vs %d", a, b)
	}
}

// scaleInAlways is a hostile policy: it demands ScaleIn every
// interval, floor or no floor.
type scaleInAlways struct{}

func (scaleInAlways) Decide(control.Env, *stats.Snapshot) []control.Command {
	return []control.Command{control.ScaleIn{}}
}

// rebalanceAlways demands a rebalance regardless of the stage's
// routing scheme.
type rebalanceAlways struct{}

func (rebalanceAlways) Decide(env control.Env, _ *stats.Snapshot) []control.Command {
	plan := &balance.Plan{Table: route.NewTable(), MoveDest: map[tuple.Key]int{}}
	return []control.Command{control.Rebalance{Plan: plan}}
}

// TestExecutorRejectsInapplicableCommands pins the reject-as-hold
// contract: commands a stage cannot apply — scale-in at one instance,
// a rebalance on a router-less stage, a Resize with a bad delta — are
// acked and ignored, never panics on the driver goroutine.
func TestExecutorRejectsInapplicableCommands(t *testing.T) {
	// ScaleIn against a single-instance stage: held, engine keeps running.
	one := engine.NewStage("one", 1, func(int) engine.Operator { return engine.Discard }, 1,
		engine.NewAssignmentRouter(topology.NewAssignment(1)))
	e1 := engine.New(func() tuple.Tuple { return tuple.New(1, nil) }, engine.Config{Budget: 50}, one)
	defer e1.Stop()
	l1 := control.NewLoop(e1, 0, []control.Policy{scaleInAlways{}})
	defer l1.Close()
	e1.AddSnapshotHook(0, l1.Hook())
	e1.Run(3)
	if one.Instances() != 1 {
		t.Fatalf("single-instance stage resized to %d", one.Instances())
	}

	// Rebalance against a shuffle stage: held.
	sh := engine.NewStage("sh", 2, func(int) engine.Operator { return engine.Discard }, 1,
		engine.NewShuffleRouter(2))
	e2 := engine.New(func() tuple.Tuple { return tuple.New(1, nil) }, engine.Config{Budget: 50}, sh)
	defer e2.Stop()
	l2 := control.NewLoop(e2, 0, []control.Policy{rebalanceAlways{}, scaleInAlways{}})
	defer l2.Close()
	e2.AddSnapshotHook(0, l2.Hook())
	e2.Run(3)
	if sh.Instances() != 2 {
		t.Fatalf("shuffle stage resized to %d", sh.Instances())
	}

	// A raw remote controller sending a garbage Resize delta and a
	// plan targeting a nonexistent instance: both held.
	st3 := engine.NewStage("op", 2, func(int) engine.Operator { return engine.Discard }, 1,
		engine.NewAssignmentRouter(topology.NewAssignment(2)))
	e3 := engine.New(func() tuple.Tuple { return tuple.New(1, nil) }, engine.Config{Budget: 50}, st3)
	defer e3.Stop()
	agent, ctrl := control.NewLoopbackPair()
	defer agent.Close()
	x := control.NewExecutor(e3, 0, agent)
	go func() {
		for i := 0; i < 2; i++ { // the stage's two reports
			if _, err := ctrl.Recv(); err != nil {
				return
			}
		}
		ctrl.Send(&protocol.Message{ResizeCmd: &protocol.Resize{Interval: 0, Delta: 5}})
		if m, err := ctrl.Recv(); err != nil || m.Ack == nil {
			return
		}
		ctrl.Send(&protocol.Message{Plan: &protocol.PlanAnnounce{
			Interval: 0,
			Table:    []protocol.RouteEntry{{Key: 1, Dest: 7}},
			Moved:    []protocol.RouteEntry{{Key: 1, Dest: 7}},
		}})
		if m, err := ctrl.Recv(); err != nil || m.Ack == nil {
			return
		}
		ctrl.Send(&protocol.Message{Resume: &protocol.Resume{Interval: 0}})
	}()
	e3.Run(1)
	if reb := x.RunRound(e3.LastSnapshots()[0]); reb != nil {
		t.Fatalf("garbage commands applied: %+v", reb)
	}
	if st3.Instances() != 2 {
		t.Fatalf("garbage delta resized the stage to %d", st3.Instances())
	}
	if d := st3.AssignmentRouter().Assignment().Dest(1); d >= 2 {
		t.Fatalf("out-of-range plan installed: key 1 -> %d", d)
	}
}

// TestLoopClosedMidRunHolds verifies a dead transport degrades to
// hold: the engine keeps running intervals, the hook returns nil, no
// goroutine wedges.
func TestLoopClosedMidRunHolds(t *testing.T) {
	e, _ := mkEngine(55)
	defer e.Stop()
	ctl := mkController()
	loop := control.NewLoop(e, 0, []control.Policy{ctl})
	e.AddSnapshotHook(0, loop.Hook())
	e.Run(3)
	loop.Close()
	before := ctl.Rebalances()
	e.Run(5) // rounds against a closed transport must no-op
	if got := ctl.Rebalances(); got != before {
		t.Fatalf("closed loop still applied plans (%d -> %d)", before, got)
	}
}
