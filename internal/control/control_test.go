package control_test

import (
	"testing"

	"repro/internal/balance"
	"repro/internal/control"
	"repro/internal/controller"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/workload"
)

// mkEngine hand-wires a single Mixed-rebalanced stage over a seeded
// Zipf stream, the oracle configuration every equivalence test reuses.
func mkEngine(seed int64) (*engine.Engine, *engine.Stage) {
	gen := workload.NewZipfStream(4000, 1.0, 1.0, 8000, seed)
	st := engine.NewStage("op", 8, func(int) engine.Operator { return engine.StatefulCount }, 1,
		engine.NewAssignmentRouter(topology.NewAssignment(8)))
	cfg := engine.DefaultConfig()
	cfg.Budget = 8000
	e := engine.New(gen.Next, cfg, st)
	ar := st.AssignmentRouter()
	e.AdvanceWorkload = func(int64) { gen.Advance(ar.Assignment()) }
	return e, st
}

func mkController() *controller.Controller {
	ctl := controller.New(balance.Mixed{}, balance.Config{ThetaMax: 0.08, TableMax: 3000, Beta: 1.5})
	ctl.MinKeys = 32
	return ctl
}

// stripWallClock zeroes the only nondeterministic series field
// (plan-generation wall time) so two independent runs compare exactly.
func stripWallClock(series []metrics.Interval) []metrics.Interval {
	out := append([]metrics.Interval(nil), series...)
	for i := range out {
		out[i].PlanMs = 0
	}
	return out
}

func sameSeries(t *testing.T, label string, a, b []metrics.Interval) {
	t.Helper()
	a, b = stripWallClock(a), stripWallClock(b)
	if len(a) != len(b) {
		t.Fatalf("%s: series lengths %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: interval %d differs:\n  %+v\n  %+v", label, i, a[i], b[i])
		}
	}
}

func sameTables(t *testing.T, label string, a, b *engine.Stage) {
	t.Helper()
	ta := a.AssignmentRouter().Assignment().Table()
	tb := b.AssignmentRouter().Assignment().Table()
	if ta.Len() != tb.Len() {
		t.Fatalf("%s: table sizes %d vs %d", label, ta.Len(), tb.Len())
	}
	for _, k := range ta.Keys() {
		da, _ := ta.Lookup(k)
		db, ok := tb.Lookup(k)
		if !ok || da != db {
			t.Fatalf("%s: key %d routed %d vs %d (present %v)", label, k, da, db, ok)
		}
	}
}

func sameSnapshots(t *testing.T, label string, a, b []*stats.Snapshot) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: snapshot counts %d vs %d", label, len(a), len(b))
	}
	for si := range a {
		if a[si].Interval != b[si].Interval || a[si].ND != b[si].ND || len(a[si].Keys) != len(b[si].Keys) {
			t.Fatalf("%s: snapshot %d headers differ: %+v vs %+v", label, si, a[si], b[si])
		}
		for i := range a[si].Keys {
			if a[si].Keys[i] != b[si].Keys[i] {
				t.Fatalf("%s: snapshot %d key %d: %+v vs %+v", label, si, i, a[si].Keys[i], b[si].Keys[i])
			}
		}
	}
}

// TestLoopMatchesDirectController pins the refactor's core equivalence:
// the protocol-marshaled control loop reproduces the direct
// Maybe-on-the-stage path bit-identically — interval series, final
// snapshots, routing tables and applied-plan history.
func TestLoopMatchesDirectController(t *testing.T) {
	for _, transport := range []string{"loopback", "wire"} {
		t.Run(transport, func(t *testing.T) {
			eDirect, stDirect := mkEngine(101)
			defer eDirect.Stop()
			ctlDirect := mkController()
			eDirect.AddSnapshotHook(0, ctlDirect.StageHook(0))

			eLoop, stLoop := mkEngine(101)
			defer eLoop.Stop()
			ctlLoop := mkController()
			var opts []control.LoopOption
			if transport == "wire" {
				opts = append(opts, control.Wire())
			}
			loop := control.NewLoop(eLoop, 0, []control.Policy{ctlLoop}, opts...)
			defer loop.Close()
			eLoop.AddSnapshotHook(0, loop.Hook())

			eDirect.Run(20)
			eLoop.Run(20)

			sameSeries(t, transport, eDirect.Recorder.Series, eLoop.Recorder.Series)
			sameSnapshots(t, transport, eDirect.LastSnapshots(), eLoop.LastSnapshots())
			sameTables(t, transport, stDirect, stLoop)
			if ctlDirect.Rebalances() != ctlLoop.Rebalances() {
				t.Fatalf("rebalances %d vs %d", ctlDirect.Rebalances(), ctlLoop.Rebalances())
			}
			if ctlDirect.Rebalances() == 0 {
				t.Fatal("oracle run never rebalanced; the pin is vacuous")
			}
			if ctlDirect.SkippedBalanced != ctlLoop.SkippedBalanced ||
				ctlDirect.DeferredApplies != ctlLoop.DeferredApplies {
				t.Fatalf("decision counters differ: skipped %d/%d deferred %d/%d",
					ctlDirect.SkippedBalanced, ctlLoop.SkippedBalanced,
					ctlDirect.DeferredApplies, ctlLoop.DeferredApplies)
			}
		})
	}
}

// TestSnapshotWireRoundTrip pins the report marshaling itself: a
// harvested snapshot split into per-task reports and reassembled is
// byte-identical, including Dest/Hash resolution and ordering.
func TestSnapshotWireRoundTrip(t *testing.T) {
	e, st := mkEngine(7)
	defer e.Stop()
	e.Run(3)
	snap := e.LastSnapshots()[0]
	if len(snap.Keys) == 0 {
		t.Fatal("empty oracle snapshot")
	}
	reports := protocol.ReportsFromSnapshot(snap, st.Instances(), 1000, 8000, 8000, true, true, nil)
	back := protocol.SnapshotFromReports(reports)
	sameSnapshots(t, "roundtrip", []*stats.Snapshot{snap}, []*stats.Snapshot{back})
}
