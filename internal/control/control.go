// Package control is the unified elastic control plane: one command
// path for rebalance, scale-out and live scale-in, spoken over
// protocol messages.
//
// It owns the per-stage control loop the paper's Fig. 5 workflow
// describes and §VII's future work calls for (one mechanism covering
// both short-term fluctuations and long-term shifts, cf. DRS):
//
//	         stage side (Executor)            controller side (Loop server)
//	  ┌──────────────────────────┐  LoadReport ┌──────────────────────────┐
//	1 │ interval snapshot split  │────────────▶│ merge reports → snapshot │
//	  │ into per-task reports    │   (×ND)     │ Policy.Decide → Commands │ 2
//	  │                          │ PlanAnnounce│                          │
//	4 │ pause·migrate per key    │◀────────────│ Rebalance{Plan}          │ 3
//	  │  └▶ StateTransfer (×Δ)   │────────────▶│   or ScaleOut / ScaleIn  │
//	5 │ Ack when applied         │────────────▶│   as Resize{±1}          │
//	  │                          │   Resume    │                          │
//	7 │ resume normal processing │◀────────────│ round closed             │ 6
//	  └──────────────────────────┘             └──────────────────────────┘
//
// Policies (rebalance controllers, autoscalers) are pure deciders:
// they consume one interval's snapshot plus the stage context Env and
// emit typed Commands. A single per-stage Executor applies every
// command against the engine — Rebalance through the stage's
// pause/migrate/resume path, ScaleOut/ScaleIn through the engine's
// generalized ResizeStage — and every step of every command crosses a
// Conn as a protocol message. The default transport is an in-process
// loopback (channel-passed messages); the Wire option runs the same
// bytes through a gob Codec over a synchronous pipe, pinned equivalent
// by test, so a multi-process deployment only swaps the Conn.
//
// With engine.HarvestIncremental, step 1 rides the delta report form:
// held rounds send only changed and retired keys, which the Loop's
// protocol.Mirror folds into retained per-task runs before the merge,
// so policies decide on the same bit-identical snapshot at O(Δkeys)
// wire and merge cost. An epoch gap makes the Loop send Resync (the
// Executor resends the round in full); after any command the Executor
// forces its next report full and the Loop resets its mirror, keeping
// both ends in step without negotiation.
package control

import (
	"repro/internal/balance"
	"repro/internal/stats"
	"repro/internal/tuple"
)

// Command is one typed instruction a Policy emits for its stage's
// Executor: exactly Rebalance, ScaleOut or ScaleIn.
type Command interface{ isCommand() }

// Rebalance applies a migration plan (new routing table A′ plus the
// migration set Δ(F, F′)) through the stage's pause → migrate → ack →
// resume sequence.
type Rebalance struct{ Plan *balance.Plan }

// ScaleOut adds one task instance to the stage (the hash ring grows;
// only keys on the new instance's arcs migrate).
type ScaleOut struct{}

// ScaleIn retires the stage's last task instance live: the ring
// shrinks, the retiring task drains, and its keys' windowed state and
// statistics migrate to the surviving instances.
type ScaleIn struct{}

// SplitSpec is one hot key's split directive: replicate its tuples
// across Fan task instances until folded back.
type SplitSpec struct {
	Key tuple.Key
	Fan int
}

// SetSplit publishes the complete hot-key split set for the stage:
// keys present become (or stay) split at the given fan, keys absent
// fold back into their home task. Emitted by the contention detector
// (controller.Splitter); the executor applies it through the stage's
// pause-free arm/swap/fold machinery.
type SetSplit struct{ Set []SplitSpec }

func (Rebalance) isCommand() {}
func (ScaleOut) isCommand()  {}
func (ScaleIn) isCommand()   {}
func (SetSplit) isCommand()  {}

// Env is the stage context a Policy decides under — everything beyond
// the snapshot itself, reconstructed on the controller side purely
// from the round's load reports, so a decider needs no reference into
// the engine and can run across a process boundary.
type Env struct {
	// Interval is the just-finished interval's index.
	Interval int64
	// Tasks is the stage's instance count ND at reporting time.
	Tasks int
	// Capacity is the per-task service capacity in cost units per
	// interval.
	Capacity int64
	// Emitted is the spout's post-throttle emission this interval;
	// comparing it with Budget reveals backpressure-suppressed demand.
	Emitted int64
	// Budget is the spout's configured per-interval tuple budget.
	Budget int64
	// Routable reports whether the stage routes by assignment (hash +
	// table): only routable stages can rebalance.
	Routable bool
	// Resizable reports whether the stage's instance set can change:
	// assignment routing over a consistent-hash ring. Policies must
	// gate ScaleOut/ScaleIn on it, so "applied" histories never count
	// a command the executor would have to reject.
	Resizable bool
	// SplitKeys lists the stage's currently split hot keys (ascending,
	// nil when none). The rebalance guard pins these keys to their home
	// so a plan never tries to migrate a key whose state is spread
	// across replicas mid-interval.
	SplitKeys []tuple.Key
}

// Policy consumes one interval's merged statistics snapshot plus the
// stage context and returns the commands to apply, in order. A nil or
// empty return means hold. Implementations keep their own trigger
// state (EWMA, patience, pending plans) across calls; Decide is called
// once per interval per stage, always from the same goroutine.
type Policy interface {
	Decide(env Env, snap *stats.Snapshot) []Command
}
