package control

import (
	"sync"

	"repro/internal/protocol"
	"repro/internal/stats"
)

// Server is the controller side of the per-stage control loop, detached
// from any particular transport: it answers an Executor over a Conn —
// the in-process loopback, the gob pipe, or a cluster socket — running
// the given policies each round. Loop composes one with an Executor for
// the single-process case; the cluster coordinator runs one per remote
// stage, which is how the distributed control plane reuses the exact
// protocol logic the loopback pins.
type Server struct {
	conn     Conn
	policies []Policy
	// mirror is the controller-side retained population model that
	// turns delta reports back into effective full rounds; it is reset
	// after any commanded round (the stage rebases it next interval).
	mirror *protocol.Mirror
	// OnRound, when set, observes every completed round's stage context
	// and reassembled snapshot after the policies ran and the round was
	// resumed-or-commanded. The cluster coordinator records these to pin
	// distributed snapshots against the single-process run. Called on
	// the server goroutine; set before Start.
	OnRound func(Env, *stats.Snapshot)
	wg      sync.WaitGroup
	once    sync.Once
}

// NewServer builds a policy server answering on conn. Call Start to
// launch it and Close to tear it down.
func NewServer(conn Conn, policies []Policy) *Server {
	return &Server{conn: conn, policies: policies, mirror: protocol.NewMirror()}
}

// Start launches the server goroutine. It exits when the transport
// closes; Close waits for it.
func (s *Server) Start() {
	s.wg.Add(1)
	go s.serve()
}

// Close shuts the transport down and waits for the server goroutine to
// exit, so policy state is safe to read afterwards. Safe to call more
// than once.
func (s *Server) Close() {
	s.once.Do(func() {
		s.conn.Close()
		s.wg.Wait()
	})
}

// WireBytes reports the cumulative bytes the server's transport has
// sent and received, when the transport counts them (the gob wire and
// socket transports do; the in-process loopback moves no bytes and
// reports zeros).
func (s *Server) WireBytes() (sent, rcvd int64) {
	type counter interface {
		SentBytes() int64
		RecvBytes() int64
	}
	if c, ok := s.conn.(counter); ok {
		return c.SentBytes(), c.RecvBytes()
	}
	return 0, 0
}

// serve is the controller side: for every round it gathers the
// per-task reports, reassembles the snapshot and stage context, asks
// each policy to decide, streams the resulting commands to the
// executor (draining the per-command StateTransfer/Ack replies), and
// closes the round with Resume. It exits when the transport closes.
func (s *Server) serve() {
	defer s.wg.Done()
	for {
		env, snap, ok := s.recvRound()
		if !ok {
			return
		}
		var cmds []Command
		for _, p := range s.policies {
			cmds = append(cmds, p.Decide(env, snap)...)
		}
		for _, c := range cmds {
			var msg *protocol.Message
			switch c := c.(type) {
			case Rebalance:
				msg = &protocol.Message{Plan: protocol.AnnounceFromPlan(env.Interval, c.Plan)}
			case ScaleOut:
				msg = &protocol.Message{ResizeCmd: &protocol.Resize{Interval: env.Interval, Delta: 1}}
			case ScaleIn:
				msg = &protocol.Message{ResizeCmd: &protocol.Resize{Interval: env.Interval, Delta: -1}}
			case SetSplit:
				ann := &protocol.SplitAnnounce{Interval: env.Interval}
				for _, sp := range c.Set {
					ann.Set = append(ann.Set, protocol.SplitEntry{Key: sp.Key, Fan: sp.Fan})
				}
				msg = &protocol.Message{Split: ann}
			default:
				continue
			}
			if s.conn.Send(msg) != nil {
				return
			}
			// Drain the command's transfer stream up to its Ack.
			for {
				m, err := s.conn.Recv()
				if err != nil {
					return
				}
				if m.Ack != nil {
					break
				}
				if m.State == nil {
					return // protocol violation
				}
			}
		}
		if len(cmds) > 0 {
			// Symmetric to the executor's needFull rule: a commanded
			// round's side effects land in the next close's delta, so
			// forget the mirror and expect a full rebase. (Commands the
			// executor rejected as holds still crossed the wire, so both
			// ends count them identically.)
			s.mirror.Reset()
		}
		if s.conn.Send(&protocol.Message{Resume: &protocol.Resume{Interval: env.Interval}}) != nil {
			return
		}
		if s.OnRound != nil {
			s.OnRound(env, snap)
		}
	}
}

// recvRound collects one round's load reports, folds them through the
// delta mirror (requesting one full resync if the mirror cannot apply
// them), and reconstructs the snapshot and stage context.
func (s *Server) recvRound() (Env, *stats.Snapshot, bool) {
	reports, ok := s.recvReports()
	if !ok {
		return Env{}, nil, false
	}
	eff, err := s.mirror.Apply(reports)
	if err != nil {
		// Epoch gap or shape change the mirror cannot bridge: ask the
		// stage to resend the round in full, then retry once. A second
		// failure is a protocol violation; give up on the transport.
		if s.conn.Send(&protocol.Message{ResyncReq: &protocol.Resync{Interval: reports[0].Interval}}) != nil {
			return Env{}, nil, false
		}
		if reports, ok = s.recvReports(); !ok {
			return Env{}, nil, false
		}
		if eff, err = s.mirror.Apply(reports); err != nil {
			return Env{}, nil, false
		}
	}
	r := reports[0]
	env := Env{
		Interval:  r.Interval,
		Tasks:     r.Tasks,
		Capacity:  r.Capacity,
		Emitted:   r.Emitted,
		Budget:    r.Budget,
		Routable:  r.Routable,
		Resizable: r.Resizable,
		SplitKeys: r.Split,
	}
	return env, protocol.SnapshotFromReports(eff), true
}

// recvReports collects the per-task reports of one round (the first
// report's Tasks field says how many are coming).
func (s *Server) recvReports() ([]*protocol.LoadReport, bool) {
	first, err := s.conn.Recv()
	if err != nil || first.Report == nil {
		return nil, false
	}
	r := first.Report
	reports := make([]*protocol.LoadReport, 0, r.Tasks)
	reports = append(reports, r)
	for len(reports) < r.Tasks {
		m, err := s.conn.Recv()
		if err != nil || m.Report == nil {
			return nil, false
		}
		reports = append(reports, m.Report)
	}
	return reports, true
}
