package state

import (
	"testing"

	"repro/internal/tuple"
)

func BenchmarkAdd(b *testing.B) {
	s := NewStore(5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(tuple.Key(i%1000), Entry{Size: 1})
	}
}

func BenchmarkExtractInject(b *testing.B) {
	src, dst := NewStore(5), NewStore(5)
	for k := 0; k < 1000; k++ {
		for j := 0; j < 10; j++ {
			src.Add(tuple.Key(k), Entry{Size: 1})
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := tuple.Key(i % 1000)
		m := src.Extract(k)
		dst.Inject(m)
		src, dst = dst, src
	}
}

func BenchmarkEndInterval(b *testing.B) {
	s := NewStore(3)
	for k := 0; k < 10000; k++ {
		s.Add(tuple.Key(k), Entry{Size: 1})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(tuple.Key(i%10000), Entry{Size: 1})
		s.EndInterval()
	}
}
