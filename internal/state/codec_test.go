package state

import (
	"reflect"
	"testing"

	"repro/internal/tuple"
)

func init() {
	RegisterValue(int64(0))
	RegisterValue("")
}

// fillStore populates a store with a deterministic multi-interval
// window for several keys.
func fillStore(w, intervals int) *Store {
	s := NewStore(w)
	for it := 0; it < intervals; it++ {
		for k := tuple.Key(1); k <= 5; k++ {
			for e := 0; e < int(k); e++ {
				s.Add(k, Entry{Value: int64(it*100 + e), Size: int64(e + 1)})
			}
		}
		s.EndInterval()
	}
	return s
}

// TestCodecRoundTrip: Extract → Encode → Decode → Inject into a fresh
// store must reproduce the key's entries, size and window behavior
// exactly.
func TestCodecRoundTrip(t *testing.T) {
	var c Codec
	for _, k := range []tuple.Key{1, 3, 5} {
		src := fillStore(3, 4)
		ref := fillStore(3, 4)

		wantEntries := append([]Entry(nil), src.Entries(k)...)
		m := src.Extract(k)
		wantMem := int64(7 * int(k))

		p, err := c.Encode(m, wantMem)
		if err != nil {
			t.Fatalf("encode key %d: %v", k, err)
		}
		got, mem, err := c.Decode(p)
		if err != nil {
			t.Fatalf("decode key %d: %v", k, err)
		}
		if mem != wantMem {
			t.Fatalf("key %d: mem %d, want %d", k, mem, wantMem)
		}
		if got.Key != m.Key || got.Size != m.Size {
			t.Fatalf("key %d: header (%d,%d), want (%d,%d)", k, got.Key, got.Size, m.Key, m.Size)
		}

		dst := NewStore(3)
		for dst.Interval() < 4 {
			dst.EndInterval()
		}
		dst.Inject(got)
		if gotE := dst.Entries(k); !reflect.DeepEqual(gotE, wantEntries) {
			t.Fatalf("key %d entries after round trip:\n got  %v\n want %v", k, gotE, wantEntries)
		}
		if dst.Size(k) != ref.Size(k) {
			t.Fatalf("key %d size %d, want %d", k, dst.Size(k), ref.Size(k))
		}

		// Window eviction must continue correctly on decoded state: run
		// both stores forward and compare sizes each interval.
		for i := 0; i < 4; i++ {
			dst.EndInterval()
			ref.EndInterval()
			if dst.Size(k) != ref.Size(k) {
				t.Fatalf("key %d after %d more intervals: size %d, want %d", k, i+1, dst.Size(k), ref.Size(k))
			}
		}
	}
}

// TestCodecStatelessKey: extracting a key with no state yields an
// empty Migrated that still round-trips (zero-cost moves are real
// protocol traffic).
func TestCodecStatelessKey(t *testing.T) {
	var c Codec
	s := NewStore(2)
	m := s.Extract(42)
	p, err := c.Encode(m, 0)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, mem, err := c.Decode(p)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Key != 42 || got.Size != 0 || mem != 0 {
		t.Fatalf("stateless round trip: got key=%d size=%d mem=%d", got.Key, got.Size, mem)
	}
	dst := NewStore(2)
	dst.Inject(got)
	if dst.KeyCount() != 0 {
		t.Fatalf("injecting empty state created a key")
	}
}

// TestCodecSelfContained: every payload decodes with a fresh decoder
// that has seen no other payload — the property a cross-process
// deployment depends on (destination workers join mid-stream).
func TestCodecSelfContained(t *testing.T) {
	var c Codec
	src := fillStore(2, 3)
	p1, err := c.Encode(src.Extract(1), 3)
	if err != nil {
		t.Fatalf("encode 1: %v", err)
	}
	p2, err := c.Encode(src.Extract(2), 6)
	if err != nil {
		t.Fatalf("encode 2: %v", err)
	}
	// Decode in reverse order; each must stand alone.
	if _, _, err := c.Decode(p2); err != nil {
		t.Fatalf("decode p2 first: %v", err)
	}
	if _, _, err := c.Decode(p1); err != nil {
		t.Fatalf("decode p1 second: %v", err)
	}
}

// TestCodecCorruptPayload: truncated or garbage payloads must error,
// not decode into a partial window.
func TestCodecCorruptPayload(t *testing.T) {
	var c Codec
	src := fillStore(2, 3)
	p, err := c.Encode(src.Extract(3), 9)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	for _, cut := range []int{0, 1, len(p) / 2, len(p) - 1} {
		if _, _, err := c.Decode(p[:cut]); err == nil {
			t.Fatalf("decoding %d-byte prefix of %d succeeded", cut, len(p))
		}
	}
}
