package state

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/tuple"
)

// Codec serializes a key's extracted windowed state for migration
// across a process boundary: the payload that rides in
// protocol.StateTransfer.Payload when source and destination tasks do
// not share an address space. Alongside the store window it carries
// the key's tracked windowed-memory figure, so the destination's
// statistics tracker adopts the key with the same Mem the source
// reported — keeping cross-process load reports bit-identical to the
// in-memory reference path.
//
// Each payload is a self-contained gob stream (fresh encoder and
// decoder per call): a decoding process has never seen the encoder's
// type state, so nothing may be amortized across payloads. Entry
// values are interface-typed; operators whose state values are not
// already gob-registered basic types must call RegisterValue once at
// startup on each side.
//
// This codec deliberately stays gob even on binary-wire connections
// (the payload crosses inside a kind-dispatched gob frame): state
// transfers happen once per migrated key per rebalance, not per
// interval, and gob's self-describing stream is the right safety
// trade for arbitrary operator state. The binary wire reserves its
// hand-rolled encodings for the per-interval message set.
type Codec struct{}

// wireBucket mirrors bucket with exported fields for encoding.
type wireBucket struct {
	Interval int64
	Entries  []Entry
	Size     int64
}

// wireTransfer is the on-wire form of one key's migrating state.
type wireTransfer struct {
	Key     tuple.Key
	Size    int64
	Mem     int64
	Buckets []wireBucket
}

// Encode serializes a Migrated plus the key's tracked windowed memory.
func (Codec) Encode(m Migrated, mem int64) ([]byte, error) {
	wt := wireTransfer{Key: m.Key, Size: m.Size, Mem: mem}
	if len(m.buckets) > 0 {
		wt.Buckets = make([]wireBucket, len(m.buckets))
		for i, b := range m.buckets {
			wt.Buckets[i] = wireBucket{Interval: b.interval, Entries: b.entries, Size: b.size}
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&wt); err != nil {
		return nil, fmt.Errorf("state: encode transfer for key %d: %w", m.Key, err)
	}
	return buf.Bytes(), nil
}

// Decode reconstructs a Migrated and the traveling windowed-memory
// figure from an Encode payload. The returned Migrated owns fresh
// bucket storage: injecting it never aliases the source store.
func (Codec) Decode(p []byte) (Migrated, int64, error) {
	var wt wireTransfer
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&wt); err != nil {
		return Migrated{}, 0, fmt.Errorf("state: decode transfer: %w", err)
	}
	m := Migrated{Key: wt.Key, Size: wt.Size}
	if len(wt.Buckets) > 0 {
		m.buckets = make([]bucket, len(wt.Buckets))
		for i, b := range wt.Buckets {
			m.buckets[i] = bucket{interval: b.Interval, entries: b.Entries, size: b.Size}
		}
	}
	return m, wt.Mem, nil
}

// RegisterValue registers a concrete Entry.Value type with gob so it
// can cross a process boundary inside a serialized window. Calling it
// again with the same type is a no-op; wrap it so operator packages
// need not import encoding/gob.
func RegisterValue(v any) { gob.Register(v) }
