package state

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tuple"
)

func TestAddAndEntries(t *testing.T) {
	s := NewStore(2)
	s.Add(1, Entry{Value: "a", Size: 2})
	s.Add(1, Entry{Value: "b", Size: 3})
	es := s.Entries(1)
	if len(es) != 2 || es[0].Value != "a" || es[1].Value != "b" {
		t.Fatalf("Entries = %v", es)
	}
	if s.Size(1) != 5 {
		t.Fatalf("Size = %d, want 5", s.Size(1))
	}
	if s.TotalSize() != 5 {
		t.Fatalf("TotalSize = %d, want 5", s.TotalSize())
	}
}

func TestWindowEviction(t *testing.T) {
	// w = 2: state from interval i−2 disappears once interval i starts.
	s := NewStore(2)
	s.Add(1, Entry{Size: 10}) // interval 0
	s.EndInterval()
	s.Add(1, Entry{Size: 20}) // interval 1
	s.EndInterval()
	if got := s.Size(1); got != 30 {
		t.Fatalf("window sum = %d, want 30", got)
	}
	s.EndInterval() // interval 0 evicted
	if got := s.Size(1); got != 20 {
		t.Fatalf("after eviction = %d, want 20", got)
	}
	s.EndInterval() // all gone
	if got := s.Size(1); got != 0 {
		t.Fatalf("after full eviction = %d, want 0", got)
	}
	if s.KeyCount() != 0 {
		t.Fatalf("KeyCount = %d, want 0 after eviction", s.KeyCount())
	}
}

func TestWindowOneIsInstantaneous(t *testing.T) {
	s := NewStore(1)
	s.Add(1, Entry{Size: 7})
	if got := s.Size(1); got != 7 {
		t.Fatalf("current-interval size = %d, want 7", got)
	}
	s.EndInterval()
	if got := s.Size(1); got != 7 {
		t.Fatalf("size one interval later = %d, want 7 (w=1 keeps last interval)", got)
	}
	s.EndInterval()
	if got := s.Size(1); got != 0 {
		t.Fatalf("size two intervals later = %d, want 0", got)
	}
}

func TestExtractInjectRoundTrip(t *testing.T) {
	src, dst := NewStore(3), NewStore(3)
	src.Add(5, Entry{Value: 1, Size: 4})
	src.EndInterval()
	dst.EndInterval()
	src.Add(5, Entry{Value: 2, Size: 6})

	m := src.Extract(5)
	if m.Size != 10 {
		t.Fatalf("Migrated.Size = %d, want 10", m.Size)
	}
	if src.Size(5) != 0 || src.TotalSize() != 0 {
		t.Fatal("source retains state after Extract")
	}
	dst.Inject(m)
	if dst.Size(5) != 10 {
		t.Fatalf("dest size = %d, want 10", dst.Size(5))
	}
	es := dst.Entries(5)
	if len(es) != 2 {
		t.Fatalf("dest entries = %d, want 2", len(es))
	}
	// Window semantics survive migration: the newest bucket was written
	// during interval 1, so it lives through finished intervals 1..3
	// (w = 3) and is erased once interval 4 completes.
	for i := 0; i < 4; i++ {
		dst.EndInterval()
	}
	if got := dst.Size(5); got != 0 {
		t.Fatalf("migrated state not evicted by window: %d", got)
	}
}

func TestExtractMissingKeyIsFree(t *testing.T) {
	s := NewStore(1)
	m := s.Extract(99)
	if m.Size != 0 {
		t.Fatalf("missing key migration size = %d, want 0", m.Size)
	}
	s.Inject(m) // no-op, must not panic
}

func TestInjectMergesSameInterval(t *testing.T) {
	// Both stores accumulated state for the same key in the same
	// interval (possible transiently around a replan); inject must
	// merge buckets, not duplicate intervals.
	a, b := NewStore(2), NewStore(2)
	a.Add(1, Entry{Value: "a", Size: 1})
	b.Add(1, Entry{Value: "b", Size: 2})
	m := a.Extract(1)
	b.Inject(m)
	if got := b.Size(1); got != 3 {
		t.Fatalf("merged size = %d, want 3", got)
	}
	if es := b.Entries(1); len(es) != 2 {
		t.Fatalf("merged entries = %d, want 2", len(es))
	}
}

func TestTotalSizeTracksAllKeys(t *testing.T) {
	s := NewStore(2)
	for k := tuple.Key(0); k < 10; k++ {
		s.Add(k, Entry{Size: int64(k) + 1})
	}
	if got := s.TotalSize(); got != 55 {
		t.Fatalf("TotalSize = %d, want 55", got)
	}
	s.Extract(9)
	if got := s.TotalSize(); got != 45 {
		t.Fatalf("TotalSize after extract = %d, want 45", got)
	}
}

func TestKeysListing(t *testing.T) {
	s := NewStore(1)
	s.Add(3, Entry{Size: 1})
	s.Add(8, Entry{Size: 1})
	ks := s.Keys()
	if len(ks) != 2 {
		t.Fatalf("Keys = %v", ks)
	}
}

func TestWindowClamp(t *testing.T) {
	if NewStore(0).Window() != 1 {
		t.Fatal("window 0 not clamped")
	}
	if NewStore(-5).Window() != 1 {
		t.Fatal("negative window not clamped")
	}
}

// Property: TotalSize always equals the sum of per-key sizes, across a
// random sequence of add/extract/inject/rotate operations.
func TestTotalSizeInvariantQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore(1 + rng.Intn(4))
		other := NewStore(s.Window())
		for op := 0; op < 300; op++ {
			k := tuple.Key(rng.Intn(12))
			switch rng.Intn(5) {
			case 0, 1, 2:
				s.Add(k, Entry{Size: int64(1 + rng.Intn(9))})
			case 3:
				m := s.Extract(k)
				other.Inject(m)
			case 4:
				s.EndInterval()
				other.EndInterval()
			}
		}
		var sum int64
		for _, k := range s.Keys() {
			sum += s.Size(k)
		}
		return sum == s.TotalSize()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStringer(t *testing.T) {
	s := NewStore(2)
	s.Add(1, Entry{Size: 3})
	if got := s.String(); got == "" {
		t.Fatal("empty String()")
	}
}

func TestIntervalCounter(t *testing.T) {
	s := NewStore(2)
	if s.Interval() != 0 {
		t.Fatal("fresh store interval not 0")
	}
	s.EndInterval()
	s.EndInterval()
	if s.Interval() != 2 {
		t.Fatalf("Interval = %d, want 2", s.Interval())
	}
}
