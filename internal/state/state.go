// Package state implements the windowed per-key state store of a
// stateful operator (§II-A): each key accumulates per-interval state
// entries, only the last w intervals are retained (state from T_{i−w}
// is erased once T_i completes), and a key's entire windowed state can
// be extracted and injected elsewhere — the migration primitive whose
// volume is the migration cost M(w, F, F′) of Eq. 2.
package state

import (
	"fmt"

	"repro/internal/tuple"
)

// Entry is one unit of state: an operator-defined value with an
// explicit size in state units (the paper's s_i(k) contribution).
type Entry struct {
	Value any
	Size  int64
}

// bucket holds one interval's entries for one key.
type bucket struct {
	interval int64
	entries  []Entry
	size     int64
}

// keyState is a key's retained window of buckets, oldest first.
type keyState struct {
	buckets []bucket
	size    int64
}

// Store is a single task's windowed state store. It is confined to the
// owning task goroutine; cross-task access happens only through
// Extract/Inject at controller barriers.
type Store struct {
	window   int
	interval int64
	keys     map[tuple.Key]*keyState
	total    int64
}

// NewStore creates a store with a retention window of w intervals
// (w < 1 clamps to 1).
func NewStore(w int) *Store {
	if w < 1 {
		w = 1
	}
	return &Store{window: w, keys: make(map[tuple.Key]*keyState)}
}

// Window returns w.
func (s *Store) Window() int { return s.window }

// Interval returns the current interval index.
func (s *Store) Interval() int64 { return s.interval }

// Add appends an entry to key k's current-interval bucket.
func (s *Store) Add(k tuple.Key, e Entry) {
	ks := s.keys[k]
	if ks == nil {
		ks = &keyState{}
		s.keys[k] = ks
	}
	n := len(ks.buckets)
	if n == 0 || ks.buckets[n-1].interval != s.interval {
		ks.buckets = append(ks.buckets, bucket{interval: s.interval})
		n++
	}
	b := &ks.buckets[n-1]
	b.entries = append(b.entries, e)
	b.size += e.Size
	ks.size += e.Size
	s.total += e.Size
}

// Entries returns all live entries for key k (oldest first), pruning
// anything that fell out of the window.
func (s *Store) Entries(k tuple.Key) []Entry {
	ks := s.keys[k]
	if ks == nil {
		return nil
	}
	s.prune(k, ks)
	var out []Entry
	for _, b := range ks.buckets {
		out = append(out, b.entries...)
	}
	return out
}

// Size returns S(k, w): the key's live state size.
func (s *Store) Size(k tuple.Key) int64 {
	ks := s.keys[k]
	if ks == nil {
		return 0
	}
	s.prune(k, ks)
	return ks.size
}

// TotalSize returns the store-wide live state volume. Pruning is
// per-key lazy, so the figure is an upper bound until keys are touched;
// EndInterval performs a full prune to keep it exact at boundaries.
func (s *Store) TotalSize() int64 { return s.total }

// KeyCount returns the number of keys holding live state.
func (s *Store) KeyCount() int { return len(s.keys) }

// Keys returns every key currently holding live state, in unspecified
// order. The controller uses it to compute hash-delta migrations when
// the instance set changes (scale-out).
func (s *Store) Keys() []tuple.Key {
	out := make([]tuple.Key, 0, len(s.keys))
	for k := range s.keys {
		out = append(out, k)
	}
	return out
}

// EndInterval advances the clock and evicts every bucket older than the
// retention window.
func (s *Store) EndInterval() {
	s.interval++
	for k, ks := range s.keys {
		s.prune(k, ks)
	}
}

// prune drops buckets older than the window and removes the key when
// empty. The window is anchored at the last *finished* interval
// (s.interval−1): per §II-A, state from T_{i−w} is erased after T_i
// completes, so during in-progress interval s.interval the retained
// range is [s.interval−window, s.interval].
func (s *Store) prune(k tuple.Key, ks *keyState) {
	oldest := s.interval - int64(s.window)
	i := 0
	for i < len(ks.buckets) && ks.buckets[i].interval < oldest {
		ks.size -= ks.buckets[i].size
		s.total -= ks.buckets[i].size
		i++
	}
	if i > 0 {
		ks.buckets = ks.buckets[i:]
	}
	if len(ks.buckets) == 0 {
		delete(s.keys, k)
	}
}

// Migrated is a key's extracted windowed state in transit between
// tasks. Size is the transfer volume charged as migration cost.
type Migrated struct {
	Key     tuple.Key
	Size    int64
	buckets []bucket
}

// Extract removes and returns key k's entire windowed state. A key with
// no state returns an empty Migrated (zero cost), matching the paper's
// observation that moving stateless keys is free.
func (s *Store) Extract(k tuple.Key) Migrated {
	ks := s.keys[k]
	if ks == nil {
		return Migrated{Key: k}
	}
	s.prune(k, ks)
	if len(ks.buckets) == 0 {
		return Migrated{Key: k}
	}
	m := Migrated{Key: k, Size: ks.size, buckets: ks.buckets}
	s.total -= ks.size
	delete(s.keys, k)
	return m
}

// Inject merges a migrated key state into this store. Intervals are
// preserved so window eviction stays correct; the destination clock
// must not be behind the source's (controller barriers guarantee this).
func (s *Store) Inject(m Migrated) {
	if len(m.buckets) == 0 {
		return
	}
	ks := s.keys[m.Key]
	if ks == nil {
		ks = &keyState{}
		s.keys[m.Key] = ks
	}
	// Merge bucket lists by interval (both are sorted ascending).
	merged := make([]bucket, 0, len(ks.buckets)+len(m.buckets))
	i, j := 0, 0
	for i < len(ks.buckets) || j < len(m.buckets) {
		switch {
		case i == len(ks.buckets):
			merged = append(merged, m.buckets[j])
			j++
		case j == len(m.buckets):
			merged = append(merged, ks.buckets[i])
			i++
		case ks.buckets[i].interval < m.buckets[j].interval:
			merged = append(merged, ks.buckets[i])
			i++
		case ks.buckets[i].interval > m.buckets[j].interval:
			merged = append(merged, m.buckets[j])
			j++
		default:
			b := ks.buckets[i]
			b.entries = append(b.entries, m.buckets[j].entries...)
			b.size += m.buckets[j].size
			merged = append(merged, b)
			i++
			j++
		}
	}
	ks.buckets = merged
	ks.size += m.Size
	s.total += m.Size
}

// String summarizes the store for debugging.
func (s *Store) String() string {
	return fmt.Sprintf("state.Store{w=%d interval=%d keys=%d size=%d}", s.window, s.interval, len(s.keys), s.total)
}
